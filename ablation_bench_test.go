package sadproute

// Ablation benchmarks for the design choices DESIGN.md calls out:
// the individual cost-assignment weights (α for BDC, β for CDC, γ for
// TPLC, the constant AMC) and the DVI-ordering weights of Algorithm 3.
// Each benchmark reports dead-via counts so the effect of a knob is
// visible directly in the -bench output.

import (
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/coloring"
	"repro/internal/dvi"
	"repro/internal/router"
)

// ablationRun routes the first suite circuit with the given params and
// returns the ILP dead-via count (the paper's comparison currency).
func ablationRun(b *testing.B, p router.Params) (dv int) {
	b.Helper()
	nl := bench.Generate(benchSuite()[0])
	row, _, err := bench.Run(nl, bench.RunSpec{
		Scheme: coloring.SIM, ConsiderDVI: true, ConsiderTPL: true,
		Params: p, Method: bench.ILPDVI, ILPTimeLimit: benchILPLimit(),
	})
	if err != nil {
		b.Fatal(err)
	}
	return row.DV
}

// BenchmarkAblationAlpha sweeps the block-DVIC weight α: zeroing it
// removes the protection of already-routed vias' DVI candidates.
func BenchmarkAblationAlpha(b *testing.B) {
	for i := 0; i < b.N; i++ {
		off := router.DefaultParams()
		off.Alpha = 0
		on := router.DefaultParams()
		b.ReportMetric(float64(ablationRun(b, off)), "deadvias-alpha0")
		b.ReportMetric(float64(ablationRun(b, on)), "deadvias-alpha8")
	}
}

// BenchmarkAblationBeta sweeps the conflict-DVIC weight β.
func BenchmarkAblationBeta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		off := router.DefaultParams()
		off.Beta = 0
		on := router.DefaultParams()
		b.ReportMetric(float64(ablationRun(b, off)), "deadvias-beta0")
		b.ReportMetric(float64(ablationRun(b, on)), "deadvias-beta4")
	}
}

// BenchmarkAblationGamma compares TPLC on/off while keeping the hard
// FVP-removal phase: γ=0 leaves all spreading to rip-up-and-reroute,
// which costs iterations.
func BenchmarkAblationGamma(b *testing.B) {
	nl := bench.Generate(benchSuite()[0])
	for i := 0; i < b.N; i++ {
		for _, gamma := range []int64{0, 4} {
			p := router.DefaultParams()
			p.Gamma = gamma
			start := time.Now()
			row, art, err := bench.Run(nl, bench.RunSpec{
				Scheme: coloring.SIM, ConsiderDVI: true, ConsiderTPL: true,
				Params: p, Method: bench.NoDVI,
			})
			if err != nil {
				b.Fatal(err)
			}
			_ = row
			st := art.Router.Stats()
			if gamma == 0 {
				b.ReportMetric(float64(st.FVPsResolved), "fvprr-gamma0")
			} else {
				b.ReportMetric(float64(st.FVPsResolved), "fvprr-gamma4")
			}
			_ = start
		}
	}
}

// BenchmarkAblationDVIOrdering compares Algorithm 3 with the paper's
// penalty ordering against a degenerate all-zero ordering (arbitrary
// insertion order).
func BenchmarkAblationDVIOrdering(b *testing.B) {
	nl := bench.Generate(benchSuite()[0])
	res, err := Route(nl, Config{SADP: coloring.SIM, ConsiderDVI: true, ConsiderTPL: true})
	if err != nil {
		b.Fatal(err)
	}
	in := res.DVIInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ordered := in.SolveHeuristic(dvi.DefaultHeurParams())
		arbitrary := in.SolveHeuristic(dvi.HeurParams{})
		b.ReportMetric(float64(ordered.DeadVias), "deadvias-ordered")
		b.ReportMetric(float64(arbitrary.DeadVias), "deadvias-arbitrary")
	}
}
