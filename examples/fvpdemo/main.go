// fvpdemo demonstrates the via-layer TPL machinery: the same-color via
// pitch conflict model (Fig 2), the forbidden via pattern rules of
// §II-D (Fig 7) validated against brute-force 3-coloring, and the
// "wheel" via patterns (Fig 11) that are FVP-free yet uncolorable —
// the case the global Welsh–Powell check exists to catch.
//
// Run with: go run ./examples/fvpdemo
package main

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/tpl"
)

func main() {
	// Part 1: the conflict model. Two vias within the same-color via
	// pitch cannot share a TPL mask.
	fmt.Println("Same-color via pitch (conflict iff squared distance <= 5):")
	origin := geom.XY(0, 0)
	for _, q := range []geom.Pt{
		geom.XY(1, 0), geom.XY(1, 1), geom.XY(2, 0), geom.XY(2, 1), geom.XY(2, 2), geom.XY(3, 0),
	} {
		fmt.Printf("  via at %v vs %v: d²=%d conflict=%v\n", origin, q, origin.SqDist(q), tpl.Conflict(origin, q))
	}

	// Part 2: the O(1) FVP rules vs brute force on the Fig 7 examples.
	fmt.Println("\nForbidden via pattern rules (Fig 7):")
	cases := []struct {
		name string
		w    tpl.Window
	}{
		{"(a) 5 vias, 4 on corners", tpl.Window(0).Set(0, 0).Set(2, 0).Set(0, 2).Set(2, 2).Set(1, 1)},
		{"(b) 5 vias, not corners ", tpl.Window(0).Set(0, 0).Set(1, 0).Set(2, 0).Set(0, 2).Set(1, 2)},
		{"(c) 4 vias, diag corners", tpl.Window(0).Set(0, 0).Set(2, 2).Set(1, 0).Set(2, 1)},
		{"(d) 4 vias, packed      ", tpl.Window(0).Set(0, 0).Set(1, 0).Set(0, 1).Set(1, 1)},
	}
	for _, c := range cases {
		fmt.Printf("  %s: IsFVP=%v  brute-force-3-colorable=%v  chromatic=%d\n",
			c.name, c.w.IsFVP(), c.w.Colorable3Exact(), c.w.ChromaticNumber())
	}

	// Exhaustive agreement over all 512 window patterns.
	agree := 0
	for w := tpl.Window(0); w < 512; w++ {
		if w.IsFVP() == !w.Colorable3Exact() {
			agree++
		}
	}
	fmt.Printf("  rules agree with brute force on %d/512 window patterns\n", agree)

	// Part 3: the wheel pattern — no FVP window anywhere, yet the
	// decomposition graph needs 4 colors.
	fmt.Println("\nWheel via pattern (Fig 11):")
	hub := geom.XY(10, 10)
	pts := tpl.WheelPattern(hub, tpl.WheelRim)
	lv := tpl.NewLayerVias(21, 21)
	for _, p := range pts {
		lv.Add(p)
	}
	fmt.Printf("  vias: %v\n", pts)
	fmt.Printf("  FVP windows: %d\n", len(lv.AllFVPs()))
	g := tpl.FromLayer(lv)
	_, unc := g.WelshPowell(tpl.NumColors)
	ok3, _ := g.ColorableExact(3, 1_000_000)
	ok4, _ := g.ColorableExact(4, 1_000_000)
	fmt.Printf("  Welsh–Powell uncolorable vias: %d, exactly 3-colorable: %v, 4-colorable: %v\n",
		len(unc), ok3, ok4)
	fmt.Println("  → FVP elimination alone cannot guarantee TPL decomposability;")
	fmt.Println("    the router's final decomposition-graph check handles this case.")
}
