// maskview routes a small circuit and renders everything as ASCII art:
// both metal layers, the via layer with FVP markers, the TPL coloring
// of the vias, and the synthesized SADP masks (mandrel / spacer wires
// / cut shapes) of each layer.
//
// Run with: go run ./examples/maskview
package main

import (
	"fmt"
	"log"

	"repro/internal/coloring"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tpl"
	"repro/internal/viz"

	sadproute "repro"
)

func main() {
	nl := &netlist.Netlist{Name: "maskview", W: 20, H: 12, NumLayers: 2, Nets: []*netlist.Net{
		{ID: 0, Name: "a", Pins: []geom.Pt{geom.XY(1, 2), geom.XY(16, 8)}},
		{ID: 1, Name: "b", Pins: []geom.Pt{geom.XY(2, 9), geom.XY(17, 3)}},
		{ID: 2, Name: "c", Pins: []geom.Pt{geom.XY(4, 1), geom.XY(4, 10), geom.XY(12, 6)}},
		{ID: 3, Name: "d", Pins: []geom.Pt{geom.XY(8, 2), geom.XY(14, 10)}},
	}}
	res, err := sadproute.Route(nl, sadproute.Config{
		SADP: coloring.SID, ConsiderDVI: true, ConsiderTPL: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	var pins []geom.Pt
	for _, n := range nl.Nets {
		pins = append(pins, n.Pins...)
	}
	opt := viz.Options{Pins: pins}
	for l := 0; l < res.Grid.NumLayers; l++ {
		fmt.Println(viz.Layer(res.Grid, l, opt))
	}
	fmt.Println(viz.ViaLayer(res.Grid, 0, opt))

	graph := tpl.FromLayer(res.Grid.Vias[0])
	colors, unc := graph.WelshPowell(tpl.NumColors)
	fmt.Println(viz.Coloring(res.Grid, 0, graph, colors, opt))
	fmt.Printf("uncolorable vias: %d\n\n", len(unc))

	dec := res.CheckDecomposition()
	for _, m := range dec.Layers {
		fmt.Println(viz.Masks(res.Grid, m, opt))
	}
	fmt.Printf("mask DRC: %d hard violations, %d findings\n",
		len(dec.HardViolations()), len(dec.Violations))
}
