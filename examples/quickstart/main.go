// Quickstart: route a small placed netlist with full DVI and via-layer
// TPL consideration, insert redundant vias, and verify the result.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/coloring"
	"repro/internal/geom"
	"repro/internal/netlist"

	sadproute "repro"
)

func main() {
	// A hand-placed netlist: 6 nets on a 24×24 grid, two routing
	// layers (metal 2 horizontal, metal 3 vertical).
	nl := &netlist.Netlist{Name: "quickstart", W: 24, H: 24, NumLayers: 2, Nets: []*netlist.Net{
		{ID: 0, Name: "clk", Pins: []geom.Pt{geom.XY(2, 2), geom.XY(18, 2), geom.XY(18, 14)}},
		{ID: 1, Name: "d0", Pins: []geom.Pt{geom.XY(3, 5), geom.XY(12, 9)}},
		{ID: 2, Name: "d1", Pins: []geom.Pt{geom.XY(5, 3), geom.XY(5, 17)}},
		{ID: 3, Name: "q0", Pins: []geom.Pt{geom.XY(9, 6), geom.XY(16, 18)}},
		{ID: 4, Name: "rst", Pins: []geom.Pt{geom.XY(2, 20), geom.XY(20, 20), geom.XY(10, 12)}},
		{ID: 5, Name: "en", Pins: []geom.Pt{geom.XY(14, 4), geom.XY(7, 13)}},
	}}

	res, err := sadproute.Route(nl, sadproute.Config{
		SADP:        coloring.SIM,
		ConsiderDVI: true,
		ConsiderTPL: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routed %q: routability %.0f%%, wirelength %d, vias %d\n",
		nl.Name, res.Stats.Routability*100, res.Stats.Wirelength, res.Stats.Vias)

	// Post-routing TPL-aware double via insertion (fast heuristic).
	sol, err := res.InsertDoubleVias(sadproute.Heuristic, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DVI: %d redundant vias inserted, %d dead vias, %d uncolorable\n",
		sol.InsertedCount, sol.DeadVias, sol.Uncolorable)

	// End-to-end validation: the metal layers must still decompose
	// into SADP masks.
	dec := res.CheckDecomposition()
	fmt.Printf("SADP mask check: %d hard violations (%d total findings)\n",
		len(dec.HardViolations()), len(dec.Violations))
	for l, m := range dec.Layers {
		fmt.Printf("  metal %d: %d mandrel segments, %d spacer wires, %d cut shapes\n",
			l+2, len(m.Mandrel), len(m.SpacerWires), len(m.CutShapes))
	}
}
