// simvssid routes the same circuit under SIM-type (spacer-is-metal,
// cut) and SID-type (spacer-is-dielectric, trim) SADP and compares the
// results — and demonstrates how the color pre-assignment classifies
// L-shaped turns differently for the two processes (paper Fig 4).
//
// Run with: go run ./examples/simvssid
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
	"repro/internal/coloring"
	"repro/internal/geom"

	sadproute "repro"
)

func main() {
	// Part 1: the turn tables of Fig 4. At every grid point exactly
	// one corner orientation is preferred, one non-preferred, and two
	// forbidden — and SIM and SID disagree.
	fmt.Println("Turn classification by grid point class (Fig 4):")
	fmt.Printf("%-8s %-10s %-14s %-14s\n", "class", "corner", "SIM", "SID")
	sim := coloring.Scheme{Type: coloring.SIM}
	sid := coloring.Scheme{Type: coloring.SID}
	for y := 0; y < 2; y++ {
		for x := 0; x < 2; x++ {
			p := geom.XY(x, y)
			for c := coloring.Corner(0); c < coloring.NumCorners; c++ {
				fmt.Printf("(%d,%d)    %-10v %-14v %-14v\n", x, y, c, sim.Turn(p, c), sid.Turn(p, c))
			}
		}
	}

	// Part 2: route one benchmark circuit under both processes with
	// full DVI + TPL consideration and compare.
	nl := bench.Generate(bench.TinySuite()[2])
	fmt.Printf("\nRouting %q (%d nets, %dx%d) under both SADP types:\n",
		nl.Name, len(nl.Nets), nl.W, nl.H)
	fmt.Printf("%-6s %8s %8s %8s %8s %8s\n", "type", "WL", "#Vias", "CPU(s)", "#DV", "#UV")
	for _, typ := range []coloring.SADPType{coloring.SIM, coloring.SID} {
		start := time.Now()
		res, err := sadproute.Route(nl, sadproute.Config{
			SADP: typ, ConsiderDVI: true, ConsiderTPL: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		cpu := time.Since(start)
		sol, err := res.InsertDoubleVias(sadproute.Heuristic, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6v %8d %8d %8.2f %8d %8d\n",
			typ, res.Stats.Wirelength, res.Stats.Vias, cpu.Seconds(), sol.DeadVias, sol.Uncolorable)
	}
}
