// dviflow reproduces Tables VI/VII in miniature: it routes one
// circuit with full DVI + via-layer-TPL consideration, then solves the
// post-routing TPL-aware DVI problem with both the exact ILP
// (warm-started branch and bound, standing in for Gurobi) and the
// O(n log n) heuristic, and reports dead vias, uncolorable vias, CPU
// and the speedup.
//
// Run with: go run ./examples/dviflow
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
	"repro/internal/coloring"
	"repro/internal/dvi"

	sadproute "repro"
)

func main() {
	nl := bench.Generate(bench.Circuit{Name: "dviflow", Nets: 60, W: 84, H: 84, Seed: 7})
	fmt.Printf("circuit %q: %d nets on %dx%d\n", nl.Name, len(nl.Nets), nl.W, nl.H)

	res, err := sadproute.Route(nl, sadproute.Config{
		SADP: coloring.SIM, ConsiderDVI: true, ConsiderTPL: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	inst := res.DVIInstance()
	feas := 0
	for _, f := range inst.Feas {
		feas += len(f)
	}
	fmt.Printf("routed: WL %d, %d vias, %d feasible DVICs\n", res.Stats.Wirelength, len(inst.Vias), feas)

	t0 := time.Now()
	heur := inst.SolveHeuristic(dvi.DefaultHeurParams())
	heurCPU := time.Since(t0)
	if err := heur.Validate(inst); err != nil {
		log.Fatalf("heuristic solution invalid: %v", err)
	}

	t0 = time.Now()
	exact, err := inst.SolveILP(dvi.ILPOptions{TimeLimit: 2 * time.Minute})
	ilpCPU := time.Since(t0)
	if err != nil {
		log.Fatal(err)
	}
	if err := exact.Validate(inst); err != nil {
		log.Fatalf("ILP solution invalid: %v", err)
	}

	fmt.Printf("\n%-10s %8s %8s %10s\n", "method", "#DV", "#UV", "CPU")
	fmt.Printf("%-10s %8d %8d %9.3fs\n", "ILP", exact.DeadVias, exact.Uncolorable, ilpCPU.Seconds())
	fmt.Printf("%-10s %8d %8d %9.3fs\n", "heuristic", heur.DeadVias, heur.Uncolorable, heurCPU.Seconds())
	if heurCPU > 0 {
		fmt.Printf("\nspeedup: %.0fx", float64(ilpCPU)/float64(heurCPU))
		if exact.DeadVias > 0 {
			fmt.Printf(", heuristic dead-via gap: %+.1f%%",
				100*float64(heur.DeadVias-exact.DeadVias)/float64(exact.DeadVias))
		}
		fmt.Println()
	}
	fmt.Println("(the paper reports ~500–670x speedup with ~8–10% more dead vias at full scale)")
}
