// Package sadproute is the public facade of the reproduction of
// "Self-aligned double patterning-aware detailed routing with double
// via insertion and via manufacturability consideration" (Ding, Chu,
// Mak — DAC 2016).
//
// It routes a placed netlist on a color-pre-assigned multi-layer grid
// under SIM- or SID-type SADP design rules, optionally steering the
// router to preserve double-via-insertion opportunities and to keep
// via layers triple-patterning decomposable, and then inserts
// redundant vias post-routing with either the exact ILP or the fast
// heuristic of the paper.
//
// Quickstart:
//
//	nl, _ := netlist.Read(f)
//	res, err := sadproute.Route(nl, sadproute.Config{
//		SADP:        coloring.SIM,
//		ConsiderDVI: true,
//		ConsiderTPL: true,
//	})
//	sol, err := res.InsertDoubleVias(sadproute.Heuristic, 0)
//	fmt.Println(res.Stats.Wirelength, sol.DeadVias)
package sadproute

import (
	"context"
	"time"

	"repro/internal/coloring"
	"repro/internal/decompose"
	"repro/internal/dvi"
	"repro/internal/grid"
	"repro/internal/netlist"
	"repro/internal/router"
)

// Config selects the SADP process and the router's considerations —
// the four experiment configurations of the paper's Tables III/IV.
type Config struct {
	// SADP is the process type: coloring.SIM or coloring.SID.
	SADP coloring.SADPType
	// ConsiderDVI enables the BDC/AMC/CDC cost assignment so routing
	// preserves double-via-insertion opportunities.
	ConsiderDVI bool
	// ConsiderTPL enables the TPLC cost, forbidden-via-pattern removal
	// and the 3-colorability guarantee on via layers.
	ConsiderTPL bool
	// Params overrides the routing cost parameters (zero value =
	// Table II defaults via router.DefaultParams).
	Params router.Params
	// Seed drives deterministic tie-breaking.
	Seed int64
	// Workers bounds the parallelism of the router's independent
	// phases. Any value produces identical routing output; zero means
	// serial.
	Workers int
}

// Result is a completed routing solution.
type Result struct {
	// Router is the underlying engine (grid, routes, stats).
	Router *router.Router
	// Grid is the routed multi-layer grid.
	Grid *grid.Grid
	// Stats are the wirelength/via/iteration counters.
	Stats router.Stats
}

// Method selects the post-routing TPL-aware DVI solver.
type Method uint8

const (
	// Heuristic is the O(n log n) Algorithm 3 solver.
	Heuristic Method = iota
	// ILP is the exact formulation C1–C8, warm-started from the
	// heuristic.
	ILP
)

// Route runs the full SADP-aware detailed routing flow (paper Fig 8)
// up to, and excluding, post-routing DVI. The returned error is
// non-nil if 100% routability or a violation-free state cannot be
// reached.
func Route(nl *netlist.Netlist, cfg Config) (*Result, error) {
	return RouteContext(context.Background(), nl, cfg)
}

// RouteContext is Route bounded by a context: cancellation (or a
// deadline) aborts the router cooperatively at its next iteration
// boundary and the error then wraps ctx.Err(). Routing output is
// unaffected for runs that complete — the cancel channel is only
// polled, never used for scheduling.
func RouteContext(ctx context.Context, nl *netlist.Netlist, cfg Config) (*Result, error) {
	rt, err := router.New(nl, router.Config{
		Scheme:      coloring.Scheme{Type: cfg.SADP},
		ConsiderDVI: cfg.ConsiderDVI,
		ConsiderTPL: cfg.ConsiderTPL,
		Params:      cfg.Params,
		Seed:        cfg.Seed,
		Workers:     cfg.Workers,
		Cancel:      ctx.Done(),
	})
	if err != nil {
		return nil, err
	}
	if err := rt.Run(); err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, err
	}
	return &Result{Router: rt, Grid: rt.Grid(), Stats: rt.Stats()}, nil
}

// InsertDoubleVias solves the post-routing TPL-aware DVI problem on
// the solution. timeLimit bounds the ILP (0 = 10 minutes); it is
// ignored by the heuristic.
func (r *Result) InsertDoubleVias(m Method, timeLimit time.Duration) (*dvi.Solution, error) {
	return r.InsertDoubleViasContext(context.Background(), m, timeLimit)
}

// InsertDoubleViasContext is InsertDoubleVias with a context: a
// deadline additionally caps the ILP time limit, and an
// already-canceled context aborts before solving.
func (r *Result) InsertDoubleViasContext(ctx context.Context, m Method, timeLimit time.Duration) (*dvi.Solution, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	in := dvi.NewInstance(r.Grid, r.Router.Routes())
	if m == Heuristic {
		return in.SolveHeuristic(dvi.DefaultHeurParams()), nil
	}
	if timeLimit == 0 {
		timeLimit = 10 * time.Minute
	}
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < timeLimit {
			timeLimit = rem
		}
		if timeLimit <= 0 {
			timeLimit = time.Millisecond
		}
	}
	return in.SolveILP(dvi.ILPOptions{TimeLimit: timeLimit})
}

// DVIInstance exposes the post-routing DVI problem for custom
// experimentation.
func (r *Result) DVIInstance() *dvi.Instance {
	return dvi.NewInstance(r.Grid, r.Router.Routes())
}

// CheckDecomposition synthesizes the SADP masks of the solution and
// runs the mask DRC (internal/decompose): the end-to-end validation
// that the routed metal stays SADP manufacturable.
func (r *Result) CheckDecomposition() *decompose.Result {
	return decompose.Decompose(r.Grid, r.Router.Routes())
}
