package service

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/coloring"
	"repro/internal/router"
)

// mustKey computes the cache key or fails the test; the tests here
// only feed marshalable specs.
func mustKey(t *testing.T, netlistText string, spec bench.RunSpec) string {
	t.Helper()
	k, err := cacheKey(netlistText, spec)
	if err != nil {
		t.Fatalf("cacheKey: %v", err)
	}
	return k
}

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2, nil)
	c.Add("a", json.RawMessage(`1`))
	c.Add("b", json.RawMessage(`2`))
	if _, ok := c.Get("a"); !ok { // promote a; b becomes LRU
		t.Fatal("a missing")
	}
	c.Add("c", json.RawMessage(`3`))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite promotion")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c missing")
	}
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}
	c.Add("c", json.RawMessage(`33`))
	if v, _ := c.Get("c"); string(v) != `33` {
		t.Fatalf("refresh did not update value: %s", v)
	}
}

func TestCacheKeyNormalization(t *testing.T) {
	nl := "netlist t 8 8 2\nnet a 1 1 5 1\n"
	base := bench.RunSpec{Scheme: coloring.SIM, ConsiderDVI: true, Method: bench.HeurDVI}

	workers := base
	workers.Workers = 8
	if mustKey(t, nl, base) != mustKey(t, nl, workers) {
		t.Fatal("Workers must not affect the cache key (output is worker-invariant)")
	}

	defaults := base
	defaults.Params = router.DefaultParams()
	if mustKey(t, nl, base) != mustKey(t, nl, defaults) {
		t.Fatal("zero Params and explicit defaults must share a key")
	}

	heurLimit := base
	heurLimit.ILPTimeLimit = time.Minute
	if mustKey(t, nl, base) != mustKey(t, nl, heurLimit) {
		t.Fatal("ILPTimeLimit must be ignored for non-ILP methods")
	}

	ilpZero := base
	ilpZero.Method = bench.ILPDVI
	ilpTen := ilpZero
	ilpTen.ILPTimeLimit = 10 * time.Minute
	if mustKey(t, nl, ilpZero) != mustKey(t, nl, ilpTen) {
		t.Fatal("ILP zero time limit must normalize to the 10-minute default")
	}
	ilpOther := ilpZero
	ilpOther.ILPTimeLimit = time.Minute
	if mustKey(t, nl, ilpZero) == mustKey(t, nl, ilpOther) {
		t.Fatal("distinct ILP time limits must not share a key")
	}

	sid := base
	sid.Scheme = coloring.SID
	if mustKey(t, nl, base) == mustKey(t, nl, sid) {
		t.Fatal("SIM and SID must not share a key")
	}
	if mustKey(t, nl, base) == mustKey(t, nl+"#\n", base) {
		t.Fatal("different netlist bytes must not share a key")
	}
}

func TestJobStoreEvictsOnlyFinished(t *testing.T) {
	st := newJobStore(2)
	mk := func(i int) *job { return newJob(fmt.Sprintf("j%d", i), "k", nil, bench.RunSpec{}) }
	j1, j2, j3 := mk(1), mk(2), mk(3)
	j1.finish(json.RawMessage(`{}`), false)
	st.Add(j1)
	st.Add(j2)
	st.Add(j3) // over capacity: j1 (finished) goes, live j2/j3 stay
	if _, ok := st.Get("j1"); ok {
		t.Fatal("finished j1 should have been evicted")
	}
	for _, id := range []string{"j2", "j3"} {
		if _, ok := st.Get(id); !ok {
			t.Fatalf("live job %s evicted", id)
		}
	}
}
