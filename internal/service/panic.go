package service

import (
	"regexp"
	"runtime/debug"
	"strings"
)

// Stack redaction for panic reports that leave the process boundary
// (job error payloads, the journal): keep the call structure —
// goroutine header, function names, file:line — but strip memory
// addresses, receiver pointers and argument values, which leak layout
// and can differ run to run for the same crash. The redacted form is
// stable for a deterministic panic, which the chaos suite relies on.

const maxStackBytes = 4 << 10

var (
	// "(0x1234..., 0xabcd)" argument lists and bare "0x..." words.
	hexWords = regexp.MustCompile(`0x[0-9a-fA-F]+`)
	// Trailing " +0x5c" frame offsets.
	frameOffset = regexp.MustCompile(`\s\+0x[0-9a-fA-F]+$`)
)

// redactedStack captures the current goroutine's stack and redacts it.
func redactedStack() string {
	return redactStack(debug.Stack())
}

func redactStack(raw []byte) string {
	lines := strings.Split(string(raw), "\n")
	out := make([]string, 0, len(lines))
	size := 0
	for _, line := range lines {
		line = frameOffset.ReplaceAllString(line, "")
		line = hexWords.ReplaceAllString(line, "0x…")
		size += len(line) + 1
		if size > maxStackBytes {
			out = append(out, "… stack truncated …")
			break
		}
		out = append(out, line)
	}
	return strings.TrimRight(strings.Join(out, "\n"), "\n")
}
