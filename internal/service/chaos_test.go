package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/service/api"
)

// pollTerminal is pollDone extended with the quarantined state.
func pollTerminal(t *testing.T, ts *httptest.Server, id string) api.JobResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var jr api.JobResponse
		err = json.NewDecoder(resp.Body).Decode(&jr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch jr.Status {
		case api.StatusDone, api.StatusFailed, api.StatusQuarantined:
			return jr
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return api.JobResponse{}
}

// A single injected panic is retried on the same worker and the job
// still completes; the daemon records the crash in its metrics.
func TestChaosPanicRetriedThenCompletes(t *testing.T) {
	flt := fault.New(1)
	flt.Configure("worker.panic", fault.SiteConfig{Times: 1})
	s := mustNew(t, Config{Workers: 1, QueueSize: 4, MaxAttempts: 2, Fault: flt, Run: stubRun})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, sr, _ := doSubmit(t, ts, tinyNetlist, bench.RunSpec{})
	jr := pollTerminal(t, ts, sr.ID)
	if jr.Status != api.StatusDone {
		t.Fatalf("job after one panic = %+v, want done", jr)
	}
	if got := s.metrics.Panics.Load(); got != 1 {
		t.Fatalf("panics_total = %d, want 1", got)
	}
	if got := s.metrics.Quarantined.Load(); got != 0 {
		t.Fatalf("quarantined_total = %d, want 0", got)
	}
	j, _ := s.store.Get(sr.ID)
	if j.attempts() != 2 {
		t.Fatalf("attempts = %d, want 2", j.attempts())
	}
}

// A job that panics on every attempt is quarantined: the daemon stays
// alive, the failure message is a redacted stack, resubmissions of the
// same payload are answered with the verdict, and other jobs still run.
func TestChaosPoisonJobQuarantined(t *testing.T) {
	flt := fault.New(1)
	flt.Configure("worker.panic", fault.SiteConfig{Times: 2}) // exactly the poison job's two attempts
	s := mustNew(t, Config{Workers: 1, QueueSize: 4, MaxAttempts: 2, Fault: flt, Run: stubRun})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, sr, _ := doSubmit(t, ts, tinyNetlist, bench.RunSpec{})
	jr := pollTerminal(t, ts, sr.ID)
	if jr.Status != api.StatusQuarantined {
		t.Fatalf("poison job = %+v, want quarantined", jr)
	}
	if got, want := s.metrics.Panics.Load(), int64(2); got != want {
		t.Fatalf("panics_total = %d, want %d", got, want)
	}
	if got := s.metrics.Quarantined.Load(); got != 1 {
		t.Fatalf("quarantined_total = %d, want 1", got)
	}
	// The stack in the verdict is redacted: no raw addresses survive.
	if regexp.MustCompile(`0x[0-9a-fA-F]{4,}`).MatchString(jr.Error) {
		t.Fatalf("quarantine message leaks raw addresses:\n%s", jr.Error)
	}

	// Resubmitting the poisoned payload does not run it again.
	code, sr2, _ := doSubmit(t, ts, tinyNetlist, bench.RunSpec{})
	if code != http.StatusOK || sr2.Status != api.StatusQuarantined || sr2.ID != sr.ID {
		t.Fatalf("poisoned resubmit = %d %+v, want the original quarantine verdict", code, sr2)
	}

	// The daemon survived: a different job runs clean.
	_, sr3, _ := doSubmit(t, ts, netlistVariant(1), bench.RunSpec{})
	if jr := pollTerminal(t, ts, sr3.ID); jr.Status != api.StatusDone {
		t.Fatalf("post-quarantine job = %+v, want done", jr)
	}
}

// The durability gate: when the submit record cannot be journaled the
// job is rejected with 500 — accepting it would promise crash safety
// the daemon cannot deliver.
func TestChaosJournalAppendFailureRejectsSubmit(t *testing.T) {
	flt := fault.New(1)
	flt.Configure("journal.append", fault.SiteConfig{Times: 1})
	s := mustNew(t, Config{Workers: 1, QueueSize: 4, DataDir: t.TempDir(), Fault: flt, Run: stubRun})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, _, _ := doSubmit(t, ts, tinyNetlist, bench.RunSpec{})
	if code != http.StatusInternalServerError {
		t.Fatalf("submit with failing journal answered %d, want 500", code)
	}
	if got := s.metrics.JournalErrors.Load(); got != 1 {
		t.Fatalf("journal_errors_total = %d, want 1", got)
	}
	// The fault is spent; the same payload now submits and completes.
	code, sr, _ := doSubmit(t, ts, tinyNetlist, bench.RunSpec{})
	if code != http.StatusAccepted {
		t.Fatalf("retry submit answered %d, want 202", code)
	}
	if jr := pollTerminal(t, ts, sr.ID); jr.Status != api.StatusDone {
		t.Fatalf("retry job = %+v, want done", jr)
	}
}

// Cache faults degrade to cache misses, never to wrong answers: a
// dropped Add means the next identical submission routes again, a
// failed Get means one redundant route.
func TestChaosCacheFaultsAreMisses(t *testing.T) {
	flt := fault.New(1)
	flt.Configure("cache.add", fault.SiteConfig{Times: 1})
	flt.Configure("cache.get", fault.SiteConfig{Times: 1})
	s := mustNew(t, Config{Workers: 1, QueueSize: 4, Fault: flt, Run: stubRun})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// First submit: Get trips (miss — it was empty anyway), Add trips
	// (result dropped). Second: real miss because the Add was dropped.
	// Third: the second run's Add stuck, so this one hits.
	for i, want := range []int{http.StatusAccepted, http.StatusAccepted, http.StatusOK} {
		code, sr, _ := doSubmit(t, ts, tinyNetlist, bench.RunSpec{})
		if code != want {
			t.Fatalf("submit %d answered %d, want %d", i+1, code, want)
		}
		if code == http.StatusAccepted {
			if jr := pollTerminal(t, ts, sr.ID); jr.Status != api.StatusDone {
				t.Fatalf("submit %d job = %+v", i+1, jr)
			}
		}
	}
	if got := s.metrics.Completed.Load(); got != 2 {
		t.Fatalf("jobs_completed_total = %d, want 2 (one redundant route)", got)
	}
	if got := s.metrics.CacheHits.Load(); got != 1 {
		t.Fatalf("cache_hits_total = %d, want 1", got)
	}
}

// Same seed, same script, same faults, same outcomes: the whole point
// of the harness. Two independent servers replay an identical
// submission sequence under a probabilistic panic site and must agree
// on every job outcome and on the injector fingerprint.
func TestChaosDeterministicAcrossRuns(t *testing.T) {
	script := func() (string, []api.JobStatus) {
		flt := fault.New(42)
		flt.Configure("worker.panic", fault.SiteConfig{Times: -1, Prob: 0.5})
		s := mustNew(t, Config{Workers: 1, QueueSize: 32, MaxAttempts: 2, Fault: flt, Run: stubRun})
		defer s.Shutdown(context.Background())
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		var outcomes []api.JobStatus
		for i := 0; i < 8; i++ {
			_, sr, _ := doSubmit(t, ts, netlistVariant(i), bench.RunSpec{})
			outcomes = append(outcomes, pollTerminal(t, ts, sr.ID).Status)
		}
		return flt.Snapshot(), outcomes
	}
	snap1, out1 := script()
	snap2, out2 := script()
	if snap1 != snap2 {
		t.Fatalf("fault fingerprints diverge across same-seed runs:\n%s\nvs\n%s", snap1, snap2)
	}
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatalf("job %d outcome %q vs %q across same-seed runs", i, out1[i], out2[i])
		}
	}
	// The scripted probability must exercise both paths, or the test
	// proves nothing.
	var sawQuarantine, sawDone bool
	for _, o := range out1 {
		sawQuarantine = sawQuarantine || o == api.StatusQuarantined
		sawDone = sawDone || o == api.StatusDone
	}
	if !sawQuarantine || !sawDone {
		t.Fatalf("script too tame: outcomes %v must include both done and quarantined", out1)
	}
}
