package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/netlist"
	"repro/internal/router"
	"repro/internal/service/api"
)

// FuzzSubmit throws arbitrary bytes at the job submission endpoint.
// The body crosses the trust boundary twice — JSON decode of the spec
// and the netlist parser — so the invariant is: the handler never
// panics and never answers 5xx; malformed input is always a 4xx with
// a JSON error payload.
func FuzzSubmit(f *testing.F) {
	// One shared server with a stub flow: the fuzzer exercises request
	// handling, not routing.
	s, err := New(Config{
		Workers:   2,
		QueueSize: 16,
		Run: func(ctx context.Context, nl *netlist.Netlist, spec bench.RunSpec, _ *router.Arena) (api.Result, error) {
			return api.Result{Row: bench.Row{CKT: nl.Name, Routability: 1}}, nil
		},
	})
	if err != nil {
		f.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	f.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})

	f.Add(`{"netlist": "netlist t 8 8 2\nnet a 1 1 5 1\n", "spec": {"method": "heur"}}`)
	f.Add(`{"netlist": "netlist t 8 8 2\nnet a 1 1 5 1\n", "spec": {"scheme": "sid", "consider_dvi": true, "consider_tpl": true, "method": "ilp", "ilp_node_limit": 50000, "verify": true}}`)
	f.Add(`{"netlist": "", "spec": {}}`)
	f.Add(`{}`)
	f.Add(``)
	f.Add(`not json at all`)
	f.Add(`{"netlist": "netlist t 8 8 2\n", "spec": {"method": "bogus"}}`)
	f.Add(`{"netlist": "netlist t 8 8 2\n", "spec": {"method": 255}}`)
	f.Add(`{"netlist": "netlist t 8 8 2\n", "spec": {"unknown_field": 1}}`)
	f.Add(`{"netlist": "netlist t -1 -1 0\nnet a 1 1 5 1\n", "spec": {"method": "none"}}`)
	f.Add(`{"netlist": "netlist t 99999999 99999999 9\nnet a 1 1 5 1\n", "spec": {"method": "none"}}`)
	f.Add(`{"netlist": "netlist t 8 8 2\nnet a 1 1 5 1\n", "spec": {"ilp_time_limit": -7}}`)
	f.Add(`[1, 2, 3]`)
	f.Add(`{"netlist": 42, "spec": "heur"}`)

	f.Fuzz(func(t *testing.T, body string) {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST failed outright: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 500 {
			t.Fatalf("submit answered %d for body %q", resp.StatusCode, body)
		}
	})
}
