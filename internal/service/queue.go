package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
)

// startWorkers launches the fixed worker pool. Each worker pulls jobs
// off the bounded FIFO channel until Shutdown closes it; because the
// workers keep draining after close, every job that was accepted with
// 202 is driven to a terminal state before Shutdown returns.
func (s *Server) startWorkers() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
}

// runJob drives one job through the flow under the per-job timeout.
func (s *Server) runJob(j *job) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	ctx := s.baseCtx
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	j.setRunning()
	s.metrics.Routed.Add(1)
	res, err := s.run(ctx, j.nl, j.spec)

	// Reach the terminal state (and, on success, populate the cache)
	// BEFORE releasing the single-flight key: a concurrent identical
	// submission must either coalesce onto this job or hit the cache —
	// never land in a gap between the two and route again.
	switch {
	case err != nil:
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.metrics.Canceled.Add(1)
		}
		s.metrics.Failed.Add(1)
		j.fail(err.Error())
		s.logf("job %s failed: %v", j.id, err)
	default:
		raw, merr := json.Marshal(res)
		if merr != nil {
			s.metrics.Failed.Add(1)
			j.fail(fmt.Sprintf("marshal result: %v", merr))
			break
		}
		s.cache.Add(j.key, raw)
		s.metrics.Completed.Add(1)
		j.finish(raw, false)
		s.logf("job %s done: ckt=%s wl=%d vias=%d dv=%d uv=%d", j.id, res.Row.CKT, res.Row.WL, res.Row.Vias, res.Row.DV, res.Row.UV)
	}

	s.mu.Lock()
	if s.running[j.key] == j {
		delete(s.running, j.key)
	}
	s.mu.Unlock()
}
