package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/router"
	"repro/internal/service/api"
)

// startWorkers launches the fixed worker pool. Each worker pulls jobs
// off the bounded FIFO channel until Shutdown closes it; because the
// workers keep draining after close, every job that was accepted with
// 202 is driven to a terminal state before Shutdown returns.
//
// Each worker owns one router arena: back-to-back jobs on the same
// grid shape reuse the previous job's routing state wholesale instead
// of reallocating it (DESIGN.md §12). The arena never crosses
// goroutines, and a panicking attempt simply never releases its router
// back, so a job that corrupted its state cannot poison a later one.
func (s *Server) startWorkers() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			var arena *router.Arena
			if !s.cfg.NoArena {
				arena = router.NewArena()
			}
			for j := range s.queue {
				s.runJob(j, arena)
			}
		}()
	}
}

// runJob drives one job to a terminal state. Each attempt runs under
// its own recover(): a panic anywhere in the routing/ILP stack is
// converted to a structured failure instead of killing the daemon,
// retried while attempts remain, and quarantined once the budget is
// spent so a poison job cannot crash-loop the service.
func (s *Server) runJob(j *job, arena *router.Arena) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	for {
		attempt := j.beginAttempt()
		s.journalAppend(journalRecord{Type: recRunning, ID: j.id, Key: j.key, Attempt: attempt})
		res, err, panicMsg := s.runAttempt(j, arena)

		if panicMsg != "" {
			s.metrics.Panics.Add(1)
			if attempt < s.cfg.MaxAttempts {
				s.logf("job %s: panic on attempt %d/%d, retrying: %s", j.id, attempt, s.cfg.MaxAttempts, firstLine(panicMsg))
				continue
			}
			msg := fmt.Sprintf("quarantined after %d panicking attempts: %s", attempt, panicMsg)
			s.mu.Lock()
			s.quarantined[j.key] = quarInfo{id: j.id, msg: msg}
			s.mu.Unlock()
			s.journalAppend(journalRecord{Type: recQuarantined, ID: j.id, Key: j.key, Attempt: attempt, Error: msg})
			s.metrics.Quarantined.Add(1)
			s.metrics.Failed.Add(1)
			j.quarantine(msg)
			s.logf("job %s quarantined: %s", j.id, firstLine(panicMsg))
			break
		}

		// Reach the terminal state (and, on success, populate the cache)
		// BEFORE releasing the single-flight key: a concurrent identical
		// submission must either coalesce onto this job or hit the cache —
		// never land in a gap between the two and route again.
		switch {
		case err != nil:
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				s.metrics.Canceled.Add(1)
			}
			s.metrics.Failed.Add(1)
			s.journalAppend(journalRecord{Type: recFailed, ID: j.id, Key: j.key, Attempt: attempt, Error: err.Error()})
			j.fail(err.Error())
			s.logf("job %s failed: %v", j.id, err)
		default:
			raw, merr := json.Marshal(res)
			if merr != nil {
				s.metrics.Failed.Add(1)
				msg := fmt.Sprintf("marshal result: %v", merr)
				s.journalAppend(journalRecord{Type: recFailed, ID: j.id, Key: j.key, Attempt: attempt, Error: msg})
				j.fail(msg)
				break
			}
			degraded := len(res.Degraded) > 0
			if degraded {
				// Degraded output is budget- (hence timing-) dependent:
				// keep it out of the content-addressed cache so a retry
				// under better conditions can produce the full result.
				s.metrics.Degraded.Add(1)
			} else {
				s.cache.Add(j.key, raw)
			}
			s.metrics.Completed.Add(1)
			s.journalAppend(journalRecord{Type: recDone, ID: j.id, Key: j.key, Attempt: attempt, Result: raw, Degraded: degraded})
			j.finish(raw, false)
			s.logf("job %s done: ckt=%s wl=%d vias=%d dv=%d uv=%d degraded=%v",
				j.id, res.Row.CKT, res.Row.WL, res.Row.Vias, res.Row.DV, res.Row.UV, res.Degraded)
		}
		break
	}

	s.releaseKey(j)
}

// runAttempt executes one attempt of the flow under the panic
// barrier. A caught panic is reported as a redacted message rather
// than an error so the caller can tell crashes from ordinary
// failures. The "worker.panic" fault site is the chaos hook for this
// path.
func (s *Server) runAttempt(j *job, arena *router.Arena) (res api.Result, err error, panicMsg string) {
	defer func() {
		if r := recover(); r != nil {
			panicMsg = fmt.Sprintf("panic: %v\n%s", r, redactedStack())
		}
	}()
	ctx := s.baseCtx
	if s.cfg.JobTimeout > 0 {
		limit := s.cfg.JobTimeout
		if j.spec.Degrade {
			// Degrade mode replaces the hard deadline with per-phase
			// budgets (applyDegradeDefaults); the context keeps a 2×
			// backstop so a runaway phase without a budget still ends.
			limit *= 2
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, limit)
		defer cancel()
	}
	j.setRunning()
	s.metrics.Routed.Add(1)
	if ferr := s.fault.Inject("worker.panic"); ferr != nil {
		panic(ferr)
	}
	res, err = s.run(ctx, j.nl, j.spec, arena)
	return
}

// journalAppend is the worker-side append: a failure is counted and
// logged but does not change the job's outcome — the in-memory state
// remains authoritative for this life of the daemon, and the attempt
// bound keeps replay of under-recorded jobs finite.
func (s *Server) journalAppend(rec journalRecord) {
	if err := s.journal.append(rec); err != nil {
		s.metrics.JournalErrors.Add(1)
		s.logf("job %s: journal %s: %v", rec.ID, rec.Type, err)
	}
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
