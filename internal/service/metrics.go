package service

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Metrics are the service's operational counters. All fields are
// monotonic counters unless noted; gauges (queue depth, in-flight
// jobs, cache size) are sampled live at render time because they are
// owned by other structures.
type Metrics struct {
	// Submitted counts POST /v1/jobs requests that decoded and
	// validated successfully (including cache hits and dedups).
	Submitted atomic.Int64
	// Rejected counts submissions refused with 429 (queue full).
	Rejected atomic.Int64
	// Deduped counts submissions coalesced onto an already queued or
	// running identical job (single-flight).
	Deduped atomic.Int64
	// CacheHits / CacheMisses count result-cache lookups at submit.
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	// Routed counts jobs a worker actually started the flow for — a
	// cache hit is visible as Submitted increasing while Routed does
	// not.
	Routed atomic.Int64
	// Completed / Failed count terminal worker outcomes.
	Completed atomic.Int64
	Failed    atomic.Int64
	// Canceled counts jobs aborted by the per-job timeout or shutdown.
	Canceled atomic.Int64
	// Panics counts worker panics caught by the per-attempt recover();
	// each is converted to a structured failure instead of killing the
	// daemon.
	Panics atomic.Int64
	// Quarantined counts jobs isolated after panicking on every
	// allowed attempt.
	Quarantined atomic.Int64
	// Degraded counts jobs that completed in a degraded mode (phase
	// budget expired, graceful fallback taken).
	Degraded atomic.Int64
	// Replayed counts jobs re-enqueued from the journal on boot.
	Replayed atomic.Int64
	// JournalErrors counts failed journal appends (injected or
	// organic).
	JournalErrors atomic.Int64
}

// Gauges are point-in-time values rendered next to the counters.
type Gauges struct {
	QueueDepth int
	Inflight   int
	CacheSize  int
	Draining   bool
}

// WritePrometheus renders the metrics in the Prometheus text
// exposition format (hand-rolled: the repo takes no dependencies).
func (m *Metrics) WritePrometheus(w io.Writer, g Gauges) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("sadprouted_jobs_submitted_total", "Accepted job submissions.", m.Submitted.Load())
	counter("sadprouted_jobs_rejected_total", "Submissions rejected with 429 (queue full).", m.Rejected.Load())
	counter("sadprouted_jobs_deduped_total", "Submissions single-flighted onto an in-flight identical job.", m.Deduped.Load())
	counter("sadprouted_cache_hits_total", "Submissions served from the result cache.", m.CacheHits.Load())
	counter("sadprouted_cache_misses_total", "Submissions that missed the result cache.", m.CacheMisses.Load())
	counter("sadprouted_jobs_routed_total", "Jobs whose routing flow actually ran.", m.Routed.Load())
	counter("sadprouted_jobs_completed_total", "Jobs that finished successfully.", m.Completed.Load())
	counter("sadprouted_jobs_failed_total", "Jobs that finished with an error.", m.Failed.Load())
	counter("sadprouted_jobs_canceled_total", "Jobs aborted by timeout or shutdown.", m.Canceled.Load())
	counter("sadprouted_panics_total", "Worker panics caught and converted to job failures.", m.Panics.Load())
	counter("sadprouted_quarantined_total", "Jobs quarantined after repeated panics.", m.Quarantined.Load())
	counter("sadprouted_jobs_degraded_total", "Jobs completed in a degraded mode after a phase budget expired.", m.Degraded.Load())
	counter("sadprouted_jobs_replayed_total", "Jobs re-enqueued from the journal at boot.", m.Replayed.Load())
	counter("sadprouted_journal_errors_total", "Journal append failures.", m.JournalErrors.Load())
	gauge("sadprouted_queue_depth", "Jobs waiting in the FIFO queue.", int64(g.QueueDepth))
	gauge("sadprouted_jobs_inflight", "Jobs currently being routed.", int64(g.Inflight))
	gauge("sadprouted_cache_entries", "Entries in the result cache.", int64(g.CacheSize))
	d := int64(0)
	if g.Draining {
		d = 1
	}
	gauge("sadprouted_draining", "1 while the service is draining for shutdown.", d)
}
