package service

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics are the service's operational counters. All fields are
// monotonic counters unless noted; gauges (queue depth, in-flight
// jobs, cache size) are sampled live at render time because they are
// owned by other structures.
type Metrics struct {
	// Submitted counts POST /v1/jobs requests that decoded and
	// validated successfully (including cache hits and dedups).
	Submitted atomic.Int64
	// Rejected counts submissions refused with 429 (queue full).
	Rejected atomic.Int64
	// Deduped counts submissions coalesced onto an already queued or
	// running identical job (single-flight).
	Deduped atomic.Int64
	// CacheHits / CacheMisses count result-cache lookups at submit.
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	// Routed counts jobs a worker actually started the flow for — a
	// cache hit is visible as Submitted increasing while Routed does
	// not.
	Routed atomic.Int64
	// Completed / Failed count terminal worker outcomes.
	Completed atomic.Int64
	Failed    atomic.Int64
	// Canceled counts jobs aborted by the per-job timeout or shutdown.
	Canceled atomic.Int64
	// Panics counts worker panics caught by the per-attempt recover();
	// each is converted to a structured failure instead of killing the
	// daemon.
	Panics atomic.Int64
	// Quarantined counts jobs isolated after panicking on every
	// allowed attempt.
	Quarantined atomic.Int64
	// Degraded counts jobs that completed in a degraded mode (phase
	// budget expired, graceful fallback taken).
	Degraded atomic.Int64
	// Replayed counts jobs re-enqueued from the journal on boot.
	Replayed atomic.Int64
	// JournalErrors counts failed journal appends (injected or
	// organic).
	JournalErrors atomic.Int64
	// ClusterRequeues counts jobs re-placed after a worker lease
	// expired (coordinator mode only).
	ClusterRequeues atomic.Int64
	// ClusterDupResults counts duplicate result uploads accepted as
	// no-ops (idempotent /cluster/v1/result).
	ClusterDupResults atomic.Int64
	// ClusterStaleResults counts result uploads that arrived under an
	// expired lease.
	ClusterStaleResults atomic.Int64
	// ClusterUploadRejects counts result uploads the coordinator's
	// validator refused, partitioned by rejection reason ("spec-echo",
	// "content-address", "metric-recount", "verify", ...).
	ClusterUploadRejects LabeledCounter
	// ClusterWorkerQuarantines counts workers quarantined for exceeding
	// the upload-rejection budget.
	ClusterWorkerQuarantines atomic.Int64
	// ClusterHedged counts speculative straggler re-dispatches (a
	// second lease placed on a job running far past the fleet median).
	ClusterHedged atomic.Int64
	// ClusterRetryAttempts counts worker-side RPC retries, partitioned
	// by RPC name ("pull", "result", "heartbeat"). Workers report
	// cumulative counts in heartbeats; the coordinator accumulates the
	// deltas here.
	ClusterRetryAttempts LabeledCounter
	// ClusterSpoolReplays counts result uploads replayed from a
	// worker's durable spool after a restart.
	ClusterSpoolReplays atomic.Int64
}

// LabeledCounter is a monotonic counter partitioned by one label value
// — the hand-rolled stand-in for a Prometheus counter vec.
type LabeledCounter struct {
	mu   sync.Mutex
	vals map[string]int64 // guarded by mu
}

// Add increments the label's count.
func (c *LabeledCounter) Add(label string, n int64) {
	c.mu.Lock()
	if c.vals == nil {
		c.vals = make(map[string]int64)
	}
	c.vals[label] += n
	c.mu.Unlock()
}

// Get returns one label's count.
func (c *LabeledCounter) Get(label string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vals[label]
}

// Total sums all labels.
func (c *LabeledCounter) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t int64
	for _, v := range c.vals {
		t += v
	}
	return t
}

// writePrometheus renders the counter with one sample per label, in
// sorted label order so scrapes are deterministic. The metric is
// emitted (with its HELP/TYPE header only) even when empty, so
// dashboards can discover it before the first event.
func (c *LabeledCounter) writePrometheus(w io.Writer, name, help, labelKey string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	c.mu.Lock()
	defer c.mu.Unlock()
	labels := make([]string, 0, len(c.vals))
	for l := range c.vals {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", name, labelKey, l, c.vals[l])
	}
}

// Gauges are point-in-time values rendered next to the counters.
type Gauges struct {
	QueueDepth int
	Inflight   int
	CacheSize  int
	Draining   bool
}

// WritePrometheus renders the metrics in the Prometheus text
// exposition format (hand-rolled: the repo takes no dependencies).
func (m *Metrics) WritePrometheus(w io.Writer, g Gauges) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("sadprouted_jobs_submitted_total", "Accepted job submissions.", m.Submitted.Load())
	counter("sadprouted_jobs_rejected_total", "Submissions rejected with 429 (queue full).", m.Rejected.Load())
	counter("sadprouted_jobs_deduped_total", "Submissions single-flighted onto an in-flight identical job.", m.Deduped.Load())
	counter("sadprouted_cache_hits_total", "Submissions served from the result cache.", m.CacheHits.Load())
	counter("sadprouted_cache_misses_total", "Submissions that missed the result cache.", m.CacheMisses.Load())
	counter("sadprouted_jobs_routed_total", "Jobs whose routing flow actually ran.", m.Routed.Load())
	counter("sadprouted_jobs_completed_total", "Jobs that finished successfully.", m.Completed.Load())
	counter("sadprouted_jobs_failed_total", "Jobs that finished with an error.", m.Failed.Load())
	counter("sadprouted_jobs_canceled_total", "Jobs aborted by timeout or shutdown.", m.Canceled.Load())
	counter("sadprouted_panics_total", "Worker panics caught and converted to job failures.", m.Panics.Load())
	counter("sadprouted_quarantined_total", "Jobs quarantined after repeated panics.", m.Quarantined.Load())
	counter("sadprouted_jobs_degraded_total", "Jobs completed in a degraded mode after a phase budget expired.", m.Degraded.Load())
	counter("sadprouted_jobs_replayed_total", "Jobs re-enqueued from the journal at boot.", m.Replayed.Load())
	counter("sadprouted_journal_errors_total", "Journal append failures.", m.JournalErrors.Load())
	gauge("sadprouted_queue_depth", "Jobs waiting in the FIFO queue.", int64(g.QueueDepth))
	gauge("sadprouted_jobs_inflight", "Jobs currently being routed.", int64(g.Inflight))
	gauge("sadprouted_cache_entries", "Entries in the result cache.", int64(g.CacheSize))
	d := int64(0)
	if g.Draining {
		d = 1
	}
	gauge("sadprouted_draining", "1 while the service is draining for shutdown.", d)
}

// ClusterGauges are the coordinator's point-in-time values.
type ClusterGauges struct {
	// Workers is the count of workers with a fresh heartbeat.
	Workers int
	// LeasesActive is the count of jobs currently leased to workers.
	LeasesActive int
}

// WriteCluster renders the cluster-scope counters, gauges and the
// per-worker latency histogram; the coordinator appends it to the
// service exposition on GET /metrics.
func (m *Metrics) WriteCluster(w io.Writer, g ClusterGauges, h *LatencyHist) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("sadprouted_cluster_requeues_total", "Jobs re-placed after a worker lease expired.", m.ClusterRequeues.Load())
	counter("sadprouted_cluster_duplicate_results_total", "Duplicate result uploads accepted as no-ops.", m.ClusterDupResults.Load())
	counter("sadprouted_cluster_stale_results_total", "Result uploads that arrived under an expired lease.", m.ClusterStaleResults.Load())
	m.ClusterUploadRejects.writePrometheus(w, "sadprouted_cluster_upload_rejects_total", "Result uploads refused by the coordinator's validator, by reason.", "reason")
	counter("sadprouted_cluster_worker_quarantines_total", "Workers quarantined for exceeding the upload-rejection budget.", m.ClusterWorkerQuarantines.Load())
	counter("sadprouted_cluster_hedged_dispatch_total", "Speculative straggler re-dispatches (second lease on a slow job).", m.ClusterHedged.Load())
	m.ClusterRetryAttempts.writePrometheus(w, "sadprouted_cluster_retry_attempts_total", "Worker-side RPC retries, by RPC.", "rpc")
	counter("sadprouted_cluster_spool_replays_total", "Result uploads replayed from a worker's durable spool after restart.", m.ClusterSpoolReplays.Load())
	gauge("sadprouted_cluster_workers", "Workers with a fresh heartbeat.", int64(g.Workers))
	gauge("sadprouted_cluster_leases_active", "Jobs currently leased to workers.", int64(g.LeasesActive))
	h.WritePrometheus(w, "sadprouted_cluster_job_seconds")
}

// latencyBuckets are the histogram upper bounds in seconds, chosen for
// routing jobs that span tens of milliseconds (tiny suite) to minutes
// (Table I circuits).
var latencyBuckets = [...]float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120}

// LatencyHist is a fixed-bucket latency histogram partitioned by
// worker, rendered in the Prometheus histogram exposition format. The
// repo takes no dependencies, so it is hand-rolled like the rest of
// this file.
type LatencyHist struct {
	mu      sync.Mutex
	byLabel map[string]*histSeries // guarded by mu
}

// histSeries is one worker's observations. Instances are only touched
// while the owning LatencyHist's mu is held.
type histSeries struct {
	counts [len(latencyBuckets) + 1]int64 // per-bucket (non-cumulative); last is +Inf
	sum    float64
	n      int64
}

// NewLatencyHist builds an empty histogram.
func NewLatencyHist() *LatencyHist {
	return &LatencyHist{byLabel: make(map[string]*histSeries)}
}

// Observe records one job latency for the given worker.
func (h *LatencyHist) Observe(worker string, d time.Duration) {
	sec := d.Seconds()
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.byLabel[worker]
	if !ok {
		s = &histSeries{}
		h.byLabel[worker] = s
	}
	i := 0
	for i < len(latencyBuckets) && sec > latencyBuckets[i] {
		i++
	}
	s.counts[i]++
	s.sum += sec
	s.n++
}

// Quantile returns an upper-bound estimate of the q-quantile (q in
// [0,1]) of all observations across workers, along with the total
// observation count. The estimate is the upper bound of the bucket the
// quantile falls in — coarse, but monotone and cheap, which is all the
// hedging sweeper needs to decide "running far past the median". The
// +Inf bucket reports the largest finite bound doubled.
func (h *LatencyHist) Quantile(q float64) (seconds float64, n int64) {
	if h == nil {
		return 0, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var agg [len(latencyBuckets) + 1]int64
	for _, s := range h.byLabel {
		for i, c := range s.counts {
			agg[i] += c
		}
		n += s.n
	}
	if n == 0 {
		return 0, 0
	}
	rank := int64(q * float64(n))
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i, c := range agg {
		cum += c
		if cum >= rank {
			if i < len(latencyBuckets) {
				return latencyBuckets[i], n
			}
			return 2 * latencyBuckets[len(latencyBuckets)-1], n
		}
	}
	return 2 * latencyBuckets[len(latencyBuckets)-1], n
}

// WritePrometheus renders every worker's series under the given metric
// name with a `worker` label, in sorted worker order so scrapes are
// deterministic.
func (h *LatencyHist) WritePrometheus(w io.Writer, name string) {
	if h == nil {
		return
	}
	fmt.Fprintf(w, "# HELP %s Job execution latency per worker.\n# TYPE %s histogram\n", name, name)
	h.mu.Lock()
	defer h.mu.Unlock()
	workers := make([]string, 0, len(h.byLabel))
	for worker := range h.byLabel {
		workers = append(workers, worker)
	}
	sort.Strings(workers)
	for _, worker := range workers {
		s := h.byLabel[worker]
		cum := int64(0)
		for i, ub := range latencyBuckets {
			cum += s.counts[i]
			fmt.Fprintf(w, "%s_bucket{worker=%q,le=%q} %d\n", name, worker, formatBucket(ub), cum)
		}
		cum += s.counts[len(latencyBuckets)]
		fmt.Fprintf(w, "%s_bucket{worker=%q,le=\"+Inf\"} %d\n", name, worker, cum)
		fmt.Fprintf(w, "%s_sum{worker=%q} %g\n", name, worker, s.sum)
		fmt.Fprintf(w, "%s_count{worker=%q} %d\n", name, worker, s.n)
	}
}

// formatBucket renders an upper bound the way Prometheus expects
// ("0.05", "1", "2.5") without float noise.
func formatBucket(ub float64) string {
	return strconv.FormatFloat(ub, 'g', -1, 64)
}
