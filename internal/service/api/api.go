// Package api defines the one result schema shared by the sadprouted
// HTTP service and the sadproute CLI's -json output. It deliberately
// reuses internal/bench's RunSpec (the experiment configuration) and
// Row (the Table-style metrics) as the wire format instead of
// inventing a parallel schema: anything that can drive the benchmark
// harness can drive the service, and vice versa.
package api

import (
	"encoding/json"
	"fmt"

	"repro/internal/bench"
)

// SubmitRequest is the body of POST /v1/jobs.
type SubmitRequest struct {
	// Netlist is the placed netlist in internal/netlist text format.
	Netlist string `json:"netlist"`
	// Spec configures routing and post-routing DVI. Enum fields take
	// their string names ("sim"/"sid", "ilp"/"heur"/"none"); a zero
	// Params block means the paper's Table II defaults.
	Spec bench.RunSpec `json:"spec"`
}

// Result is the completed-flow output: what `sadproute -json` prints
// and what a finished job's JobResponse embeds.
type Result struct {
	// Spec echoes the configuration the flow actually ran.
	Spec bench.RunSpec `json:"spec"`
	// Row carries the paper's table metrics: WL, vias, #DV, #UV,
	// routing and DVI CPU (nanoseconds), routability.
	Row bench.Row `json:"row"`
	// InsertedVias counts redundant vias inserted by post-routing DVI
	// (0 when Spec.Method is "none").
	InsertedVias int `json:"inserted_vias"`
	// Degraded lists the graceful-degradation steps the flow took
	// instead of failing when a phase budget expired (e.g.
	// "dvi-ilp-timeout", "tpl-rr-timeout"). Empty on a full-fidelity
	// run.
	Degraded []string `json:"degraded,omitempty"`
	// RemainingFVPs counts forbidden via patterns left unresolved when
	// the TPL violation-removal phase was degraded (0 otherwise).
	RemainingFVPs int `json:"remaining_fvps,omitempty"`
	// Verify is the independent checker's verdict, present when the
	// spec set "verify": true.
	Verify *VerifyReport `json:"verify,omitempty"`
	// Solution is the marshaled routed geometry (every net's polylines),
	// present when the spec set "include_solution": true. It is a pure
	// function of the input and spec — no timing fields — so it is the
	// payload the distributed differential tests byte-compare across
	// standalone and cluster topologies.
	Solution json.RawMessage `json:"solution,omitempty"`
}

// VerifyReport is the wire form of internal/verify's report: the
// verdict plus each violation spelled out.
type VerifyReport struct {
	Ok         bool     `json:"ok"`
	Violations []string `json:"violations,omitempty"`
	// Truncated is true when violations beyond the checker's cap were
	// dropped from the list.
	Truncated bool `json:"truncated,omitempty"`
}

// ResultFrom wraps a finished bench run into the wire schema, shared
// by the CLI's -json output and the service's defaultRun so both emit
// byte-identical results for the same flow.
func ResultFrom(spec bench.RunSpec, row bench.Row, art *bench.Artifacts) Result {
	res := Result{Spec: spec, Row: row}
	if art == nil {
		return res
	}
	res.Degraded = art.Degraded
	res.RemainingFVPs = art.RemainingFVPs
	if art.Solution != nil {
		res.InsertedVias = art.Solution.InsertedCount
	}
	if spec.IncludeSolution && art.Router != nil {
		// Marshal before the caller releases the router to an arena: the
		// bytes must never alias recycled routing state. Routes are plain
		// exported structs, so a marshal error is unreachable; a nil
		// Solution on the impossible path beats a panic.
		if b, err := json.Marshal(art.Router.Routes()); err == nil {
			res.Solution = b
		}
	}
	if art.Verify != nil {
		vr := &VerifyReport{Ok: art.Verify.Ok(), Truncated: art.Verify.Truncated}
		for _, v := range art.Verify.Violations {
			vr.Violations = append(vr.Violations, v.String())
		}
		res.Verify = vr
	}
	return res
}

// JobStatus is the lifecycle of a submitted job.
type JobStatus string

const (
	StatusQueued  JobStatus = "queued"
	StatusRunning JobStatus = "running"
	StatusDone    JobStatus = "done"
	StatusFailed  JobStatus = "failed"
	// StatusQuarantined marks a poison job: it panicked the worker on
	// every allowed attempt and will not be retried. Submissions whose
	// content address matches a quarantined job are answered with this
	// status immediately instead of crash-looping the daemon.
	StatusQuarantined JobStatus = "quarantined"
)

// SubmitResponse is the body of a successful POST /v1/jobs (202).
type SubmitResponse struct {
	ID     string    `json:"id"`
	Status JobStatus `json:"status"`
	// CacheHit is true when the result was served from the result
	// cache without routing; the job is born in state "done".
	CacheHit bool `json:"cache_hit,omitempty"`
	// Deduped is true when an identical submission was already queued
	// or running; ID names that existing job (single-flight).
	Deduped bool `json:"deduped,omitempty"`
}

// JobResponse is the body of GET /v1/jobs/{id}.
type JobResponse struct {
	ID     string    `json:"id"`
	Status JobStatus `json:"status"`
	// Worker names the cluster worker the job was last placed on
	// (coordinator mode; empty when the job ran in-process).
	Worker string `json:"worker,omitempty"`
	// Error carries the failure message when Status is "failed".
	Error string `json:"error,omitempty"`
	// CacheHit marks results served from the cache.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Result is the marshaled Result, present when Status is "done".
	// It is stored as raw bytes so cache replays are byte-identical.
	Result json.RawMessage `json:"result,omitempty"`
}

// ErrorResponse is the body of every non-2xx API response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// DecodeResult unpacks a JobResponse's raw result.
func (j *JobResponse) DecodeResult() (*Result, error) {
	if j.Result == nil {
		return nil, fmt.Errorf("job %s (%s) has no result", j.ID, j.Status)
	}
	var r Result
	if err := json.Unmarshal(j.Result, &r); err != nil {
		return nil, fmt.Errorf("job %s: bad result payload: %w", j.ID, err)
	}
	return &r, nil
}
