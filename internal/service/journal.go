package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/service/api"
)

// The durable job journal is an append-only write-ahead log under the
// daemon's -data-dir: one JSON record per line, fsynced per append.
// Every job transition is journaled — submit (with the full
// content-addressed payload, so the job can be re-run from the log
// alone), running (with the attempt number), and the terminal states
// (done carries the marshaled result so finished jobs answer GETs and
// re-warm the result cache after a restart).
//
// Recovery reads the log on boot, tolerating a torn final line (the
// signature of dying mid-append), folds the records per job, and
// rewrites a compacted snapshot before serving: terminal jobs shrink
// to a single record without the netlist payload, live jobs keep
// their submit record and are re-enqueued.
const (
	journalFileName = "journal.wal"
	journalVersion  = 1

	recSubmit      = "submit"
	recRunning     = "running"
	recDone        = "done"
	recFailed      = "failed"
	recQuarantined = "quarantined"
)

// journalRecord is one WAL line. Which fields are populated depends on
// Type; unknown types are skipped on replay for forward compatibility.
type journalRecord struct {
	V    int    `json:"v"`
	Type string `json:"type"`
	ID   string `json:"id"`
	Key  string `json:"key,omitempty"`
	// Attempt is the execution count as of a running record (1 for the
	// first run). Terminal records carry the final count.
	Attempt int `json:"attempt,omitempty"`
	// Netlist and Spec reproduce the submission (submit records only).
	Netlist string         `json:"netlist,omitempty"`
	Spec    *bench.RunSpec `json:"spec,omitempty"`
	// Result is the marshaled api.Result (done records only).
	Result json.RawMessage `json:"result,omitempty"`
	// Degraded marks a done record whose result was produced in a
	// degraded mode; replay keeps it answerable but out of the result
	// cache (degraded output is timing-dependent, a later full-fidelity
	// run should not be masked by it).
	Degraded bool `json:"degraded,omitempty"`
	// Error is the failure or quarantine message.
	Error string `json:"error,omitempty"`
	// Worker names the cluster worker an attempt was placed on
	// (running/done records written by a coordinator; empty for
	// in-process execution).
	Worker string `json:"worker,omitempty"`
}

// journal is the append handle. Appends serialize under mu; each
// record is flushed and fsynced before append returns, so a record the
// caller saw succeed survives kill -9.
type journal struct {
	mu    sync.Mutex
	f     *os.File // guarded by mu
	path  string
	fault *fault.Injector
}

// openJournal opens (creating if needed) the journal under dir and
// returns the replayed records of a previous life.
func openJournal(dir string, flt *fault.Injector) (*journal, []journalRecord, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	path := filepath.Join(dir, journalFileName)
	recs, err := readJournal(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	return &journal{f: f, path: path, fault: flt}, recs, nil
}

// readJournal loads every intact record. A missing file is an empty
// journal. A torn or corrupt line ends the replay at the last good
// record (the tail beyond it is dropped by the compaction rewrite)
// rather than failing the boot: the fsync-per-append discipline means
// only the final line can be torn.
func readJournal(path string) ([]journalRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	var recs []journalRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 64<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			break // torn tail: keep what replayed cleanly
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil && len(recs) == 0 {
		return nil, fmt.Errorf("journal: read %s: %w", path, err)
	}
	return recs, nil
}

// append durably writes one record. The error path is live under fault
// injection ("journal.append") and real disk failures; the caller
// decides whether the operation the record describes may proceed.
func (jl *journal) append(rec journalRecord) error {
	if jl == nil {
		return nil
	}
	rec.V = journalVersion
	if err := jl.fault.Inject("journal.append"); err != nil {
		return err
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: marshal: %w", err)
	}
	b = append(b, '\n')
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if _, err := jl.f.Write(b); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := jl.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	return nil
}

// rewrite atomically replaces the journal with the given records
// (write temp, fsync, rename) — the boot-time compaction. The append
// handle switches to the new file.
func (jl *journal) rewrite(recs []journalRecord) error {
	if jl == nil {
		return nil
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	tmp := jl.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: rewrite: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, rec := range recs {
		rec.V = journalVersion
		b, err := json.Marshal(rec)
		if err != nil {
			f.Close()
			return fmt.Errorf("journal: rewrite marshal: %w", err)
		}
		w.Write(b)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("journal: rewrite flush: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: rewrite sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: rewrite close: %w", err)
	}
	if err := os.Rename(tmp, jl.path); err != nil {
		return fmt.Errorf("journal: rewrite rename: %w", err)
	}
	old := jl.f
	nf, err := os.OpenFile(jl.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: reopen: %w", err)
	}
	jl.f = nf
	old.Close()
	return nil
}

// Close releases the append handle.
func (jl *journal) Close() error {
	if jl == nil {
		return nil
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.f.Close()
}

// replayedJob is the folded per-job state of a journal replay.
type replayedJob struct {
	id       string
	key      string
	attempt  int
	netlist  string
	spec     bench.RunSpec
	hasSpec  bool
	status   api.JobStatus // terminal status, or "" while live
	result   json.RawMessage
	degraded bool
	errMsg   string
	worker   string // last recorded placement
}

// foldJournal reduces a record stream to per-job state, in first-seen
// job order.
func foldJournal(recs []journalRecord) []*replayedJob {
	byID := make(map[string]*replayedJob)
	var order []*replayedJob
	get := func(rec journalRecord) *replayedJob {
		rj, ok := byID[rec.ID]
		if !ok {
			rj = &replayedJob{id: rec.ID}
			byID[rec.ID] = rj
			order = append(order, rj)
		}
		if rec.Key != "" {
			rj.key = rec.Key
		}
		if rec.Attempt > rj.attempt {
			rj.attempt = rec.Attempt
		}
		if rec.Worker != "" {
			rj.worker = rec.Worker
		}
		return rj
	}
	for _, rec := range recs {
		if rec.ID == "" {
			continue
		}
		switch rec.Type {
		case recSubmit:
			rj := get(rec)
			rj.netlist = rec.Netlist
			if rec.Spec != nil {
				rj.spec = *rec.Spec
				rj.hasSpec = true
			}
		case recRunning:
			get(rec)
		case recDone:
			rj := get(rec)
			rj.status = api.StatusDone
			rj.result = rec.Result
			rj.degraded = rec.Degraded
		case recFailed:
			rj := get(rec)
			rj.status = api.StatusFailed
			rj.errMsg = rec.Error
		case recQuarantined:
			rj := get(rec)
			rj.status = api.StatusQuarantined
			rj.errMsg = rec.Error
		}
	}
	return order
}

// compactRecords renders the minimal record set equivalent to the
// folded state: terminal jobs keep one payload-free record, live jobs
// keep their full submit plus the attempt high-water mark.
func compactRecords(jobs []*replayedJob) []journalRecord {
	var out []journalRecord
	for _, rj := range jobs {
		switch rj.status {
		case api.StatusDone:
			out = append(out, journalRecord{Type: recDone, ID: rj.id, Key: rj.key, Attempt: rj.attempt, Result: rj.result, Degraded: rj.degraded})
		case api.StatusFailed:
			out = append(out, journalRecord{Type: recFailed, ID: rj.id, Key: rj.key, Attempt: rj.attempt, Error: rj.errMsg})
		case api.StatusQuarantined:
			out = append(out, journalRecord{Type: recQuarantined, ID: rj.id, Key: rj.key, Attempt: rj.attempt, Error: rj.errMsg})
		default:
			spec := rj.spec
			out = append(out, journalRecord{Type: recSubmit, ID: rj.id, Key: rj.key, Netlist: rj.netlist, Spec: &spec})
			if rj.attempt > 0 {
				out = append(out, journalRecord{Type: recRunning, ID: rj.id, Key: rj.key, Attempt: rj.attempt, Worker: rj.worker})
			}
		}
	}
	return out
}
