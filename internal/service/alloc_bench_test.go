package service

// Steady-state allocation benchmarks for the worker flow: defaultRun
// with a recycled per-worker arena vs the allocate-fresh path. Run with
// -benchmem; the arena variant's allocs/op is the number the DESIGN.md
// §12 "near zero steady-state allocation" claim refers to.

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/coloring"
	"repro/internal/router"
)

func benchSpec() bench.RunSpec {
	return bench.RunSpec{
		Scheme:      coloring.SIM,
		ConsiderDVI: true,
		ConsiderTPL: true,
		Method:      bench.NoDVI,
	}
}

func BenchmarkJobFresh(b *testing.B) {
	nl := bench.Generate(bench.TinySuite()[0])
	spec := benchSpec()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := defaultRun(ctx, nl, spec, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJobWarmArena(b *testing.B) {
	nl := bench.Generate(bench.TinySuite()[0])
	spec := benchSpec()
	ctx := context.Background()
	arena := router.NewArena()
	if _, err := defaultRun(ctx, nl, spec, arena); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := defaultRun(ctx, nl, spec, arena); err != nil {
			b.Fatal(err)
		}
	}
}
