package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/coloring"
	"repro/internal/netlist"
	"repro/internal/router"
	"repro/internal/service/api"
)

// mustNew builds a Server or fails the test; the configs here never
// set a DataDir that can fail to open.
func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// tinyNetlist is a minimal valid netlist used where routing speed
// doesn't matter (the injected RunFunc never touches it).
const tinyNetlist = "netlist t 8 8 2\nnet a 1 1 5 1\nnet b 2 3 2 6\n"

func netlistVariant(i int) string {
	return fmt.Sprintf("netlist t%d 8 8 2\nnet a 1 1 5 1\nnet b 2 3 2 %d\n", i, 4+i%3)
}

func submitBody(t *testing.T, netlistText string, spec bench.RunSpec) *bytes.Reader {
	t.Helper()
	b, err := json.Marshal(api.SubmitRequest{Netlist: netlistText, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

func doSubmit(t *testing.T, ts *httptest.Server, netlistText string, spec bench.RunSpec) (int, api.SubmitResponse, http.Header) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", submitBody(t, netlistText, spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr api.SubmitResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, sr, resp.Header
}

func pollDone(t *testing.T, ts *httptest.Server, id string) api.JobResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var jr api.JobResponse
		err = json.NewDecoder(resp.Body).Decode(&jr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch jr.Status {
		case api.StatusDone, api.StatusFailed:
			return jr
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return api.JobResponse{}
}

// blockingRun returns a RunFunc that signals each start on started and
// blocks until release is closed (or the context dies).
func blockingRun(started chan string, release chan struct{}) RunFunc {
	return func(ctx context.Context, nl *netlist.Netlist, spec bench.RunSpec, _ *router.Arena) (api.Result, error) {
		started <- nl.Name
		select {
		case <-release:
			return api.Result{Spec: spec, Row: bench.Row{CKT: nl.Name, WL: 42, Routability: 1}}, nil
		case <-ctx.Done():
			return api.Result{}, ctx.Err()
		}
	}
}

// End-to-end over the real flow: the same netlist submitted twice
// routes once; the replay is a cache hit with byte-identical result
// JSON.
func TestEndToEndCacheHit(t *testing.T) {
	raw, err := os.ReadFile("../../examples/tiny.net")
	if err != nil {
		t.Fatal(err)
	}
	s := mustNew(t, Config{Workers: 1, QueueSize: 4})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := bench.RunSpec{Scheme: coloring.SIM, ConsiderDVI: true, ConsiderTPL: true, Method: bench.HeurDVI}
	code, sr, _ := doSubmit(t, ts, string(raw), spec)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	first := pollDone(t, ts, sr.ID)
	if first.Status != api.StatusDone {
		t.Fatalf("first job: %+v", first)
	}
	res, err := first.DecodeResult()
	if err != nil {
		t.Fatal(err)
	}
	if res.Row.Routability != 1 || res.Row.WL == 0 || res.Row.Vias == 0 {
		t.Fatalf("implausible result: %+v", res.Row)
	}
	if got := s.Metrics().Routed.Load(); got != 1 {
		t.Fatalf("routed counter after first job: %d", got)
	}

	code, sr2, _ := doSubmit(t, ts, string(raw), spec)
	if code != http.StatusOK || !sr2.CacheHit {
		t.Fatalf("second submit: status %d, %+v", code, sr2)
	}
	second := pollDone(t, ts, sr2.ID)
	if !second.CacheHit {
		t.Fatalf("second job not marked cache hit: %+v", second)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatalf("cache replay not byte-identical:\n%s\nvs\n%s", first.Result, second.Result)
	}
	if got := s.Metrics().Routed.Load(); got != 1 {
		t.Fatalf("cache hit re-routed: routed counter %d", got)
	}
	if got := s.Metrics().CacheHits.Load(); got != 1 {
		t.Fatalf("cache hit counter: %d", got)
	}
}

// A job submitted with "verify": true runs the real flow and reports
// the independent checker's verdict in the result; the same submission
// without verification is a distinct cache entry carrying no report.
func TestPerJobVerify(t *testing.T) {
	raw, err := os.ReadFile("../../examples/tiny.net")
	if err != nil {
		t.Fatal(err)
	}
	s := mustNew(t, Config{Workers: 1, QueueSize: 4})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := bench.RunSpec{Scheme: coloring.SIM, ConsiderDVI: true, ConsiderTPL: true, Method: bench.HeurDVI}
	code, plain, _ := doSubmit(t, ts, string(raw), spec)
	if code != http.StatusAccepted {
		t.Fatalf("plain submit: status %d", code)
	}
	jr := pollDone(t, ts, plain.ID)
	res, err := jr.DecodeResult()
	if err != nil {
		t.Fatal(err)
	}
	if res.Verify != nil {
		t.Fatalf("verify report present without verify option: %+v", res.Verify)
	}

	spec.Verify = true
	code, verified, _ := doSubmit(t, ts, string(raw), spec)
	if code != http.StatusAccepted {
		t.Fatalf("verify submit: status %d (the verify spec must miss the cache)", code)
	}
	jr = pollDone(t, ts, verified.ID)
	res, err = jr.DecodeResult()
	if err != nil {
		t.Fatal(err)
	}
	if res.Verify == nil {
		t.Fatal("verify option set but result has no verify report")
	}
	if !res.Verify.Ok || len(res.Verify.Violations) != 0 {
		t.Fatalf("verifier rejects the service's own solution: %+v", res.Verify)
	}
}

// A queue sized N rejects submission N+1 with 429 and a Retry-After
// header while the worker is busy.
func TestQueueFullRejectsWith429(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	s := mustNew(t, Config{Workers: 1, QueueSize: 1, Run: blockingRun(started, release)})
	defer func() { close(release); s.Shutdown(context.Background()) }()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := bench.RunSpec{Method: bench.NoDVI}
	if code, _, _ := doSubmit(t, ts, netlistVariant(0), spec); code != http.StatusAccepted {
		t.Fatalf("submit 1: status %d", code)
	}
	<-started // the worker holds job 1; the queue is empty again
	if code, _, _ := doSubmit(t, ts, netlistVariant(1), spec); code != http.StatusAccepted {
		t.Fatalf("submit 2: status %d", code)
	}
	code, _, hdr := doSubmit(t, ts, netlistVariant(2), spec)
	if code != http.StatusTooManyRequests {
		t.Fatalf("submit 3 with full queue: status %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	if got := s.Metrics().Rejected.Load(); got != 1 {
		t.Fatalf("rejected counter: %d", got)
	}
}

// Concurrent identical submissions are single-flighted onto one job.
func TestSingleFlight(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	s := mustNew(t, Config{Workers: 1, QueueSize: 4, Run: blockingRun(started, release)})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := bench.RunSpec{Method: bench.NoDVI}
	code, sr1, _ := doSubmit(t, ts, tinyNetlist, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit 1: status %d", code)
	}
	<-started
	code, sr2, _ := doSubmit(t, ts, tinyNetlist, spec)
	if code != http.StatusAccepted || !sr2.Deduped {
		t.Fatalf("submit 2: status %d, %+v, want deduped 202", code, sr2)
	}
	if sr1.ID != sr2.ID {
		t.Fatalf("dedup returned a different job: %s vs %s", sr1.ID, sr2.ID)
	}
	close(release)
	jr := pollDone(t, ts, sr1.ID)
	if jr.Status != api.StatusDone {
		t.Fatalf("job: %+v", jr)
	}
	if got := s.Metrics().Routed.Load(); got != 1 {
		t.Fatalf("single-flighted pair routed %d times", got)
	}
	if got := s.Metrics().Deduped.Load(); got != 1 {
		t.Fatalf("deduped counter: %d", got)
	}
}

// Shutdown completes the in-flight job before returning, and new
// submissions are refused while draining.
func TestGracefulShutdownDrainsInflight(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	s := mustNew(t, Config{Workers: 1, QueueSize: 4, Run: blockingRun(started, release)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := bench.RunSpec{Method: bench.NoDVI}
	code, sr, _ := doSubmit(t, ts, tinyNetlist, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	<-started

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()

	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a job was still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	if code, _, _ := doSubmit(t, ts, netlistVariant(9), spec); code != http.StatusServiceUnavailable {
		t.Fatalf("submission while draining: status %d, want 503", code)
	}

	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	jr := pollDone(t, ts, sr.ID)
	if jr.Status != api.StatusDone {
		t.Fatalf("in-flight job not completed by drain: %+v", jr)
	}
	if got := s.Metrics().Completed.Load(); got != 1 {
		t.Fatalf("completed counter: %d", got)
	}
}

// The per-job timeout cancels a stuck job and records it as failed.
func TestJobTimeout(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	defer close(release)
	s := mustNew(t, Config{Workers: 1, QueueSize: 4, JobTimeout: 30 * time.Millisecond, Run: blockingRun(started, release)})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, sr, _ := doSubmit(t, ts, tinyNetlist, bench.RunSpec{Method: bench.NoDVI})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	<-started
	jr := pollDone(t, ts, sr.ID)
	if jr.Status != api.StatusFailed || !strings.Contains(jr.Error, "deadline") {
		t.Fatalf("timed-out job: %+v", jr)
	}
	if got := s.Metrics().Canceled.Load(); got != 1 {
		t.Fatalf("canceled counter: %d", got)
	}
}

// Input validation at the trust boundary.
func TestSubmitValidation(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, QueueSize: 1, MaxGridCells: 1 << 20})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{not json"); code != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d", code)
	}
	mustJSON := func(netlistText, specJSON string) string {
		nb, _ := json.Marshal(netlistText)
		return `{"netlist":` + string(nb) + `,"spec":` + specJSON + `}`
	}
	if code := post(mustJSON("netlist x 0 0 2\n", `{}`)); code != http.StatusUnprocessableEntity {
		t.Fatalf("invalid netlist: status %d", code)
	}
	if code := post(mustJSON("netlist x 100000 100000 2\nnet a 1 1 2 2\n", `{}`)); code != http.StatusUnprocessableEntity {
		t.Fatalf("oversized grid: status %d", code)
	}
	if code := post(mustJSON(tinyNetlist, `{"method":"bogus"}`)); code != http.StatusBadRequest {
		t.Fatalf("bogus method: status %d", code)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", resp.StatusCode)
	}
}

// healthz and metrics endpoints respond and carry the expected shape.
func TestHealthAndMetrics(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, QueueSize: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"sadprouted_jobs_submitted_total",
		"sadprouted_jobs_routed_total",
		"sadprouted_cache_hits_total",
		"sadprouted_queue_depth",
		"sadprouted_draining 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics output missing %q:\n%s", want, body)
		}
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while drained: status %d, want 503", resp.StatusCode)
	}
}
