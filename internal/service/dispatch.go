package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/service/api"
)

// External dispatch: the seam internal/cluster builds on. In
// coordinator mode (Config.ExternalExec) the Server keeps everything
// it already does — validation, single-flight, content-addressed
// cache, quarantine registry, durable journal — but no in-process
// worker pool consumes the queue. Instead the coordinator Dequeues
// Assignments, places them on remote workers, and drives them to a
// terminal state through the Complete/Fail/Quarantine calls below.
// Every transition goes through the same journal records and the same
// exactly-once job.terminate gate as in-process execution, which is
// what makes duplicate result uploads and stale-lease races safe: the
// first terminal transition wins, later ones report false and change
// nothing.

// ErrDraining is returned by Dequeue once intake has been closed and
// the queue fully drained: no further assignments will ever arrive.
var ErrDraining = errors.New("service: draining, job queue closed")

// DefaultRun is the real routing flow (route → TPL → DVI wrapped into
// the api.Result schema). Cluster workers execute it out-of-process;
// it is the same function standalone workers run, which is half of the
// byte-identical-across-topologies argument (the other half is the
// deterministic router itself).
var DefaultRun RunFunc = defaultRun

// Assignment is one dequeued job handed to an external placer. The
// identity fields are immutable copies; the handle back to the job is
// private so external callers can only move it through the Server's
// exactly-once transitions.
type Assignment struct {
	ID  string
	Key string
	// Netlist is the submission text, re-parsed by the worker that
	// executes the job (the coordinator never ships *netlist.Netlist
	// pointers across the wire).
	Netlist string
	Spec    bench.RunSpec

	j *job
}

// Attempts returns how many executions the job has consumed so far
// (across panics, crashes and lease expiries — the journal preserves
// the count over coordinator restarts).
func (a *Assignment) Attempts() int { return a.j.attempts() }

// MaxAttempts exposes the configured per-job attempt bound.
func (s *Server) MaxAttempts() int { return s.cfg.MaxAttempts }

// JobTimeout exposes the configured per-job deadline (zero = none).
func (s *Server) JobTimeout() time.Duration { return s.cfg.JobTimeout }

// Dequeue blocks for the next accepted job, the given context, or
// drain. It is the external-exec replacement for the worker pool's
// `range s.queue`; the channel receive keeps the same property that a
// job is delivered to exactly one consumer.
func (s *Server) Dequeue(ctx context.Context) (*Assignment, error) {
	select {
	case j, ok := <-s.queue:
		if !ok {
			return nil, ErrDraining
		}
		return &Assignment{ID: j.id, Key: j.key, Netlist: j.netlistText, Spec: j.spec, j: j}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// StartAttempt records the start of one placed execution: bumps the
// attempt counter, stamps the placement, journals the running record
// (with the worker name, so a crash replay knows where the job was)
// and returns the attempt number.
func (s *Server) StartAttempt(a *Assignment, placement string) int {
	attempt := a.j.beginAttempt()
	a.j.setPlacement(placement)
	a.j.setRunning()
	s.metrics.Routed.Add(1)
	s.journalAppend(journalRecord{Type: recRunning, ID: a.ID, Key: a.Key, Attempt: attempt, Worker: placement})
	s.logf("job %s attempt %d placed on %s", a.ID, attempt, placement)
	return attempt
}

// Requeue returns a not-yet-terminal job to the queued state for
// re-placement (lease expiry). The single-flight key stays held — the
// job is still the one authoritative execution of its content address.
func (s *Server) Requeue(a *Assignment) {
	a.j.setQueued()
}

// CompleteExternal finishes a placed job with its marshaled result.
// Exactly-once: the first completion wins and populates the cache
// (unless degraded) before the single-flight key is released, so a
// concurrent identical submission either coalesces onto the finished
// job or hits the cache — never routes again. A second completion
// (duplicate upload, stale lease) reports false and changes nothing.
func (s *Server) CompleteExternal(a *Assignment, raw json.RawMessage, degraded bool, placement string) bool {
	j := a.j
	if !j.finish(raw, false) {
		return false
	}
	j.setPlacement(placement)
	if degraded {
		// Degraded output is budget-dependent: never cached (same rule
		// as in-process execution).
		s.metrics.Degraded.Add(1)
	} else {
		s.cache.Add(j.key, raw)
	}
	s.metrics.Completed.Add(1)
	s.journalAppend(journalRecord{Type: recDone, ID: j.id, Key: j.key, Attempt: j.attempts(), Result: raw, Degraded: degraded, Worker: placement})
	s.releaseKey(j)
	return true
}

// FailExternal fails a placed job. canceled marks failures caused by
// timeout/shutdown for the Canceled counter.
func (s *Server) FailExternal(a *Assignment, msg string, canceled bool) bool {
	j := a.j
	if !j.fail(msg) {
		return false
	}
	if canceled {
		s.metrics.Canceled.Add(1)
	}
	s.metrics.Failed.Add(1)
	s.journalAppend(journalRecord{Type: recFailed, ID: j.id, Key: j.key, Attempt: j.attempts(), Error: msg})
	s.releaseKey(j)
	s.logf("job %s failed: %s", j.id, firstLine(msg))
	return true
}

// FailInterrupted fails a job whose attempt budget was consumed by
// worker deaths / lease expiries, with the same message the journal
// replay uses for crash-interrupted jobs.
func (s *Server) FailInterrupted(a *Assignment) bool {
	return s.FailExternal(a, fmt.Sprintf("interrupted: job did not complete within %d attempts", s.cfg.MaxAttempts), false)
}

// QuarantineExternal quarantines a placed job's content address after
// it panicked its worker on the last allowed attempt — the cluster
// form of the poison-job isolation.
func (s *Server) QuarantineExternal(a *Assignment, msg string) bool {
	j := a.j
	if !j.quarantine(msg) {
		return false
	}
	s.mu.Lock()
	s.quarantined[j.key] = quarInfo{id: j.id, msg: msg}
	s.mu.Unlock()
	s.metrics.Quarantined.Add(1)
	s.metrics.Failed.Add(1)
	s.journalAppend(journalRecord{Type: recQuarantined, ID: j.id, Key: j.key, Attempt: j.attempts(), Error: msg})
	s.releaseKey(j)
	s.logf("job %s quarantined: %s", j.id, firstLine(msg))
	return true
}

// Lookup returns a stored job's wire response — how the coordinator
// answers duplicate result uploads for already-terminal jobs.
func (s *Server) Lookup(id string) (api.JobResponse, bool) {
	j, ok := s.store.Get(id)
	if !ok {
		return api.JobResponse{}, false
	}
	return j.response(), true
}

// releaseKey drops the single-flight hold iff j still owns it.
func (s *Server) releaseKey(j *job) {
	s.mu.Lock()
	if s.running[j.key] == j {
		delete(s.running, j.key)
	}
	s.mu.Unlock()
}
