package service

import (
	"encoding/json"
	"sync"

	"repro/internal/bench"
	"repro/internal/netlist"
	"repro/internal/service/api"
)

// job is one submission's lifecycle record. The immutable identity
// fields are set at creation; the mutable state is guarded by mu and
// done is closed exactly once on reaching a terminal state.
type job struct {
	id   string
	key  string // content address (cacheKey)
	nl   *netlist.Netlist
	spec bench.RunSpec

	mu       sync.Mutex
	status   api.JobStatus
	errMsg   string
	result   json.RawMessage
	cacheHit bool

	done chan struct{}
}

func newJob(id, key string, nl *netlist.Netlist, spec bench.RunSpec) *job {
	return &job{id: id, key: key, nl: nl, spec: spec, status: api.StatusQueued, done: make(chan struct{})}
}

func (j *job) setRunning() {
	j.mu.Lock()
	j.status = api.StatusRunning
	j.mu.Unlock()
}

// finish records a successful result and wakes waiters.
func (j *job) finish(result json.RawMessage, cacheHit bool) {
	j.mu.Lock()
	j.status = api.StatusDone
	j.result = result
	j.cacheHit = cacheHit
	j.mu.Unlock()
	close(j.done)
}

// fail records a terminal error and wakes waiters.
func (j *job) fail(msg string) {
	j.mu.Lock()
	j.status = api.StatusFailed
	j.errMsg = msg
	j.mu.Unlock()
	close(j.done)
}

func (j *job) finished() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// response snapshots the job as the wire JobResponse.
func (j *job) response() api.JobResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	return api.JobResponse{
		ID:       j.id,
		Status:   j.status,
		Error:    j.errMsg,
		CacheHit: j.cacheHit,
		Result:   j.result,
	}
}

// jobStore is the id → job index with FIFO eviction of *finished*
// jobs beyond max, so an unbounded stream of submissions cannot grow
// memory without bound while live jobs are never dropped.
type jobStore struct {
	mu    sync.Mutex
	max   int
	jobs  map[string]*job
	order []string // insertion order, for eviction scans
}

func newJobStore(max int) *jobStore {
	return &jobStore{max: max, jobs: make(map[string]*job)}
}

func (s *jobStore) Add(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if len(s.jobs) <= s.max {
		return
	}
	kept := s.order[:0]
	excess := len(s.jobs) - s.max
	for _, id := range s.order {
		if excess > 0 {
			if jj, ok := s.jobs[id]; ok && jj.finished() {
				delete(s.jobs, id)
				excess--
				continue
			}
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (s *jobStore) Get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}
