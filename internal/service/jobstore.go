package service

import (
	"encoding/json"
	"sync"

	"repro/internal/bench"
	"repro/internal/netlist"
	"repro/internal/service/api"
)

// job is one submission's lifecycle record. The immutable identity
// fields are set at creation; the mutable state is guarded by mu and
// done is closed exactly once on reaching a terminal state: the first
// terminal transition wins and later ones are no-ops, so concurrent
// finish/fail (e.g. a worker result racing a crash-recovery sweep)
// cannot double-close or tear the status/result pair.
type job struct {
	id   string
	key  string // content address (cacheKey)
	nl   *netlist.Netlist
	spec bench.RunSpec
	// netlistText is retained only on journaled jobs: the journal
	// replays it on restart to re-run interrupted work.
	netlistText string

	mu     sync.Mutex
	status api.JobStatus // guarded by mu
	errMsg string        // guarded by mu
	// placement names the cluster worker the job was last placed on
	// (coordinator mode; empty for in-process execution). guarded by mu
	placement string
	result    json.RawMessage // guarded by mu
	cacheHit  bool            // guarded by mu
	terminal  bool            // guarded by mu
	// attempt counts executions of this job (1 on the first run); it
	// survives restarts via the journal's running records and bounds
	// both panic retries and crash-recovery re-enqueues. guarded by mu
	attempt int

	done chan struct{}
}

func newJob(id, key string, nl *netlist.Netlist, spec bench.RunSpec) *job {
	return &job{id: id, key: key, nl: nl, spec: spec, status: api.StatusQueued, done: make(chan struct{})}
}

func (j *job) setRunning() {
	j.mu.Lock()
	if !j.terminal {
		j.status = api.StatusRunning
	}
	j.mu.Unlock()
}

// setQueued returns a live job to the queued state (cluster requeue
// after a lease expiry).
func (j *job) setQueued() {
	j.mu.Lock()
	if !j.terminal {
		j.status = api.StatusQueued
	}
	j.mu.Unlock()
}

// setPlacement records which cluster worker holds the job.
func (j *job) setPlacement(worker string) {
	j.mu.Lock()
	j.placement = worker
	j.mu.Unlock()
}

// beginAttempt bumps the attempt counter and returns its new value.
func (j *job) beginAttempt() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.attempt++
	return j.attempt
}

func (j *job) attempts() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempt
}

// terminate moves the job to a terminal state exactly once, setting
// every terminal field under the same lock acquisition so a concurrent
// response() can never observe a torn status/result pair. It reports
// whether this call won the transition.
func (j *job) terminate(status api.JobStatus, result json.RawMessage, errMsg string, cacheHit bool) bool {
	j.mu.Lock()
	if j.terminal {
		j.mu.Unlock()
		return false
	}
	j.terminal = true
	j.status = status
	j.result = result
	j.errMsg = errMsg
	j.cacheHit = cacheHit
	j.mu.Unlock()
	close(j.done)
	return true
}

// finish records a successful result and wakes waiters.
func (j *job) finish(result json.RawMessage, cacheHit bool) bool {
	return j.terminate(api.StatusDone, result, "", cacheHit)
}

// fail records a terminal error and wakes waiters.
func (j *job) fail(msg string) bool {
	return j.terminate(api.StatusFailed, nil, msg, false)
}

// quarantine marks the job as poisonous: it crashed repeatedly and
// will not be retried.
func (j *job) quarantine(msg string) bool {
	return j.terminate(api.StatusQuarantined, nil, msg, false)
}

func (j *job) finished() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// response snapshots the job as the wire JobResponse.
func (j *job) response() api.JobResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	return api.JobResponse{
		ID:       j.id,
		Status:   j.status,
		Worker:   j.placement,
		Error:    j.errMsg,
		CacheHit: j.cacheHit,
		Result:   j.result,
	}
}

// jobStore is the id → job index with FIFO eviction of *finished*
// jobs beyond max, so an unbounded stream of submissions cannot grow
// memory without bound while live jobs are never dropped.
type jobStore struct {
	mu    sync.Mutex
	max   int
	jobs  map[string]*job // guarded by mu
	order []string        // guarded by mu; insertion order, for eviction scans
}

func newJobStore(max int) *jobStore {
	return &jobStore{max: max, jobs: make(map[string]*job)}
}

func (s *jobStore) Add(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if len(s.jobs) <= s.max {
		return
	}
	kept := s.order[:0]
	excess := len(s.jobs) - s.max
	for _, id := range s.order {
		if excess > 0 {
			if jj, ok := s.jobs[id]; ok && jj.finished() {
				delete(s.jobs, id)
				excess--
				continue
			}
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (s *jobStore) Get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}
