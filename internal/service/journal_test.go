package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/netlist"
	"repro/internal/router"
	"repro/internal/service/api"
)

// stubRun is a fast deterministic RunFunc for journal tests: the flow
// under test is the recovery machinery, not routing.
func stubRun(ctx context.Context, nl *netlist.Netlist, spec bench.RunSpec, _ *router.Arena) (api.Result, error) {
	return api.Result{Spec: spec, Row: bench.Row{CKT: nl.Name, WL: 7, Vias: 3, Routability: 1}}, nil
}

// writeJournal hand-authors a journal file, standing in for the WAL a
// crashed previous life left behind.
func writeJournal(t *testing.T, dir string, recs ...journalRecord) {
	t.Helper()
	var buf bytes.Buffer
	for _, rec := range recs {
		rec.V = journalVersion
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	if err := os.WriteFile(filepath.Join(dir, journalFileName), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func waitTerminal(t *testing.T, j *job) api.JobResponse {
	t.Helper()
	select {
	case <-j.done:
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not reach a terminal state", j.id)
	}
	return j.response()
}

// A live submit record (accepted, never started) is re-enqueued on
// boot and driven to completion; the id sequence continues past the
// replayed ids.
func TestReplayCompletesLiveJob(t *testing.T) {
	dir := t.TempDir()
	spec := bench.RunSpec{Method: bench.HeurDVI}
	key, err := cacheKey(tinyNetlist, spec)
	if err != nil {
		t.Fatal(err)
	}
	writeJournal(t, dir, journalRecord{Type: recSubmit, ID: "j000007-replayed0000", Key: key, Netlist: tinyNetlist, Spec: &spec})

	s := mustNew(t, Config{Workers: 1, QueueSize: 4, DataDir: dir, Run: stubRun})
	defer s.Shutdown(context.Background())
	j, ok := s.store.Get("j000007-replayed0000")
	if !ok {
		t.Fatal("replayed job missing from the store")
	}
	jr := waitTerminal(t, j)
	if jr.Status != api.StatusDone {
		t.Fatalf("replayed job status %q (error %q), want done", jr.Status, jr.Error)
	}
	if got := s.metrics.Replayed.Load(); got != 1 {
		t.Fatalf("jobs_replayed_total = %d, want 1", got)
	}

	// The id sequence must not collide with replayed ids.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, sr, _ := doSubmit(t, ts, netlistVariant(1), spec)
	if code != http.StatusAccepted {
		t.Fatalf("post-replay submit answered %d", code)
	}
	if !strings.HasPrefix(sr.ID, "j000008-") {
		t.Fatalf("post-replay id %q, want sequence to continue at j000008", sr.ID)
	}
	pollDone(t, ts, sr.ID)
}

// Terminal journal records restore finished jobs for polling, re-warm
// the cache (except degraded results), and re-arm the quarantine
// registry.
func TestReplayTerminalStates(t *testing.T) {
	dir := t.TempDir()
	spec := bench.RunSpec{Method: bench.HeurDVI}
	nlDone, nlDeg, nlQuar := netlistVariant(10), netlistVariant(11), netlistVariant(12)
	mk := func(text string) string {
		k, err := cacheKey(text, spec)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	res := json.RawMessage(`{"row":{"ckt":"t10","wl":7}}`)
	writeJournal(t, dir,
		journalRecord{Type: recDone, ID: "j000001-done00000000", Key: mk(nlDone), Result: res},
		journalRecord{Type: recDone, ID: "j000002-degraded0000", Key: mk(nlDeg), Result: res, Degraded: true},
		journalRecord{Type: recFailed, ID: "j000003-failed000000", Key: "unused-key", Error: "boom"},
		journalRecord{Type: recQuarantined, ID: "j000004-poison000000", Key: mk(nlQuar), Error: "poison"},
	)
	s := mustNew(t, Config{Workers: 1, QueueSize: 8, DataDir: dir, Run: stubRun})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(id string) api.JobResponse {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var jr api.JobResponse
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
		return jr
	}
	if jr := get("j000001-done00000000"); jr.Status != api.StatusDone || !bytes.Equal(jr.Result, res) {
		t.Fatalf("done replay = %+v", jr)
	}
	if jr := get("j000003-failed000000"); jr.Status != api.StatusFailed || jr.Error != "boom" {
		t.Fatalf("failed replay = %+v", jr)
	}
	if jr := get("j000004-poison000000"); jr.Status != api.StatusQuarantined || jr.Error != "poison" {
		t.Fatalf("quarantined replay = %+v", jr)
	}

	// Full-fidelity done result re-warms the cache: identical payload
	// answers 200 with the byte-identical stored result.
	code, sr, _ := doSubmit(t, ts, nlDone, spec)
	if code != http.StatusOK || !sr.CacheHit {
		t.Fatalf("resubmit of journaled done payload: code %d, cacheHit %v", code, sr.CacheHit)
	}
	// A degraded result must NOT mask a future full-fidelity run.
	code, _, _ = doSubmit(t, ts, nlDeg, spec)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit of degraded payload answered %d, want 202 (re-run)", code)
	}
	// A quarantined content address is answered with the verdict.
	code, sr, _ = doSubmit(t, ts, nlQuar, spec)
	if code != http.StatusOK || sr.Status != api.StatusQuarantined || sr.ID != "j000004-poison000000" {
		t.Fatalf("resubmit of quarantined payload = %d %+v", code, sr)
	}
}

// A job whose journal shows MaxAttempts executions with no terminal
// record crashed the daemon that many times: it is failed as
// interrupted, not re-enqueued.
func TestReplayInterruptedAttemptBound(t *testing.T) {
	dir := t.TempDir()
	spec := bench.RunSpec{Method: bench.HeurDVI}
	key, _ := cacheKey(tinyNetlist, spec)
	writeJournal(t, dir,
		journalRecord{Type: recSubmit, ID: "j000001-interrupted0", Key: key, Netlist: tinyNetlist, Spec: &spec},
		journalRecord{Type: recRunning, ID: "j000001-interrupted0", Key: key, Attempt: 2},
	)
	s := mustNew(t, Config{Workers: 1, QueueSize: 4, MaxAttempts: 2, DataDir: dir, Run: stubRun})
	defer s.Shutdown(context.Background())
	j, ok := s.store.Get("j000001-interrupted0")
	if !ok {
		t.Fatal("interrupted job missing from the store")
	}
	jr := waitTerminal(t, j)
	if jr.Status != api.StatusFailed || !strings.Contains(jr.Error, "interrupted") {
		t.Fatalf("interrupted job = %+v, want failed: interrupted", jr)
	}
	if got := s.metrics.Replayed.Load(); got != 0 {
		t.Fatalf("jobs_replayed_total = %d, want 0", got)
	}
}

// One in-flight attempt below the bound is re-enqueued and completes.
func TestReplayInFlightJobRetries(t *testing.T) {
	dir := t.TempDir()
	spec := bench.RunSpec{Method: bench.HeurDVI}
	key, _ := cacheKey(tinyNetlist, spec)
	writeJournal(t, dir,
		journalRecord{Type: recSubmit, ID: "j000001-inflight0000", Key: key, Netlist: tinyNetlist, Spec: &spec},
		journalRecord{Type: recRunning, ID: "j000001-inflight0000", Key: key, Attempt: 1},
	)
	s := mustNew(t, Config{Workers: 1, QueueSize: 4, MaxAttempts: 2, DataDir: dir, Run: stubRun})
	defer s.Shutdown(context.Background())
	j, _ := s.store.Get("j000001-inflight0000")
	if j == nil {
		t.Fatal("in-flight job missing from the store")
	}
	if jr := waitTerminal(t, j); jr.Status != api.StatusDone {
		t.Fatalf("in-flight replay = %+v, want done", jr)
	}
	if j.attempts() != 2 {
		t.Fatalf("attempts = %d, want 2 (1 journaled + 1 re-run)", j.attempts())
	}
}

// Dying mid-append can only tear the final line; replay keeps every
// record before it.
func TestReplayToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	spec := bench.RunSpec{Method: bench.HeurDVI}
	key, _ := cacheKey(tinyNetlist, spec)
	writeJournal(t, dir, journalRecord{Type: recSubmit, ID: "j000001-torn00000000", Key: key, Netlist: tinyNetlist, Spec: &spec})
	path := filepath.Join(dir, journalFileName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"v":1,"type":"done","id":"j000001-to`) // torn mid-record, no newline
	f.Close()

	s := mustNew(t, Config{Workers: 1, QueueSize: 4, DataDir: dir, Run: stubRun})
	defer s.Shutdown(context.Background())
	j, ok := s.store.Get("j000001-torn00000000")
	if !ok {
		t.Fatal("job behind the torn tail missing")
	}
	if jr := waitTerminal(t, j); jr.Status != api.StatusDone {
		t.Fatalf("job behind torn tail = %+v, want done", jr)
	}
	// The boot-time compaction rewrote the file: every line is intact.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range bytes.Split(bytes.TrimSpace(data), []byte("\n")) {
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("post-compaction journal has a bad line %q: %v", line, err)
		}
	}
}

// Boot-time compaction shrinks terminal jobs to one payload-free
// record and keeps live jobs replayable.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	spec := bench.RunSpec{Method: bench.HeurDVI}
	keyA, _ := cacheKey(netlistVariant(20), spec)
	keyB, _ := cacheKey(netlistVariant(21), spec)
	res := json.RawMessage(`{"row":{"ckt":"t20"}}`)
	writeJournal(t, dir,
		journalRecord{Type: recSubmit, ID: "j000001-finished0000", Key: keyA, Netlist: netlistVariant(20), Spec: &spec},
		journalRecord{Type: recRunning, ID: "j000001-finished0000", Key: keyA, Attempt: 1},
		journalRecord{Type: recDone, ID: "j000001-finished0000", Key: keyA, Attempt: 1, Result: res},
		journalRecord{Type: recSubmit, ID: "j000002-live00000000", Key: keyB, Netlist: netlistVariant(21), Spec: &spec},
	)
	recs, err := readJournal(filepath.Join(dir, journalFileName))
	if err != nil {
		t.Fatal(err)
	}
	compact := compactRecords(foldJournal(recs))
	if len(compact) != 2 {
		t.Fatalf("compacted to %d records, want 2: %+v", len(compact), compact)
	}
	if compact[0].Type != recDone || compact[0].Netlist != "" {
		t.Fatalf("terminal job compacted to %+v, want payload-free done record", compact[0])
	}
	if compact[1].Type != recSubmit || compact[1].Netlist != netlistVariant(21) {
		t.Fatalf("live job compacted to %+v, want full submit record", compact[1])
	}

	// End to end: New compacts on disk and the third life still answers.
	s := mustNew(t, Config{Workers: 1, QueueSize: 4, DataDir: dir, Run: stubRun})
	j, _ := s.store.Get("j000002-live00000000")
	if j == nil {
		t.Fatal("live job missing after compaction boot")
	}
	waitTerminal(t, j)
	s.Shutdown(context.Background())

	s2 := mustNew(t, Config{Workers: 1, QueueSize: 4, DataDir: dir, Run: stubRun})
	defer s2.Shutdown(context.Background())
	for _, id := range []string{"j000001-finished0000", "j000002-live00000000"} {
		j, ok := s2.store.Get(id)
		if !ok {
			t.Fatalf("job %s lost across restarts", id)
		}
		if jr := waitTerminal(t, j); jr.Status != api.StatusDone {
			t.Fatalf("job %s = %+v in third life, want done", id, jr)
		}
	}
}

// Two lives of the daemon over the same data dir: a job accepted and
// started by the first life (which never shuts down, standing in for
// kill -9) is completed by the second.
func TestCrashRecoveryAcrossLives(t *testing.T) {
	dir := t.TempDir()
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)

	// Life 1: accepts the job, journals submit+running, then hangs in
	// the flow — and is abandoned without Shutdown, like a crash.
	s1 := mustNew(t, Config{Workers: 1, QueueSize: 4, DataDir: dir, Run: blockingRun(started, release)})
	ts1 := httptest.NewServer(s1.Handler())
	defer ts1.Close()
	spec := bench.RunSpec{Method: bench.HeurDVI}
	code, sr, _ := doSubmit(t, ts1, tinyNetlist, spec)
	if code != http.StatusAccepted {
		t.Fatalf("life-1 submit answered %d", code)
	}
	<-started // the running record is on disk before the flow starts

	// Life 2: replays the journal and finishes the job for real.
	s2 := mustNew(t, Config{Workers: 1, QueueSize: 4, DataDir: dir, Run: stubRun})
	defer s2.Shutdown(context.Background())
	if got := s2.metrics.Replayed.Load(); got != 1 {
		t.Fatalf("life-2 jobs_replayed_total = %d, want 1", got)
	}
	j, ok := s2.store.Get(sr.ID)
	if !ok {
		t.Fatalf("job %s not replayed into life 2", sr.ID)
	}
	jr := waitTerminal(t, j)
	if jr.Status != api.StatusDone {
		t.Fatalf("recovered job = %+v, want done", jr)
	}
	var res api.Result
	if err := json.Unmarshal(jr.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Row.WL != 7 || res.Row.Vias != 3 {
		t.Fatalf("recovered result row = %+v, want the stub's output", res.Row)
	}
}
