package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/router"
)

// resultCache is a content-addressed LRU over marshaled api.Result
// payloads. Storing the marshaled bytes (rather than the struct)
// makes cache replays byte-identical to the first response by
// construction.
type resultCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List               // guarded by mu; front = most recently used
	items map[string]*list.Element // guarded by mu
	fault *fault.Injector
}

type cacheEntry struct {
	key string
	val json.RawMessage
}

func newResultCache(max int, flt *fault.Injector) *resultCache {
	return &resultCache{max: max, ll: list.New(), items: make(map[string]*list.Element), fault: flt}
}

// Get returns the cached payload and promotes the entry. A tripped
// "cache.get" fault site degrades the lookup to a miss — the cache is
// an optimization, never a correctness dependency, and the chaos
// suite holds the service to that.
func (c *resultCache) Get(key string) (json.RawMessage, bool) {
	if c.fault.Inject("cache.get") != nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Add inserts (or refreshes) an entry, evicting the least recently
// used beyond the capacity. A tripped "cache.add" site drops the
// insert (a lost cache write, as from a full or failing backing
// store).
func (c *resultCache) Add(key string, val json.RawMessage) {
	if c.max <= 0 {
		return
	}
	if c.fault.Inject("cache.add") != nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// Len reports the entry count.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// cacheKey derives the content address of a submission: a SHA-256
// over the raw netlist bytes and a canonicalized spec. Normalizations
// mirror what the flow itself does, so specs that cannot produce
// different results share a key:
//   - Workers is dropped (routing output is worker-count invariant,
//     the PR 1 determinism guarantee);
//   - a zero Params block becomes the Table II defaults;
//   - ILPTimeLimit and ILPNodeLimit are dropped unless the method is
//     the ILP (and a zero time limit becomes the documented 10-minute
//     default).
//
// ContentAddress exposes the submission content address to the
// cluster coordinator's upload validator: a worker's result must echo
// a spec that, combined with the job's netlist, re-derives the very
// key the job was accepted under. Any tampering with the echoed spec
// (or a result for the wrong input) changes the address and is
// rejected before it can reach the cache or the journal.
func ContentAddress(netlistText string, spec bench.RunSpec) (string, error) {
	return cacheKey(netlistText, spec)
}

func cacheKey(netlistText string, spec bench.RunSpec) (string, error) {
	norm := spec
	norm.Workers = 0
	if norm.Params == (router.Params{}) {
		norm.Params = router.DefaultParams()
	}
	if norm.Method != bench.ILPDVI {
		norm.ILPTimeLimit = 0
		norm.ILPNodeLimit = 0
	} else if norm.ILPTimeLimit == 0 {
		norm.ILPTimeLimit = 10 * time.Minute
	}
	specJSON, err := json.Marshal(norm)
	if err != nil {
		// RunSpec is a plain struct of scalars so this should be
		// unreachable — but a request-derived value must never be able
		// to panic the daemon, so the error flows back to the submit
		// path (which answers 400) instead.
		return "", fmt.Errorf("marshal spec: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(netlistText))
	h.Write([]byte{0})
	h.Write(specJSON)
	return hex.EncodeToString(h.Sum(nil)), nil
}
