package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/bench"
	"repro/internal/service/api"
)

// Concurrent finish/fail/quarantine race for the terminal transition:
// exactly one caller wins, done closes exactly once (a double close
// would panic), and a concurrent reader never observes a torn
// status/result/error combination. Run under -race in CI.
func TestJobTerminalTransitionRace(t *testing.T) {
	result := json.RawMessage(`{"ok":1}`)
	for iter := 0; iter < 300; iter++ {
		j := newJob("j1", "k", nil, bench.RunSpec{})
		var wins atomic.Int32
		stop := make(chan struct{})

		var readers sync.WaitGroup
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				r := j.response()
				switch r.Status {
				case api.StatusDone:
					if r.Error != "" || string(r.Result) != `{"ok":1}` {
						t.Errorf("torn done snapshot: error=%q result=%s", r.Error, r.Result)
					}
				case api.StatusFailed:
					if r.Error != "boom" || r.Result != nil {
						t.Errorf("torn failed snapshot: error=%q result=%s", r.Error, r.Result)
					}
				case api.StatusQuarantined:
					if r.Error != "poison" || r.Result != nil {
						t.Errorf("torn quarantined snapshot: error=%q result=%s", r.Error, r.Result)
					}
				case api.StatusQueued, api.StatusRunning:
				default:
					t.Errorf("impossible status %q", r.Status)
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()

		var writers sync.WaitGroup
		writers.Add(3)
		go func() {
			defer writers.Done()
			if j.finish(result, false) {
				wins.Add(1)
			}
		}()
		go func() {
			defer writers.Done()
			if j.fail("boom") {
				wins.Add(1)
			}
		}()
		go func() {
			defer writers.Done()
			if j.quarantine("poison") {
				wins.Add(1)
			}
		}()
		writers.Wait()
		close(stop)
		readers.Wait()

		if wins.Load() != 1 {
			t.Fatalf("iteration %d: %d terminal transitions won, want exactly 1", iter, wins.Load())
		}
		if !j.finished() {
			t.Fatalf("iteration %d: done channel not closed after terminal transition", iter)
		}
		// The winner's state stuck: a losing call changed nothing.
		r := j.response()
		switch r.Status {
		case api.StatusDone, api.StatusFailed, api.StatusQuarantined:
		default:
			t.Fatalf("iteration %d: final status %q is not terminal", iter, r.Status)
		}
	}
}

// setRunning after a terminal transition must not resurrect the job.
func TestSetRunningAfterTerminalIsNoOp(t *testing.T) {
	j := newJob("j1", "k", nil, bench.RunSpec{})
	j.fail("boom")
	j.setRunning()
	if r := j.response(); r.Status != api.StatusFailed {
		t.Fatalf("status %q after setRunning on failed job, want failed", r.Status)
	}
}

// Oversized request bodies are rejected with 413 and a JSON error
// before any parsing; the connection stays usable (satellite of the
// -max-request-bytes daemon flag).
func TestOversizedSubmissionRejected(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, QueueSize: 4, MaxBodyBytes: 1 << 10, Run: stubRun})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	big, err := json.Marshal(api.SubmitRequest{Netlist: strings.Repeat("x", 4<<10)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(big)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit answered %d, want 413", resp.StatusCode)
	}
	var er api.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("413 body is not the JSON error schema: %v", err)
	}
	if !strings.Contains(er.Error, "exceeds") {
		t.Fatalf("413 error %q does not name the limit", er.Error)
	}

	// A within-limit submission on the same server still works.
	code, sr, _ := doSubmit(t, ts, tinyNetlist, bench.RunSpec{})
	if code != http.StatusAccepted {
		t.Fatalf("follow-up submit answered %d", code)
	}
	if jr := pollDone(t, ts, sr.ID); jr.Status != api.StatusDone {
		t.Fatalf("follow-up job = %+v", jr)
	}
}
