// Package service implements routing-as-a-service: an HTTP JSON API
// over the full paper flow (SIM/SID routing → TPL violation removal →
// post-routing DVI) with a bounded FIFO job queue, a fixed worker
// pool, a content-addressed LRU result cache, single-flighting of
// identical submissions, per-job timeouts, backpressure (429 +
// Retry-After) and graceful drain on shutdown.
//
// The fault-tolerance layer on top (see DESIGN.md §10): a durable job
// journal under Config.DataDir replays accepted work across crashes,
// worker panics are isolated per attempt and repeat offenders are
// quarantined by content address, and jobs submitted with the degrade
// option trade phase budgets for graceful fallbacks instead of
// failing. All of it is exercised deterministically through
// internal/fault injection sites.
//
// Endpoints:
//
//	POST /v1/jobs      submit {netlist, spec} → 202 {id} (200 on cache hit)
//	GET  /v1/jobs/{id} poll status; result embedded when done
//	GET  /healthz      liveness (503 while draining)
//	GET  /metrics      Prometheus text counters/gauges
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/router"
	"repro/internal/service/api"
)

// RunFunc executes one job's flow. The default implementation is
// bench.RunContextArena wrapped into the api.Result schema; tests
// inject controllable stand-ins. arena is the calling worker's scratch
// arena (nil when recycling is disabled); an implementation that uses
// it must Release the job's router back to it after converting the
// result, and must not retain the router past the call.
type RunFunc func(ctx context.Context, nl *netlist.Netlist, spec bench.RunSpec, arena *router.Arena) (api.Result, error)

// Config sizes the service. Zero values take the defaults noted.
type Config struct {
	// QueueSize bounds the FIFO of accepted-but-not-started jobs
	// (default 64). Submissions beyond it are rejected with 429.
	QueueSize int
	// Workers is the routing worker pool size (default 2).
	Workers int
	// CacheSize is the result cache capacity in entries (default 128).
	CacheSize int
	// MaxStoredJobs bounds the id → job index; finished jobs are
	// evicted FIFO beyond it (default 1024).
	MaxStoredJobs int
	// JobTimeout bounds one job's flow; the deadline also caps the
	// DVI ILP time limit. Zero means no timeout. Jobs running in
	// degrade mode get phase budgets derived from it instead of a hard
	// deadline (plus a 2× hard backstop).
	JobTimeout time.Duration
	// MaxBodyBytes bounds the request body (default 8 MiB); oversized
	// submissions are answered with 413.
	MaxBodyBytes int64
	// MaxGridCells rejects netlists whose W×H×layers exceeds it
	// (default 16M): the grid allocates per cell, and the netlist is
	// user-supplied input.
	MaxGridCells int
	// MaxNets bounds the net count per submission (default 200000).
	MaxNets int
	// DataDir, when set, enables the durable job journal: accepted
	// jobs are WAL-logged and replayed on the next start, so queued
	// and in-flight work survives kill -9.
	DataDir string
	// MaxAttempts bounds executions of one job across panics and
	// crash-recovery re-enqueues (default 2). A job that panics on its
	// last allowed attempt is quarantined; one interrupted by crashes
	// that many times is failed as interrupted.
	MaxAttempts int
	// NoArena disables the per-worker router arenas, making every job
	// allocate its routing state from scratch. The arenas are output-
	// neutral (bit-identical results, proven in internal/router tests);
	// this switch exists for memory-constrained deployments where
	// retaining one grid-sized router per worker between jobs is worse
	// than the steady-state allocation churn.
	NoArena bool
	// DegradeByDefault forces the degrade option on every submission,
	// for operators who prefer degraded results over deadline
	// failures.
	DegradeByDefault bool
	// ExternalExec disables the in-process worker pool: accepted jobs
	// stay on the queue until an external placer (the cluster
	// coordinator) Dequeues them and drives them to a terminal state
	// through StartAttempt/CompleteExternal and friends. Everything
	// else — validation, single-flight, cache, quarantine, journal —
	// behaves identically.
	ExternalExec bool
	// Fault, when non-nil, arms the deterministic fault-injection
	// sites (journal appends, worker execution, cache operations).
	// Nil — the production configuration — makes every site a no-op.
	Fault *fault.Injector
	// Run overrides the flow (tests). Nil means the real flow.
	Run RunFunc
	// Logf, when set, receives one line per job transition.
	Logf func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.MaxStoredJobs <= 0 {
		c.MaxStoredJobs = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxGridCells <= 0 {
		c.MaxGridCells = 16 << 20
	}
	if c.MaxNets <= 0 {
		c.MaxNets = 200000
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 2
	}
	if c.Run == nil {
		c.Run = defaultRun
	}
	return c
}

// defaultRun is the real flow: route + post-routing DVI via the bench
// harness, wrapped into the shared result schema. The router is
// released back to the worker's arena only after ResultFrom has copied
// everything the response needs, so the recycled memory can never
// alias a served result.
func defaultRun(ctx context.Context, nl *netlist.Netlist, spec bench.RunSpec, arena *router.Arena) (api.Result, error) {
	row, art, err := bench.RunContextArena(ctx, nl, spec, arena)
	if err != nil {
		return api.Result{}, err
	}
	res := api.ResultFrom(spec, row, art)
	arena.Release(art.Router)
	return res, nil
}

// Server is the routing service. Create with New, mount Handler() on
// an http.Server, stop with Shutdown.
type Server struct {
	cfg     Config
	run     RunFunc
	metrics Metrics
	cache   *resultCache
	store   *jobStore
	queue   chan *job
	journal *journal
	fault   *fault.Injector

	mu          sync.Mutex
	closed      bool                // guarded by mu; no new submissions; queue is closed
	running     map[string]*job     // guarded by mu; key → queued-or-running job (single-flight)
	quarantined map[string]quarInfo // guarded by mu

	wg          sync.WaitGroup // worker pool
	inflight    atomic.Int64
	seq         atomic.Int64
	journalOnce sync.Once // closes the journal exactly once across CloseIntake/Shutdown

	baseCtx    context.Context
	cancelBase context.CancelFunc
}

// quarInfo records a quarantined content address: the job that
// poisoned it and why, answered to any resubmission of the same
// payload.
type quarInfo struct {
	id  string
	msg string
}

// New builds the service, replays the journal when Config.DataDir is
// set (re-enqueueing interrupted work), and starts the worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		run:         cfg.Run,
		fault:       cfg.Fault,
		cache:       newResultCache(cfg.CacheSize, cfg.Fault),
		store:       newJobStore(cfg.MaxStoredJobs),
		running:     make(map[string]*job),
		quarantined: make(map[string]quarInfo),
	}
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())

	var replayed []*replayedJob
	if cfg.DataDir != "" {
		jl, recs, err := openJournal(cfg.DataDir, cfg.Fault)
		if err != nil {
			return nil, err
		}
		s.journal = jl
		replayed = foldJournal(recs)
	}
	// Size the queue to hold every replayed live job even when that
	// exceeds the configured capacity: work accepted durably in a past
	// life must not be dropped by this one's backpressure limit.
	live := 0
	for _, rj := range replayed {
		if rj.status == "" {
			live++
		}
	}
	qsize := cfg.QueueSize
	if live > qsize {
		qsize = live
	}
	s.queue = make(chan *job, qsize)
	if len(replayed) > 0 {
		if err := s.recover(replayed); err != nil {
			return nil, err
		}
	}
	if !cfg.ExternalExec {
		s.startWorkers()
	}
	return s, nil
}

// recover rebuilds the store, cache, quarantine registry and queue
// from the folded journal, enforcing the attempt bound on interrupted
// jobs, then compacts the journal to the equivalent minimal record
// set.
func (s *Server) recover(jobs []*replayedJob) error {
	var maxSeq int64
	for _, rj := range jobs {
		var n int64
		if _, err := fmt.Sscanf(rj.id, "j%d-", &n); err == nil && n > maxSeq {
			maxSeq = n
		}
		j := newJob(rj.id, rj.key, nil, rj.spec)
		j.attempt = rj.attempt
		j.placement = rj.worker
		switch rj.status {
		case api.StatusDone:
			j.finish(rj.result, false)
			if !rj.degraded {
				s.cache.Add(rj.key, rj.result)
			}
		case api.StatusFailed:
			j.fail(rj.errMsg)
		case api.StatusQuarantined:
			j.quarantine(rj.errMsg)
			//sadplint:ignore lockcheck recover runs from New before startWorkers and the HTTP listener; no other goroutine exists yet
			s.quarantined[rj.key] = quarInfo{id: rj.id, msg: rj.errMsg}
		default:
			// Live job: re-enqueue unless the attempt budget is spent
			// (every recorded attempt ended in a crash or panic that
			// never reached a terminal record).
			if rj.attempt >= s.cfg.MaxAttempts {
				rj.status = api.StatusFailed
				rj.errMsg = fmt.Sprintf("interrupted: job did not complete within %d attempts", s.cfg.MaxAttempts)
				j.fail(rj.errMsg)
				s.logf("job %s: %s", rj.id, rj.errMsg)
				s.store.Add(j)
				continue
			}
			nl, err := netlist.Read(strings.NewReader(rj.netlist))
			if err != nil {
				rj.status = api.StatusFailed
				rj.errMsg = fmt.Sprintf("interrupted: journaled submission unreadable: %v", err)
				j.fail(rj.errMsg)
				s.store.Add(j)
				continue
			}
			j.nl = nl
			j.netlistText = rj.netlist
			//sadplint:ignore lockcheck recover runs from New before startWorkers and the HTTP listener; no other goroutine exists yet
			s.running[rj.key] = j
			s.queue <- j
			s.metrics.Replayed.Add(1)
			s.logf("job %s replayed from journal (attempt %d/%d)", rj.id, rj.attempt+1, s.cfg.MaxAttempts)
		}
		s.store.Add(j)
	}
	if maxSeq > s.seq.Load() {
		s.seq.Store(maxSeq)
	}
	return s.journal.rewrite(compactRecords(jobs))
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Metrics exposes the counters (tests assert on them).
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Handler returns the API routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Shutdown drains the service: no new submissions are accepted, the
// queue is closed, and the call blocks until every accepted job has
// reached a terminal state. If ctx expires first, in-flight jobs are
// canceled (they abort at their next router iteration boundary) and
// the drain is still awaited before returning ctx.Err().
func (s *Server) Shutdown(ctx context.Context) error {
	s.CloseIntake()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.cancelBase()
		<-done
		err = ctx.Err()
	}
	s.journalOnce.Do(func() { s.journal.Close() })
	return err
}

// CloseIntake stops new submissions and closes the queue (idempotent).
// The journal stays open: the cluster coordinator calls this first,
// keeps journaling terminal transitions for jobs still on workers, and
// only then calls Shutdown.
func (s *Server) CloseIntake() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, api.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// applyDegradeDefaults fills the degrade-mode phase budgets a
// submission left unset: half the job timeout each for the TPL
// violation-removal phase and the DVI ILP, so the deadline that would
// have killed the job instead triggers the graceful fallbacks.
func (s *Server) applyDegradeDefaults(spec *bench.RunSpec) {
	if s.cfg.DegradeByDefault {
		spec.Degrade = true
	}
	if !spec.Degrade || s.cfg.JobTimeout <= 0 {
		return
	}
	if spec.ConsiderTPL && spec.TPLBudget == 0 {
		spec.TPLBudget = s.cfg.JobTimeout / 2
	}
	if spec.Method == bench.ILPDVI && spec.ILPTimeLimit == 0 {
		spec.ILPTimeLimit = s.cfg.JobTimeout / 2
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req api.SubmitRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}

	// The netlist is the trust boundary: parse and validate before the
	// submission is allowed to occupy a queue slot.
	nl, err := netlist.Read(strings.NewReader(req.Netlist))
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "netlist: %v", err)
		return
	}
	if cells := nl.W * nl.H * nl.NumLayers; cells > s.cfg.MaxGridCells {
		writeError(w, http.StatusUnprocessableEntity, "netlist: grid %dx%dx%d (%d cells) exceeds limit %d",
			nl.W, nl.H, nl.NumLayers, cells, s.cfg.MaxGridCells)
		return
	}
	if len(nl.Nets) > s.cfg.MaxNets {
		writeError(w, http.StatusUnprocessableEntity, "netlist: %d nets exceed limit %d", len(nl.Nets), s.cfg.MaxNets)
		return
	}
	s.applyDegradeDefaults(&req.Spec)
	key, err := cacheKey(req.Netlist, req.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "spec: %v", err)
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "service is draining")
		return
	}
	// A quarantined content address is poison: answer with the
	// quarantine verdict instead of running it again.
	if q, ok := s.quarantined[key]; ok {
		s.mu.Unlock()
		s.metrics.Submitted.Add(1)
		writeJSON(w, http.StatusOK, api.SubmitResponse{ID: q.id, Status: api.StatusQuarantined})
		return
	}
	// Single-flight: an identical submission already queued or running
	// is returned as-is instead of routing the same input twice.
	if j, ok := s.running[key]; ok {
		id, status := j.id, j.response().Status
		s.mu.Unlock()
		s.metrics.Submitted.Add(1)
		s.metrics.Deduped.Add(1)
		writeJSON(w, http.StatusAccepted, api.SubmitResponse{ID: id, Status: status, Deduped: true})
		return
	}
	// Content-addressed cache: identical past submissions answer
	// immediately with the stored (byte-identical) result.
	if raw, ok := s.cache.Get(key); ok {
		id := s.nextID(key)
		j := newJob(id, key, nil, req.Spec)
		j.finish(raw, true)
		s.store.Add(j)
		s.mu.Unlock()
		s.metrics.Submitted.Add(1)
		s.metrics.CacheHits.Add(1)
		writeJSON(w, http.StatusOK, api.SubmitResponse{ID: id, Status: api.StatusDone, CacheHit: true})
		return
	}
	// Capacity check before the durable accept. Workers only ever
	// shrink the queue and other producers hold s.mu, so a slot seen
	// free here cannot vanish before the send below.
	if len(s.queue) >= s.cfg.QueueSize {
		s.mu.Unlock()
		s.metrics.Rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "job queue full (%d queued)", s.cfg.QueueSize)
		return
	}
	id := s.nextID(key)
	j := newJob(id, key, nl, req.Spec)
	j.netlistText = req.Netlist
	// Durability gate: a 202 promises the job survives a crash, so the
	// submit record must be on disk before the job is accepted.
	if err := s.journal.append(journalRecord{Type: recSubmit, ID: id, Key: key, Netlist: req.Netlist, Spec: &req.Spec}); err != nil {
		s.mu.Unlock()
		s.metrics.JournalErrors.Add(1)
		writeError(w, http.StatusInternalServerError, "journal: %v", err)
		return
	}
	s.queue <- j
	s.running[key] = j
	s.store.Add(j)
	s.mu.Unlock()
	s.metrics.Submitted.Add(1)
	s.metrics.CacheMisses.Add(1)
	s.logf("job %s queued: ckt=%s nets=%d grid=%dx%d", id, nl.Name, len(nl.Nets), nl.W, nl.H)
	writeJSON(w, http.StatusAccepted, api.SubmitResponse{ID: id, Status: api.StatusQueued})
}

// nextID mints a job id: a monotonic sequence number plus a prefix of
// the content address, so operators can eyeball which jobs were the
// same input.
func (s *Server) nextID(key string) string {
	return fmt.Sprintf("j%06d-%s", s.seq.Add(1), key[:12])
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.store.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, j.response())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.closed
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.WriteMetrics(w)
}

// WriteMetrics renders the Prometheus text exposition, sampling the
// live gauges. Exported so the cluster coordinator can compose it with
// its own cluster-scope metrics on one /metrics endpoint.
func (s *Server) WriteMetrics(w io.Writer) {
	s.mu.Lock()
	draining := s.closed
	s.mu.Unlock()
	s.metrics.WritePrometheus(w, Gauges{
		QueueDepth: len(s.queue),
		Inflight:   int(s.inflight.Load()),
		CacheSize:  s.cache.Len(),
		Draining:   draining,
	})
}
