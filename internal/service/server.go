// Package service implements routing-as-a-service: an HTTP JSON API
// over the full paper flow (SIM/SID routing → TPL violation removal →
// post-routing DVI) with a bounded FIFO job queue, a fixed worker
// pool, a content-addressed LRU result cache, single-flighting of
// identical submissions, per-job timeouts, backpressure (429 +
// Retry-After) and graceful drain on shutdown.
//
// Endpoints:
//
//	POST /v1/jobs      submit {netlist, spec} → 202 {id} (200 on cache hit)
//	GET  /v1/jobs/{id} poll status; result embedded when done
//	GET  /healthz      liveness (503 while draining)
//	GET  /metrics      Prometheus text counters/gauges
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/netlist"
	"repro/internal/service/api"
)

// RunFunc executes one job's flow. The default implementation is
// bench.RunContext wrapped into the api.Result schema; tests inject
// controllable stand-ins.
type RunFunc func(ctx context.Context, nl *netlist.Netlist, spec bench.RunSpec) (api.Result, error)

// Config sizes the service. Zero values take the defaults noted.
type Config struct {
	// QueueSize bounds the FIFO of accepted-but-not-started jobs
	// (default 64). Submissions beyond it are rejected with 429.
	QueueSize int
	// Workers is the routing worker pool size (default 2).
	Workers int
	// CacheSize is the result cache capacity in entries (default 128).
	CacheSize int
	// MaxStoredJobs bounds the id → job index; finished jobs are
	// evicted FIFO beyond it (default 1024).
	MaxStoredJobs int
	// JobTimeout bounds one job's flow; the deadline also caps the
	// DVI ILP time limit. Zero means no timeout.
	JobTimeout time.Duration
	// MaxBodyBytes bounds the request body (default 8 MiB).
	MaxBodyBytes int64
	// MaxGridCells rejects netlists whose W×H×layers exceeds it
	// (default 16M): the grid allocates per cell, and the netlist is
	// user-supplied input.
	MaxGridCells int
	// MaxNets bounds the net count per submission (default 200000).
	MaxNets int
	// Run overrides the flow (tests). Nil means the real flow.
	Run RunFunc
	// Logf, when set, receives one line per job transition.
	Logf func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.MaxStoredJobs <= 0 {
		c.MaxStoredJobs = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxGridCells <= 0 {
		c.MaxGridCells = 16 << 20
	}
	if c.MaxNets <= 0 {
		c.MaxNets = 200000
	}
	if c.Run == nil {
		c.Run = defaultRun
	}
	return c
}

// defaultRun is the real flow: route + post-routing DVI via the bench
// harness, wrapped into the shared result schema.
func defaultRun(ctx context.Context, nl *netlist.Netlist, spec bench.RunSpec) (api.Result, error) {
	row, art, err := bench.RunContext(ctx, nl, spec)
	if err != nil {
		return api.Result{}, err
	}
	return api.ResultFrom(spec, row, art), nil
}

// Server is the routing service. Create with New, mount Handler() on
// an http.Server, stop with Shutdown.
type Server struct {
	cfg     Config
	run     RunFunc
	metrics Metrics
	cache   *resultCache
	store   *jobStore
	queue   chan *job

	mu      sync.Mutex
	closed  bool            // no new submissions; queue is closed
	running map[string]*job // key → queued-or-running job (single-flight)

	wg       sync.WaitGroup // worker pool
	inflight atomic.Int64
	seq      atomic.Int64

	baseCtx    context.Context
	cancelBase context.CancelFunc
}

// New builds the service and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		run:     cfg.Run,
		cache:   newResultCache(cfg.CacheSize),
		store:   newJobStore(cfg.MaxStoredJobs),
		queue:   make(chan *job, cfg.QueueSize),
		running: make(map[string]*job),
	}
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())
	s.startWorkers()
	return s
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Metrics exposes the counters (tests assert on them).
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Handler returns the API routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Shutdown drains the service: no new submissions are accepted, the
// queue is closed, and the call blocks until every accepted job has
// reached a terminal state. If ctx expires first, in-flight jobs are
// canceled (they abort at their next router iteration boundary) and
// the drain is still awaited before returning ctx.Err().
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelBase()
		<-done
		return ctx.Err()
	}
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, api.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req api.SubmitRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}

	// The netlist is the trust boundary: parse and validate before the
	// submission is allowed to occupy a queue slot.
	nl, err := netlist.Read(strings.NewReader(req.Netlist))
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "netlist: %v", err)
		return
	}
	if cells := nl.W * nl.H * nl.NumLayers; cells > s.cfg.MaxGridCells {
		writeError(w, http.StatusUnprocessableEntity, "netlist: grid %dx%dx%d (%d cells) exceeds limit %d",
			nl.W, nl.H, nl.NumLayers, cells, s.cfg.MaxGridCells)
		return
	}
	if len(nl.Nets) > s.cfg.MaxNets {
		writeError(w, http.StatusUnprocessableEntity, "netlist: %d nets exceed limit %d", len(nl.Nets), s.cfg.MaxNets)
		return
	}
	key := cacheKey(req.Netlist, req.Spec)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "service is draining")
		return
	}
	// Single-flight: an identical submission already queued or running
	// is returned as-is instead of routing the same input twice.
	if j, ok := s.running[key]; ok {
		status := j.response().Status
		s.mu.Unlock()
		s.metrics.Submitted.Add(1)
		s.metrics.Deduped.Add(1)
		writeJSON(w, http.StatusAccepted, api.SubmitResponse{ID: j.id, Status: status, Deduped: true})
		return
	}
	// Content-addressed cache: identical past submissions answer
	// immediately with the stored (byte-identical) result.
	if raw, ok := s.cache.Get(key); ok {
		id := s.nextID(key)
		j := newJob(id, key, nil, req.Spec)
		j.finish(raw, true)
		s.store.Add(j)
		s.mu.Unlock()
		s.metrics.Submitted.Add(1)
		s.metrics.CacheHits.Add(1)
		writeJSON(w, http.StatusOK, api.SubmitResponse{ID: id, Status: api.StatusDone, CacheHit: true})
		return
	}
	id := s.nextID(key)
	j := newJob(id, key, nl, req.Spec)
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		s.metrics.Rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "job queue full (%d queued)", s.cfg.QueueSize)
		return
	}
	s.running[key] = j
	s.store.Add(j)
	s.mu.Unlock()
	s.metrics.Submitted.Add(1)
	s.metrics.CacheMisses.Add(1)
	s.logf("job %s queued: ckt=%s nets=%d grid=%dx%d", id, nl.Name, len(nl.Nets), nl.W, nl.H)
	writeJSON(w, http.StatusAccepted, api.SubmitResponse{ID: id, Status: api.StatusQueued})
}

// nextID mints a job id: a monotonic sequence number plus a prefix of
// the content address, so operators can eyeball which jobs were the
// same input.
func (s *Server) nextID(key string) string {
	return fmt.Sprintf("j%06d-%s", s.seq.Add(1), key[:12])
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.store.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, j.response())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.closed
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.closed
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w, Gauges{
		QueueDepth: len(s.queue),
		Inflight:   int(s.inflight.Load()),
		CacheSize:  s.cache.Len(),
		Draining:   draining,
	})
}
