package grid

import (
	"testing"

	"repro/internal/coloring"
	"repro/internal/geom"
)

func newTestGrid() *Grid {
	return New(8, 8, 2, coloring.Scheme{Type: coloring.SIM})
}

func TestNewGridPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 5, 2, coloring.Scheme{}) },
		func() { New(5, 5, 1, coloring.Scheme{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid New did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestGridStructure(t *testing.T) {
	g := newTestGrid()
	if len(g.Metal) != 2 || len(g.Vias) != 1 {
		t.Fatalf("layers: %d metal, %d via", len(g.Metal), len(g.Vias))
	}
	if !g.PrefHorizontal(0) || g.PrefHorizontal(1) {
		t.Error("preferred directions wrong")
	}
	if !g.PrefDir(0, geom.East) || g.PrefDir(0, geom.North) {
		t.Error("PrefDir wrong on layer 0")
	}
	if !g.PrefDir(1, geom.South) || g.PrefDir(1, geom.West) {
		t.Error("PrefDir wrong on layer 1")
	}
	if g.NumPoints() != 8*8*2 {
		t.Errorf("NumPoints = %d", g.NumPoints())
	}
}

func TestGridBounds(t *testing.T) {
	g := newTestGrid()
	if !g.InBounds(geom.XYL(0, 0, 0)) || !g.InBounds(geom.XYL(7, 7, 1)) {
		t.Error("corners out of bounds")
	}
	for _, p := range []geom.Pt3{
		geom.XYL(-1, 0, 0), geom.XYL(8, 0, 0), geom.XYL(0, 8, 1),
		geom.XYL(0, 0, -1), geom.XYL(0, 0, 2),
	} {
		if g.InBounds(p) {
			t.Errorf("%v reported in bounds", p)
		}
	}
	if !g.Bounds().Contains(geom.XY(7, 7)) || g.Bounds().Contains(geom.XY(8, 7)) {
		t.Error("Bounds rect wrong")
	}
}

func TestOccupancyAddRemove(t *testing.T) {
	o := NewOccupancy(4, 4)
	p := geom.XY(1, 2)
	o.Add(p, 3)
	o.Add(p, 5)
	if o.Count(p) != 2 || !o.Occupied(p) {
		t.Fatal("Add failed")
	}
	if !o.Overflow(p) {
		t.Error("distinct nets sharing a point not flagged as overflow")
	}
	if !o.OccupiedByOther(p, 3) || !o.Has(p, 3) || !o.Has(p, 5) {
		t.Error("occupant queries wrong")
	}
	o.Remove(p, 3)
	if o.Overflow(p) || o.OccupiedByOther(p, 5) {
		t.Error("overflow persists after Remove")
	}
	if o.UsedCells() != 1 {
		t.Errorf("UsedCells = %d", o.UsedCells())
	}
	o.Remove(p, 5)
	if o.Occupied(p) || o.UsedCells() != 0 {
		t.Error("Remove failed")
	}
}

func TestOccupancySameNetTwiceIsNotOverflow(t *testing.T) {
	o := NewOccupancy(4, 4)
	p := geom.XY(0, 0)
	o.Add(p, 7)
	o.Add(p, 7)
	if o.Overflow(p) {
		t.Error("same net twice flagged as overflow")
	}
	if o.OccupiedByOther(p, 7) {
		t.Error("OccupiedByOther wrong for own net")
	}
}

func TestOccupancyRemoveAbsentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Remove of absent net did not panic")
		}
	}()
	NewOccupancy(4, 4).Remove(geom.XY(0, 0), 1)
}

func TestRoutePathValidation(t *testing.T) {
	r := NewRoute(0)
	defer func() {
		if recover() == nil {
			t.Error("non-unit step accepted")
		}
	}()
	r.AddPath([]geom.Pt3{geom.XYL(0, 0, 0), geom.XYL(2, 0, 0)})
}

// An L-shaped route with one via: (0,0,m0) east to (2,0,m0), up, north
// to (2,2,m1).
func lRoute() *Route {
	r := NewRoute(1)
	r.AddPath([]geom.Pt3{
		geom.XYL(0, 0, 0), geom.XYL(1, 0, 0), geom.XYL(2, 0, 0),
		geom.XYL(2, 0, 1), geom.XYL(2, 1, 1), geom.XYL(2, 2, 1),
	})
	return r
}

func TestRouteDerivedGeometry(t *testing.T) {
	r := lRoute()
	if got := r.Wirelength(); got != 4 {
		t.Errorf("Wirelength = %d, want 4", got)
	}
	if got := r.NumVias(); got != 1 {
		t.Errorf("NumVias = %d, want 1", got)
	}
	vias := r.ViaList()
	if len(vias) != 1 || vias[0] != geom.XYL(2, 0, 0) {
		t.Errorf("ViaList = %v", vias)
	}
	if len(r.PointList()) != 6 {
		t.Errorf("PointList = %v", r.PointList())
	}
	if !r.HasPoint(geom.XYL(1, 0, 0)) || r.HasPoint(geom.XYL(1, 0, 1)) {
		t.Error("HasPoint wrong")
	}
}

func TestRouteViaRecordedAtLowerLayer(t *testing.T) {
	r := NewRoute(2)
	// Down-step via: from layer 1 to layer 0.
	r.AddPath([]geom.Pt3{geom.XYL(3, 3, 1), geom.XYL(3, 3, 0), geom.XYL(4, 3, 0)})
	vias := r.ViaList()
	if len(vias) != 1 || vias[0] != geom.XYL(3, 3, 0) {
		t.Errorf("down-step via recorded at %v", vias)
	}
}

func TestRouteMetalDirs(t *testing.T) {
	r := lRoute()
	dirs := r.MetalDirs(geom.XYL(1, 0, 0))
	if len(dirs) != 2 {
		t.Fatalf("MetalDirs = %v", dirs)
	}
	// Via point (2,0,0): metal extends only west on layer 0.
	dirs = r.MetalDirs(geom.XYL(2, 0, 0))
	if len(dirs) != 1 || dirs[0] != geom.West {
		t.Errorf("MetalDirs at via = %v", dirs)
	}
	// On layer 1 the via point extends only north.
	dirs = r.MetalDirs(geom.XYL(2, 0, 1))
	if len(dirs) != 1 || dirs[0] != geom.North {
		t.Errorf("MetalDirs at via (m1) = %v", dirs)
	}
}

func TestRouteWirelengthDeduplicatesSegments(t *testing.T) {
	r := NewRoute(3)
	seg := []geom.Pt3{geom.XYL(0, 0, 0), geom.XYL(1, 0, 0)}
	r.AddPath(seg)
	r.AddPath(seg) // same segment twice
	if got := r.Wirelength(); got != 1 {
		t.Errorf("Wirelength = %d, want 1 (dedup)", got)
	}
}

func TestRouteConnected(t *testing.T) {
	r := lRoute()
	if !r.Connected([]geom.Pt3{geom.XYL(0, 0, 0), geom.XYL(2, 2, 1)}) {
		t.Error("connected route reported disconnected")
	}
	if r.Connected([]geom.Pt3{geom.XYL(0, 0, 0), geom.XYL(5, 5, 1)}) {
		t.Error("missing pin reported connected")
	}
	// Two disjoint paths are not connected.
	r2 := NewRoute(4)
	r2.AddPath([]geom.Pt3{geom.XYL(0, 0, 0), geom.XYL(1, 0, 0)})
	r2.AddPath([]geom.Pt3{geom.XYL(5, 5, 0), geom.XYL(6, 5, 0)})
	if r2.Connected([]geom.Pt3{geom.XYL(0, 0, 0), geom.XYL(5, 5, 0)}) {
		t.Error("disjoint paths reported connected")
	}
}

func TestGridAddRemoveRoute(t *testing.T) {
	g := newTestGrid()
	r := lRoute()
	g.AddRoute(r)
	if !g.Metal[0].Has(geom.XY(1, 0), r.Net) || !g.Metal[1].Has(geom.XY(2, 1), r.Net) {
		t.Error("metal occupancy missing after AddRoute")
	}
	if !g.Vias[0].Has(geom.XY(2, 0)) || g.TotalVias() != 1 {
		t.Error("via occupancy missing after AddRoute")
	}
	g.RemoveRoute(r)
	if g.Metal[0].Occupied(geom.XY(1, 0)) || g.TotalVias() != 0 {
		t.Error("occupancy persists after RemoveRoute")
	}
}

func TestGridCongestions(t *testing.T) {
	g := newTestGrid()
	a := NewRoute(1)
	a.AddPath([]geom.Pt3{geom.XYL(0, 0, 0), geom.XYL(1, 0, 0), geom.XYL(2, 0, 0)})
	b := NewRoute(2)
	b.AddPath([]geom.Pt3{geom.XYL(1, 0, 0), geom.XYL(1, 0, 1), geom.XYL(1, 1, 1)})
	g.AddRoute(a)
	g.AddRoute(b)
	cong := g.Congestions()
	if len(cong) != 1 || cong[0] != geom.XYL(1, 0, 0) {
		t.Errorf("Congestions = %v", cong)
	}
	g.RemoveRoute(b)
	if len(g.Congestions()) != 0 {
		t.Error("congestion persists after removal")
	}
}

func TestRouteCanonicalizeDeterministic(t *testing.T) {
	r := lRoute()
	r.Canonicalize()
	pts := r.PointList()
	for i := 1; i < len(pts); i++ {
		a, b := pts[i-1], pts[i]
		if a.Layer > b.Layer || (a.Layer == b.Layer && (a.Y > b.Y || (a.Y == b.Y && a.X > b.X))) {
			t.Fatalf("points not sorted: %v before %v", a, b)
		}
	}
}
