// Package grid provides the multi-layer routing grid: structural
// dimensions, per-layer metal occupancy, via occupancy, and routed-net
// geometry (routes). It is the shared substrate of the router, the TPL
// checker, and the DVI engine.
//
// Layer numbering: routing layer 0 is metal 2 of the paper's
// benchmarks (horizontal preferred direction), layer 1 is metal 3
// (vertical preferred), and further layers alternate. Via layer v
// connects routing layers v and v+1. Metal 1 carries pins only and is
// not modeled as a routing layer.
package grid

import (
	"fmt"

	"repro/internal/coloring"
	"repro/internal/geom"
	"repro/internal/tpl"
)

// Grid is a W×H multi-layer routing grid with color pre-assignment.
type Grid struct {
	W, H      int
	NumLayers int
	Scheme    coloring.Scheme

	// Metal[l] is the metal occupancy of routing layer l.
	Metal []*Occupancy
	// Vias[v] is the via occupancy of via layer v (between routing
	// layers v and v+1).
	Vias []*tpl.LayerVias
}

// New creates an empty grid.
func New(w, h, numLayers int, scheme coloring.Scheme) *Grid {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("grid: invalid dims %dx%d", w, h))
	}
	if numLayers < 2 {
		panic(fmt.Sprintf("grid: need at least 2 routing layers, got %d", numLayers))
	}
	g := &Grid{W: w, H: h, NumLayers: numLayers, Scheme: scheme}
	for l := 0; l < numLayers; l++ {
		g.Metal = append(g.Metal, NewOccupancy(w, h))
	}
	for v := 0; v < numLayers-1; v++ {
		g.Vias = append(g.Vias, tpl.NewLayerVias(w, h))
	}
	return g
}

// Clear empties the grid in place for reuse under a (possibly
// different) coloring scheme. Occupant-list and via-count storage is
// retained; dimensions and layer count are fixed at New.
func (g *Grid) Clear(scheme coloring.Scheme) {
	g.Scheme = scheme
	for _, occ := range g.Metal {
		occ.Clear()
	}
	for _, lv := range g.Vias {
		lv.Clear()
	}
}

// PrefHorizontal reports whether routing layer l prefers horizontal
// wires. Layers alternate starting horizontal at layer 0 (metal 2).
func (g *Grid) PrefHorizontal(l int) bool { return l%2 == 0 }

// PrefDir reports whether direction d is along the preferred routing
// direction of layer l.
func (g *Grid) PrefDir(l int, d geom.Dir) bool {
	if g.PrefHorizontal(l) {
		return d.Horizontal()
	}
	return d.Vertical()
}

// InBounds reports whether p is a valid grid point on an existing
// layer.
func (g *Grid) InBounds(p geom.Pt3) bool {
	return p.Layer >= 0 && p.Layer < g.NumLayers &&
		p.X >= 0 && p.X < g.W && p.Y >= 0 && p.Y < g.H
}

// InPlane reports whether the 2-D point is inside the grid.
func (g *Grid) InPlane(p geom.Pt) bool {
	return p.X >= 0 && p.X < g.W && p.Y >= 0 && p.Y < g.H
}

// PIdx returns the dense index of a 2-D point.
func (g *Grid) PIdx(p geom.Pt) int { return p.Y*g.W + p.X }

// Idx returns the dense index of a 3-D point.
func (g *Grid) Idx(p geom.Pt3) int { return p.Layer*g.W*g.H + p.Y*g.W + p.X }

// NumPoints returns the total number of 3-D grid points.
func (g *Grid) NumPoints() int { return g.W * g.H * g.NumLayers }

// Bounds returns the 2-D bounding rectangle of the grid.
func (g *Grid) Bounds() geom.Rect {
	return geom.Rect{MinX: 0, MinY: 0, MaxX: g.W - 1, MaxY: g.H - 1}
}

// AddRoute commits a route's metal points and vias to the occupancy
// structures.
func (g *Grid) AddRoute(r *Route) {
	for _, p := range r.PointList() {
		g.Metal[p.Layer].Add(geom.XY(p.X, p.Y), r.Net)
	}
	for _, v := range r.ViaList() {
		g.Vias[v.Layer].Add(geom.XY(v.X, v.Y))
	}
}

// RemoveRoute undoes AddRoute.
func (g *Grid) RemoveRoute(r *Route) {
	for _, p := range r.PointList() {
		g.Metal[p.Layer].Remove(geom.XY(p.X, p.Y), r.Net)
	}
	for _, v := range r.ViaList() {
		g.Vias[v.Layer].Remove(geom.XY(v.X, v.Y))
	}
}

// TotalVias returns the number of vias over all via layers.
func (g *Grid) TotalVias() int {
	n := 0
	for _, lv := range g.Vias {
		n += lv.Len()
	}
	return n
}

// Congestions returns every grid point occupied by more than one net,
// in layer-major row-major order. It reads the occupancies'
// incrementally maintained overflow sets, so the common case — no
// congestion — costs O(layers), not a grid scan.
func (g *Grid) Congestions() []geom.Pt3 {
	total := 0
	for _, occ := range g.Metal {
		total += occ.OverflowCount()
	}
	if total == 0 {
		return nil
	}
	out := make([]geom.Pt3, 0, total)
	for l, occ := range g.Metal {
		for _, i := range occ.OverflowIdxs() {
			out = append(out, geom.XYL(int(i)%g.W, int(i)/g.W, l))
		}
	}
	return out
}
