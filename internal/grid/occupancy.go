package grid

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// Occupancy tracks which nets occupy each grid point of one routing
// layer. During negotiated-congestion routing multiple nets may share a
// point (an overflow); the rip-up-and-reroute loop then needs to know
// exactly which nets those are, so each cell stores the occupant list.
// A net occupying a point twice (a route crossing itself at a junction)
// is stored once per occurrence and removed symmetrically.
type Occupancy struct {
	w, h  int
	cells [][]int32
	used  int // number of non-empty cells
	// over tracks the cells currently overflowing (shared by ≥2
	// distinct nets), maintained incrementally by Add/Remove. It makes
	// the congestion query O(overflows) instead of O(w·h) — the
	// negotiation loop polls for congestion once per round, and the TPL
	// rip-up loop once per iteration, almost always finding none.
	over map[int32]struct{}
}

// NewOccupancy returns an empty occupancy over a w×h grid.
func NewOccupancy(w, h int) *Occupancy {
	return &Occupancy{w: w, h: h, cells: make([][]int32, w*h), over: map[int32]struct{}{}}
}

func (o *Occupancy) idx(p geom.Pt) int { return p.Y*o.w + p.X }

// Add records net occupying point p.
func (o *Occupancy) Add(p geom.Pt, net int32) {
	i := o.idx(p)
	if len(o.cells[i]) == 0 {
		o.used++
	}
	o.cells[i] = append(o.cells[i], net)
	// Adding can only create an overflow, never clear one, and only on
	// a cell that now holds ≥2 entries.
	if len(o.cells[i]) >= 2 && o.Overflow(p) {
		o.over[int32(i)] = struct{}{}
	}
}

// Remove removes one occurrence of net at p. It panics if the net does
// not occupy the point — that would mean route bookkeeping has
// diverged from the grid.
func (o *Occupancy) Remove(p geom.Pt, net int32) {
	i := o.idx(p)
	cell := o.cells[i]
	for j, n := range cell {
		if n == net {
			cell[j] = cell[len(cell)-1]
			o.cells[i] = cell[:len(cell)-1]
			if len(o.cells[i]) == 0 {
				o.used--
			}
			// Removing can only clear an overflow. A cell that held one
			// entry could not have been marked; larger cells re-check.
			if len(cell) >= 2 && !o.Overflow(p) {
				delete(o.over, int32(i))
			}
			return
		}
	}
	panic(fmt.Sprintf("grid: Remove(%v, net %d): net not present", p, net))
}

// Count returns the number of occupants at p (with multiplicity).
func (o *Occupancy) Count(p geom.Pt) int { return len(o.cells[o.idx(p)]) }

// Nets returns the occupant list at p. The returned slice aliases
// internal storage and must not be modified.
func (o *Occupancy) Nets(p geom.Pt) []int32 { return o.cells[o.idx(p)] }

// CountOther returns the number of occupants at p belonging to nets
// other than net, with multiplicity. It is the hot-path accessor of the
// router's congestion cost: one bounds-checked slice walk, no slice
// header escapes, no allocation.
func (o *Occupancy) CountOther(p geom.Pt, net int32) int {
	k := 0
	for _, n := range o.cells[o.idx(p)] {
		if n != net {
			k++
		}
	}
	return k
}

// Occupied reports whether any net occupies p.
func (o *Occupancy) Occupied(p geom.Pt) bool { return len(o.cells[o.idx(p)]) > 0 }

// OccupiedByOther reports whether a net other than net occupies p.
func (o *Occupancy) OccupiedByOther(p geom.Pt, net int32) bool {
	for _, n := range o.cells[o.idx(p)] {
		if n != net {
			return true
		}
	}
	return false
}

// Has reports whether the given net occupies p.
func (o *Occupancy) Has(p geom.Pt, net int32) bool {
	for _, n := range o.cells[o.idx(p)] {
		if n == net {
			return true
		}
	}
	return false
}

// Overflow reports whether two or more distinct nets share p.
func (o *Occupancy) Overflow(p geom.Pt) bool {
	cell := o.cells[o.idx(p)]
	if len(cell) < 2 {
		return false
	}
	first := cell[0]
	for _, n := range cell[1:] {
		if n != first {
			return true
		}
	}
	return false
}

// Overflows calls fn for every point where distinct nets overlap, in
// row-major order. It scans the whole grid: the independent reference
// for the incremental overflow set (see OverflowIdxs), kept for
// cross-checking.
func (o *Occupancy) Overflows(fn func(geom.Pt)) {
	for y := 0; y < o.h; y++ {
		for x := 0; x < o.w; x++ {
			p := geom.XY(x, y)
			if o.Overflow(p) {
				fn(p)
			}
		}
	}
}

// OverflowCount returns the number of overflowing cells, O(1).
func (o *Occupancy) OverflowCount() int { return len(o.over) }

// OverflowIdxs returns the dense indices of all overflowing cells in
// ascending (row-major) order — the same order Overflows visits them —
// from the incrementally maintained set.
func (o *Occupancy) OverflowIdxs() []int32 {
	if len(o.over) == 0 {
		return nil
	}
	out := make([]int32, 0, len(o.over))
	for i := range o.over {
		out = append(out, i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// UsedCells returns the number of occupied grid points.
func (o *Occupancy) UsedCells() int { return o.used }

// Clear empties every cell in place, retaining the occupant-list
// capacity each cell has grown — the point of reusing an Occupancy.
func (o *Occupancy) Clear() {
	for i := range o.cells {
		if len(o.cells[i]) > 0 {
			o.cells[i] = o.cells[i][:0]
		}
	}
	o.used = 0
	clear(o.over)
}
