package grid

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/coloring"
	"repro/internal/geom"
)

// randomWalkPath builds a random valid unit-step path on a grid of the
// given size, alternating planar and via moves.
func randomWalkPath(rng *rand.Rand, w, h, layers, steps int) []geom.Pt3 {
	p := geom.XYL(rng.Intn(w), rng.Intn(h), rng.Intn(layers))
	path := []geom.Pt3{p}
	for i := 0; i < steps; i++ {
		dirs := []geom.Dir{geom.East, geom.West, geom.North, geom.South, geom.Up, geom.Down}
		d := dirs[rng.Intn(len(dirs))]
		q := p.Step(d)
		if q.X < 0 || q.X >= w || q.Y < 0 || q.Y >= h || q.Layer < 0 || q.Layer >= layers {
			continue
		}
		if q == path[len(path)-1] {
			continue
		}
		path = append(path, q)
		p = q
	}
	return path
}

// Adding then removing a route restores a pristine grid.
func TestAddRemoveRouteInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		g := New(12, 12, 3, coloring.Scheme{Type: coloring.SIM})
		r := NewRoute(int32(trial))
		for k := 0; k < 1+rng.Intn(3); k++ {
			path := randomWalkPath(rng, 12, 12, 3, 10+rng.Intn(20))
			if len(path) >= 2 {
				r.AddPath(path)
			}
		}
		if r.Empty() {
			continue
		}
		g.AddRoute(r)
		g.RemoveRoute(r)
		for l := 0; l < 3; l++ {
			if g.Metal[l].UsedCells() != 0 {
				t.Fatalf("trial %d: layer %d has %d used cells after removal",
					trial, l, g.Metal[l].UsedCells())
			}
		}
		if g.TotalVias() != 0 {
			t.Fatalf("trial %d: %d vias left after removal", trial, g.TotalVias())
		}
	}
}

// Wirelength is bounded by total planar steps and at least the number
// of distinct planar segments implied by the point count on any single
// path.
func TestWirelengthBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 100; trial++ {
		r := NewRoute(0)
		path := randomWalkPath(rng, 10, 10, 2, 15+rng.Intn(25))
		if len(path) < 2 {
			continue
		}
		r.AddPath(path)
		planarSteps := 0
		for i := 1; i < len(path); i++ {
			if !path[i-1].DirTo(path[i]).Via() {
				planarSteps++
			}
		}
		wl := r.Wirelength()
		if wl > planarSteps {
			t.Fatalf("trial %d: WL %d > planar steps %d", trial, wl, planarSteps)
		}
		if planarSteps > 0 && wl == 0 {
			t.Fatalf("trial %d: WL 0 with %d planar steps", trial, planarSteps)
		}
	}
}

// Arm masks are symmetric: p has an arm toward q iff q has one toward
// p.
func TestArmSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		r := NewRoute(0)
		path := randomWalkPath(rng, 10, 10, 2, 30)
		if len(path) < 2 {
			continue
		}
		r.AddPath(path)
		for _, p := range r.PointList() {
			for _, d := range geom.PlanarDirs {
				if r.HasArm(p, d) != r.HasArm(p.Step(d), d.Opposite()) {
					t.Fatalf("trial %d: asymmetric arm at %v dir %v", trial, p, d)
				}
			}
		}
	}
}

// A path's own endpoints are always connected through the route.
func TestPathEndpointsConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 60; trial++ {
		r := NewRoute(0)
		path := randomWalkPath(rng, 10, 10, 2, 25)
		if len(path) < 2 {
			continue
		}
		r.AddPath(path)
		if !r.Connected([]geom.Pt3{path[0], path[len(path)-1]}) {
			t.Fatalf("trial %d: endpoints disconnected", trial)
		}
	}
}

// Occupancy count equals adds minus removes for arbitrary sequences.
func TestOccupancyCounts(t *testing.T) {
	f := func(ops []uint8) bool {
		o := NewOccupancy(4, 4)
		p := geom.XY(1, 1)
		depth := 0
		for _, op := range ops {
			if op%2 == 0 {
				o.Add(p, int32(op%5))
				depth++
			} else if depth > 0 {
				// Remove an occupant that is present.
				nets := o.Nets(p)
				o.Remove(p, nets[0])
				depth--
			}
			if o.Count(p) != depth {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestOverflowSetMatchesScan: the incrementally maintained overflow
// set equals the full-grid reference scan — same cells, same row-major
// order — after any random add/remove sequence.
func TestOverflowSetMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 60; trial++ {
		o := NewOccupancy(10, 10)
		type occAt struct {
			p   geom.Pt
			net int32
		}
		var live []occAt
		for op := 0; op < 400; op++ {
			if len(live) == 0 || rng.Intn(3) != 0 {
				// Cluster adds on few cells/nets so overlaps are common.
				p := geom.XY(rng.Intn(4), rng.Intn(4))
				net := int32(rng.Intn(3))
				o.Add(p, net)
				live = append(live, occAt{p, net})
			} else {
				i := rng.Intn(len(live))
				o.Remove(live[i].p, live[i].net)
				live = append(live[:i], live[i+1:]...)
			}

			var want []int32
			o.Overflows(func(p geom.Pt) { want = append(want, int32(p.Y*10+p.X)) })
			got := o.OverflowIdxs()
			if len(got) != len(want) {
				t.Fatalf("trial %d op %d: overflow set has %d cells, scan found %d",
					trial, op, len(got), len(want))
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("trial %d op %d: overflow idx %d: set %d, scan %d",
						trial, op, k, got[k], want[k])
				}
			}
			if o.OverflowCount() != len(want) {
				t.Fatalf("trial %d op %d: OverflowCount %d, scan %d",
					trial, op, o.OverflowCount(), len(want))
			}
		}
	}
}
