package grid

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/geom"
)

// Route is the routed geometry of one net: an ordered list of paths
// (polylines of unit grid steps in 3-D), one per two-pin connection
// made while joining the net's pins. Consecutive points of a path
// differ by exactly one grid step; an Up/Down step is a via.
type Route struct {
	// Net is the owning net's ID.
	Net int32
	// Paths holds one polyline per routed connection. Later paths may
	// terminate on points of earlier ones (Steiner junctions) but do
	// not duplicate their segments.
	Paths [][]geom.Pt3

	points []geom.Pt3 // cached deduplicated metal points
	vias   []geom.Pt3 // cached via base points (lower layer of the pair)
	arms   map[geom.Pt3]uint8
	dirty  bool

	// rebuild scratch, reused across rebuilds so a rip-up/reroute cycle
	// does not re-allocate the dedup maps every time.
	seenPt  map[geom.Pt3]bool
	seenVia map[geom.Pt3]bool
}

// dirBit maps a planar direction to its arms bitmask bit.
func dirBit(d geom.Dir) uint8 {
	switch d {
	case geom.East:
		return 1
	case geom.West:
		return 2
	case geom.North:
		return 4
	case geom.South:
		return 8
	}
	return 0
}

// NewRoute returns an empty route for the given net.
func NewRoute(net int32) *Route { return &Route{Net: net, dirty: true} }

// AddPath appends a polyline. It panics if consecutive points are not
// one grid step apart, catching router bugs at the source.
func (r *Route) AddPath(path []geom.Pt3) {
	checkUnitSteps(path)
	r.Paths = append(r.Paths, path)
	r.dirty = true
}

// AddPathCopy appends a copy of the polyline, reusing inner-slice
// storage retained by an earlier Reset when available. The caller
// keeps ownership of path — routers pass a per-search scratch buffer
// here instead of allocating a fresh slice per connection.
func (r *Route) AddPathCopy(path []geom.Pt3) {
	checkUnitSteps(path)
	var dst []geom.Pt3
	if n := len(r.Paths); n < cap(r.Paths) {
		dst = r.Paths[: n+1 : cap(r.Paths)][n][:0]
	}
	r.Paths = append(r.Paths, append(dst, path...))
	r.dirty = true
}

func checkUnitSteps(path []geom.Pt3) {
	for i := 1; i < len(path); i++ {
		if path[i-1].DirTo(path[i]) == geom.None {
			panic(fmt.Sprintf("grid: path step %v -> %v is not a unit step", path[i-1], path[i]))
		}
	}
}

// Reset removes all paths.
func (r *Route) Reset() {
	r.Paths = r.Paths[:0]
	r.dirty = true
}

// Empty reports whether the route has no paths.
func (r *Route) Empty() bool { return len(r.Paths) == 0 }

func (r *Route) rebuild() {
	if !r.dirty {
		return
	}
	if r.seenPt == nil {
		r.seenPt = map[geom.Pt3]bool{}
		r.seenVia = map[geom.Pt3]bool{}
		r.arms = map[geom.Pt3]uint8{}
	} else {
		clear(r.seenPt)
		clear(r.seenVia)
		clear(r.arms)
	}
	seenPt, seenVia := r.seenPt, r.seenVia
	r.points = r.points[:0]
	r.vias = r.vias[:0]
	for _, path := range r.Paths {
		for i, p := range path {
			if !seenPt[p] {
				seenPt[p] = true
				r.points = append(r.points, p)
			}
			if i > 0 {
				prev := path[i-1]
				d := prev.DirTo(p)
				if d.Via() {
					base := prev
					if d == geom.Down {
						base = p
					}
					if !seenVia[base] {
						seenVia[base] = true
						r.vias = append(r.vias, base)
					}
				} else {
					r.arms[prev] |= dirBit(d)
					r.arms[p] |= dirBit(d.Opposite())
				}
			}
		}
	}
	r.dirty = false
}

// PointList returns the distinct metal grid points the route covers.
func (r *Route) PointList() []geom.Pt3 {
	r.rebuild()
	return r.points
}

// ViaList returns the distinct vias of the route. A via between layers
// v and v+1 is reported at Layer v.
func (r *Route) ViaList() []geom.Pt3 {
	r.rebuild()
	return r.vias
}

// HasPoint reports whether the route covers metal point p.
func (r *Route) HasPoint(p geom.Pt3) bool {
	r.rebuild()
	for _, q := range r.points {
		if q == p {
			return true
		}
	}
	return false
}

// Wirelength returns the number of planar unit segments, counting a
// segment once even if multiple paths traverse it. It reads the arms
// masks the rebuild maintains: every unique planar segment contributes
// exactly one arm bit to each of its two endpoints (the masks are
// OR-ed, so re-traversals don't double-count), hence the segment count
// is half the total arm popcount — no per-call allocation.
func (r *Route) Wirelength() int {
	r.rebuild()
	total := 0
	for _, mask := range r.arms {
		total += bits.OnesCount8(mask)
	}
	return total / 2
}

// NumVias returns the via count of the route.
func (r *Route) NumVias() int { return len(r.ViaList()) }

// MetalDirs returns the directions in which the route's metal extends
// from point p on p's layer (at most 4). It reflects actual routed
// segments: a direction is included when some path traverses the unit
// segment between p and its neighbor in that direction.
func (r *Route) MetalDirs(p geom.Pt3) []geom.Dir {
	r.rebuild()
	mask := r.arms[p]
	if mask == 0 {
		return nil
	}
	out := make([]geom.Dir, 0, 4)
	for _, d := range geom.PlanarDirs {
		if mask&dirBit(d) != 0 {
			out = append(out, d)
		}
	}
	return out
}

// ArmMask returns MetalDirs as a bitmask (East=1, West=2, North=4,
// South=8) without allocating.
func (r *Route) ArmMask(p geom.Pt3) uint8 {
	r.rebuild()
	return r.arms[p]
}

// HasArm reports whether the route's metal extends from p in direction
// d.
func (r *Route) HasArm(p geom.Pt3, d geom.Dir) bool {
	r.rebuild()
	return r.arms[p]&dirBit(d) != 0
}

// Connected reports whether the route's point set is a single
// connected component containing every point in pins (on layer 0
// unless the pin is elsewhere). It is the correctness predicate of a
// routed net.
func (r *Route) Connected(pins []geom.Pt3) bool {
	r.rebuild()
	if len(r.points) == 0 {
		return len(pins) == 0
	}
	index := make(map[geom.Pt3]int, len(r.points))
	for i, p := range r.points {
		index[p] = i
	}
	for _, pin := range pins {
		if _, ok := index[pin]; !ok {
			return false
		}
	}
	// Union-find over traversed segments.
	parent := make([]int, len(r.points))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, path := range r.Paths {
		for i := 1; i < len(path); i++ {
			a, b := index[path[i-1]], index[path[i]]
			ra, rb := find(a), find(b)
			if ra != rb {
				parent[ra] = rb
			}
		}
	}
	root := -1
	for _, pin := range pins {
		pr := find(index[pin])
		if root == -1 {
			root = pr
		} else if pr != root {
			return false
		}
	}
	return true
}

// Canonicalize sorts cached point and via lists for deterministic
// iteration order in tests and reports.
func (r *Route) Canonicalize() {
	r.rebuild()
	less := func(a, b geom.Pt3) bool {
		if a.Layer != b.Layer {
			return a.Layer < b.Layer
		}
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.X < b.X
	}
	sort.Slice(r.points, func(i, j int) bool { return less(r.points[i], r.points[j]) })
	sort.Slice(r.vias, func(i, j int) bool { return less(r.vias[i], r.vias[j]) })
}
