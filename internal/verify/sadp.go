package verify

import (
	"repro/internal/coloring"
	"repro/internal/geom"
)

// Independent re-derivation of the SADP turn rules (paper §II-B,
// Fig 4). The pre-colored grid alternates mandrel geometry with each
// track in both axes, so the unique preferred corner orientation at a
// point depends only on its coordinate parities:
//
//   - SIM: the preferred corner's vertical arm points North on even-y
//     points and South on odd-y points; its horizontal arm points East
//     on even-x points and West on odd-x points.
//   - SID: the mandrels align to tracks instead of panels, shifting
//     the pattern one track diagonally — both arms flip.
//
// The diagonally opposite corner is non-preferred (decomposable with
// degradation); the two corners sharing exactly one arm with the
// preferred one are forbidden. This file encodes that rule as a
// formula over arm-direction matches, deliberately not reusing
// coloring.Scheme's table lookup: the two implementations agree only
// if both encode the paper's rule correctly.

// prefArms returns the preferred corner's arm directions at p:
// whether its vertical arm points north and its horizontal arm east.
func prefArms(mode coloring.SADPType, p geom.Pt) (north, east bool) {
	north = p.Y%2 == 0
	east = p.X%2 == 0
	if mode == coloring.SID {
		north, east = !north, !east
	}
	return north, east
}

// forbiddenL reports whether the L-turn at p with horizontal arm bit h
// (armE or armW) and vertical arm bit v (armN or armS) is forbidden in
// the given mode: exactly one of its arms matches the preferred
// corner's.
func forbiddenL(mode coloring.SADPType, p geom.Pt, h, v uint8) bool {
	prefNorth, prefEast := prefArms(mode, p)
	vertMatch := (v == armN) == prefNorth
	horizMatch := (h == armE) == prefEast
	return vertMatch != horizMatch
}

// stubExtensionOK reports whether a forbidden L formed by extending
// the metal at p one unit in the stub direction is nevertheless
// decomposable under the one-unit-extension exception (Fig 6(a)): the
// cut (SIM) or trim (SID) mask can resolve a single-unit stub running
// in the layer's non-preferred routing direction — vertical stubs for
// SIM, horizontal for SID.
func stubExtensionOK(mode coloring.SADPType, stubVertical bool) bool {
	if mode == coloring.SIM {
		return stubVertical
	}
	return !stubVertical
}
