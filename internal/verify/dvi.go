package verify

import (
	"sort"

	"repro/internal/dvi"
	"repro/internal/geom"
)

// Independent validation of a DVI assignment against the paper's
// constraints C1–C8 (§III-E): at most one redundant via per single via
// at a candidate the verifier's own feasibility re-check accepts (C1,
// the §II-C feasibility rules), no two insertions on one site and no
// insertion on an existing via (C2), every via exactly one color or
// counted uncolorable (C3, C4), no same-color pair within the
// same-color via pitch on a layer (C5–C7), and reported statistics
// matching a recount (the C8 objective accounting).

// checkDVI verifies the solution sol of instance in against the
// checker's independently reconstructed solution geometry.
func (c *checker) checkDVI(in *dvi.Instance, sol *dvi.Solution) {
	n := len(in.Vias)
	if len(sol.Inserted) != n || len(sol.Colors) != n || len(sol.RedColors) != n || len(in.Feas) != n {
		c.rep.add(DVIStatsMismatch, -1, geom.Pt3{},
			"solution arrays sized %d/%d/%d (feas %d) for %d vias",
			len(sol.Inserted), len(sol.Colors), len(sol.RedColors), len(in.Feas), n)
		return
	}

	c.checkInstanceVias(in)

	type site struct {
		vl int
		p  geom.Pt
	}
	// Original vias occupy their sites; insertions must not collide
	// with them or with each other.
	occupied := map[site][]int{} // site → instance via indices (originals: i, insertions: i)
	for i, v := range in.Vias {
		occupied[site{v.Layer(), v.Pos()}] = append(occupied[site{v.Layer(), v.Pos()}], i)
	}

	type colored struct {
		vl    int
		p     geom.Pt
		color int8
	}
	var all []colored
	inserted, dead, unc := 0, 0, 0

	for i := 0; i < n; i++ {
		v := in.Vias[i]
		j := sol.Inserted[i]
		if j < -1 || j >= len(in.Feas[i]) {
			c.rep.add(DVIBadIndex, v.Net, v.Base, "insertion index %d out of range of %d candidates", j, len(in.Feas[i]))
			continue
		}
		col := sol.Colors[i]
		switch {
		case col == -1:
			unc++
		case col < 0 || col >= 3:
			c.rep.add(DVIBadColor, v.Net, v.Base, "via color %d out of range", col)
		default:
			all = append(all, colored{v.Layer(), v.Pos(), col})
		}
		if j < 0 {
			dead++
			continue
		}
		inserted++
		cand := in.Feas[i][j]
		if v.Pos().ManhattanDist(cand) != 1 {
			c.rep.add(DVIInfeasible, v.Net, v.Base, "candidate %v is not adjacent to the via", cand)
			continue
		}
		st := site{v.Layer(), cand}
		if len(occupied[st]) > 0 {
			c.rep.add(DVICollision, v.Net, geom.XYL(cand.X, cand.Y, v.Layer()),
				"redundant via collides with via(s) %v at %v", occupied[st], cand)
		}
		occupied[st] = append(occupied[st], i)
		c.checkInsertionFeasible(v, cand)
		rc := sol.RedColors[i]
		if rc < 0 || rc >= 3 {
			c.rep.add(DVIBadColor, v.Net, geom.XYL(cand.X, cand.Y, v.Layer()),
				"inserted redundant via has color %d (want 0..2)", rc)
		} else {
			all = append(all, colored{v.Layer(), cand, rc})
		}
	}

	// Pairwise coloring legality per via layer.
	byLayer := map[int]map[geom.Pt][]int8{}
	for _, cc := range all {
		if byLayer[cc.vl] == nil {
			byLayer[cc.vl] = map[geom.Pt][]int8{}
		}
		byLayer[cc.vl][cc.p] = append(byLayer[cc.vl][cc.p], cc.color)
	}
	// Conflicts are reported in (layer, row-major site) order so the
	// report diffs cleanly between runs.
	vls := make([]int, 0, len(byLayer))
	for vl := range byLayer { //sadplint:ordered keys are sorted on the next line
		vls = append(vls, vl)
	}
	sort.Ints(vls)
	for _, vl := range vls {
		pos := byLayer[vl]
		for _, p := range sortedPtKeys(pos) {
			cols := pos[p]
			for _, col := range cols {
				for _, off := range conflictOffsets {
					q := p.Add(off.X, off.Y)
					// Report each conflicting pair once, from its
					// lexicographically smaller endpoint.
					if q.Y < p.Y || (q.Y == p.Y && q.X < p.X) {
						continue
					}
					for _, oc := range byLayer[vl][q] {
						if oc == col {
							c.rep.add(DVIColorConflict, -1, geom.XYL(p.X, p.Y, vl),
								"vias at %v and %v share color %d within pitch (via layer %d)", p, q, col, vl)
						}
					}
				}
				// Two vias stacked on one site (a collision, reported
				// above) also always conflict in color space; skip.
			}
		}
	}

	if sol.InsertedCount != inserted || sol.DeadVias != dead || sol.Uncolorable != unc {
		c.rep.add(DVIStatsMismatch, -1, geom.Pt3{},
			"reported inserted/dead/uncolorable %d/%d/%d, recounted %d/%d/%d",
			sol.InsertedCount, sol.DeadVias, sol.Uncolorable, inserted, dead, unc)
	}
}

// checkInstanceVias cross-checks the DVI instance's via list against
// the vias the verifier extracted from the routed geometry itself.
func (c *checker) checkInstanceVias(in *dvi.Instance) {
	mine := 0
	for i := range c.nets {
		mine += len(c.nets[i].vias)
	}
	if mine != len(in.Vias) {
		c.rep.add(DVIViaMismatch, -1, geom.Pt3{},
			"instance lists %d vias, routed solution has %d", len(in.Vias), mine)
	}
	seen := map[dvi.Via]bool{}
	for _, v := range in.Vias {
		if seen[v] {
			c.rep.add(DVIViaMismatch, v.Net, v.Base, "via listed twice in the instance")
			continue
		}
		seen[v] = true
		if v.Net < 0 || int(v.Net) >= len(c.nets) {
			c.rep.add(DVIViaMismatch, v.Net, v.Base, "via owned by unknown net")
			continue
		}
		if !c.nets[v.Net].vias[v.Base] {
			c.rep.add(DVIViaMismatch, v.Net, v.Base, "instance via not present in the routed solution")
		}
	}
}

// checkInsertionFeasible re-derives the §II-C DVIC feasibility of an
// accepted insertion: the candidate must be on the grid, its metal
// points on both connected layers free of other nets, and the one-unit
// metal extensions toward it must not form a forbidden turn with the
// owning net's existing arms (modulo the Fig 6(a) one-unit-extension
// exception).
func (c *checker) checkInsertionFeasible(v dvi.Via, cand geom.Pt) {
	at := geom.XYL(cand.X, cand.Y, v.Layer())
	if cand.X < 0 || cand.X >= c.nl.W || cand.Y < 0 || cand.Y >= c.nl.H {
		c.rep.add(DVIInfeasible, v.Net, at, "candidate %v outside the grid", cand)
		return
	}
	if v.Net < 0 || int(v.Net) >= len(c.nets) || !c.nets[v.Net].valid {
		return // geometry already reported
	}
	dx, dy := cand.X-v.Base.X, cand.Y-v.Base.Y
	var stubArm uint8
	switch {
	case dx == 1:
		stubArm = armE
	case dx == -1:
		stubArm = armW
	case dy == 1:
		stubArm = armN
	default:
		stubArm = armS
	}
	stubVertical := dy != 0

	for _, l := range [2]int{v.Base.Layer, v.Base.Layer + 1} {
		mp := geom.XYL(cand.X, cand.Y, l)
		for _, owner := range c.metalOwner[mp] {
			if owner != v.Net {
				c.rep.add(DVIInfeasible, v.Net, at,
					"candidate metal point %v occupied by net %d", mp, owner)
			}
		}
		arms := c.nets[v.Net].arms[geom.XYL(v.Base.X, v.Base.Y, l)]
		if arms&stubArm != 0 {
			continue // metal already runs toward the candidate
		}
		// The extension adds a one-unit stub; pairing it with each
		// existing perpendicular arm forms an L whose legality the
		// coloring must allow.
		perp := arms & (armN | armS)
		if stubVertical {
			perp = arms & (armE | armW)
		}
		for _, bit := range [4]uint8{armE, armW, armN, armS} {
			if perp&bit == 0 {
				continue
			}
			h, vv := stubArm, bit
			if stubVertical {
				h, vv = bit, stubArm
			}
			if forbiddenL(c.opt.SADP, geom.XY(v.Base.X, v.Base.Y), h, vv) &&
				!stubExtensionOK(c.opt.SADP, stubVertical) {
				c.rep.add(DVIInfeasible, v.Net, at,
					"metal extension on layer %d forms a forbidden turn at %v", l, v.Base.Pt2())
			}
		}
	}
}
