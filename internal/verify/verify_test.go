package verify_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/coloring"
	"repro/internal/dvi"
	"repro/internal/verify"
)

// TestCleanSolutionsPass runs the full pipeline on the tiny suite in
// every SADP mode × DVI method combination and asserts the verifier
// finds nothing to complain about — the other half of the mutation
// tests, which assert it does complain on corrupted solutions.
func TestCleanSolutionsPass(t *testing.T) {
	for _, ckt := range bench.TinySuite() {
		for _, mode := range []coloring.SADPType{coloring.SIM, coloring.SID} {
			for _, method := range []bench.DVIMethod{bench.HeurDVI, bench.ILPDVI} {
				ckt, mode, method := ckt, mode, method
				t.Run(fmt.Sprintf("%s/%v/%v", ckt.Name, mode, method), func(t *testing.T) {
					t.Parallel()
					nl := bench.Generate(ckt)
					spec := bench.RunSpec{
						Scheme:      mode,
						ConsiderDVI: true,
						ConsiderTPL: true,
						Method:      method,
						// The ILP proves some tiny instances slowly; a
						// short limit returns the warm-start incumbent,
						// which is all the verifier needs.
						ILPTimeLimit: 5 * time.Second,
					}
					row, art, err := bench.Run(nl, spec)
					if err != nil {
						t.Fatalf("bench.Run: %v", err)
					}
					opt := verify.Options{SADP: mode, CheckTPL: true}
					rep := verify.Solution(nl, art.Router.Routes(), art.Instance, art.Solution, opt)
					if err := rep.Err(); err != nil {
						t.Errorf("verifier rejects clean solution: %v", err)
					}
					wl, vias := verify.Metrics(art.Router.Routes())
					if wl != row.WL || vias != row.Vias {
						t.Errorf("independent metrics recount (wl=%d vias=%d) disagrees with reported row (wl=%d vias=%d)",
							wl, vias, row.WL, row.Vias)
					}
				})
			}
		}
	}
}

// TestHeuristicNeverBeatsILP routes each tiny circuit once and solves
// the same DVI instance with both methods: the ILP warm-starts from the
// heuristic, so its inserted-via count must be at least the
// heuristic's.
func TestHeuristicNeverBeatsILP(t *testing.T) {
	for _, ckt := range bench.TinySuite() {
		for _, mode := range []coloring.SADPType{coloring.SIM, coloring.SID} {
			ckt, mode := ckt, mode
			t.Run(fmt.Sprintf("%s/%v", ckt.Name, mode), func(t *testing.T) {
				t.Parallel()
				nl := bench.Generate(ckt)
				spec := bench.RunSpec{Scheme: mode, ConsiderDVI: true, ConsiderTPL: true, Method: bench.NoDVI}
				_, art, err := bench.Run(nl, spec)
				if err != nil {
					t.Fatalf("bench.Run: %v", err)
				}
				in := dvi.NewInstance(art.Router.Grid(), art.Router.Routes())
				heur := in.SolveHeuristic(dvi.DefaultHeurParams())
				ilp, err := in.SolveILP(dvi.ILPOptions{TimeLimit: 5 * time.Second})
				if err != nil {
					t.Fatalf("SolveILP: %v", err)
				}
				if ilp.InsertedCount < heur.InsertedCount {
					t.Errorf("ILP inserted %d vias, heuristic %d: exact solve must not be worse",
						ilp.InsertedCount, heur.InsertedCount)
				}
				opt := verify.Options{SADP: mode, CheckTPL: true}
				for name, sol := range map[string]*dvi.Solution{"heur": heur, "ilp": ilp} {
					if err := verify.Solution(nl, art.Router.Routes(), in, sol, opt).Err(); err != nil {
						t.Errorf("%s solution rejected: %v", name, err)
					}
				}
			})
		}
	}
}
