// Package verify is an independent checker for routed solutions of the
// SADP-aware detailed routing flow. It re-validates, from scratch and
// with no code shared with the producing algorithms (the router's
// search and turn tables, the TPL R&R phase, tpl.Window's O(1) FVP
// rules, the DVI heuristic and ILP), that a solution is actually legal:
//
//  1. Geometry: every path step is a unit grid step, every point is on
//     the grid, every net covers all of its pins in a single connected
//     component, no two nets share a metal point or via site, and no
//     route crosses another net's pin terminal.
//  2. SADP color rules: every L-shaped turn (a point with exactly two
//     perpendicular metal arms) is classified against a re-derived
//     parity formula for the chosen SIM/SID mode and must not be
//     forbidden.
//  3. Via manufacturability (when the flow considered TPL): no 3×3 via
//     window is a forbidden via pattern — decided here by brute-force
//     3-coloring of the window's conflict graph, not the paper's O(1)
//     rules — and each via layer's full decomposition graph is
//     3-colorable (independent greedy coloring with an exact
//     backtracking fallback).
//  4. DVI: every inserted redundant via sits at a candidate that the
//     verifier's own feasibility re-check accepts, no two vias collide,
//     the TPL coloring of originals plus insertions is proper, and the
//     solution's reported statistics match a recount (constraints
//     C1–C8 of §III-E).
//
// The checker consumes only solution data (netlist, route polylines,
// DVI assignment) and deliberately rebuilds occupancy, arm masks, via
// sets and conflict graphs itself, so a bookkeeping bug in the
// producers cannot hide from it.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/coloring"
	"repro/internal/dvi"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/netlist"
)

// Kind classifies a violation.
type Kind uint8

const (
	// BadStep: consecutive path points are not one grid step apart.
	BadStep Kind = iota
	// OffGrid: a path point lies outside the W×H×layers grid.
	OffGrid
	// Unrouted: a net has no route geometry at all.
	Unrouted
	// PinMissing: a net's route does not cover one of its pins.
	PinMissing
	// Disconnected: a net's metal is not a single connected component.
	Disconnected
	// MetalShort: two distinct nets occupy the same metal point.
	MetalShort
	// ViaShort: two distinct nets place a via on the same site.
	ViaShort
	// PinObstruction: a route covers another net's pin terminal.
	PinObstruction
	// ForbiddenTurn: an L-shaped turn is forbidden under the SADP
	// color rules of the chosen mode.
	ForbiddenTurn
	// FVP: a 3×3 via window is a forbidden via pattern (its conflict
	// graph is not 3-colorable).
	FVP
	// NotThreeColorable: a via layer's full decomposition graph is not
	// 3-colorable.
	NotThreeColorable
	// VerifierLimit: the exact colorability check exceeded its budget;
	// the solution could not be proven clean (conservative failure).
	VerifierLimit
	// DVIViaMismatch: the DVI instance's via list does not match the
	// vias of the routed solution.
	DVIViaMismatch
	// DVIBadIndex: an insertion index is out of range of the via's
	// candidate list.
	DVIBadIndex
	// DVIInfeasible: an inserted redundant via fails the verifier's
	// independent feasibility re-check (occupancy or turn legality).
	DVIInfeasible
	// DVICollision: two inserted redundant vias share a site, or an
	// insertion lands on an existing via.
	DVICollision
	// DVIBadColor: a via color is out of range, or an inserted
	// redundant via has no color.
	DVIBadColor
	// DVIColorConflict: two same-colored vias lie within the
	// same-color via pitch on one via layer.
	DVIColorConflict
	// DVIStatsMismatch: the solution's reported counters disagree with
	// a recount of the assignment.
	DVIStatsMismatch
)

var kindNames = [...]string{
	BadStep:           "bad-step",
	OffGrid:           "off-grid",
	Unrouted:          "unrouted",
	PinMissing:        "pin-missing",
	Disconnected:      "disconnected",
	MetalShort:        "metal-short",
	ViaShort:          "via-short",
	PinObstruction:    "pin-obstruction",
	ForbiddenTurn:     "forbidden-turn",
	FVP:               "fvp",
	NotThreeColorable: "not-3-colorable",
	VerifierLimit:     "verifier-limit",
	DVIViaMismatch:    "dvi-via-mismatch",
	DVIBadIndex:       "dvi-bad-index",
	DVIInfeasible:     "dvi-infeasible",
	DVICollision:      "dvi-collision",
	DVIBadColor:       "dvi-bad-color",
	DVIColorConflict:  "dvi-color-conflict",
	DVIStatsMismatch:  "dvi-stats-mismatch",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Violation is one detected rule breach.
type Violation struct {
	Kind Kind
	// Net is the primary offending net, or -1 when not net-specific.
	Net int32
	// At is a representative location: a metal point for geometry and
	// turn violations, a via site (Layer = via layer) for via-related
	// ones.
	At  geom.Pt3
	Msg string
}

func (v Violation) String() string {
	if v.Net >= 0 {
		return fmt.Sprintf("%s net %d at %v: %s", v.Kind, v.Net, v.At, v.Msg)
	}
	return fmt.Sprintf("%s at %v: %s", v.Kind, v.At, v.Msg)
}

// Report collects the violations of one verification run.
type Report struct {
	Violations []Violation
	// Truncated is true when violations beyond Options.MaxViolations
	// were dropped.
	Truncated bool

	max int
}

// Ok reports whether the solution passed every check.
func (r *Report) Ok() bool { return len(r.Violations) == 0 && !r.Truncated }

// Count returns the number of recorded violations of the given kind.
func (r *Report) Count(k Kind) int {
	n := 0
	for _, v := range r.Violations {
		if v.Kind == k {
			n++
		}
	}
	return n
}

// Has reports whether any violation of the given kind was recorded.
func (r *Report) Has(k Kind) bool { return r.Count(k) > 0 }

// Err returns nil for a clean report, or an error summarizing the
// violations (first few spelled out).
func (r *Report) Err() error {
	if r.Ok() {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "verify: %d violation(s)", len(r.Violations))
	if r.Truncated {
		b.WriteString(" (truncated)")
	}
	for i, v := range r.Violations {
		if i >= 5 {
			fmt.Fprintf(&b, "; ... %d more", len(r.Violations)-i)
			break
		}
		b.WriteString("; ")
		b.WriteString(v.String())
	}
	return fmt.Errorf("%s", b.String())
}

func (r *Report) add(k Kind, net int32, at geom.Pt3, format string, args ...interface{}) {
	if len(r.Violations) >= r.max {
		r.Truncated = true
		return
	}
	r.Violations = append(r.Violations, Violation{Kind: k, Net: net, At: at, Msg: fmt.Sprintf(format, args...)})
}

// Options configure a verification run.
type Options struct {
	// SADP is the process mode the solution was routed for.
	SADP coloring.SADPType
	// CheckTPL enables the via-manufacturability checks (FVP-freedom
	// and 3-colorability). Only solutions routed with TPL
	// consideration guarantee these; leave false otherwise.
	CheckTPL bool
	// MaxViolations caps the report (default 100).
	MaxViolations int
	// ColorBudget bounds the exact per-component colorability fallback
	// in backtracking steps (default 2,000,000).
	ColorBudget int
}

func (o Options) withDefaults() Options {
	if o.MaxViolations <= 0 {
		o.MaxViolations = 100
	}
	if o.ColorBudget <= 0 {
		o.ColorBudget = 2_000_000
	}
	return o
}

// Routing verifies a routed (pre-DVI) solution: geometry, SADP turn
// legality and — when opt.CheckTPL — via-layer manufacturability.
// routes is indexed by net ID; nil or empty entries are reported as
// unrouted nets.
func Routing(nl *netlist.Netlist, routes []*grid.Route, opt Options) *Report {
	c := newChecker(nl, routes, opt)
	c.checkGeometry()
	c.checkTurns()
	if c.opt.CheckTPL {
		c.checkViaLayers()
	}
	return c.rep
}

// Solution verifies the full flow output: the routing checks plus the
// DVI assignment when in and sol are non-nil.
func Solution(nl *netlist.Netlist, routes []*grid.Route, in *dvi.Instance, sol *dvi.Solution, opt Options) *Report {
	c := newChecker(nl, routes, opt)
	c.checkGeometry()
	c.checkTurns()
	if c.opt.CheckTPL {
		c.checkViaLayers()
	}
	if in != nil && sol != nil {
		c.checkDVI(in, sol)
	}
	return c.rep
}

// Metrics independently recounts the table metrics of a routed
// solution: total wirelength (distinct planar unit segments per net)
// and total via count (distinct via sites per net). It walks the raw
// path polylines, sharing no code with router.Stats.
func Metrics(routes []*grid.Route) (wl, vias int) {
	type seg struct{ a, b geom.Pt3 }
	for _, r := range routes {
		if r == nil || len(r.Paths) == 0 {
			continue
		}
		segs := map[seg]bool{}
		viaSet := map[geom.Pt3]bool{}
		for _, path := range r.Paths {
			for i := 1; i < len(path); i++ {
				a, b := path[i-1], path[i]
				if a.Layer != b.Layer {
					base := a
					if b.Layer < a.Layer {
						base = b
					}
					viaSet[base] = true
					continue
				}
				if b.X < a.X || b.Y < a.Y {
					a, b = b, a
				}
				segs[seg{a, b}] = true
			}
		}
		wl += len(segs)
		vias += len(viaSet)
	}
	return wl, vias
}

// arm bits of the verifier's own arm encoding.
const (
	armE uint8 = 1 << iota
	armW
	armN
	armS
)

// netData is the verifier's reconstruction of one net's geometry.
type netData struct {
	pts  map[geom.Pt3]int   // point → dense index (union-find)
	arms map[geom.Pt3]uint8 // planar arm mask at each point
	vias map[geom.Pt3]bool  // via base points (lower layer)
	// parent is the union-find forest over pts' indices.
	parent []int
	valid  bool // geometry walk succeeded (steps legal, on grid)
}

func (nd *netData) find(x int) int {
	for nd.parent[x] != x {
		nd.parent[x] = nd.parent[nd.parent[x]]
		x = nd.parent[x]
	}
	return x
}

func (nd *netData) union(a, b int) {
	ra, rb := nd.find(a), nd.find(b)
	if ra != rb {
		nd.parent[ra] = rb
	}
}

type checker struct {
	nl     *netlist.Netlist
	routes []*grid.Route
	opt    Options
	rep    *Report

	nets []netData
	// metalOwner maps each occupied metal point to the distinct nets
	// covering it (shorts keep all owners for reporting).
	metalOwner map[geom.Pt3][]int32
	// viaOwner maps each occupied via site (Layer = via layer) to its
	// owning nets.
	viaOwner map[geom.Pt3][]int32
	// pinOwner maps layer-0 pin points to the nets pinning there.
	pinOwner map[geom.Pt][]int32
}

func newChecker(nl *netlist.Netlist, routes []*grid.Route, opt Options) *checker {
	opt = opt.withDefaults()
	c := &checker{
		nl:         nl,
		routes:     routes,
		opt:        opt,
		rep:        &Report{max: opt.MaxViolations},
		nets:       make([]netData, len(nl.Nets)),
		metalOwner: map[geom.Pt3][]int32{},
		viaOwner:   map[geom.Pt3][]int32{},
		pinOwner:   map[geom.Pt][]int32{},
	}
	for _, n := range nl.Nets {
		for _, p := range n.Pins {
			c.pinOwner[p] = appendDistinct(c.pinOwner[p], int32(n.ID))
		}
	}
	return c
}

func appendDistinct(s []int32, v int32) []int32 {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

func (c *checker) onGrid(p geom.Pt3) bool {
	return p.Layer >= 0 && p.Layer < c.nl.NumLayers &&
		p.X >= 0 && p.X < c.nl.W && p.Y >= 0 && p.Y < c.nl.H
}

// walkNet rebuilds one net's point set, arm masks and via set from its
// raw path polylines, validating steps as it goes.
func (c *checker) walkNet(id int32, r *grid.Route) {
	nd := &c.nets[id]
	nd.pts = map[geom.Pt3]int{}
	nd.arms = map[geom.Pt3]uint8{}
	nd.vias = map[geom.Pt3]bool{}
	nd.valid = true

	idxOf := func(p geom.Pt3) int {
		if i, ok := nd.pts[p]; ok {
			return i
		}
		i := len(nd.parent)
		nd.pts[p] = i
		nd.parent = append(nd.parent, i)
		return i
	}

	for _, path := range r.Paths {
		for i, p := range path {
			if !c.onGrid(p) {
				c.rep.add(OffGrid, id, p, "path point outside %dx%dx%d grid", c.nl.W, c.nl.H, c.nl.NumLayers)
				nd.valid = false
				continue
			}
			pi := idxOf(p)
			if i == 0 {
				continue
			}
			prev := path[i-1]
			if !c.onGrid(prev) {
				continue // already reported
			}
			dx, dy, dz := p.X-prev.X, p.Y-prev.Y, p.Layer-prev.Layer
			adx, ady, adz := abs(dx), abs(dy), abs(dz)
			if adx+ady+adz != 1 {
				c.rep.add(BadStep, id, p, "step %v -> %v is not a unit grid step", prev, p)
				nd.valid = false
				continue
			}
			nd.union(nd.pts[prev], pi)
			switch {
			case adz == 1:
				base := prev
				if dz < 0 {
					base = p
				}
				nd.vias[base] = true
			case dx == 1:
				nd.arms[prev] |= armE
				nd.arms[p] |= armW
			case dx == -1:
				nd.arms[prev] |= armW
				nd.arms[p] |= armE
			case dy == 1:
				nd.arms[prev] |= armN
				nd.arms[p] |= armS
			default: // dy == -1
				nd.arms[prev] |= armS
				nd.arms[p] |= armN
			}
		}
	}

	for p := range nd.pts {
		c.metalOwner[p] = appendDistinct(c.metalOwner[p], id)
	}
	for v := range nd.vias {
		c.viaOwner[v] = appendDistinct(c.viaOwner[v], id)
	}
}

// checkGeometry runs the structural checks: path legality, pin
// coverage, connectivity, shorts and pin obstructions.
func (c *checker) checkGeometry() {
	for i, n := range c.nl.Nets {
		id := int32(i)
		var r *grid.Route
		if i < len(c.routes) {
			r = c.routes[i]
		}
		if r == nil || len(r.Paths) == 0 {
			c.rep.add(Unrouted, id, geom.Pt3{}, "net %q has no route", n.Name)
			continue
		}
		c.walkNet(id, r)
		nd := &c.nets[i]

		// Pin coverage on layer 0.
		missing := false
		for _, p := range n.Pins {
			if _, ok := nd.pts[geom.XYL(p.X, p.Y, 0)]; !ok {
				c.rep.add(PinMissing, id, geom.XYL(p.X, p.Y, 0), "pin %v not covered by route", p)
				missing = true
			}
		}
		// Connectivity: every point in one component (no floating
		// metal, pins mutually reachable). Skip when the walk already
		// failed — union-find over broken paths is meaningless.
		if !nd.valid || missing || len(nd.parent) == 0 {
			continue
		}
		root := nd.find(0)
		for _, p := range sortedPt3Keys(nd.pts) {
			if nd.find(nd.pts[p]) != root {
				c.rep.add(Disconnected, id, p, "metal at %v not connected to the rest of the net", p)
				break
			}
		}
	}

	// Shorts: metal points and via sites with more than one owner.
	metalPts := sortedPt3Keys(c.metalOwner)
	for _, p := range metalPts {
		if owners := c.metalOwner[p]; len(owners) > 1 {
			c.rep.add(MetalShort, owners[0], p, "nets %v share metal point %v", owners, p)
		}
	}
	for _, v := range sortedPt3Keys(c.viaOwner) {
		if owners := c.viaOwner[v]; len(owners) > 1 {
			c.rep.add(ViaShort, owners[0], v, "nets %v share via site %v", owners, v)
		}
	}
	// Pin obstructions: a net's metal on layer 0 over a foreign pin.
	for _, p := range metalPts {
		owners := c.metalOwner[p]
		if p.Layer != 0 {
			continue
		}
		pinNets, ok := c.pinOwner[p.Pt2()]
		if !ok {
			continue
		}
		for _, o := range owners {
			if !containsNet(pinNets, o) {
				c.rep.add(PinObstruction, o, p, "route covers pin of net(s) %v", pinNets)
			}
		}
	}
}

// sortedPt3Keys returns m's keys in (layer, row-major) order. Reports
// are emitted by key order, so they must not depend on map iteration:
// the stress harness and the service's fault reproducers diff reports
// between runs.
func sortedPt3Keys[V any](m map[geom.Pt3]V) []geom.Pt3 {
	keys := make([]geom.Pt3, 0, len(m))
	for k := range m { //sadplint:ordered keys are sorted on the next line
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Layer != b.Layer {
			return a.Layer < b.Layer
		}
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.X < b.X
	})
	return keys
}

// sortedPtKeys is sortedPt3Keys for single-layer keys.
func sortedPtKeys[V any](m map[geom.Pt]V) []geom.Pt {
	keys := make([]geom.Pt, 0, len(m))
	for k := range m { //sadplint:ordered keys are sorted on the next line
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Y != keys[j].Y {
			return keys[i].Y < keys[j].Y
		}
		return keys[i].X < keys[j].X
	})
	return keys
}

func containsNet(s []int32, v int32) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// checkTurns validates SADP turn legality: every point whose metal
// shape is exactly two perpendicular arms forms an L that must not be
// forbidden in the chosen mode. Points with one arm, straight wires,
// T- and X-junctions carry no L constraint (the producer's rule).
func (c *checker) checkTurns() {
	for i := range c.nets {
		nd := &c.nets[i]
		if !nd.valid {
			continue
		}
		for _, p := range sortedPt3Keys(nd.arms) {
			arms := nd.arms[p]
			h := arms & (armE | armW)
			v := arms & (armN | armS)
			if h == 0 || v == 0 {
				continue // no corner
			}
			if popcount4(arms) != 2 {
				continue // T or X junction: unconstrained
			}
			if forbiddenL(c.opt.SADP, p.Pt2(), h, v) {
				c.rep.add(ForbiddenTurn, int32(i), p, "L-turn (%s) forbidden for %v at parity (%d,%d)",
					armString(arms), c.opt.SADP, p.X&1, p.Y&1)
			}
		}
	}
}

func popcount4(m uint8) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

func armString(m uint8) string {
	var parts []string
	if m&armE != 0 {
		parts = append(parts, "E")
	}
	if m&armW != 0 {
		parts = append(parts, "W")
	}
	if m&armN != 0 {
		parts = append(parts, "N")
	}
	if m&armS != 0 {
		parts = append(parts, "S")
	}
	return strings.Join(parts, "|")
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
