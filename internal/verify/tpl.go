package verify

import (
	"sort"

	"repro/internal/geom"
)

// Independent via-manufacturability checks. The same-color via pitch
// of the TPL conflict model (§II-D) is re-stated here from the spec:
// two distinct vias whose squared center distance is at most 5 cannot
// share a mask color. FVP-ness of a 3×3 window is decided by
// brute-force 3-coloring of the window's conflict graph — not the
// paper's O(1) corner rules that tpl.Window implements — so the two
// can only agree by both being right.

const sameColorSqPitch = 5

// conflictOffsets enumerates every nonzero (dx, dy) within the pitch.
var conflictOffsets = func() []geom.Pt {
	var offs []geom.Pt
	for dy := -2; dy <= 2; dy++ {
		for dx := -2; dx <= 2; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			if dx*dx+dy*dy <= sameColorSqPitch {
				offs = append(offs, geom.XY(dx, dy))
			}
		}
	}
	return offs
}()

func inConflict(a, b geom.Pt) bool {
	if a == b {
		return false
	}
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx+dy*dy <= sameColorSqPitch
}

// windowColorable memoizes 3-colorability of each of the 512 possible
// 3×3 via patterns: 0 = unknown, 1 = colorable, 2 = not.
var windowColorable [512]uint8

// patternColorable3 decides by exhaustive backtracking whether the
// 3×3 pattern (bit x+3*y set = via at offset (x, y)) admits a proper
// 3-coloring under the pitch conflict model.
func patternColorable3(mask uint16) bool {
	switch windowColorable[mask] {
	case 1:
		return true
	case 2:
		return false
	}
	var pts []geom.Pt
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			if mask&(1<<(x+3*y)) != 0 {
				pts = append(pts, geom.XY(x, y))
			}
		}
	}
	colors := make([]int, len(pts))
	var solve func(i int) bool
	solve = func(i int) bool {
		if i == len(pts) {
			return true
		}
		for col := 1; col <= 3; col++ {
			ok := true
			for j := 0; j < i; j++ {
				if colors[j] == col && inConflict(pts[i], pts[j]) {
					ok = false
					break
				}
			}
			if ok {
				colors[i] = col
				if solve(i + 1) {
					return true
				}
				colors[i] = 0
			}
		}
		return false
	}
	ok := solve(0)
	if ok {
		windowColorable[mask] = 1
	} else {
		windowColorable[mask] = 2
	}
	return ok
}

// viaLayerSites reconstructs the occupied via sites of each via layer
// from the verifier's own via ownership map, in row-major order.
func (c *checker) viaLayerSites() [][]geom.Pt {
	layers := make([][]geom.Pt, c.nl.NumLayers-1)
	//sadplint:ordered per-layer slices are sorted row-major just below
	for v := range c.viaOwner {
		if v.Layer >= 0 && v.Layer < len(layers) {
			layers[v.Layer] = append(layers[v.Layer], v.Pt2())
		}
	}
	for _, sites := range layers {
		sort.Slice(sites, func(i, j int) bool {
			if sites[i].Y != sites[j].Y {
				return sites[i].Y < sites[j].Y
			}
			return sites[i].X < sites[j].X
		})
	}
	return layers
}

// checkViaLayers runs the manufacturability checks on every via layer:
// no 3×3 window is an FVP, and the layer's full decomposition graph is
// 3-colorable.
func (c *checker) checkViaLayers() {
	for vl, sites := range c.viaLayerSites() {
		c.checkFVPs(vl, sites)
		c.checkLayerColorable(vl, sites)
	}
}

// checkFVPs scans every 3×3 window that contains at least one via of
// the layer (each window checked once) for forbidden via patterns.
func (c *checker) checkFVPs(vl int, sites []geom.Pt) {
	occupied := make(map[geom.Pt]bool, len(sites))
	for _, s := range sites {
		occupied[s] = true
	}
	seen := map[geom.Pt]bool{}
	for _, s := range sites {
		for dy := -2; dy <= 0; dy++ {
			for dx := -2; dx <= 0; dx++ {
				o := geom.XY(s.X+dx, s.Y+dy)
				if seen[o] {
					continue
				}
				seen[o] = true
				var mask uint16
				n := 0
				for wy := 0; wy < 3; wy++ {
					for wx := 0; wx < 3; wx++ {
						if occupied[geom.XY(o.X+wx, o.Y+wy)] {
							mask |= 1 << (wx + 3*wy)
							n++
						}
					}
				}
				if n >= 4 && !patternColorable3(mask) {
					c.rep.add(FVP, -1, geom.XYL(o.X, o.Y, vl),
						"3x3 window with %d vias is a forbidden via pattern (via layer %d)", n, vl)
				}
			}
		}
	}
}

// checkLayerColorable verifies that the layer's full decomposition
// graph (one vertex per via, an edge per within-pitch pair) is
// 3-colorable: greedy coloring in descending-degree order first, exact
// backtracking on the failing components as the fallback, so a greedy
// artifact is never reported as a real violation.
func (c *checker) checkLayerColorable(vl int, sites []geom.Pt) {
	n := len(sites)
	if n == 0 {
		return
	}
	index := make(map[geom.Pt]int, n)
	for i, s := range sites {
		index[s] = i
	}
	adj := make([][]int, n)
	for i, s := range sites {
		for _, off := range conflictOffsets {
			if j, ok := index[s.Add(off.X, off.Y)]; ok {
				adj[i] = append(adj[i], j)
			}
		}
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(adj[order[a]]) > len(adj[order[b]])
	})
	colors := make([]int, n) // 0 = unassigned, 1..3 = colors
	var failed []int
	for _, v := range order {
		var used [4]bool
		for _, u := range adj[v] {
			used[colors[u]] = true
		}
		for col := 1; col <= 3; col++ {
			if !used[col] {
				colors[v] = col
				break
			}
		}
		if colors[v] == 0 {
			failed = append(failed, v)
		}
	}
	if len(failed) == 0 {
		return
	}

	// Greedy failed: decide the failing components exactly.
	comp := components(adj)
	reported := map[int]bool{}
	for _, v := range failed {
		cid := comp.id[v]
		if reported[cid] {
			continue
		}
		reported[cid] = true
		ok, exact := colorableExact(adj, comp.members[cid], 3, c.opt.ColorBudget)
		at := geom.XYL(sites[v].X, sites[v].Y, vl)
		switch {
		case !exact:
			c.rep.add(VerifierLimit, -1, at,
				"colorability of %d-via component undecided within budget (via layer %d)",
				len(comp.members[cid]), vl)
		case !ok:
			c.rep.add(NotThreeColorable, -1, at,
				"decomposition graph component of %d vias is not 3-colorable (via layer %d)",
				len(comp.members[cid]), vl)
		}
	}
}

type componentSet struct {
	id      []int
	members [][]int
}

// components labels connected components of an adjacency list.
func components(adj [][]int) componentSet {
	n := len(adj)
	cs := componentSet{id: make([]int, n)}
	for i := range cs.id {
		cs.id[i] = -1
	}
	var stack []int
	for s := 0; s < n; s++ {
		if cs.id[s] >= 0 {
			continue
		}
		cid := len(cs.members)
		var mem []int
		stack = append(stack[:0], s)
		cs.id[s] = cid
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			mem = append(mem, v)
			for _, u := range adj[v] {
				if cs.id[u] < 0 {
					cs.id[u] = cid
					stack = append(stack, u)
				}
			}
		}
		cs.members = append(cs.members, mem)
	}
	return cs
}

// colorableExact decides k-colorability of one component by
// backtracking with a step budget. exact=false means the budget ran
// out before a decision.
func colorableExact(adj [][]int, comp []int, k, budget int) (ok, exact bool) {
	colors := map[int]int{}
	steps := 0
	var solve func(i int) (bool, bool)
	solve = func(i int) (bool, bool) {
		if i == len(comp) {
			return true, true
		}
		steps++
		if steps > budget {
			return false, false
		}
		v := comp[i]
		for col := 1; col <= k; col++ {
			good := true
			for _, u := range adj[v] {
				if colors[u] == col {
					good = false
					break
				}
			}
			if good {
				colors[v] = col
				done, ex := solve(i + 1)
				if done {
					return true, true
				}
				delete(colors, v)
				if !ex {
					return false, false
				}
			}
		}
		return false, true
	}
	return solve(0)
}
