package verify_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/coloring"
	"repro/internal/dvi"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/netlist"
	"repro/internal/verify"
)

// The mutation tests corrupt a known-good solution in targeted ways
// and assert the verifier flags each corruption with the right
// violation kind — the test of the tester.

// fixture runs the full pipeline once on the smallest tiny circuit.
func fixture(t *testing.T) (*netlist.Netlist, []*grid.Route, *dvi.Instance, *dvi.Solution) {
	t.Helper()
	nl := bench.Generate(bench.TinySuite()[0])
	spec := bench.RunSpec{
		Scheme: coloring.SIM, ConsiderDVI: true, ConsiderTPL: true,
		Method: bench.HeurDVI,
	}
	_, art, err := bench.Run(nl, spec)
	if err != nil {
		t.Fatalf("bench.Run: %v", err)
	}
	return nl, art.Router.Routes(), art.Instance, art.Solution
}

var fixOpt = verify.Options{SADP: coloring.SIM, CheckTPL: true}

// copyRoutes deep-copies route geometry so a mutation cannot leak into
// other subtests through the shared fixture.
func copyRoutes(routes []*grid.Route) []*grid.Route {
	out := make([]*grid.Route, len(routes))
	for i, r := range routes {
		if r == nil {
			continue
		}
		c := grid.NewRoute(r.Net)
		for _, p := range r.Paths {
			c.AddPath(append([]geom.Pt3(nil), p...))
		}
		out[i] = c
	}
	return out
}

func copySolution(s *dvi.Solution) *dvi.Solution {
	c := *s
	c.Inserted = append([]int(nil), s.Inserted...)
	c.Colors = append([]int8(nil), s.Colors...)
	c.RedColors = append([]int8(nil), s.RedColors...)
	return &c
}

// fixStats recounts the solution's counters so a mutation test can
// isolate its target kind from DVIStatsMismatch noise.
func fixStats(s *dvi.Solution) {
	s.InsertedCount, s.DeadVias, s.Uncolorable = 0, 0, 0
	for i := range s.Inserted {
		if s.Inserted[i] >= 0 {
			s.InsertedCount++
		} else {
			s.DeadVias++
		}
		if s.Colors[i] == -1 {
			s.Uncolorable++
		}
	}
}

func TestMutationDropSegment(t *testing.T) {
	nl, routes, _, _ := fixture(t)
	// Find a net routed as a single polyline: splitting it in the
	// middle must disconnect it (no alternate path can bridge the gap).
	for i, r := range routes {
		if r == nil || len(r.Paths) != 1 || len(r.Paths[0]) < 3 {
			continue
		}
		mut := copyRoutes(routes)
		path := mut[i].Paths[0]
		k := len(path) / 2
		mut[i].Paths = [][]geom.Pt3{path[:k], path[k:]}
		rep := verify.Routing(nl, mut, fixOpt)
		if !rep.Has(verify.Disconnected) {
			t.Fatalf("dropping the middle segment of net %d not flagged as disconnected; report: %v", i, rep.Err())
		}
		return
	}
	t.Fatal("no single-path net found in fixture")
}

func TestMutationUnroutedNet(t *testing.T) {
	nl, routes, _, _ := fixture(t)
	mut := copyRoutes(routes)
	mut[0] = nil
	rep := verify.Routing(nl, mut, fixOpt)
	if !rep.Has(verify.Unrouted) {
		t.Fatalf("nil route not flagged as unrouted; report: %v", rep.Err())
	}
}

func TestMutationBadStepAndOffGrid(t *testing.T) {
	nl, routes, _, _ := fixture(t)

	mut := copyRoutes(routes)
	p0 := mut[0].Paths[0][0]
	mut[0].Paths = append(mut[0].Paths, []geom.Pt3{p0, geom.XYL(p0.X, p0.Y, p0.Layer+1), p0}) // keep connected
	mut[0].Paths = append(mut[0].Paths, []geom.Pt3{p0, geom.XYL(p0.X+2, p0.Y, p0.Layer)})
	if rep := verify.Routing(nl, mut, fixOpt); !rep.Has(verify.BadStep) {
		t.Fatalf("two-unit jump not flagged as bad step; report: %v", rep.Err())
	}

	mut = copyRoutes(routes)
	mut[0].Paths = append(mut[0].Paths, []geom.Pt3{geom.XYL(-1, 0, 0), geom.XYL(0, 0, 0)})
	if rep := verify.Routing(nl, mut, fixOpt); !rep.Has(verify.OffGrid) {
		t.Fatalf("negative coordinate not flagged as off-grid; report: %v", rep.Err())
	}
}

func TestMutationMetalShort(t *testing.T) {
	nl, routes, _, _ := fixture(t)
	// Find two nets with metal one step apart on the same layer and
	// extend the first onto the second's point.
	own := map[geom.Pt3]int32{}
	for _, r := range routes {
		for _, p := range r.PointList() {
			own[p] = r.Net
		}
	}
	for _, r := range routes {
		for _, p := range r.PointList() {
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				q := geom.XYL(p.X+d[0], p.Y+d[1], p.Layer)
				if other, ok := own[q]; ok && other != r.Net {
					mut := copyRoutes(routes)
					mut[r.Net].Paths = append(mut[r.Net].Paths, []geom.Pt3{p, q})
					rep := verify.Routing(nl, mut, fixOpt)
					if !rep.Has(verify.MetalShort) {
						t.Fatalf("net %d extended onto net %d's metal at %v not flagged as short; report: %v",
							r.Net, other, q, rep.Err())
					}
					return
				}
			}
		}
	}
	t.Fatal("no adjacent metal of two nets found in fixture")
}

func TestMutationRecolorVia(t *testing.T) {
	nl, routes, in, sol := fixture(t)
	// Find two originals on the same via layer within the same-color
	// pitch, both colored, and force them to one color.
	for i := range in.Vias {
		if sol.Colors[i] < 0 {
			continue
		}
		for j := range in.Vias {
			if j == i || sol.Colors[j] < 0 || sol.Colors[j] == sol.Colors[i] {
				continue
			}
			if in.Vias[i].Layer() != in.Vias[j].Layer() {
				continue
			}
			dx := in.Vias[i].Pos().X - in.Vias[j].Pos().X
			dy := in.Vias[i].Pos().Y - in.Vias[j].Pos().Y
			if dx*dx+dy*dy > 5 {
				continue
			}
			mut := copySolution(sol)
			mut.Colors[i] = mut.Colors[j]
			fixStats(mut)
			rep := verify.Solution(nl, routes, in, mut, fixOpt)
			if !rep.Has(verify.DVIColorConflict) {
				t.Fatalf("recolored vias %d/%d within pitch not flagged; report: %v", i, j, rep.Err())
			}
			return
		}
	}
	t.Fatal("no within-pitch differently-colored via pair found in fixture")
}

func TestMutationDoubleInsert(t *testing.T) {
	nl, routes, in, sol := fixture(t)
	// Two vias on one layer sharing a feasible candidate: inserting
	// both at that site is a collision.
	for i := range in.Vias {
		for _, ci := range in.Feas[i] {
			for j := range in.Vias {
				if j == i || in.Vias[i].Layer() != in.Vias[j].Layer() {
					continue
				}
				for cj, c := range in.Feas[j] {
					if c != ci {
						continue
					}
					mut := copySolution(sol)
					for ii, cc := range in.Feas[i] {
						if cc == ci {
							mut.Inserted[i] = ii
						}
					}
					mut.Inserted[j] = cj
					mut.RedColors[i], mut.RedColors[j] = 0, 1
					fixStats(mut)
					rep := verify.Solution(nl, routes, in, mut, fixOpt)
					if !rep.Has(verify.DVICollision) {
						t.Fatalf("vias %d and %d both inserted at %v not flagged; report: %v", i, j, ci, rep.Err())
					}
					return
				}
			}
		}
	}
	t.Fatal("no shared feasible candidate found in fixture")
}

func TestMutationDVIScalars(t *testing.T) {
	nl, routes, in, sol := fixture(t)

	mut := copySolution(sol)
	mut.InsertedCount++
	if rep := verify.Solution(nl, routes, in, mut, fixOpt); !rep.Has(verify.DVIStatsMismatch) {
		t.Fatalf("inflated InsertedCount not flagged; report: %v", rep.Err())
	}

	mut = copySolution(sol)
	mut.Colors[0] = 5
	fixStats(mut)
	if rep := verify.Solution(nl, routes, in, mut, fixOpt); !rep.Has(verify.DVIBadColor) {
		t.Fatalf("color 5 not flagged; report: %v", rep.Err())
	}

	mut = copySolution(sol)
	mut.Inserted[0] = 7 // vias have at most 4 candidates
	fixStats(mut)
	if rep := verify.Solution(nl, routes, in, mut, fixOpt); !rep.Has(verify.DVIBadIndex) {
		t.Fatalf("out-of-range candidate index not flagged; report: %v", rep.Err())
	}
}

func TestMutationInfeasibleCandidate(t *testing.T) {
	nl, routes, in, sol := fixture(t)
	// Corrupt the instance itself: claim a far-away point is a
	// feasible candidate and insert there.
	mut := copySolution(sol)
	inMut := *in
	inMut.Feas = append([][]geom.Pt(nil), in.Feas...)
	far := geom.XY(in.Vias[0].Pos().X+5, in.Vias[0].Pos().Y)
	inMut.Feas[0] = append(append([]geom.Pt(nil), in.Feas[0]...), far)
	mut.Inserted[0] = len(inMut.Feas[0]) - 1
	mut.RedColors[0] = 0
	fixStats(mut)
	rep := verify.Solution(nl, routes, &inMut, mut, fixOpt)
	if !rep.Has(verify.DVIInfeasible) {
		t.Fatalf("non-adjacent candidate not flagged; report: %v", rep.Err())
	}
}

func TestMutationViaListMismatch(t *testing.T) {
	nl, routes, in, sol := fixture(t)
	if len(in.Vias) == 0 {
		t.Fatal("fixture has no vias")
	}
	inMut := *in
	inMut.Vias = in.Vias[1:]
	inMut.Feas = in.Feas[1:]
	mut := copySolution(sol)
	mut.Inserted = mut.Inserted[1:]
	mut.Colors = mut.Colors[1:]
	mut.RedColors = mut.RedColors[1:]
	fixStats(mut)
	rep := verify.Solution(nl, routes, &inMut, mut, fixOpt)
	if !rep.Has(verify.DVIViaMismatch) {
		t.Fatalf("dropped instance via not flagged; report: %v", rep.Err())
	}
}

// multiPinFixture runs the pipeline once on the smallest multi-pin
// circuit (pin counts uniform in [2, 6]), so routed Steiner trees with
// shared trunks are present. Returns the router-reported wirelength
// alongside the solution for metric cross-checks.
func multiPinFixture(t *testing.T) (*netlist.Netlist, []*grid.Route, int) {
	t.Helper()
	nl := bench.Generate(bench.TinyMultiPinSuite()[0])
	spec := bench.RunSpec{
		Scheme: coloring.SIM, ConsiderDVI: true, ConsiderTPL: true,
		Method: bench.HeurDVI,
	}
	row, art, err := bench.Run(nl, spec)
	if err != nil {
		t.Fatalf("bench.Run: %v", err)
	}
	return nl, art.Router.Routes(), row.WL
}

// TestMutationDroppedSteinerBranch: removing one branch of a k-pin
// net's routed tree must break connectivity — either a pin loses its
// metal entirely or the remaining geometry splits into components. The
// verifier sees only the pin set, so this is the check that k-pin
// solutions cannot silently drop a leaf.
func TestMutationDroppedSteinerBranch(t *testing.T) {
	nl, routes, _ := multiPinFixture(t)
	for i, r := range routes {
		if r == nil || len(nl.Nets[i].Pins) < 3 || len(r.Paths) < 2 {
			continue
		}
		for k := range r.Paths {
			mut := copyRoutes(routes)
			mut[i].Paths = append(mut[i].Paths[:k], mut[i].Paths[k+1:]...)
			rep := verify.Routing(nl, mut, fixOpt)
			if rep.Has(verify.PinMissing) || rep.Has(verify.Disconnected) {
				return
			}
		}
	}
	t.Fatal("no dropped branch of any k-pin net was flagged as pin-missing or disconnected")
}

// TestMutationCrossNetTrunkShare: trunk reuse is free within a net but
// never across nets. Grafting another net's wire onto a k-pin net's
// trunk metal must be flagged as a short.
func TestMutationCrossNetTrunkShare(t *testing.T) {
	nl, routes, _ := multiPinFixture(t)
	// Index the metal of multi-pin nets (the trunks under test).
	own := map[geom.Pt3]int32{}
	for i, r := range routes {
		if r == nil || len(nl.Nets[i].Pins) < 3 {
			continue
		}
		for _, p := range r.PointList() {
			own[p] = r.Net
		}
	}
	for _, r := range routes {
		if r == nil {
			continue
		}
		for _, p := range r.PointList() {
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				q := geom.XYL(p.X+d[0], p.Y+d[1], p.Layer)
				other, ok := own[q]
				if !ok || other == r.Net {
					continue
				}
				mut := copyRoutes(routes)
				mut[r.Net].Paths = append(mut[r.Net].Paths, []geom.Pt3{p, q})
				rep := verify.Routing(nl, mut, fixOpt)
				if !rep.Has(verify.MetalShort) {
					t.Fatalf("net %d grafted onto net %d's trunk at %v not flagged as short; report: %v",
						r.Net, other, q, rep.Err())
				}
				return
			}
		}
	}
	t.Fatal("no routed metal adjacent to a k-pin net's trunk found in fixture")
}

// TestMutationTrunkDoubleCountWL: the independent metric recount
// deduplicates per-net geometry, so a router that emitted the shared
// trunk once per branch (double-counting its wirelength) would
// disagree with verify.Metrics and be caught by the metrics
// cross-check. Establishes both halves: the recount matches the
// reported wirelength on the honest solution, and stays fixed when a
// trunk path is duplicated while a naive per-path sum inflates.
func TestMutationTrunkDoubleCountWL(t *testing.T) {
	nl, routes, reportedWL := multiPinFixture(t)
	wl, vias := verify.Metrics(routes)
	if wl != reportedWL {
		t.Fatalf("independent recount wl=%d disagrees with reported wl=%d on the honest solution", wl, reportedWL)
	}
	mut := copyRoutes(routes)
	dup := -1
	for i, r := range mut {
		if r == nil || len(nl.Nets[i].Pins) < 3 || len(r.Paths) < 2 {
			continue
		}
		if metalSteps(r.Paths[0]) > 0 {
			r.Paths = append(r.Paths, r.Paths[0])
			dup = i
			break
		}
	}
	if dup < 0 {
		t.Fatal("no k-pin net with a metal-bearing trunk path found in fixture")
	}
	wl2, vias2 := verify.Metrics(mut)
	if wl2 != wl || vias2 != vias {
		t.Fatalf("duplicated trunk changed the deduplicated recount: wl %d -> %d, vias %d -> %d", wl, wl2, vias, vias2)
	}
	naive := 0
	for _, r := range mut {
		if r == nil {
			continue
		}
		for _, p := range r.Paths {
			naive += metalSteps(p)
		}
	}
	if naive <= wl2 {
		t.Fatalf("naive per-path sum %d does not exceed deduplicated wl %d — double count invisible", naive, wl2)
	}
}

// TestMutationSelfTrunkReuseLegal: a net overlapping its own metal
// (the Steiner trunk shared by several branches) is legal — no short,
// no connectivity complaint, identical metrics.
func TestMutationSelfTrunkReuseLegal(t *testing.T) {
	nl, routes, _ := multiPinFixture(t)
	mut := copyRoutes(routes)
	for i, r := range mut {
		if r == nil || len(nl.Nets[i].Pins) < 3 || len(r.Paths) < 2 {
			continue
		}
		r.Paths = append(r.Paths, r.Paths[0])
		if err := verify.Routing(nl, mut, fixOpt).Err(); err != nil {
			t.Fatalf("self trunk reuse on net %d rejected: %v", i, err)
		}
		return
	}
	t.Fatal("no k-pin net with multiple paths found in fixture")
}

// metalSteps counts a path's same-layer unit steps.
func metalSteps(path []geom.Pt3) int {
	n := 0
	for i := 1; i < len(path); i++ {
		if path[i-1].Layer == path[i].Layer {
			n++
		}
	}
	return n
}

// handBuilt returns a 1-net netlist on an 8×8 two-layer grid plus a
// route covering its pins, built point by point for full control over
// the geometry under test.
func handBuilt(pins []geom.Pt, paths [][]geom.Pt3) (*netlist.Netlist, []*grid.Route) {
	nl := &netlist.Netlist{Name: "hand", W: 8, H: 8, NumLayers: 2}
	nl.Nets = append(nl.Nets, &netlist.Net{ID: 0, Name: "n0", Pins: pins})
	r := grid.NewRoute(0)
	for _, p := range paths {
		r.AddPath(p)
	}
	return nl, []*grid.Route{r}
}

func TestMutationFVPWindow(t *testing.T) {
	// A 2×2 block of vias is pairwise in conflict (K4), hence not
	// 3-colorable: the smallest forbidden via pattern.
	l0 := func(x, y int) geom.Pt3 { return geom.XYL(x, y, 0) }
	l1 := func(x, y int) geom.Pt3 { return geom.XYL(x, y, 1) }
	nl, routes := handBuilt(
		[]geom.Pt{geom.XY(0, 0), geom.XY(3, 0)},
		[][]geom.Pt3{
			{l0(0, 0), l0(1, 0), l0(2, 0), l0(3, 0)},
			{l0(1, 0), l0(1, 1)},
			{l0(2, 0), l0(2, 1)},
			{l0(1, 0), l1(1, 0)},
			{l0(2, 0), l1(2, 0)},
			{l0(1, 1), l1(1, 1)},
			{l0(2, 1), l1(2, 1)},
		},
	)
	rep := verify.Routing(nl, routes, fixOpt)
	if !rep.Has(verify.FVP) {
		t.Fatalf("2x2 via block not flagged as FVP; report: %v", rep.Err())
	}
	if !rep.Has(verify.NotThreeColorable) {
		t.Fatalf("2x2 via block (K4) not flagged as uncolorable; report: %v", rep.Err())
	}
	// Without TPL consideration the same geometry is legal.
	if err := verify.Routing(nl, routes, verify.Options{SADP: coloring.SIM}).Err(); err != nil {
		t.Fatalf("via block rejected with TPL checks off: %v", err)
	}
}

func TestMutationForbiddenTurn(t *testing.T) {
	l0 := func(x, y int) geom.Pt3 { return geom.XYL(x, y, 0) }
	// At an even/even point the preferred corner is NE (SIM) or SW
	// (SID); NW shares exactly one arm with either, so a W+N L-turn at
	// (2,2) is forbidden in both modes...
	nl, routes := handBuilt(
		[]geom.Pt{geom.XY(1, 2), geom.XY(2, 3)},
		[][]geom.Pt3{{l0(1, 2), l0(2, 2), l0(2, 3)}},
	)
	for _, mode := range []coloring.SADPType{coloring.SIM, coloring.SID} {
		rep := verify.Routing(nl, routes, verify.Options{SADP: mode})
		if !rep.Has(verify.ForbiddenTurn) {
			t.Errorf("%v: NW turn at even/even point not flagged; report: %v", mode, rep.Err())
		}
	}
	// ...while the NE L-turn there is the preferred (SIM) or
	// non-preferred (SID) corner: legal in both.
	nl, routes = handBuilt(
		[]geom.Pt{geom.XY(3, 2), geom.XY(2, 3)},
		[][]geom.Pt3{{l0(3, 2), l0(2, 2), l0(2, 3)}},
	)
	for _, mode := range []coloring.SADPType{coloring.SIM, coloring.SID} {
		if err := verify.Routing(nl, routes, verify.Options{SADP: mode}).Err(); err != nil {
			t.Errorf("%v: NE turn at even/even point wrongly rejected: %v", mode, err)
		}
	}
}

func TestMutationPinObstruction(t *testing.T) {
	nl, routes, _, _ := fixture(t)
	// Extend some net's layer-0 metal onto an adjacent foreign pin.
	pinNet := map[geom.Pt]int32{}
	for _, n := range nl.Nets {
		for _, p := range n.Pins {
			pinNet[p] = int32(n.ID)
		}
	}
	for _, r := range routes {
		for _, p := range r.PointList() {
			if p.Layer != 0 {
				continue
			}
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				q := geom.XY(p.X+d[0], p.Y+d[1])
				owner, isPin := pinNet[q]
				if !isPin || owner == r.Net {
					continue
				}
				mut := copyRoutes(routes)
				mut[r.Net].Paths = append(mut[r.Net].Paths, []geom.Pt3{p, geom.XYL(q.X, q.Y, 0)})
				rep := verify.Routing(nl, mut, fixOpt)
				if !rep.Has(verify.PinObstruction) && !rep.Has(verify.MetalShort) {
					t.Fatalf("net %d routed over net %d's pin at %v not flagged; report: %v",
						r.Net, owner, q, rep.Err())
				}
				return
			}
		}
	}
	t.Fatal("no foreign pin adjacent to routed metal found in fixture")
}
