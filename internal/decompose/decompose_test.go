package decompose

import (
	"testing"

	"repro/internal/coloring"
	"repro/internal/geom"
	"repro/internal/grid"
)

func straightRoute(net int32, y, x0, x1 int) *grid.Route {
	r := grid.NewRoute(net)
	var path []geom.Pt3
	for x := x0; x <= x1; x++ {
		path = append(path, geom.XYL(x, y, 0))
	}
	r.AddPath(path)
	return r
}

func TestStraightWiresDecompose(t *testing.T) {
	for _, typ := range []coloring.SADPType{coloring.SIM, coloring.SID} {
		g := grid.New(16, 16, 2, coloring.Scheme{Type: typ})
		var routes []*grid.Route
		for y := 2; y <= 5; y++ { // adjacent tracks alternate mandrel/spacer
			r := straightRoute(int32(y), y, 2, 10)
			g.AddRoute(r)
			routes = append(routes, r)
		}
		res := Decompose(g, routes)
		if hv := res.HardViolations(); len(hv) != 0 {
			t.Errorf("%v: straight wires produced hard violations: %v", typ, hv)
		}
		// Some wires must land on the core mask, some on spacers:
		// the pre-assignment alternates by track.
		m0 := res.Layers[0]
		if len(m0.Mandrel) == 0 || len(m0.SpacerWires) == 0 {
			t.Errorf("%v: expected a mix of mandrel and spacer wires, got %d/%d",
				typ, len(m0.Mandrel), len(m0.SpacerWires))
		}
		// Spacer wires carry cut shapes at both ends.
		if len(m0.CutShapes) != 2*len(m0.SpacerWires) {
			t.Errorf("%v: cut shape count %d != 2x spacer wires %d",
				typ, len(m0.CutShapes), len(m0.SpacerWires))
		}
	}
}

func TestPreferredTurnDecomposes(t *testing.T) {
	scheme := coloring.Scheme{Type: coloring.SIM}
	// Find a preferred corner location and build that exact L.
	var at geom.Pt
	var corner coloring.Corner
	found := false
	for x := 2; x < 4 && !found; x++ {
		for y := 2; y < 4 && !found; y++ {
			for c := coloring.Corner(0); c < coloring.NumCorners; c++ {
				if scheme.Turn(geom.XY(x, y), c) == coloring.Preferred {
					at, corner, found = geom.XY(x, y), c, true
					break
				}
			}
		}
	}
	if !found {
		t.Fatal("no preferred corner in probe area")
	}
	v, h := corner.Arms()
	g := grid.New(16, 16, 2, scheme)
	r := grid.NewRoute(0)
	p := geom.XYL(at.X, at.Y, 0)
	r.AddPath([]geom.Pt3{p.Step(h).Step(h), p.Step(h), p, p.Step(v), p.Step(v).Step(v)})
	g.AddRoute(r)
	res := Decompose(g, []*grid.Route{r})
	if hv := res.HardViolations(); len(hv) != 0 {
		t.Errorf("preferred turn flagged: %v", hv)
	}
}

func TestForbiddenTurnDetected(t *testing.T) {
	scheme := coloring.Scheme{Type: coloring.SIM}
	var at geom.Pt
	var corner coloring.Corner
	found := false
	for c := coloring.Corner(0); c < coloring.NumCorners && !found; c++ {
		if scheme.Turn(geom.XY(3, 3), c) == coloring.Forbidden {
			at, corner, found = geom.XY(3, 3), c, true
		}
	}
	if !found {
		t.Fatal("no forbidden corner at probe point")
	}
	v, h := corner.Arms()
	g := grid.New(16, 16, 2, scheme)
	r := grid.NewRoute(0)
	p := geom.XYL(at.X, at.Y, 0)
	r.AddPath([]geom.Pt3{p.Step(h).Step(h), p.Step(h), p, p.Step(v), p.Step(v).Step(v)})
	g.AddRoute(r)
	res := Decompose(g, []*grid.Route{r})
	hv := res.HardViolations()
	if len(hv) == 0 {
		t.Fatal("forbidden turn not detected by mask DRC")
	}
	if hv[0].At != at {
		t.Errorf("violation at %v, want %v", hv[0].At, at)
	}
}

func TestMandrelGapRule(t *testing.T) {
	scheme := coloring.Scheme{Type: coloring.SID}
	g := grid.New(20, 20, 2, scheme)
	// Find a mandrel track.
	track := -1
	for y := 2; y < 6; y++ {
		if scheme.MandrelTrack(y) {
			track = y
			break
		}
	}
	if track < 0 {
		t.Fatal("no mandrel track found")
	}
	// Two collinear wires with a 1-unit gap on the mandrel track: the
	// mandrels merge into one core-mask shape and the gap is cut.
	a := straightRoute(0, track, 2, 6)
	b := straightRoute(1, track, 8, 12)
	g.AddRoute(a)
	g.AddRoute(b)
	res := Decompose(g, []*grid.Route{a, b})
	if hv := res.HardViolations(); len(hv) != 0 {
		t.Errorf("1-unit mandrel gap must merge, got hard violations: %v", hv)
	}
	m0 := res.Layers[0]
	if len(m0.Mandrel) != 1 {
		t.Errorf("expected merged mandrel, got %d segments", len(m0.Mandrel))
	}
	if len(m0.CutShapes) != 1 || m0.CutShapes[0] != geom.XY(7, track) {
		t.Errorf("expected one cut at gap cell (7,%d), got %v", track, m0.CutShapes)
	}
	// A 2-unit gap keeps two separate mandrels and needs no cut.
	g2 := grid.New(20, 20, 2, scheme)
	a2 := straightRoute(0, track, 2, 6)
	b2 := straightRoute(1, track, 9, 12)
	g2.AddRoute(a2)
	g2.AddRoute(b2)
	res2 := Decompose(g2, []*grid.Route{a2, b2})
	if hv := res2.HardViolations(); len(hv) != 0 {
		t.Errorf("2-unit mandrel gap flagged: %v", hv)
	}
	if len(res2.Layers[0].Mandrel) != 2 {
		t.Errorf("2-unit gap wrongly merged: %d segments", len(res2.Layers[0].Mandrel))
	}
}

func TestCutCrowdingWarning(t *testing.T) {
	scheme := coloring.Scheme{Type: coloring.SIM}
	spacer := -1
	for y := 2; y < 8; y++ {
		if !scheme.MandrelTrack(y) {
			spacer = y
			break
		}
	}
	if spacer < 0 {
		t.Fatal("no spacer track")
	}
	// Two collinear spacer wires with a 2-unit gap: distinct cut
	// shapes at adjacent cells → tight-cut warning.
	g := grid.New(20, 20, 2, scheme)
	a := straightRoute(0, spacer, 2, 6)
	b := straightRoute(1, spacer, 9, 13)
	g.AddRoute(a)
	g.AddRoute(b)
	res := Decompose(g, []*grid.Route{a, b})
	warns := 0
	for _, v := range res.Violations {
		if v.Severity == Warning {
			warns++
		}
	}
	if warns == 0 {
		t.Error("cut shapes 1 unit apart not warned")
	}
	// A 1-unit gap merges the two line-end cuts into one shape: no
	// warning from that pair, and still no hard violation (spacer
	// track, not mandrel).
	g2 := grid.New(20, 20, 2, scheme)
	c1 := straightRoute(0, spacer, 2, 6)
	c2 := straightRoute(1, spacer, 8, 12)
	g2.AddRoute(c1)
	g2.AddRoute(c2)
	res2 := Decompose(g2, []*grid.Route{c1, c2})
	if len(res2.Layers[0].CutShapes) != 3 {
		t.Errorf("expected merged cut (3 shapes), got %d", len(res2.Layers[0].CutShapes))
	}
	if hv := res2.HardViolations(); len(hv) != 0 {
		t.Errorf("spacer-track 1-gap flagged hard: %v", hv)
	}
}

func TestSeverityString(t *testing.T) {
	if Hard.String() != "hard" || Warning.String() != "warning" {
		t.Error("severity strings wrong")
	}
	v := Violation{Severity: Hard, Layer: 1, At: geom.XY(2, 3), Rule: "x"}
	if v.String() == "" {
		t.Error("violation string empty")
	}
}

func TestSegGap(t *testing.T) {
	a := Segment{Track: 0, Lo: 2, Hi: 6}
	cases := []struct {
		b    Segment
		want int
	}{
		{Segment{Track: 0, Lo: 8, Hi: 12}, 1},
		{Segment{Track: 0, Lo: 9, Hi: 12}, 2},
		{Segment{Track: 0, Lo: 7, Hi: 12}, 0},
		{Segment{Track: 0, Lo: 4, Hi: 12}, -1},
	}
	for _, c := range cases {
		if got := segGap(a, c.b); got != c.want {
			t.Errorf("segGap(%v,%v) = %d want %d", a, c.b, got, c.want)
		}
		if got := segGap(c.b, a); got != c.want {
			t.Errorf("segGap symmetric (%v,%v) = %d want %d", c.b, a, got, c.want)
		}
	}
}
