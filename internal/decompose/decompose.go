// Package decompose synthesizes SADP masks from a routed layout and
// checks mask design rules — the end-to-end validator for the claim
// that color-pre-assigned routing solutions stay SADP decomposable
// (paper §II-B, Figs 1 and 4).
//
// The model follows the pre-assignment contract:
//
//   - SID (spacer-is-dielectric, trim approach): mandrels run along
//     black tracks; wires on black tracks print from the core mask,
//     wires on grey tracks print between spacers; the trim mask keeps
//     exactly the wanted metal.
//   - SIM (spacer-is-metal, cut approach): mandrels center in grey
//     panels; every wire is a spacer flank of a mandrel; the cut mask
//     removes unwanted spacer loops, in particular at line ends.
//
// DRC implemented on the synthesized masks:
//
//   - Hard: a forbidden L-turn (undecomposable corner, the rule the
//     router enforces) — re-derived here independently from the masks'
//     viewpoint via the coloring tables.
//   - Hard: two distinct mandrel segments on the same track closer
//     than the minimum end-to-end gap of 2 grid units (a 1-unit gap
//     cannot be patterned on the core mask).
//   - Warning: two cut/trim line-end shapes within 1 grid unit of each
//     other on different tracks (tight cut masks print with TPL in
//     practice; the paper does not constrain them in routing, so these
//     are reported but not fatal).
package decompose

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/coloring"
	"repro/internal/geom"
	"repro/internal/grid"
)

// Severity grades a violation.
type Severity uint8

const (
	// Hard violations make the layout undecomposable.
	Hard Severity = iota
	// Warning violations are printable but cost cut-mask complexity.
	Warning
)

func (s Severity) String() string {
	if s == Hard {
		return "hard"
	}
	return "warning"
}

// Violation is one mask DRC finding.
type Violation struct {
	Severity Severity
	Layer    int
	At       geom.Pt
	Rule     string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: layer %d at %v: %s", v.Severity, v.Layer, v.At, v.Rule)
}

// Segment is a maximal straight run of mask material along a track.
type Segment struct {
	// Track is the cross-axis index (y for horizontal layers, x for
	// vertical ones).
	Track int
	// Lo, Hi are the inclusive along-axis extents.
	Lo, Hi int
}

// Masks is the decomposition of one routing layer.
type Masks struct {
	Layer int
	// Horizontal reports the layer's preferred direction.
	Horizontal bool
	// Mandrel holds core-mask segments.
	Mandrel []Segment
	// SpacerWires holds wire segments printed by spacers (not on the
	// core mask).
	SpacerWires []Segment
	// CutShapes holds cut/trim mask features at line ends.
	CutShapes []geom.Pt
}

// Result is the full-layout decomposition.
type Result struct {
	Scheme     coloring.Scheme
	Layers     []Masks
	Violations []Violation
}

// HardViolations returns only the fatal findings.
func (r *Result) HardViolations() []Violation {
	var out []Violation
	for _, v := range r.Violations {
		if v.Severity == Hard {
			out = append(out, v)
		}
	}
	return out
}

// Decompose synthesizes masks for every routing layer of a solution
// and runs the mask DRC.
func Decompose(g *grid.Grid, routes []*grid.Route) *Result {
	res := &Result{Scheme: g.Scheme}
	arms := collectArms(g, routes)
	for l := 0; l < g.NumLayers; l++ {
		m := synthesizeLayer(g, l, arms[l])
		res.Layers = append(res.Layers, m)
		res.Violations = append(res.Violations, drcLayer(g, l, m, arms[l])...)
	}
	return res
}

// collectArms unions each layer's metal arm masks over all routes.
func collectArms(g *grid.Grid, routes []*grid.Route) []map[geom.Pt]uint8 {
	arms := make([]map[geom.Pt]uint8, g.NumLayers)
	for l := range arms {
		arms[l] = map[geom.Pt]uint8{}
	}
	for _, r := range routes {
		if r == nil || r.Empty() {
			continue
		}
		for _, p := range r.PointList() {
			arms[p.Layer][p.Pt2()] |= r.ArmMask(p)
		}
	}
	return arms
}

// trackRun decomposes a layer's along-direction wire segments. For a
// horizontal layer the track is y and the run spans x.
func wireSegments(g *grid.Grid, l int, arms map[geom.Pt]uint8) []Segment {
	horizontal := g.PrefHorizontal(l)
	covered := func(p geom.Pt, q geom.Pt) bool {
		// Segment between p and q exists when either endpoint has the
		// arm toward the other.
		d := geom.Pt3{X: p.X, Y: p.Y}.DirTo(geom.Pt3{X: q.X, Y: q.Y})
		return arms[p]&armBit(d) != 0
	}
	var segs []Segment
	tracks, span := g.H, g.W
	if !horizontal {
		tracks, span = g.W, g.H
	}
	at := func(track, along int) geom.Pt {
		if horizontal {
			return geom.XY(along, track)
		}
		return geom.XY(track, along)
	}
	for t := 0; t < tracks; t++ {
		lo := -1
		for a := 0; a < span; a++ {
			p := at(t, a)
			onWire := arms[p] != 0 || pointHasMetal(g, l, p)
			if onWire && lo == -1 {
				lo = a
			}
			endHere := false
			if onWire {
				if a == span-1 {
					endHere = true
				} else if !covered(p, at(t, a+1)) {
					endHere = true
				}
			}
			if endHere && lo != -1 {
				segs = append(segs, Segment{Track: t, Lo: lo, Hi: a})
				lo = -1
			}
			if !onWire {
				lo = -1
			}
		}
	}
	return segs
}

func pointHasMetal(g *grid.Grid, l int, p geom.Pt) bool {
	return g.Metal[l].Occupied(p)
}

func armBit(d geom.Dir) uint8 {
	switch d {
	case geom.East:
		return 1
	case geom.West:
		return 2
	case geom.North:
		return 4
	case geom.South:
		return 8
	}
	return 0
}

// synthesizeLayer splits wire segments into mandrel-printed and
// spacer-printed, and derives cut/trim shapes at spacer line ends.
// Collinear mandrel segments closer than the minimum core-mask
// end-to-end gap (2 units) are merged into one mandrel and separated
// with a cut/trim shape in the gap — the standard line-end treatment
// of the cut approach.
func synthesizeLayer(g *grid.Grid, l int, arms map[geom.Pt]uint8) Masks {
	m := Masks{Layer: l, Horizontal: g.PrefHorizontal(l)}
	scheme := g.Scheme
	var mandrels []Segment
	for _, s := range wireSegments(g, l, arms) {
		if scheme.MandrelTrack(s.Track) {
			mandrels = append(mandrels, s)
		} else {
			m.SpacerWires = append(m.SpacerWires, s)
			// Cut/trim shapes sit in the empty cell beyond each line
			// end of a spacer wire: the cut removes the spacer loop
			// there. Coincident shapes (two line ends sharing a 1-unit
			// gap) merge into one cut.
			for _, e := range [2]geom.Pt{cutCell(m.Horizontal, s, true), cutCell(m.Horizontal, s, false)} {
				if g.InPlane(e) && !containsPt(m.CutShapes, e) {
					m.CutShapes = append(m.CutShapes, e)
				}
			}
		}
	}
	m.Mandrel = mergeCloseMandrels(&m, mandrels, g)
	return m
}

// mergeCloseMandrels merges same-track mandrel segments whose
// end-to-end gap is below 2, adding a cut shape per gap cell. Segments
// arrive grouped by track in ascending along-axis order from
// wireSegments.
func mergeCloseMandrels(m *Masks, segs []Segment, g *grid.Grid) []Segment {
	var out []Segment
	for _, s := range segs {
		if len(out) > 0 {
			last := &out[len(out)-1]
			if last.Track == s.Track {
				if gap := segGap(*last, s); gap >= 0 && gap < 2 {
					for a := last.Hi + 1; a < s.Lo; a++ {
						var cutAt geom.Pt
						if m.Horizontal {
							cutAt = geom.XY(a, s.Track)
						} else {
							cutAt = geom.XY(s.Track, a)
						}
						if g.InPlane(cutAt) && !containsPt(m.CutShapes, cutAt) {
							m.CutShapes = append(m.CutShapes, cutAt)
						}
					}
					last.Hi = s.Hi
					continue
				}
			}
		}
		out = append(out, s)
	}
	return out
}

func containsPt(pts []geom.Pt, p geom.Pt) bool {
	for _, q := range pts {
		if q == p {
			return true
		}
	}
	return false
}

// cutCell is the cell just beyond a segment's line end.
func cutCell(horizontal bool, s Segment, lo bool) geom.Pt {
	a := s.Lo - 1
	if !lo {
		a = s.Hi + 1
	}
	if horizontal {
		return geom.XY(a, s.Track)
	}
	return geom.XY(s.Track, a)
}

func segEnd(horizontal bool, s Segment, lo bool) geom.Pt {
	a := s.Lo
	if !lo {
		a = s.Hi
	}
	if horizontal {
		return geom.XY(a, s.Track)
	}
	return geom.XY(s.Track, a)
}

// drcLayer checks the synthesized masks of one layer.
func drcLayer(g *grid.Grid, l int, m Masks, arms map[geom.Pt]uint8) []Violation {
	var out []Violation
	// Rule 1 (hard): forbidden corners. Exactly-two perpendicular arms
	// form an L; the coloring tables decide decomposability. Row-major
	// order keeps the violation list reproducible.
	armPts := make([]geom.Pt, 0, len(arms))
	for p := range arms {
		armPts = append(armPts, p)
	}
	sort.Slice(armPts, func(i, j int) bool {
		if armPts[i].Y != armPts[j].Y {
			return armPts[i].Y < armPts[j].Y
		}
		return armPts[i].X < armPts[j].X
	})
	for _, p := range armPts {
		mask := arms[p]
		if bits.OnesCount8(mask) != 2 {
			continue
		}
		d1, d2 := twoArms(mask)
		corner, ok := coloring.CornerOf(d1, d2)
		if !ok {
			continue
		}
		if g.Scheme.Turn(p, corner) == coloring.Forbidden {
			out = append(out, Violation{
				Severity: Hard, Layer: l, At: p,
				Rule: fmt.Sprintf("forbidden %v corner is undecomposable", corner),
			})
		}
	}
	// Rule 2 (hard): mandrel end-to-end gap ≥ 2 on the same track,
	// scanned in ascending track order for a reproducible report.
	byTrack := map[int][]Segment{}
	tracks := []int{}
	for _, s := range m.Mandrel {
		if byTrack[s.Track] == nil {
			tracks = append(tracks, s.Track)
		}
		byTrack[s.Track] = append(byTrack[s.Track], s)
	}
	sort.Ints(tracks)
	for _, t := range tracks {
		segs := byTrack[t]
		for i := 0; i < len(segs); i++ {
			for j := i + 1; j < len(segs); j++ {
				gap := segGap(segs[i], segs[j])
				if gap >= 0 && gap < 2 {
					out = append(out, Violation{
						Severity: Hard, Layer: l, At: segEnd(m.Horizontal, segs[i], false),
						Rule: fmt.Sprintf("mandrel end-to-end gap %d < 2", gap),
					})
				}
			}
		}
	}
	// Rule 3 (warning): crowded cut shapes. Distinct cuts within 2
	// units are printable (via TPL of the cut mask) but tight.
	for i := 0; i < len(m.CutShapes); i++ {
		for j := i + 1; j < len(m.CutShapes); j++ {
			a, b := m.CutShapes[i], m.CutShapes[j]
			if a.ChebyshevDist(b) <= 2 {
				out = append(out, Violation{
					Severity: Warning, Layer: l, At: a,
					Rule: fmt.Sprintf("cut shapes at %v and %v within 2 units", a, b),
				})
			}
		}
	}
	return out
}

func twoArms(mask uint8) (geom.Dir, geom.Dir) {
	var dirs []geom.Dir
	for _, d := range geom.PlanarDirs {
		if mask&armBit(d) != 0 {
			dirs = append(dirs, d)
		}
	}
	return dirs[0], dirs[1]
}

// segGap returns the empty distance between two non-overlapping
// segments on the same track, or -1 when they overlap or touch
// end-to-end ordering is violated.
func segGap(a, b Segment) int {
	if a.Lo > b.Lo {
		a, b = b, a
	}
	if b.Lo <= a.Hi {
		return -1 // overlapping or abutting runs merged upstream
	}
	return b.Lo - a.Hi - 1
}
