package cluster

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/grid"
	"repro/internal/netlist"
	"repro/internal/service"
	"repro/internal/service/api"
	"repro/internal/verify"
)

// Upload validation: the trust boundary between the coordinator and
// its workers. A worker is a remote process on an untrusted network —
// its upload may be truncated, bit-flipped in transit, or outright
// fabricated. Nothing a worker sends is stored until it passes the
// checks here; a rejected upload requeues the job and counts against
// the uploader's reputation.
//
// Two tiers:
//
//   - Structural invariants (always on, cheap): the payload decodes as
//     an api.Result; the echoed spec re-derives the job's content
//     address against the job's own netlist (so results cannot be
//     cross-wired between jobs or specs); the degraded flag matches
//     the payload (a lie would poison the cache with budget-dependent
//     bytes); when the spec asked for the solution geometry, it is
//     present, decodes, and an independent recount of its wirelength
//     and via count (verify.Metrics — no code shared with the router)
//     matches the claimed Row.
//
//   - Full re-verification (-verify-uploads): the from-scratch
//     internal/verify checker re-validates the uploaded geometry —
//     connectivity, SADP turn legality, via-layer manufacturability —
//     exactly as PR 3's independent checker would for a local run.
//     Costlier (it re-colors via layers), so it is a knob, but still
//     far cheaper than re-routing the job.

// Rejection reason classes, the label values of
// cluster_upload_rejects_total{reason}.
const (
	rejectDecode          = "decode"
	rejectSpecEcho        = "spec-echo"
	rejectContentAddress  = "content-address"
	rejectDegradedFlag    = "degraded-flag"
	rejectSolutionMissing = "solution-missing"
	rejectSolutionDecode  = "solution-decode"
	rejectMetricRecount   = "metric-recount"
	rejectVerify          = "verify"
)

// validateUpload checks one successful upload's Result bytes against
// the job they claim to decide. It returns ("", nil) when the payload
// is acceptable, or a reason class plus a detail error.
func validateUpload(a *service.Assignment, req *ResultRequest, verifyFull bool) (string, error) {
	var res api.Result
	if err := json.Unmarshal(req.Result, &res); err != nil {
		return rejectDecode, fmt.Errorf("result payload does not decode: %w", err)
	}

	// The echoed spec, hashed with this job's netlist, must re-derive
	// the job's content address. This subsumes a field-by-field spec
	// comparison and additionally catches a worker echoing the right
	// spec for the wrong input.
	key, err := service.ContentAddress(a.Netlist, res.Spec)
	if err != nil {
		return rejectSpecEcho, fmt.Errorf("echoed spec does not canonicalize: %w", err)
	}
	if key != a.Key {
		return rejectContentAddress, fmt.Errorf("echoed spec re-derives %s, job is %s", key[:12], a.Key[:12])
	}

	if req.Degraded != (len(res.Degraded) > 0) {
		return rejectDegradedFlag, fmt.Errorf("degraded flag %v but payload lists %d degradations", req.Degraded, len(res.Degraded))
	}

	if !res.Spec.IncludeSolution {
		// No geometry to recount; the structural tier ends here.
		return "", nil
	}
	if len(res.Solution) == 0 {
		return rejectSolutionMissing, fmt.Errorf("spec requested the solution payload but none was uploaded")
	}
	var routes []*grid.Route
	if err := json.Unmarshal(res.Solution, &routes); err != nil {
		return rejectSolutionDecode, fmt.Errorf("solution payload does not decode: %w", err)
	}
	wl, vias := verify.Metrics(routes)
	if wl != int(res.Row.WL) || vias != int(res.Row.Vias) {
		return rejectMetricRecount, fmt.Errorf("recount wl=%d vias=%d, claimed wl=%d vias=%d", wl, vias, res.Row.WL, res.Row.Vias)
	}

	if !verifyFull {
		return "", nil
	}
	nl, err := netlist.Read(strings.NewReader(a.Netlist))
	if err != nil {
		// The job was accepted with this netlist, so this is a
		// coordinator-side inconsistency, not the worker's fault; let
		// the upload through rather than requeue forever.
		return "", nil
	}
	rep := verify.Routing(nl, routes, verify.Options{
		SADP: res.Spec.Scheme,
		// Degraded TPL runs may legitimately leave FVPs; only hold
		// full-fidelity TPL solutions to the manufacturability bar.
		CheckTPL: res.Spec.ConsiderTPL && res.RemainingFVPs == 0 && len(res.Degraded) == 0,
	})
	if !rep.Ok() {
		return rejectVerify, fmt.Errorf("independent re-check failed: %v", rep.Err())
	}
	return "", nil
}
