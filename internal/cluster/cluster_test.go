package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/router"
	"repro/internal/service"
	"repro/internal/service/api"
)

const tinyNetlist = "netlist t 8 8 2\nnet a 1 1 5 1\nnet b 2 3 2 6\n"

func netlistVariant(i int) string {
	return fmt.Sprintf("netlist t%d 8 8 2\nnet a 1 1 5 1\nnet b 2 3 2 %d\n", i, 4+i%3)
}

// stubRun is a fast deterministic stand-in for the real flow.
func stubRun(ctx context.Context, nl *netlist.Netlist, spec bench.RunSpec, _ *router.Arena) (api.Result, error) {
	return api.Result{Spec: spec, Row: bench.Row{CKT: nl.Name, WL: 10 + len(nl.Nets), Routability: 1}}, nil
}

// newCluster builds an ExternalExec service wrapped in a coordinator
// and serves it over httptest. Callers own worker lifecycles.
func newCluster(t *testing.T, svcCfg service.Config, coordCfg CoordinatorConfig) (*service.Server, *Coordinator, *httptest.Server) {
	t.Helper()
	svcCfg.ExternalExec = true
	if svcCfg.Run == nil {
		svcCfg.Run = stubRun
	}
	svc, err := service.New(svcCfg)
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	coord := NewCoordinator(svc, coordCfg)
	ts := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		coord.Shutdown(ctx)
	})
	return svc, coord, ts
}

// startWorker runs a worker until the test ends or stop is called.
func startWorker(t *testing.T, cfg WorkerConfig) (stop func()) {
	t.Helper()
	if cfg.PullWait == 0 {
		cfg.PullWait = 200 * time.Millisecond
	}
	if cfg.PollInterval == 0 {
		cfg.PollInterval = 20 * time.Millisecond
	}
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = 25 * time.Millisecond
	}
	if cfg.Run == nil {
		cfg.Run = stubRun
	}
	w := NewWorker(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	var once sync.Once
	stop = func() {
		once.Do(func() {
			cancel()
			<-done
		})
	}
	t.Cleanup(stop)
	return stop
}

func submit(t *testing.T, ts *httptest.Server, netlistText string, spec bench.RunSpec) api.SubmitResponse {
	t.Helper()
	b, err := json.Marshal(api.SubmitRequest{Netlist: netlistText, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var sr api.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

func pollTerminal(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) api.JobResponse {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var jr api.JobResponse
		err = json.NewDecoder(resp.Body).Decode(&jr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch jr.Status {
		case api.StatusDone, api.StatusFailed, api.StatusQuarantined:
			return jr
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state in %s", id, timeout)
	return api.JobResponse{}
}

// One coordinator, one worker: jobs flow pull → run → upload → done,
// and the response names the executing worker.
func TestClusterEndToEnd(t *testing.T) {
	svc, _, ts := newCluster(t, service.Config{}, CoordinatorConfig{})
	startWorker(t, WorkerConfig{Coordinator: ts.URL, ID: "w1", Slots: 2})

	ids := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		sr := submit(t, ts, netlistVariant(i), bench.RunSpec{})
		ids = append(ids, sr.ID)
	}
	for _, id := range ids {
		jr := pollTerminal(t, ts, id, 10*time.Second)
		if jr.Status != api.StatusDone {
			t.Fatalf("job %s: status %s (%s)", id, jr.Status, jr.Error)
		}
		if jr.Worker != "w1" {
			t.Fatalf("job %s: worker %q, want w1", id, jr.Worker)
		}
	}
	if got := svc.Metrics().Completed.Load(); got != 3 {
		t.Fatalf("completed %d, want 3", got)
	}
	// Identical resubmission is a coordinator-side cache hit: no
	// dispatch, byte-identical result.
	first := pollTerminal(t, ts, ids[0], time.Second)
	sr := submit(t, ts, netlistVariant(0), bench.RunSpec{})
	if !sr.CacheHit {
		t.Fatalf("resubmission not served from cache: %+v", sr)
	}
	jr := pollTerminal(t, ts, sr.ID, time.Second)
	if !bytes.Equal(jr.Result, first.Result) {
		t.Fatalf("cache replay bytes differ:\n%s\n%s", jr.Result, first.Result)
	}
}

// Satellite 1: a duplicated /cluster/v1/result upload (fault.Transport
// rpc.dup) is accepted exactly once — the second delivery is a no-op
// answered "duplicate", the job completes once.
func TestIdempotentDuplicateResultUpload(t *testing.T) {
	svc, _, ts := newCluster(t, service.Config{}, CoordinatorConfig{})

	inj := fault.New(1)
	inj.Configure("rpc.dup:"+PathResult, fault.SiteConfig{Times: -1})
	client := &http.Client{Transport: &fault.Transport{Injector: inj}}
	startWorker(t, WorkerConfig{Coordinator: ts.URL, ID: "dup-w", Client: client})

	sr := submit(t, ts, tinyNetlist, bench.RunSpec{})
	jr := pollTerminal(t, ts, sr.ID, 10*time.Second)
	if jr.Status != api.StatusDone {
		t.Fatalf("status %s (%s)", jr.Status, jr.Error)
	}
	if got := inj.Trips("rpc.dup:" + PathResult); got < 1 {
		t.Fatalf("duplication site never tripped (trips=%d)", got)
	}
	if got := svc.Metrics().Completed.Load(); got != 1 {
		t.Fatalf("completed %d, want exactly 1", got)
	}
	// The duplicated (second) delivery may still be in flight when the
	// job turns done; wait for its no-op verdict to land.
	deadline := time.Now().Add(5 * time.Second)
	for svc.Metrics().ClusterDupResults.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := svc.Metrics().ClusterDupResults.Load(); got < 1 {
		t.Fatalf("ClusterDupResults %d, want >= 1", got)
	}
	if got := svc.Metrics().Completed.Load(); got != 1 {
		t.Fatalf("completed %d after duplicate, want exactly 1", got)
	}
}

// A worker that dies holding a lease loses it at expiry; the sweeper
// re-places the job on the surviving worker and the result reports
// that worker.
func TestLeaseExpiryRequeues(t *testing.T) {
	svc, _, ts := newCluster(t, service.Config{MaxAttempts: 3}, CoordinatorConfig{
		LeaseTTL:   150 * time.Millisecond,
		SweepEvery: 25 * time.Millisecond,
	})

	// doomed pulls the first job and dies silently before running it.
	inj := fault.New(1)
	inj.Configure("worker.kill", fault.SiteConfig{Times: 1})
	startWorker(t, WorkerConfig{Coordinator: ts.URL, ID: "doomed", Fault: inj})

	sr := submit(t, ts, tinyNetlist, bench.RunSpec{})

	// Give doomed time to pull and die, then bring up the survivor.
	deadline := time.Now().Add(5 * time.Second)
	for inj.Trips("worker.kill") == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if inj.Trips("worker.kill") == 0 {
		t.Fatal("kill site never tripped")
	}
	startWorker(t, WorkerConfig{Coordinator: ts.URL, ID: "survivor"})

	jr := pollTerminal(t, ts, sr.ID, 10*time.Second)
	if jr.Status != api.StatusDone {
		t.Fatalf("status %s (%s)", jr.Status, jr.Error)
	}
	if jr.Worker != "survivor" {
		t.Fatalf("worker %q, want survivor", jr.Worker)
	}
	if got := svc.Metrics().ClusterRequeues.Load(); got < 1 {
		t.Fatalf("ClusterRequeues %d, want >= 1", got)
	}
}

// Heartbeats keep a long job's lease alive well past the TTL: no
// spurious requeue, the original worker's result is accepted.
func TestHeartbeatRenewalKeepsLease(t *testing.T) {
	release := make(chan struct{})
	slowRun := func(ctx context.Context, nl *netlist.Netlist, spec bench.RunSpec, _ *router.Arena) (api.Result, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return api.Result{}, ctx.Err()
		}
		return stubRun(ctx, nl, spec, nil)
	}
	svc, _, ts := newCluster(t, service.Config{}, CoordinatorConfig{
		LeaseTTL:   120 * time.Millisecond,
		SweepEvery: 20 * time.Millisecond,
	})
	startWorker(t, WorkerConfig{Coordinator: ts.URL, ID: "steady", Run: slowRun, HeartbeatEvery: 25 * time.Millisecond})

	sr := submit(t, ts, tinyNetlist, bench.RunSpec{})
	// Hold the job across several lease TTLs.
	time.Sleep(500 * time.Millisecond)
	close(release)
	jr := pollTerminal(t, ts, sr.ID, 10*time.Second)
	if jr.Status != api.StatusDone {
		t.Fatalf("status %s (%s)", jr.Status, jr.Error)
	}
	if jr.Worker != "steady" {
		t.Fatalf("worker %q, want steady", jr.Worker)
	}
	if got := svc.Metrics().ClusterRequeues.Load(); got != 0 {
		t.Fatalf("ClusterRequeues %d, want 0", got)
	}
}

// A dropped heartbeat stream expires the lease even though the worker
// process is alive and mid-job; when its (now stale) success upload
// lands it is still accepted — deterministic results make it
// equivalent to the rerun's — and the rerun's copy becomes a no-op.
func TestDroppedHeartbeatsStaleSuccessAccepted(t *testing.T) {
	block := make(chan struct{})
	slowRun := func(ctx context.Context, nl *netlist.Netlist, spec bench.RunSpec, _ *router.Arena) (api.Result, error) {
		// Ignore cancellation: this worker believes it is healthy and
		// finishes its work regardless (a wedged-then-recovered box).
		<-block
		return stubRun(ctx, nl, spec, nil)
	}
	svc, _, ts := newCluster(t, service.Config{MaxAttempts: 3}, CoordinatorConfig{
		LeaseTTL:   100 * time.Millisecond,
		SweepEvery: 20 * time.Millisecond,
	})
	inj := fault.New(1)
	inj.Configure("cluster.heartbeat.drop", fault.SiteConfig{Times: -1})
	startWorker(t, WorkerConfig{Coordinator: ts.URL, ID: "mute", Run: slowRun, Fault: inj})

	sr := submit(t, ts, tinyNetlist, bench.RunSpec{})
	// Wait until the lease expires and the job is requeued.
	deadline := time.Now().Add(5 * time.Second)
	for svc.Metrics().ClusterRequeues.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if svc.Metrics().ClusterRequeues.Load() == 0 {
		t.Fatal("lease never expired despite dropped heartbeats")
	}
	// Now let the mute worker finish; its upload quotes the expired
	// lease but carries a success payload → accepted.
	close(block)
	jr := pollTerminal(t, ts, sr.ID, 10*time.Second)
	if jr.Status != api.StatusDone {
		t.Fatalf("status %s (%s)", jr.Status, jr.Error)
	}
	deadline = time.Now().Add(5 * time.Second)
	for svc.Metrics().ClusterStaleResults.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := svc.Metrics().ClusterStaleResults.Load(); got < 1 {
		t.Fatalf("ClusterStaleResults %d, want >= 1", got)
	}
	if got := svc.Metrics().Completed.Load(); got != 1 {
		t.Fatalf("completed %d, want exactly 1", got)
	}
}

// A worker panic before the attempt budget is spent re-places the job;
// on the last attempt it quarantines the content address — the
// cluster form of poison-job isolation.
func TestWorkerPanicRequeuesThenQuarantines(t *testing.T) {
	svc, _, ts := newCluster(t, service.Config{MaxAttempts: 2}, CoordinatorConfig{})
	inj := fault.New(1)
	inj.Configure("worker.panic", fault.SiteConfig{Times: -1, Panic: true})
	startWorker(t, WorkerConfig{Coordinator: ts.URL, ID: "panicky", Fault: inj})

	sr := submit(t, ts, tinyNetlist, bench.RunSpec{})
	jr := pollTerminal(t, ts, sr.ID, 10*time.Second)
	if jr.Status != api.StatusQuarantined {
		t.Fatalf("status %s, want quarantined (%s)", jr.Status, jr.Error)
	}
	if !strings.Contains(jr.Error, "2 panicking attempts") {
		t.Fatalf("quarantine message %q", jr.Error)
	}
	// Resubmission of the poison payload is answered from the
	// quarantine registry without dispatch.
	sr2 := submit(t, ts, tinyNetlist, bench.RunSpec{})
	if sr2.Status != api.StatusQuarantined {
		t.Fatalf("resubmission status %s, want quarantined", sr2.Status)
	}
	if got := svc.Metrics().Quarantined.Load(); got != 1 {
		t.Fatalf("quarantined %d, want 1", got)
	}
}

// Satellite 3 (unit form): the coordinator crashes after placing a job
// (journaled running record, no terminal record). The next boot
// replays it as queued with the attempt count preserved — never lost —
// and the exactly-once gate means it cannot double-complete.
func TestCoordinatorCrashMidDispatchReplaysJob(t *testing.T) {
	dir := t.TempDir()
	cfg := service.Config{ExternalExec: true, DataDir: dir, Run: stubRun, MaxAttempts: 3}
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	sr := submit(t, ts, tinyNetlist, bench.RunSpec{})

	// Simulate the coordinator's dispatch path up to the crash: the
	// job is dequeued and journaled as running on w1, then the process
	// dies before any result arrives. No clean shutdown.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	a, err := svc.Dequeue(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.StartAttempt(a, "w1"); got != 1 {
		t.Fatalf("attempt %d, want 1", got)
	}
	ts.Close() // abandon svc without Shutdown — journal stays as-crashed

	// Next life: in-process execution this time, so the replayed job
	// routes to completion.
	svc2, err := service.New(service.Config{DataDir: dir, Run: stubRun, MaxAttempts: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Shutdown(context.Background())
	ts2 := httptest.NewServer(svc2.Handler())
	defer ts2.Close()

	if got := svc2.Metrics().Replayed.Load(); got != 1 {
		t.Fatalf("replayed %d jobs, want 1", got)
	}
	jr := pollTerminal(t, ts2, sr.ID, 10*time.Second)
	if jr.Status != api.StatusDone {
		t.Fatalf("replayed job status %s (%s)", jr.Status, jr.Error)
	}
	if got := svc2.Metrics().Completed.Load(); got != 1 {
		t.Fatalf("completed %d, want exactly 1", got)
	}
}

// The external transitions are exactly-once at the service layer: the
// second completion of the same assignment reports false and bumps
// nothing.
func TestCompleteExternalExactlyOnce(t *testing.T) {
	svc, err := service.New(service.Config{ExternalExec: true, Run: stubRun})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	sr := submit(t, ts, tinyNetlist, bench.RunSpec{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	a, err := svc.Dequeue(ctx)
	if err != nil {
		t.Fatal(err)
	}
	svc.StartAttempt(a, "w1")
	raw := json.RawMessage(`{"row":{"ckt":"t"}}`)
	if !svc.CompleteExternal(a, raw, false, "w1") {
		t.Fatal("first completion lost")
	}
	if svc.CompleteExternal(a, raw, false, "w2") {
		t.Fatal("second completion won")
	}
	if svc.FailExternal(a, "late failure", false) {
		t.Fatal("late failure overrode completion")
	}
	if got := svc.Metrics().Completed.Load(); got != 1 {
		t.Fatalf("completed %d, want 1", got)
	}
	jr := pollTerminal(t, ts, sr.ID, time.Second)
	if jr.Status != api.StatusDone || jr.Worker != "w1" {
		t.Fatalf("job %+v, want done on w1", jr)
	}
	if !bytes.Equal(jr.Result, raw) {
		t.Fatalf("result %s, want %s", jr.Result, raw)
	}
}

// The composed /metrics exposition carries the cluster counters,
// gauges and the per-worker latency histogram.
func TestClusterMetricsExposition(t *testing.T) {
	_, _, ts := newCluster(t, service.Config{}, CoordinatorConfig{})
	startWorker(t, WorkerConfig{Coordinator: ts.URL, ID: "m1"})

	sr := submit(t, ts, tinyNetlist, bench.RunSpec{})
	pollTerminal(t, ts, sr.ID, 10*time.Second)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"sadprouted_cluster_workers 1",
		"sadprouted_cluster_leases_active 0",
		"sadprouted_cluster_requeues_total 0",
		`sadprouted_cluster_job_seconds_count{worker="m1"} 1`,
		"sadprouted_jobs_completed_total 1",
		// Robustness counters render (headers at least) even when idle.
		"# TYPE sadprouted_cluster_upload_rejects_total counter",
		"# TYPE sadprouted_cluster_retry_attempts_total counter",
		"sadprouted_cluster_worker_quarantines_total 0",
		"sadprouted_cluster_hedged_dispatch_total 0",
		"sadprouted_cluster_spool_replays_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, text)
		}
	}
}
