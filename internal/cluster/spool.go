package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// resultSpool is the worker's durable staging area for finished
// results: a directory of one JSON file per computed-but-unconfirmed
// upload. Put runs before the first upload attempt and is fsynced
// (file and directory), so once a result exists it survives kill -9;
// a restarted worker replays every spooled file before pulling new
// work and removes each one only after the coordinator answers a
// terminal verdict. Together with the coordinator's exactly-once
// terminate gate (replays of already-decided jobs are answered
// "duplicate"/"stale" no-ops) this makes silent result loss
// impossible: a computed result is either confirmed uploaded or still
// on disk.
//
// A nil *resultSpool (spooling disabled) is inert: every method
// no-ops, preserving PR 7's stateless-worker behavior.
type resultSpool struct {
	dir string
}

// openResultSpool creates the spool directory (if needed) and returns
// a handle. An empty dir disables spooling (nil spool).
func openResultSpool(dir string) (*resultSpool, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("spool: %w", err)
	}
	return &resultSpool{dir: dir}, nil
}

const spoolSuffix = ".result.json"

func (s *resultSpool) path(jobID string) string {
	return filepath.Join(s.dir, jobID+spoolSuffix)
}

// Put durably stages one upload: write to a temp file, fsync it,
// rename into place, fsync the directory. Job IDs are
// filesystem-safe by construction (j%06d-hex).
func (s *resultSpool) Put(req *ResultRequest) error {
	if s == nil {
		return nil
	}
	raw, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("spool %s: marshal: %w", req.JobID, err)
	}
	tmp, err := os.CreateTemp(s.dir, req.JobID+".tmp-*")
	if err != nil {
		return fmt.Errorf("spool %s: %w", req.JobID, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return fmt.Errorf("spool %s: write: %w", req.JobID, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("spool %s: fsync: %w", req.JobID, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("spool %s: close: %w", req.JobID, err)
	}
	if err := os.Rename(tmp.Name(), s.path(req.JobID)); err != nil {
		return fmt.Errorf("spool %s: rename: %w", req.JobID, err)
	}
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Remove deletes a confirmed upload's spool file.
func (s *resultSpool) Remove(jobID string) {
	if s == nil {
		return
	}
	os.Remove(s.path(jobID))
}

// Pending loads every spooled upload in sorted job-ID order (job IDs
// are zero-padded counters, so this is submission order). Unreadable
// or truncated files — a crash mid-Put before the rename cannot leave
// one, but a corrupted disk can — are skipped with their paths
// reported, never fatal: one bad file must not strand the rest.
func (s *resultSpool) Pending() (reqs []ResultRequest, skipped []string, err error) {
	if s == nil {
		return nil, nil, nil
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("spool: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), spoolSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		raw, rerr := os.ReadFile(filepath.Join(s.dir, name))
		if rerr != nil {
			skipped = append(skipped, name)
			continue
		}
		var req ResultRequest
		if jerr := json.Unmarshal(raw, &req); jerr != nil || req.JobID == "" {
			skipped = append(skipped, name)
			continue
		}
		reqs = append(reqs, req)
	}
	return reqs, skipped, nil
}
