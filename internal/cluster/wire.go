// Package cluster distributes sadprouted across machines: a
// coordinator owns the public /v1/jobs API, the durable journal, the
// content-addressed result cache and the single-flight table, and
// shards execution across worker processes over a pull-based HTTP/JSON
// RPC protocol. Workers hold no durable state: they pull an
// assignment, run the exact flow a standalone worker would
// (service.DefaultRun), and upload the marshaled result bytes; the
// coordinator's journal remains the one source of truth, so any
// worker can die at any point without losing work.
//
// Protocol (all POST, JSON bodies):
//
//	/cluster/v1/pull      worker asks for a job (long-poll)
//	/cluster/v1/result    worker uploads a finished job's result
//	/cluster/v1/heartbeat worker renews its leases
//
// Liveness is lease-based: every assignment carries a lease token and
// TTL; heartbeats renew it. A worker that stops heartbeating — killed,
// wedged, partitioned — loses its leases at expiry and the sweeper
// re-places the jobs on surviving workers, excluding the holder that
// lost them. Safety against the resulting double execution is not
// timing-based: every terminal transition funnels through the job's
// exactly-once terminate gate on the coordinator, so a presumed-dead
// worker's late upload either wins (its bytes are served, the rerun's
// duplicate is a no-op) or loses (it is answered "duplicate"/"stale"
// and discarded). Either way exactly one result is journaled, cached
// and served — and because the flow is deterministic, both executions
// produced the same bytes anyway. That is the invariant the
// differential e2e keeps honest: byte-identical results across
// standalone, 1-worker and N-worker topologies.
package cluster

import (
	"encoding/json"

	"repro/internal/bench"
)

// Wire paths. The coordinator mounts them next to the public API; the
// worker client posts to them.
const (
	PathPull      = "/cluster/v1/pull"
	PathResult    = "/cluster/v1/result"
	PathHeartbeat = "/cluster/v1/heartbeat"
)

// PullRequest asks for one assignment. WaitMS long-polls: the
// coordinator holds the request up to that long waiting for work
// before answering an empty PullResponse.
type PullRequest struct {
	WorkerID string `json:"worker_id"`
	WaitMS   int    `json:"wait_ms,omitempty"`
}

// JobAssignment is one leased job.
type JobAssignment struct {
	ID  string `json:"id"`
	Key string `json:"key"`
	// Netlist is the full submission text; the worker parses it itself.
	Netlist string        `json:"netlist"`
	Spec    bench.RunSpec `json:"spec"`
	// Lease is the opaque token tying this placement to the lease
	// table; every result upload and heartbeat quotes it.
	Lease string `json:"lease"`
	// Attempt is the execution count this placement represents.
	Attempt int `json:"attempt"`
	// LeaseTTLMS tells the worker how often it must heartbeat (the
	// coordinator expires the lease after this long without one).
	LeaseTTLMS int `json:"lease_ttl_ms"`
	// TimeoutMS is the per-job execution deadline (0 = none).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// PullResponse answers a pull. A nil Job means no work was available
// within the wait window; Draining tells the worker the coordinator is
// shutting down and it should exit its pull loop; Quarantined tells a
// worker that exceeded the upload-rejection budget it will never be
// granted work again and should exit with an error an operator sees.
type PullResponse struct {
	Job         *JobAssignment `json:"job,omitempty"`
	Draining    bool           `json:"draining,omitempty"`
	Quarantined bool           `json:"quarantined,omitempty"`
}

// ResultRequest uploads one finished job. Exactly one of Result,
// Error or Panic is meaningful: Result carries the marshaled
// api.Result bytes on success (stored and served verbatim — the
// coordinator never re-marshals, preserving byte identity), Error a
// structured failure, Panic a redacted panic message from the
// worker's recover barrier.
type ResultRequest struct {
	WorkerID string `json:"worker_id"`
	JobID    string `json:"job_id"`
	Lease    string `json:"lease"`
	// Key is the job's content address; the coordinator cross-checks it
	// against its own record before accepting the bytes.
	Key      string          `json:"key"`
	Result   json.RawMessage `json:"result,omitempty"`
	Degraded bool            `json:"degraded,omitempty"`
	Error    string          `json:"error,omitempty"`
	// Canceled marks an Error caused by the job deadline.
	Canceled bool   `json:"canceled,omitempty"`
	Panic    string `json:"panic,omitempty"`
	// SpoolReplay marks an upload replayed from the worker's durable
	// result spool after a restart (metrics only; the idempotency
	// contract already makes the replay itself safe).
	SpoolReplay bool `json:"spool_replay,omitempty"`
}

// Result upload verdicts.
const (
	// ResultAccepted: this upload won the job's terminal transition.
	ResultAccepted = "accepted"
	// ResultDuplicate: the job was already terminal (duplicate upload
	// or a rerun finishing after the original); the upload is a no-op,
	// not an error — idempotency contract.
	ResultDuplicate = "duplicate"
	// ResultStale: the upload quoted an expired lease and did not
	// decide the job (a successful stale upload is answered
	// "accepted" instead — deterministic results make it as good as
	// the rerun's).
	ResultStale = "stale"
	// ResultRejected: the coordinator's validator refused the payload
	// (corrupt, inconsistent, or failing the full verify re-check);
	// the job was requeued for another worker and this upload must not
	// be retried — the same bytes can never pass.
	ResultRejected = "rejected"
)

// ResultResponse answers a result upload. Reason carries the
// validator's rejection class when Status is "rejected".
type ResultResponse struct {
	Status string `json:"status"`
	Reason string `json:"reason,omitempty"`
}

// HeartbeatRequest renews a worker's liveness and its leases.
type HeartbeatRequest struct {
	WorkerID string `json:"worker_id"`
	// Jobs maps job ID → lease token for every job the worker is
	// currently executing.
	Jobs map[string]string `json:"jobs,omitempty"`
	// RetryAttempts reports the worker's cumulative RPC retry counts
	// by RPC name ("pull", "result", "heartbeat"); the coordinator
	// accumulates the deltas into its
	// cluster_retry_attempts_total{rpc} exposition.
	RetryAttempts map[string]int64 `json:"retry_attempts,omitempty"`
}

// HeartbeatResponse lists which leases were renewed and which are
// lost (expired and re-placed, or the job is already terminal). The
// worker cancels lost executions and suppresses their uploads.
type HeartbeatResponse struct {
	Renewed []string `json:"renewed,omitempty"`
	Lost    []string `json:"lost,omitempty"`
}
