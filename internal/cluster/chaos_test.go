package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/router"
	"repro/internal/service"
	"repro/internal/service/api"
)

// clusterRPC posts one raw cluster RPC — the harness for tests that
// act as a hand-rolled (possibly byzantine) worker.
func clusterRPC(t *testing.T, ts *httptest.Server, path string, in, out interface{}) int {
	t.Helper()
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 == 2 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

// pullJob long-polls as workerID until a job is granted (or the
// deadline passes).
func pullJob(t *testing.T, ts *httptest.Server, workerID string) *JobAssignment {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var pr PullResponse
		clusterRPC(t, ts, PathPull, PullRequest{WorkerID: workerID, WaitMS: 500}, &pr)
		if pr.Quarantined {
			t.Fatalf("worker %s quarantined while expecting a grant", workerID)
		}
		if pr.Job != nil {
			return pr.Job
		}
	}
	t.Fatalf("worker %s never granted a job", workerID)
	return nil
}

// TestValidateUpload pins the validator's structural tier: every
// reject class fires on the payload shape it names, and honest
// payloads pass.
func TestValidateUpload(t *testing.T) {
	spec := bench.RunSpec{}
	key, err := service.ContentAddress(tinyNetlist, spec)
	if err != nil {
		t.Fatal(err)
	}
	a := &service.Assignment{ID: "j1", Key: key, Netlist: tinyNetlist, Spec: spec}
	okPayload := func() json.RawMessage {
		raw, merr := json.Marshal(api.Result{Spec: spec, Row: bench.Row{CKT: "t", WL: 12}})
		if merr != nil {
			t.Fatal(merr)
		}
		return raw
	}

	specSol := bench.RunSpec{IncludeSolution: true}
	keySol, err := service.ContentAddress(tinyNetlist, specSol)
	if err != nil {
		t.Fatal(err)
	}
	aSol := &service.Assignment{ID: "j2", Key: keySol, Netlist: tinyNetlist, Spec: specSol}
	solPayload := func(sol json.RawMessage, wl int) json.RawMessage {
		raw, merr := json.Marshal(api.Result{Spec: specSol, Row: bench.Row{CKT: "t", WL: wl}, Solution: sol})
		if merr != nil {
			t.Fatal(merr)
		}
		return raw
	}

	wrongSpec := spec
	wrongSpec.ConsiderDVI = true
	wrongSpecPayload, err := json.Marshal(api.Result{Spec: wrongSpec, Row: bench.Row{CKT: "t"}})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		a      *service.Assignment
		req    ResultRequest
		reason string
	}{
		{"honest", a, ResultRequest{Result: okPayload()}, ""},
		{"garbage bytes", a, ResultRequest{Result: json.RawMessage(`[1,2,3]`)}, rejectDecode},
		{"wrong spec echoed", a, ResultRequest{Result: wrongSpecPayload}, rejectContentAddress},
		{"degraded flag lie", a, ResultRequest{Result: okPayload(), Degraded: true}, rejectDegradedFlag},
		{"solution withheld", aSol, ResultRequest{Result: solPayload(nil, 0)}, rejectSolutionMissing},
		{"solution not routes", aSol, ResultRequest{Result: solPayload(json.RawMessage(`{"bad":1}`), 0)}, rejectSolutionDecode},
		{"inflated metrics", aSol, ResultRequest{Result: solPayload(json.RawMessage(`[]`), 5)}, rejectMetricRecount},
		{"empty but honest", aSol, ResultRequest{Result: solPayload(json.RawMessage(`[]`), 0)}, ""},
	}
	for _, tc := range cases {
		reason, verr := validateUpload(tc.a, &tc.req, false)
		if reason != tc.reason {
			t.Errorf("%s: reason %q (%v), want %q", tc.name, reason, verr, tc.reason)
		}
	}
}

// A forged upload — valid lease, garbage payload — is answered
// "rejected", the job is re-placed away from the forger, and an honest
// worker completes it. The forger's computed-looking bytes never reach
// the store.
func TestRejectedUploadRequeuesJob(t *testing.T) {
	svc, _, ts := newCluster(t, service.Config{MaxAttempts: 5}, CoordinatorConfig{})
	sr := submit(t, ts, tinyNetlist, bench.RunSpec{})

	job := pullJob(t, ts, "evil")
	var rr ResultResponse
	code := clusterRPC(t, ts, PathResult, ResultRequest{
		WorkerID: "evil", JobID: job.ID, Lease: job.Lease, Key: job.Key,
		Result: json.RawMessage(`[1,2,3]`),
	}, &rr)
	if code != http.StatusOK || rr.Status != ResultRejected || rr.Reason != rejectDecode {
		t.Fatalf("forged upload: code %d status %q reason %q, want 200 rejected/decode", code, rr.Status, rr.Reason)
	}

	startWorker(t, WorkerConfig{Coordinator: ts.URL, ID: "good"})
	jr := pollTerminal(t, ts, sr.ID, 10*time.Second)
	if jr.Status != api.StatusDone || jr.Worker != "good" {
		t.Fatalf("job %+v, want done on good", jr)
	}
	m := svc.Metrics()
	if got := m.ClusterUploadRejects.Get(rejectDecode); got != 1 {
		t.Fatalf("upload rejects{decode} %d, want 1", got)
	}
	if got := m.Completed.Load(); got != 1 {
		t.Fatalf("completed %d, want exactly 1", got)
	}
	if got := m.ClusterWorkerQuarantines.Load(); got != 0 {
		t.Fatalf("quarantines %d, want 0 (one reject is under the budget)", got)
	}
}

// A worker that keeps uploading garbage exhausts its rejection budget
// and is quarantined: its next pull tells it so, it is never granted
// work again, and the poisoned jobs complete on an honest worker.
func TestWorkerQuarantineAfterRejectBudget(t *testing.T) {
	svc, _, ts := newCluster(t, service.Config{MaxAttempts: 10}, CoordinatorConfig{RejectBudget: 1})
	sr := submit(t, ts, tinyNetlist, bench.RunSpec{})

	// Two rejects: the first charges the budget, the second exceeds it.
	// Between them the job is re-granted to evil via the last-resort
	// rule (it is the only live worker).
	for i := 0; i < 2; i++ {
		job := pullJob(t, ts, "evil")
		var rr ResultResponse
		clusterRPC(t, ts, PathResult, ResultRequest{
			WorkerID: "evil", JobID: job.ID, Lease: job.Lease, Key: job.Key,
			Result: json.RawMessage(`[1,2,3]`),
		}, &rr)
		if rr.Status != ResultRejected {
			t.Fatalf("upload %d: status %q, want rejected", i+1, rr.Status)
		}
	}
	var pr PullResponse
	clusterRPC(t, ts, PathPull, PullRequest{WorkerID: "evil", WaitMS: 0}, &pr)
	if !pr.Quarantined || pr.Job != nil {
		t.Fatalf("post-quarantine pull %+v, want Quarantined and no job", pr)
	}
	if got := svc.Metrics().ClusterWorkerQuarantines.Load(); got != 1 {
		t.Fatalf("quarantines %d, want 1", got)
	}

	startWorker(t, WorkerConfig{Coordinator: ts.URL, ID: "good"})
	jr := pollTerminal(t, ts, sr.ID, 10*time.Second)
	if jr.Status != api.StatusDone || jr.Worker != "good" {
		t.Fatalf("job %+v, want done on good", jr)
	}
	if got := svc.Metrics().Completed.Load(); got != 1 {
		t.Fatalf("completed %d, want exactly 1", got)
	}
}

// The Worker client exits ErrQuarantined when a pull answers
// Quarantined, instead of spinning forever against a coordinator that
// will never grant it work.
func TestWorkerRunExitsOnQuarantine(t *testing.T) {
	_, coord, ts := newCluster(t, service.Config{}, CoordinatorConfig{})
	coord.mu.Lock()
	coord.quarantined["pariah"] = true
	coord.mu.Unlock()

	w := NewWorker(WorkerConfig{Coordinator: ts.URL, ID: "pariah", PullWait: 100 * time.Millisecond, PollInterval: 10 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := w.Run(ctx); err != ErrQuarantined {
		t.Fatalf("Run returned %v, want ErrQuarantined", err)
	}
}

// Satellite: a worker killed in the spool-to-upload window loses
// nothing — its next life replays the spooled result without
// recomputing, the coordinator accepts it, and the spool entry is
// removed once confirmed.
func TestSpoolReplayAfterWorkerRestart(t *testing.T) {
	svc, _, ts := newCluster(t, service.Config{}, CoordinatorConfig{})
	dir := t.TempDir()

	inj := fault.New(1)
	inj.Configure("spool.crash", fault.SiteConfig{Times: 1})
	stop1 := startWorker(t, WorkerConfig{Coordinator: ts.URL, ID: "sp", SpoolDir: dir, Fault: inj})

	sr := submit(t, ts, tinyNetlist, bench.RunSpec{})
	deadline := time.Now().Add(10 * time.Second)
	for inj.Trips("spool.crash") == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if inj.Trips("spool.crash") == 0 {
		t.Fatal("spool.crash site never tripped")
	}
	stop1()
	entries, _ := filepath.Glob(filepath.Join(dir, "*"+spoolSuffix))
	if len(entries) != 1 {
		t.Fatalf("spool holds %d results after the crash, want 1", len(entries))
	}

	// Same identity, same spool; the flow must NOT run again — the
	// result is already on disk.
	var reran atomic.Bool
	startWorker(t, WorkerConfig{Coordinator: ts.URL, ID: "sp", SpoolDir: dir,
		Run: func(ctx context.Context, nl *netlist.Netlist, spec bench.RunSpec, a *router.Arena) (api.Result, error) {
			reran.Store(true)
			return stubRun(ctx, nl, spec, a)
		}})

	jr := pollTerminal(t, ts, sr.ID, 10*time.Second)
	if jr.Status != api.StatusDone || jr.Worker != "sp" {
		t.Fatalf("job %+v, want done on sp", jr)
	}
	if reran.Load() {
		t.Fatal("flow re-ran despite a spooled result")
	}
	if got := svc.Metrics().ClusterSpoolReplays.Load(); got != 1 {
		t.Fatalf("spool replays %d, want 1", got)
	}
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if entries, _ = filepath.Glob(filepath.Join(dir, "*"+spoolSuffix)); len(entries) == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(entries) != 0 {
		t.Fatalf("spool not emptied after confirmed replay: %v", entries)
	}
	if got := svc.Metrics().Completed.Load(); got != 1 {
		t.Fatalf("completed %d, want exactly 1", got)
	}
}

// Tentpole: a straggler holding a job past HedgeMultiple × the fleet
// median gets a second, concurrent lease on another worker; the fast
// copy's upload decides the job and the straggler's execution is
// abandoned. No lease expiry is involved — the straggler stays
// healthy and heartbeating throughout.
func TestHedgedStragglerRedispatch(t *testing.T) {
	svc, _, ts := newCluster(t, service.Config{MaxAttempts: 4}, CoordinatorConfig{
		LeaseTTL:        2 * time.Second,
		SweepEvery:      20 * time.Millisecond,
		HedgeMultiple:   3,
		HedgeMinSamples: 3,
	})

	started := make(chan struct{})
	block := make(chan struct{})
	slugRun := func(ctx context.Context, nl *netlist.Netlist, spec bench.RunSpec, a *router.Arena) (api.Result, error) {
		if nl.Name == "t" { // the target job wedges; warmups fly
			close(started)
			select {
			case <-block:
			case <-ctx.Done():
			}
		}
		return stubRun(ctx, nl, spec, a)
	}
	startWorker(t, WorkerConfig{Coordinator: ts.URL, ID: "slug", Run: slugRun})

	// Warmups seed the latency histogram so the median is trusted.
	for i := 0; i < 3; i++ {
		wr := submit(t, ts, netlistVariant(i), bench.RunSpec{})
		if jr := pollTerminal(t, ts, wr.ID, 10*time.Second); jr.Status != api.StatusDone {
			t.Fatalf("warmup %d: %+v", i, jr)
		}
	}

	sr := submit(t, ts, tinyNetlist, bench.RunSpec{})
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("slug never picked up the target job")
	}
	defer close(block)

	// The fast worker joins only after the straggler holds the job, so
	// the hedge lease is the only way it can receive this job.
	startWorker(t, WorkerConfig{Coordinator: ts.URL, ID: "hare"})
	jr := pollTerminal(t, ts, sr.ID, 10*time.Second)
	if jr.Status != api.StatusDone || jr.Worker != "hare" {
		t.Fatalf("job %+v, want done on hare via hedge", jr)
	}
	m := svc.Metrics()
	if got := m.ClusterHedged.Load(); got != 1 {
		t.Fatalf("hedged dispatches %d, want 1", got)
	}
	if got := m.ClusterRequeues.Load(); got != 0 {
		t.Fatalf("requeues %d, want 0 (hedging must not ride on lease expiry)", got)
	}
	if got := m.Completed.Load(); got != 4 {
		t.Fatalf("completed %d, want 4", got)
	}
}

// Satellite: with no spool and a finite -upload-retries budget, a
// result whose uploads all fail is dropped (and counted); the job
// still completes via lease expiry and a rerun. The worker's retry
// counts surface in the coordinator's exposition via heartbeats.
func TestUploadRetryBudgetDropsAndRetryMetrics(t *testing.T) {
	svc, _, ts := newCluster(t, service.Config{MaxAttempts: 3}, CoordinatorConfig{
		LeaseTTL:   200 * time.Millisecond,
		SweepEvery: 40 * time.Millisecond,
	})
	inj := fault.New(3)
	inj.Configure("rpc.drop:"+PathResult, fault.SiteConfig{Times: 3})
	client := &http.Client{Transport: &fault.Transport{Injector: inj}}

	w := NewWorker(WorkerConfig{
		Coordinator: ts.URL, ID: "lossy", Client: client, Run: stubRun,
		PullWait: 200 * time.Millisecond, PollInterval: 20 * time.Millisecond,
		HeartbeatEvery: 25 * time.Millisecond, UploadRetries: 2,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); w.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })

	sr := submit(t, ts, tinyNetlist, bench.RunSpec{})
	jr := pollTerminal(t, ts, sr.ID, 15*time.Second)
	if jr.Status != api.StatusDone {
		t.Fatalf("job %+v, want done", jr)
	}
	// First execution: both upload attempts dropped, result abandoned.
	if got := w.ResultDrops(); got != 1 {
		t.Fatalf("result drops %d, want 1", got)
	}
	if got := svc.Metrics().ClusterRequeues.Load(); got < 1 {
		t.Fatalf("requeues %d, want >= 1 (the dropped result forces a rerun)", got)
	}
	// The cumulative retry counters ride the next heartbeats into the
	// exposition.
	want := `sadprouted_cluster_retry_attempts_total{rpc="result"} 2`
	deadline := time.Now().Add(5 * time.Second)
	var text string
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		text = string(body)
		if strings.Contains(text, want) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("exposition never showed %q:\n%s", want, text)
}

// Satellite: the coordinator crashes right after rejecting an upload
// and re-placing the job (journaled: a running record, no terminal
// record). The next boot replays the job as queued with its attempt
// count preserved — never lost, never double-completed.
func TestRejectedJobCrashReplay(t *testing.T) {
	dir := t.TempDir()
	svc, err := service.New(service.Config{ExternalExec: true, DataDir: dir, Run: stubRun, MaxAttempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(svc, CoordinatorConfig{})
	ts := httptest.NewServer(coord.Handler())

	sr := submit(t, ts, tinyNetlist, bench.RunSpec{})
	job := pullJob(t, ts, "evil")
	var rr ResultResponse
	clusterRPC(t, ts, PathResult, ResultRequest{
		WorkerID: "evil", JobID: job.ID, Lease: job.Lease, Key: job.Key,
		Result: json.RawMessage(`[1,2,3]`),
	}, &rr)
	if rr.Status != ResultRejected {
		t.Fatalf("status %q, want rejected", rr.Status)
	}
	ts.Close() // crash: no Shutdown, the journal stays as-written

	svc2, err := service.New(service.Config{DataDir: dir, Run: stubRun, MaxAttempts: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Shutdown(context.Background())
	ts2 := httptest.NewServer(svc2.Handler())
	defer ts2.Close()

	if got := svc2.Metrics().Replayed.Load(); got != 1 {
		t.Fatalf("replayed %d, want 1", got)
	}
	jr := pollTerminal(t, ts2, sr.ID, 10*time.Second)
	if jr.Status != api.StatusDone {
		t.Fatalf("replayed job %+v, want done", jr)
	}
	if got := svc2.Metrics().Completed.Load(); got != 1 {
		t.Fatalf("completed %d, want exactly 1", got)
	}
}

// The chaos differential: the byte-identity invariant must survive
// every network and worker fault class at once, with upload
// verification on. Each schedule runs the real routing flow over the
// differential suite and must match the standalone reference
// bit-for-bit.
func TestChaosSchedulesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("real routing flow; skipped in -short")
	}

	sa, err := service.New(service.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(sa.Handler())
	ref := runSuite(t, tsA, diffSuite(), diffSpec())
	tsA.Close()
	sa.Shutdown(context.Background())

	t.Run("latency+dup", func(t *testing.T) {
		_, _, ts := newCluster(t, service.Config{Run: service.DefaultRun, MaxAttempts: 4}, CoordinatorConfig{VerifyUploads: true})
		inj := fault.New(11)
		inj.Configure("rpc.latency:"+PathResult, fault.SiteConfig{Times: -1, Prob: 0.5})
		inj.Configure("rpc.dup:"+PathResult, fault.SiteConfig{Times: -1, Prob: 0.5})
		client := &http.Client{Transport: &fault.Transport{Injector: inj, Latency: 30 * time.Millisecond}}
		startWorker(t, WorkerConfig{Coordinator: ts.URL, ID: "lag1", Run: service.DefaultRun, Client: client, Slots: 2})
		startWorker(t, WorkerConfig{Coordinator: ts.URL, ID: "lag2", Run: service.DefaultRun, Client: client, Slots: 2})
		compareOutcomes(t, "latency+dup", ref, runSuite(t, ts, diffSuite(), diffSpec()))
	})

	t.Run("corrupt-upload", func(t *testing.T) {
		svc, _, ts := newCluster(t, service.Config{Run: service.DefaultRun, MaxAttempts: 6}, CoordinatorConfig{
			VerifyUploads: true,
			LeaseTTL:      500 * time.Millisecond,
			SweepEvery:    50 * time.Millisecond,
		})
		inj := fault.New(13)
		inj.Configure("rpc.corrupt:"+PathResult, fault.SiteConfig{Times: 2})
		client := &http.Client{Transport: &fault.Transport{Injector: inj}}
		startWorker(t, WorkerConfig{Coordinator: ts.URL, ID: "noisy", Run: service.DefaultRun, Client: client, Slots: 2})
		startWorker(t, WorkerConfig{Coordinator: ts.URL, ID: "clean", Run: service.DefaultRun, Slots: 2})
		compareOutcomes(t, "corrupt-upload", ref, runSuite(t, ts, diffSuite(), diffSpec()))
		if got := inj.Trips("rpc.corrupt:" + PathResult); got != 2 {
			t.Fatalf("corruption site trips %d, want 2", got)
		}
		if got := svc.Metrics().Completed.Load(); got != int64(len(ref)) {
			t.Fatalf("completed %d, want %d", got, len(ref))
		}
		// Corrupted bytes never became results: every stored solution
		// passed validation, and a mangled delivery shows up as either
		// a validator reject (flip landed inside the JSON) or a dropped
		// 4xx upload (flip broke the envelope) — both recover.
		if got := svc.Metrics().ClusterWorkerQuarantines.Load(); got != 0 {
			t.Fatalf("quarantines %d, want 0 (two flips are under the budget)", got)
		}
	})

	t.Run("slow+hedge", func(t *testing.T) {
		svc, _, ts := newCluster(t, service.Config{Run: service.DefaultRun, MaxAttempts: 6}, CoordinatorConfig{
			VerifyUploads:   true,
			LeaseTTL:        10 * time.Second, // hedging, not expiry, must handle the stragglers
			SweepEvery:      25 * time.Millisecond,
			HedgeMultiple:   4,
			HedgeMinSamples: 3,
		})
		inj := fault.New(17)
		inj.Configure("worker.slow", fault.SiteConfig{Times: -1, Prob: 0.5})
		startWorker(t, WorkerConfig{Coordinator: ts.URL, ID: "mud", Run: service.DefaultRun, Fault: inj, SlowDelay: 2 * time.Second, Slots: 2})
		startWorker(t, WorkerConfig{Coordinator: ts.URL, ID: "swift", Run: service.DefaultRun, Slots: 2})
		compareOutcomes(t, "slow+hedge", ref, runSuite(t, ts, diffSuite(), diffSpec()))
		if got := svc.Metrics().Completed.Load(); got != int64(len(ref)) {
			t.Fatalf("completed %d, want %d", got, len(ref))
		}
	})

	t.Run("spool-crash-restart", func(t *testing.T) {
		svc, _, ts := newCluster(t, service.Config{Run: service.DefaultRun, MaxAttempts: 4}, CoordinatorConfig{VerifyUploads: true})
		dir := t.TempDir()
		inj := fault.New(19)
		inj.Configure("spool.crash", fault.SiteConfig{Times: 1})
		stop1 := startWorker(t, WorkerConfig{Coordinator: ts.URL, ID: "phoenix", Run: service.DefaultRun, SpoolDir: dir, Fault: inj})
		ids := submitSuite(t, ts, diffSuite(), diffSpec())
		deadline := time.Now().Add(60 * time.Second)
		for inj.Trips("spool.crash") == 0 && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if inj.Trips("spool.crash") == 0 {
			t.Fatal("spool.crash site never tripped")
		}
		stop1()
		startWorker(t, WorkerConfig{Coordinator: ts.URL, ID: "phoenix", Run: service.DefaultRun, SpoolDir: dir, Slots: 2})
		compareOutcomes(t, "spool-crash-restart", ref, collectSuite(t, ts, ids))
		if got := svc.Metrics().ClusterSpoolReplays.Load(); got != 1 {
			t.Fatalf("spool replays %d, want 1", got)
		}
		if got := svc.Metrics().Completed.Load(); got != int64(len(ref)) {
			t.Fatalf("completed %d, want %d", got, len(ref))
		}
	})
}
