package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/router"
	"repro/internal/service"
	"repro/internal/service/api"
)

// WorkerConfig configures one worker process.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// ID names this worker in leases, placements and metrics labels.
	ID string
	// Slots is the number of concurrent jobs (default 1). Each slot
	// owns its router arena, mirroring the standalone worker pool.
	Slots int
	// PullWait is the long-poll window sent with each pull (default
	// 2s).
	PullWait time.Duration
	// PollInterval is the backoff after a failed pull — the worker
	// keeps retrying so it rides out coordinator restarts (default
	// 500ms).
	PollInterval time.Duration
	// HeartbeatEvery is the lease renewal period (default 1s; keep it
	// well under the coordinator's LeaseTTL).
	HeartbeatEvery time.Duration
	// NoArena disables router state recycling, as in the standalone
	// daemon.
	NoArena bool
	// Fault arms the worker-side chaos sites: "worker.kill" (die
	// silently after pulling a job, before running it) and
	// "cluster.heartbeat.drop" (skip heartbeats). Wrap the Client's
	// transport in fault.Transport for network-level faults.
	Fault *fault.Injector
	// Client performs the RPCs (default http.DefaultClient with a
	// 0 timeout; long-polls rely on request contexts, not client
	// timeouts).
	Client *http.Client
	// Run overrides the flow (tests). Nil means service.DefaultRun —
	// the same function standalone workers execute.
	Run service.RunFunc
	// Logf, when set, receives one line per job transition.
	Logf func(format string, args ...interface{})
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.Slots <= 0 {
		c.Slots = 1
	}
	if c.PullWait <= 0 {
		c.PullWait = 2 * time.Second
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 500 * time.Millisecond
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Run == nil {
		c.Run = service.DefaultRun
	}
	return c
}

// runningJob tracks one in-flight execution for the heartbeat loop.
// Instances are only touched inside the owning Worker's critical
// sections on its mu.
type runningJob struct {
	lease  string
	cancel context.CancelFunc
	// abandoned is set when a heartbeat learns the lease was lost; the
	// execution is canceled and its upload suppressed.
	abandoned bool
}

// Worker is the pull-based execution client. It holds no durable
// state: killing it at any instant loses nothing the coordinator's
// journal doesn't re-place.
type Worker struct {
	cfg WorkerConfig

	mu      sync.Mutex
	running map[string]*runningJob // guarded by mu; job id → execution
	killed  bool                   // guarded by mu; "worker.kill" tripped, all loops exit
}

// NewWorker builds a worker client.
func NewWorker(cfg WorkerConfig) *Worker {
	return &Worker{cfg: cfg.withDefaults(), running: make(map[string]*runningJob)}
}

func (w *Worker) logf(format string, args ...interface{}) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// Run pulls and executes jobs until ctx is canceled, the coordinator
// reports draining, or the "worker.kill" chaos site trips. In-flight
// jobs finish and upload on graceful exits (drain, ctx cancel);
// killed workers vanish without uploading, which is the lease-expiry
// path's test harness.
func (w *Worker) Run(ctx context.Context) error {
	hbCtx, stopHB := context.WithCancel(ctx)
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		w.heartbeatLoop(hbCtx)
	}()

	var slotWG sync.WaitGroup
	for i := 0; i < w.cfg.Slots; i++ {
		slotWG.Add(1)
		go func(slot int) {
			defer slotWG.Done()
			w.slotLoop(ctx, slot)
		}(i)
	}
	slotWG.Wait()
	stopHB()
	hbWG.Wait()
	return ctx.Err()
}

func (w *Worker) isKilled() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.killed
}

// slotLoop is one slot's pull-execute cycle.
func (w *Worker) slotLoop(ctx context.Context, slot int) {
	var arena *router.Arena
	if !w.cfg.NoArena {
		arena = router.NewArena()
	}
	for {
		if ctx.Err() != nil || w.isKilled() {
			return
		}
		resp, err := w.pull(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			// The coordinator may be restarting (crash-replay e2e);
			// keep polling.
			w.sleep(ctx, w.cfg.PollInterval)
			continue
		}
		if resp.Draining {
			w.logf("worker %s slot %d: coordinator draining, exiting", w.cfg.ID, slot)
			return
		}
		if resp.Job == nil {
			continue
		}
		if ferr := w.cfg.Fault.Inject("worker.kill"); ferr != nil {
			// Simulated process death: the job was leased to us and
			// will never run; the coordinator's sweeper re-places it.
			w.mu.Lock()
			w.killed = true
			w.mu.Unlock()
			w.logf("worker %s: killed by fault injection holding job %s", w.cfg.ID, resp.Job.ID)
			return
		}
		w.execute(ctx, resp.Job, arena)
	}
}

func (w *Worker) sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// execute runs one assignment under the panic barrier and uploads the
// outcome. The flow and the marshaling are exactly what a standalone
// worker does, so the uploaded bytes are the bytes a standalone
// daemon would have served.
func (w *Worker) execute(ctx context.Context, job *JobAssignment, arena *router.Arena) {
	jobCtx, cancel := context.WithCancel(ctx)
	if job.TimeoutMS > 0 {
		limit := time.Duration(job.TimeoutMS) * time.Millisecond
		if job.Spec.Degrade {
			// Same 2× backstop as the standalone worker's degrade mode.
			limit *= 2
		}
		var tcancel context.CancelFunc
		jobCtx, tcancel = context.WithTimeout(jobCtx, limit)
		defer tcancel()
	}
	defer cancel()
	w.mu.Lock()
	w.running[job.ID] = &runningJob{lease: job.Lease, cancel: cancel}
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.running, job.ID)
		w.mu.Unlock()
	}()

	req := ResultRequest{WorkerID: w.cfg.ID, JobID: job.ID, Lease: job.Lease, Key: job.Key}
	res, err, panicMsg := w.runGuarded(jobCtx, job, arena)
	switch {
	case panicMsg != "":
		req.Panic = panicMsg
	case err != nil:
		req.Error = err.Error()
		req.Canceled = jobCtx.Err() != nil
	default:
		raw, merr := json.Marshal(res)
		if merr != nil {
			req.Error = fmt.Sprintf("marshal result: %v", merr)
		} else {
			req.Result = raw
			req.Degraded = len(res.Degraded) > 0
		}
	}

	w.mu.Lock()
	abandoned := w.running[job.ID].abandoned
	w.mu.Unlock()
	if abandoned {
		// The lease is gone and the job re-placed; our outcome is
		// unwanted (an upload would be answered stale anyway).
		w.logf("worker %s: job %s abandoned, dropping result", w.cfg.ID, job.ID)
		return
	}
	if ctx.Err() != nil && req.Result == nil {
		// Shutting down: a cancellation-induced failure must not fail
		// the job on the coordinator — its lease will expire and the
		// job will be re-placed. Finished results still upload below.
		return
	}
	w.upload(req)
}

// runGuarded executes the flow under a recover barrier, mirroring the
// standalone runAttempt.
func (w *Worker) runGuarded(ctx context.Context, job *JobAssignment, arena *router.Arena) (res api.Result, err error, panicMsg string) {
	defer func() {
		if r := recover(); r != nil {
			panicMsg = fmt.Sprintf("panic: %v", r)
		}
	}()
	nl, perr := netlist.Read(strings.NewReader(job.Netlist))
	if perr != nil {
		return res, fmt.Errorf("netlist: %w", perr), ""
	}
	if ferr := w.cfg.Fault.Inject("worker.panic"); ferr != nil {
		panic(ferr)
	}
	res, err = w.cfg.Run(ctx, nl, job.Spec, arena)
	return
}

// upload posts the result with retries on a background context:
// finished work should survive pull-loop shutdown, and a flaky
// connection must not lose a computed result (the coordinator accepts
// the first copy and no-ops duplicates).
func (w *Worker) upload(req ResultRequest) {
	for attempt := 0; attempt < 5; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		var resp ResultResponse
		err := w.post(ctx, PathResult, req, &resp)
		cancel()
		if err == nil {
			w.logf("worker %s: job %s uploaded: %s", w.cfg.ID, req.JobID, resp.Status)
			return
		}
		w.logf("worker %s: job %s upload failed (try %d): %v", w.cfg.ID, req.JobID, attempt+1, err)
		time.Sleep(w.cfg.PollInterval)
	}
}

// heartbeatLoop renews leases every HeartbeatEvery until ctx ends.
// Lost leases cancel their executions and mark them abandoned.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	t := time.NewTicker(w.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if w.isKilled() {
			return
		}
		if w.cfg.Fault.Inject("cluster.heartbeat.drop") != nil {
			continue // dropped on the (simulated) network
		}
		req := HeartbeatRequest{WorkerID: w.cfg.ID, Jobs: make(map[string]string)}
		w.mu.Lock()
		for id, rj := range w.running {
			if !rj.abandoned {
				req.Jobs[id] = rj.lease
			}
		}
		w.mu.Unlock()
		hbCtx, cancel := context.WithTimeout(ctx, w.cfg.HeartbeatEvery)
		var resp HeartbeatResponse
		err := w.post(hbCtx, PathHeartbeat, req, &resp)
		cancel()
		if err != nil {
			continue // partition or restart; leases expire on their own
		}
		for _, id := range resp.Lost {
			w.mu.Lock()
			rj := w.running[id]
			if rj != nil && !rj.abandoned {
				rj.abandoned = true
				rj.cancel()
			}
			w.mu.Unlock()
			if rj != nil {
				w.logf("worker %s: lease on job %s lost, canceling", w.cfg.ID, id)
			}
		}
	}
}

// pull asks for one assignment, long-polling up to PullWait.
func (w *Worker) pull(ctx context.Context) (*PullResponse, error) {
	req := PullRequest{WorkerID: w.cfg.ID, WaitMS: int(w.cfg.PullWait / time.Millisecond)}
	// The request context outlives PullWait a little so the
	// coordinator, not the client, ends the long-poll.
	pctx, cancel := context.WithTimeout(ctx, w.cfg.PullWait+5*time.Second)
	defer cancel()
	var resp PullResponse
	if err := w.post(pctx, PathPull, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// post is the JSON RPC helper: marshal, POST, decode, surfacing
// non-2xx statuses as errors.
func (w *Worker) post(ctx context.Context, path string, in, out interface{}) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(b))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
