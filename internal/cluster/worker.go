package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster/retrier"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/router"
	"repro/internal/service"
	"repro/internal/service/api"
)

// ErrQuarantined is returned by Worker.Run when the coordinator
// answered a pull with Quarantined: this worker exceeded the
// upload-rejection budget and will never be granted work again. The
// process should exit loudly so an operator investigates.
var ErrQuarantined = errors.New("cluster: worker quarantined by coordinator (upload-rejection budget exceeded)")

// WorkerConfig configures one worker process.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// ID names this worker in leases, placements and metrics labels.
	ID string
	// Slots is the number of concurrent jobs (default 1). Each slot
	// owns its router arena, mirroring the standalone worker pool.
	Slots int
	// PullWait is the long-poll window sent with each pull (default
	// 2s).
	PullWait time.Duration
	// PollInterval seeds the retry backoff after failed RPCs: it is
	// the base of the capped exponential (with deterministic jitter)
	// the worker sleeps between attempts, so it rides out coordinator
	// restarts without hammering the moment they end (default 500ms).
	PollInterval time.Duration
	// HeartbeatEvery is the lease renewal period (default 1s; keep it
	// well under the coordinator's LeaseTTL).
	HeartbeatEvery time.Duration
	// SpoolDir, when set, durably stages every finished result on
	// local disk (fsynced before the first upload attempt) and replays
	// unconfirmed ones at the next Run — kill -9 between computing a
	// result and uploading it no longer loses the work.
	SpoolDir string
	// UploadRetries bounds result-upload attempts: 0 means the
	// default (5 without a spool; unbounded with one — the spool
	// already guarantees the result survives), negative means
	// unbounded.
	UploadRetries int
	// RetrySeed seeds the deterministic retry jitter (combined with
	// the worker ID, so a fleet started with one seed still
	// de-synchronizes).
	RetrySeed int64
	// SlowDelay is the extra latency the "worker.slow" chaos site
	// injects before running a job (default 1s).
	SlowDelay time.Duration
	// NoArena disables router state recycling, as in the standalone
	// daemon.
	NoArena bool
	// Fault arms the worker-side chaos sites: "worker.kill" (die
	// silently after pulling a job, before running it), "worker.slow"
	// (sleep SlowDelay before running a job), "spool.crash" (die
	// silently after spooling a result, before uploading it) and
	// "cluster.heartbeat.drop" (skip heartbeats). Wrap the Client's
	// transport in fault.Transport for network-level faults.
	Fault *fault.Injector
	// Client performs the RPCs (default http.DefaultClient with a
	// 0 timeout; long-polls rely on request contexts, not client
	// timeouts).
	Client *http.Client
	// Run overrides the flow (tests). Nil means service.DefaultRun —
	// the same function standalone workers execute.
	Run service.RunFunc
	// Logf, when set, receives one line per job transition.
	Logf func(format string, args ...interface{})
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.Slots <= 0 {
		c.Slots = 1
	}
	if c.PullWait <= 0 {
		c.PullWait = 2 * time.Second
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 500 * time.Millisecond
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.SlowDelay <= 0 {
		c.SlowDelay = time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Run == nil {
		c.Run = service.DefaultRun
	}
	return c
}

// runningJob tracks one in-flight execution for the heartbeat loop.
// Instances are only touched inside the owning Worker's critical
// sections on its mu.
type runningJob struct {
	lease  string
	cancel context.CancelFunc
	// abandoned is set when a heartbeat learns the lease was lost; the
	// execution is canceled and its upload suppressed.
	abandoned bool
}

// Worker is the pull-based execution client. Its only durable state
// is the optional result spool: killing it at any instant loses
// nothing — unleased work stays with the coordinator's journal, and a
// spooled result replays at the next start.
type Worker struct {
	cfg WorkerConfig

	// spool is the durable result stage (nil when SpoolDir is empty).
	// It is opened in Run before any loop starts and never reassigned.
	spool *resultSpool

	// Per-RPC retry policies; their jitter streams are deterministic
	// in (worker ID, RetrySeed).
	pullR   *retrier.Retrier
	uploadR *retrier.Retrier
	hbR     *retrier.Retrier

	// Cumulative RPC retry counts, reported in heartbeats so the
	// coordinator can expose cluster_retry_attempts_total{rpc}.
	retryPull      atomic.Int64
	retryResult    atomic.Int64
	retryHeartbeat atomic.Int64
	// drops counts computed results abandoned after the upload budget
	// was spent with no spool to preserve them — the event the spool
	// exists to make impossible.
	drops atomic.Int64

	mu          sync.Mutex
	running     map[string]*runningJob // guarded by mu; job id → execution
	killed      bool                   // guarded by mu; "worker.kill"/"spool.crash" tripped, all loops exit
	quarantined bool                   // guarded by mu; the coordinator barred this worker
}

// NewWorker builds a worker client.
func NewWorker(cfg WorkerConfig) *Worker {
	cfg = cfg.withDefaults()
	w := &Worker{cfg: cfg, running: make(map[string]*runningJob)}
	base := retrier.Policy{Base: cfg.PollInterval, Cap: 10 * cfg.PollInterval}
	w.pullR = retrier.New("pull/"+cfg.ID, cfg.RetrySeed, base)
	w.uploadR = retrier.New("result/"+cfg.ID, cfg.RetrySeed, base)
	hb := base
	hb.Cap = cfg.HeartbeatEvery
	w.hbR = retrier.New("heartbeat/"+cfg.ID, cfg.RetrySeed, hb)
	return w
}

// ResultDrops reports how many computed results were abandoned after
// the upload retry budget was spent without a spool to keep them.
func (w *Worker) ResultDrops() int64 { return w.drops.Load() }

func (w *Worker) logf(format string, args ...interface{}) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// Run pulls and executes jobs until ctx is canceled, the coordinator
// reports draining or quarantines the worker, or a kill-type chaos
// site trips. In-flight jobs finish and upload on graceful exits
// (drain, ctx cancel); killed workers vanish without uploading, which
// is the lease-expiry path's test harness. When a spool is
// configured, unconfirmed results from a previous life are replayed
// before any new work is pulled.
func (w *Worker) Run(ctx context.Context) error {
	sp, err := openResultSpool(w.cfg.SpoolDir)
	if err != nil {
		return err
	}
	w.spool = sp
	w.replaySpool(ctx)

	hbCtx, stopHB := context.WithCancel(ctx)
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		w.heartbeatLoop(hbCtx)
	}()

	var slotWG sync.WaitGroup
	for i := 0; i < w.cfg.Slots; i++ {
		slotWG.Add(1)
		go func(slot int) {
			defer slotWG.Done()
			w.slotLoop(ctx, slot)
		}(i)
	}
	slotWG.Wait()
	stopHB()
	hbWG.Wait()
	w.mu.Lock()
	quarantined := w.quarantined
	w.mu.Unlock()
	if quarantined {
		return ErrQuarantined
	}
	return ctx.Err()
}

// replaySpool re-uploads every result a previous life computed but
// never saw confirmed. The coordinator's exactly-once gate makes
// replays of already-decided jobs harmless duplicates; undecided ones
// are completed here without recomputing anything.
func (w *Worker) replaySpool(ctx context.Context) {
	reqs, skipped, err := w.spool.Pending()
	if err != nil {
		w.logf("worker %s: spool scan failed: %v", w.cfg.ID, err)
		return
	}
	for _, name := range skipped {
		w.logf("worker %s: spool entry %s unreadable, skipped", w.cfg.ID, name)
	}
	for i := range reqs {
		if ctx.Err() != nil {
			return
		}
		req := reqs[i]
		req.SpoolReplay = true
		w.logf("worker %s: replaying spooled result for job %s", w.cfg.ID, req.JobID)
		w.upload(ctx, &req)
	}
}

func (w *Worker) isKilled() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.killed
}

// slotLoop is one slot's pull-execute cycle.
func (w *Worker) slotLoop(ctx context.Context, slot int) {
	var arena *router.Arena
	if !w.cfg.NoArena {
		arena = router.NewArena()
	}
	pullFails := 0
	for {
		if ctx.Err() != nil || w.isKilled() {
			return
		}
		resp, err := w.pull(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			// The coordinator may be restarting (crash-replay e2e);
			// back off — capped exponential with deterministic jitter —
			// and keep polling.
			pullFails++
			w.retryPull.Add(1)
			w.pullR.Sleep(ctx, pullFails+1)
			continue
		}
		pullFails = 0
		if resp.Quarantined {
			w.mu.Lock()
			w.quarantined = true
			w.mu.Unlock()
			w.logf("worker %s slot %d: quarantined by coordinator, exiting", w.cfg.ID, slot)
			return
		}
		if resp.Draining {
			w.logf("worker %s slot %d: coordinator draining, exiting", w.cfg.ID, slot)
			return
		}
		if resp.Job == nil {
			continue
		}
		if ferr := w.cfg.Fault.Inject("worker.kill"); ferr != nil {
			// Simulated process death: the job was leased to us and
			// will never run; the coordinator's sweeper re-places it.
			w.mu.Lock()
			w.killed = true
			w.mu.Unlock()
			w.logf("worker %s: killed by fault injection holding job %s", w.cfg.ID, resp.Job.ID)
			return
		}
		w.execute(ctx, resp.Job, arena)
	}
}

func (w *Worker) sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// execute runs one assignment under the panic barrier and uploads the
// outcome. The flow and the marshaling are exactly what a standalone
// worker does, so the uploaded bytes are the bytes a standalone
// daemon would have served.
func (w *Worker) execute(ctx context.Context, job *JobAssignment, arena *router.Arena) {
	jobCtx, cancel := context.WithCancel(ctx)
	if job.TimeoutMS > 0 {
		limit := time.Duration(job.TimeoutMS) * time.Millisecond
		if job.Spec.Degrade {
			// Same 2× backstop as the standalone worker's degrade mode.
			limit *= 2
		}
		var tcancel context.CancelFunc
		jobCtx, tcancel = context.WithTimeout(jobCtx, limit)
		defer tcancel()
	}
	defer cancel()
	w.mu.Lock()
	w.running[job.ID] = &runningJob{lease: job.Lease, cancel: cancel}
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.running, job.ID)
		w.mu.Unlock()
	}()

	if ferr := w.cfg.Fault.Inject("worker.slow"); ferr != nil {
		// Simulated straggler: still healthy and heartbeating, just
		// slow — the hedging sweeper's target.
		w.logf("worker %s: job %s slowed %v by fault injection", w.cfg.ID, job.ID, w.cfg.SlowDelay)
		w.sleep(jobCtx, w.cfg.SlowDelay)
	}

	req := ResultRequest{WorkerID: w.cfg.ID, JobID: job.ID, Lease: job.Lease, Key: job.Key}
	res, err, panicMsg := w.runGuarded(jobCtx, job, arena)
	switch {
	case panicMsg != "":
		req.Panic = panicMsg
	case err != nil:
		req.Error = err.Error()
		req.Canceled = jobCtx.Err() != nil
	default:
		raw, merr := json.Marshal(res)
		if merr != nil {
			req.Error = fmt.Sprintf("marshal result: %v", merr)
		} else {
			req.Result = raw
			req.Degraded = len(res.Degraded) > 0
		}
	}

	w.mu.Lock()
	abandoned := w.running[job.ID].abandoned
	w.mu.Unlock()
	if abandoned {
		// The lease is gone and the job re-placed; our outcome is
		// unwanted (an upload would be answered stale anyway).
		w.logf("worker %s: job %s abandoned, dropping result", w.cfg.ID, job.ID)
		return
	}
	if ctx.Err() != nil && req.Result == nil {
		// Shutting down: a cancellation-induced failure must not fail
		// the job on the coordinator — its lease will expire and the
		// job will be re-placed. Finished results still upload below.
		return
	}
	if req.Result != nil {
		// Durably stage the computed result before the first upload
		// attempt: from here on, kill -9 loses nothing.
		if serr := w.spool.Put(&req); serr != nil {
			w.logf("worker %s: %v (continuing without spool entry)", w.cfg.ID, serr)
		}
		if ferr := w.cfg.Fault.Inject("spool.crash"); ferr != nil {
			// Simulated death in the spool-to-upload window — the case
			// the spool exists for. The next Run replays this result.
			w.mu.Lock()
			w.killed = true
			w.mu.Unlock()
			w.logf("worker %s: killed by fault injection after spooling job %s", w.cfg.ID, job.ID)
			return
		}
	}
	w.upload(ctx, &req)
}

// runGuarded executes the flow under a recover barrier, mirroring the
// standalone runAttempt.
func (w *Worker) runGuarded(ctx context.Context, job *JobAssignment, arena *router.Arena) (res api.Result, err error, panicMsg string) {
	defer func() {
		if r := recover(); r != nil {
			panicMsg = fmt.Sprintf("panic: %v", r)
		}
	}()
	nl, perr := netlist.Read(strings.NewReader(job.Netlist))
	if perr != nil {
		return res, fmt.Errorf("netlist: %w", perr), ""
	}
	if ferr := w.cfg.Fault.Inject("worker.panic"); ferr != nil {
		panic(ferr)
	}
	res, err = w.cfg.Run(ctx, nl, job.Spec, arena)
	return
}

// upload posts the result with retries. Each POST runs on a detached
// 10s context so finished work still goes out during pull-loop
// shutdown, but the backoff sleeps are cancellable on the worker's ctx
// — a shutting-down worker never blocks on a dead coordinator. Any 2xx
// verdict (accepted, duplicate, stale, rejected) is terminal: the
// coordinator has decided, so the spool entry is dropped and the
// upload never retried. 4xx answers are permanent errors; everything
// else retries under the upload budget, and when the budget is spent
// the result either stays in the spool for the next life's replay or
// is counted as dropped.
func (w *Worker) upload(ctx context.Context, req *ResultRequest) {
	max := w.cfg.UploadRetries
	if max == 0 {
		if w.spool != nil {
			max = -1 // the spool guarantees the result survives; keep trying
		} else {
			max = 5
		}
	}
	for attempt := 1; ; attempt++ {
		postCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		var resp ResultResponse
		err := w.post(postCtx, PathResult, req, &resp)
		cancel()
		if err == nil {
			if resp.Status == ResultRejected {
				w.logf("worker %s: job %s upload REJECTED (%s); job requeued elsewhere", w.cfg.ID, req.JobID, resp.Reason)
			} else {
				w.logf("worker %s: job %s uploaded: %s", w.cfg.ID, req.JobID, resp.Status)
			}
			w.spool.Remove(req.JobID)
			return
		}
		var herr *httpError
		if errors.As(err, &herr) && herr.code/100 == 4 {
			// The coordinator understood the request and refused it
			// (unknown job, malformed envelope); the same bytes can
			// never succeed.
			w.logf("worker %s: job %s upload permanently refused: %v", w.cfg.ID, req.JobID, err)
			w.spool.Remove(req.JobID)
			if req.Result != nil {
				w.drops.Add(1)
			}
			return
		}
		w.logf("worker %s: job %s upload failed (try %d): %v", w.cfg.ID, req.JobID, attempt, err)
		if max > 0 && attempt >= max {
			if req.Result == nil {
				return // failure report lost; the lease expiry re-places the job anyway
			}
			if w.spool != nil {
				w.logf("worker %s: job %s upload budget spent; result stays spooled for replay", w.cfg.ID, req.JobID)
			} else {
				w.drops.Add(1)
				w.logf("worker %s: job %s RESULT DROPPED after %d attempts (no spool)", w.cfg.ID, req.JobID, attempt)
			}
			return
		}
		w.retryResult.Add(1)
		if w.uploadR.Sleep(ctx, attempt+1) != nil {
			// Worker shutting down mid-backoff; the spool (if any)
			// preserves the result for the next life.
			if req.Result != nil && w.spool == nil {
				w.drops.Add(1)
			}
			return
		}
	}
}

// heartbeatLoop renews leases every HeartbeatEvery until ctx ends.
// Lost leases cancel their executions and mark them abandoned.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	t := time.NewTicker(w.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if w.isKilled() {
			return
		}
		if w.cfg.Fault.Inject("cluster.heartbeat.drop") != nil {
			continue // dropped on the (simulated) network
		}
		req := HeartbeatRequest{WorkerID: w.cfg.ID, Jobs: make(map[string]string)}
		w.mu.Lock()
		for id, rj := range w.running {
			if !rj.abandoned {
				req.Jobs[id] = rj.lease
			}
		}
		w.mu.Unlock()
		req.RetryAttempts = w.retrySnapshot()
		var resp HeartbeatResponse
		var err error
		// One in-tick retry: heartbeats are cheap and lease-critical,
		// but stale ones are worthless, so the budget is tight.
		for attempt := 1; attempt <= 2; attempt++ {
			hbCtx, cancel := context.WithTimeout(ctx, w.cfg.HeartbeatEvery)
			err = w.post(hbCtx, PathHeartbeat, req, &resp)
			cancel()
			if err == nil || attempt == 2 {
				break
			}
			w.retryHeartbeat.Add(1)
			if w.hbR.Sleep(ctx, attempt+1) != nil {
				return
			}
		}
		if err != nil {
			continue // partition or restart; leases expire on their own
		}
		for _, id := range resp.Lost {
			w.mu.Lock()
			rj := w.running[id]
			found := rj != nil
			if found && !rj.abandoned {
				rj.abandoned = true
				rj.cancel()
			}
			w.mu.Unlock()
			if found {
				w.logf("worker %s: lease on job %s lost, canceling", w.cfg.ID, id)
			}
		}
	}
}

// pull asks for one assignment, long-polling up to PullWait.
func (w *Worker) pull(ctx context.Context) (*PullResponse, error) {
	req := PullRequest{WorkerID: w.cfg.ID, WaitMS: int(w.cfg.PullWait / time.Millisecond)}
	// The request context outlives PullWait a little so the
	// coordinator, not the client, ends the long-poll.
	pctx, cancel := context.WithTimeout(ctx, w.cfg.PullWait+5*time.Second)
	defer cancel()
	var resp PullResponse
	if err := w.post(pctx, PathPull, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// retrySnapshot reports the cumulative per-RPC retry counters for a
// heartbeat (nil when all are zero, keeping the wire quiet).
func (w *Worker) retrySnapshot() map[string]int64 {
	m := make(map[string]int64, 3)
	if n := w.retryPull.Load(); n > 0 {
		m["pull"] = n
	}
	if n := w.retryResult.Load(); n > 0 {
		m["result"] = n
	}
	if n := w.retryHeartbeat.Load(); n > 0 {
		m["heartbeat"] = n
	}
	if len(m) == 0 {
		return nil
	}
	return m
}

// httpError is a non-2xx RPC answer; upload classifies 4xx as
// permanent (the coordinator refused, retrying the same bytes cannot
// help) and everything else as transient.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

// post is the JSON RPC helper: marshal, POST, decode, surfacing
// non-2xx statuses as *httpError.
func (w *Worker) post(ctx context.Context, path string, in, out interface{}) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &httpError{code: resp.StatusCode, msg: fmt.Sprintf("%s: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(b))}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
