package retrier

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBackoffCappedExponential(t *testing.T) {
	r := New("t", 1, Policy{Base: 100 * time.Millisecond, Cap: time.Second, Multiplier: 2, Jitter: -1})
	want := []time.Duration{
		100 * time.Millisecond, // attempt 2
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second, // capped
		time.Second,
	}
	for i, w := range want {
		if got := r.Backoff(i + 2); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", i+2, got, w)
		}
	}
	if got := r.Backoff(1); got != 0 {
		t.Fatalf("Backoff(1) = %v, want 0 (first attempt has no backoff)", got)
	}
}

func TestBackoffJitterDeterministicAndBounded(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: time.Second, Jitter: 0.5}
	a := New("same", 42, p)
	b := New("same", 42, p)
	for n := 2; n < 10; n++ {
		da, db := a.Backoff(n), b.Backoff(n)
		if da != db {
			t.Fatalf("attempt %d: same name+seed diverged: %v vs %v", n, da, db)
		}
		full := New("ref", 0, Policy{Base: p.Base, Cap: p.Cap, Jitter: -1}).Backoff(n)
		if da > full || da < full/2 {
			t.Fatalf("attempt %d: jittered %v outside [%v, %v]", n, da, full/2, full)
		}
	}
	if c := New("other", 42, p); c.Backoff(2) == a.Backoff(99) {
		// Different names should (overwhelmingly) draw different
		// streams; equality here would indicate the name is ignored.
		t.Log("warning: jitter collision across names (possible but unlikely)")
	}
}

func TestDoStopsOnSuccessAndCountsRetries(t *testing.T) {
	var retries []int
	r := New("t", 1, Policy{Base: time.Microsecond, OnRetry: func(n int) { retries = append(retries, n) }})
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want nil/3", err, calls)
	}
	if len(retries) != 2 || retries[0] != 2 || retries[1] != 3 {
		t.Fatalf("OnRetry saw %v, want [2 3]", retries)
	}
}

func TestDoPermanentStopsImmediately(t *testing.T) {
	r := New("t", 1, Policy{Base: time.Microsecond})
	calls := 0
	sentinel := errors.New("bad request")
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		return Permanent(sentinel)
	})
	if !errors.Is(err, sentinel) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want sentinel after exactly 1 call", err, calls)
	}
	if IsPermanent(err) {
		t.Fatal("Do must unwrap the Permanent marker")
	}
}

func TestDoRespectsMaxAttempts(t *testing.T) {
	r := New("t", 1, Policy{Base: time.Microsecond, MaxAttempts: 3})
	calls := 0
	sentinel := errors.New("down")
	err := r.Do(context.Background(), func(context.Context) error { calls++; return sentinel })
	if !errors.Is(err, sentinel) || calls != 3 {
		t.Fatalf("err=%v calls=%d, want sentinel after exactly 3 calls", err, calls)
	}
}

func TestDoCancelableMidBackoff(t *testing.T) {
	// The satellite fix: a retry loop sleeping a long backoff must
	// return promptly when the context is canceled.
	r := New("t", 1, Policy{Base: time.Hour, Jitter: -1})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- r.Do(ctx, func(context.Context) error { return errors.New("always") })
	}()
	time.Sleep(10 * time.Millisecond) // let it enter the backoff sleep
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err=%v, want context.Canceled in chain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancel — sleep is not context-aware")
	}
}

func TestSleepZeroOnFirstAttempt(t *testing.T) {
	r := New("t", 1, Policy{Base: time.Hour})
	if err := r.Sleep(context.Background(), 1); err != nil {
		t.Fatalf("Sleep(1) = %v, want nil without blocking", err)
	}
}
