// Package retrier is the cluster's one retry policy: capped
// exponential backoff with deterministic seeded jitter. Every RPC loop
// in internal/cluster (pull, result upload, heartbeat) sleeps through
// it instead of a flat PollInterval, so transient coordinator restarts
// back off politely while a fleet of workers doesn't thundering-herd
// the moment it returns.
//
// Determinism: the jitter stream is a seeded *rand.Rand derived from
// the retrier name and an explicit seed (the same construction the
// fault injector uses), never the global math/rand or the wall clock —
// sadplint/detclock-clean by construction. Two retriers with the same
// name, seed and call sequence produce the same backoff schedule.
//
// Cancellation: every sleep selects on the caller's context, so a
// worker shutting down mid-backoff exits immediately instead of
// blocking in time.Sleep — the bug this package exists to fix.
package retrier

import (
	"context"
	"errors"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"
)

// Policy shapes one retry loop. Zero values take the defaults noted.
type Policy struct {
	// Base is the first backoff (default 100ms).
	Base time.Duration
	// Cap bounds any single backoff (default 10s).
	Cap time.Duration
	// Multiplier is the exponential growth factor (default 2).
	Multiplier float64
	// Jitter in [0,1] is the fraction of each backoff that is
	// randomized away (default 0.5): the sleep is uniform in
	// [d·(1−Jitter), d]. Zero jitter is legal but invites synchronized
	// retry storms; negative disables the default and means none.
	Jitter float64
	// MaxAttempts bounds Do's total attempts (first try included).
	// <= 0 means unbounded: Do retries until the operation succeeds,
	// returns a Permanent error, or the context ends.
	MaxAttempts int
	// OnRetry, when set, observes each retry (called before the sleep
	// preceding attempt n, with n >= 2) — the hook behind the
	// cluster_retry_attempts_total metric.
	OnRetry func(attempt int)
}

func (p Policy) withDefaults() Policy {
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 10 * time.Second
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// Retrier executes operations under a Policy. It is safe for
// concurrent use; the jitter stream is serialized under an internal
// lock, so concurrent users interleave draws from one deterministic
// sequence.
type Retrier struct {
	p Policy

	mu  sync.Mutex
	rng *rand.Rand // guarded by mu
}

// New builds a retrier whose jitter derives from (name, seed) — same
// name and seed, same schedule.
func New(name string, seed int64, p Policy) *Retrier {
	h := fnv.New64a()
	h.Write([]byte(name))
	return &Retrier{
		p:   p.withDefaults(),
		rng: rand.New(rand.NewSource(seed ^ int64(h.Sum64()))),
	}
}

// Backoff returns the sleep before retry attempt n (n >= 2; the first
// attempt has no backoff). It consumes one jitter draw per call.
func (r *Retrier) Backoff(attempt int) time.Duration {
	if attempt < 2 {
		return 0
	}
	d := float64(r.p.Base)
	for i := 2; i < attempt; i++ {
		d *= r.p.Multiplier
		if d >= float64(r.p.Cap) {
			break
		}
	}
	if d > float64(r.p.Cap) {
		d = float64(r.p.Cap)
	}
	if r.p.Jitter > 0 {
		r.mu.Lock()
		f := r.rng.Float64()
		r.mu.Unlock()
		d -= d * r.p.Jitter * f
	}
	return time.Duration(d)
}

// Sleep blocks for Backoff(attempt) or until ctx ends, returning
// ctx.Err() in the latter case.
func (r *Retrier) Sleep(ctx context.Context, attempt int) error {
	d := r.Backoff(attempt)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// permanentError marks an error Do must not retry.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps an error so Do stops retrying and returns it (its
// unwrapped form) immediately — the classification for 4xx RPC
// answers, where retrying the same bytes cannot succeed.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err carries the Permanent marker.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Do runs op until it succeeds, returns a Permanent error, the attempt
// budget is spent, or ctx ends. The first attempt runs immediately;
// each retry sleeps Backoff first. The returned error is the last
// operation error (unwrapped of the Permanent marker), or ctx.Err()
// joined with it when the context ended mid-backoff.
func (r *Retrier) Do(ctx context.Context, op func(ctx context.Context) error) error {
	var last error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if last != nil {
				return errors.Join(err, last)
			}
			return err
		}
		err := op(ctx)
		if err == nil {
			return nil
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return pe.err
		}
		last = err
		if r.p.MaxAttempts > 0 && attempt >= r.p.MaxAttempts {
			return last
		}
		if r.p.OnRetry != nil {
			r.p.OnRetry(attempt + 1)
		}
		if serr := r.Sleep(ctx, attempt+1); serr != nil {
			return errors.Join(serr, last)
		}
	}
}
