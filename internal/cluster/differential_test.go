package cluster

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/coloring"
	"repro/internal/fault"
	"repro/internal/service"
	"repro/internal/service/api"
)

// The cluster's one invariant: for any job set, results are
// byte-identical across standalone, 1-worker and N-worker topologies —
// including when a worker dies mid-suite and its jobs are re-placed
// via lease expiry. The Solution payload (every net's routed
// polylines) is a pure function of input and spec, so it is compared
// byte-for-byte; the timing fields of Row are excluded by comparing
// the semantic fields individually.

// outcome is the timing-free projection of one job's result.
type outcome struct {
	WL, Vias, DV, UV int
	InsertedVias     int
	VerifyOk         bool
	Solution         string
}

func diffSpec() bench.RunSpec {
	return bench.RunSpec{
		Scheme:          coloring.SIM,
		ConsiderDVI:     true,
		ConsiderTPL:     true,
		Method:          bench.HeurDVI,
		Verify:          true,
		IncludeSolution: true,
	}
}

// diffSuite is the differential job set: the tiny suite plus its
// multi-pin counterpart, so every topology also routes k-pin nets
// through the Steiner decomposition (and the RunSpec for them round
// trips over the cluster wire format).
func diffSuite() []bench.Circuit {
	return append(bench.TinySuite(), bench.TinyMultiPinSuite()...)
}

// submitSuite submits every circuit under the spec and returns job ids
// by circuit name.
func submitSuite(t *testing.T, ts *httptest.Server, circuits []bench.Circuit, spec bench.RunSpec) map[string]string {
	t.Helper()
	ids := make(map[string]string, len(circuits))
	for _, c := range circuits {
		nl := bench.Generate(c)
		var buf bytes.Buffer
		if err := nl.Write(&buf); err != nil {
			t.Fatal(err)
		}
		sr := submit(t, ts, buf.String(), spec)
		ids[c.Name] = sr.ID
	}
	return ids
}

// collectSuite polls every job to completion and projects the
// outcomes.
func collectSuite(t *testing.T, ts *httptest.Server, ids map[string]string) map[string]outcome {
	t.Helper()
	out := make(map[string]outcome, len(ids))
	for name, id := range ids {
		jr := pollTerminal(t, ts, id, 120*time.Second)
		if jr.Status != api.StatusDone {
			t.Fatalf("%s: status %s (%s)", name, jr.Status, jr.Error)
		}
		res, err := jr.DecodeResult()
		if err != nil {
			t.Fatal(err)
		}
		if res.Verify == nil || !res.Verify.Ok {
			t.Fatalf("%s: verification failed: %+v", name, res.Verify)
		}
		if len(res.Solution) == 0 {
			t.Fatalf("%s: no solution payload", name)
		}
		out[name] = outcome{
			WL:           int(res.Row.WL),
			Vias:         int(res.Row.Vias),
			DV:           int(res.Row.DV),
			UV:           int(res.Row.UV),
			InsertedVias: res.InsertedVias,
			VerifyOk:     res.Verify.Ok,
			Solution:     string(res.Solution),
		}
	}
	return out
}

// runSuite is submit + collect in one step.
func runSuite(t *testing.T, ts *httptest.Server, circuits []bench.Circuit, spec bench.RunSpec) map[string]outcome {
	t.Helper()
	return collectSuite(t, ts, submitSuite(t, ts, circuits, spec))
}

func compareOutcomes(t *testing.T, label string, want, got map[string]outcome) {
	t.Helper()
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("%s: circuit %s missing", label, name)
		}
		if g.WL != w.WL || g.Vias != w.Vias || g.DV != w.DV || g.UV != w.UV || g.InsertedVias != w.InsertedVias || g.VerifyOk != w.VerifyOk {
			t.Fatalf("%s: %s metrics diverge: got %+v want %+v", label, name, g, w)
		}
		if g.Solution != w.Solution {
			t.Fatalf("%s: %s solution bytes diverge (len %d vs %d)", label, name, len(g.Solution), len(w.Solution))
		}
	}
}

func TestDifferentialTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("real routing flow; skipped in -short")
	}

	// Topology A: standalone — in-process worker pool, the reference.
	sa, err := service.New(service.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(sa.Handler())
	ref := runSuite(t, tsA, diffSuite(), diffSpec())
	tsA.Close()
	sa.Shutdown(context.Background())

	// Topology B: coordinator + 1 worker.
	_, _, tsB := newCluster(t, service.Config{Run: service.DefaultRun}, CoordinatorConfig{})
	startWorker(t, WorkerConfig{Coordinator: tsB.URL, ID: "b1", Slots: 2, Run: service.DefaultRun})
	compareOutcomes(t, "coordinator+1", ref, runSuite(t, tsB, diffSuite(), diffSpec()))

	// Topology C: coordinator + 3 workers, one of which dies holding a
	// job; the lease expires and the job is re-placed on a survivor.
	// The doomed worker runs alone first so it deterministically pulls
	// (and dies with) a job before the survivors join.
	svcC, _, tsC := newCluster(t, service.Config{Run: service.DefaultRun, MaxAttempts: 3}, CoordinatorConfig{
		LeaseTTL:   250 * time.Millisecond,
		SweepEvery: 50 * time.Millisecond,
	})
	inj := fault.New(7)
	inj.Configure("worker.kill", fault.SiteConfig{Times: 1})
	startWorker(t, WorkerConfig{Coordinator: tsC.URL, ID: "c-doomed", Run: service.DefaultRun, Fault: inj})
	idsC := submitSuite(t, tsC, diffSuite(), diffSpec())
	deadline := time.Now().Add(10 * time.Second)
	for inj.Trips("worker.kill") == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	startWorker(t, WorkerConfig{Coordinator: tsC.URL, ID: "c2", Run: service.DefaultRun, Slots: 2})
	startWorker(t, WorkerConfig{Coordinator: tsC.URL, ID: "c3", Run: service.DefaultRun, Slots: 2})
	compareOutcomes(t, "coordinator+3/kill", ref, collectSuite(t, tsC, idsC))
	if inj.Trips("worker.kill") != 1 {
		t.Fatalf("kill site trips %d, want 1", inj.Trips("worker.kill"))
	}
	// No job lost, none double-completed.
	if got := svcC.Metrics().Completed.Load(); got != int64(len(ref)) {
		t.Fatalf("completed %d, want %d", got, len(ref))
	}
	if got := svcC.Metrics().ClusterRequeues.Load(); got < 1 {
		t.Fatalf("ClusterRequeues %d, want >= 1 (the killed worker held a job)", got)
	}
}

// TestDifferentialWorkersMultiPin pins the other determinism axis for
// k-pin nets: the routed Solution bytes of the multi-pin suite must be
// identical for any intra-router Workers value. Workers changes spec
// bytes (so nothing is answered from the result cache) but must never
// change output.
func TestDifferentialWorkersMultiPin(t *testing.T) {
	if testing.Short() {
		t.Skip("real routing flow; skipped in -short")
	}
	sv, err := service.New(service.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Shutdown(context.Background())
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	spec1 := diffSpec()
	spec1.Workers = 1
	ref := runSuite(t, ts, bench.TinyMultiPinSuite(), spec1)

	spec4 := diffSpec()
	spec4.Workers = 4
	compareOutcomes(t, "workers=4 vs workers=1", ref, runSuite(t, ts, bench.TinyMultiPinSuite(), spec4))
}
