package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/service"
	"repro/internal/service/api"
)

// CoordinatorConfig tunes the lease machinery. Zero values take the
// defaults noted.
type CoordinatorConfig struct {
	// LeaseTTL is how long a placed job stays owned by its worker
	// without a heartbeat before the sweeper re-places it (default
	// 15s). It is also the heartbeat interval hint sent to workers.
	LeaseTTL time.Duration
	// SweepEvery is the lease/worker expiry scan period (default
	// LeaseTTL/4).
	SweepEvery time.Duration
	// WorkerTTL is how long a worker counts as live after its last
	// contact, for the exclusion logic (default 2×LeaseTTL).
	WorkerTTL time.Duration
	// MaxPullWait caps a pull's long-poll window (default 30s).
	MaxPullWait time.Duration
	// VerifyUploads runs the full internal/verify re-check on every
	// uploaded solution, on top of the always-on structural
	// invariants (spec echo, content address, metric recount).
	VerifyUploads bool
	// RejectBudget is how many rejected uploads a worker may
	// accumulate before it is quarantined: never granted work again,
	// its in-flight jobs re-placed (default 3; negative means never
	// quarantine).
	RejectBudget int
	// HedgeMultiple enables hedged straggler re-dispatch: a job
	// running longer than HedgeMultiple × the fleet's median
	// job-seconds is speculatively leased to a second worker; the
	// first valid upload wins and the loser is a no-op. Zero disables
	// hedging.
	HedgeMultiple float64
	// HedgeMinSamples is how many completed jobs the latency
	// histogram needs before the median is trusted for hedging
	// (default 8).
	HedgeMinSamples int
	// Logf, when set, receives one line per cluster transition.
	Logf func(format string, args ...interface{})
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = c.LeaseTTL / 4
	}
	if c.WorkerTTL <= 0 {
		c.WorkerTTL = 2 * c.LeaseTTL
	}
	if c.MaxPullWait <= 0 {
		c.MaxPullWait = 30 * time.Second
	}
	if c.RejectBudget == 0 {
		c.RejectBudget = 3
	}
	if c.HedgeMinSamples <= 0 {
		c.HedgeMinSamples = 8
	}
	return c
}

// trackedJob is the coordinator's view of one live (non-terminal)
// job. Every field, including the map, is touched only inside the
// owning Coordinator's critical sections on its mu.
type trackedJob struct {
	a      *service.Assignment
	leased bool
	worker string // current lease holder while leased
	lease  string
	// expires is the lease deadline; heartbeats push it forward.
	expires time.Time
	// started stamps the current placement, for the latency histogram.
	started time.Time
	// excluded names workers whose lease on this job expired (or whose
	// upload of it was rejected); the grant loop avoids them while
	// another live worker exists.
	excluded map[string]bool

	// Hedged straggler re-dispatch: a second, concurrent lease on the
	// same job. hedgeWanted marks the job as running past the hedging
	// threshold; the grant loop turns that into a hedge lease on a
	// different worker. The primary and hedge race; the first valid
	// upload decides the job (determinism makes the loser's bytes
	// identical anyway) and the exactly-once terminate gate no-ops the
	// second.
	hedgeWanted  bool
	hedgeWorker  string
	hedgeLease   string
	hedgeExpires time.Time
	hedgeStarted time.Time
}

// workerInfo is the liveness record of one worker.
type workerInfo struct {
	lastSeen time.Time
}

// Coordinator owns cluster-scope state: the lease table, the pending
// queue of unplaced assignments, and worker liveness. All durable
// state stays in the wrapped service.Server (journal, cache,
// single-flight, quarantine) — the Coordinator can crash and restart
// with nothing but the journal and reconstruct equivalent work.
//
// Lock ordering: mu is the outermost lock; the service's own locks
// and the journal's are acquired inside it (never the reverse — the
// service never calls back into the Coordinator).
type Coordinator struct {
	svc  *service.Server
	cfg  CoordinatorConfig
	hist *service.LatencyHist

	mu       sync.Mutex
	jobs     map[string]*trackedJob // guarded by mu; job id → live job
	pending  []string               // guarded by mu; unplaced job ids, FIFO
	workers  map[string]*workerInfo // guarded by mu; worker id → liveness
	leaseSeq int64                  // guarded by mu; lease token counter
	closed   bool                   // guarded by mu; Shutdown reached the drain-workers phase
	notify   chan struct{}          // guarded by mu; closed+replaced when pending grows

	// Reputation outlives workerInfo expiry on purpose: a byzantine
	// worker must not launder its rejection count by going silent
	// until the liveness record ages out.
	rejects     map[string]int              // guarded by mu; worker id → rejected uploads
	quarantined map[string]bool             // guarded by mu; workers barred from grants
	lastRetries map[string]map[string]int64 // guarded by mu; worker id → rpc → last cumulative retry count

	cancel context.CancelFunc // stops pump and sweeper
	wg     sync.WaitGroup
}

// NewCoordinator wraps an ExternalExec service.Server and starts the
// dequeue pump and the lease sweeper.
func NewCoordinator(svc *service.Server, cfg CoordinatorConfig) *Coordinator {
	c := &Coordinator{
		svc:         svc,
		cfg:         cfg.withDefaults(),
		hist:        service.NewLatencyHist(),
		jobs:        make(map[string]*trackedJob),
		workers:     make(map[string]*workerInfo),
		rejects:     make(map[string]int),
		quarantined: make(map[string]bool),
		lastRetries: make(map[string]map[string]int64),
		notify:      make(chan struct{}),
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	c.wg.Add(2)
	go c.pump(ctx)
	go c.sweeper(ctx)
	return c
}

func (c *Coordinator) logf(format string, args ...interface{}) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// pump moves accepted jobs from the service queue into the cluster
// pending list. It exits on drain (CloseIntake + queue empty) or stop.
func (c *Coordinator) pump(ctx context.Context) {
	defer c.wg.Done()
	for {
		a, err := c.svc.Dequeue(ctx)
		if err != nil {
			return // ErrDraining or ctx canceled
		}
		c.mu.Lock()
		c.jobs[a.ID] = &trackedJob{a: a, excluded: make(map[string]bool)}
		c.pending = append(c.pending, a.ID)
		c.broadcastLocked()
		c.mu.Unlock()
	}
}

// broadcastLocked wakes every pull long-poller. Callers hold mu.
func (c *Coordinator) broadcastLocked() {
	close(c.notify)
	c.notify = make(chan struct{})
}

// sweeper periodically expires silent workers and re-places jobs
// whose leases ran out.
func (c *Coordinator) sweeper(ctx context.Context) {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		c.sweep(time.Now())
	}
}

// sweep is one expiry pass. Iteration is in sorted id order so two
// coordinators fed the same event history make the same decisions.
func (c *Coordinator) sweep(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, w := range c.workers {
		if now.Sub(w.lastSeen) > c.cfg.WorkerTTL {
			delete(c.workers, id)
			c.logf("cluster: worker %s expired (last seen %s ago)", id, now.Sub(w.lastSeen).Round(time.Millisecond))
		}
	}
	// The hedging threshold: a leased job running past HedgeMultiple ×
	// the fleet's median job-seconds qualifies for a second lease. The
	// median comes from the same per-worker latency histogram /metrics
	// exposes, once enough samples back it.
	var hedgeAfter time.Duration
	if c.cfg.HedgeMultiple > 0 {
		if med, n := c.hist.Quantile(0.5); n >= int64(c.cfg.HedgeMinSamples) && med > 0 {
			hedgeAfter = time.Duration(c.cfg.HedgeMultiple * med * float64(time.Second))
		}
	}
	ids := make([]string, 0, len(c.jobs))
	for id := range c.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		t := c.jobs[id]
		if t.hedgeLease != "" && !now.Before(t.hedgeExpires) {
			// The hedge worker went silent; the primary is unaffected.
			c.logf("cluster: job %s hedge lease expired on %s", id, t.hedgeWorker)
			t.excluded[t.hedgeWorker] = true
			c.clearHedgeLocked(t)
		}
		if t.leased && !now.Before(t.expires) {
			holder := t.worker
			t.excluded[holder] = true
			t.leased = false
			t.worker = ""
			t.lease = ""
			c.svc.Metrics().ClusterRequeues.Add(1)
			c.logf("cluster: job %s lease expired on %s (attempt %d/%d)", id, holder, t.a.Attempts(), c.svc.MaxAttempts())
			if t.hedgeLease != "" {
				// The straggler died but its hedge is live: promote it
				// instead of requeueing — the job never stops running.
				c.promoteHedgeLocked(id, t)
				continue
			}
			c.requeueLocked(id, t)
			continue
		}
		if hedgeAfter > 0 && t.leased && !t.hedgeWanted && t.hedgeLease == "" &&
			now.Sub(t.started) > hedgeAfter && t.a.Attempts() < c.svc.MaxAttempts() {
			t.hedgeWanted = true
			c.logf("cluster: job %s on %s running %s (> %s), hedging", id, t.worker,
				now.Sub(t.started).Round(time.Millisecond), hedgeAfter.Round(time.Millisecond))
			c.broadcastLocked()
		}
	}
}

// requeueLocked returns a job whose lease fields are already cleared
// to the pending list, or fails it when the attempt budget is spent —
// the same verdict as crash-interrupted jobs on journal replay.
// Callers hold mu.
func (c *Coordinator) requeueLocked(id string, t *trackedJob) {
	if t.a.Attempts() >= c.svc.MaxAttempts() {
		c.svc.FailInterrupted(t.a)
		delete(c.jobs, id)
		return
	}
	c.svc.Requeue(t.a)
	c.pending = append(c.pending, id)
	c.broadcastLocked()
}

// clearHedgeLocked drops a job's hedge lease (keeping hedgeWanted, so
// a still-slow primary can be re-hedged). Callers hold mu.
func (c *Coordinator) clearHedgeLocked(t *trackedJob) {
	t.hedgeWorker = ""
	t.hedgeLease = ""
	t.hedgeExpires = time.Time{}
	t.hedgeStarted = time.Time{}
}

// promoteHedgeLocked makes a job's live hedge lease its primary after
// the original holder died or was rejected. Callers hold mu.
func (c *Coordinator) promoteHedgeLocked(id string, t *trackedJob) {
	t.leased = true
	t.worker = t.hedgeWorker
	t.lease = t.hedgeLease
	t.expires = t.hedgeExpires
	t.started = t.hedgeStarted
	c.clearHedgeLocked(t)
	c.logf("cluster: job %s hedge on %s promoted to primary", id, t.worker)
}

// quarantineWorkerLocked bars a worker that exhausted its rejection
// budget from all future grants and re-places everything it holds
// (primary and hedge leases alike). Callers hold mu.
func (c *Coordinator) quarantineWorkerLocked(workerID string) {
	c.quarantined[workerID] = true
	c.svc.Metrics().ClusterWorkerQuarantines.Add(1)
	c.logf("cluster: worker %s quarantined after %d rejected uploads", workerID, c.rejects[workerID])
	ids := make([]string, 0, len(c.jobs))
	for id := range c.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		t := c.jobs[id]
		if t.hedgeLease != "" && t.hedgeWorker == workerID {
			t.excluded[workerID] = true
			c.clearHedgeLocked(t)
		}
		if t.leased && t.worker == workerID {
			t.excluded[workerID] = true
			t.leased = false
			t.worker = ""
			t.lease = ""
			c.svc.Metrics().ClusterRequeues.Add(1)
			if t.hedgeLease != "" {
				c.promoteHedgeLocked(id, t)
			} else {
				c.requeueLocked(id, t)
			}
		}
	}
}

// touchWorkerLocked refreshes a worker's liveness. Callers hold mu.
func (c *Coordinator) touchWorkerLocked(id string, now time.Time) {
	w, ok := c.workers[id]
	if !ok {
		w = &workerInfo{}
		c.workers[id] = w
		c.logf("cluster: worker %s joined", id)
	}
	w.lastSeen = now
}

// otherLiveWorkerLocked reports whether a live worker besides the
// given one exists. Callers hold mu.
func (c *Coordinator) otherLiveWorkerLocked(except string, now time.Time) bool {
	for id, w := range c.workers {
		if id != except && now.Sub(w.lastSeen) <= c.cfg.WorkerTTL {
			return true
		}
	}
	return false
}

// tryGrantLocked places the oldest grantable pending job on the
// worker and returns the assignment, or nil when nothing fits. A job
// whose excluded set names this worker is skipped only while another
// live worker could take it — with no alternative, granting to a
// previously-failed holder beats starving the job (the attempt bound
// still terminates it). Callers hold mu.
func (c *Coordinator) tryGrantLocked(workerID string, now time.Time) *JobAssignment {
	for i, id := range c.pending {
		t, ok := c.jobs[id]
		if !ok || t.leased {
			continue // stale pending entry; compacted below
		}
		if t.excluded[workerID] && c.otherLiveWorkerLocked(workerID, now) {
			continue
		}
		c.pending = append(c.pending[:i], c.pending[i+1:]...)
		c.leaseSeq++
		t.leased = true
		t.worker = workerID
		t.lease = fmt.Sprintf("L%08d", c.leaseSeq)
		t.expires = now.Add(c.cfg.LeaseTTL)
		t.started = now
		attempt := c.svc.StartAttempt(t.a, workerID)
		return c.assignmentLocked(t, t.lease, attempt)
	}
	return c.tryGrantHedgeLocked(workerID, now)
}

// tryGrantHedgeLocked places a hedge lease: a second concurrent
// execution of a job the sweeper flagged as a straggler, on a worker
// other than the current holder. Consumes an attempt like any other
// placement, so the journal and the attempt bound stay truthful.
// Callers hold mu.
func (c *Coordinator) tryGrantHedgeLocked(workerID string, now time.Time) *JobAssignment {
	if c.cfg.HedgeMultiple <= 0 {
		return nil
	}
	ids := make([]string, 0, len(c.jobs))
	for id := range c.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		t := c.jobs[id]
		if !t.hedgeWanted || !t.leased || t.hedgeLease != "" ||
			t.worker == workerID || t.excluded[workerID] ||
			t.a.Attempts() >= c.svc.MaxAttempts() {
			continue
		}
		c.leaseSeq++
		t.hedgeWorker = workerID
		t.hedgeLease = fmt.Sprintf("L%08d", c.leaseSeq)
		t.hedgeExpires = now.Add(c.cfg.LeaseTTL)
		t.hedgeStarted = now
		attempt := c.svc.StartAttempt(t.a, workerID)
		c.svc.Metrics().ClusterHedged.Add(1)
		c.logf("cluster: job %s hedged on %s (primary %s)", id, workerID, t.worker)
		return c.assignmentLocked(t, t.hedgeLease, attempt)
	}
	return nil
}

// assignmentLocked renders the wire assignment for one granted lease.
// Callers hold mu.
func (c *Coordinator) assignmentLocked(t *trackedJob, lease string, attempt int) *JobAssignment {
	return &JobAssignment{
		ID:         t.a.ID,
		Key:        t.a.Key,
		Netlist:    t.a.Netlist,
		Spec:       t.a.Spec,
		Lease:      lease,
		Attempt:    attempt,
		LeaseTTLMS: int(c.cfg.LeaseTTL / time.Millisecond),
		TimeoutMS:  int(c.svc.JobTimeout() / time.Millisecond),
	}
}

// handlePull answers a worker's long-poll for work.
func (c *Coordinator) handlePull(w http.ResponseWriter, r *http.Request) {
	var req PullRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.WorkerID == "" {
		writeJSON(w, http.StatusBadRequest, api.ErrorResponse{Error: "bad pull request"})
		return
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait > c.cfg.MaxPullWait {
		wait = c.cfg.MaxPullWait
	}
	deadline := time.Now().Add(wait)
	for {
		now := time.Now()
		c.mu.Lock()
		c.touchWorkerLocked(req.WorkerID, now)
		if c.quarantined[req.WorkerID] {
			c.mu.Unlock()
			writeJSON(w, http.StatusOK, PullResponse{Quarantined: true})
			return
		}
		if c.closed {
			c.mu.Unlock()
			writeJSON(w, http.StatusOK, PullResponse{Draining: true})
			return
		}
		job := c.tryGrantLocked(req.WorkerID, now)
		notify := c.notify
		c.mu.Unlock()
		if job != nil {
			writeJSON(w, http.StatusOK, PullResponse{Job: job})
			return
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			writeJSON(w, http.StatusOK, PullResponse{})
			return
		}
		wake := time.NewTimer(remaining)
		select {
		case <-notify:
			wake.Stop()
		case <-wake.C:
			writeJSON(w, http.StatusOK, PullResponse{})
			return
		case <-r.Context().Done():
			wake.Stop()
			return
		}
	}
}

// handleResult ingests one uploaded result. The contract is
// idempotent, safe under stale leases, and — new with verified
// uploads — trustless toward workers:
//
//   - unknown job id, terminal in the store → "duplicate" (no-op);
//   - success payloads are validated before they can decide the job:
//     structural invariants always (content address, spec echo,
//     degraded flag, metric recount of the solution geometry), the
//     full internal/verify re-check when VerifyUploads is set. A
//     failing payload is "rejected": the job is re-placed away from
//     the uploader, the uploader's reputation is charged, and past
//     RejectBudget the worker is quarantined with everything it held
//     re-placed;
//   - tracked job, fresh lease (primary or hedge), valid payload →
//     the upload decides the job;
//   - tracked job, stale/expired lease, valid success payload →
//     accepted anyway: the flow is deterministic, so the late
//     worker's bytes equal what the rerun would produce, and the
//     exactly-once terminate gate keeps whichever lands second a
//     no-op;
//   - tracked job, stale lease, error/panic payload → "stale" no-op:
//     a presumed-dead worker must not fail a job another worker may
//     still complete.
func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req ResultRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.WorkerID == "" || req.JobID == "" {
		writeJSON(w, http.StatusBadRequest, api.ErrorResponse{Error: "bad result request"})
		return
	}
	now := time.Now()
	success := len(req.Result) > 0 && req.Error == "" && req.Panic == ""
	if req.SpoolReplay {
		c.svc.Metrics().ClusterSpoolReplays.Add(1)
	}

	c.mu.Lock()
	c.touchWorkerLocked(req.WorkerID, now)
	t, tracked := c.jobs[req.JobID]
	var a *service.Assignment
	if tracked {
		a = t.a
	}
	c.mu.Unlock()
	if !tracked {
		if resp, ok := c.svc.Lookup(req.JobID); ok && isTerminal(resp.Status) {
			c.svc.Metrics().ClusterDupResults.Add(1)
			writeJSON(w, http.StatusOK, ResultResponse{Status: ResultDuplicate})
			return
		}
		writeJSON(w, http.StatusNotFound, api.ErrorResponse{Error: fmt.Sprintf("no live job %q", req.JobID)})
		return
	}

	// Validate outside the lock: the full verify re-check re-colors
	// via layers and must not stall pulls and heartbeats. The job
	// fields it needs are immutable, and the decision below re-checks
	// the tracking state after relocking.
	reason := ""
	var vErr error
	//sadplint:ignore lockorder deliberate unlock-validate-relock: a's fields are immutable and the decision re-checks tracking state after relocking
	if req.Key != a.Key {
		reason, vErr = rejectContentAddress, fmt.Errorf("upload quotes key %.12s, job is %.12s", req.Key, a.Key)
	} else if success {
		reason, vErr = validateUpload(a, &req, c.cfg.VerifyUploads)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	t, tracked = c.jobs[req.JobID]
	if !tracked {
		// The job went terminal while this upload was being validated.
		c.svc.Metrics().ClusterDupResults.Add(1)
		writeJSON(w, http.StatusOK, ResultResponse{Status: ResultDuplicate})
		return
	}
	freshPrimary := t.leased && t.lease == req.Lease && t.worker == req.WorkerID
	freshHedge := t.hedgeLease != "" && t.hedgeLease == req.Lease && t.hedgeWorker == req.WorkerID
	fresh := freshPrimary || freshHedge

	if reason != "" {
		c.rejectUploadLocked(t, &req, freshPrimary, freshHedge, reason, vErr)
		writeJSON(w, http.StatusOK, ResultResponse{Status: ResultRejected, Reason: reason})
		return
	}

	switch {
	case success:
		if !fresh {
			c.svc.Metrics().ClusterStaleResults.Add(1)
		}
		if c.svc.CompleteExternal(t.a, req.Result, req.Degraded, req.WorkerID) {
			if freshHedge {
				c.hist.Observe(req.WorkerID, now.Sub(t.hedgeStarted))
			} else if freshPrimary {
				c.hist.Observe(req.WorkerID, now.Sub(t.started))
			}
			c.dropJobLocked(req.JobID)
			writeJSON(w, http.StatusOK, ResultResponse{Status: ResultAccepted})
			return
		}
		c.svc.Metrics().ClusterDupResults.Add(1)
		c.dropJobLocked(req.JobID)
		writeJSON(w, http.StatusOK, ResultResponse{Status: ResultDuplicate})

	case req.Panic != "":
		if !fresh {
			c.svc.Metrics().ClusterStaleResults.Add(1)
			writeJSON(w, http.StatusOK, ResultResponse{Status: ResultStale})
			return
		}
		if freshHedge {
			// The hedge crashed; the primary is still running — drop
			// the hedge and let the job be.
			t.excluded[req.WorkerID] = true
			c.clearHedgeLocked(t)
			writeJSON(w, http.StatusOK, ResultResponse{Status: ResultAccepted})
			return
		}
		if t.a.Attempts() >= c.svc.MaxAttempts() {
			msg := fmt.Sprintf("quarantined after %d panicking attempts: %s", t.a.Attempts(), req.Panic)
			c.svc.QuarantineExternal(t.a, msg)
			c.dropJobLocked(req.JobID)
		} else {
			// Same retry rule as standalone: a panic before the budget
			// is spent re-places the job (any worker may take it).
			t.leased = false
			t.worker = ""
			t.lease = ""
			if t.hedgeLease != "" {
				c.promoteHedgeLocked(req.JobID, t)
			} else {
				c.svc.Requeue(t.a)
				c.pending = append(c.pending, req.JobID)
				c.broadcastLocked()
			}
		}
		writeJSON(w, http.StatusOK, ResultResponse{Status: ResultAccepted})

	default:
		if !fresh {
			c.svc.Metrics().ClusterStaleResults.Add(1)
			writeJSON(w, http.StatusOK, ResultResponse{Status: ResultStale})
			return
		}
		if freshHedge && t.leased {
			// The hedge failed (e.g. its deadline) while the primary
			// still runs; don't fail a job another execution may finish.
			t.excluded[req.WorkerID] = true
			c.clearHedgeLocked(t)
			writeJSON(w, http.StatusOK, ResultResponse{Status: ResultAccepted})
			return
		}
		c.svc.FailExternal(t.a, req.Error, req.Canceled)
		c.dropJobLocked(req.JobID)
		writeJSON(w, http.StatusOK, ResultResponse{Status: ResultAccepted})
	}
}

// rejectUploadLocked applies the consequences of a rejected upload:
// the per-reason counter, the job's re-placement away from the
// uploader, the uploader's reputation charge and — past the budget —
// its quarantine. Callers hold mu.
func (c *Coordinator) rejectUploadLocked(t *trackedJob, req *ResultRequest, freshPrimary, freshHedge bool, reason string, vErr error) {
	c.svc.Metrics().ClusterUploadRejects.Add(reason, 1)
	c.logf("cluster: job %s upload from %s rejected (%s): %v", req.JobID, req.WorkerID, reason, vErr)
	if freshPrimary {
		t.excluded[req.WorkerID] = true
		t.leased = false
		t.worker = ""
		t.lease = ""
		c.svc.Metrics().ClusterRequeues.Add(1)
		if t.hedgeLease != "" {
			c.promoteHedgeLocked(req.JobID, t)
		} else {
			c.requeueLocked(req.JobID, t)
		}
	} else if freshHedge {
		t.excluded[req.WorkerID] = true
		c.clearHedgeLocked(t)
	}
	c.rejects[req.WorkerID]++
	if c.cfg.RejectBudget >= 0 && c.rejects[req.WorkerID] > c.cfg.RejectBudget && !c.quarantined[req.WorkerID] {
		c.quarantineWorkerLocked(req.WorkerID)
	}
}

// dropJobLocked removes a now-terminal job from the lease table and
// the pending list. Callers hold mu.
func (c *Coordinator) dropJobLocked(id string) {
	delete(c.jobs, id)
	for i, pid := range c.pending {
		if pid == id {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			break
		}
	}
}

// handleHeartbeat renews the worker's leases and reports the ones it
// no longer holds so it can cancel those executions.
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.WorkerID == "" {
		writeJSON(w, http.StatusBadRequest, api.ErrorResponse{Error: "bad heartbeat"})
		return
	}
	now := time.Now()
	var resp HeartbeatResponse
	ids := make([]string, 0, len(req.Jobs))
	for id := range req.Jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	c.mu.Lock()
	c.touchWorkerLocked(req.WorkerID, now)
	for _, id := range ids {
		t, ok := c.jobs[id]
		switch {
		case ok && t.leased && t.worker == req.WorkerID && t.lease == req.Jobs[id]:
			t.expires = now.Add(c.cfg.LeaseTTL)
			resp.Renewed = append(resp.Renewed, id)
		case ok && t.hedgeLease != "" && t.hedgeWorker == req.WorkerID && t.hedgeLease == req.Jobs[id]:
			t.hedgeExpires = now.Add(c.cfg.LeaseTTL)
			resp.Renewed = append(resp.Renewed, id)
		default:
			resp.Lost = append(resp.Lost, id)
		}
	}
	// Fold the worker's cumulative retry counters into the cluster
	// exposition as deltas. A count below the last seen one means the
	// worker restarted and its counters reset; the new total is all
	// delta.
	if len(req.RetryAttempts) > 0 {
		last := c.lastRetries[req.WorkerID]
		if last == nil {
			last = make(map[string]int64)
			c.lastRetries[req.WorkerID] = last
		}
		rpcs := make([]string, 0, len(req.RetryAttempts))
		for rpc := range req.RetryAttempts {
			rpcs = append(rpcs, rpc)
		}
		sort.Strings(rpcs)
		for _, rpc := range rpcs {
			n := req.RetryAttempts[rpc]
			prev := last[rpc]
			if n < prev {
				prev = 0
			}
			if n > prev {
				c.svc.Metrics().ClusterRetryAttempts.Add(rpc, n-prev)
			}
			last[rpc] = n
		}
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics composes the service exposition with the
// cluster-scope counters, gauges and per-worker latency histogram.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	c.mu.Lock()
	g := service.ClusterGauges{}
	for _, wk := range c.workers {
		if now.Sub(wk.lastSeen) <= c.cfg.WorkerTTL {
			g.Workers++
		}
	}
	for _, t := range c.jobs {
		if t.leased {
			g.LeasesActive++
		}
	}
	c.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	c.svc.WriteMetrics(w)
	c.svc.Metrics().WriteCluster(w, g, c.hist)
}

// Handler returns the coordinator's routes: the cluster RPC endpoints
// plus the wrapped service's public API (whose /metrics is overridden
// by the composed cluster exposition).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathPull, c.handlePull)
	mux.HandleFunc("POST "+PathResult, c.handleResult)
	mux.HandleFunc("POST "+PathHeartbeat, c.handleHeartbeat)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.Handle("/", c.svc.Handler())
	return mux
}

// Shutdown drains the cluster: intake closes, already-accepted jobs
// keep being placed and collected until none remain (workers pulling
// Draining exit once the queue is empty), then the pump/sweeper stop
// and the wrapped service shuts down. If ctx expires first, live jobs
// simply stay in the journal as running records — the next boot
// replays them as queued, which is the coordinator-crash story the
// replay tests pin down.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.svc.CloseIntake()
	wait := time.NewTicker(20 * time.Millisecond)
	defer wait.Stop()
	for {
		c.mu.Lock()
		n := len(c.jobs)
		c.mu.Unlock()
		if n == 0 {
			break
		}
		select {
		case <-ctx.Done():
			goto stop
		case <-wait.C:
		}
	}
stop:
	c.cancel()
	c.mu.Lock()
	c.closed = true
	c.broadcastLocked()
	c.mu.Unlock()
	c.wg.Wait()
	return c.svc.Shutdown(ctx)
}

func isTerminal(s api.JobStatus) bool {
	switch s {
	case api.StatusDone, api.StatusFailed, api.StatusQuarantined:
		return true
	}
	return false
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}
