package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/service"
	"repro/internal/service/api"
)

// CoordinatorConfig tunes the lease machinery. Zero values take the
// defaults noted.
type CoordinatorConfig struct {
	// LeaseTTL is how long a placed job stays owned by its worker
	// without a heartbeat before the sweeper re-places it (default
	// 15s). It is also the heartbeat interval hint sent to workers.
	LeaseTTL time.Duration
	// SweepEvery is the lease/worker expiry scan period (default
	// LeaseTTL/4).
	SweepEvery time.Duration
	// WorkerTTL is how long a worker counts as live after its last
	// contact, for the exclusion logic (default 2×LeaseTTL).
	WorkerTTL time.Duration
	// MaxPullWait caps a pull's long-poll window (default 30s).
	MaxPullWait time.Duration
	// Logf, when set, receives one line per cluster transition.
	Logf func(format string, args ...interface{})
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = c.LeaseTTL / 4
	}
	if c.WorkerTTL <= 0 {
		c.WorkerTTL = 2 * c.LeaseTTL
	}
	if c.MaxPullWait <= 0 {
		c.MaxPullWait = 30 * time.Second
	}
	return c
}

// trackedJob is the coordinator's view of one live (non-terminal)
// job. Every field, including the map, is touched only inside the
// owning Coordinator's critical sections on its mu.
type trackedJob struct {
	a      *service.Assignment
	leased bool
	worker string // current lease holder while leased
	lease  string
	// expires is the lease deadline; heartbeats push it forward.
	expires time.Time
	// started stamps the current placement, for the latency histogram.
	started time.Time
	// excluded names workers whose lease on this job expired; the
	// grant loop avoids them while another live worker exists.
	excluded map[string]bool
}

// workerInfo is the liveness record of one worker.
type workerInfo struct {
	lastSeen time.Time
}

// Coordinator owns cluster-scope state: the lease table, the pending
// queue of unplaced assignments, and worker liveness. All durable
// state stays in the wrapped service.Server (journal, cache,
// single-flight, quarantine) — the Coordinator can crash and restart
// with nothing but the journal and reconstruct equivalent work.
//
// Lock ordering: mu is the outermost lock; the service's own locks
// and the journal's are acquired inside it (never the reverse — the
// service never calls back into the Coordinator).
type Coordinator struct {
	svc  *service.Server
	cfg  CoordinatorConfig
	hist *service.LatencyHist

	mu       sync.Mutex
	jobs     map[string]*trackedJob // guarded by mu; job id → live job
	pending  []string               // guarded by mu; unplaced job ids, FIFO
	workers  map[string]*workerInfo // guarded by mu; worker id → liveness
	leaseSeq int64                  // guarded by mu; lease token counter
	closed   bool                   // guarded by mu; Shutdown reached the drain-workers phase
	notify   chan struct{}          // guarded by mu; closed+replaced when pending grows

	cancel context.CancelFunc // stops pump and sweeper
	wg     sync.WaitGroup
}

// NewCoordinator wraps an ExternalExec service.Server and starts the
// dequeue pump and the lease sweeper.
func NewCoordinator(svc *service.Server, cfg CoordinatorConfig) *Coordinator {
	c := &Coordinator{
		svc:     svc,
		cfg:     cfg.withDefaults(),
		hist:    service.NewLatencyHist(),
		jobs:    make(map[string]*trackedJob),
		workers: make(map[string]*workerInfo),
		notify:  make(chan struct{}),
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	c.wg.Add(2)
	go c.pump(ctx)
	go c.sweeper(ctx)
	return c
}

func (c *Coordinator) logf(format string, args ...interface{}) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// pump moves accepted jobs from the service queue into the cluster
// pending list. It exits on drain (CloseIntake + queue empty) or stop.
func (c *Coordinator) pump(ctx context.Context) {
	defer c.wg.Done()
	for {
		a, err := c.svc.Dequeue(ctx)
		if err != nil {
			return // ErrDraining or ctx canceled
		}
		c.mu.Lock()
		c.jobs[a.ID] = &trackedJob{a: a, excluded: make(map[string]bool)}
		c.pending = append(c.pending, a.ID)
		c.broadcastLocked()
		c.mu.Unlock()
	}
}

// broadcastLocked wakes every pull long-poller. Callers hold mu.
func (c *Coordinator) broadcastLocked() {
	close(c.notify)
	c.notify = make(chan struct{})
}

// sweeper periodically expires silent workers and re-places jobs
// whose leases ran out.
func (c *Coordinator) sweeper(ctx context.Context) {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		c.sweep(time.Now())
	}
}

// sweep is one expiry pass. Iteration is in sorted id order so two
// coordinators fed the same event history make the same decisions.
func (c *Coordinator) sweep(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, w := range c.workers {
		if now.Sub(w.lastSeen) > c.cfg.WorkerTTL {
			delete(c.workers, id)
			c.logf("cluster: worker %s expired (last seen %s ago)", id, now.Sub(w.lastSeen).Round(time.Millisecond))
		}
	}
	ids := make([]string, 0, len(c.jobs))
	for id := range c.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		t := c.jobs[id]
		if !t.leased || now.Before(t.expires) {
			continue
		}
		holder := t.worker
		t.excluded[holder] = true
		t.leased = false
		t.worker = ""
		t.lease = ""
		c.svc.Metrics().ClusterRequeues.Add(1)
		c.logf("cluster: job %s lease expired on %s (attempt %d/%d)", id, holder, t.a.Attempts(), c.svc.MaxAttempts())
		if t.a.Attempts() >= c.svc.MaxAttempts() {
			// The attempt budget was consumed by dead workers — same
			// verdict as crash-interrupted jobs on journal replay.
			c.svc.FailInterrupted(t.a)
			delete(c.jobs, id)
			continue
		}
		c.svc.Requeue(t.a)
		c.pending = append(c.pending, id)
		c.broadcastLocked()
	}
}

// touchWorkerLocked refreshes a worker's liveness. Callers hold mu.
func (c *Coordinator) touchWorkerLocked(id string, now time.Time) {
	w, ok := c.workers[id]
	if !ok {
		w = &workerInfo{}
		c.workers[id] = w
		c.logf("cluster: worker %s joined", id)
	}
	w.lastSeen = now
}

// otherLiveWorkerLocked reports whether a live worker besides the
// given one exists. Callers hold mu.
func (c *Coordinator) otherLiveWorkerLocked(except string, now time.Time) bool {
	for id, w := range c.workers {
		if id != except && now.Sub(w.lastSeen) <= c.cfg.WorkerTTL {
			return true
		}
	}
	return false
}

// tryGrantLocked places the oldest grantable pending job on the
// worker and returns the assignment, or nil when nothing fits. A job
// whose excluded set names this worker is skipped only while another
// live worker could take it — with no alternative, granting to a
// previously-failed holder beats starving the job (the attempt bound
// still terminates it). Callers hold mu.
func (c *Coordinator) tryGrantLocked(workerID string, now time.Time) *JobAssignment {
	for i, id := range c.pending {
		t, ok := c.jobs[id]
		if !ok || t.leased {
			continue // stale pending entry; compacted below
		}
		if t.excluded[workerID] && c.otherLiveWorkerLocked(workerID, now) {
			continue
		}
		c.pending = append(c.pending[:i], c.pending[i+1:]...)
		c.leaseSeq++
		t.leased = true
		t.worker = workerID
		t.lease = fmt.Sprintf("L%08d", c.leaseSeq)
		t.expires = now.Add(c.cfg.LeaseTTL)
		t.started = now
		attempt := c.svc.StartAttempt(t.a, workerID)
		return &JobAssignment{
			ID:         t.a.ID,
			Key:        t.a.Key,
			Netlist:    t.a.Netlist,
			Spec:       t.a.Spec,
			Lease:      t.lease,
			Attempt:    attempt,
			LeaseTTLMS: int(c.cfg.LeaseTTL / time.Millisecond),
			TimeoutMS:  int(c.svc.JobTimeout() / time.Millisecond),
		}
	}
	return nil
}

// handlePull answers a worker's long-poll for work.
func (c *Coordinator) handlePull(w http.ResponseWriter, r *http.Request) {
	var req PullRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.WorkerID == "" {
		writeJSON(w, http.StatusBadRequest, api.ErrorResponse{Error: "bad pull request"})
		return
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait > c.cfg.MaxPullWait {
		wait = c.cfg.MaxPullWait
	}
	deadline := time.Now().Add(wait)
	for {
		now := time.Now()
		c.mu.Lock()
		c.touchWorkerLocked(req.WorkerID, now)
		if c.closed {
			c.mu.Unlock()
			writeJSON(w, http.StatusOK, PullResponse{Draining: true})
			return
		}
		job := c.tryGrantLocked(req.WorkerID, now)
		notify := c.notify
		c.mu.Unlock()
		if job != nil {
			writeJSON(w, http.StatusOK, PullResponse{Job: job})
			return
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			writeJSON(w, http.StatusOK, PullResponse{})
			return
		}
		wake := time.NewTimer(remaining)
		select {
		case <-notify:
			wake.Stop()
		case <-wake.C:
			writeJSON(w, http.StatusOK, PullResponse{})
			return
		case <-r.Context().Done():
			wake.Stop()
			return
		}
	}
}

// handleResult ingests one uploaded result. The contract is
// idempotent and safe under stale leases:
//
//   - unknown job id, terminal in the store → "duplicate" (no-op);
//   - tracked job, fresh lease → the upload decides the job;
//   - tracked job, stale/expired lease, success payload → accepted
//     anyway: the flow is deterministic, so the late worker's bytes
//     equal what the rerun would produce, and the exactly-once
//     terminate gate keeps whichever lands second a no-op;
//   - tracked job, stale lease, error/panic payload → "stale" no-op:
//     a presumed-dead worker must not fail a job another worker may
//     still complete.
func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req ResultRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.WorkerID == "" || req.JobID == "" {
		writeJSON(w, http.StatusBadRequest, api.ErrorResponse{Error: "bad result request"})
		return
	}
	now := time.Now()
	success := len(req.Result) > 0 && req.Error == "" && req.Panic == ""

	c.mu.Lock()
	c.touchWorkerLocked(req.WorkerID, now)
	t, tracked := c.jobs[req.JobID]
	if !tracked {
		c.mu.Unlock()
		if resp, ok := c.svc.Lookup(req.JobID); ok && isTerminal(resp.Status) {
			c.svc.Metrics().ClusterDupResults.Add(1)
			writeJSON(w, http.StatusOK, ResultResponse{Status: ResultDuplicate})
			return
		}
		writeJSON(w, http.StatusNotFound, api.ErrorResponse{Error: fmt.Sprintf("no live job %q", req.JobID)})
		return
	}
	defer c.mu.Unlock()
	if req.Key != t.a.Key {
		writeJSON(w, http.StatusBadRequest, api.ErrorResponse{Error: "content address mismatch"})
		return
	}
	fresh := t.leased && t.lease == req.Lease && t.worker == req.WorkerID

	switch {
	case success:
		if !fresh {
			c.svc.Metrics().ClusterStaleResults.Add(1)
		}
		if c.svc.CompleteExternal(t.a, req.Result, req.Degraded, req.WorkerID) {
			if fresh {
				c.hist.Observe(req.WorkerID, now.Sub(t.started))
			}
			c.dropJobLocked(req.JobID)
			writeJSON(w, http.StatusOK, ResultResponse{Status: ResultAccepted})
			return
		}
		c.svc.Metrics().ClusterDupResults.Add(1)
		c.dropJobLocked(req.JobID)
		writeJSON(w, http.StatusOK, ResultResponse{Status: ResultDuplicate})

	case req.Panic != "":
		if !fresh {
			c.svc.Metrics().ClusterStaleResults.Add(1)
			writeJSON(w, http.StatusOK, ResultResponse{Status: ResultStale})
			return
		}
		if t.a.Attempts() >= c.svc.MaxAttempts() {
			msg := fmt.Sprintf("quarantined after %d panicking attempts: %s", t.a.Attempts(), req.Panic)
			c.svc.QuarantineExternal(t.a, msg)
			c.dropJobLocked(req.JobID)
		} else {
			// Same retry rule as standalone: a panic before the budget
			// is spent re-places the job (any worker may take it).
			t.leased = false
			t.worker = ""
			t.lease = ""
			c.svc.Requeue(t.a)
			c.pending = append(c.pending, req.JobID)
			c.broadcastLocked()
		}
		writeJSON(w, http.StatusOK, ResultResponse{Status: ResultAccepted})

	default:
		if !fresh {
			c.svc.Metrics().ClusterStaleResults.Add(1)
			writeJSON(w, http.StatusOK, ResultResponse{Status: ResultStale})
			return
		}
		c.svc.FailExternal(t.a, req.Error, req.Canceled)
		c.dropJobLocked(req.JobID)
		writeJSON(w, http.StatusOK, ResultResponse{Status: ResultAccepted})
	}
}

// dropJobLocked removes a now-terminal job from the lease table and
// the pending list. Callers hold mu.
func (c *Coordinator) dropJobLocked(id string) {
	delete(c.jobs, id)
	for i, pid := range c.pending {
		if pid == id {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			break
		}
	}
}

// handleHeartbeat renews the worker's leases and reports the ones it
// no longer holds so it can cancel those executions.
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.WorkerID == "" {
		writeJSON(w, http.StatusBadRequest, api.ErrorResponse{Error: "bad heartbeat"})
		return
	}
	now := time.Now()
	var resp HeartbeatResponse
	ids := make([]string, 0, len(req.Jobs))
	for id := range req.Jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	c.mu.Lock()
	c.touchWorkerLocked(req.WorkerID, now)
	for _, id := range ids {
		t, ok := c.jobs[id]
		if ok && t.leased && t.worker == req.WorkerID && t.lease == req.Jobs[id] {
			t.expires = now.Add(c.cfg.LeaseTTL)
			resp.Renewed = append(resp.Renewed, id)
		} else {
			resp.Lost = append(resp.Lost, id)
		}
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics composes the service exposition with the
// cluster-scope counters, gauges and per-worker latency histogram.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	c.mu.Lock()
	g := service.ClusterGauges{}
	for _, wk := range c.workers {
		if now.Sub(wk.lastSeen) <= c.cfg.WorkerTTL {
			g.Workers++
		}
	}
	for _, t := range c.jobs {
		if t.leased {
			g.LeasesActive++
		}
	}
	c.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	c.svc.WriteMetrics(w)
	c.svc.Metrics().WriteCluster(w, g, c.hist)
}

// Handler returns the coordinator's routes: the cluster RPC endpoints
// plus the wrapped service's public API (whose /metrics is overridden
// by the composed cluster exposition).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathPull, c.handlePull)
	mux.HandleFunc("POST "+PathResult, c.handleResult)
	mux.HandleFunc("POST "+PathHeartbeat, c.handleHeartbeat)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.Handle("/", c.svc.Handler())
	return mux
}

// Shutdown drains the cluster: intake closes, already-accepted jobs
// keep being placed and collected until none remain (workers pulling
// Draining exit once the queue is empty), then the pump/sweeper stop
// and the wrapped service shuts down. If ctx expires first, live jobs
// simply stay in the journal as running records — the next boot
// replays them as queued, which is the coordinator-crash story the
// replay tests pin down.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.svc.CloseIntake()
	wait := time.NewTicker(20 * time.Millisecond)
	defer wait.Stop()
	for {
		c.mu.Lock()
		n := len(c.jobs)
		c.mu.Unlock()
		if n == 0 {
			break
		}
		select {
		case <-ctx.Done():
			goto stop
		case <-wait.C:
		}
	}
stop:
	c.cancel()
	c.mu.Lock()
	c.closed = true
	c.broadcastLocked()
	c.mu.Unlock()
	c.wg.Wait()
	return c.svc.Shutdown(ctx)
}

func isTerminal(s api.JobStatus) bool {
	switch s {
	case api.StatusDone, api.StatusFailed, api.StatusQuarantined:
		return true
	}
	return false
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}
