package router

import (
	"fmt"
	"time"

	"repro/internal/geom"
)

// Via-layer TPL violation removal rip-up-and-reroute (Algorithm 2,
// §III-C): eliminate every forbidden via pattern while keeping the
// solution congestion-free. Congestions outrank FVPs in the violation
// queue; via sites whose use would create an FVP are blocked for the
// searches, and history costs escalate on FVP vias so repeated
// offenders grow expensive.

// fvpKey identifies an FVP window.
type fvpKey struct {
	vl     int
	origin geom.Pt
}

func fvpKeyLess(a, b fvpKey) bool {
	if a.vl != b.vl {
		return a.vl < b.vl
	}
	if a.origin.Y != b.origin.Y {
		return a.origin.Y < b.origin.Y
	}
	return a.origin.X < b.origin.X
}

// removeTPLViolations runs the phase to a violation-free state or
// errors out when the iteration budget is exhausted. Under a
// Config.TPLBudget it instead degrades on expiry: congestion is still
// resolved (shorts are never acceptable), FVP work stops, and the
// unresolved windows are counted into Stats.
func (rt *Router) removeTPLViolations() error {
	P := rt.cfg.Params
	var tplDeadline time.Time
	if rt.cfg.TPLBudget > 0 {
		//sadplint:ignore detclock TPLBudget is an explicit wall-clock degradation knob; zero (the default) keeps the phase fully deterministic
		tplDeadline = time.Now().Add(rt.cfg.TPLBudget)
	}

	// Line 2 of Algorithm 2: block via locations that would create an
	// FVP if used (Fig 10). Via-driven initialization instead of a
	// whole-grid sweep: a site can only be blocked when some 3×3 window
	// containing it already holds ≥3 vias, so only cells within
	// Chebyshev distance 2 of an occupied via site can block — examine
	// exactly those (deduplicated by an epoch stamp), leave the rest
	// untouched. blockVia is all-false on the first entry and kept
	// exact by refreshAround across every tracked rip-up/reroute, so
	// untouched cells are correct on re-entry too. Incremental updates
	// after each rip-up/reroute maintain it from here.
	for vl := range rt.blockVia {
		rt.initBlockedVias(vl)
	}

	// Initial FVP set (the priority queue's FVP entries), likewise
	// via-driven: every FVP window holds ≥4 vias, so checking the ≤9
	// windows around each occupied site finds them all. The map keying
	// makes the discovery order irrelevant.
	fvps := map[fvpKey]bool{}
	for vl, lv := range rt.g.Vias {
		rt.siteBuf = lv.AppendSites(rt.siteBuf[:0])
		for _, sp := range rt.siteBuf {
			for dy := -2; dy <= 0; dy++ {
				for dx := -2; dx <= 0; dx++ {
					o := sp.Add(dx, dy)
					if lv.WindowAt(o).IsFVP() {
						fvps[fvpKey{vl, o}] = true
					}
				}
			}
		}
	}

	for iter := 0; ; iter++ {
		if err := rt.checkCancel(); err != nil {
			return err
		}
		if rt.debugTPLIter != nil {
			rt.debugTPLIter(iter, fvps)
		}
		if iter%100 == 0 {
			rt.logf("tplrr iter %d: %d congestions, %d fvp entries", iter, len(rt.g.Congestions()), len(fvps))
		}
		// Congestion has priority over FVPs (§III-C), and outranks the
		// phase budget too: a congested solution is shorted, so its
		// resolution continues even past the deadline.
		if cong := rt.g.Congestions(); len(cong) > 0 {
			if iter >= rt.cfg.MaxTPLRRIters {
				return fmt.Errorf("router: congestion unresolved after %d TPL R&R iterations", iter)
			}
			if err := rt.resolveCongestionStep(cong, fvps); err != nil {
				return err
			}
			continue
		}
		// Phase budget expired: return the congestion-free best-so-far
		// with an honest full recount of the remaining FVP windows.
		//sadplint:ignore detclock guarded by TPLBudget > 0, the explicit wall-clock degradation knob
		if !tplDeadline.IsZero() && time.Now().After(tplDeadline) {
			remaining := 0
			for _, lv := range rt.g.Vias {
				remaining += len(lv.AllFVPsN(rt.cfg.Workers))
			}
			rt.stats.TPLDegraded = true
			rt.stats.RemainingFVPs = remaining
			rt.stats.TPLRRIterations = iter
			rt.logf("tplrr degraded at iter %d: %d FVPs remain", iter, remaining)
			return nil
		}
		// Drop stale FVP entries; pick the lexicographically first live
		// one for determinism.
		var pick *fvpKey
		//sadplint:ordered stale entries are deleted (order-free) and the pick is the fvpKeyLess minimum, independent of visit order
		for k := range fvps {
			if !rt.g.Vias[k.vl].WindowAt(k.origin).IsFVP() {
				delete(fvps, k)
				continue
			}
			if pick == nil || fvpKeyLess(k, *pick) {
				kk := k
				pick = &kk
			}
		}
		if pick == nil {
			// Paranoia: the incremental bookkeeping should never miss
			// an FVP; verify with one full scan before declaring
			// victory.
			clean := true
			for vl, lv := range rt.g.Vias {
				for _, o := range lv.AllFVPs() {
					fvps[fvpKey{vl, o}] = true
					clean = false
				}
			}
			if clean {
				rt.stats.TPLRRIterations = iter
				return nil
			}
			continue
		}
		if iter >= rt.cfg.MaxTPLRRIters {
			return fmt.Errorf("router: %d FVPs unresolved after %d TPL R&R iterations", len(fvps), iter)
		}

		// Choose a rip-up net among the nets owning vias of this FVP.
		victim := rt.pickFVPVictim(*pick)
		if victim < 0 {
			// Should not happen: an FVP window with no owning net.
			return fmt.Errorf("router: FVP at %v layer %d has no owner", pick.origin, pick.vl)
		}
		// History cost on the FVP's via sites: vias in FVPs grow more
		// expensive to use.
		rt.bumpFVPHistory(*pick, P.HistInc*CostScale)

		rt.ripUpTracked(victim, fvps)
		if err := rt.rerouteTracked(victim, fvps); err != nil {
			return fmt.Errorf("router: TPL R&R reroute of net %d: %w", victim, err)
		}
		rt.stats.FVPsResolved++
	}
}

// resolveCongestionStep rips and reroutes one offender per congested
// point (one pass), bumping history and keeping FVP bookkeeping
// current.
func (rt *Router) resolveCongestionStep(cong []geom.Pt3, fvps map[fvpKey]bool) error {
	P := rt.cfg.Params
	rt.escalatePresFac()
	toRip := map[int32]bool{}
	for _, p := range cong {
		pi := rt.g.PIdx(p.Pt2())
		rt.bumpHistMetal(p.Layer, pi, P.HistInc*CostScale)
		nets := rt.g.Metal[p.Layer].Nets(p.Pt2())
		if len(nets) > 0 {
			toRip[nets[rt.rng.Intn(len(nets))]] = true
		}
	}
	order := sortedNetSet(toRip)
	for _, id := range order {
		rt.ripUpTracked(id, fvps)
	}
	for _, id := range order {
		rt.stats.RRIterations++
		if err := rt.rerouteTracked(id, fvps); err != nil {
			return err
		}
	}
	return nil
}

// pickFVPVictim selects a net owning a via inside the FVP window. The
// candidate list lives in a recycled router buffer: the rip-up loop
// calls this once per violation, thousands of times per job.
//
//sadplint:hotpath runs once per FVP violation in the TPL rip-up loop
func (rt *Router) pickFVPVictim(k fvpKey) int32 {
	candidates := rt.victimBuf[:0]
	for dy := 0; dy < 3; dy++ {
		for dx := 0; dx < 3; dx++ {
			p := k.origin.Add(dx, dy)
			if !rt.g.Vias[k.vl].Has(p) {
				continue
			}
			candidates = rt.appendViaOwners(candidates, k.vl, p)
		}
	}
	rt.victimBuf = candidates
	if len(candidates) == 0 {
		return -1
	}
	return candidates[rt.rng.Intn(len(candidates))]
}

// bumpFVPHistory raises the via history cost of every via site in the
// FVP window (line 15 of Algorithm 2).
func (rt *Router) bumpFVPHistory(k fvpKey, amount int64) {
	for dy := 0; dy < 3; dy++ {
		for dx := 0; dx < 3; dx++ {
			p := k.origin.Add(dx, dy)
			if rt.g.InPlane(p) && rt.g.Vias[k.vl].Has(p) {
				rt.bumpHistVia(k.vl, rt.g.PIdx(p), amount)
			}
		}
	}
}

// ripUpTracked rips a net and updates FVP and blocked-via bookkeeping
// around its removed vias. The via snapshot must be taken before the
// rip (ripUp recycles the Route) and lives in a recycled router
// buffer — the rip-up loops churn through thousands of nets.
//
//sadplint:hotpath runs once per ripped net in the TPL/congestion loops
func (rt *Router) ripUpTracked(id int32, fvps map[fvpKey]bool) {
	r := rt.routes[id]
	vias := rt.ripViasBuf[:0]
	if r != nil {
		vias = append(vias, r.ViaList()...)
	}
	rt.ripViasBuf = vias
	rt.ripUp(id)
	for _, v := range vias {
		rt.refreshAround(v.Layer, geom.XY(v.X, v.Y), fvps)
	}
}

// rerouteTracked reroutes a net and updates FVP and blocked-via
// bookkeeping around its new vias. Reroute-created FVPs enter the
// violation set (line 16–17 of Algorithm 2). When via-site blocking
// has walled the net in entirely, the search is retried without the
// blocks — any FVP that creates is queued and resolved by moving other
// nets instead.
func (rt *Router) rerouteTracked(id int32, fvps map[fvpKey]bool) error {
	err := rt.reroute(id)
	if err != nil {
		rt.ignoreBlocks = true
		err = rt.reroute(id)
		rt.ignoreBlocks = false
		if err != nil {
			return err
		}
	}
	for _, v := range rt.routes[id].ViaList() {
		rt.refreshAround(v.Layer, geom.XY(v.X, v.Y), fvps)
	}
	return nil
}

// refreshAround re-examines the FVP windows containing the changed via
// site and the blocked state of nearby sites.
func (rt *Router) refreshAround(vl int, p geom.Pt, fvps map[fvpKey]bool) {
	lv := rt.g.Vias[vl]
	for dy := -2; dy <= 0; dy++ {
		for dx := -2; dx <= 0; dx++ {
			o := p.Add(dx, dy)
			k := fvpKey{vl, o}
			if lv.WindowAt(o).IsFVP() {
				fvps[k] = true
			} else {
				delete(fvps, k)
			}
		}
	}
	// Blocked-via status can change for sites whose windows overlap
	// the changed via: Chebyshev distance ≤ 2.
	area := geom.Rect{MinX: p.X - 2, MinY: p.Y - 2, MaxX: p.X + 2, MaxY: p.Y + 2}.
		Intersect(rt.g.Bounds())
	rt.rescanBlockedVias(vl, area)
}

// initBlockedVias computes the blocked state of one via layer by
// examining only cells near occupied via sites. Inserting a via at p
// can only create an FVP when a 3×3 window containing p already holds
// ≥3 vias, so every blockable cell lies within Chebyshev distance 2 of
// an occupied site; cells farther away are never blocked and are left
// untouched (they are already false: zero-initialized on the first
// entry, kept exact by refreshAround afterwards). Occupied sites
// themselves are within distance 0 of a site, so the lv.Has clearing
// of rescanBlockedVias is reproduced. The work is banded over rows
// like the old whole-grid sweep — each band writes only its own rows
// of blockVia and scanStamp, so the result is worker-count independent
// and race-free.
func (rt *Router) initBlockedVias(vl int) {
	lv := rt.g.Vias[vl]
	rt.siteBuf = lv.AppendSites(rt.siteBuf[:0])
	sites := rt.siteBuf
	if len(sites) == 0 {
		return
	}
	rt.scanEpoch++
	if rt.scanEpoch == 0 { // wrapped: invalidate all stamps
		for i := range rt.scanStamp {
			rt.scanStamp[i] = 0
		}
		rt.scanEpoch = 1
	}
	epoch := rt.scanEpoch
	b := rt.g.Bounds()
	parallelRows(b.MinY, b.MaxY, rt.cfg.Workers, func(r0, r1 int) {
		for _, sp := range sites {
			if sp.Y < r0-2 || sp.Y > r1+2 {
				continue
			}
			y0, y1 := sp.Y-2, sp.Y+2
			if y0 < r0 {
				y0 = r0
			}
			if y1 > r1 {
				y1 = r1
			}
			x0, x1 := sp.X-2, sp.X+2
			if x0 < b.MinX {
				x0 = b.MinX
			}
			if x1 > b.MaxX {
				x1 = b.MaxX
			}
			for y := y0; y <= y1; y++ {
				base := y * rt.g.W
				for x := x0; x <= x1; x++ {
					pi := base + x
					if rt.scanStamp[pi] == epoch {
						continue
					}
					rt.scanStamp[pi] = epoch
					p := geom.XY(x, y)
					if lv.Has(p) {
						rt.blockVia[vl][pi] = false // occupied sites are priced, not blocked
					} else {
						rt.blockVia[vl][pi] = lv.WouldCreateFVP(p)
					}
				}
			}
		}
	})
}

// rescanBlockedVias recomputes blockVia within the given area of one
// via layer: an unused site is blocked when inserting a via there
// would create an FVP (Fig 10).
func (rt *Router) rescanBlockedVias(vl int, area geom.Rect) {
	lv := rt.g.Vias[vl]
	for y := area.MinY; y <= area.MaxY; y++ {
		for x := area.MinX; x <= area.MaxX; x++ {
			p := geom.XY(x, y)
			pi := rt.g.PIdx(p)
			if lv.Has(p) {
				rt.blockVia[vl][pi] = false // occupied sites are priced, not blocked
				continue
			}
			rt.blockVia[vl][pi] = lv.WouldCreateFVP(p)
		}
	}
}
