package router

import (
	"fmt"
	"time"

	"repro/internal/geom"
)

// Via-layer TPL violation removal rip-up-and-reroute (Algorithm 2,
// §III-C): eliminate every forbidden via pattern while keeping the
// solution congestion-free. Congestions outrank FVPs in the violation
// queue; via sites whose use would create an FVP are blocked for the
// searches, and history costs escalate on FVP vias so repeated
// offenders grow expensive.

// fvpKey identifies an FVP window.
type fvpKey struct {
	vl     int
	origin geom.Pt
}

func fvpKeyLess(a, b fvpKey) bool {
	if a.vl != b.vl {
		return a.vl < b.vl
	}
	if a.origin.Y != b.origin.Y {
		return a.origin.Y < b.origin.Y
	}
	return a.origin.X < b.origin.X
}

// removeTPLViolations runs the phase to a violation-free state or
// errors out when the iteration budget is exhausted. Under a
// Config.TPLBudget it instead degrades on expiry: congestion is still
// resolved (shorts are never acceptable), FVP work stops, and the
// unresolved windows are counted into Stats.
func (rt *Router) removeTPLViolations() error {
	P := rt.cfg.Params
	var tplDeadline time.Time
	if rt.cfg.TPLBudget > 0 {
		//sadplint:ignore detclock TPLBudget is an explicit wall-clock degradation knob; zero (the default) keeps the phase fully deterministic
		tplDeadline = time.Now().Add(rt.cfg.TPLBudget)
	}

	// Line 2 of Algorithm 2: block via locations that would create an
	// FVP if used (Fig 10). Full initial scan — the only whole-grid
	// sweep of the phase, split into row bands across cfg.Workers
	// (every band writes its own blockVia rows, so the result is
	// worker-count independent); incremental updates after each
	// rip-up/reroute.
	for vl := range rt.blockVia {
		vl := vl
		b := rt.g.Bounds()
		parallelRows(b.MinY, b.MaxY, rt.cfg.Workers, func(r0, r1 int) {
			rt.rescanBlockedVias(vl, geom.Rect{MinX: b.MinX, MinY: r0, MaxX: b.MaxX, MaxY: r1})
		})
	}

	// Initial FVP set (the priority queue's FVP entries), also a
	// whole-grid scan; AllFVPsN merges its bands in deterministic
	// order.
	fvps := map[fvpKey]bool{}
	for vl, lv := range rt.g.Vias {
		for _, o := range lv.AllFVPsN(rt.cfg.Workers) {
			fvps[fvpKey{vl, o}] = true
		}
	}

	for iter := 0; ; iter++ {
		if err := rt.checkCancel(); err != nil {
			return err
		}
		if iter%100 == 0 {
			rt.logf("tplrr iter %d: %d congestions, %d fvp entries", iter, len(rt.g.Congestions()), len(fvps))
		}
		// Congestion has priority over FVPs (§III-C), and outranks the
		// phase budget too: a congested solution is shorted, so its
		// resolution continues even past the deadline.
		if cong := rt.g.Congestions(); len(cong) > 0 {
			if iter >= rt.cfg.MaxTPLRRIters {
				return fmt.Errorf("router: congestion unresolved after %d TPL R&R iterations", iter)
			}
			if err := rt.resolveCongestionStep(cong, fvps); err != nil {
				return err
			}
			continue
		}
		// Phase budget expired: return the congestion-free best-so-far
		// with an honest full recount of the remaining FVP windows.
		//sadplint:ignore detclock guarded by TPLBudget > 0, the explicit wall-clock degradation knob
		if !tplDeadline.IsZero() && time.Now().After(tplDeadline) {
			remaining := 0
			for _, lv := range rt.g.Vias {
				remaining += len(lv.AllFVPsN(rt.cfg.Workers))
			}
			rt.stats.TPLDegraded = true
			rt.stats.RemainingFVPs = remaining
			rt.stats.TPLRRIterations = iter
			rt.logf("tplrr degraded at iter %d: %d FVPs remain", iter, remaining)
			return nil
		}
		// Drop stale FVP entries; pick the lexicographically first live
		// one for determinism.
		var pick *fvpKey
		//sadplint:ordered stale entries are deleted (order-free) and the pick is the fvpKeyLess minimum, independent of visit order
		for k := range fvps {
			if !rt.g.Vias[k.vl].WindowAt(k.origin).IsFVP() {
				delete(fvps, k)
				continue
			}
			if pick == nil || fvpKeyLess(k, *pick) {
				kk := k
				pick = &kk
			}
		}
		if pick == nil {
			// Paranoia: the incremental bookkeeping should never miss
			// an FVP; verify with one full scan before declaring
			// victory.
			clean := true
			for vl, lv := range rt.g.Vias {
				for _, o := range lv.AllFVPs() {
					fvps[fvpKey{vl, o}] = true
					clean = false
				}
			}
			if clean {
				rt.stats.TPLRRIterations = iter
				return nil
			}
			continue
		}
		if iter >= rt.cfg.MaxTPLRRIters {
			return fmt.Errorf("router: %d FVPs unresolved after %d TPL R&R iterations", len(fvps), iter)
		}

		// Choose a rip-up net among the nets owning vias of this FVP.
		victim := rt.pickFVPVictim(*pick)
		if victim < 0 {
			// Should not happen: an FVP window with no owning net.
			return fmt.Errorf("router: FVP at %v layer %d has no owner", pick.origin, pick.vl)
		}
		// History cost on the FVP's via sites: vias in FVPs grow more
		// expensive to use.
		rt.bumpFVPHistory(*pick, P.HistInc*CostScale)

		rt.ripUpTracked(victim, fvps)
		if err := rt.rerouteTracked(victim, fvps); err != nil {
			return fmt.Errorf("router: TPL R&R reroute of net %d: %w", victim, err)
		}
		rt.stats.FVPsResolved++
	}
}

// resolveCongestionStep rips and reroutes one offender per congested
// point (one pass), bumping history and keeping FVP bookkeeping
// current.
func (rt *Router) resolveCongestionStep(cong []geom.Pt3, fvps map[fvpKey]bool) error {
	P := rt.cfg.Params
	rt.escalatePresFac()
	toRip := map[int32]bool{}
	for _, p := range cong {
		pi := rt.g.PIdx(p.Pt2())
		rt.histMetal[p.Layer][pi] += P.HistInc * CostScale
		nets := rt.g.Metal[p.Layer].Nets(p.Pt2())
		if len(nets) > 0 {
			toRip[nets[rt.rng.Intn(len(nets))]] = true
		}
	}
	order := sortedNetSet(toRip)
	for _, id := range order {
		rt.ripUpTracked(id, fvps)
	}
	for _, id := range order {
		rt.stats.RRIterations++
		if err := rt.rerouteTracked(id, fvps); err != nil {
			return err
		}
	}
	return nil
}

// pickFVPVictim selects a net owning a via inside the FVP window.
func (rt *Router) pickFVPVictim(k fvpKey) int32 {
	var candidates []int32
	for dy := 0; dy < 3; dy++ {
		for dx := 0; dx < 3; dx++ {
			p := k.origin.Add(dx, dy)
			if !rt.g.Vias[k.vl].Has(p) {
				continue
			}
			candidates = append(candidates, rt.viaOwnersAt(k.vl, p)...)
		}
	}
	if len(candidates) == 0 {
		return -1
	}
	return candidates[rt.rng.Intn(len(candidates))]
}

// bumpFVPHistory raises the via history cost of every via site in the
// FVP window (line 15 of Algorithm 2).
func (rt *Router) bumpFVPHistory(k fvpKey, amount int64) {
	for dy := 0; dy < 3; dy++ {
		for dx := 0; dx < 3; dx++ {
			p := k.origin.Add(dx, dy)
			if rt.g.InPlane(p) && rt.g.Vias[k.vl].Has(p) {
				rt.histVia[k.vl][rt.g.PIdx(p)] += amount
			}
		}
	}
}

// ripUpTracked rips a net and updates FVP and blocked-via bookkeeping
// around its removed vias. It returns the affected via sites.
func (rt *Router) ripUpTracked(id int32, fvps map[fvpKey]bool) []geom.Pt3 {
	r := rt.routes[id]
	var vias []geom.Pt3
	if r != nil {
		vias = append(vias, r.ViaList()...)
	}
	rt.ripUp(id)
	for _, v := range vias {
		rt.refreshAround(v.Layer, geom.XY(v.X, v.Y), fvps)
	}
	return vias
}

// rerouteTracked reroutes a net and updates FVP and blocked-via
// bookkeeping around its new vias. Reroute-created FVPs enter the
// violation set (line 16–17 of Algorithm 2). When via-site blocking
// has walled the net in entirely, the search is retried without the
// blocks — any FVP that creates is queued and resolved by moving other
// nets instead.
func (rt *Router) rerouteTracked(id int32, fvps map[fvpKey]bool) error {
	err := rt.reroute(id)
	if err != nil {
		rt.ignoreBlocks = true
		err = rt.reroute(id)
		rt.ignoreBlocks = false
		if err != nil {
			return err
		}
	}
	for _, v := range rt.routes[id].ViaList() {
		rt.refreshAround(v.Layer, geom.XY(v.X, v.Y), fvps)
	}
	return nil
}

// refreshAround re-examines the FVP windows containing the changed via
// site and the blocked state of nearby sites.
func (rt *Router) refreshAround(vl int, p geom.Pt, fvps map[fvpKey]bool) {
	lv := rt.g.Vias[vl]
	for dy := -2; dy <= 0; dy++ {
		for dx := -2; dx <= 0; dx++ {
			o := p.Add(dx, dy)
			k := fvpKey{vl, o}
			if lv.WindowAt(o).IsFVP() {
				fvps[k] = true
			} else {
				delete(fvps, k)
			}
		}
	}
	// Blocked-via status can change for sites whose windows overlap
	// the changed via: Chebyshev distance ≤ 2.
	area := geom.Rect{MinX: p.X - 2, MinY: p.Y - 2, MaxX: p.X + 2, MaxY: p.Y + 2}.
		Intersect(rt.g.Bounds())
	rt.rescanBlockedVias(vl, area)
}

// rescanBlockedVias recomputes blockVia within the given area of one
// via layer: an unused site is blocked when inserting a via there
// would create an FVP (Fig 10).
func (rt *Router) rescanBlockedVias(vl int, area geom.Rect) {
	lv := rt.g.Vias[vl]
	for y := area.MinY; y <= area.MaxY; y++ {
		for x := area.MinX; x <= area.MaxX; x++ {
			p := geom.XY(x, y)
			pi := rt.g.PIdx(p)
			if lv.Has(p) {
				rt.blockVia[vl][pi] = false // occupied sites are priced, not blocked
				continue
			}
			rt.blockVia[vl][pi] = lv.WouldCreateFVP(p)
		}
	}
}
