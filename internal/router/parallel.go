package router

import "sync"

// parallelRows splits the inclusive row range [y0, y1] into up to
// workers contiguous bands and runs fn(r0, r1) on each concurrently
// (inclusive band bounds). fn must confine its writes to rows of its
// own band; bands are disjoint, so any worker count produces the state
// a serial scan would. workers ≤ 1 runs fn inline.
func parallelRows(y0, y1, workers int, fn func(r0, r1 int)) {
	rows := y1 - y0 + 1
	if rows <= 0 {
		return
	}
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		fn(y0, y1)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		r0 := y0 + rows*w/workers
		r1 := y0 + rows*(w+1)/workers - 1
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			fn(r0, r1)
		}(r0, r1)
	}
	wg.Wait()
}
