package router

import (
	"testing"

	"repro/internal/coloring"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tpl"
)

// The benchmarks of the paper use two routing layers (metal 2/3 with
// one via layer), but the library is generic in layer count: preferred
// directions alternate, each via layer gets its own TPL decomposition
// graph, and stacked vias (Fig 6(b)) appear naturally. These tests
// exercise the 3- and 4-layer configurations.

func multiLayerNetlist(layers int) *netlist.Netlist {
	nl := randomNetlist("ml", 28, 28, 30, 19)
	nl.NumLayers = layers
	return nl
}

func TestThreeLayerRouting(t *testing.T) {
	nl := multiLayerNetlist(3)
	for _, typ := range []coloring.SADPType{coloring.SIM, coloring.SID} {
		cfg := Config{Scheme: coloring.Scheme{Type: typ}, ConsiderDVI: true, ConsiderTPL: true}
		rt := route(t, nl, cfg)
		checkSolution(t, rt, nl)
		if len(rt.Grid().Vias) != 2 {
			t.Fatalf("expected 2 via layers, got %d", len(rt.Grid().Vias))
		}
	}
}

func TestFourLayerRouting(t *testing.T) {
	nl := multiLayerNetlist(4)
	cfg := Config{Scheme: coloring.Scheme{Type: coloring.SIM}, ConsiderTPL: true}
	rt := route(t, nl, cfg)
	checkSolution(t, rt, nl)
	// Preferred directions must alternate across all four layers.
	g := rt.Grid()
	for l := 0; l < 4; l++ {
		if g.PrefHorizontal(l) != (l%2 == 0) {
			t.Errorf("layer %d preferred direction wrong", l)
		}
	}
}

// A stacked via (metal 2 to metal 4) occupies the same site on two via
// layers; each via layer's TPL graph treats them independently.
func TestStackedViasIndependentPerLayer(t *testing.T) {
	nl := &netlist.Netlist{Name: "stack", W: 16, H: 16, NumLayers: 3, Nets: []*netlist.Net{
		{ID: 0, Name: "a", Pins: []geom.Pt{geom.XY(2, 2), geom.XY(12, 12)}},
		{ID: 1, Name: "b", Pins: []geom.Pt{geom.XY(2, 12), geom.XY(12, 2)}},
	}}
	rt := route(t, nl, Config{Scheme: coloring.Scheme{Type: coloring.SIM}, ConsiderTPL: true})
	checkSolution(t, rt, nl)
	g := rt.Grid()
	for vl, lv := range g.Vias {
		gr := tpl.FromLayer(lv)
		if _, unc := gr.WelshPowell(tpl.NumColors); len(unc) != 0 {
			t.Errorf("via layer %d uncolorable", vl)
		}
	}
}

func TestMultiLayerWirelengthNotWorse(t *testing.T) {
	// Extra layers add capacity: wirelength with 3 layers must not
	// blow up compared to 2 layers on the same netlist.
	nl2 := multiLayerNetlist(2)
	nl3 := multiLayerNetlist(3)
	r2 := route(t, nl2, Config{Scheme: coloring.Scheme{Type: coloring.SIM}})
	r3 := route(t, nl3, Config{Scheme: coloring.Scheme{Type: coloring.SIM}})
	if float64(r3.Stats().Wirelength) > 1.3*float64(r2.Stats().Wirelength) {
		t.Errorf("3-layer WL %d much worse than 2-layer %d",
			r3.Stats().Wirelength, r2.Stats().Wirelength)
	}
}
