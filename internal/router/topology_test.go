package router

import (
	"testing"

	"repro/internal/coloring"
	"repro/internal/geom"
	"repro/internal/netlist"
)

// multiPinNetlist builds a deterministic netlist whose nets all have
// k ∈ [3, 5] pins, so every net exercises the topology generator.
func multiPinNetlist(name string, w, h, nets int, seed int64) *netlist.Netlist {
	nl := randomNetlist(name, w, h, nets, seed)
	// randomNetlist already emits 2-4 pins; bump the 2-pin nets by
	// borrowing a free cell near their bbox so every net has ≥ 3.
	used := map[geom.Pt]bool{}
	for _, n := range nl.Nets {
		for _, p := range n.Pins {
			used[p] = true
		}
	}
	for _, n := range nl.Nets {
		for len(n.Pins) < 3 {
			b := geom.BoundingRect(n.Pins)
			added := false
			for y := b.MinY; y <= b.MaxY && !added; y++ {
				for x := b.MinX; x <= b.MaxX && !added; x++ {
					p := geom.XY(x, y)
					if !used[p] {
						used[p] = true
						n.Pins = append(n.Pins, p)
						added = true
					}
				}
			}
			if !added {
				// Bbox full; scan the whole grid deterministically.
				for y := 0; y < h && !added; y++ {
					for x := 0; x < w && !added; x++ {
						p := geom.XY(x, y)
						if !used[p] {
							used[p] = true
							n.Pins = append(n.Pins, p)
							added = true
						}
					}
				}
			}
		}
	}
	return nl
}

// TestSteinerTopologyFullFlow: k-pin nets under the full flow (DVI +
// TPL consideration) satisfy every hard invariant, and the Steiner
// generator actually drove the decomposition.
func TestSteinerTopologyFullFlow(t *testing.T) {
	for _, seed := range []int64{1, 7, 13} {
		nl := multiPinNetlist("steiner", 30, 30, 24, seed)
		rt := route(t, nl, Config{
			Scheme:      coloring.Scheme{Type: coloring.SIM},
			ConsiderDVI: true, ConsiderTPL: true,
			Seed: seed,
		})
		checkSolution(t, rt, nl)
		if rt.Stats().SteinerNets == 0 {
			t.Fatalf("seed %d: no net used the Steiner topology", seed)
		}
	}
}

// TestStarTopologyFullFlow: the legacy greedy order stays a working,
// verifiable configuration (it is the in-router fallback).
func TestStarTopologyFullFlow(t *testing.T) {
	nl := multiPinNetlist("star", 30, 30, 24, 7)
	rt := route(t, nl, Config{
		Scheme:      coloring.Scheme{Type: coloring.SIM},
		ConsiderDVI: true, ConsiderTPL: true,
		Topology: StarTopology,
		Seed:     7,
	})
	checkSolution(t, rt, nl)
	if n := rt.Stats().SteinerNets; n != 0 {
		t.Fatalf("star topology built %d Steiner decompositions", n)
	}
}

// TestSteinerWirelengthCompetitive: across the seeds, the Steiner
// decomposition never loses to the greedy star order in total
// wirelength by more than a sliver, and wins somewhere. (Fixed seeds —
// the comparison is exact and reproducible, not statistical.)
func TestSteinerWirelengthCompetitive(t *testing.T) {
	wins := 0
	for _, seed := range []int64{1, 7, 13, 19} {
		nl := multiPinNetlist("wl", 30, 30, 24, seed)
		cfg := Config{
			Scheme:      coloring.Scheme{Type: coloring.SIM},
			ConsiderDVI: true, ConsiderTPL: true, Seed: seed,
		}
		st := route(t, nl, cfg)
		cfg.Topology = StarTopology
		gr := route(t, nl, cfg)
		sw, gw := st.Stats().Wirelength, gr.Stats().Wirelength
		t.Logf("seed %d: steiner WL %d, star WL %d", seed, sw, gw)
		if sw < gw {
			wins++
		}
		if sw > gw+gw/10 {
			t.Fatalf("seed %d: steiner WL %d much worse than star %d", seed, sw, gw)
		}
	}
	if wins == 0 {
		t.Fatal("steiner topology never beat the star order on any seed")
	}
}

// TestTopologyCachedAcrossRipUp: rip-up/reroute cycles keep the net's
// decomposition — the cached tree is reused, not rebuilt, so the tree
// shape survives congestion negotiation.
func TestTopologyCachedAcrossRipUp(t *testing.T) {
	nl := multiPinNetlist("cache", 30, 30, 24, 13)
	rt := route(t, nl, Config{
		Scheme:      coloring.Scheme{Type: coloring.SIM},
		ConsiderDVI: true, ConsiderTPL: true,
		Seed: 13,
	})
	for id, n := range nl.Nets {
		if len(n.Pins) < 3 {
			continue
		}
		tree := rt.topos[id]
		if tree == nil {
			t.Fatalf("net %d (%d pins) has no cached topology", id, len(n.Pins))
		}
		if tree == fallbackTopo {
			continue
		}
		// Rip and reroute: the cache must hand back the same tree.
		rt.ripUp(int32(id))
		before := tree
		if err := rt.reroute(int32(id)); err != nil {
			t.Fatalf("reroute net %d: %v", id, err)
		}
		if rt.topos[id] != before {
			t.Fatalf("net %d: topology rebuilt across rip-up", id)
		}
		var pins []geom.Pt3
		for _, p := range n.Pins {
			pins = append(pins, geom.XYL(p.X, p.Y, 0))
		}
		if !rt.Routes()[id].Connected(pins) {
			t.Fatalf("net %d disconnected after cached reroute", id)
		}
	}
}

// TestFallbackSentinelRoutesGreedy: a net marked with the fallback
// sentinel routes with the greedy order and still connects every pin.
func TestFallbackSentinelRoutesGreedy(t *testing.T) {
	nl := multiPinNetlist("fb", 24, 24, 10, 19)
	rt, err := New(nl, Config{Scheme: coloring.Scheme{Type: coloring.SIM}, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	for id := range nl.Nets {
		rt.topos[id] = fallbackTopo
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if n := rt.Stats().SteinerNets; n != 0 {
		t.Fatalf("fallback nets counted as Steiner nets: %d", n)
	}
	for id, n := range nl.Nets {
		var pins []geom.Pt3
		for _, p := range n.Pins {
			pins = append(pins, geom.XYL(p.X, p.Y, 0))
		}
		if !rt.Routes()[id].Connected(pins) {
			t.Fatalf("net %d disconnected under greedy fallback", id)
		}
	}
}

// TestSteinerOwnerExclusive: no two nets claim the same Steiner cell,
// and no claimed cell sits on a foreign pin.
func TestSteinerOwnerExclusive(t *testing.T) {
	nl := multiPinNetlist("own", 30, 30, 24, 1)
	rt := route(t, nl, Config{Scheme: coloring.Scheme{Type: coloring.SIM}, Seed: 1})
	for id, tree := range rt.topos {
		if tree == nil || tree == fallbackTopo {
			continue
		}
		for _, s := range tree.Steiner {
			if o := rt.steinerOwner[s]; o != int32(id)+1 {
				t.Fatalf("net %d steiner point %v owned by %d", id, s, o-1)
			}
			if o := rt.pinOwner[s.Y*nl.W+s.X]; o != 0 && o != int32(id)+1 {
				t.Fatalf("net %d steiner point %v sits on net %d's pin", id, s, o-1)
			}
		}
	}
}

// TestTopologyDeterministic: two independent routers over the same
// netlist produce identical topologies and identical geometry.
func TestTopologyDeterministic(t *testing.T) {
	nl := multiPinNetlist("det", 30, 30, 24, 7)
	cfg := Config{
		Scheme:      coloring.Scheme{Type: coloring.SIM},
		ConsiderDVI: true, ConsiderTPL: true,
		Seed: 7,
	}
	a, b := route(t, nl, cfg), route(t, nl, cfg)
	for id := range nl.Nets {
		ta, tb := a.topos[id], b.topos[id]
		if (ta == nil) != (tb == nil) {
			t.Fatalf("net %d: topology presence differs", id)
		}
		if ta == nil {
			continue
		}
		if len(ta.Segs) != len(tb.Segs) {
			t.Fatalf("net %d: segment counts differ", id)
		}
		for i := range ta.Segs {
			if ta.Segs[i] != tb.Segs[i] {
				t.Fatalf("net %d seg %d: %v vs %v", id, i, ta.Segs[i], tb.Segs[i])
			}
		}
		pa, pb := a.Routes()[id].PointList(), b.Routes()[id].PointList()
		if len(pa) != len(pb) {
			t.Fatalf("net %d: geometry differs", id)
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("net %d point %d: %v vs %v", id, i, pa[i], pb[i])
			}
		}
	}
}
