package router

// Arena recycling must be invisible in the output: a router rebuilt
// from recycled memory produces bit-identical stats and geometry to a
// freshly allocated one, across netlist changes, scheme changes, seed
// changes and net-count changes on the same grid shape.

import (
	"testing"

	"repro/internal/coloring"
	"repro/internal/netlist"
)

type arenaCase struct {
	nl   *netlist.Netlist
	cfg  Config
	name string
}

func runFresh(t *testing.T, c arenaCase) *Router {
	t.Helper()
	return route(t, c.nl, c.cfg)
}

func runArena(t *testing.T, a *Arena, c arenaCase) *Router {
	t.Helper()
	cfg := c.cfg
	cfg.Arena = a
	rt, err := New(c.nl, cfg)
	if err != nil {
		t.Fatalf("%s: %v", c.name, err)
	}
	if err := rt.Run(); err != nil {
		t.Fatalf("%s: %v", c.name, err)
	}
	return rt
}

func sameSolution(t *testing.T, name string, a, b *Router) {
	t.Helper()
	if a.Stats() != b.Stats() {
		t.Fatalf("%s: stats differ:\nfresh: %+v\narena: %+v", name, a.Stats(), b.Stats())
	}
	ra, rb := a.Routes(), b.Routes()
	if len(ra) != len(rb) {
		t.Fatalf("%s: route counts differ: %d vs %d", name, len(ra), len(rb))
	}
	for id := range ra {
		pa, pb := ra[id].PointList(), rb[id].PointList()
		if len(pa) != len(pb) {
			t.Fatalf("%s net %d: point counts differ: %d vs %d", name, id, len(pa), len(pb))
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("%s net %d: point %d differs: %v vs %v", name, id, i, pa[i], pb[i])
			}
		}
		va, vb := ra[id].ViaList(), rb[id].ViaList()
		if len(va) != len(vb) {
			t.Fatalf("%s net %d: via counts differ: %d vs %d", name, id, len(va), len(vb))
		}
		for i := range va {
			if va[i] != vb[i] {
				t.Fatalf("%s net %d: via %d differs: %v vs %v", name, id, i, va[i], vb[i])
			}
		}
	}
}

// TestArenaBitIdentical runs a varied job sequence twice — fresh
// routers vs one recycled arena — and demands identical output at
// every step. The sequence changes netlists, schemes, seeds and net
// counts on a matching grid shape, plus one mismatched shape (which
// silently falls back to fresh allocation).
func TestArenaBitIdentical(t *testing.T) {
	sim := coloring.Scheme{Type: coloring.SIM}
	sid := coloring.Scheme{Type: coloring.SID}
	full := func(s coloring.Scheme, seed int64) Config {
		return Config{Scheme: s, ConsiderDVI: true, ConsiderTPL: true, Seed: seed}
	}
	cases := []arenaCase{
		{randomNetlist("a", 26, 26, 34, 3), full(sim, 3), "sim-seed3"},
		{randomNetlist("b", 26, 26, 34, 8), full(sim, 8), "new-netlist"},
		{randomNetlist("b", 26, 26, 34, 8), full(sid, 8), "scheme-flip"},
		{randomNetlist("c", 26, 26, 20, 5), full(sim, 5), "fewer-nets"},
		{randomNetlist("d", 18, 31, 25, 7), full(sim, 7), "shape-mismatch"},
		{randomNetlist("e", 26, 26, 40, 11), full(sim, 11), "more-nets"},
		{randomNetlist("a", 26, 26, 34, 3), full(sim, 4), "seed-change"},
	}
	arena := NewArena()
	for _, c := range cases {
		fresh := runFresh(t, c)
		recycled := runArena(t, arena, c)
		sameSolution(t, c.name, fresh, recycled)
		checkSolution(t, recycled, c.nl)
		arena.Release(recycled)
	}
}

// TestArenaShapeMismatchKeepsStored verifies the arena holds onto a
// stored router across mismatched takes instead of dropping it.
func TestArenaShapeMismatchKeepsStored(t *testing.T) {
	sim := coloring.Scheme{Type: coloring.SIM}
	nlA := randomNetlist("keep-a", 20, 20, 12, 1)
	nlB := randomNetlist("keep-b", 24, 16, 12, 1)
	arena := NewArena()
	rtA := runArena(t, arena, arenaCase{nlA, Config{Scheme: sim, Seed: 1}, "fill"})
	arena.Release(rtA)
	if got := arena.take(nlB); got != nil {
		t.Fatal("mismatched shape handed out recycled memory")
	}
	if got := arena.take(nlA); got != rtA {
		t.Fatal("matching take did not return the stored router after a mismatch")
	}
}
