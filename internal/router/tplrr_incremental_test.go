package router

// Equivalence tests for the incremental TPL rip-up bookkeeping: at
// every iteration of removeTPLViolations the via-driven/incremental
// state (blockVia, the fvps violation map, the overflow sets behind
// Congestions) must match full from-scratch rescans, and every
// congestion-free intermediate solution must pass the independent
// verifier. This keeps the incremental state honest — a drift would
// silently change routing results long before it broke a final check.

import (
	"testing"

	"repro/internal/coloring"
	"repro/internal/geom"
	"repro/internal/verify"
)

// crossCheckTPLState compares the incremental TPL bookkeeping against
// whole-grid reference scans.
func crossCheckTPLState(t *testing.T, rt *Router, iter int, fvps map[fvpKey]bool) {
	t.Helper()
	g := rt.Grid()
	// blockVia must equal a from-scratch recomputation everywhere:
	// occupied sites unblocked, empty sites blocked exactly when a via
	// there would create an FVP.
	for vl, lv := range g.Vias {
		for y := 0; y < g.H; y++ {
			for x := 0; x < g.W; x++ {
				p := geom.XY(x, y)
				want := !lv.Has(p) && lv.WouldCreateFVP(p)
				if got := rt.blockVia[vl][y*g.W+x]; got != want {
					t.Fatalf("iter %d: blockVia[%d] at %v = %v, full rescan says %v", iter, vl, p, got, want)
				}
			}
		}
	}
	// The fvps map may hold stale entries (they are dropped lazily at
	// pick time), but it must never miss a live FVP: superset of the
	// full scan.
	for vl, lv := range g.Vias {
		for _, o := range lv.AllFVPs() {
			if !fvps[fvpKey{vl, o}] {
				t.Fatalf("iter %d: FVP at %v layer %d missing from incremental set", iter, o, vl)
			}
		}
	}
	// Congestions (incremental overflow sets) must equal the reference
	// whole-grid overflow scan, including order.
	var want []geom.Pt3
	for l, occ := range g.Metal {
		occ.Overflows(func(p geom.Pt) {
			want = append(want, geom.XYL(p.X, p.Y, l))
		})
	}
	got := g.Congestions()
	if len(got) != len(want) {
		t.Fatalf("iter %d: Congestions returned %d points, reference scan %d", iter, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("iter %d: congestion %d is %v, reference scan says %v", iter, i, got[i], want[i])
		}
	}
}

// TestTPLIncrementalMatchesFullRescan routes seeded stress circuits
// with the per-iteration debug hook installed, cross-checking the
// incremental state against full rescans and running the independent
// verifier on every congestion-free intermediate solution.
func TestTPLIncrementalMatchesFullRescan(t *testing.T) {
	totalWork := 0
	for _, seed := range []int64{1, 5, 17, 33} {
		nl := randomNetlist("tplinc", 30, 30, 46, seed)
		rt, err := New(nl, Config{
			Scheme:      coloring.Scheme{Type: coloring.SIM},
			ConsiderDVI: true, ConsiderTPL: true,
			Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		iters := 0
		rt.debugTPLIter = func(iter int, fvps map[fvpKey]bool) {
			iters++
			crossCheckTPLState(t, rt, iter, fvps)
			// Every congestion-free intermediate state is a complete
			// (if not yet FVP-free) solution; the independent verifier
			// must accept its geometry and SADP turn legality.
			if g := rt.Grid(); len(g.Congestions()) == 0 {
				rep := verify.Routing(nl, rt.Routes(), verify.Options{SADP: coloring.SIM})
				if err := rep.Err(); err != nil {
					t.Fatalf("seed %d iter %d: verifier rejected intermediate solution: %v", seed, iter, err)
				}
			}
		}
		if err := rt.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if iters == 0 {
			t.Fatalf("seed %d: TPL iteration hook never fired", seed)
		}
		checkSolution(t, rt, nl)
		totalWork += rt.Stats().FVPsResolved + rt.Stats().RRIterations
	}
	if totalWork == 0 {
		t.Fatal("stress circuits produced no TPL work; the cross-checks never exercised a dirty state")
	}
}

// TestTPLInitViaDriven checks the via-driven initializer directly on
// re-entry: after a full routing run the grid carries arbitrary via
// patterns, and initBlockedVias must reproduce the whole-grid rescan
// exactly — for every worker count, since the row bands share the
// stamp array.
func TestTPLInitViaDriven(t *testing.T) {
	nl := randomNetlist("tplinit", 26, 26, 36, 9)
	rt := route(t, nl, Config{
		Scheme:      coloring.Scheme{Type: coloring.SIM},
		ConsiderDVI: true, ConsiderTPL: true,
		Seed: 9,
	})
	g := rt.Grid()
	for vl := range g.Vias {
		// Reference: full-area rescan.
		rt.rescanBlockedVias(vl, g.Bounds())
		want := append([]bool(nil), rt.blockVia[vl]...)
		for _, workers := range []int{1, 2, 3, 8} {
			// Poison the array where vias justify a block, then re-init.
			for i := range rt.blockVia[vl] {
				rt.blockVia[vl][i] = false
			}
			rt.cfg.Workers = workers
			rt.initBlockedVias(vl)
			for i := range want {
				if rt.blockVia[vl][i] != want[i] {
					t.Fatalf("layer %d workers %d: blockVia[%d] = %v, rescan says %v",
						vl, workers, i, rt.blockVia[vl][i], want[i])
				}
			}
		}
	}
}
