package router

// Allocation ceilings for the //sadplint:hotpath families. hotalloc
// proves the code *shape* cannot allocate per iteration; these tests
// pin the *measured* behavior so a regression that sneaks past the
// static analyzer (a stdlib change, an interface conversion behind a
// helper) still fails CI. Ceilings are deliberately loose — they catch
// order-of-magnitude regressions, not single stray allocations.

import (
	"testing"

	"repro/internal/coloring"
)

// TestBucketQueueSteadyStateAllocs: after the ring has grown to cover
// the key span, push/pop cycles must be allocation-free.
func TestBucketQueueSteadyStateAllocs(t *testing.T) {
	var q bucketQueue
	q.init(8)
	// Warm up: force growth past the largest key delta used below.
	for i := int64(0); i < 512; i++ {
		q.push(pqItem{f: i, id: int32(i)})
	}
	for q.n > 0 {
		q.pop()
	}
	base := int64(512)
	avg := testing.AllocsPerRun(200, func() {
		for i := int64(0); i < 64; i++ {
			q.push(pqItem{f: base + i, id: int32(i)})
		}
		for q.n > 0 {
			base = q.pop().f
		}
	})
	if avg != 0 {
		t.Errorf("bucket queue steady-state push/pop allocates %.1f per cycle, want 0", avg)
	}
}

// TestHeapSteadyStateAllocs: the legacy heap backend is still the
// fallback for non-monotone phases; its steady state must be free too.
func TestHeapSteadyStateAllocs(t *testing.T) {
	var s searchScratch
	for i := int64(0); i < 512; i++ {
		s.hPush(pqItem{f: i, id: int32(i)})
	}
	for len(s.heap) > 0 {
		s.hPop()
	}
	avg := testing.AllocsPerRun(200, func() {
		for i := int64(0); i < 64; i++ {
			s.hPush(pqItem{f: i, id: int32(i)})
		}
		for len(s.heap) > 0 {
			s.hPop()
		}
	})
	if avg != 0 {
		t.Errorf("heap steady-state push/pop allocates %.1f per cycle, want 0", avg)
	}
}

// TestArenaJobAllocs pins the whole-job ceiling: a full route on a
// warmed arena — the search steps, the TPL rip-up-and-recolor loop and
// the via victim scans — must stay within a small constant allocation
// budget. This 34-net DVI+TPL job measures a stable 328 allocs warm
// (the tiny-suite flow in internal/bench measures ~47); the ceiling
// leaves slack for toolchain noise, not for a regression of the arena
// or the hotpath buffers.
func TestArenaJobAllocs(t *testing.T) {
	nl := randomNetlist("alloc", 26, 26, 34, 3)
	cfg := Config{Scheme: coloring.Scheme{Type: coloring.SIM}, ConsiderDVI: true, ConsiderTPL: true, Seed: 3}
	cfg.Arena = NewArena()
	// Two warm-up jobs: the first sizes the arena, the second settles
	// lazily grown scratch (victim buffers, via lists). Each router is
	// released back, as the service worker loop does.
	for i := 0; i < 2; i++ {
		rt, err := New(nl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		cfg.Arena.Release(rt)
	}
	avg := testing.AllocsPerRun(5, func() {
		rt, err := New(nl, cfg)
		if err != nil {
			panic(err)
		}
		if err := rt.Run(); err != nil {
			panic(err)
		}
		cfg.Arena.Release(rt)
	})
	const ceiling = 500
	if avg > ceiling {
		t.Errorf("arena-recycled routing job allocates %.1f, ceiling %d", avg, ceiling)
	}
}
