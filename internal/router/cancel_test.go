package router

import (
	"errors"
	"testing"

	"repro/internal/coloring"
)

// A pre-closed cancel channel must abort the run with ErrCanceled
// before any net is routed.
func TestCancelBeforeRun(t *testing.T) {
	nl := randomNetlist("cancel", 40, 40, 30, 7)
	done := make(chan struct{})
	close(done)
	rt, err := New(nl, Config{
		Scheme:      coloring.Scheme{Type: coloring.SIM},
		ConsiderDVI: true,
		ConsiderTPL: true,
		Cancel:      done,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Run with closed Cancel: got %v, want ErrCanceled", err)
	}
	if rt.Stats().Wirelength != 0 {
		t.Fatalf("canceled run produced wirelength %d", rt.Stats().Wirelength)
	}
}

// A nil (or never-closed) cancel channel must not change the routing
// result: the channel is polled, never scheduled on.
func TestCancelChannelInertWhenOpen(t *testing.T) {
	run := func(cancel <-chan struct{}) Stats {
		nl := randomNetlist("inert", 40, 40, 30, 7)
		rt, err := New(nl, Config{
			Scheme:      coloring.Scheme{Type: coloring.SIM},
			ConsiderDVI: true,
			ConsiderTPL: true,
			Cancel:      cancel,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		return rt.Stats()
	}
	base := run(nil)
	withChan := run(make(chan struct{}))
	if base != withChan {
		t.Fatalf("open cancel channel changed stats: %+v vs %+v", base, withChan)
	}
}
