package router

import (
	"repro/internal/dvi"
	"repro/internal/grid"
	"repro/internal/netlist"
	"repro/internal/steiner"
)

// Arena recycles one router's memory across runs. A long-running
// service routes one job after another on the same worker; without
// recycling, every job re-allocates the full per-grid state (occupancy
// cells, cost and price arrays, search scratch, route objects), all of
// it short-lived garbage. An arena keeps the previous run's router and
// New rebinds it in place when the grid shape matches, so steady-state
// routing allocates close to nothing.
//
// Usage: pass the arena in Config.Arena, run the router, and call
// Release once the routes and grid are no longer referenced. Routing
// output is bit-identical with or without an arena — recycled memory
// is cleared or epoch-invalidated before reuse, and nothing the search
// reads survives a rebind.
//
// An Arena is single-owner state (one per worker goroutine); it is not
// safe for concurrent use.
type Arena struct {
	rt *Router
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Release hands a finished router's memory back to the arena. The
// caller must be completely done with the router, its routes and its
// grid: the next New with this arena overwrites them in place.
// Nil-safe on both the arena and the router.
func (a *Arena) Release(rt *Router) {
	if a == nil || rt == nil {
		return
	}
	a.rt = rt
}

// take removes and returns a recyclable router matching the netlist's
// grid shape, or nil. On a shape mismatch the stored router is kept
// for a later matching run.
func (a *Arena) take(nl *netlist.Netlist) *Router {
	if a == nil || a.rt == nil {
		return nil
	}
	rt := a.rt
	if rt.nl.W != nl.W || rt.nl.H != nl.H || rt.nl.NumLayers != nl.NumLayers {
		return nil
	}
	a.rt = nil
	return rt
}

// reinit rebinds a recycled router to a new netlist and config,
// reusing every allocation of its previous life. The grid shape must
// match (take guarantees it). Monotonic epochs — the search scratch's
// visit stamps and the TPL scan stamps — carry over instead of being
// zeroed: they are bumped before every use, so stale stamps can never
// match a new epoch.
func (rt *Router) reinit(nl *netlist.Netlist, cfg Config) {
	// Recycle the previous solution's Route objects first: their path
	// and cache storage feeds the new run's spare pool.
	for i, r := range rt.routes {
		if r != nil {
			r.Reset()
			rt.spareRoutes = append(rt.spareRoutes, r)
			rt.routes[i] = nil
		}
	}
	rt.cfg = cfg
	rt.nl = nl
	rt.g.Clear(cfg.Scheme)
	rt.noAStar = !cfg.GoalDirected
	rt.routes = resizeRoutes(rt.routes, len(nl.Nets))
	rt.ledgers = resizeLedgers(rt.ledgers, len(nl.Nets))
	rt.feas = dvi.Feasibility{G: rt.g}
	rt.rng.Seed(cfg.Seed + 1)
	rt.presFac = cfg.Params.UsagePenalty * CostScale
	rt.minViaCost = 0
	if cfg.Params.ViaCost > 0 {
		rt.minViaCost = cfg.Params.ViaCost * CostScale
	}
	rt.turnTab = buildTurnTab(cfg.Scheme, cfg.Params.NonPrefTurnCost*CostScale)
	clear(rt.pinOwner)
	for _, n := range nl.Nets {
		for _, p := range n.Pins {
			rt.pinOwner[p.Y*nl.W+p.X] = int32(n.ID) + 1
		}
	}
	rt.topos = resizeTopos(rt.topos, len(nl.Nets))
	clear(rt.steinerOwner)
	for l := range rt.metalCost {
		clear(rt.metalCost[l])
		clear(rt.histMetal[l])
		clear(rt.metalPrice[l])
	}
	for v := range rt.viaCost {
		clear(rt.viaCost[v])
		clear(rt.viaConf[v])
		clear(rt.histVia[v])
		clear(rt.blockVia[v])
		clear(rt.viaPrice[v])
	}
	rt.ignoreBlocks = false
	rt.stats = Stats{}
	rt.debugLog, rt.debugVictim, rt.debugTPLIter = nil, nil, nil
	rt.search.useHeap = cfg.Queue == HeapQueue
	rt.search.bq.init(initialBucketSpan(cfg.Params))
}

// resizeTopos returns a nil-filled topology slice of length n, reusing
// the old backing array when it is large enough. Topologies are pure
// values of the previous netlist; none survive a rebind.
func resizeTopos(s []*steiner.Tree, n int) []*steiner.Tree {
	if cap(s) < n {
		return make([]*steiner.Tree, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// resizeRoutes returns a nil-filled route slice of length n, reusing
// the old backing array when it is large enough.
func resizeRoutes(s []*grid.Route, n int) []*grid.Route {
	if cap(s) < n {
		return make([]*grid.Route, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// resizeLedgers returns a ledger slice of length n with every ledger
// emptied, retaining per-net entry storage where the old slice had it.
func resizeLedgers(s []ledger, n int) []ledger {
	if cap(s) < n {
		ns := make([]ledger, n)
		copy(ns, s) // keep the entry storage the prefix had grown
		s = ns
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = s[i][:0]
	}
	return s
}
