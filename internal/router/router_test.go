package router

import (
	"math/rand"
	"testing"

	"repro/internal/coloring"
	"repro/internal/geom"
	"repro/internal/netlist"
)

// randomNetlist builds a deterministic random netlist with locality:
// pins of one net cluster in a window, like placed standard cells.
func randomNetlist(name string, w, h, nets int, seed int64) *netlist.Netlist {
	rng := rand.New(rand.NewSource(seed))
	nl := &netlist.Netlist{Name: name, W: w, H: h, NumLayers: 2}
	used := map[geom.Pt]bool{} // pins are globally distinct, as in real placements
	for i := 0; i < nets; i++ {
		n := &netlist.Net{ID: i, Name: name + "-n" + itoa(i)}
		cx, cy := rng.Intn(w), rng.Intn(h)
		span := 3 + rng.Intn(8)
		pins := 2 + rng.Intn(3)
		for tries := 0; len(n.Pins) < pins && tries < 1000; tries++ {
			p := geom.XY(clamp(cx+rng.Intn(2*span)-span, 0, w-1), clamp(cy+rng.Intn(2*span)-span, 0, h-1))
			if !used[p] {
				used[p] = true
				n.Pins = append(n.Pins, p)
			}
		}
		nl.Nets = append(nl.Nets, n)
	}
	return nl
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// checkSolution verifies the hard invariants of a routing solution.
func checkSolution(t *testing.T, rt *Router, nl *netlist.Netlist) {
	t.Helper()
	g := rt.Grid()
	// 1. Every net routed and connected to all its pins.
	for i, n := range nl.Nets {
		r := rt.Routes()[i]
		if r == nil || r.Empty() {
			t.Fatalf("net %q unrouted", n.Name)
		}
		var pins []geom.Pt3
		for _, p := range n.Pins {
			pins = append(pins, geom.XYL(p.X, p.Y, 0))
		}
		if !r.Connected(pins) {
			t.Fatalf("net %q not connected to all pins", n.Name)
		}
	}
	// 2. Congestion-free.
	if cong := g.Congestions(); len(cong) != 0 {
		t.Fatalf("%d congested points remain, e.g. %v", len(cong), cong[0])
	}
	// 3. No forbidden turns anywhere.
	scheme := rt.cfg.Scheme
	for i, r := range rt.Routes() {
		for _, p := range r.PointList() {
			dirs := r.MetalDirs(p)
			for a := 0; a < len(dirs); a++ {
				for b := a + 1; b < len(dirs); b++ {
					c, ok := coloring.CornerOf(dirs[a], dirs[b])
					if !ok {
						continue
					}
					if len(dirs) > 2 {
						continue // T-junctions are not L-turns
					}
					if scheme.Turn(p.Pt2(), c) == coloring.Forbidden {
						t.Fatalf("net %d has forbidden turn at %v (%v)", i, p, c)
					}
				}
			}
		}
	}
	// 4. With TPL consideration: no FVPs and 3-colorable via layers
	// (exact check per component; greedy may be pessimistic).
	if rt.cfg.ConsiderTPL {
		for vl, lv := range g.Vias {
			if lv.HasFVP() {
				t.Fatalf("via layer %d contains an FVP", vl)
			}
		}
		if unc := rt.uncolorableVias(); len(unc) != 0 {
			t.Fatalf("%d uncolorable vias: %v", len(unc), unc)
		}
	}
	// 5. Stats agree with the routes.
	st := rt.Stats()
	if st.Routability != 1.0 {
		t.Fatalf("routability %v", st.Routability)
	}
	wl, vias := 0, 0
	for _, r := range rt.Routes() {
		wl += r.Wirelength()
		vias += r.NumVias()
	}
	if st.Wirelength != wl || st.Vias != vias {
		t.Fatalf("stats mismatch: %d/%d vs %d/%d", st.Wirelength, st.Vias, wl, vias)
	}
}

func route(t *testing.T, nl *netlist.Netlist, cfg Config) *Router {
	t.Helper()
	rt, err := New(nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestRouteSingleNet(t *testing.T) {
	nl := &netlist.Netlist{Name: "one", W: 16, H: 16, NumLayers: 2, Nets: []*netlist.Net{
		{ID: 0, Name: "a", Pins: []geom.Pt{geom.XY(2, 2), geom.XY(10, 9)}},
	}}
	rt := route(t, nl, Config{Scheme: coloring.Scheme{Type: coloring.SIM}})
	checkSolution(t, rt, nl)
	r := rt.Routes()[0]
	// Manhattan lower bound: |dx|+|dy| = 15.
	if r.Wirelength() < 15 {
		t.Errorf("wirelength %d below Manhattan bound", r.Wirelength())
	}
	if r.Wirelength() > 25 {
		t.Errorf("wirelength %d wildly above bound 15", r.Wirelength())
	}
}

func TestRouteMultiPinNet(t *testing.T) {
	nl := &netlist.Netlist{Name: "multi", W: 20, H: 20, NumLayers: 2, Nets: []*netlist.Net{
		{ID: 0, Name: "a", Pins: []geom.Pt{
			geom.XY(2, 2), geom.XY(15, 2), geom.XY(8, 16), geom.XY(3, 12),
		}},
	}}
	rt := route(t, nl, Config{Scheme: coloring.Scheme{Type: coloring.SID}})
	checkSolution(t, rt, nl)
}

func TestCrossingNetsResolveCongestion(t *testing.T) {
	// Two nets whose straight-line routes must cross; they can share
	// no grid point, so at least one via pair or detour is needed.
	nl := &netlist.Netlist{Name: "cross", W: 12, H: 12, NumLayers: 2, Nets: []*netlist.Net{
		{ID: 0, Name: "h", Pins: []geom.Pt{geom.XY(1, 5), geom.XY(10, 5)}},
		{ID: 1, Name: "v", Pins: []geom.Pt{geom.XY(5, 1), geom.XY(5, 10)}},
	}}
	rt := route(t, nl, Config{Scheme: coloring.Scheme{Type: coloring.SIM}})
	checkSolution(t, rt, nl)
}

func TestDensePinCluster(t *testing.T) {
	// Many nets competing in a small area force R&R to work.
	nl := randomNetlist("dense", 24, 24, 30, 7)
	for _, scheme := range []coloring.SADPType{coloring.SIM, coloring.SID} {
		rt := route(t, nl, Config{Scheme: coloring.Scheme{Type: scheme}})
		checkSolution(t, rt, nl)
	}
}

func TestAllFourConfigs(t *testing.T) {
	nl := randomNetlist("cfg", 32, 32, 40, 21)
	for _, dvi := range []bool{false, true} {
		for _, tplOn := range []bool{false, true} {
			cfg := Config{
				Scheme:      coloring.Scheme{Type: coloring.SIM},
				ConsiderDVI: dvi,
				ConsiderTPL: tplOn,
			}
			rt := route(t, nl, cfg)
			checkSolution(t, rt, nl)
		}
	}
}

func TestTPLRemovesAllFVPs(t *testing.T) {
	// Dense enough that the baseline router produces FVPs (the same
	// instance routed without TPL consideration leaves ~22 of them).
	nl := randomNetlist("d", 24, 24, 40, 3)
	cfg := Config{Scheme: coloring.Scheme{Type: coloring.SIM}, ConsiderTPL: true}
	rt := route(t, nl, cfg)
	checkSolution(t, rt, nl)
	for vl, lv := range rt.Grid().Vias {
		if lv.HasFVP() {
			t.Fatalf("FVP remains on layer %d", vl)
		}
	}
}

func TestBaselineMayLeaveTPLViolations(t *testing.T) {
	// The experiment's premise (Tables III/IV, first column): without
	// TPL consideration, a dense instance leaves TPL violations on the
	// via layers.
	nl := randomNetlist("d", 24, 24, 40, 3)
	rt := route(t, nl, Config{Scheme: coloring.Scheme{Type: coloring.SIM}})
	if rt.Stats().Routability != 1 {
		t.Fatal("baseline failed routability")
	}
	fvps := 0
	for _, lv := range rt.Grid().Vias {
		fvps += len(lv.AllFVPs())
	}
	if fvps == 0 {
		t.Error("expected baseline FVPs on this dense instance")
	}
}

func TestDVIConfigKeepsInvariants(t *testing.T) {
	nl := randomNetlist("dvi", 32, 32, 45, 5)
	cfg := Config{
		Scheme:      coloring.Scheme{Type: coloring.SID},
		ConsiderDVI: true,
		ConsiderTPL: true,
	}
	rt := route(t, nl, cfg)
	checkSolution(t, rt, nl)
}

func TestDeterminism(t *testing.T) {
	nl := randomNetlist("det", 24, 24, 25, 13)
	cfg := Config{Scheme: coloring.Scheme{Type: coloring.SIM}, ConsiderDVI: true, ConsiderTPL: true, Seed: 5}
	a := route(t, nl, cfg)
	b := route(t, nl, cfg)
	if a.Stats() != b.Stats() {
		t.Fatalf("same seed, different stats:\n%+v\n%+v", a.Stats(), b.Stats())
	}
}

func TestLedgerRevertExact(t *testing.T) {
	// Routing then ripping every net must return all cost arrays to
	// zero.
	nl := randomNetlist("ledger", 20, 20, 15, 17)
	cfg := Config{Scheme: coloring.Scheme{Type: coloring.SIM}, ConsiderDVI: true, ConsiderTPL: true}
	rt, err := New(nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range nl.Nets {
		rt.ripUp(int32(i))
	}
	for l, arr := range rt.metalCost {
		for pi, v := range arr {
			if v != 0 {
				t.Fatalf("metalCost[%d][%d] = %d after full rip-up", l, pi, v)
			}
		}
	}
	for vl, arr := range rt.viaCost {
		for pi, v := range arr {
			if v != 0 {
				t.Fatalf("viaCost[%d][%d] = %d after full rip-up", vl, pi, v)
			}
		}
	}
	for vl, arr := range rt.viaConf {
		for pi, v := range arr {
			if v != 0 {
				t.Fatalf("viaConf[%d][%d] = %d after full rip-up", vl, pi, v)
			}
		}
	}
	if rt.Grid().TotalVias() != 0 {
		t.Fatal("vias remain after full rip-up")
	}
}

func TestUnroutableNetlistErrors(t *testing.T) {
	// A 1x2 grid cannot route two parallel nets without overlap... use
	// a pathological case: two nets needing the same single column.
	nl := &netlist.Netlist{Name: "tiny", W: 2, H: 2, NumLayers: 2, Nets: []*netlist.Net{
		{ID: 0, Name: "a", Pins: []geom.Pt{geom.XY(0, 0), geom.XY(0, 1)}},
		{ID: 1, Name: "b", Pins: []geom.Pt{geom.XY(0, 0), geom.XY(1, 1)}},
	}}
	rt, err := New(nl, Config{Scheme: coloring.Scheme{Type: coloring.SIM}, MaxRRIters: 20})
	if err != nil {
		t.Fatal(err)
	}
	// Nets share pin (0,0): permanently congested; must error, not
	// hang.
	if err := rt.Run(); err == nil {
		t.Skip("router legalized shared-pin nets; acceptable")
	}
}

func TestInvalidNetlistRejected(t *testing.T) {
	nl := &netlist.Netlist{Name: "bad", W: 0, H: 4, NumLayers: 2}
	if _, err := New(nl, Config{}); err == nil {
		t.Fatal("invalid netlist accepted")
	}
}

func TestStatsOverheadShape(t *testing.T) {
	// The paper's headline overhead claim: considering DVI + TPL costs
	// only a few percent wirelength/vias. Verify the shape loosely on
	// a mid-density instance: overhead below 25%.
	nl := randomNetlist("ovh", 40, 40, 60, 29)
	base := route(t, nl, Config{Scheme: coloring.Scheme{Type: coloring.SIM}})
	full := route(t, nl, Config{Scheme: coloring.Scheme{Type: coloring.SIM}, ConsiderDVI: true, ConsiderTPL: true})
	bw, fw := float64(base.Stats().Wirelength), float64(full.Stats().Wirelength)
	if fw > bw*1.25 {
		t.Errorf("wirelength overhead too large: %v vs %v", fw, bw)
	}
	bv, fv := float64(base.Stats().Vias), float64(full.Stats().Vias)
	if fv > bv*1.35 {
		t.Errorf("via overhead too large: %v vs %v", fv, bv)
	}
}
