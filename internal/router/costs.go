package router

import (
	"repro/internal/dvi"
	"repro/internal/geom"
	"repro/internal/tpl"
)

// The cost assignment scheme (Algorithm 1): after a net is routed,
// penalty costs are added to the routing graph so later nets avoid
// harming DVI feasibility (BDC, AMC, CDC) and via-layer TPL
// decomposability (TPLC). Every addition is recorded in the net's
// ledger so a rip-up can revert exactly what the net contributed, even
// though the amounts depend on surrounding state at the time they were
// computed.

// costKind discriminates ledger entries.
type costKind uint8

const (
	costMetal costKind = iota // metalCost[layer][pidx] += amount
	costVia                   // viaCost[vlayer][pidx] += amount
	costConf                  // viaConf[vlayer][pidx] += amount (TPLC conflict count)
)

type costEntry struct {
	kind   costKind
	layer  int32
	pidx   int32
	amount int64
}

type ledger []costEntry

func (rt *Router) addMetalCost(layer int, p geom.Pt, amount int64, led *ledger) {
	pi := rt.g.PIdx(p)
	rt.metalCost[layer][pi] += amount
	rt.metalPrice[layer][pi] += amount
	*led = append(*led, costEntry{kind: costMetal, layer: int32(layer), pidx: int32(pi), amount: amount})
}

func (rt *Router) addViaCost(vlayer int, p geom.Pt, amount int64, led *ledger) {
	pi := rt.g.PIdx(p)
	rt.viaCost[vlayer][pi] += amount
	rt.viaPrice[vlayer][pi] += amount
	*led = append(*led, costEntry{kind: costVia, layer: int32(vlayer), pidx: int32(pi), amount: amount})
}

func (rt *Router) addViaConf(vlayer int, p geom.Pt, amount int64, led *ledger) {
	pi := rt.g.PIdx(p)
	rt.viaConf[vlayer][pi] += int32(amount)
	rt.viaPrice[vlayer][pi] += amount * rt.cfg.Params.Gamma * CostScale
	*led = append(*led, costEntry{kind: costConf, layer: int32(vlayer), pidx: int32(pi), amount: amount})
}

// bumpHistMetal raises a metal point's negotiated-congestion history.
// History is intentionally never reverted by rip-ups, so it has no
// ledger entry; the folded price moves with it.
func (rt *Router) bumpHistMetal(layer int, pi int, amount int64) {
	rt.histMetal[layer][pi] += amount
	rt.metalPrice[layer][pi] += amount
}

// bumpHistVia raises a via site's history, keeping the fold current.
func (rt *Router) bumpHistVia(vlayer int, pi int, amount int64) {
	rt.histVia[vlayer][pi] += amount
	rt.viaPrice[vlayer][pi] += amount
}

// applyNetCosts runs Algorithm 1 for a freshly routed net, building its
// ledger.
func (rt *Router) applyNetCosts(id int32) {
	r := rt.routes[id]
	if r == nil || r.Empty() {
		return
	}
	led := &rt.ledgers[id]
	P := rt.cfg.Params

	if rt.cfg.ConsiderDVI {
		// BDC and CDC around each of the net's vias. Vias are built
		// inline from ViaList rather than via dvi.ViasOf so the hot
		// apply path does not allocate a slice per routed net.
		for _, b := range r.ViaList() {
			v := dvi.Via{Net: r.Net, Base: b}
			rt.dvicBuf = rt.feas.AppendFeasibleDVICs(rt.dvicBuf[:0], r, v)
			feasible := rt.dvicBuf
			if len(feasible) == 0 {
				continue
			}
			bdc := P.Alpha * CostScale / int64(len(feasible))
			cdc := P.Beta * CostScale / int64(len(feasible))
			for _, c := range feasible {
				// Block-DVIC via locations: a foreign via at the
				// feasible DVIC kills it outright...
				rt.addViaCost(v.Layer(), c, bdc, led)
				// ...and foreign metal crossing the DVIC on either
				// connected layer blocks the extension.
				rt.addMetalCost(v.Base.Layer, c, bdc, led)
				rt.addMetalCost(v.Base.Layer+1, c, bdc, led)
				// Conflict-DVIC via locations: vias whose own DVICs
				// would share site c (Fig 9(d)).
				for _, off := range dvi.DVICOffsets {
					w := c.Add(off.X, off.Y)
					if w == v.Pos() || !rt.g.InPlane(w) {
						continue
					}
					rt.addViaCost(v.Layer(), w, cdc, led)
				}
			}
		}
		// AMC: via locations alongside the net's metal would have
		// their DVICs blocked by this metal (Fig 9(c)).
		amc := P.AMC * CostScale
		if amc > 0 {
			for _, p := range r.PointList() {
				for _, d := range geom.PlanarDirs {
					q := p.Pt2().Step(d)
					if !rt.g.InPlane(q) {
						continue
					}
					for _, vl := range [2]int{p.Layer - 1, p.Layer} {
						if vl >= 0 && vl < rt.g.NumLayers-1 {
							rt.addViaCost(vl, q, amc, led)
						}
					}
				}
			}
		}
	}

	if rt.cfg.ConsiderTPL {
		// TPLC: each via raises the coloring-conflict count of every
		// via location within same-color pitch; the search prices a
		// prospective via at γ × count (§III-B).
		for _, b := range r.ViaList() {
			v := dvi.Via{Net: r.Net, Base: b}
			for _, off := range tpl.ConflictOffsets {
				q := v.Pos().Add(off.X, off.Y)
				if rt.g.InPlane(q) {
					rt.addViaConf(v.Layer(), q, 1, led)
				}
			}
		}
	}
}

// revertNetCosts undoes the net's ledger, folds included.
func (rt *Router) revertNetCosts(id int32) {
	for _, e := range rt.ledgers[id] {
		switch e.kind {
		case costMetal:
			rt.metalCost[e.layer][e.pidx] -= e.amount
			rt.metalPrice[e.layer][e.pidx] -= e.amount
		case costVia:
			rt.viaCost[e.layer][e.pidx] -= e.amount
			rt.viaPrice[e.layer][e.pidx] -= e.amount
		case costConf:
			rt.viaConf[e.layer][e.pidx] -= int32(e.amount)
			rt.viaPrice[e.layer][e.pidx] -= e.amount * rt.cfg.Params.Gamma * CostScale
		}
	}
	rt.ledgers[id] = rt.ledgers[id][:0]
}
