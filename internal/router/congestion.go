package router

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// sortedNetSet returns the set's members in ascending order, for
// deterministic rip-up processing.
func sortedNetSet(s map[int32]bool) []int32 {
	out := make([]int32, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// resolveCongestion is the negotiated-congestion rip-up-and-reroute of
// [20]: while any grid point is shared by distinct nets, bump the
// point's history cost, rip one of the offenders and reroute it under
// an escalating present-sharing penalty.
func (rt *Router) resolveCongestion() error {
	P := rt.cfg.Params
	for round := 0; ; round++ {
		if err := rt.checkCancel(); err != nil {
			return err
		}
		cong := rt.g.Congestions()
		if len(cong) == 0 {
			return nil
		}
		if round%50 == 0 || len(cong) <= 2 {
			var detail string
			if len(cong) <= 2 {
				for _, p := range cong {
					detail += fmt.Sprintf(" %v:%v", p, rt.g.Metal[p.Layer].Nets(p.Pt2()))
				}
			}
			rt.logf("congestion round %d: %d overflows%s", round, len(cong), detail)
		}
		if rt.stats.RRIterations >= rt.cfg.MaxRRIters {
			return fmt.Errorf("router: congestion unresolved after %d rip-up iterations (%d overflows left)",
				rt.stats.RRIterations, len(cong))
		}
		// Escalate the sharing penalty so later rounds separate nets
		// more aggressively. The escalation saturates so the unbounded
		// history cost eventually dominates route choice — otherwise a
		// single cheap-but-unresolvable crossing can stay the global
		// minimum forever.
		rt.escalatePresFac()

		toRip := map[int32]bool{}
		for _, p := range cong {
			pi := rt.g.PIdx(p.Pt2())
			rt.bumpHistMetal(p.Layer, pi, P.HistInc*CostScale)
			nets := rt.g.Metal[p.Layer].Nets(p.Pt2())
			if len(nets) == 0 {
				continue
			}
			// Rip one offender, rotated pseudo-randomly so no net is
			// permanently the victim.
			pick := nets[rt.rng.Intn(len(nets))]
			if rt.debugVictim != nil {
				rt.debugVictim(p, pick)
			}
			toRip[pick] = true
		}
		order := sortedNetSet(toRip)
		for _, id := range order {
			rt.ripUp(id)
		}
		for _, id := range order {
			rt.stats.RRIterations++
			if err := rt.reroute(id); err != nil {
				return fmt.Errorf("router: congestion reroute of net %d: %w", id, err)
			}
		}
	}
}

// escalatePresFac raises the present-sharing penalty up to a
// saturation point (50× the base penalty).
func (rt *Router) escalatePresFac() {
	P := rt.cfg.Params
	cap := 50 * P.UsagePenalty * CostScale
	if rt.presFac < cap {
		rt.presFac += P.UsagePenalty * CostScale / 2
	}
}

// appendViaOwners appends the nets owning a via at site p of via
// layer vl to dst, by scanning the nets whose metal occupies both
// endpoint layers — exactly the nets that could have placed the via.
// Append-style so hot callers (pickFVPVictim) recycle one buffer
// across the whole rip-up loop.
//
//sadplint:hotpath called per candidate site inside the TPL rip-up loop
func (rt *Router) appendViaOwners(dst []int32, vl int, p geom.Pt) []int32 {
	for _, id := range rt.g.Metal[vl].Nets(p) {
		r := rt.routes[id]
		if r == nil {
			continue
		}
		for _, v := range r.ViaList() {
			if v.Layer == vl && v.X == p.X && v.Y == p.Y {
				dst = append(dst, id)
				break
			}
		}
	}
	return dst
}
