package router

// Tests for the search-core performance machinery: the monomorphic
// heap, the epoch-stamped scratch, the A* lower bound and the
// worker-count independence of the parallel phases. These guard the
// tentpole property that none of the optimizations change routing
// results.

import (
	"math/rand"
	"testing"

	"repro/internal/coloring"
	"repro/internal/geom"
	"repro/internal/grid"
)

// TestHeapPopsNondecreasing is the heap property test: any push
// sequence pops in nondecreasing key order and returns every element.
func TestHeapPopsNondecreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var s searchScratch
		n := 1 + rng.Intn(500)
		sum := int64(0)
		for i := 0; i < n; i++ {
			k := int64(rng.Intn(1000)) // duplicates likely: exercises ties
			sum += k
			s.hPush(pqItem{f: k, id: int32(i)})
		}
		prev := int64(-1)
		for i := 0; i < n; i++ {
			if len(s.heap) == 0 {
				t.Fatalf("trial %d: heap empty after %d of %d pops", trial, i, n)
			}
			it := s.hPop()
			if it.f < prev {
				t.Fatalf("trial %d: pop %d decreased: %d after %d", trial, i, it.f, prev)
			}
			prev = it.f
			sum -= it.f
		}
		if len(s.heap) != 0 || sum != 0 {
			t.Fatalf("trial %d: %d leftover items, key sum residue %d", trial, len(s.heap), sum)
		}
	}
}

// TestEpochStaleReadsInf verifies the O(1) reset: values written in one
// epoch read as infCost after the next reset without any clearing.
func TestEpochStaleReadsInf(t *testing.T) {
	var s searchScratch
	win := geom.Rect{MinX: 0, MinY: 0, MaxX: 9, MaxY: 9}
	s.reset(win, 2)
	id := s.stateIdx(geom.XYL(3, 4, 1), 2)
	if got := s.distAt(id); got != infCost {
		t.Fatalf("fresh cell reads %d, want infCost", got)
	}
	s.setDist(id, 42, 7)
	if got := s.distAt(id); got != 42 {
		t.Fatalf("written cell reads %d, want 42", got)
	}
	s.reset(win, 2) // same window: same id maps to the same cell
	if got := s.distAt(id); got != infCost {
		t.Fatalf("stale cell reads %d after reset, want infCost", got)
	}
	// An epoch wraparound must also invalidate stale cells.
	s.setDist(id, 99, 7)
	s.epoch = ^uint32(0)
	s.reset(win, 2)
	if got := s.distAt(id); got != infCost {
		t.Fatalf("stale cell reads %d after epoch wraparound, want infCost", got)
	}
}

// TestAStarCostsMatchDijkstra: the goal-directed bound is admissible
// and consistent, so the found path cost must equal plain Dijkstra's on
// any instance — here random windows of a routed (hence cost-laden)
// grid.
func TestAStarCostsMatchDijkstra(t *testing.T) {
	nl := randomNetlist("astar", 28, 28, 30, 9)
	cfg := Config{Scheme: coloring.Scheme{Type: coloring.SIM}, ConsiderDVI: true, ConsiderTPL: true}
	rt := route(t, nl, cfg) // populates metal/via/history costs
	rng := rand.New(rand.NewSource(77))
	r := grid.NewRoute(9999)
	for trial := 0; trial < 40; trial++ {
		// Random window and endpoints on layer 1 (no pin obstacles).
		x0, y0 := rng.Intn(14), rng.Intn(14)
		win := geom.Rect{MinX: x0, MinY: y0, MaxX: x0 + 6 + rng.Intn(8), MaxY: y0 + 6 + rng.Intn(8)}
		src := geom.XYL(win.MinX+rng.Intn(win.Width()), win.MinY+rng.Intn(win.Height()), 1)
		dst := geom.XYL(win.MinX+rng.Intn(win.Width()), win.MinY+rng.Intn(win.Height()), 1)
		sources := []source{{p: src, din: geom.None}}

		rt.noAStar = true
		_, plainCost, plainOK := rt.dijkstra(r, sources, dst, 9999, win)
		rt.noAStar = false
		_, astarCost, astarOK := rt.dijkstra(r, sources, dst, 9999, win)
		rt.noAStar = true

		if plainOK != astarOK {
			t.Fatalf("trial %d: reachability differs: plain %v, A* %v", trial, plainOK, astarOK)
		}
		if plainOK && plainCost != astarCost {
			t.Fatalf("trial %d: %v→%v in %v: plain cost %d, A* cost %d",
				trial, src, dst, win, plainCost, astarCost)
		}
	}
}

// TestWorkersDeterminism: the parallel phases merge deterministically,
// so any worker count must yield identical stats and identical per-net
// geometry.
func TestWorkersDeterminism(t *testing.T) {
	nl := randomNetlist("wrk", 24, 24, 40, 3) // dense: baseline FVPs exist
	mk := func(workers int) *Router {
		cfg := Config{
			Scheme:      coloring.Scheme{Type: coloring.SIM},
			ConsiderDVI: true, ConsiderTPL: true,
			Seed: 5, Workers: workers,
		}
		return route(t, nl, cfg)
	}
	a, b := mk(1), mk(4)
	if a.Stats() != b.Stats() {
		t.Fatalf("Workers=1 vs 4 stats differ:\n%+v\n%+v", a.Stats(), b.Stats())
	}
	for id := range a.Routes() {
		pa, pb := a.Routes()[id].PointList(), b.Routes()[id].PointList()
		if len(pa) != len(pb) {
			t.Fatalf("net %d: point counts differ: %d vs %d", id, len(pa), len(pb))
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("net %d: point %d differs: %v vs %v", id, i, pa[i], pb[i])
			}
		}
	}
}
