package router

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/coloring"
)

// CostScale is the integer cost unit of one preferred-direction wire
// segment. It is divisible by 1..4 so the paper's α/feasible-DVIC and
// β/feasible-DVIC divisions stay exact.
const CostScale = 12

// Params holds the routing cost parameters. Alpha, AMC, Beta and Gamma
// are the cost assignment scheme weights of the paper's Table II,
// expressed in wire-segment units and scaled by CostScale internally.
type Params struct {
	// Alpha weights the block-DVIC cost: BDC = Alpha / #feasibleDVICs
	// (§III-B).
	Alpha int64 `json:"alpha"`
	// AMC is the constant along-metal cost (§III-B).
	AMC int64 `json:"amc"`
	// Beta weights the conflict-DVIC cost: CDC = Beta / #feasibleDVICs
	// (§III-B).
	Beta int64 `json:"beta"`
	// Gamma weights the TPL cost: TPLC = Gamma × #coloringConflicts
	// (§III-B).
	Gamma int64 `json:"gamma"`

	// ViaCost is the cost of one via in wire-segment units.
	ViaCost int64 `json:"via_cost"`
	// NonPrefMul multiplies the wire cost of segments in the
	// non-preferred routing direction ("strongly discouraged", §II-A).
	NonPrefMul int64 `json:"non_pref_mul"`
	// NonPrefTurnCost penalizes a non-preferred turn in wire-segment
	// units.
	NonPrefTurnCost int64 `json:"non_pref_turn_cost"`
	// UsagePenalty is the base negotiated-congestion penalty per
	// conflicting occupant; it escalates with rip-up iterations.
	UsagePenalty int64 `json:"usage_penalty"`
	// HistInc is the history cost increment added to a congested or
	// FVP resource per R&R round.
	HistInc int64 `json:"hist_inc"`
}

// DefaultParams returns the parameter values of Table II with the base
// routing costs used throughout the experiments.
func DefaultParams() Params {
	return Params{
		Alpha: 8, AMC: 1, Beta: 4, Gamma: 4,
		ViaCost:         4,
		NonPrefMul:      4,
		NonPrefTurnCost: 2,
		UsagePenalty:    12,
		HistInc:         3,
	}
}

// ConferenceParams returns the smaller cost-assignment weights of the
// conference version of the paper ([36], compared against in Table V):
// the journal version "enlarges the parameters used in the cost
// assignment scheme to emphasize DVI consideration". The exact
// conference values are unpublished; halving the DVI weights
// reproduces the reported effect (≈1/3 more dead vias at equal
// wirelength).
func ConferenceParams() Params {
	p := DefaultParams()
	p.Alpha = 2
	p.Beta = 1
	p.AMC = 0
	return p
}

// QueueKind selects the priority-queue backend of the windowed
// search. Both backends pop states in the identical canonical
// (key, push-sequence) order, so routing output is bit-identical
// between them; the flag exists for differential testing and as an
// escape hatch.
type QueueKind uint8

const (
	// BucketQueue is the default Dial-style bucket ring: O(1) push and
	// amortized O(1) pop, exploiting that step costs are small bounded
	// multiples of CostScale (see DESIGN.md §12).
	BucketQueue QueueKind = iota
	// HeapQueue is the legacy monomorphic binary heap.
	HeapQueue
)

// String implements fmt.Stringer ("bucket"/"heap").
func (k QueueKind) String() string {
	if k == HeapQueue {
		return "heap"
	}
	return "bucket"
}

// MarshalJSON encodes the backend by name so specs carrying it stay
// human-readable.
func (k QueueKind) MarshalJSON() ([]byte, error) {
	if k > HeapQueue {
		return nil, fmt.Errorf("cannot marshal QueueKind(%d)", uint8(k))
	}
	return json.Marshal(k.String())
}

// UnmarshalJSON accepts the backend name or the raw numeric value.
func (k *QueueKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		switch s {
		case "bucket":
			*k = BucketQueue
		case "heap":
			*k = HeapQueue
		default:
			return fmt.Errorf("queue backend: want \"bucket\" or \"heap\", got %q", s)
		}
		return nil
	}
	var n uint8
	if err := json.Unmarshal(b, &n); err != nil || n > uint8(HeapQueue) {
		return fmt.Errorf("queue backend: want \"bucket\", \"heap\" or 0-1, got %s", b)
	}
	*k = QueueKind(n)
	return nil
}

// TopologyKind selects how a multi-pin net is decomposed into two-pin
// connections before the search realizes them.
type TopologyKind uint8

const (
	// SteinerTopology (the default) decomposes each k-pin net with the
	// internal/steiner rectilinear Steiner tree generator: a
	// deterministic MST plus iterated 1-Steiner Hanan refinement, routed
	// segment by segment with the net's existing wires as free trunk.
	SteinerTopology TopologyKind = iota
	// StarTopology is the legacy greedy order: connect the unconnected
	// pin nearest to the routed component, repeatedly. Kept as the
	// deterministic fallback when a Steiner segment cannot be realized,
	// and as a differential-testing baseline.
	StarTopology
)

// String implements fmt.Stringer ("steiner"/"star").
func (k TopologyKind) String() string {
	if k == StarTopology {
		return "star"
	}
	return "steiner"
}

// ParseTopologyKind reads a topology name: "steiner" or "star".
func ParseTopologyKind(s string) (TopologyKind, error) {
	switch s {
	case "steiner":
		return SteinerTopology, nil
	case "star":
		return StarTopology, nil
	}
	return SteinerTopology, fmt.Errorf("unknown topology %q (want steiner or star)", s)
}

// MarshalJSON encodes the topology by name so specs carrying it stay
// human-readable.
func (k TopologyKind) MarshalJSON() ([]byte, error) {
	if k > StarTopology {
		return nil, fmt.Errorf("cannot marshal TopologyKind(%d)", uint8(k))
	}
	return json.Marshal(k.String())
}

// UnmarshalJSON accepts the topology name or the raw numeric value.
func (k *TopologyKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		switch s {
		case "steiner":
			*k = SteinerTopology
		case "star":
			*k = StarTopology
		default:
			return fmt.Errorf("topology: want \"steiner\" or \"star\", got %q", s)
		}
		return nil
	}
	var n uint8
	if err := json.Unmarshal(b, &n); err != nil || n > uint8(StarTopology) {
		return fmt.Errorf("topology: want \"steiner\", \"star\" or 0-1, got %s", b)
	}
	*k = TopologyKind(n)
	return nil
}

// Config selects the SADP process and which considerations the router
// applies — the four experiment columns of Tables III/IV.
type Config struct {
	// Scheme is the SADP color pre-assignment (SIM or SID).
	Scheme coloring.Scheme
	// ConsiderDVI enables the BDC/AMC/CDC cost assignment (§III-B).
	ConsiderDVI bool
	// ConsiderTPL enables the TPLC cost, the via-layer TPL violation
	// removal R&R (§III-C) and the 3-colorability check (§III-D).
	ConsiderTPL bool
	// Params are the cost parameters; zero value means DefaultParams.
	Params Params
	// SearchMargin is the initial bounding-box margin of the windowed
	// Dijkstra search; zero means a reasonable default.
	SearchMargin int
	// MaxRRIters caps negotiated-congestion rip-up-and-reroute
	// iterations; zero means a default proportional to the net count.
	MaxRRIters int
	// MaxTPLRRIters caps TPL-violation-removal iterations.
	MaxTPLRRIters int
	// Queue selects the search's priority-queue backend. The zero
	// value is the Dial bucket queue; HeapQueue restores the legacy
	// binary heap. Routing output is identical either way.
	Queue QueueKind
	// Topology selects the multi-pin decomposition. The zero value is
	// the Steiner tree generator; StarTopology restores the greedy
	// nearest-pin order. Unlike Queue this changes routed geometry on
	// nets with three or more pins.
	Topology TopologyKind
	// Seed drives deterministic tie-breaking choices.
	Seed int64
	// GoalDirected enables the admissible A* lower bound in the
	// windowed search. Path costs stay optimal (the bound is
	// consistent), but tie-breaking among equal-cost expansions shifts,
	// so routed geometry — and downstream congestion negotiation — may
	// differ from the default plain-Dijkstra order. Off by default to
	// keep results reproducible against the reference tables.
	GoalDirected bool
	// Workers bounds the parallelism of the embarrassingly independent
	// phases (the initial FVP window scan and blocked-via-site scan of
	// the TPL violation removal). Results are merged deterministically,
	// so any value produces identical routing output; zero means 1
	// (serial).
	Workers int
	// Arena, when non-nil, recycles router memory across runs: New
	// rebinds the arena's previously Released router in place when the
	// grid shape matches, instead of allocating the full per-grid state
	// again. Routing output is bit-identical with or without an arena.
	// One arena per worker goroutine; see Arena.
	Arena *Arena
	// Cancel, when non-nil, aborts the run cooperatively: the router
	// polls it at iteration boundaries (per net in the initial phase,
	// per rip-up round afterwards) and returns ErrCanceled once it is
	// closed. Wire a context's Done() channel here to bound a run.
	Cancel <-chan struct{}
	// TPLBudget, when positive, bounds the wall-clock time of the TPL
	// violation-removal phase (measured from the phase's start). On
	// expiry the phase degrades instead of running to convergence: it
	// still resolves congestion (a congested solution is shorted and
	// never acceptable) but stops FVP rip-up work, returns the
	// best-so-far solution, and reports the unresolved window count in
	// Stats.RemainingFVPs with Stats.TPLDegraded set. The follow-up
	// 3-colorability pass is skipped on a degraded run (its guarantee
	// is moot while FVPs remain). Zero means run to convergence.
	TPLBudget time.Duration
}

func (c Config) withDefaults(numNets int) Config {
	if c.Params == (Params{}) {
		c.Params = DefaultParams()
	}
	if c.SearchMargin == 0 {
		c.SearchMargin = 12
	}
	if c.MaxRRIters == 0 {
		c.MaxRRIters = 40*numNets + 2000
	}
	if c.MaxTPLRRIters == 0 {
		c.MaxTPLRRIters = 20*numNets + 2000
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	return c
}
