package router

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/tpl"
)

// 3-colorability check of the decomposition graph (§III-D): even with
// all FVPs eliminated, rare cross-window structures ("wheel" patterns,
// Fig 11) can leave a via layer uncolorable. A greedy Welsh–Powell
// coloring of each via layer's decomposition graph detects them; any
// uncolorable via triggers a targeted rip-up-and-reroute. The paper
// reports this fix-up never fires in practice, and our experiments
// agree — the code path is nevertheless real and tested.

// maxColorFixRounds bounds the fix-up loop; the expected round count is
// zero.
const maxColorFixRounds = 50

func (rt *Router) ensureColorable() error {
	for round := 0; ; round++ {
		if err := rt.checkCancel(); err != nil {
			return err
		}
		uncolorable := rt.uncolorableVias()
		if len(uncolorable) == 0 {
			return nil
		}
		if round >= maxColorFixRounds {
			return fmt.Errorf("router: %d uncolorable vias remain after %d color fix rounds",
				len(uncolorable), round)
		}
		fvps := map[fvpKey]bool{}
		ripped := map[int32]bool{}
		for _, v := range uncolorable {
			// Make the offending via site expensive and move one of
			// its owners. A net already rerouted this round is left
			// alone — its new route reflects the bumped prices.
			pi := rt.g.PIdx(geom.XY(v.X, v.Y))
			rt.bumpHistVia(v.Layer, pi, rt.cfg.Params.HistInc*CostScale*2)
			rt.victimBuf = rt.appendViaOwners(rt.victimBuf[:0], v.Layer, geom.XY(v.X, v.Y))
			owners := rt.victimBuf
			if len(owners) == 0 {
				continue
			}
			id := owners[rt.rng.Intn(len(owners))]
			if ripped[id] {
				continue
			}
			ripped[id] = true
			rt.stats.ColorFixIterations++
			rt.ripUpTracked(id, fvps)
			if err := rt.rerouteTracked(id, fvps); err != nil {
				return fmt.Errorf("router: color fix reroute of net %d: %w", id, err)
			}
		}
		// The reroutes must not reintroduce FVPs or congestion; fall
		// back to the violation-removal loop if they did.
		if len(fvps) > 0 || len(rt.g.Congestions()) > 0 {
			if err := rt.removeTPLViolations(); err != nil {
				return err
			}
		}
	}
}

// uncolorableVias runs Welsh–Powell on each via layer's decomposition
// graph and returns via locations in components that are genuinely not
// 3-colorable. Greedy coloring can fail on colorable graphs, so each
// greedy failure is re-checked exactly on its (small) connected
// component before a rip-up is triggered.
func (rt *Router) uncolorableVias() []geom.Pt3 {
	var out []geom.Pt3
	for vl, lv := range rt.g.Vias {
		g := tpl.FromLayer(lv)
		_, unc := g.WelshPowell(tpl.NumColors)
		if len(unc) == 0 {
			continue
		}
		uncSet := map[int]bool{}
		for _, vi := range unc {
			uncSet[vi] = true
		}
		for _, comp := range g.Components() {
			hit := false
			for _, v := range comp {
				if uncSet[v] {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			sub := make([]geom.Pt, len(comp))
			for i, v := range comp {
				sub[i] = g.Pts[v]
			}
			sg := tpl.NewGraph(sub)
			// A budget miss is treated as uncolorable: conservative,
			// and bounded components this size never miss in practice.
			if ok, _ := sg.ColorableExact(tpl.NumColors, 200_000); ok {
				continue
			}
			// Emit the whole component: uncolorability is a property of
			// the component's structure, not of the single vertex the
			// greedy pass happened to flag. The fix-up must be free to
			// move any member — ripping only the flagged via's owner can
			// oscillate forever when that via is pinned (e.g. it sits on
			// its net's own terminal) while the conflict is created
			// jointly with its neighbors.
			for _, v := range comp {
				p := g.Pts[v]
				out = append(out, geom.XYL(p.X, p.Y, vl))
			}
		}
	}
	return out
}
