package router

// Property tests for the Dial bucket queue: monotone pop order,
// wraparound addressing (ring index = key mod span), growth/rehash
// under key spreads wider than the ring, and exact pop-sequence
// equality with the legacy binary heap under Dijkstra-like traces —
// the invariant that makes the two backends produce bit-identical
// routing.

import (
	"math/rand"
	"testing"

	"repro/internal/coloring"
)

// dijkstraTrace drives both backends with an identical random
// push/pop trace shaped like a search: every pushed key is the last
// popped key plus a bounded non-negative increment (the monotone
// contract Dial's algorithm needs). Returns false when the trace is
// exhausted.
func runTrace(t *testing.T, trial int, rng *rand.Rand, maxStep int64) {
	t.Helper()
	var h searchScratch // heap backend used directly via hPush/hPop
	var q bucketQueue
	q.init(1) // start at the minimum span to force growth

	seq := uint32(0)
	lastPop := int64(0)
	pending := 0
	ops := 200 + rng.Intn(800)
	for i := 0; i < ops; i++ {
		if pending == 0 || rng.Intn(3) != 0 {
			f := lastPop + rng.Int63n(maxStep+1)
			it := pqItem{f: f, id: int32(i), seq: seq}
			seq++
			h.hPush(it)
			q.push(it)
			pending++
			continue
		}
		a, b := h.hPop(), q.pop()
		pending--
		if a != b {
			t.Fatalf("trial %d op %d: heap popped %+v, bucket popped %+v", trial, i, a, b)
		}
		if a.f < lastPop {
			t.Fatalf("trial %d op %d: pop key decreased: %d after %d", trial, i, a.f, lastPop)
		}
		lastPop = a.f
	}
	for pending > 0 {
		a, b := h.hPop(), q.pop()
		pending--
		if a != b {
			t.Fatalf("trial %d drain: heap popped %+v, bucket popped %+v", trial, a, b)
		}
	}
	if q.n != 0 || len(h.heap) != 0 {
		t.Fatalf("trial %d: leftovers: bucket %d, heap %d", trial, q.n, len(h.heap))
	}
}

// TestBucketQueueMatchesHeap: both backends pop the exact same item
// sequence (key, id and tie-break seq) for any Dijkstra-like trace.
func TestBucketQueueMatchesHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		// Narrow and wide key steps: ties-heavy and growth-heavy.
		maxStep := int64(1 + rng.Intn(5))
		if trial%3 == 0 {
			maxStep = int64(50 + rng.Intn(5000))
		}
		runTrace(t, trial, rng, maxStep)
	}
}

// TestBucketQueueWraparound: keys sweep far beyond the ring span, so
// the cursor wraps the ring many times (index = key mod span) while
// pops stay sorted and complete.
func TestBucketQueueWraparound(t *testing.T) {
	var q bucketQueue
	q.init(64)
	rng := rand.New(rand.NewSource(11))
	last := int64(0)
	pushed, popped := 0, 0
	var sum, popSum int64
	for i := 0; i < 20000; i++ {
		if q.n == 0 || rng.Intn(2) == 0 {
			f := last + rng.Int63n(40) // spread < 64: span never grows
			q.push(pqItem{f: f, id: int32(i)})
			sum += f
			pushed++
		} else {
			it := q.pop()
			if it.f < last {
				t.Fatalf("op %d: pop %d below floor %d", i, it.f, last)
			}
			last = it.f
			popSum += it.f
			popped++
		}
	}
	if len(q.buckets) != 64 {
		t.Fatalf("span grew to %d; wraparound was supposed to stay within 64", len(q.buckets))
	}
	for q.n > 0 {
		it := q.pop()
		if it.f < last {
			t.Fatalf("drain: pop %d below floor %d", it.f, last)
		}
		last = it.f
		popSum += it.f
		popped++
	}
	if popped != pushed || popSum != sum {
		t.Fatalf("lost items: pushed %d (keys %d), popped %d (keys %d)", pushed, sum, popped, popSum)
	}
}

// TestBucketQueueGrowPreservesFIFO: a push far beyond the current span
// rehashes the ring; equal-key runs pushed before the growth must
// still pop in push order after it.
func TestBucketQueueGrowPreservesFIFO(t *testing.T) {
	var q bucketQueue
	q.init(4)
	for i := 0; i < 10; i++ {
		q.push(pqItem{f: 3, id: int32(i), seq: uint32(i)})
	}
	q.push(pqItem{f: 100000, id: 99}) // forces a large grow
	for i := 0; i < 10; i++ {
		it := q.pop()
		if it.f != 3 || it.id != int32(i) {
			t.Fatalf("pop %d: got (f=%d id=%d), want (3, %d)", i, it.f, it.id, i)
		}
	}
	if it := q.pop(); it.id != 99 {
		t.Fatalf("final pop: got id %d, want 99", it.id)
	}
	if q.n != 0 {
		t.Fatalf("queue not empty: %d left", q.n)
	}
}

// TestBucketQueueResetReuses: reset must leave a clean queue behind —
// including after growth and partial drains — without clearing more
// than it touched.
func TestBucketQueueResetReuses(t *testing.T) {
	var q bucketQueue
	q.init(8)
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 50; round++ {
		last := int64(0)
		n := 1 + rng.Intn(100)
		for i := 0; i < n; i++ {
			last += rng.Int63n(200)
			q.push(pqItem{f: last, id: int32(i)})
		}
		// Drain a random prefix, then reset mid-flight.
		for i := rng.Intn(n + 1); i > 0; i-- {
			q.pop()
		}
		q.reset()
		if q.n != 0 {
			t.Fatalf("round %d: n=%d after reset", round, q.n)
		}
		for _, b := range q.buckets {
			if len(b.items) != 0 || b.head != 0 {
				t.Fatalf("round %d: dirty bucket survived reset", round)
			}
		}
	}
}

// TestQueueBackendsBitIdentical: full routing runs (DVI + TPL
// considerations on) under both backends produce identical stats and
// identical per-net geometry.
func TestQueueBackendsBitIdentical(t *testing.T) {
	for _, seed := range []int64{3, 9, 21} {
		nl := randomNetlist("qdiff", 28, 28, 40, seed)
		mk := func(k QueueKind) *Router {
			return route(t, nl, Config{
				Scheme:      coloring.Scheme{Type: coloring.SIM},
				ConsiderDVI: true, ConsiderTPL: true,
				Seed: seed, Queue: k,
			})
		}
		a, b := mk(BucketQueue), mk(HeapQueue)
		if a.Stats() != b.Stats() {
			t.Fatalf("seed %d: stats differ between backends:\nbucket: %+v\nheap:   %+v", seed, a.Stats(), b.Stats())
		}
		for id := range a.Routes() {
			pa, pb := a.Routes()[id].PointList(), b.Routes()[id].PointList()
			if len(pa) != len(pb) {
				t.Fatalf("seed %d net %d: point counts differ: %d vs %d", seed, id, len(pa), len(pb))
			}
			for i := range pa {
				if pa[i] != pb[i] {
					t.Fatalf("seed %d net %d: point %d differs: %v vs %v", seed, id, i, pa[i], pb[i])
				}
			}
		}
	}
}
