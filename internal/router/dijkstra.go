package router

import (
	"container/heap"
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/coloring"
	"repro/internal/geom"
)

// sortSlice is a tiny indirection so router.go needs no sort import of
// its own.
func sortSlice(order []int, less func(a, b int) bool) {
	sort.Slice(order, func(i, j int) bool { return less(order[i], order[j]) })
}

// Search states carry the incoming travel direction so turn legality
// and turn costs are exact: a planar state's wire arm at point p
// extends back toward where it came from. Via arrivals are distinct
// states (no arm on the landing layer, but immediate z-reversal — a
// via "pump" that would evade turn checks — is forbidden). dirNone
// states are pin starts and T-branch sources.
const numDirStates = 7 // none, E, W, N, S, up, down

func dirState(d geom.Dir) int {
	switch d {
	case geom.East:
		return 1
	case geom.West:
		return 2
	case geom.North:
		return 3
	case geom.South:
		return 4
	case geom.Up:
		return 5
	case geom.Down:
		return 6
	}
	return 0
}

var stateDirs = [numDirStates]geom.Dir{
	geom.None, geom.East, geom.West, geom.North, geom.South, geom.Up, geom.Down,
}

// armBit maps a planar direction to the arm bitmask used by
// grid.Route.ArmMask (East=1, West=2, North=4, South=8).
func armBit(d geom.Dir) uint8 {
	switch d {
	case geom.East:
		return 1
	case geom.West:
		return 2
	case geom.North:
		return 4
	case geom.South:
		return 8
	}
	return 0
}

func armOf(bit uint8) geom.Dir {
	switch bit {
	case 1:
		return geom.East
	case 2:
		return geom.West
	case 4:
		return geom.North
	case 8:
		return geom.South
	}
	return geom.None
}

// searchScratch holds reusable buffers for the windowed Dijkstra.
type searchScratch struct {
	dist   []int64
	parent []int32
	win    geom.Rect
	wW, wH int
	layers int
}

const infCost = int64(1) << 62

func (s *searchScratch) reset(win geom.Rect, layers int) {
	s.win, s.layers = win, layers
	s.wW, s.wH = win.Width(), win.Height()
	n := s.wW * s.wH * layers * numDirStates
	if cap(s.dist) < n {
		s.dist = make([]int64, n)
		s.parent = make([]int32, n)
	} else {
		s.dist = s.dist[:n]
		s.parent = s.parent[:n]
	}
	for i := range s.dist {
		s.dist[i] = infCost
		s.parent[i] = -1
	}
}

func (s *searchScratch) stateIdx(p geom.Pt3, ds int) int32 {
	return int32(((p.Layer*s.wH+(p.Y-s.win.MinY))*s.wW+(p.X-s.win.MinX))*numDirStates + ds)
}

func (s *searchScratch) statePt(idx int32) (geom.Pt3, int) {
	ds := int(idx) % numDirStates
	rest := int(idx) / numDirStates
	x := rest%s.wW + s.win.MinX
	rest /= s.wW
	y := rest%s.wH + s.win.MinY
	l := rest / s.wH
	return geom.XYL(x, y, l), ds
}

// pqItem is a heap entry; stale entries are skipped on pop.
type pqItem struct {
	cost int64
	id   int32
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].cost < q[j].cost }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// source is a Dijkstra start state.
type source struct {
	p    geom.Pt3
	din  geom.Dir
	cost int64
}

// routeView is the subset of grid.Route the search needs; it keeps the
// search testable with lightweight fakes.
type routeView interface {
	PointList() []geom.Pt3
	ArmMask(geom.Pt3) uint8
	Empty() bool
}

// findPath routes one two-pin connection from the net's connected
// component (the current route r plus the listed points) to target,
// using a window-bounded search that grows on failure up to the whole
// grid.
func (rt *Router) findPath(r routeView, connected []geom.Pt3, target geom.Pt3, net int32) ([]geom.Pt3, error) {
	var sources []source
	if r.Empty() {
		for _, p := range connected {
			sources = append(sources, source{p: p, din: geom.None})
		}
	} else {
		for _, p := range r.PointList() {
			sources = append(sources, source{p: p, din: geom.None})
		}
	}

	box := geom.NewRect(target.Pt2(), target.Pt2())
	for _, s := range sources {
		box = box.AddPt(s.p.Pt2())
	}
	clip := rt.g.Bounds()
	for margin := rt.cfg.SearchMargin; ; margin *= 2 {
		win := box.Expand(margin, clip)
		if path, ok := rt.dijkstra(r, sources, target, net, win); ok {
			return path, nil
		}
		if win == clip {
			return nil, fmt.Errorf("no path to %v (grid exhausted)", target)
		}
	}
}

// turnCheck evaluates the metal shape created at point p when a step
// exits in direction d: the union of the net's existing arms at p, the
// moving wire's incoming arm, and d. Exactly-two perpendicular arms
// form an L whose class gates the step; any other shape carries no
// L-turn constraint (straight wires, T-junctions, via landings).
// It returns the additional cost, with ok=false when the L is
// forbidden.
func (rt *Router) turnCheck(r routeView, p geom.Pt3, din, d geom.Dir) (extra int64, ok bool) {
	arms := r.ArmMask(p) | armBit(d)
	if din.Planar() {
		arms |= armBit(din.Opposite())
	}
	if bits.OnesCount8(arms) != 2 {
		return 0, true
	}
	lo := arms & (arms - 1) // clear lowest set bit
	a1 := armOf(arms &^ lo)
	a2 := armOf(lo)
	corner, isCorner := coloring.CornerOf(a1, a2)
	if !isCorner {
		return 0, true // straight (E|W or N|S)
	}
	switch rt.cfg.Scheme.Turn(p.Pt2(), corner) {
	case coloring.Forbidden:
		return 0, false
	case coloring.NonPreferred:
		return rt.cfg.Params.NonPrefTurnCost * CostScale, true
	}
	return 0, true
}

// dijkstra runs the modified Dijkstra search within win. It returns
// the path source→target, or ok=false when the target is unreachable
// in the window.
func (rt *Router) dijkstra(r routeView, sources []source, target geom.Pt3, net int32, win geom.Rect) ([]geom.Pt3, bool) {
	s := &rt.search
	s.reset(win, rt.g.NumLayers)
	var q pq
	for _, src := range sources {
		if !win.Contains(src.p.Pt2()) {
			continue
		}
		id := s.stateIdx(src.p, dirState(src.din))
		if src.cost < s.dist[id] {
			s.dist[id] = src.cost
			s.parent[id] = -1
			heap.Push(&q, pqItem{cost: src.cost, id: id})
		}
	}
	P := rt.cfg.Params
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		if it.cost > s.dist[it.id] {
			continue // stale
		}
		p, ds := s.statePt(it.id)
		if p == target {
			return s.rebuildPath(it.id), true
		}
		din := stateDirs[ds]
		// Planar moves.
		for _, d := range geom.PlanarDirs {
			if din.Planar() && d == din.Opposite() {
				continue // no U-turns
			}
			np := p.Step(d)
			if !win.Contains(np.Pt2()) {
				continue
			}
			if rt.foreignPin(np, net) {
				continue
			}
			step := CostScale
			if !rt.g.PrefDir(p.Layer, d) {
				step = int(P.NonPrefMul) * CostScale
			}
			cost := it.cost + int64(step)
			turnCost, legal := rt.turnCheck(r, p, din, d)
			if !legal {
				continue
			}
			cost += turnCost
			cost += rt.metalNodeCost(np, net)
			nid := s.stateIdx(np, dirState(d))
			if cost < s.dist[nid] {
				s.dist[nid] = cost
				s.parent[nid] = it.id
				heap.Push(&q, pqItem{cost: cost, id: nid})
			}
		}
		// Via moves.
		for _, d := range [2]geom.Dir{geom.Up, geom.Down} {
			if din.Via() && d == din.Opposite() {
				continue // no via pumps
			}
			np := p.Step(d)
			if np.Layer < 0 || np.Layer >= rt.g.NumLayers {
				continue
			}
			if rt.foreignPin(np, net) {
				continue
			}
			vl := p.Layer
			if d == geom.Down {
				vl = np.Layer
			}
			pi := rt.g.PIdx(p.Pt2())
			if rt.blockVia[vl][pi] && !rt.ignoreBlocks {
				continue
			}
			cost := it.cost + P.ViaCost*CostScale +
				rt.viaCost[vl][pi] + rt.histVia[vl][pi] +
				int64(rt.viaConf[vl][pi])*P.Gamma*CostScale
			cost += rt.metalNodeCost(np, net)
			nid := s.stateIdx(np, dirState(d))
			if cost < s.dist[nid] {
				s.dist[nid] = cost
				s.parent[nid] = it.id
				heap.Push(&q, pqItem{cost: cost, id: nid})
			}
		}
	}
	return nil, false
}

// foreignPin reports whether p is another net's pin cell (layer 0
// terminals are hard obstacles for every other net).
func (rt *Router) foreignPin(p geom.Pt3, net int32) bool {
	if p.Layer != 0 {
		return false
	}
	o := rt.pinOwner[rt.g.PIdx(p.Pt2())]
	return o != 0 && o != net+1
}

// metalNodeCost is the dynamic cost of occupying metal point p:
// assigned costs (BDC spill), history, and the congestion penalty per
// foreign occupant.
func (rt *Router) metalNodeCost(p geom.Pt3, net int32) int64 {
	pi := rt.g.PIdx(p.Pt2())
	c := rt.metalCost[p.Layer][pi] + rt.histMetal[p.Layer][pi]
	occ := rt.g.Metal[p.Layer]
	for _, n := range occ.Nets(p.Pt2()) {
		if n != net {
			c += rt.presFac
		}
	}
	return c
}

func (s *searchScratch) rebuildPath(id int32) []geom.Pt3 {
	var rev []geom.Pt3
	for id != -1 {
		p, _ := s.statePt(id)
		rev = append(rev, p)
		id = s.parent[id]
	}
	// Reverse in place and drop consecutive duplicates (none expected,
	// but cheap to guarantee).
	out := make([]geom.Pt3, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		if len(out) == 0 || out[len(out)-1] != rev[i] {
			out = append(out, rev[i])
		}
	}
	return out
}
