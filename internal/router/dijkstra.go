package router

import (
	"fmt"
	"math/bits"

	"repro/internal/coloring"
	"repro/internal/geom"
)

// Search states carry the incoming travel direction so turn legality
// and turn costs are exact: a planar state's wire arm at point p
// extends back toward where it came from. Via arrivals are distinct
// states (no arm on the landing layer, but immediate z-reversal — a
// via "pump" that would evade turn checks — is forbidden). dirNone
// states are pin starts and T-branch sources.
const numDirStates = 7 // none, E, W, N, S, up, down

func dirState(d geom.Dir) int {
	switch d {
	case geom.East:
		return 1
	case geom.West:
		return 2
	case geom.North:
		return 3
	case geom.South:
		return 4
	case geom.Up:
		return 5
	case geom.Down:
		return 6
	}
	return 0
}

var stateDirs = [numDirStates]geom.Dir{
	geom.None, geom.East, geom.West, geom.North, geom.South, geom.Up, geom.Down,
}

// armBit maps a planar direction to the arm bitmask used by
// grid.Route.ArmMask (East=1, West=2, North=4, South=8).
func armBit(d geom.Dir) uint8 {
	switch d {
	case geom.East:
		return 1
	case geom.West:
		return 2
	case geom.North:
		return 4
	case geom.South:
		return 8
	}
	return 0
}

func armOf(bit uint8) geom.Dir {
	switch bit {
	case 1:
		return geom.East
	case 2:
		return geom.West
	case 4:
		return geom.North
	case 8:
		return geom.South
	}
	return geom.None
}

// cell is one search state's scratch record: tentative distance,
// parent state, and the epoch stamp that validates both. Packing the
// three into a single 16-byte struct keeps a relaxation (read stamp +
// dist, write all three) inside one cache line instead of touching
// three parallel arrays.
type cell struct {
	dist   int64
	parent int32
	stamp  uint32
}

// searchScratch holds the reusable state of the windowed search: the
// epoch-stamped distance/parent cells, the two priority-queue backends
// (Dial bucket ring by default, binary heap behind Config.Queue), and
// the path-reversal buffer. Nothing in here is allocated per search
// once the buffers have grown to the largest window seen.
//
// Epoch stamping: a cell's dist/parent values are valid only when its
// stamp equals the current epoch. reset bumps the epoch instead of
// clearing the array, making per-search setup O(1); stale cells read
// as infCost through distAt.
type searchScratch struct {
	cells   []cell
	epoch   uint32
	seq     uint32 // push counter: the canonical tie-break among equal keys
	useHeap bool   // legacy binary-heap backend (Config.Queue == HeapQueue)
	heap    []pqItem
	bq      bucketQueue
	pathRev []geom.Pt3
	pathFwd []geom.Pt3
	win     geom.Rect
	wW, wH  int
	layers  int

	// arms caches the partial route's ArmMask per in-window point for
	// the duration of one search (the route is fixed while the search
	// runs). It replaces a map lookup per expansion with an array read;
	// armStamp epoch-validates entries exactly like stamp does for dist.
	arms     []uint8
	armStamp []uint32
}

const infCost = int64(1) << 62

func (s *searchScratch) reset(win geom.Rect, layers int) {
	s.win, s.layers = win, layers
	s.wW, s.wH = win.Width(), win.Height()
	n := s.wW * s.wH * layers * numDirStates
	np := s.wW * s.wH * layers
	if cap(s.cells) < n {
		s.cells = make([]cell, n)
		s.arms = make([]uint8, np)
		s.armStamp = make([]uint32, np)
		s.epoch = 0
	} else {
		s.cells = s.cells[:n]
		s.arms = s.arms[:np]
		s.armStamp = s.armStamp[:np]
	}
	s.epoch++
	if s.epoch == 0 {
		// uint32 wraparound: every stale stamp would read as current.
		// Clear once every ~4 billion searches and restart at 1.
		for i := range s.cells {
			s.cells[i].stamp = 0
		}
		for i := range s.armStamp {
			s.armStamp[i] = 0
		}
		s.epoch = 1
	}
	s.heap = s.heap[:0]
	s.bq.reset()
	s.seq = 0
}

// pointIdx is the in-window dense index of a 3-D point (no direction
// component); stateIdx(p, ds) == pointIdx(p)*numDirStates + ds.
func (s *searchScratch) pointIdx(p geom.Pt3) int32 {
	return int32((p.Layer*s.wH+(p.Y-s.win.MinY))*s.wW + (p.X - s.win.MinX))
}

// loadArms records the route's arm masks for every in-window route
// point; armsAt then serves them from scratch.
func (s *searchScratch) loadArms(r routeView) {
	if r.Empty() {
		return
	}
	for _, p := range r.PointList() {
		if !s.win.Contains(p.Pt2()) || p.Layer >= s.layers {
			continue
		}
		i := s.pointIdx(p)
		s.arms[i] = r.ArmMask(p)
		s.armStamp[i] = s.epoch
	}
}

// armsAt returns the cached arm mask of p (0 when the route has no
// metal there).
func (s *searchScratch) armsAt(p geom.Pt3) uint8 {
	i := s.pointIdx(p)
	if s.armStamp[i] != s.epoch {
		return 0
	}
	return s.arms[i]
}

// distAt returns the tentative distance of a state, infCost when the
// cell was not written this epoch.
func (s *searchScratch) distAt(id int32) int64 {
	c := &s.cells[id]
	if c.stamp != s.epoch {
		return infCost
	}
	return c.dist
}

// setDist records a tentative distance and parent, stamping the cell
// into the current epoch.
func (s *searchScratch) setDist(id int32, d int64, parent int32) {
	s.cells[id] = cell{dist: d, parent: parent, stamp: s.epoch}
}

func (s *searchScratch) stateIdx(p geom.Pt3, ds int) int32 {
	return int32(((p.Layer*s.wH+(p.Y-s.win.MinY))*s.wW+(p.X-s.win.MinX))*numDirStates + ds)
}

func (s *searchScratch) statePt(idx int32) (geom.Pt3, int) {
	ds := int(idx) % numDirStates
	rest := int(idx) / numDirStates
	x := rest%s.wW + s.win.MinX
	rest /= s.wW
	y := rest%s.wH + s.win.MinY
	l := rest / s.wH
	return geom.XYL(x, y, l), ds
}

// pqItem is a queue entry: f is the A* key — the exact cost g from the
// sources plus the admissible lower bound to the target (g itself when
// the bound is disabled). g is recovered at pop time by subtracting
// the bound. xyl packs the state's absolute coordinates and layer so a
// pop needs no division to recover them (id still encodes the
// direction state). seq is the push sequence number: both queue
// backends order items by (f, seq), so equal-key ties pop in push
// order regardless of backend — the canonical order the differential
// tests pin. Stale entries — whose g exceeds the state's current
// tentative distance — are skipped on pop.
type pqItem struct {
	f   int64
	id  int32
	xyl uint32
	seq uint32
}

// pqLess is the canonical queue order: key, then push sequence.
func pqLess(a, b pqItem) bool {
	return a.f < b.f || (a.f == b.f && a.seq < b.seq)
}

// packXYL fits x and y in 14 bits each and the layer in 4; grids are
// far below 16384 tracks and 16 layers (grid.New would have to change
// first).
func packXYL(p geom.Pt3) uint32 {
	return uint32(p.X) | uint32(p.Y)<<14 | uint32(p.Layer)<<28
}

func unpackXYL(v uint32) geom.Pt3 {
	return geom.XYL(int(v&0x3fff), int(v>>14&0x3fff), int(v>>28))
}

// hPush and hPop implement a monomorphic binary min-heap on (f, seq)
// over s.heap — the legacy backend kept behind Config.Queue for
// differential testing against the bucket queue. hPop uses a hole sift
// (identical comparisons and final layout, half the writes).
//
//sadplint:hotpath heap push runs per relaxed edge of the search
func (s *searchScratch) hPush(it pqItem) {
	s.heap = append(s.heap, it)
	h := s.heap
	j := len(h) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !pqLess(h[j], h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

//sadplint:hotpath heap pop runs per expanded node of the search
func (s *searchScratch) hPop() pqItem {
	h := s.heap
	n := len(h) - 1
	top := h[0]
	moved := h[n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		j := l
		if r := l + 1; r < n && pqLess(h[r], h[l]) {
			j = r
		}
		if !pqLess(h[j], moved) {
			break
		}
		h[i] = h[j]
		i = j
	}
	h[i] = moved
	s.heap = h[:n]
	return top
}

// push enqueues a state into the selected backend, assigning the next
// tie-break sequence number.
//
//sadplint:hotpath queue push runs per relaxed edge of the search
func (s *searchScratch) push(f int64, id int32, xyl uint32) {
	it := pqItem{f: f, id: id, xyl: xyl, seq: s.seq}
	s.seq++
	if s.useHeap {
		s.hPush(it)
	} else {
		s.bq.push(it)
	}
}

// queued returns the number of enqueued items.
//
//sadplint:hotpath queue size is polled per search iteration
func (s *searchScratch) queued() int {
	if s.useHeap {
		return len(s.heap)
	}
	return s.bq.n
}

// pop dequeues the (f, seq)-minimal item from the selected backend.
//
//sadplint:hotpath queue pop runs per expanded node of the search
func (s *searchScratch) pop() pqItem {
	if s.useHeap {
		return s.hPop()
	}
	return s.bq.pop()
}

// source is a search start state.
type source struct {
	p    geom.Pt3
	din  geom.Dir
	cost int64
}

// routeView is the subset of grid.Route the search needs; it keeps the
// search testable with lightweight fakes.
type routeView interface {
	PointList() []geom.Pt3
	ArmMask(geom.Pt3) uint8
	Empty() bool
}

// findPath routes one two-pin connection from the net's connected
// component (the current route r plus the listed points) to target,
// using a window-bounded search that grows on failure up to the whole
// grid.
//
//sadplint:scratch the returned path aliases search scratch, valid until the next search
func (rt *Router) findPath(r routeView, connected []geom.Pt3, target geom.Pt3, net int32) ([]geom.Pt3, error) {
	return rt.findPathMode(r, connected, target, net, false)
}

// findPathColumn is findPath with the target relaxed to the whole
// layer column above target's (x, y): the search succeeds on reaching
// the column at any layer. Steiner junctions are routed this way — a
// junction is a meeting point of same-net wires, not a terminal, so
// pinning it to layer 0 would force via stacks for no benefit.
//
//sadplint:scratch the returned path aliases search scratch, valid until the next search
func (rt *Router) findPathColumn(r routeView, connected []geom.Pt3, target geom.Pt3, net int32) ([]geom.Pt3, error) {
	return rt.findPathMode(r, connected, target, net, true)
}

//sadplint:scratch the returned path aliases search scratch, valid until the next search
func (rt *Router) findPathMode(r routeView, connected []geom.Pt3, target geom.Pt3, net int32, anyLayer bool) ([]geom.Pt3, error) {
	rt.colTarget = anyLayer
	defer func() { rt.colTarget = false }()
	sources := rt.srcBuf[:0]
	if r.Empty() {
		for _, p := range connected {
			sources = append(sources, source{p: p, din: geom.None})
		}
	} else {
		for _, p := range r.PointList() {
			sources = append(sources, source{p: p, din: geom.None})
		}
	}
	rt.srcBuf = sources

	box := geom.NewRect(target.Pt2(), target.Pt2())
	for _, s := range sources {
		box = box.AddPt(s.p.Pt2())
	}
	clip := rt.g.Bounds()
	for margin := rt.cfg.SearchMargin; ; margin *= 2 {
		win := box.Expand(margin, clip)
		if path, _, ok := rt.dijkstra(r, sources, target, net, win); ok {
			return path, nil
		}
		if win == clip {
			return nil, fmt.Errorf("no path to %v (grid exhausted)", target)
		}
	}
}

// forbiddenTurn is the turn-table sentinel for an illegal L.
const forbiddenTurn = int64(-1)

// buildTurnTab precomputes the turn classification of every (point
// class, arm mask) pair: the metal shape created at a point is the
// union of the net's existing arms, the moving wire's incoming arm,
// and the exit direction. Exactly-two perpendicular arms form an L
// whose class gates the step; any other shape carries no L-turn
// constraint (straight wires, T-junctions, via landings). Entries hold
// the additional cost, or forbiddenTurn when the L is illegal. Turn
// legality depends on the point only through its coordinate parities
// (coloring.ClassOf), which is what makes the 4×16 table exhaustive.
func buildTurnTab(scheme coloring.Scheme, nonPrefTurnCost int64) (tab [coloring.NumPointClasses][16]int64) {
	for cls := 0; cls < coloring.NumPointClasses; cls++ {
		p := geom.XY(cls&1, cls>>1) // representative point of the class
		for arms := uint8(0); arms < 16; arms++ {
			if bits.OnesCount8(arms) != 2 {
				continue
			}
			lo := arms & (arms - 1) // clear lowest set bit
			a1 := armOf(arms &^ lo)
			a2 := armOf(lo)
			corner, isCorner := coloring.CornerOf(a1, a2)
			if !isCorner {
				continue // straight (E|W or N|S)
			}
			switch scheme.Turn(p, corner) {
			case coloring.Forbidden:
				tab[cls][arms] = forbiddenTurn
			case coloring.NonPreferred:
				tab[cls][arms] = nonPrefTurnCost
			}
		}
	}
	return tab
}

// lowerBound is the admissible A* heuristic: every remaining planar
// unit step costs at least CostScale (the preferred-direction wire
// cost; non-preferred steps, turn penalties and node costs only add),
// and every remaining layer crossing costs at least the base via cost.
// It is consistent — a planar step changes the Manhattan term by at
// most CostScale and a via step changes the layer term by exactly the
// via bound — so the first pop of the target is optimal and the found
// path cost equals plain Dijkstra's.
func (rt *Router) lowerBound(p, target geom.Pt3) int64 {
	if rt.noAStar {
		return 0
	}
	md := int64(p.Pt2().ManhattanDist(target.Pt2()))
	if rt.colTarget {
		// Column target: the nearest goal state is on p's own layer, so
		// only the planar term bounds the remaining cost. Still
		// consistent — via steps leave the bound unchanged and cost ≥ 0.
		return md * CostScale
	}
	ld := int64(p.Layer - target.Layer)
	if ld < 0 {
		ld = -ld
	}
	return md*CostScale + ld*rt.minViaCost
}

// dijkstra runs the goal-directed (A*) variant of the modified
// Dijkstra search within win. It returns the path source→target and
// its cost, or ok=false when the target is unreachable in the window.
//
//sadplint:hotpath the inner search step; millions of node expansions per job
//sadplint:scratch the returned path aliases search scratch, valid until the next search
func (rt *Router) dijkstra(r routeView, sources []source, target geom.Pt3, net int32, win geom.Rect) ([]geom.Pt3, int64, bool) {
	s := &rt.search
	s.reset(win, rt.g.NumLayers)
	s.loadArms(r)
	for _, src := range sources {
		if !win.Contains(src.p.Pt2()) {
			continue
		}
		id := s.stateIdx(src.p, dirState(src.din))
		if src.cost < s.distAt(id) {
			s.setDist(id, src.cost, -1)
			s.push(src.cost+rt.lowerBound(src.p, target), id, packXYL(src.p))
		}
	}
	P := rt.cfg.Params
	nonPrefStep := P.NonPrefMul * CostScale
	baseViaCost := P.ViaCost * CostScale
	// Neighbor state ids derive incrementally from the popped point
	// index: one point step is ±1 (x), ±wW (y) or ±wW·wH (layer) in
	// the dense window layout. pointDelta is ordered like
	// geom.PlanarDirs; the matching direction states are 1..4.
	pointDelta := [4]int{1, -1, s.wW, -s.wW}
	layerDelta := s.wW * s.wH
	gridDelta := [4]int{1, -1, rt.g.W, -rt.g.W}
	for s.queued() > 0 {
		it := s.pop()
		p := unpackXYL(it.xyl)
		ds := int(it.id) % numDirStates
		pIdx := int(it.id) / numDirStates
		g := it.f - rt.lowerBound(p, target)
		if g > s.cells[it.id].dist {
			continue // stale
		}
		if p == target || (rt.colTarget && p.Pt2() == target.Pt2()) {
			return s.rebuildPath(it.id), g, true
		}
		din := stateDirs[ds]
		// The metal shape any exit step joins: the net's existing arms
		// at p plus the moving wire's incoming arm.
		baseArms := s.armsAt(p)
		if din.Planar() {
			baseArms |= armBit(din.Opposite())
		}
		turnRow := &rt.turnTab[p.X&1|(p.Y&1)<<1]
		// Per-layer folded price row (assigned costs + history), hoisted
		// out of the planar-move loop.
		mp := rt.metalPrice[p.Layer]
		occ := rt.g.Metal[p.Layer]
		prefHorizontal := rt.g.PrefHorizontal(p.Layer)
		gp := p.Y*rt.g.W + p.X
		// Planar moves.
		for di, d := range geom.PlanarDirs {
			if din.Planar() && d == din.Opposite() {
				continue // no U-turns
			}
			np := p.Step(d)
			if !win.Contains(np.Pt2()) {
				continue
			}
			if rt.foreignPin(np, net) {
				continue
			}
			turnCost := turnRow[baseArms|armBit(d)]
			if turnCost == forbiddenTurn {
				continue
			}
			step := int64(CostScale)
			if d.Horizontal() != prefHorizontal {
				step = nonPrefStep
			}
			cost := g + step + turnCost
			pi := gp + gridDelta[di]
			cost += mp[pi]
			if k := occ.CountOther(np.Pt2(), net); k > 0 {
				cost += int64(k) * rt.presFac
			}
			nid := int32((pIdx+pointDelta[di])*numDirStates + di + 1)
			if cost < s.distAt(nid) {
				s.setDist(nid, cost, it.id)
				s.push(cost+rt.lowerBound(np, target), nid, packXYL(np))
			}
		}
		// Via moves.
		for vi, d := range [2]geom.Dir{geom.Up, geom.Down} {
			if din.Via() && d == din.Opposite() {
				continue // no via pumps
			}
			np := p.Step(d)
			if np.Layer < 0 || np.Layer >= rt.g.NumLayers {
				continue
			}
			if rt.foreignPin(np, net) {
				continue
			}
			vl := p.Layer
			nd := layerDelta
			if d == geom.Down {
				vl = np.Layer
				nd = -layerDelta
			}
			pi := gp
			if rt.blockVia[vl][pi] && !rt.ignoreBlocks {
				continue
			}
			cost := g + baseViaCost + rt.viaPrice[vl][pi]
			cost += rt.metalNodeCost(np, net)
			nid := int32((pIdx+nd)*numDirStates + 5 + vi)
			if cost < s.distAt(nid) {
				s.setDist(nid, cost, it.id)
				s.push(cost+rt.lowerBound(np, target), nid, packXYL(np))
			}
		}
	}
	return nil, 0, false
}

// foreignPin reports whether p is another net's pin cell (layer 0
// terminals are hard obstacles for every other net).
func (rt *Router) foreignPin(p geom.Pt3, net int32) bool {
	if p.Layer != 0 {
		return false
	}
	o := rt.pinOwner[rt.g.PIdx(p.Pt2())]
	return o != 0 && o != net+1
}

// metalNodeCost is the dynamic cost of occupying metal point p:
// assigned costs (BDC spill) plus history (the folded price), and the
// congestion penalty per foreign occupant.
func (rt *Router) metalNodeCost(p geom.Pt3, net int32) int64 {
	pi := rt.g.PIdx(p.Pt2())
	c := rt.metalPrice[p.Layer][pi]
	if k := rt.g.Metal[p.Layer].CountOther(p.Pt2(), net); k > 0 {
		c += int64(k) * rt.presFac
	}
	return c
}

// rebuildPath walks the parent chain into the reused reversal buffer,
// then emits the forward path, dropping consecutive duplicates (none
// expected, but cheap to guarantee). The returned slice is scratch,
// valid only until the next search — callers that keep the path copy
// it (grid.Route.AddPathCopy).
//
//sadplint:scratch returns the reused pathFwd buffer, valid until the next search
func (s *searchScratch) rebuildPath(id int32) []geom.Pt3 {
	rev := s.pathRev[:0]
	for id != -1 {
		p, _ := s.statePt(id)
		rev = append(rev, p)
		id = s.cells[id].parent
	}
	s.pathRev = rev
	out := s.pathFwd[:0]
	for i := len(rev) - 1; i >= 0; i-- {
		if len(out) == 0 || out[len(out)-1] != rev[i] {
			out = append(out, rev[i])
		}
	}
	s.pathFwd = out
	return out
}
