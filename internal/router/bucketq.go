package router

// bucketQueue is a Dial-style monotone priority queue over pqItems.
//
// The windowed search's keys are small bounded increments: every edge
// relaxation pushes a key f' ∈ [f, f+Δmax] where f is the key just
// popped and Δmax is the largest single-step cost (wire step + turn +
// node prices + congestion penalty; see DESIGN.md §12 for the bound
// derivation from Params). Dial's structure exploits that: a ring of
// `span` FIFO buckets indexed by f mod span, with a cursor that only
// moves forward. Push is O(1); pop amortizes to O(1) because the
// cursor sweeps each key value once per search.
//
// Invariant: every queued key lies in [cur, cur+span). Pushes that
// would widen the in-flight key range beyond the span grow the ring to
// the next power of two and rehash — each old bucket holds exactly one
// key value while the invariant holds, so whole buckets move and FIFO
// order within a key is preserved.
//
// Tie-breaking: items of equal key pop in push order (the per-bucket
// FIFO), i.e. in increasing pqItem.seq. The legacy binary heap orders
// ties by the same sequence number, so both backends pop the exact
// same item sequence for any push trace — the property the routing
// differential tests pin down.
type bucketQueue struct {
	buckets []bqBucket
	mask    int64 // len(buckets)-1; len is a power of two
	cur     int64 // scan cursor: no queued key is below cur
	maxF    int64 // maximum key pushed since the last reset
	n       int   // queued item count
	// dirty records ring slots made non-empty since the last reset so
	// reset clears only what was touched (O(touched), not O(span)).
	// Slots may appear more than once; clearing twice is harmless.
	dirty []int32
}

// bqBucket is one ring slot: a FIFO of equal-key items. head indexes
// the next item to pop; fully drained buckets normalize back to
// (items[:0], head 0) so a clean bucket has exactly one representation.
type bqBucket struct {
	items []pqItem
	head  int
}

// init preallocates the ring. A zero-initialized bucketQueue also
// works (the ring grows on first use); init just avoids the first few
// grows when the caller can bound the key spread up front.
func (q *bucketQueue) init(span int64) {
	if len(q.buckets) != 0 || span <= 0 {
		return
	}
	s := int64(1)
	for s < span {
		s <<= 1
	}
	q.buckets = make([]bqBucket, s)
	q.mask = s - 1
}

// reset empties the queue, keeping all bucket capacity.
func (q *bucketQueue) reset() {
	for _, i := range q.dirty {
		b := &q.buckets[i]
		b.items = b.items[:0]
		b.head = 0
	}
	q.dirty = q.dirty[:0]
	q.n = 0
	q.cur = 0
	q.maxF = 0
}

// push enqueues it. Keys must be non-negative; pushing a key below the
// current minimum is legal (the cursor backs up), pushing one beyond
// cur+span grows the ring.
//
//sadplint:hotpath bucket push runs per relaxed edge of the search
func (q *bucketQueue) push(it pqItem) {
	if it.f < 0 {
		panic("router: negative key pushed into bucket queue")
	}
	if q.n == 0 {
		q.cur = it.f
		q.maxF = it.f
	} else {
		if it.f < q.cur {
			q.cur = it.f
		}
		if it.f > q.maxF {
			q.maxF = it.f
		}
	}
	if need := q.maxF - q.cur + 1; need > int64(len(q.buckets)) {
		q.grow(need)
	}
	i := it.f & q.mask
	b := &q.buckets[i]
	if b.head == len(b.items) {
		// Empty (possibly drained) bucket comes live: normalize and
		// record it for reset.
		b.items = b.items[:0]
		b.head = 0
		q.dirty = append(q.dirty, int32(i))
	}
	b.items = append(b.items, it)
	q.n++
}

// pop removes and returns the minimum-key item (FIFO among equal
// keys). The caller must ensure the queue is non-empty.
//
//sadplint:hotpath bucket pop runs per expanded node of the search
func (q *bucketQueue) pop() pqItem {
	b := &q.buckets[q.cur&q.mask]
	for b.head == len(b.items) {
		q.cur++
		b = &q.buckets[q.cur&q.mask]
	}
	it := b.items[b.head]
	b.head++
	if b.head == len(b.items) {
		b.items = b.items[:0]
		b.head = 0
	}
	q.n--
	return it
}

// grow rehashes the ring into the next power of two ≥ need. While the
// span invariant holds each non-empty bucket contains a single key
// value, and distinct keys cannot collide in the larger ring (they
// would have to differ by ≥ the new span), so buckets move wholesale
// and per-key FIFO order is untouched.
func (q *bucketQueue) grow(need int64) {
	span := int64(64)
	for span < need {
		span <<= 1
	}
	nb := make([]bqBucket, span)
	mask := span - 1
	ndirty := q.dirty[:0]
	for _, i := range q.dirty {
		b := &q.buckets[i]
		if b.head == len(b.items) {
			continue // drained, or a duplicate dirty entry already moved
		}
		ni := b.items[b.head].f & mask
		dst := &nb[ni]
		dst.items = append(dst.items, b.items[b.head:]...)
		ndirty = append(ndirty, int32(ni))
		// Clear the source so duplicate dirty entries skip it.
		b.items = b.items[:0]
		b.head = 0
	}
	q.buckets = nb
	q.mask = mask
	q.dirty = ndirty
}
