package router

import (
	"testing"

	"repro/internal/coloring"
	"repro/internal/dvi"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tpl"
)

// Route a single L-shaped net with one via and inspect exactly which
// costs Algorithm 1 assigned where.
func costProbe(t *testing.T, considerDVI, considerTPL bool) *Router {
	t.Helper()
	nl := &netlist.Netlist{Name: "probe", W: 20, H: 20, NumLayers: 2, Nets: []*netlist.Net{
		{ID: 0, Name: "a", Pins: []geom.Pt{geom.XY(3, 8), geom.XY(9, 14)}},
	}}
	rt, err := New(nl, Config{
		Scheme:      coloring.Scheme{Type: coloring.SIM},
		ConsiderDVI: considerDVI,
		ConsiderTPL: considerTPL,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestNoCostsWithoutConsideration(t *testing.T) {
	rt := costProbe(t, false, false)
	for vl := range rt.viaCost {
		for pi, v := range rt.viaCost[vl] {
			if v != 0 {
				t.Fatalf("viaCost[%d][%d] = %d with all considerations off", vl, pi, v)
			}
		}
		for pi, v := range rt.viaConf[vl] {
			if v != 0 {
				t.Fatalf("viaConf[%d][%d] = %d with all considerations off", vl, pi, v)
			}
		}
	}
}

// BDC: every feasible DVIC of the routed net's via carries
// α·CostScale/#feasible on the via layer and on both metal layers.
func TestBDCAssignedAtFeasibleDVICs(t *testing.T) {
	rt := costProbe(t, true, false)
	r := rt.Routes()[0]
	vias := dvi.ViasOf(r)
	if len(vias) == 0 {
		t.Skip("probe routed without vias")
	}
	f := dvi.Feasibility{G: rt.Grid()}
	P := rt.cfg.Params
	for _, v := range vias {
		feas := f.FeasibleDVICs(r, v)
		if len(feas) == 0 {
			continue
		}
		bdc := P.Alpha * CostScale / int64(len(feas))
		for _, c := range feas {
			pi := rt.g.PIdx(c)
			if rt.viaCost[v.Layer()][pi] < bdc {
				t.Errorf("via site %v: cost %d < BDC %d", c, rt.viaCost[v.Layer()][pi], bdc)
			}
			if rt.metalCost[v.Base.Layer][pi] < bdc {
				t.Errorf("metal %d at %v: cost %d < BDC %d",
					v.Base.Layer, c, rt.metalCost[v.Base.Layer][pi], bdc)
			}
			if rt.metalCost[v.Base.Layer+1][pi] < bdc {
				t.Errorf("metal %d at %v: cost %d < BDC %d",
					v.Base.Layer+1, c, rt.metalCost[v.Base.Layer+1][pi], bdc)
			}
		}
	}
}

// AMC: via sites bordering the net's metal carry at least the
// along-metal constant.
func TestAMCAlongMetal(t *testing.T) {
	rt := costProbe(t, true, false)
	r := rt.Routes()[0]
	P := rt.cfg.Params
	found := false
	for _, p := range r.PointList() {
		for _, d := range geom.PlanarDirs {
			q := p.Pt2().Step(d)
			if !rt.g.InPlane(q) {
				continue
			}
			for _, vl := range [2]int{p.Layer - 1, p.Layer} {
				if vl < 0 || vl >= rt.g.NumLayers-1 {
					continue
				}
				if rt.viaCost[vl][rt.g.PIdx(q)] >= P.AMC*CostScale {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("no along-metal costs found next to routed wire")
	}
}

// CDC: the neighbors of a feasible DVIC (other than the via itself)
// carry the conflict-DVIC cost.
func TestCDCAroundDVICs(t *testing.T) {
	rt := costProbe(t, true, false)
	r := rt.Routes()[0]
	f := dvi.Feasibility{G: rt.Grid()}
	P := rt.cfg.Params
	for _, v := range dvi.ViasOf(r) {
		feas := f.FeasibleDVICs(r, v)
		if len(feas) == 0 {
			continue
		}
		cdc := P.Beta * CostScale / int64(len(feas))
		for _, c := range feas {
			for _, off := range dvi.DVICOffsets {
				w := c.Add(off.X, off.Y)
				if w == v.Pos() || !rt.g.InPlane(w) {
					continue
				}
				if rt.viaCost[v.Layer()][rt.g.PIdx(w)] < cdc {
					t.Errorf("conflict-DVIC site %v: cost %d < CDC %d",
						w, rt.viaCost[v.Layer()][rt.g.PIdx(w)], cdc)
				}
			}
		}
	}
}

// TPLC: every via location within the same-color pitch of the routed
// via has its conflict counter raised, and the search prices it at
// γ × count.
func TestTPLCConflictCounts(t *testing.T) {
	rt := costProbe(t, false, true)
	r := rt.Routes()[0]
	for _, v := range dvi.ViasOf(r) {
		for _, off := range tpl.ConflictOffsets {
			q := v.Pos().Add(off.X, off.Y)
			if !rt.g.InPlane(q) {
				continue
			}
			if rt.viaConf[v.Layer()][rt.g.PIdx(q)] < 1 {
				t.Errorf("no TPLC conflict count at %v near via %v", q, v.Pos())
			}
		}
	}
}

// Fig 10 / Algorithm 2 line 2: with TPL consideration, via sites whose
// use would create an FVP are blocked during the TPL R&R phase.
func TestBlockedViaSites(t *testing.T) {
	nl := randomNetlist("blk", 24, 24, 40, 3)
	rt, err := New(nl, Config{Scheme: coloring.Scheme{Type: coloring.SIM}, ConsiderTPL: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	// After the run, the blocked set must be exactly the
	// would-create-FVP predicate on unoccupied sites.
	for vl, lv := range rt.g.Vias {
		for y := 0; y < nl.H; y++ {
			for x := 0; x < nl.W; x++ {
				p := geom.XY(x, y)
				want := !lv.Has(p) && lv.WouldCreateFVP(p)
				if got := rt.blockVia[vl][rt.g.PIdx(p)]; got != want {
					t.Fatalf("blockVia[%d]%v = %v, want %v", vl, p, got, want)
				}
			}
		}
	}
}

// The turn-state search never produces a U-turn or an up-down via pump
// in any path.
func TestNoDegeneratePathShapes(t *testing.T) {
	nl := randomNetlist("deg", 24, 24, 30, 23)
	rt := route(t, nl, Config{Scheme: coloring.Scheme{Type: coloring.SID}, ConsiderDVI: true, ConsiderTPL: true})
	for _, r := range rt.Routes() {
		for _, path := range r.Paths {
			for i := 2; i < len(path); i++ {
				d1 := path[i-2].DirTo(path[i-1])
				d2 := path[i-1].DirTo(path[i])
				if d1.Planar() && d2 == d1.Opposite() {
					t.Fatalf("U-turn at %v", path[i-1])
				}
				if d1.Via() && d2 == d1.Opposite() {
					t.Fatalf("via pump at %v", path[i-1])
				}
			}
		}
	}
}
