// Package router implements SADP-aware detailed routing with double
// via insertion and via-layer TPL manufacturability consideration — the
// paper's core contribution (§III).
//
// The flow (Fig 8): model the routing graph over the pre-colored grid,
// route nets independently with a turn-aware windowed Dijkstra, resolve
// congestion with negotiated rip-up-and-reroute, then (when via-layer
// TPL is considered) eliminate all forbidden via patterns with a
// dedicated R&R phase and verify global 3-colorability of the via
// decomposition graph. The cost assignment scheme (§III-B) adds BDC,
// AMC, CDC and TPLC to the routing graph after each net is routed so
// that subsequent nets avoid killing DVI opportunities or creating TPL
// conflicts.
package router

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/coloring"
	"repro/internal/dvi"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/netlist"
	"repro/internal/steiner"
)

// Router routes one netlist. Create with New, run with Run.
type Router struct {
	cfg Config
	nl  *netlist.Netlist
	g   *grid.Grid

	routes  []*grid.Route
	ledgers []ledger
	feas    dvi.Feasibility

	// Added routing costs, indexed like the grid.
	metalCost [][]int64 // per routing layer, per point: BDC spill onto metal
	viaCost   [][]int64 // per via layer, per site: BDC + AMC + CDC
	viaConf   [][]int32 // per via layer, per site: coloring-conflict count for TPLC
	histMetal [][]int64 // negotiated-congestion history, metal points
	histVia   [][]int64 // history, via sites
	blockVia  [][]bool  // via sites blocked during TPL violation removal

	// Folded per-point prices, the only cost arrays the search reads:
	//   metalPrice = metalCost + histMetal
	//   viaPrice   = viaCost + histVia + Gamma·CostScale·viaConf
	// Every writer of the semantic arrays above updates the folds in
	// the same integer operation, so the sums are exact, and the hot
	// loop touches one cache line where it used to touch two (metal)
	// or three (via).
	metalPrice [][]int64
	viaPrice   [][]int64

	presFac int64 // current congestion penalty factor
	rng     *rand.Rand

	// pinOwner[pidx] is 1+netID of the net owning a pin at that layer-0
	// point, or 0. Foreign pin cells are hard obstacles: routing over
	// another net's terminal is a short no negotiation can fix.
	pinOwner []int32

	// ignoreBlocks lifts the blocked-via-site constraint for one
	// search: the escape hatch when blocking walls off a net's pins.
	// Any FVP the unblocked route creates re-enters the violation
	// queue.
	ignoreBlocks bool
	// colTarget relaxes the current search's goal to the target's whole
	// layer column (set by findPathColumn for Steiner junctions, which
	// are wire meeting points, not layer-0 terminals).
	colTarget bool

	search searchScratch
	srcBuf []source // reused per-connection source list

	// Rip-up/reroute recycling: ripped Route objects (with their path,
	// cache and map storage) are reused by the next routeNet instead of
	// being re-allocated — the rip-up loops churn through thousands of
	// them. routeNet's per-call pin working sets are reused the same
	// way.
	spareRoutes []*grid.Route
	pinBuf      []geom.Pt3
	connBuf     []geom.Pt3
	remBuf      []geom.Pt3
	pinSeen     map[geom.Pt]bool

	// topos caches each net's Steiner topology. A topology is a pure
	// function of the net's pin set and the static obstacle verdicts
	// (foreign pins, Steiner cells claimed by earlier nets), so rip-up
	// and reroute cycles reuse it — the whole net keeps its tree shape
	// while negotiation moves the wires realizing it.
	topos []*steiner.Tree
	// steinerOwner maps a grid cell claimed as a Steiner point to
	// 1+netID of the claiming net. Later topologies avoid claimed
	// cells: two nets each *forced* through the same cell would be a
	// congestion no negotiation could ever resolve. Claims happen in
	// deterministic routing order, so the reservation set — and with it
	// every topology — is reproducible.
	steinerOwner map[geom.Pt]int32
	// steinerB recycles the topology generator's scratch across nets
	// and (through the arena) across runs.
	steinerB steiner.Builder
	ptBuf    []geom.Pt // reused 2-D pin list for topology building

	// scanStamp/scanEpoch deduplicate the via-driven blocked-site
	// discovery (initBlockedVias): overlapping 5×5 neighborhoods of
	// nearby vias share cells, and each cell is examined once per
	// epoch. Row bands own disjoint rows, so concurrent bands never
	// touch the same stamp.
	scanStamp []uint32
	scanEpoch uint32
	// siteBuf is recycled storage for occupied-via-site snapshots
	// (tpl.AppendSites) taken during TPL bookkeeping.
	siteBuf []geom.Pt
	// victimBuf and ripViasBuf are recycled per-violation working sets
	// of the TPL rip-up loop (candidate victim nets, ripped via
	// snapshots).
	victimBuf  []int32
	ripViasBuf []geom.Pt3
	// dvicBuf is recycled storage for per-via feasible-DVIC queries in
	// the cost assignment (≤4 entries, rewritten for every via).
	dvicBuf []geom.Pt

	// minViaCost is the precomputed per-layer-crossing term of the A*
	// lower bound: the base via cost, floored at zero so a pathological
	// negative parameter degrades to plain Dijkstra instead of an
	// inadmissible bound.
	minViaCost int64
	// noAStar disables the goal-directed lower bound; the search then
	// runs as plain Dijkstra. Used by the admissibility tests.
	noAStar bool
	// turnTab[class][arms] is the precomputed turn cost (or
	// forbiddenTurn) of the metal shape arms at a point of that color
	// class; see buildTurnTab.
	turnTab [coloring.NumPointClasses][16]int64

	stats Stats

	// debugLog, when set, receives progress lines from the violation
	// removal loops.
	debugLog func(format string, args ...interface{})
	// debugVictim, when set, observes each rip-up victim choice.
	debugVictim func(p geom.Pt3, id int32)
	// debugTPLIter, when set, observes the incremental TPL state at the
	// top of every violation-removal iteration. Tests use it to
	// cross-check blockVia and the fvps map against full rescans and to
	// run the independent verifier per iteration.
	debugTPLIter func(iter int, fvps map[fvpKey]bool)
}

func (rt *Router) logf(format string, args ...interface{}) {
	if rt.debugLog != nil {
		rt.debugLog(format, args...)
	}
}

// Stats aggregates what the paper's tables report per circuit.
type Stats struct {
	// Routability is the fraction of nets successfully routed.
	Routability float64
	// Wirelength is the total number of planar unit segments.
	Wirelength int
	// Vias is the total via count.
	Vias int
	// RRIterations counts congestion rip-up-and-reroute iterations.
	RRIterations int
	// TPLRRIterations counts via-layer TPL violation removal
	// iterations.
	TPLRRIterations int
	// FVPsResolved counts FVP violations resolved in the TPL R&R.
	FVPsResolved int
	// ColorFixIterations counts nets ripped in the final 3-colorability
	// fix-up (expected 0; §III-D).
	ColorFixIterations int
	// TPLDegraded is set when Config.TPLBudget expired and the TPL
	// violation-removal phase returned its best-so-far solution.
	TPLDegraded bool
	// RemainingFVPs counts the forbidden via patterns left unresolved
	// by a degraded TPL phase (0 on a full run).
	RemainingFVPs int
	// SteinerNets counts nets whose multi-pin decomposition came from
	// the Steiner topology generator (k ≥ 3 pins, SteinerTopology).
	SteinerNets int
	// SteinerFallbacks counts routing attempts where a Steiner segment
	// proved unrealizable and the net fell back to the greedy
	// nearest-pin order for that attempt.
	SteinerFallbacks int
}

// ErrCanceled reports that the run was aborted through Config.Cancel.
// Callers that wire a context into Cancel should translate it back
// with errors.Is and ctx.Err().
var ErrCanceled = errors.New("router: run canceled")

// checkCancel polls the cooperative cancellation channel. It is called
// at iteration boundaries only — never inside a single net's search —
// so a canceled run stops within one rip-up round.
func (rt *Router) checkCancel() error {
	if rt.cfg.Cancel == nil {
		return nil
	}
	select {
	case <-rt.cfg.Cancel:
		return ErrCanceled
	default:
		return nil
	}
}

// New prepares a router for the netlist. The netlist must validate.
func New(nl *netlist.Netlist, cfg Config) (*Router, error) {
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(len(nl.Nets))
	if rt := cfg.Arena.take(nl); rt != nil {
		rt.reinit(nl, cfg)
		return rt, nil
	}
	g := grid.New(nl.W, nl.H, nl.NumLayers, cfg.Scheme)
	rt := &Router{
		cfg:     cfg,
		nl:      nl,
		g:       g,
		noAStar: !cfg.GoalDirected,
		routes:  make([]*grid.Route, len(nl.Nets)),
		ledgers: make([]ledger, len(nl.Nets)),
		feas:    dvi.Feasibility{G: g},
		rng:     rand.New(rand.NewSource(cfg.Seed + 1)),
	}
	rt.presFac = cfg.Params.UsagePenalty * CostScale
	if cfg.Params.ViaCost > 0 {
		rt.minViaCost = cfg.Params.ViaCost * CostScale
	}
	rt.turnTab = buildTurnTab(cfg.Scheme, cfg.Params.NonPrefTurnCost*CostScale)
	np := nl.W * nl.H
	rt.pinOwner = make([]int32, np)
	for _, n := range nl.Nets {
		for _, p := range n.Pins {
			rt.pinOwner[p.Y*nl.W+p.X] = int32(n.ID) + 1
		}
	}
	rt.topos = make([]*steiner.Tree, len(nl.Nets))
	rt.steinerOwner = make(map[geom.Pt]int32)
	for l := 0; l < nl.NumLayers; l++ {
		rt.metalCost = append(rt.metalCost, make([]int64, np))
		rt.histMetal = append(rt.histMetal, make([]int64, np))
		rt.metalPrice = append(rt.metalPrice, make([]int64, np))
	}
	for v := 0; v < nl.NumLayers-1; v++ {
		rt.viaCost = append(rt.viaCost, make([]int64, np))
		rt.viaConf = append(rt.viaConf, make([]int32, np))
		rt.histVia = append(rt.histVia, make([]int64, np))
		rt.blockVia = append(rt.blockVia, make([]bool, np))
		rt.viaPrice = append(rt.viaPrice, make([]int64, np))
	}
	rt.scanStamp = make([]uint32, np)
	rt.search.useHeap = cfg.Queue == HeapQueue
	rt.search.bq.init(initialBucketSpan(cfg.Params))
	return rt, nil
}

// initialBucketSpan sizes the bucket ring from the cost parameters:
// with no accrued history or congestion the largest single-step key
// increment is bounded by the sum of the per-step cost components
// (wire step, turn penalty, via cost, and the assigned-cost weights,
// all in CostScale units). History and congestion penalties can exceed
// the hint at runtime; the ring then grows once and stays grown.
func initialBucketSpan(p Params) int64 {
	sum := p.NonPrefMul + p.NonPrefTurnCost + p.ViaCost +
		p.Alpha + p.Beta + p.Gamma + p.AMC + p.UsagePenalty
	if sum < 1 {
		sum = 1
	}
	span := int64(256)
	for span < sum*CostScale {
		span <<= 1
	}
	if span > 8192 {
		span = 8192
	}
	return span
}

// Grid exposes the routing grid (read-only use expected).
func (rt *Router) Grid() *grid.Grid { return rt.g }

// Routes returns the per-net routes after Run.
//
//sadplint:scratch the Route objects are arena-recycled, valid until Release/reinit
func (rt *Router) Routes() []*grid.Route { return rt.routes }

// Stats returns the routing statistics after Run.
func (rt *Router) Stats() Stats { return rt.stats }

// Run executes the full flow of Fig 8 up to (and excluding)
// post-routing DVI. It returns an error if any net cannot be routed or
// a violation phase fails to converge within its iteration budget.
func (rt *Router) Run() error {
	// Phase 1: independent routing iterations, shortest nets first.
	order := make([]int, len(rt.nl.Nets))
	for i := range order {
		order[i] = i
	}
	nets := rt.nl.Nets
	sortByHPWL(order, nets)
	for _, id := range order {
		if err := rt.checkCancel(); err != nil {
			return err
		}
		if err := rt.routeNet(int32(id)); err != nil {
			return fmt.Errorf("router: initial routing of net %q: %w", nets[id].Name, err)
		}
		rt.applyNetCosts(int32(id))
	}
	// Phase 2: negotiated congestion R&R.
	if err := rt.resolveCongestion(); err != nil {
		return err
	}
	// Phase 3+4: TPL violation removal and 3-colorability check. A
	// degraded phase 3 (TPLBudget expired) skips the colorability
	// pass: its guarantee only holds for an FVP-free via layout.
	if rt.cfg.ConsiderTPL {
		if err := rt.removeTPLViolations(); err != nil {
			return err
		}
		if !rt.stats.TPLDegraded {
			if err := rt.ensureColorable(); err != nil {
				return err
			}
		}
	}
	rt.collectStats()
	return nil
}

func (rt *Router) collectStats() {
	routed := 0
	wl, vias := 0, 0
	for _, r := range rt.routes {
		if r == nil || r.Empty() {
			continue
		}
		routed++
		wl += r.Wirelength()
		vias += r.NumVias()
	}
	rt.stats.Routability = float64(routed) / float64(len(rt.nl.Nets))
	rt.stats.Wirelength = wl
	rt.stats.Vias = vias
}

func sortByHPWL(order []int, nets []*netlist.Net) {
	// Insertion-stable sort by HPWL; netlists are pre-validated.
	hp := make([]int, len(nets))
	for i, n := range nets {
		hp[i] = n.HPWL()
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if hp[a] != hp[b] {
			return hp[a] < hp[b]
		}
		return a < b
	})
}

// routeNet routes all pins of a net from scratch. The net must not be
// currently routed.
func (rt *Router) routeNet(id int32) error {
	net := rt.nl.Nets[id]
	var r *grid.Route
	if n := len(rt.spareRoutes); n > 0 {
		r = rt.spareRoutes[n-1]
		rt.spareRoutes = rt.spareRoutes[:n-1]
		r.Net = id
	} else {
		r = grid.NewRoute(id)
	}
	pins := rt.pinBuf[:0]
	if rt.pinSeen == nil {
		rt.pinSeen = map[geom.Pt]bool{}
	} else {
		clear(rt.pinSeen)
	}
	for _, p := range net.Pins {
		if !rt.pinSeen[p] {
			rt.pinSeen[p] = true
			pins = append(pins, geom.XYL(p.X, p.Y, 0))
		}
	}
	rt.pinBuf = pins
	if len(pins) > 2 && rt.cfg.Topology == SteinerTopology {
		if rt.routeSteinerTree(r, pins, id) {
			rt.routes[id] = r
			rt.g.AddRoute(r)
			return nil
		}
		// Some Steiner segment was unrealizable; r was reset. Fall
		// through to the greedy star order below.
	}
	// Connect pins nearest-first starting from pins[0].
	connected := append(rt.connBuf[:0], pins[0])
	remaining := append(rt.remBuf[:0], pins[1:]...)
	for len(remaining) > 0 {
		// Pick the unconnected pin closest to the connected set.
		bi, bd := 0, int(^uint(0)>>1)
		for i, p := range remaining {
			for _, q := range connected {
				if d := p.Pt2().ManhattanDist(q.Pt2()); d < bd {
					bd, bi = d, i
				}
			}
		}
		target := remaining[bi]
		remaining = append(remaining[:bi], remaining[bi+1:]...)
		rt.connBuf, rt.remBuf = connected, remaining
		path, err := rt.findPath(r, connected, target, id)
		if err != nil {
			return err
		}
		r.AddPathCopy(path) // path is search scratch, valid until the next findPath
		connected = append(connected, target)
	}
	rt.connBuf, rt.remBuf = connected[:0], remaining[:0]
	rt.routes[id] = r
	rt.g.AddRoute(r)
	return nil
}

// fallbackTopo marks a net whose Steiner topology proved unrealizable:
// a shared empty sentinel distinguishable from "not built yet" (nil)
// and from any real Build result (which always has segments for ≥ 2
// distinct pins). The net routes with the greedy order from then on.
var fallbackTopo = &steiner.Tree{}

// topology returns the net's cached Steiner decomposition, building it
// on first use. Candidate Steiner points are vetoed on foreign pin
// cells (hard obstacles for this net) and on cells already claimed as
// Steiner points by other nets — two nets forced to terminate wires on
// the same cell would be a congestion no negotiation could resolve.
// The surviving Steiner points are claimed for this net. Topologies
// are built in the deterministic initial routing order, so the claim
// set, and with it every later topology, is reproducible.
func (rt *Router) topology(id int32, pins []geom.Pt3) *steiner.Tree {
	if t := rt.topos[id]; t != nil {
		return t
	}
	pts := rt.ptBuf[:0]
	for _, p := range pins {
		pts = append(pts, p.Pt2())
	}
	rt.ptBuf = pts
	t := rt.steinerB.Build(pts, steiner.Options{
		Blocked: func(p geom.Pt) bool {
			if o := rt.pinOwner[p.Y*rt.nl.W+p.X]; o != 0 && o != id+1 {
				return true
			}
			o, ok := rt.steinerOwner[p]
			return ok && o != id+1
		},
	})
	for _, s := range t.Steiner {
		rt.steinerOwner[s] = id + 1
	}
	if len(t.Segs) > 1 {
		rt.stats.SteinerNets++
	}
	rt.topos[id] = t
	return t
}

// routeSteinerTree realizes the net's Steiner topology segment by
// segment. Each search is seeded with the net's entire routed
// component at cost zero, so a segment reuses already-routed wires of
// the same net as free trunk and only pays for new metal. It reports
// false — with r reset and the net marked for the greedy fallback —
// when a segment cannot be realized.
func (rt *Router) routeSteinerTree(r *grid.Route, pins []geom.Pt3, id int32) bool {
	tree := rt.topology(id, pins)
	if len(tree.Segs) == 0 {
		return false // fallback sentinel
	}
	root := append(rt.connBuf[:0], pins[0])
	rt.connBuf = root
	for _, seg := range tree.Segs {
		junction := false
		for _, s := range tree.Steiner {
			if s == seg.B {
				junction = true
				break
			}
		}
		target := geom.XYL(seg.B.X, seg.B.Y, 0)
		if !r.Empty() && rt.coversTarget(r, seg.B, junction) {
			continue // an earlier path already runs through this node
		}
		var path []geom.Pt3
		var err error
		if junction {
			// A Steiner junction is a meeting point of same-net wires,
			// not a terminal: reaching its column on any layer connects
			// the tree without forcing a via stack down to layer 0.
			path, err = rt.findPathColumn(r, root, target, id)
		} else {
			path, err = rt.findPath(r, root, target, id)
		}
		if err != nil {
			r.Reset()
			r.Net = id
			rt.topos[id] = fallbackTopo
			rt.stats.SteinerFallbacks++
			return false
		}
		r.AddPathCopy(path)
	}
	return true
}

// coversTarget reports whether the partial route already reaches a
// tree node: the exact layer-0 point for a pin, any layer of the
// node's column for a Steiner junction.
func (rt *Router) coversTarget(r *grid.Route, node geom.Pt, junction bool) bool {
	if !junction {
		return r.HasPoint(geom.XYL(node.X, node.Y, 0))
	}
	for l := 0; l < rt.g.NumLayers; l++ {
		if r.HasPoint(geom.XYL(node.X, node.Y, l)) {
			return true
		}
	}
	return false
}

// ripUp removes a net's route, cost contributions and occupancy. The
// Route object is recycled for the next routeNet — no caller retains a
// ripped route (ripUpTracked copies the via list it needs first).
func (rt *Router) ripUp(id int32) {
	r := rt.routes[id]
	if r == nil || r.Empty() {
		return
	}
	rt.revertNetCosts(id)
	rt.g.RemoveRoute(r)
	rt.routes[id] = nil
	r.Reset()
	rt.spareRoutes = append(rt.spareRoutes, r)
}

// reroute routes a previously ripped-up net and reapplies its costs.
func (rt *Router) reroute(id int32) error {
	if err := rt.routeNet(id); err != nil {
		return err
	}
	rt.applyNetCosts(id)
	return nil
}
