// Package detfixture exercises detclock under a deterministic
// package path.
package detfixture

import (
	"math/rand"
	"time"
)

// Elapsed reads the wall clock twice.
func Elapsed() time.Duration {
	start := time.Now()      // want "time.Now in deterministic package"
	return time.Since(start) // want "time.Since in deterministic package"
}

// Remaining converts a deadline via the clock.
func Remaining(dl time.Time) time.Duration {
	return time.Until(dl) // want "time.Until in deterministic package"
}

// Jitter draws from the process-global source.
func Jitter() int {
	return rand.Intn(10) // want "global rand.Intn"
}

// Shuffle mutates via the global source too.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global rand.Shuffle"
}

// Seeded threads an explicit seed: the constructors and the methods
// of the resulting generator are allowed.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// Duration arithmetic without a clock read is fine.
func Budgeted(budget time.Duration) time.Duration {
	return budget / 2
}

// Suppressed documents a deliberate clock read.
func Suppressed() time.Time {
	//sadplint:ignore detclock fixture exercising the suppression path
	return time.Now()
}
