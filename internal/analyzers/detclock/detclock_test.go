package detclock_test

import (
	"testing"

	"repro/internal/analyzers/detclock"
	"repro/internal/analyzers/lint/linttest"
)

func TestDetclock(t *testing.T) {
	linttest.Run(t, "testdata/detfixture", "example.org/detfixture", detclock.Analyzer)
}

// The same clock-ridden fixture under an ordinary package path must
// be silent: detclock only polices the deterministic packages.
func TestDetclockSilentOutsideDeterministicPackages(t *testing.T) {
	linttest.RunExpectClean(t, "testdata/detfixture", "example.org/ordinary", detclock.Analyzer)
}
