// Package detclock bans wall-clock reads and ambient randomness from
// the deterministic packages. Bit-identical routing metrics (PR 1)
// and exact golden-file compares (PR 3) only hold while every
// tie-break and every cost comes from inputs and Config.Seed;
// time.Now / time.Since and the global math/rand state are invisible
// inputs that -race and staticcheck both accept without complaint.
//
// Seeded *rand.Rand values threaded from a config (rand.New with
// rand.NewSource(seed), the pattern internal/router and
// internal/bench already use) remain allowed: only the package-level
// math/rand functions, which draw from the shared global source, are
// flagged.
package detclock

import (
	"go/ast"
	"go/types"

	"repro/internal/analyzers/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "detclock",
	Doc:  "flags time.Now/time.Since and global math/rand use in deterministic packages",
	Run:  run,
}

// bannedTime are the wall-clock reads: anything deriving a value from
// the machine's clock inside a solver path makes output timing-
// dependent.
var bannedTime = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// allowedRand are the math/rand constructors for explicitly seeded
// generators; every other package-level function of math/rand (Intn,
// Perm, Shuffle, Seed, ...) uses the process-global source.
var allowedRand = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func run(pass *lint.Pass) error {
	if !lint.IsDeterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if bannedTime[fn.Name()] {
					pass.Reportf(sel.Pos(), "time.%s in deterministic package %s: wall-clock input breaks run-to-run reproducibility (thread timing through explicit budgets or measure outside the solver)", fn.Name(), pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				if !allowedRand[fn.Name()] {
					pass.Reportf(sel.Pos(), "global rand.%s in deterministic package %s: draws from the shared unseeded source (use a *rand.Rand seeded from Config.Seed)", fn.Name(), pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil
}
