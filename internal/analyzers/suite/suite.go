// Package suite registers the sadplint analyzers. cmd/sadplint and
// the repo-wide cleanliness test both consume this list, so adding an
// analyzer here wires it into `go vet -vettool`, `make lint` and
// `go test ./...` at once.
package suite

import (
	"repro/internal/analyzers/arenaesc"
	"repro/internal/analyzers/cancelpoll"
	"repro/internal/analyzers/detclock"
	"repro/internal/analyzers/detmap"
	"repro/internal/analyzers/hotalloc"
	"repro/internal/analyzers/lint"
	"repro/internal/analyzers/lockcheck"
	"repro/internal/analyzers/lockorder"
)

// Analyzers is the full sadplint suite.
var Analyzers = []*lint.Analyzer{
	detmap.Analyzer,
	detclock.Analyzer,
	lockcheck.Analyzer,
	cancelpoll.Analyzer,
	arenaesc.Analyzer,
	lockorder.Analyzer,
	hotalloc.Analyzer,
}
