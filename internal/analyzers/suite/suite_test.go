package suite_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analyzers/arenaesc"
	"repro/internal/analyzers/detmap"
	"repro/internal/analyzers/lint"
	"repro/internal/analyzers/lockcheck"
	"repro/internal/analyzers/lockorder"
	"repro/internal/analyzers/suite"
)

const repoRoot = "../../.."

// TestRepoIsClean runs the full suite over every package of the
// module. Any new violation — an unsorted map range in a solver
// package, a wall-clock read, an unguarded field access, a loop with
// no cancellation poll — fails plain `go test ./...`, with no CI
// wiring needed.
func TestRepoIsClean(t *testing.T) {
	pkgs, err := lint.Load(repoRoot, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	diags, err := lint.RunAnalyzers(pkgs, suite.Analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestInjectedMapRangeIsCaught re-type-checks internal/tpl with an
// extra source file containing an order-sensitive map range: detmap
// must flag it. This is the acceptance drill for the whole pipeline —
// if this test passes, committing such code to internal/tpl fails
// TestRepoIsClean the same way.
func TestInjectedMapRangeIsCaught(t *testing.T) {
	src := `package tpl

func InjectedKeys(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
`
	diags := analyzeWithInjection(t, "internal/tpl", "repro/internal/tpl", src, detmap.Analyzer)
	requireDiagnostic(t, diags, "zz_injected.go", "range over map in deterministic package")
}

// TestInjectedUnguardedWriteIsCaught does the same drill for
// lockcheck: a jobStore method touching the guarded map without the
// mutex must be flagged.
func TestInjectedUnguardedWriteIsCaught(t *testing.T) {
	src := `package service

func (s *jobStore) injectedDrop(id string) {
	delete(s.jobs, id)
}
`
	diags := analyzeWithInjection(t, "internal/service", "repro/internal/service", src, lockcheck.Analyzer)
	requireDiagnostic(t, diags, "zz_injected.go", "guarded by s.mu but accessed without holding it")
}

// TestInjectedLockOrderInversionIsCaught injects into internal/cluster
// an auxiliary mutex acquired before Coordinator.mu in one function and
// after it in another: lockorder must report the cycle. Committing such
// an inversion to the cluster package fails TestRepoIsClean identically.
func TestInjectedLockOrderInversionIsCaught(t *testing.T) {
	src := `package cluster

import "sync"

type zzAux struct {
	mu sync.Mutex
	n  int
}

var zzA zzAux

func (c *Coordinator) zzCoordThenAux() {
	c.mu.Lock()
	zzA.mu.Lock()
	zzA.n++
	zzA.mu.Unlock()
	c.mu.Unlock()
}

func (c *Coordinator) zzAuxThenCoord() {
	zzA.mu.Lock()
	c.mu.Lock()
	c.leaseSeq++
	c.mu.Unlock()
	zzA.mu.Unlock()
}
`
	diags := analyzeWithInjectionFacts(t, "internal/cluster", "repro/internal/cluster", src, lockorder.Analyzer, lint.NewFactStore())
	requireDiagnostic(t, diags, "zz_injected.go", "lock-order cycle")
}

// TestInjectedArenaEscapeIsCaught seeds the cross-package scratch fact
// for router.Routes (as the router package's own run would export it)
// and injects a service function that parks the arena-backed slice in a
// long-lived map: arenaesc must flag the store.
func TestInjectedArenaEscapeIsCaught(t *testing.T) {
	src := `package service

import "repro/internal/router"

var zzLeaked = map[string]interface{}{}

func zzInjectedLeak(rt *router.Router) {
	rs := rt.Routes()
	zzLeaked["routes"] = rs
}
`
	store := lint.NewFactStore()
	store.Set("arenaesc", "repro/internal/router.Router.Routes", "scratch")
	diags := analyzeWithInjectionFacts(t, "internal/service", "repro/internal/service", src, arenaesc.Analyzer, store)
	requireDiagnostic(t, diags, "zz_injected.go", "stores arena-backed scratch")
}

// analyzeWithInjection parses the production sources of relDir plus
// one synthetic file, type-checks the result under the package's real
// import path, and runs a single analyzer over it.
func analyzeWithInjection(t *testing.T, relDir, pkgPath, src string, a *lint.Analyzer) []lint.Diagnostic {
	t.Helper()
	return analyzeWithInjectionFacts(t, relDir, pkgPath, src, a, lint.NewFactStore())
}

// analyzeWithInjectionFacts is analyzeWithInjection with a caller-owned
// fact store, so drills can pre-seed cross-package facts (e.g. the
// scratch marker another package's run would have exported).
func analyzeWithInjectionFacts(t *testing.T, relDir, pkgPath, src string, a *lint.Analyzer, facts *lint.FactStore) []lint.Diagnostic {
	t.Helper()
	dir := filepath.Join(repoRoot, relDir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	inj, err := parser.ParseFile(fset, filepath.Join(dir, "zz_injected.go"), src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing injected source: %v", err)
	}
	files = append(files, inj)
	exports, err := lint.LoadExportMap(repoRoot, pkgPath)
	if err != nil {
		t.Fatalf("export data for %s: %v", pkgPath, err)
	}
	tpkg, info, err := lint.Check(pkgPath, fset, files, lint.ExportImporter(fset, exports))
	if err != nil {
		t.Fatalf("type-checking %s with injection: %v", pkgPath, err)
	}
	pkg := &lint.Package{PkgPath: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info}
	diags, err := lint.RunAnalyzersFacts([]*lint.Package{pkg}, []*lint.Analyzer{a}, facts)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	return diags
}

func requireDiagnostic(t *testing.T, diags []lint.Diagnostic, file, fragment string) {
	t.Helper()
	for _, d := range diags {
		if strings.HasSuffix(d.Pos.Filename, file) && strings.Contains(d.Message, fragment) {
			return
		}
	}
	t.Fatalf("no diagnostic in %s matching %q; got %v", file, fragment, diags)
}
