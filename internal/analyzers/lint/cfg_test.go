package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses a single function body out of src, which must be a
// complete file declaring exactly one function.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_fixture.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fd.Body
		}
	}
	t.Fatal("no function in fixture")
	return nil
}

func blockByKind(g *CFG, kind string) *Block {
	for _, b := range g.Blocks {
		if b.Kind == kind {
			return b
		}
	}
	return nil
}

func TestCFGLoopBackEdge(t *testing.T) {
	g := BuildCFG(parseBody(t, `package p
func f(n int) {
	x := 0
	for i := 0; i < n; i++ {
		x++
	}
	_ = x
}`))
	post := blockByKind(g, "for.post")
	if post == nil {
		t.Fatal("no for.post block")
	}
	header := blockByKind(g, "for.header")
	if header == nil {
		t.Fatal("no for.header block")
	}
	found := false
	for _, s := range post.Succs {
		if s == header {
			found = true
		}
	}
	if !found {
		t.Errorf("for.post lacks the back edge to for.header; succs = %v", kinds(post.Succs))
	}
	body := blockByKind(g, "for.body")
	if body == nil || !g.Reachable(body) {
		t.Error("loop body missing or unreachable")
	}
	// The header must branch both into the body and past the loop.
	wantSuccs := map[string]bool{}
	for _, s := range header.Succs {
		wantSuccs[s.Kind] = true
	}
	if !wantSuccs["for.body"] || !wantSuccs["for.after"] {
		t.Errorf("for.header succs = %v, want both for.body and for.after", kinds(header.Succs))
	}
}

func kinds(bs []*Block) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Kind
	}
	return out
}

func TestCFGDeferLIFO(t *testing.T) {
	g := BuildCFG(parseBody(t, `package p
func f() {
	defer first()
	defer second()
	work()
}`))
	var names []string
	for _, n := range g.Exit.Nodes {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			t.Fatalf("exit node is %T, want *ast.CallExpr", n)
		}
		names = append(names, call.Fun.(*ast.Ident).Name)
	}
	if fmt.Sprint(names) != "[second first]" {
		t.Errorf("exit defers = %v, want [second first] (LIFO)", names)
	}
}

func TestCFGUnreachableAfterReturn(t *testing.T) {
	g := BuildCFG(parseBody(t, `package p
func f() int {
	return 1
	println("dead")
}`))
	dead := blockByKind(g, "unreachable")
	if dead == nil {
		t.Fatal("no unreachable block for code after return")
	}
	if g.Reachable(dead) {
		t.Error("block after return reported reachable")
	}
	if len(dead.Nodes) != 1 {
		t.Errorf("unreachable block has %d nodes, want the dead println only", len(dead.Nodes))
	}
	if !g.Reachable(g.Exit) {
		t.Error("exit block must stay reachable through the return")
	}
}

// TestForwardFixpoint runs a set-union analysis over a loop: the state
// collects the source text of every ident assigned so far. The block
// after the loop must see the loop body's writes (the back edge forces
// a second pass over the header), and the unreachable tail must keep
// the zero state.
func TestForwardFixpoint(t *testing.T) {
	g := BuildCFG(parseBody(t, `package p
func f(n int) {
	a := 0
	for i := 0; i < n; i++ {
		b := i
		_ = b
	}
	c := a
	_ = c
}`))
	flow := Flow[map[string]bool]{
		Entry: map[string]bool{},
		Copy: func(s map[string]bool) map[string]bool {
			out := make(map[string]bool, len(s))
			for k := range s {
				out[k] = true
			}
			return out
		},
		Join: func(dst, src map[string]bool) bool {
			changed := false
			for k := range src {
				if !dst[k] {
					dst[k] = true
					changed = true
				}
			}
			return changed
		},
		Transfer: func(n ast.Node, _ *Block, s map[string]bool) {
			if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
				for _, lhs := range as.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						s[id.Name] = true
					}
				}
			}
		},
	}
	in := Forward(g, flow)

	header := blockByKind(g, "for.header")
	if header == nil {
		t.Fatal("no for.header block")
	}
	hin := in[header.Index]
	// The header's input joins the preheader (a, i) with the back edge
	// (which also carries b): the fixpoint must include b.
	for _, want := range []string{"a", "i", "b"} {
		if !hin[want] {
			t.Errorf("for.header input missing %q after fixpoint: %v", want, hin)
		}
	}
	after := blockByKind(g, "for.after")
	if after == nil {
		t.Fatal("no for.after block")
	}
	if ain := in[after.Index]; !ain["a"] || !ain["b"] {
		t.Errorf("for.after input = %v, want a and b visible", ain)
	}
}

func TestForwardUnreachableGetsZeroState(t *testing.T) {
	g := BuildCFG(parseBody(t, `package p
func f() {
	x := 1
	_ = x
	return
	println("dead")
}`))
	flow := Flow[map[string]bool]{
		Entry: map[string]bool{"live": true},
		Copy: func(s map[string]bool) map[string]bool {
			out := make(map[string]bool, len(s))
			for k := range s {
				out[k] = true
			}
			return out
		},
		Join:     func(dst, src map[string]bool) bool { return false },
		Transfer: func(ast.Node, *Block, map[string]bool) {},
	}
	in := Forward(g, flow)
	dead := blockByKind(g, "unreachable")
	if dead == nil {
		t.Fatal("no unreachable block")
	}
	if in[dead.Index] != nil {
		t.Errorf("unreachable block got state %v, want nil zero value", in[dead.Index])
	}
	if in[g.Exit.Index] == nil {
		t.Error("exit block should have been reached")
	}
}
