package lint

// A per-function control-flow graph over raw AST statements. The
// real golang.org/x/tools/go/cfg cannot be vendored here (the image
// carries no module cache), so this is a from-scratch builder with the
// shape the repo's flow-sensitive analyzers need: basic blocks of
// non-control statements (plus the condition/tag expressions evaluated
// on the way), explicit loop back-edges, break/continue/goto/
// fallthrough resolution including labels, and a single exit block
// that carries the function's deferred calls in LIFO order so a
// dataflow client sees them run last.
//
// Granularity: Block.Nodes holds ast.Node values that are either
// whole non-control statements (assignments, sends, returns, ...) or
// bare expressions (an if condition, a switch tag, a range operand).
// Control statements themselves never appear as nodes — their
// structure is the graph.

import (
	"go/ast"
	"go/token"
)

// A Block is one basic block: straight-line nodes and the successor
// edges out of it.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block

	// Kind labels why the block exists, for tests and debugging
	// ("entry", "exit", "for.header", "if.then", ...).
	Kind string
}

// A CFG is the control-flow graph of one function body. Blocks[0] is
// the entry; Exit is the unique exit block every return, panic and the
// final fall-through reach. Deferred calls appear as the Exit block's
// nodes, last deferred first.
type CFG struct {
	Blocks []*Block
	Exit   *Block
}

// Reachable reports whether blk is reachable from the entry block.
func (g *CFG) Reachable(blk *Block) bool {
	seen := make([]bool, len(g.Blocks))
	stack := []*Block{g.Blocks[0]}
	seen[0] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == blk {
			return true
		}
		for _, s := range b.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// frame is one enclosing breakable construct. Loops also catch
// continue.
type frame struct {
	breakB    *Block
	continueB *Block // nil for switch/select frames
	label     string
}

// cfgBuilder threads the "current block" through a recursive walk of
// the statement tree.
type cfgBuilder struct {
	g      *CFG
	cur    *Block
	frames []frame
	labels map[string]*labelTarget
	// pendingLabel names the label attached to the next loop/switch so
	// `break L` / `continue L` resolve to it.
	pendingLabel string
	// fallNext is the next case body, the target of `fallthrough`.
	fallNext *Block
	defers   []*ast.DeferStmt
}

type labelTarget struct {
	entry     *Block // where `goto L` lands
	breakB    *Block
	continueB *Block
}

// BuildCFG constructs the CFG of a function body. It never returns
// nil: an empty body yields entry→exit.
func BuildCFG(body *ast.BlockStmt) *CFG {
	g := &CFG{}
	b := &cfgBuilder{g: g, labels: map[string]*labelTarget{}}
	entry := b.newBlock("entry")
	g.Exit = b.newBlock("exit")
	b.cur = entry
	b.stmts(body.List)
	b.jump(g.Exit) // fall off the end of the body
	// Deferred calls run on every path out, last deferred first: they
	// belong to the exit block.
	for i := len(b.defers) - 1; i >= 0; i-- {
		g.Exit.Nodes = append(g.Exit.Nodes, b.defers[i].Call)
	}
	return g
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// jump adds an edge cur→to (when cur is still live) and kills cur.
func (b *cfgBuilder) jump(to *Block) {
	if b.cur != nil && to != nil {
		b.cur.Succs = append(b.cur.Succs, to)
	}
	b.cur = nil
}

// emit appends a straight-line node to the current block, reviving a
// dead current block into an unreachable one so clients still see the
// nodes (and tests can assert unreachability).
func (b *cfgBuilder) emit(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// startBlock begins a new block reachable from the current one.
func (b *cfgBuilder) startBlock(kind string) *Block {
	blk := b.newBlock(kind)
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, blk)
	}
	b.cur = blk
	return blk
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.emit(s.Cond)
		cond := b.cur
		after := b.newBlock("if.after")
		b.cur = cond
		b.startBlock("if.then")
		b.stmt(s.Body)
		b.jump(after)
		b.cur = cond
		if s.Else != nil {
			b.startBlock("if.else")
			b.stmt(s.Else)
			b.jump(after)
		} else if cond != nil {
			cond.Succs = append(cond.Succs, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		header := b.startBlock("for.header")
		if s.Cond != nil {
			b.emit(s.Cond)
		}
		condEnd := b.cur // emit may not split, but keep the handle
		after := b.newBlock("for.after")
		post := b.newBlock("for.post")
		if s.Post != nil {
			post.Nodes = append(post.Nodes, s.Post)
		}
		post.Succs = append(post.Succs, header) // loop back edge
		if s.Cond != nil {
			condEnd.Succs = append(condEnd.Succs, after)
		}
		b.pushFrame(frame{breakB: after, continueB: post, label: label})
		b.cur = condEnd
		b.startBlock("for.body")
		b.stmt(s.Body)
		b.jump(post)
		b.popFrame()
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.emit(s.X)
		header := b.startBlock("range.header")
		// The per-iteration key/value binding happens in the header.
		if s.Key != nil || s.Value != nil {
			header.Nodes = append(header.Nodes, s)
		}
		after := b.newBlock("range.after")
		header.Succs = append(header.Succs, after)
		b.pushFrame(frame{breakB: after, continueB: header, label: label})
		b.cur = header
		b.startBlock("range.body")
		b.stmt(s.Body)
		b.jump(header) // loop back edge
		b.popFrame()
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.emit(s.Tag)
		}
		b.switchClauses(s.Body, nil, label)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.switchClauses(s.Body, s.Assign, label)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		after := b.newBlock("select.after")
		b.pushFrame(frame{breakB: after, label: label})
		any := false
		for _, cc := range s.Body.List {
			cl, ok := cc.(*ast.CommClause)
			if !ok {
				continue
			}
			any = true
			b.cur = head
			b.startBlock("select.case")
			if cl.Comm != nil {
				b.stmt(cl.Comm)
			}
			b.stmts(cl.Body)
			b.jump(after)
		}
		b.popFrame()
		if !any {
			// An empty select blocks forever.
			b.cur = nil
		}
		b.cur = after

	case *ast.LabeledStmt:
		name := s.Label.Name
		entry := b.startBlock("label." + name)
		lt := b.labels[name]
		if lt == nil {
			lt = &labelTarget{}
			b.labels[name] = lt
		}
		if lt.entry != nil {
			// A forward goto already materialized a placeholder target:
			// chain it onto the real entry.
			lt.entry.Succs = append(lt.entry.Succs, entry)
		}
		lt.entry = entry
		b.pendingLabel = name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			b.jump(b.breakTarget(s.Label))
		case token.CONTINUE:
			b.jump(b.continueTarget(s.Label))
		case token.GOTO:
			name := s.Label.Name
			lt := b.labels[name]
			if lt == nil {
				lt = &labelTarget{}
				b.labels[name] = lt
			}
			if lt.entry == nil {
				// Forward goto: placeholder the labeled statement chains
				// onto when reached.
				lt.entry = b.newBlock("label." + name + ".fwd")
			}
			b.jump(lt.entry)
		case token.FALLTHROUGH:
			b.jump(b.fallNext) // nil-safe: jump kills cur either way
		}

	case *ast.ReturnStmt:
		b.emit(s)
		b.jump(b.g.Exit)

	case *ast.DeferStmt:
		// The call expression and its arguments are evaluated here; the
		// call itself runs at exit (recorded in the exit block).
		b.defers = append(b.defers, s)
		b.emit(s)

	case *ast.ExprStmt:
		b.emit(s)
		if isPanic(s.X) {
			b.jump(b.g.Exit) // panic leaves through the defers
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Go, Send, Assign, IncDec, Decl and anything future: straight
		// line.
		b.emit(s)
	}
}

// switchClauses builds the shared clause structure of switch and type
// switch. assign is the type switch's `x := y.(type)` statement.
func (b *cfgBuilder) switchClauses(body *ast.BlockStmt, assign ast.Stmt, label string) {
	if assign != nil {
		b.stmt(assign)
	}
	head := b.cur
	after := b.newBlock("switch.after")
	b.pushFrame(frame{breakB: after, label: label})
	var clauses []*ast.CaseClause
	for _, cc := range body.List {
		if cl, ok := cc.(*ast.CaseClause); ok {
			clauses = append(clauses, cl)
		}
	}
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, cl := range clauses {
		if cl.List == nil {
			hasDefault = true
		}
		b.cur = head
		blk := b.startBlock("switch.case")
		for _, e := range cl.List {
			blk.Nodes = append(blk.Nodes, e)
		}
		bodies[i] = blk
	}
	savedFall := b.fallNext
	for i, cl := range clauses {
		b.cur = bodies[i]
		if i+1 < len(clauses) {
			b.fallNext = bodies[i+1]
		} else {
			b.fallNext = nil
		}
		b.stmts(cl.Body)
		b.jump(after)
	}
	b.fallNext = savedFall
	if !hasDefault && head != nil {
		head.Succs = append(head.Succs, after)
	}
	b.popFrame()
	b.cur = after
}

func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// takeLabel consumes the pending label (set by an enclosing
// LabeledStmt) for the loop/switch being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) pushFrame(f frame) {
	b.frames = append(b.frames, f)
	if f.label != "" {
		lt := b.labels[f.label]
		if lt == nil {
			lt = &labelTarget{}
			b.labels[f.label] = lt
		}
		lt.breakB, lt.continueB = f.breakB, f.continueB
	}
}

func (b *cfgBuilder) popFrame() { b.frames = b.frames[:len(b.frames)-1] }

// breakTarget resolves break (labeled or not). Malformed labels — code
// the type checker would reject — resolve to the exit block so the
// builder never crashes.
func (b *cfgBuilder) breakTarget(label *ast.Ident) *Block {
	if label != nil {
		if lt := b.labels[label.Name]; lt != nil && lt.breakB != nil {
			return lt.breakB
		}
		return b.g.Exit
	}
	if n := len(b.frames); n > 0 {
		return b.frames[n-1].breakB
	}
	return b.g.Exit
}

func (b *cfgBuilder) continueTarget(label *ast.Ident) *Block {
	if label != nil {
		if lt := b.labels[label.Name]; lt != nil && lt.continueB != nil {
			return lt.continueB
		}
		return b.g.Exit
	}
	for i := len(b.frames) - 1; i >= 0; i-- {
		if b.frames[i].continueB != nil {
			return b.frames[i].continueB
		}
	}
	return b.g.Exit
}
