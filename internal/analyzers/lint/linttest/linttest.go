// Package linttest is a self-contained analog of
// golang.org/x/tools/go/analysis/analysistest (which cannot be
// vendored here): it runs one analyzer over a fixture directory and
// compares the diagnostics against `// want "regexp"` comments placed
// on the lines where they are expected. A line may carry several
// quoted patterns; every diagnostic must match a want and every want
// must be matched by a diagnostic.
package linttest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analyzers/lint"
)

var (
	// Not anchored at the comment start: a want may ride at the end of
	// a meaningful comment (e.g. after a `guarded by` annotation).
	wantLineRe = regexp.MustCompile(`//\s*want\s+(.+)$`)
	wantPatRe  = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
)

type want struct {
	re  *regexp.Regexp
	raw string
	met bool
}

// Run analyzes the fixture directory as one package under the given
// import path (the path matters: detmap/detclock only fire inside
// deterministic package paths, which any path containing "detfixture"
// is) and verifies the diagnostics against the fixture's want
// comments.
func Run(t *testing.T, dir, pkgPath string, a *lint.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	files, diags := analyze(t, fset, dir, pkgPath, a)
	wants, keys := collectWants(t, fset, files)
	for _, d := range diags {
		key := d.Pos.Filename + ":" + strconv.Itoa(d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.met && w.re.MatchString(d.Message) {
				w.met = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: %s (%s)", d.Pos, d.Message, d.Analyzer)
		}
	}
	for _, key := range keys {
		for _, w := range wants[key] {
			if !w.met {
				t.Errorf("no diagnostic at %s matched %q", key, w.raw)
			}
		}
	}
}

// RunExpectClean analyzes the fixture like Run but asserts the
// analyzer reports nothing, ignoring want comments. It exists for
// package-path-sensitive analyzers: the same violation-laden fixture
// must be silent under a non-deterministic import path.
func RunExpectClean(t *testing.T, dir, pkgPath string, a *lint.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	_, diags := analyze(t, fset, dir, pkgPath, a)
	for _, d := range diags {
		t.Errorf("unexpected diagnostic at %s: %s (%s)", d.Pos, d.Message, d.Analyzer)
	}
}

// analyze parses, type-checks and runs the analyzer over the fixture
// as one package named pkgPath.
func analyze(t *testing.T, fset *token.FileSet, dir, pkgPath string, a *lint.Analyzer) ([]*ast.File, []lint.Diagnostic) {
	t.Helper()
	files, imports := parseFixture(t, fset, dir)
	exports := map[string]string{}
	if len(imports) > 0 {
		var err error
		exports, err = lint.LoadExportMap(dir, imports...)
		if err != nil {
			t.Fatalf("linttest: export data for %v: %v", imports, err)
		}
	}
	tpkg, info, err := lint.Check(pkgPath, fset, files, lint.ExportImporter(fset, exports))
	if err != nil {
		t.Fatalf("linttest: type-checking %s: %v", dir, err)
	}
	pkg := &lint.Package{PkgPath: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info}
	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	return files, diags
}

// parseFixture parses every .go file of dir and returns the files
// plus the sorted union of their import paths.
func parseFixture(t *testing.T, fset *token.FileSet, dir string) ([]*ast.File, []string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var files []*ast.File
	seen := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		files = append(files, f)
		for _, im := range f.Imports {
			p, err := strconv.Unquote(im.Path.Value)
			if err == nil {
				seen[p] = true
			}
		}
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no fixture files in %s", dir)
	}
	imports := make([]string, 0, len(seen))
	for p := range seen {
		imports = append(imports, p)
	}
	sort.Strings(imports)
	return files, imports
}

// collectWants extracts the want expectations, keyed file:line, with
// the keys returned in deterministic order for reporting.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) (map[string][]*want, []string) {
	t.Helper()
	wants := map[string][]*want{}
	var keys []string
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantLineRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := pos.Filename + ":" + strconv.Itoa(pos.Line)
				for _, pm := range wantPatRe.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(pm[1])
					if err != nil {
						t.Fatalf("linttest: bad want pattern %q at %v: %v", pm[1], pos, err)
					}
					if wants[key] == nil {
						keys = append(keys, key)
					}
					wants[key] = append(wants[key], &want{re: re, raw: pm[1]})
				}
			}
		}
	}
	sort.Strings(keys)
	return wants, keys
}
