// Package lint is a minimal, dependency-free analysis framework in
// the shape of golang.org/x/tools/go/analysis, built on the standard
// library only (the container image carries no module cache, so the
// real x/tools cannot be vendored). It provides the Analyzer/Pass
// contract, the //sadplint:ignore suppression grammar shared by every
// analyzer, and drivers for both standalone use and the `go vet
// -vettool` protocol (see unit.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //sadplint:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description: the invariant protected and
	// why the stock tooling cannot see it.
	Doc string
	// Run reports diagnostics for one package via pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts carries cross-package analyzer facts: dependencies'
	// exports are readable (FactOf), this package's are written
	// through ExportFact. See facts.go.
	Facts *FactStore

	diags *[]Diagnostic
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// DeterministicPackages lists the import paths whose routing results
// must be bit-identical run to run (the PR 1 and PR 3 guarantees):
// detmap and detclock apply only inside them. Any package path
// containing "detfixture" is also treated as deterministic so
// analyzer test fixtures exercise the same code path without mutating
// this list.
var DeterministicPackages = []string{
	"repro/internal/router",
	"repro/internal/dvi",
	"repro/internal/tpl",
	"repro/internal/coloring",
	"repro/internal/decompose",
	"repro/internal/verify",
	"repro/internal/bench",
}

// IsDeterministic reports whether the package path is subject to the
// determinism analyzers. Test-variant paths ("p [p.test]", "p_test")
// normalize to their base package.
func IsDeterministic(path string) bool {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	path = strings.TrimSuffix(path, "_test")
	if strings.Contains(path, "detfixture") {
		return true
	}
	for _, p := range DeterministicPackages {
		if path == p {
			return true
		}
	}
	return false
}

// NonTestFiles returns the pass's files excluding _test.go sources:
// the determinism and lock invariants target production code, and the
// test variants `go vet` compiles would otherwise re-report every
// production-file diagnostic.
func (p *Pass) NonTestFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		if !strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			out = append(out, f)
		}
	}
	return out
}

// A Directive is one parsed //sadplint:VERB comment.
type Directive struct {
	Line   int    // line the comment appears on
	Verb   string // "ignore" or "ordered"
	Name   string // analyzer name (ignore only)
	Reason string // justification text; required
	Pos    token.Pos
}

// Directives parses every //sadplint: comment of the file. The
// grammar is:
//
//	//sadplint:ignore <analyzer> <reason...>   suppress that analyzer
//	//sadplint:ordered <reason...>             assert a map range is
//	                                           deliberately unordered
//	//sadplint:scratch <reason...>             the function's returned
//	                                           slices/pointers alias
//	                                           owner-recycled scratch,
//	                                           valid only until the
//	                                           owner's next use/Reset
//	//sadplint:hotpath <reason...>             the function is on a
//	                                           measured hot path; the
//	                                           hotalloc analyzer bans
//	                                           allocation constructs
//	                                           inside it
//
// A suppression directive applies to its own source line, or — when
// the comment stands alone — to the next line. scratch and hotpath
// attach to the function declaration they precede (anywhere in its
// doc comment). All reasons are mandatory.
func Directives(fset *token.FileSet, f *ast.File) []Directive {
	var out []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//sadplint:")
			if !ok {
				continue
			}
			fields := strings.Fields(text)
			if len(fields) == 0 {
				continue
			}
			d := Directive{
				Line: fset.Position(c.Pos()).Line,
				Verb: fields[0],
				Pos:  c.Pos(),
			}
			switch d.Verb {
			case "ignore":
				if len(fields) > 1 {
					d.Name = fields[1]
				}
				d.Reason = strings.Join(fields[2:], " ")
			case "ordered", "scratch", "hotpath":
				d.Reason = strings.Join(fields[1:], " ")
			}
			out = append(out, d)
		}
	}
	return out
}

// OrderedAt reports whether line carries (or is preceded by) a
// //sadplint:ordered directive with a reason, for analyzers that
// accept an explicit ordering justification.
func OrderedAt(dirs []Directive, line int) bool {
	for _, d := range dirs {
		if d.Verb == "ordered" && d.Reason != "" && (d.Line == line || d.Line == line-1) {
			return true
		}
	}
	return false
}

// FuncDirective returns the directive of the given verb attached to a
// function declaration: a //sadplint:<verb> line inside the func's doc
// comment or on the line immediately above the declaration. The bool
// reports presence even when the mandatory reason is missing (callers
// report that separately).
func FuncDirective(fset *token.FileSet, dirs []Directive, fd *ast.FuncDecl, verb string) (Directive, bool) {
	funcLine := fset.Position(fd.Pos()).Line
	lo := funcLine - 1
	if fd.Doc != nil {
		lo = fset.Position(fd.Doc.Pos()).Line
	}
	for _, d := range dirs {
		if d.Verb == verb && d.Line >= lo && d.Line <= funcLine {
			return d, true
		}
	}
	return Directive{}, false
}

// RunAnalyzers type-checks nothing itself: pkgs must already carry
// syntax and types. It runs every analyzer over every package —
// dependencies first, so cross-package facts are available — applies
// //sadplint:ignore suppressions, reports malformed directives (a
// suppression or scratch/hotpath marker without a reason is itself a
// violation — the suite's "zero unexplained suppressions" rule), and
// returns the surviving diagnostics sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunAnalyzersFacts(pkgs, analyzers, NewFactStore())
}

// RunAnalyzersFacts is RunAnalyzers with a caller-supplied fact
// store, pre-seeded with dependency facts (unit mode) or inspected
// afterwards (tests).
func RunAnalyzersFacts(pkgs []*Package, analyzers []*Analyzer, facts *FactStore) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range sortByDeps(pkgs) {
		// Parse the suppression directives once per file.
		byFile := make(map[string][]Directive)
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			dirs := Directives(pkg.Fset, f)
			byFile[name] = dirs
			for _, d := range dirs {
				switch {
				case d.Verb == "ignore" && (d.Name == "" || d.Reason == ""):
					all = append(all, Diagnostic{
						Pos:      pkg.Fset.Position(d.Pos),
						Message:  "malformed //sadplint:ignore: want \"//sadplint:ignore <analyzer> <reason>\"",
						Analyzer: "sadplint",
					})
				case (d.Verb == "scratch" || d.Verb == "hotpath") && d.Reason == "":
					all = append(all, Diagnostic{
						Pos:      pkg.Fset.Position(d.Pos),
						Message:  fmt.Sprintf("malformed //sadplint:%s: want \"//sadplint:%s <reason>\"", d.Verb, d.Verb),
						Analyzer: "sadplint",
					})
				}
			}
		}
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Facts:     facts,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", pkg.PkgPath, a.Name, err)
			}
			for _, d := range diags {
				if !suppressed(byFile[d.Pos.Filename], a.Name, d.Pos.Line) {
					all = append(all, d)
				}
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}

// suppressed reports whether an //sadplint:ignore for analyzer name
// covers the diagnostic line. A reason is mandatory: directives
// without one do not suppress (and are reported as malformed).
func suppressed(dirs []Directive, name string, line int) bool {
	for _, d := range dirs {
		if d.Verb == "ignore" && d.Name == name && d.Reason != "" &&
			(d.Line == line || d.Line == line-1) {
			return true
		}
	}
	return false
}
