package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
)

// This file implements the command-line protocol `go vet -vettool=X`
// requires of X (mirrored from the unitchecker vendored in GOROOT):
//
//	X -V=full    print an executable fingerprint for build caching
//	X -flags     print the tool's flag schema as JSON
//	X foo.cfg    analyze the single compilation unit described by the
//	             JSON config file, print diagnostics, exit non-zero
//	             if any were found
//
// The .cfg carries the file set and an import → export-data map, so
// unit mode needs no `go list` round trips of its own.

// unitConfig is the JSON compilation-unit description `go vet` hands
// the tool (unitchecker.Config's wire format).
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// RunUnit analyzes the compilation unit described by cfgFile and
// returns its diagnostics. Dependency facts are read from the .vetx
// files listed in PackageVetx and the union of imported and newly
// exported facts is serialized to VetxOutput, which `go vet` treats
// as a required build artifact. VetxOnly units (dependencies of the
// vetted packages) still run the analyzers when they belong to this
// module — their diagnostics are discarded but their facts feed the
// packages under analysis; foreign VetxOnly units are skipped.
func RunUnit(cfgFile string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", cfgFile, err)
	}

	facts := NewFactStore()
	for _, vetx := range cfg.PackageVetx {
		if data, err := os.ReadFile(vetx); err == nil {
			facts.Merge(data)
		}
	}
	writeFacts := func() error {
		if cfg.VetxOutput == "" {
			return nil
		}
		data, err := facts.Encode()
		if err != nil {
			return err
		}
		return os.WriteFile(cfg.VetxOutput, data, 0o666)
	}

	// Only this module's packages carry sadplint facts; analyzing the
	// standard library (or any other dependency `go vet` schedules as a
	// facts-only unit) would be pure waste.
	ours := strings.HasPrefix(normalizePkgPath(cfg.ImportPath), "repro")
	if len(cfg.GoFiles) == 0 || (cfg.VetxOnly && !ours) {
		return nil, writeFacts()
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, writeFacts() // the compiler will report it
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImp := ExportImporter(fset, cfg.PackageFile)
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImp.Import(path)
	})
	pkg, info, err := Check(cfg.ImportPath, fset, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, writeFacts()
		}
		return nil, err
	}
	diags, err := RunAnalyzersFacts([]*Package{{
		PkgPath: cfg.ImportPath,
		Fset:    fset,
		Files:   files,
		Types:   pkg,
		Info:    info,
	}}, analyzers, facts)
	if err != nil {
		return nil, err
	}
	if err := writeFacts(); err != nil {
		return nil, err
	}
	if cfg.VetxOnly {
		return nil, nil
	}
	return diags, nil
}

// PrintVersion implements -V=full: the fingerprint is a content hash
// of the executable, so editing an analyzer invalidates `go vet`'s
// result cache.
func PrintVersion() {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel sadplint buildID=%02x\n", filepath.Base(exe), h.Sum(nil))
}

// PrintFlagsJSON implements -flags: sadplint exposes no per-analyzer
// flags to `go vet`.
func PrintFlagsJSON() {
	fmt.Println("[]")
}
