package lint

// Cross-package facts. An analyzer running over package P can attach
// small string facts to P's objects (functions, fields); analyzers
// running later over a package that imports P read them back. Two
// transports share one store:
//
//   - standalone mode: RunAnalyzers processes the loaded packages in
//     dependency order (imports first), so facts flow through the
//     in-memory store with no serialization;
//   - `go vet -vettool` unit mode: each compilation unit reads its
//     dependencies' facts from the .vetx files go vet hands it
//     (PackageVetx) and serializes the union of imported and newly
//     exported facts to VetxOutput, exactly how the x/tools facts
//     system transports theirs.
//
// Facts are strings on purpose: they stay trivially JSON-serializable
// and diffable, and every current fact ("scratch", "hotpath", an
// acquired-mutex list, a lock-order edge list) fits.

import (
	"encoding/json"
	"fmt"
	"go/types"
	"sort"
	"strings"
)

// FactStore holds analyzer → object key → fact value.
type FactStore struct {
	m map[string]map[string]string
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: map[string]map[string]string{}}
}

// Set records a fact.
func (fs *FactStore) Set(analyzer, key, value string) {
	a := fs.m[analyzer]
	if a == nil {
		a = map[string]string{}
		fs.m[analyzer] = a
	}
	a[key] = value
}

// Get looks a fact up.
func (fs *FactStore) Get(analyzer, key string) (string, bool) {
	v, ok := fs.m[analyzer][key]
	return v, ok
}

// Keys returns the sorted fact keys of one analyzer.
func (fs *FactStore) Keys(analyzer string) []string {
	a := fs.m[analyzer]
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Encode serializes the store (sorted, so equal stores produce equal
// bytes — `go vet` caches vetx files by content).
func (fs *FactStore) Encode() ([]byte, error) {
	return json.MarshalIndent(fs.m, "", "\t")
}

// Merge unions serialized facts into the store. Inputs that are not a
// facts JSON object (e.g. vetx files written by other tools, or the
// pre-facts "sadplint has no facts" placeholder) are ignored: a
// missing dependency's facts degrade the analysis, never break it.
func (fs *FactStore) Merge(data []byte) {
	var m map[string]map[string]string
	if err := json.Unmarshal(data, &m); err != nil {
		return
	}
	for a, facts := range m {
		for k, v := range facts {
			fs.Set(a, k, v)
		}
	}
}

// ObjectKey names an object stably across compilations: package path,
// receiver type for methods, then the object name. Test-variant
// package paths ("p [p.test]") normalize to the base package so facts
// recorded by a test unit match production lookups.
func ObjectKey(obj types.Object) string {
	if obj == nil {
		return ""
	}
	pkg := ""
	if obj.Pkg() != nil {
		pkg = normalizePkgPath(obj.Pkg().Path())
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if name := recvTypeName(sig.Recv().Type()); name != "" {
				return fmt.Sprintf("%s.%s.%s", pkg, name, obj.Name())
			}
		}
	}
	return fmt.Sprintf("%s.%s", pkg, obj.Name())
}

// recvTypeName unwraps pointers and names the receiver's base type.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func normalizePkgPath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	return strings.TrimSuffix(path, "_test")
}

// ExportFact records a fact about obj under the running analyzer's
// name. Facts survive into every downstream package of the same run
// (standalone) or build (unit mode).
func (p *Pass) ExportFact(obj types.Object, value string) {
	if p.Facts == nil || obj == nil {
		return
	}
	p.Facts.Set(p.Analyzer.Name, ObjectKey(obj), value)
}

// FactOf reads the running analyzer's fact about obj.
func (p *Pass) FactOf(obj types.Object) (string, bool) {
	if p.Facts == nil || obj == nil {
		return "", false
	}
	return p.Facts.Get(p.Analyzer.Name, ObjectKey(obj))
}

// sortByDeps orders packages so every package comes after the loaded
// packages it imports — the order facts need. Cycles cannot occur in
// valid Go; ties and unloaded imports keep the incoming (sorted)
// order.
func sortByDeps(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[normalizePkgPath(p.PkgPath)] = p
	}
	sorted := make([]*Package, 0, len(pkgs))
	state := make(map[*Package]int, len(pkgs)) // 0 new, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p] != 0 {
			return
		}
		state[p] = 1
		if p.Types != nil {
			for _, imp := range p.Types.Imports() {
				if dep, ok := byPath[normalizePkgPath(imp.Path())]; ok && state[dep] == 0 {
					visit(dep)
				}
			}
		}
		state[p] = 2
		sorted = append(sorted, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return sorted
}
