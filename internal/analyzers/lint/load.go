package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package bundles one loaded, type-checked package for analysis.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// goList streams `go list -json` objects for the given arguments,
// run from dir.
func goList(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decode: %v", args, err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// ExportImporter builds a types.Importer that resolves imports from
// compiler export data files, exactly as `go vet` wires its
// unitchecker: packageFile maps package path → export data file.
func ExportImporter(fset *token.FileSet, packageFile map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := packageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// LoadExportMap runs `go list -export -deps` over patterns from dir
// and returns package path → export data file for every importable
// package in the closure.
func LoadExportMap(dir string, patterns ...string) (map[string]string, error) {
	pkgs, err := goList(dir, append([]string{"-export", "-deps", "-json=ImportPath,Export,Name"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	m := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			m[p.ImportPath] = p.Export
		}
	}
	return m, nil
}

// Load loads, parses and type-checks the packages matching patterns
// (relative to dir), dependencies resolved through compiler export
// data. Test files are not loaded: sadplint's invariants target
// production code, and `go vet -vettool` covers test variants through
// its own compilation units anyway.
func Load(dir string, patterns ...string) ([]*Package, error) {
	roots, err := goList(dir, append([]string{"-json=ImportPath,Name,Dir,GoFiles,Error"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports, err := LoadExportMap(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var out []*Package
	for _, root := range roots {
		if root.Error != nil {
			return nil, fmt.Errorf("%s: %s", root.ImportPath, root.Error.Err)
		}
		var files []*ast.File
		for _, name := range root.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(root.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		pkg, info, err := Check(root.ImportPath, fset, files, imp)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", root.ImportPath, err)
		}
		out = append(out, &Package{PkgPath: root.ImportPath, Fset: fset, Files: files, Types: pkg, Info: info})
	}
	return out, nil
}

// Check type-checks one package's parsed files with full type
// information recorded.
func Check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := &types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
