package lint

// Machine-readable diagnostics and the baseline mechanism: `sadplint
// -json` emits diagnostics as JSON for CI artifacts, and `-baseline
// <file>` subtracts a committed debt file so a new analyzer can land
// (and gate new findings) before every pre-existing finding is fixed.
//
// Baseline entries match on (file, analyzer, message) with
// multiplicity — deliberately not on line numbers, so edits elsewhere
// in a file do not invalidate the baseline. The repo's own baseline
// is empty; the mechanism exists for future analyzers.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// JSONDiagnostic is the wire form of one diagnostic.
type JSONDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line,omitempty"`
	Col      int    `json:"col,omitempty"`
	Message  string `json:"message"`
	Analyzer string `json:"analyzer"`
}

// toJSON converts a diagnostic, making the filename relative to
// baseDir when possible (baselines and CI artifacts must not embed
// absolute checkout paths).
func toJSON(d Diagnostic, baseDir string) JSONDiagnostic {
	file := d.Pos.Filename
	if baseDir != "" {
		if rel, err := filepath.Rel(baseDir, file); err == nil && !filepath.IsAbs(rel) {
			file = filepath.ToSlash(rel)
		}
	}
	return JSONDiagnostic{
		File:     file,
		Line:     d.Pos.Line,
		Col:      d.Pos.Column,
		Message:  d.Message,
		Analyzer: d.Analyzer,
	}
}

// DiagnosticsJSON renders diagnostics as an indented JSON array (an
// empty slice renders as [], never null).
func DiagnosticsJSON(diags []Diagnostic, baseDir string) ([]byte, error) {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, toJSON(d, baseDir))
	}
	return json.MarshalIndent(out, "", "\t")
}

// A Baseline is accepted debt: diagnostics that do not fail the run.
type Baseline struct {
	entries map[string]int // (file, analyzer, message) key → multiplicity
}

func baselineKey(j JSONDiagnostic) string {
	return j.File + "\x00" + j.Analyzer + "\x00" + j.Message
}

// LoadBaseline reads a baseline file (a JSON array of diagnostics,
// line/col ignored). A missing file is an empty baseline.
func LoadBaseline(path string) (*Baseline, error) {
	b := &Baseline{entries: map[string]int{}}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return b, nil
	}
	if err != nil {
		return nil, err
	}
	var list []JSONDiagnostic
	if err := json.Unmarshal(data, &list); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	for _, j := range list {
		b.entries[baselineKey(j)]++
	}
	return b, nil
}

// Filter returns the diagnostics not covered by the baseline,
// consuming multiplicity: a baseline entry recorded twice absorbs at
// most two matching diagnostics.
func (b *Baseline) Filter(diags []Diagnostic, baseDir string) []Diagnostic {
	if b == nil || len(b.entries) == 0 {
		return diags
	}
	remaining := make(map[string]int, len(b.entries))
	for k, n := range b.entries {
		remaining[k] = n
	}
	var out []Diagnostic
	for _, d := range diags {
		k := baselineKey(toJSON(d, baseDir))
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		out = append(out, d)
	}
	return out
}

// WriteBaseline records the given diagnostics as the new accepted
// debt, sorted for stable diffs.
func WriteBaseline(path string, diags []Diagnostic, baseDir string) error {
	list := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		j := toJSON(d, baseDir)
		j.Line, j.Col = 0, 0 // line-insensitive by design
		list = append(list, j)
	}
	sort.Slice(list, func(i, k int) bool {
		a, b := list[i], list[k]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	data, err := json.MarshalIndent(list, "", "\t")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
