package lint

import (
	"go/token"
	"path/filepath"
	"testing"
)

func fakeDiags(dir string) []Diagnostic {
	return []Diagnostic{
		{Pos: token.Position{Filename: filepath.Join(dir, "a.go"), Line: 10, Column: 2}, Message: "first finding", Analyzer: "hotalloc"},
		{Pos: token.Position{Filename: filepath.Join(dir, "a.go"), Line: 20, Column: 2}, Message: "first finding", Analyzer: "hotalloc"},
		{Pos: token.Position{Filename: filepath.Join(dir, "b.go"), Line: 3, Column: 1}, Message: "second finding", Analyzer: "lockorder"},
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	diags := fakeDiags(dir)
	path := filepath.Join(dir, "baseline.json")
	if err := WriteBaseline(path, diags, dir); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if left := b.Filter(diags, dir); len(left) != 0 {
		t.Errorf("baseline written from these diagnostics should swallow all of them, %d left: %v", len(left), left)
	}
}

func TestBaselineMultiplicityAndNewFindings(t *testing.T) {
	dir := t.TempDir()
	diags := fakeDiags(dir)
	path := filepath.Join(dir, "baseline.json")
	// Baseline only the first occurrence of the duplicated finding.
	if err := WriteBaseline(path, diags[:1], dir); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	left := b.Filter(diags, dir)
	if len(left) != 2 {
		t.Fatalf("want the extra duplicate and the new lockorder finding to survive, got %v", left)
	}
	// Line moves must not defeat the baseline: the key ignores line/col.
	moved := []Diagnostic{{
		Pos: token.Position{Filename: filepath.Join(dir, "a.go"), Line: 99, Column: 7}, Message: "first finding", Analyzer: "hotalloc",
	}}
	if left := b.Filter(moved, dir); len(left) != 0 {
		t.Errorf("baseline keyed on line number; moved finding survived: %v", left)
	}
}

func TestBaselineMissingFileIsEmpty(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if left := b.Filter(fakeDiags(dir), dir); len(left) != 3 {
		t.Errorf("empty baseline must pass every diagnostic through, got %d of 3", len(left))
	}
}
