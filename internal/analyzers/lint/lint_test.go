package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestDirectiveGrammar(t *testing.T) {
	fset, f := parseOne(t, `package p

//sadplint:ignore detmap the consumer sorts downstream
var A int

//sadplint:ordered result is a set
var B int

//sadplint:ignore detclock
var C int
`)
	dirs := Directives(fset, f)
	if len(dirs) != 3 {
		t.Fatalf("got %d directives, want 3: %+v", len(dirs), dirs)
	}
	if d := dirs[0]; d.Verb != "ignore" || d.Name != "detmap" || d.Reason != "the consumer sorts downstream" {
		t.Errorf("ignore directive parsed as %+v", d)
	}
	if d := dirs[1]; d.Verb != "ordered" || d.Reason != "result is a set" {
		t.Errorf("ordered directive parsed as %+v", d)
	}
	if d := dirs[2]; d.Reason != "" {
		t.Errorf("reasonless ignore parsed as %+v", d)
	}
}

func TestSuppressionRequiresReason(t *testing.T) {
	fset, f := parseOne(t, `package p

//sadplint:ignore detmap justified because the sink is a counter
var A int

//sadplint:ignore detmap
var B int
`)
	dirs := Directives(fset, f)
	aLine := fset.Position(f.Scope.Lookup("A").Decl.(*ast.ValueSpec).Pos()).Line
	bLine := fset.Position(f.Scope.Lookup("B").Decl.(*ast.ValueSpec).Pos()).Line
	if !suppressed(dirs, "detmap", aLine) {
		t.Errorf("reasoned directive did not suppress line %d", aLine)
	}
	if suppressed(dirs, "detmap", bLine) {
		t.Errorf("reasonless directive suppressed line %d", bLine)
	}
	if suppressed(dirs, "detclock", aLine) {
		t.Errorf("directive for detmap suppressed detclock")
	}
}

func TestMalformedIgnoreIsReported(t *testing.T) {
	fset, f := parseOne(t, `package p

//sadplint:ignore detmap
var A int
`)
	tpkg, info, err := Check("example.org/p", fset, []*ast.File{f}, ExportImporter(fset, nil))
	if err != nil {
		t.Fatal(err)
	}
	noop := &Analyzer{Name: "noop", Doc: "does nothing", Run: func(*Pass) error { return nil }}
	diags, err := RunAnalyzers([]*Package{{
		PkgPath: "example.org/p", Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info,
	}}, []*Analyzer{noop})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Analyzer != "sadplint" {
		t.Fatalf("want exactly one sadplint diagnostic for the malformed ignore, got %v", diags)
	}
}

func TestIsDeterministic(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"repro/internal/router", true},
		{"repro/internal/router [repro/internal/router.test]", true},
		{"repro/internal/router_test", true},
		{"repro/internal/service", false},
		{"example.org/detfixture", true},
		{"repro/internal/analyzers/lint", false},
	}
	for _, c := range cases {
		if got := IsDeterministic(c.path); got != c.want {
			t.Errorf("IsDeterministic(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestOrderedAt(t *testing.T) {
	fset, f := parseOne(t, `package p

//sadplint:ordered set semantics
var A int
var B int

//sadplint:ordered
var C int
`)
	dirs := Directives(fset, f)
	if !OrderedAt(dirs, 4) {
		t.Error("line after a reasoned ordered directive not covered")
	}
	if OrderedAt(dirs, 5) {
		t.Error("ordered directive leaked past the next line")
	}
	if OrderedAt(dirs, 8) {
		t.Error("reasonless ordered directive should not justify anything")
	}
}
