package lint

// A small forward dataflow engine over the CFG: a classic worklist
// iteration to a fixpoint. States are client-defined; the engine only
// needs copy/join/equal and a per-node transfer function. Blocks are
// processed in index order (the builder numbers them roughly in
// source order), which makes the iteration — and therefore the order
// in which clients first observe each program point — deterministic.

import "go/ast"

// Flow defines one forward dataflow problem over states of type S.
type Flow[S any] struct {
	// Entry is the state at the function entry.
	Entry S
	// Copy returns an independent copy of a state.
	Copy func(S) S
	// Join merges src into dst and reports whether dst changed. dst is
	// always a state the engine owns (never aliased by the client).
	Join func(dst, src S) bool
	// Transfer applies one straight-line node to the state in place,
	// with the block it lives in (so clients can special-case, e.g.,
	// the exit block's deferred calls). Nodes are visited in block
	// order; the state passed in is owned by the engine and may be
	// mutated freely.
	Transfer func(n ast.Node, blk *Block, s S)
}

// Forward runs the analysis to a fixpoint and returns the input state
// of every block (indexed like g.Blocks). A nil entry in the result
// marks a block never reached by the iteration (unreachable code).
func Forward[S any](g *CFG, f Flow[S]) []S {
	n := len(g.Blocks)
	in := make([]S, n)
	have := make([]bool, n)
	in[0] = f.Copy(f.Entry)
	have[0] = true

	work := []int{0}
	queued := make([]bool, n)
	queued[0] = true
	for len(work) > 0 {
		// Pop the lowest index for determinism: the slice is kept
		// sorted by insertion below (small graphs — linear insert).
		bi := work[0]
		work = work[1:]
		queued[bi] = false
		blk := g.Blocks[bi]
		s := f.Copy(in[bi])
		for _, nd := range blk.Nodes {
			f.Transfer(nd, blk, s)
		}
		for _, succ := range blk.Succs {
			si := succ.Index
			changed := false
			if !have[si] {
				in[si] = f.Copy(s)
				have[si] = true
				changed = true
			} else if f.Join(in[si], s) {
				changed = true
			}
			if changed && !queued[si] {
				queued[si] = true
				work = insertSorted(work, si)
			}
		}
	}
	return in
}

func insertSorted(w []int, v int) []int {
	i := 0
	for i < len(w) && w[i] < v {
		i++
	}
	w = append(w, 0)
	copy(w[i+1:], w[i:])
	w[i] = v
	return w
}
