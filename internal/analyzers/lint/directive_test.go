package lint

import (
	"go/ast"
	"strings"
	"testing"
)

func TestMalformedScratchAndHotpathAreReported(t *testing.T) {
	fset, f := parseOne(t, `package p

//sadplint:scratch
func Scratchy() {}

//sadplint:hotpath
func Hot() {}

//sadplint:scratch result aliases the pool
func FineScratch() {}

//sadplint:hotpath inner loop of the solver
func FineHot() {}
`)
	tpkg, info, err := Check("example.org/p", fset, []*ast.File{f}, ExportImporter(fset, nil))
	if err != nil {
		t.Fatal(err)
	}
	noop := &Analyzer{Name: "noop", Doc: "does nothing", Run: func(*Pass) error { return nil }}
	diags, err := RunAnalyzers([]*Package{{
		PkgPath: "example.org/p", Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info,
	}}, []*Analyzer{noop})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics for the two reasonless directives, got %v", diags)
	}
	for _, d := range diags {
		if d.Analyzer != "sadplint" {
			t.Errorf("malformed directive attributed to %q, want sadplint", d.Analyzer)
		}
		if !strings.Contains(d.Message, "malformed //sadplint:") {
			t.Errorf("unexpected message %q", d.Message)
		}
	}
}

func TestFuncDirective(t *testing.T) {
	fset, f := parseOne(t, `package p

// Hot is documented.
//
//sadplint:hotpath called per grid node
func Hot() {}

// Cold has no directive.
func Cold() {}
`)
	dirs := Directives(fset, f)
	var hot, cold *ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			switch fd.Name.Name {
			case "Hot":
				hot = fd
			case "Cold":
				cold = fd
			}
		}
	}
	d, ok := FuncDirective(fset, dirs, hot, "hotpath")
	if !ok || d.Reason != "called per grid node" {
		t.Errorf("FuncDirective(Hot) = %+v, %v; want the hotpath directive with its reason", d, ok)
	}
	if d, ok := FuncDirective(fset, dirs, cold, "hotpath"); ok {
		t.Errorf("FuncDirective(Cold) = %+v, want none", d)
	}
	if d, ok := FuncDirective(fset, dirs, hot, "scratch"); ok {
		t.Errorf("FuncDirective(Hot, scratch) = %+v, want none (verb mismatch)", d)
	}
}
