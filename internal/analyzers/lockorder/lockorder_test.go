package lockorder_test

import (
	"testing"

	"repro/internal/analyzers/lint/linttest"
	"repro/internal/analyzers/lockorder"
)

func TestLockorder(t *testing.T) {
	linttest.Run(t, "testdata/locks", "example.org/lockfixture", lockorder.Analyzer)
}
