// Package lockfixture exercises the lockorder analyzer: two mutexes
// acquired in both orders (a cycle), a transitive acquisition through a
// callee fact, and the unlock-validate-relock window pattern.
package lockfixture

import "sync"

// A owns jobs.
type A struct {
	mu sync.Mutex
	// jobs is guarded by mu.
	jobs map[string]*Job
}

// B is a second lock domain.
type B struct {
	mu sync.Mutex
	n  int
}

// Job is the guarded record.
type Job struct {
	ID   string
	done chan struct{}
}

var (
	a A
	b B
)

func lockAB() {
	a.mu.Lock()
	b.mu.Lock() // want "lock-order cycle"
	b.n++
	b.mu.Unlock()
	a.mu.Unlock()
}

func lockBA() {
	b.mu.Lock()
	a.mu.Lock()
	a.jobs = nil
	a.mu.Unlock()
	b.mu.Unlock()
}

// lockB only touches b; callers holding a.mu inherit the a->b edge
// through lockB's exported acquires fact.
func lockB() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func transitiveAB() {
	a.mu.Lock()
	lockB()
	a.mu.Unlock()
}

// --- unlocked-window misuse (flagged) ---

func sink(*Job)      {}
func sinkStr(string) {}

func windowUse(key string) {
	a.mu.Lock()
	j := a.jobs[key]
	a.mu.Unlock()
	sink(j) // want "unlocked window"
}

// --- sanctioned (clean) ---

// windowRelock re-reads under the lock: the canonical fix.
func windowRelock(key string) {
	a.mu.Lock()
	j := a.jobs[key]
	_ = j
	a.mu.Unlock()
	a.mu.Lock()
	j = a.jobs[key]
	sink(j)
	a.mu.Unlock()
}

// windowChannel snapshots a channel; channels are synchronization
// points and exempt from derived tracking.
func windowChannel(key string) {
	a.mu.Lock()
	ch := a.jobs[key].done
	a.mu.Unlock()
	<-ch
}

// windowValueCopy copies a plain string out; value copies are safe.
func windowValueCopy(key string) {
	a.mu.Lock()
	id := a.jobs[key].ID
	a.mu.Unlock()
	sinkStr(id)
}

func windowSuppressed(key string) {
	a.mu.Lock()
	j := a.jobs[key]
	a.mu.Unlock()
	//sadplint:ignore lockorder fixture demonstrates a justified suppression
	sink(j)
}
