// Package lockorder checks two whole-program locking invariants the
// per-function lockcheck analyzer cannot see:
//
//  1. Lock-acquisition order. Every `x.Lock()` reached while other
//     mutexes are held contributes an order edge held→acquired; calls
//     into functions that (transitively) acquire locks contribute
//     edges through cross-package "acquires" facts. A cycle in the
//     resulting graph is a potential deadlock — e.g. the documented
//     coordinator rule "mu is the outermost lock; the service's own
//     locks are acquired inside it" is exactly the assertion that
//     cluster.Coordinator.mu → service.Server.mu never gains a
//     reverse edge.
//
//  2. Unlocked windows. The unlock-validate-relock pattern (PR 9's
//     handleResult) reads `guarded by mu` state under the lock,
//     unlocks to do slow work, then relocks and revalidates. Values
//     derived from guarded state — pointers, maps, slices — that are
//     *used* inside the unlocked window refer to state another
//     goroutine may be mutating; each such use must either move back
//     under the lock or carry an explicit justification. Channels are
//     deliberately not tracked: snapshotting a notify channel and
//     receiving on it after Unlock is the sanctioned long-poll
//     pattern.
package lockorder

import (
	"go/ast"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"repro/internal/analyzers/lint"
)

// Analyzer is the lockorder pass.
var Analyzer = &lint.Analyzer{
	Name: analyzerName,
	Doc: "build the cross-package lock-acquisition-order graph and report cycles, " +
		"and report uses of guarded-state-derived values inside unlocked windows",
	Run: run,
}

const analyzerName = "lockorder"

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

// Lock states of one mutex inside one function.
const (
	notHeld  = 0
	held     = 1
	released = 2 // was held, currently unlocked: the window
)

var acquireOps = map[string]bool{"Lock": true, "TryLock": true, "RLock": true, "TryRLock": true}
var releaseOps = map[string]bool{"Unlock": true, "RUnlock": true}

func run(pass *lint.Pass) error {
	files := pass.NonTestFiles()
	guards := collectGuards(pass, files)

	var fns []*ast.FuncDecl
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fns = append(fns, fd)
			}
		}
	}

	// Phase 1: "acquires" facts. Each function's fact is the set of
	// mutexes it may lock, directly or through callees, iterated to a
	// fixpoint so intra-package call order does not matter.
	for changed := true; changed; {
		changed = false
		for _, fd := range fns {
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			acq := map[string]bool{}
			if prev, ok := pass.FactOf(obj); ok && prev != "" {
				for _, m := range strings.Split(prev, ",") {
					acq[m] = true
				}
			}
			before := len(acq)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // closures run on their own goroutine/time
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if m, op := lockSite(pass.TypesInfo, call); m != "" && acquireOps[op] {
					acq[m] = true
				}
				if callee := calleeOf(pass.TypesInfo, call); callee != nil {
					if fact, ok := pass.FactOf(callee); ok && fact != "" {
						for _, m := range strings.Split(fact, ",") {
							acq[m] = true
						}
					}
				}
				return true
			})
			if len(acq) != before {
				changed = true
			}
			if len(acq) > 0 {
				pass.ExportFact(obj, strings.Join(sortedKeys(acq), ","))
			}
		}
	}

	// Phase 2: per-function CFG dataflow — order edges and unlocked
	// windows.
	c := &checker{pass: pass, guards: guards, edges: map[string]edge{}}
	for _, fd := range fns {
		c.checkFunc(fd)
	}

	// Phase 3: merge this package's edges into the fact store and
	// report any cycle a new edge closes.
	c.reportCycles()
	return nil
}

// collectGuards maps struct field objects annotated `guarded by X` to
// the mutex identity pkg.Type.X.
func collectGuards(pass *lint.Pass, files []*ast.File) map[types.Object]string {
	guards := map[types.Object]string{}
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					guard := ""
					for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
						if cg == nil {
							continue
						}
						if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
							guard = m[1]
						}
					}
					if guard == "" {
						continue
					}
					id := normalizePkgPath(pass.Pkg.Path()) + "." + ts.Name.Name + "." + guard
					for _, name := range field.Names {
						if obj := pass.TypesInfo.Defs[name]; obj != nil {
							guards[obj] = id
						}
					}
				}
			}
		}
	}
	return guards
}

type edge struct {
	from, to string
	pos      ast.Node
}

type checker struct {
	pass   *lint.Pass
	guards map[types.Object]string
	edges  map[string]edge // "from\x00to" → first occurrence this package
}

// mstate is the dataflow state: per-mutex lock state, current
// acquisition order, and which locals derive from guarded state.
type mstate struct {
	locks   map[string]int
	order   []string
	derived map[types.Object]string // local → guarding mutex id
}

func copyM(s *mstate) *mstate {
	out := &mstate{
		locks:   make(map[string]int, len(s.locks)),
		order:   append([]string(nil), s.order...),
		derived: make(map[types.Object]string, len(s.derived)),
	}
	for k, v := range s.locks {
		out.locks[k] = v
	}
	for k, v := range s.derived {
		out.derived[k] = v
	}
	return out
}

// joinM merges paths. Lock states join to the maximum (notHeld < held
// < released): a mutex released on either incoming path opens the
// window at the join.
func joinM(dst, src *mstate) bool {
	changed := false
	for k, v := range src.locks {
		if v > dst.locks[k] {
			dst.locks[k] = v
			changed = true
		}
	}
	for _, m := range src.order {
		if dst.locks[m] == held && !contains(dst.order, m) {
			dst.order = append(dst.order, m)
			changed = true
		}
	}
	for k, v := range src.derived {
		if _, ok := dst.derived[k]; !ok {
			dst.derived[k] = v
			changed = true
		}
	}
	return changed
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	g := lint.BuildCFG(fd.Body)
	reported := map[types.Object]bool{}
	report := false
	transfer := func(n ast.Node, _ *lint.Block, s *mstate) {
		c.transfer(n, s, report, reported)
	}
	in := lint.Forward(g, lint.Flow[*mstate]{
		Entry:    &mstate{locks: map[string]int{}, derived: map[types.Object]string{}},
		Copy:     copyM,
		Join:     joinM,
		Transfer: transfer,
	})
	report = true
	for i, blk := range g.Blocks {
		if in[i] == nil {
			in[i] = &mstate{locks: map[string]int{}, derived: map[types.Object]string{}}
		}
		s := copyM(in[i])
		for _, n := range blk.Nodes {
			c.transfer(n, s, report, reported)
		}
	}
}

func (c *checker) transfer(n ast.Node, s *mstate, report bool, reported map[types.Object]bool) {
	if as, ok := n.(*ast.AssignStmt); ok {
		c.assign(as, s, report, reported)
		return
	}
	c.walkExpr(n, s, report, reported)
}

// walkExpr handles lock operations, acquires-fact calls and
// window-use reports inside one straight-line node.
func (c *checker) walkExpr(n ast.Node, s *mstate, report bool, reported map[types.Object]bool) {
	ast.Inspect(n, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			c.call(nd, s, report)
			return true
		case *ast.Ident:
			c.useCheck(nd, s, report, reported)
		}
		return true
	})
}

func (c *checker) call(call *ast.CallExpr, s *mstate, report bool) {
	if m, op := lockSite(c.pass.TypesInfo, call); m != "" {
		switch {
		case acquireOps[op]:
			for _, h := range s.order {
				if h != m {
					c.addEdge(h, m, call)
				}
			}
			if s.locks[m] != held {
				s.locks[m] = held
				s.order = append(s.order, m)
			}
			// Relocking closes the window: derived values are expected to
			// be revalidated, and stale ones are the revalidation code's
			// responsibility now.
			for k, g := range s.derived {
				if g == m {
					delete(s.derived, k)
				}
			}
		case releaseOps[op]:
			if s.locks[m] == held {
				s.locks[m] = released
			}
			s.order = remove(s.order, m)
		}
		return
	}
	callee := calleeOf(c.pass.TypesInfo, call)
	if callee == nil {
		return
	}
	if fact, ok := c.pass.FactOf(callee); ok && fact != "" {
		for _, m := range strings.Split(fact, ",") {
			for _, h := range s.order {
				if h != m {
					c.addEdge(h, m, call)
				}
			}
		}
	}
}

// useCheck reports a read of a guarded-state-derived value inside the
// unlocked window, once per value per function.
func (c *checker) useCheck(id *ast.Ident, s *mstate, report bool, reported map[types.Object]bool) {
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		return
	}
	m, ok := s.derived[obj]
	if !ok || s.locks[m] != released {
		return
	}
	if report && !reported[obj] {
		reported[obj] = true
		c.pass.Reportf(id.Pos(),
			"%s derives from %s-guarded state and is used in the unlocked window; re-read it under the lock or justify with //sadplint:ignore lockorder",
			id.Name, shortMutex(m))
	}
}

func (c *checker) assign(as *ast.AssignStmt, s *mstate, report bool, reported map[types.Object]bool) {
	// RHS first: lock ops, window uses, and derivedness.
	derivedFrom := ""
	for _, rhs := range as.Rhs {
		c.walkExpr(rhs, s, report, reported)
		if m := c.derivedMutex(rhs, s); m != "" {
			derivedFrom = m
		}
	}
	for _, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			// Stores through selectors/indices: the base is a use.
			c.walkExpr(lhs, s, report, reported)
			continue
		}
		if id.Name == "_" {
			continue
		}
		obj := c.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = c.pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			continue
		}
		if derivedFrom != "" && trackable(obj.Type()) {
			s.derived[obj] = derivedFrom
		} else {
			delete(s.derived, obj)
		}
	}
}

// derivedMutex reports the guard of any guarded field read (while its
// mutex is held) or already-derived value inside the expression.
func (c *checker) derivedMutex(e ast.Expr, s *mstate) string {
	found := ""
	ast.Inspect(e, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectorExpr:
			if obj := c.pass.TypesInfo.Uses[nd.Sel]; obj != nil {
				if m, ok := c.guards[obj]; ok && s.locks[m] == held {
					found = m
				}
			}
		case *ast.Ident:
			if obj := c.pass.TypesInfo.Uses[nd]; obj != nil {
				if m, ok := s.derived[obj]; ok {
					found = m
				}
			}
		}
		return true
	})
	return found
}

func (c *checker) addEdge(from, to string, at ast.Node) {
	key := from + "\x00" + to
	if _, ok := c.edges[key]; !ok {
		c.edges[key] = edge{from: from, to: to, pos: at}
	}
}

// reportCycles merges the package's edges into the cross-package fact
// graph and reports every cycle a newly added edge closes.
func (c *checker) reportCycles() {
	// Existing graph from facts (dependencies and earlier passes).
	graph := map[string][]string{}
	for _, k := range c.pass.Facts.Keys(analyzerName) {
		if from, to, ok := cutEdgeKey(k); ok {
			graph[from] = append(graph[from], to)
		}
	}
	var newEdges []edge
	for _, k := range sortedEdgeKeys(c.edges) {
		e := c.edges[k]
		factKey := "edge:" + e.from + "->" + e.to
		if _, exists := c.pass.Facts.Get(analyzerName, factKey); !exists {
			newEdges = append(newEdges, e)
		}
		c.pass.Facts.Set(analyzerName, factKey, c.pass.Fset.Position(e.pos.Pos()).String())
		graph[e.from] = appendUnique(graph[e.from], e.to)
	}
	seenCycle := map[string]bool{}
	for _, e := range newEdges {
		if path := findPath(graph, e.to, e.from); path != nil {
			// path runs e.to → … → e.from; prepending e.from closes the
			// cycle e.from → e.to → … → e.from.
			cycle := append([]string{e.from}, path...)
			key := canonicalCycle(cycle[:len(cycle)-1])
			if seenCycle[key] {
				continue
			}
			seenCycle[key] = true
			short := make([]string, len(cycle))
			for i, m := range cycle {
				short[i] = shortMutex(m)
			}
			c.pass.Reportf(e.pos.Pos(),
				"acquiring %s while holding %s creates a lock-order cycle: %s",
				shortMutex(e.to), shortMutex(e.from), strings.Join(short, " -> "))
		}
	}
}

// findPath returns a path from→…→to in graph, or nil.
func findPath(graph map[string][]string, from, to string) []string {
	type frame struct {
		node string
		path []string
	}
	seen := map[string]bool{from: true}
	stack := []frame{{from, []string{from}}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.node == to {
			return f.path
		}
		succs := append([]string(nil), graph[f.node]...)
		sort.Strings(succs)
		for _, s := range succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, frame{s, append(append([]string(nil), f.path...), s)})
			}
		}
	}
	return nil
}

// lockSite recognizes `<expr>.Lock()` and friends, returning the
// mutex identity and the operation name. Only named mutexes — struct
// fields and package-level vars — get identities; locals return "".
func lockSite(info *types.Info, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	op := sel.Sel.Name
	if !acquireOps[op] && !releaseOps[op] {
		return "", ""
	}
	// The method must come from the sync package (or embed it).
	if obj := info.Uses[sel.Sel]; obj != nil {
		if fn, ok := obj.(*types.Func); !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return "", ""
		}
	}
	return mutexIdent(info, sel.X), op
}

// mutexIdent names the mutex expression: pkg.Type.field for struct
// fields, pkg.name for package-level vars, "" otherwise.
func mutexIdent(info *types.Info, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		obj := info.Uses[e.Sel]
		if obj == nil || obj.Pkg() == nil {
			return ""
		}
		if tv, ok := info.Types[e.X]; ok {
			if name := namedTypeName(tv.Type); name != "" {
				return normalizePkgPath(obj.Pkg().Path()) + "." + name + "." + obj.Name()
			}
		}
		return normalizePkgPath(obj.Pkg().Path()) + "." + obj.Name()
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil || obj.Pkg() == nil {
			return ""
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return normalizePkgPath(obj.Pkg().Path()) + "." + obj.Name()
		}
	}
	return ""
}

func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// trackable limits derived-value tracking to reference types whose
// pointee another goroutine can mutate. Channels are excluded by
// design (the notify-channel snapshot pattern).
func trackable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice:
		return true
	}
	return false
}

func calleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// shortMutex trims the identity to Type.field for messages.
func shortMutex(id string) string {
	if i := strings.LastIndex(id, "/"); i >= 0 {
		id = id[i+1:]
	}
	if i := strings.IndexByte(id, '.'); i >= 0 {
		return id[i+1:]
	}
	return id
}

func normalizePkgPath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	return strings.TrimSuffix(path, "_test")
}

func cutEdgeKey(k string) (string, string, bool) {
	rest, ok := strings.CutPrefix(k, "edge:")
	if !ok {
		return "", "", false
	}
	from, to, ok := strings.Cut(rest, "->")
	return from, to, ok
}

func canonicalCycle(cycle []string) string {
	// Rotate so the lexicographically smallest node leads.
	min := 0
	for i, m := range cycle {
		if m < cycle[min] {
			min = i
		}
	}
	out := append(append([]string(nil), cycle[min:]...), cycle[:min]...)
	return strings.Join(out, "->")
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedEdgeKeys(m map[string]edge) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func remove(s []string, v string) []string {
	out := s[:0]
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

func appendUnique(s []string, v string) []string {
	if contains(s, v) {
		return s
	}
	return append(s, v)
}
