// Package detmap flags map-iteration-order dependence inside the
// deterministic packages. Go randomizes map range order per run by
// design, so a `for k := range m` whose body feeds an
// order-sensitive sink (a result slice, a heap, the first-wins pick
// of a tie) silently breaks the bit-identical-output guarantee; the
// race detector never fires because nothing races, and staticcheck
// considers the code idiomatic.
//
// A range over a map is accepted when the loop body is a provably
// order-insensitive fold (counters, numeric/bitwise accumulation,
// map-to-map transfer, delete, min/max selection), or when it carries
// an explicit //sadplint:ordered <reason> justification. Multi-case
// selects (runtime-random case pick when several are ready), unsorted
// maps.Keys/maps.Values consumption and sync.Map.Range (iteration
// order unspecified) are flagged on the same grounds.
package detmap

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analyzers/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "detmap",
	Doc:  "flags map-order-dependent iteration, multi-ready selects and unsorted maps.Keys/sync.Map.Range in deterministic packages",
	Run:  run,
}

func run(pass *lint.Pass) error {
	if !lint.IsDeterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.NonTestFiles() {
		dirs := lint.Directives(pass.Fset, f)
		sorted := collectThenSort(pass, f)
		wrapped := sortWrappedCalls(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if !sorted[n] {
					checkRange(pass, dirs, n)
				}
			case *ast.SelectStmt:
				checkSelect(pass, dirs, n)
			case *ast.CallExpr:
				if !wrapped[n] {
					checkCall(pass, dirs, n)
				}
			}
			return true
		})
	}
	return nil
}

func ordered(pass *lint.Pass, dirs []lint.Directive, pos token.Pos) bool {
	return lint.OrderedAt(dirs, pass.Fset.Position(pos).Line)
}

func checkRange(pass *lint.Pass, dirs []lint.Directive, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if ordered(pass, dirs, rng.Pos()) {
		return
	}
	if orderInsensitiveBody(pass, rng) {
		return
	}
	pass.Reportf(rng.Pos(), "range over map in deterministic package %s feeds an order-sensitive sink: iterate sorted keys, or justify with //sadplint:ordered <reason>", pass.Pkg.Path())
}

func checkSelect(pass *lint.Pass, dirs []lint.Directive, sel *ast.SelectStmt) {
	comms := 0
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			comms++
		}
	}
	if comms < 2 {
		return // single-case (+ optional default) polls are deterministic
	}
	if ordered(pass, dirs, sel.Pos()) {
		return
	}
	pass.Reportf(sel.Pos(), "select with %d comm cases in deterministic package %s: the runtime picks uniformly among ready cases; restructure or justify with //sadplint:ordered <reason>", comms, pass.Pkg.Path())
}

// checkCall flags maps.Keys/maps.Values not immediately sorted, and
// any (*sync.Map).Range call.
func checkCall(pass *lint.Pass, dirs []lint.Directive, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch {
	case fn.Pkg().Path() == "maps" && (fn.Name() == "Keys" || fn.Name() == "Values"):
		if ordered(pass, dirs, call.Pos()) {
			return
		}
		pass.Reportf(call.Pos(), "maps.%s in deterministic package %s yields keys in randomized order: wrap in slices.Sorted, or justify with //sadplint:ordered <reason>", fn.Name(), pass.Pkg.Path())
	case fn.Pkg().Path() == "sync" && fn.Name() == "Range":
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			if named, ok := deref(recv.Type()).(*types.Named); ok && named.Obj().Name() == "Map" {
				if ordered(pass, dirs, call.Pos()) {
					return
				}
				pass.Reportf(call.Pos(), "sync.Map.Range in deterministic package %s iterates in unspecified order (and sync.Map itself has no place in a single-writer solver path)", pass.Pkg.Path())
			}
		}
	}
}

// sortWrappedCalls marks call arguments passed directly into a
// sorting call — slices.Sorted(maps.Keys(m)) is the idiom the detmap
// diagnostic itself recommends, so the inner maps.Keys must not be
// re-flagged.
func sortWrappedCalls(pass *lint.Pass, f *ast.File) map[*ast.CallExpr]bool {
	wrapped := make(map[*ast.CallExpr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if inner, ok := arg.(*ast.CallExpr); ok {
				wrapped[inner] = true
			}
		}
		return true
	})
	return wrapped
}

// isSortCall recognizes calls that impose an order on their
// arguments: anything in package sort, the Sort*-named functions of
// package slices (slices.Collect and friends do not sort), and
// helpers whose own name starts with sort/Sort.
func isSortCall(pass *lint.Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
			if fn.Pkg().Path() == "sort" {
				return true
			}
		}
		return hasSortName(fun.Sel.Name)
	case *ast.Ident:
		return hasSortName(fun.Name)
	}
	return false
}

// collectThenSort recognizes the canonical deterministic-iteration
// idiom: a range over a map that only appends to a slice variable
// which a later statement of the same block sorts (sort.*/slices.*
// or a sort-named helper). The collection order is laundered by the
// sort, so the loop is order-insensitive.
func collectThenSort(pass *lint.Pass, f *ast.File) map[*ast.RangeStmt]bool {
	ok := make(map[*ast.RangeStmt]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		block, isBlock := n.(*ast.BlockStmt)
		if !isBlock {
			return true
		}
		for i, s := range block.List {
			rng, isRange := s.(*ast.RangeStmt)
			if !isRange {
				continue
			}
			target := appendOnlyTarget(pass, rng)
			if target == nil {
				continue
			}
			for _, later := range block.List[i+1:] {
				if sortsVar(pass, later, target) {
					ok[rng] = true
					break
				}
			}
		}
		return true
	})
	return ok
}

// appendOnlyTarget returns the variable object when every statement
// of the range body is `x = append(x, ...)` (optionally if-wrapped,
// plus continue) on one and the same slice variable.
func appendOnlyTarget(pass *lint.Pass, rng *ast.RangeStmt) types.Object {
	var target types.Object
	valid := true
	var check func(list []ast.Stmt)
	check = func(list []ast.Stmt) {
		for _, s := range list {
			if !valid {
				return
			}
			switch s := s.(type) {
			case *ast.AssignStmt:
				obj := appendAssignTarget(pass, s)
				if obj == nil || (target != nil && obj != target) {
					valid = false
					return
				}
				target = obj
			case *ast.BranchStmt:
				if s.Tok != token.CONTINUE {
					valid = false
				}
			case *ast.IfStmt:
				if s.Init != nil {
					valid = false
					return
				}
				check(s.Body.List)
				if b, isBlock := s.Else.(*ast.BlockStmt); isBlock {
					check(b.List)
				} else if s.Else != nil {
					valid = false
				}
			default:
				valid = false
			}
		}
	}
	check(rng.Body.List)
	if !valid {
		return nil
	}
	return target
}

// appendAssignTarget matches `x = append(x, ...)` and returns x's
// object.
func appendAssignTarget(pass *lint.Pass, s *ast.AssignStmt) types.Object {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return nil
	}
	lhs, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return nil
	}
	if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok || first.Name != lhs.Name {
		return nil
	}
	obj := pass.TypesInfo.Uses[first]
	if obj == nil {
		return nil
	}
	return obj
}

// sortsVar reports whether the statement contains a sorting call
// (see isSortCall) with the variable among its arguments.
func sortsVar(pass *lint.Pass, s ast.Stmt, target types.Object) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == target {
				found = true
			}
		}
		return !found
	})
	return found
}

func hasSortName(name string) bool {
	lower := name
	if len(lower) > 0 && lower[0] >= 'A' && lower[0] <= 'Z' {
		lower = string(lower[0]+'a'-'A') + lower[1:]
	}
	return len(lower) >= 4 && lower[:4] == "sort"
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// orderInsensitiveBody reports whether every statement of the range
// body is a commutative fold, i.e. produces the same result under any
// key permutation. Accepted statement forms:
//
//   - x++ / x--
//   - x op= e for numeric/bitwise op (string += concatenation is
//     order-sensitive and rejected)
//   - m[e] = e2 (map writes: distinct keys land in distinct slots)
//   - delete(m, k)
//   - continue
//   - if cond { ... } / else blocks of accepted forms, plus the
//     min/max idiom `if x < e { x = e }` (assignment guarded by a
//     comparison on the same variable)
//
// Anything else — append, sends, calls, returns, breaks — makes the
// outcome depend on visit order and rejects the loop.
func orderInsensitiveBody(pass *lint.Pass, rng *ast.RangeStmt) bool {
	ok := true
	var checkStmts func(list []ast.Stmt)
	var checkStmt func(s ast.Stmt)
	checkStmt = func(s ast.Stmt) {
		if !ok {
			return
		}
		switch s := s.(type) {
		case *ast.IncDecStmt:
			// counters commute
		case *ast.AssignStmt:
			if !commutativeAssign(pass, s) {
				ok = false
			}
		case *ast.ExprStmt:
			if !deleteCall(pass, s.X) {
				ok = false
			}
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE {
				ok = false // break/goto re-introduce order dependence
			}
		case *ast.IfStmt:
			if s.Init != nil {
				ok = false
				return
			}
			if minMaxIdiom(s) {
				return
			}
			checkStmts(s.Body.List)
			switch e := s.Else.(type) {
			case nil:
			case *ast.BlockStmt:
				checkStmts(e.List)
			case *ast.IfStmt:
				checkStmt(e)
			default:
				ok = false
			}
		case *ast.BlockStmt:
			checkStmts(s.List)
		default:
			ok = false
		}
	}
	checkStmts = func(list []ast.Stmt) {
		for _, s := range list {
			checkStmt(s)
		}
	}
	checkStmts(rng.Body.List)
	return ok
}

// commutativeAssign accepts numeric/bitwise compound assignment and
// plain writes into map slots.
func commutativeAssign(pass *lint.Pass, s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
		if len(s.Lhs) != 1 {
			return false
		}
		t, ok := pass.TypesInfo.Types[s.Lhs[0]]
		if !ok {
			return false
		}
		b, ok := t.Type.Underlying().(*types.Basic)
		return ok && b.Info()&(types.IsNumeric|types.IsBoolean) != 0
	case token.ASSIGN, token.DEFINE:
		for _, l := range s.Lhs {
			ix, ok := l.(*ast.IndexExpr)
			if !ok {
				return false
			}
			t, ok := pass.TypesInfo.Types[ix.X]
			if !ok {
				return false
			}
			if _, isMap := t.Type.Underlying().(*types.Map); !isMap {
				return false
			}
		}
		return true
	}
	return false
}

func deleteCall(pass *lint.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "delete"
}

// minMaxIdiom recognizes `if x < e { x = e }` (any comparison
// operator): a running extremum is permutation-invariant as long as
// ties cannot flip the winner, which a comparison on the assigned
// variable itself guarantees for total orders.
func minMaxIdiom(s *ast.IfStmt) bool {
	cmp, ok := s.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch cmp.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return false
	}
	if len(s.Body.List) != 1 || s.Else != nil {
		return false
	}
	asg, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 {
		return false
	}
	l, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	for _, side := range []ast.Expr{cmp.X, cmp.Y} {
		if id, ok := side.(*ast.Ident); ok && id.Name == l.Name {
			return true
		}
	}
	return false
}
