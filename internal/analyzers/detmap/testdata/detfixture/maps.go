// Package detfixture exercises detmap. The import path the test
// assigns contains "detfixture", so the determinism analyzers treat
// it exactly like one of the routing packages.
package detfixture

import (
	"maps"
	"slices"
	"sort"
	"sync"
)

// Keys feeds map range order straight into a result slice.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want "range over map in deterministic package"
		out = append(out, k)
	}
	return out
}

// Sum is a commutative fold: order-insensitive, accepted.
func Sum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// SortedKeys collects then sorts in the same block: the sort launders
// the collection order, accepted.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Max keeps a running extremum: permutation-invariant, accepted.
func Max(m map[string]int) int {
	best := 0
	for _, v := range m {
		if best < v {
			best = v
		}
	}
	return best
}

// Transfer writes into map slots keyed by the range key: distinct
// keys land in distinct slots, accepted.
func Transfer(src, dst map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// Justified asserts the order genuinely does not matter.
func Justified(m map[string]int) []string {
	var out []string
	//sadplint:ordered fixture: consumer treats the result as a set
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Suppressed uses the ignore grammar instead.
func Suppressed(m map[string]int) []string {
	var out []string
	//sadplint:ignore detmap fixture exercising the suppression path
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TwoWay selects among two ready channels: the runtime picks
// uniformly at random.
func TwoWay(a, b chan int) int {
	select { // want "select with 2 comm cases"
	case x := <-a:
		return x
	case x := <-b:
		return x
	}
}

// Poll is a single-case select with default: deterministic, accepted.
func Poll(a chan int) int {
	select {
	case x := <-a:
		return x
	default:
		return 0
	}
}

// SyncRange iterates a sync.Map in unspecified order.
func SyncRange(m *sync.Map) int {
	n := 0
	m.Range(func(k, v any) bool { // want "sync.Map.Range"
		n++
		return true
	})
	return n
}

// RawKeys consumes the randomized maps.Keys sequence directly.
func RawKeys(m map[string]int) []string {
	return slices.Collect(maps.Keys(m)) // want "maps.Keys"
}

// WrappedKeys is the idiom the diagnostic recommends: accepted.
func WrappedKeys(m map[string]int) []string {
	return slices.Sorted(maps.Keys(m))
}
