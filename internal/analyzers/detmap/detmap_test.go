package detmap_test

import (
	"testing"

	"repro/internal/analyzers/detmap"
	"repro/internal/analyzers/lint/linttest"
)

func TestDetmap(t *testing.T) {
	linttest.Run(t, "testdata/detfixture", "example.org/detfixture", detmap.Analyzer)
}

// TestDetmapSilentOutsideDeterministicPackages type-checks the same
// fixture under a package path that is not on the deterministic list:
// detmap must not report anything there, want comments or not.
func TestDetmapSilentOutsideDeterministicPackages(t *testing.T) {
	linttest.RunExpectClean(t, "testdata/detfixture", "example.org/ordinary", detmap.Analyzer)
}
