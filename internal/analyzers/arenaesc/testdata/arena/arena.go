// Package arenafixture exercises the arenaesc analyzer: an Owner
// recycles a scratch buffer the way router.Arena recycles routes, and
// the functions below return, store, send, capture and reuse it in
// every way the analyzer must (and must not) flag.
package arenafixture

// Owner recycles buf between calls.
type Owner struct {
	buf  []int
	keep []int
}

// scratch returns the recycled buffer.
//
//sadplint:scratch the result aliases buf, valid until the next call or Reset
func (o *Owner) scratch() []int {
	o.buf = o.buf[:0]
	return o.buf
}

// Reset invalidates everything scratch has handed out.
func (o *Owner) Reset() {
	o.buf = o.buf[:0]
}

func use(x []int) int { return len(x) }

// --- escapes (flagged) ---

func returnEscape(o *Owner) []int {
	s := o.scratch()
	return s // want "returns arena-backed scratch"
}

func sliceEscape(o *Owner) []int {
	s := o.scratch()
	return s[:0] // want "returns arena-backed scratch"
}

func directReturnEscape(o *Owner) []int {
	return o.scratch() // want "returns arena-backed scratch"
}

func storeEscape(o *Owner) {
	s := o.scratch()
	o.keep = s // want "stores arena-backed scratch"
}

func mapStoreEscape(o *Owner, sink map[string][]int) {
	s := o.scratch()
	sink["k"] = s // want "stores arena-backed scratch"
}

func sendEscape(o *Owner, ch chan []int) {
	s := o.scratch()
	ch <- s // want "sends arena-backed scratch"
}

func goArgEscape(o *Owner) {
	s := o.scratch()
	go use(s) // want "passes arena-backed scratch"
}

func goCaptureEscape(o *Owner) {
	s := o.scratch()
	go func() {
		use(s) // want "goroutine captures arena-backed scratch"
	}()
}

// --- staleness (flagged) ---

func staleAfterReset(o *Owner) int {
	s := o.scratch()
	o.Reset()
	return use(s) // want "uses s after its owner's scratch was reset"
}

func staleAfterRepeatCall(o *Owner) int {
	a := o.scratch()
	b := o.scratch()
	use(b)
	return use(a) // want "uses a after its owner's scratch was reset"
}

func staleOnOnePath(o *Owner, cond bool) int {
	s := o.scratch()
	if cond {
		o.Reset()
	}
	return use(s) // want "uses s after its owner's scratch was reset"
}

// --- sanctioned (clean) ---

// forwardOK forwards scratch but is itself marked scratch.
//
//sadplint:scratch passes the owner's buffer through
func forwardOK(o *Owner) []int {
	return o.scratch()
}

func lenOnlyOK(o *Owner) int {
	s := o.scratch()
	return use(s) // using before any reset is fine
}

func copyOutOK(o *Owner) []int {
	var out []int
	out = append(out, o.scratch()...) // append copies the elements
	return out
}

func useBeforeResetOK(o *Owner) int {
	s := o.scratch()
	n := use(s)
	o.Reset()
	return n
}

func suppressedEscape(o *Owner) []int {
	s := o.scratch()
	//sadplint:ignore arenaesc fixture demonstrates a justified suppression
	return s
}
