package arenaesc_test

import (
	"testing"

	"repro/internal/analyzers/arenaesc"
	"repro/internal/analyzers/lint/linttest"
)

func TestArenaesc(t *testing.T) {
	linttest.Run(t, "testdata/arena", "example.org/arenafixture", arenaesc.Analyzer)
}
