// Package arenaesc flags arena-backed scratch values that escape
// their owner. The router's Arena (and the steiner builder riding on
// it) recycle every slice and Route object between jobs — that is the
// 78× allocation win — so any value returned by a scratch-marked
// function aliases memory the owner will overwrite on its next
// search, Reset or Release. The Go escape analyzer cannot see this
// (the memory is reachable, just semantically dead), and a retained
// path or route silently turns into another net's geometry.
//
// Functions whose results alias recycled scratch carry a
// //sadplint:scratch <reason> directive. The analyzer exports that
// marking as a cross-package fact and then runs a forward dataflow
// over each function's CFG, tracking which locals are tainted by a
// scratch call. It reports when a tainted value
//
//   - is returned from a function not itself marked scratch,
//   - is stored into a struct field, map or slice element (long-lived
//     memory) outside the owner package's own scratch functions,
//   - is sent over a channel or captured by a `go` statement, or
//   - is used after the owner's Reset/Release/reinit — or after a
//     second call to the same scratch function — invalidated it.
package arenaesc

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analyzers/lint"
)

// Analyzer is the arenaesc pass.
var Analyzer = &lint.Analyzer{
	Name: "arenaesc",
	Doc: "report arena/steiner scratch values escaping their owner " +
		"(returns, stores, sends, goroutine captures, use after Reset/Release)",
	Run: run,
}

// invalidators are method names whose call invalidates every live
// scratch value of the receiver's owner. Matched by name: the owner
// types (router.Arena, router.Router, steiner.Builder) all use this
// vocabulary, and a false stale-marking only makes the analyzer more
// conservative about later uses, never less.
var invalidators = map[string]bool{
	"Reset":   true,
	"Release": true,
	"reinit":  true,
}

// taint records where a tainted value came from and whether the
// backing scratch has since been invalidated.
type taint struct {
	src   string // ObjectKey of the scratch function that produced it
	stale bool
}

type state map[types.Object]taint

func run(pass *lint.Pass) error {
	files := pass.NonTestFiles()

	// Pass 1: export the scratch marking of every annotated function as
	// a fact, so both later functions in this package and downstream
	// packages resolve calls to them as taint sources.
	scratchFns := map[*ast.FuncDecl]bool{}
	for _, f := range files {
		dirs := lint.Directives(pass.Fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if _, ok := lint.FuncDirective(pass.Fset, dirs, fd, "scratch"); ok {
				scratchFns[fd] = true
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					pass.ExportFact(obj, "scratch")
				}
			}
		}
	}

	// Pass 2: per-function dataflow.
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a := &analysis{pass: pass, inScratch: scratchFns[fd]}
			a.analyze(fd.Body)
		}
	}
	return nil
}

type analysis struct {
	pass      *lint.Pass
	inScratch bool
	report    bool
	seen      map[string]bool // dedupe key: "pos\x00message"
}

func (a *analysis) analyze(body *ast.BlockStmt) {
	g := lint.BuildCFG(body)
	flow := lint.Flow[state]{
		Entry: state{},
		Copy:  copyState,
		Join:  joinState,
		Transfer: func(n ast.Node, blk *lint.Block, s state) {
			a.transfer(n, s)
		},
	}
	in := lint.Forward(g, flow)

	// Reporting pass: one deterministic sweep per block over the
	// fixpoint states, so fixpoint re-iteration cannot duplicate
	// diagnostics.
	a.report = true
	a.seen = map[string]bool{}
	for i, blk := range g.Blocks {
		s := copyState(in[i])
		for _, n := range blk.Nodes {
			a.transfer(n, s)
		}
	}
	a.report = false
}

func copyState(s state) state {
	out := make(state, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// joinState unions src into dst; a value stale on any incoming path is
// stale at the join.
func joinState(dst, src state) bool {
	changed := false
	for k, v := range src {
		old, ok := dst[k]
		if !ok {
			dst[k] = v
			changed = true
		} else if v.stale && !old.stale {
			old.stale = true
			dst[k] = old
			changed = true
		}
	}
	return changed
}

func (a *analysis) reportf(pos token.Pos, format string, args ...interface{}) {
	if !a.report {
		return
	}
	d := lint.Diagnostic{Pos: a.pass.Fset.Position(pos)}
	key := d.Pos.String() + "\x00" + format
	if a.seen[key] {
		return
	}
	a.seen[key] = true
	a.pass.Reportf(pos, format, args...)
}

func (a *analysis) transfer(n ast.Node, s state) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		a.assign(n, s)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			a.invalidate(r, s)
			a.checkStale(r, s)
			if t := a.taintOf(r, s); t != nil && !a.inScratch {
				a.reportf(r.Pos(),
					"returns arena-backed scratch (from %s); copy it or mark this function //sadplint:scratch", t.src)
			}
		}
	case *ast.SendStmt:
		a.invalidate(n.Value, s)
		a.checkStale(n.Value, s)
		if t := a.taintOf(n.Value, s); t != nil {
			a.reportf(n.Value.Pos(),
				"sends arena-backed scratch (from %s) over a channel; the receiver outlives the owner's next reset", t.src)
		}
	case *ast.GoStmt:
		a.goStmt(n, s)
	case *ast.DeferStmt:
		// Arguments are evaluated here; the call itself is a node of the
		// exit block and is handled there.
		for _, arg := range n.Call.Args {
			a.invalidate(arg, s)
			a.checkStale(arg, s)
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				var rhs ast.Expr
				if i < len(vs.Values) {
					rhs = vs.Values[i]
				}
				if rhs != nil {
					a.invalidate(rhs, s)
					a.checkStale(rhs, s)
				}
				obj := a.pass.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				if t := a.taintOf(rhs, s); t != nil && pointerLike(obj.Type()) {
					s[obj] = *t
				} else {
					delete(s, obj)
				}
			}
		}
	case *ast.ExprStmt:
		a.invalidate(n.X, s)
		a.checkStale(n.X, s)
	case ast.Expr:
		// Conditions, switch tags, range operands, exit-block deferred
		// calls.
		a.invalidate(n, s)
		a.checkStale(n, s)
	case *ast.RangeStmt:
		// Header binding: ranging over a tainted slice taints the value
		// variable when it is itself pointer-like.
		if t := a.taintOf(n.X, s); t != nil && n.Value != nil {
			if id, ok := n.Value.(*ast.Ident); ok {
				if obj := a.pass.TypesInfo.Defs[id]; obj != nil && pointerLike(obj.Type()) {
					s[obj] = *t
				}
			}
		}
	default:
		if st, ok := n.(ast.Stmt); ok {
			// IncDec, Post statements, Comm clauses of select, etc.
			ast.Inspect(st, func(nd ast.Node) bool {
				if e, ok := nd.(ast.Expr); ok {
					a.invalidate(e, s)
					a.checkStale(e, s)
					return false
				}
				return true
			})
		}
	}
}

func (a *analysis) assign(n *ast.AssignStmt, s state) {
	for _, rhs := range n.Rhs {
		a.invalidate(rhs, s)
		a.checkStale(rhs, s)
	}
	// Multi-value call on the right: every pointer-like LHS inherits the
	// call's taint.
	if len(n.Lhs) > 1 && len(n.Rhs) == 1 {
		t := a.taintOf(n.Rhs[0], s)
		for _, lhs := range n.Lhs {
			a.assignOne(lhs, t, s)
		}
		return
	}
	for i, lhs := range n.Lhs {
		var t *taint
		if i < len(n.Rhs) {
			t = a.taintOf(n.Rhs[i], s)
		}
		a.assignOne(lhs, t, s)
	}
}

func (a *analysis) assignOne(lhs ast.Expr, t *taint, s state) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := a.pass.TypesInfo.Defs[lhs]
		if obj == nil {
			obj = a.pass.TypesInfo.Uses[lhs]
		}
		if obj == nil {
			return
		}
		if t != nil && pointerLike(obj.Type()) {
			s[obj] = *t
		} else {
			delete(s, obj)
		}
	case *ast.SelectorExpr, *ast.IndexExpr:
		a.checkStale(lhs, s)
		if t != nil && !a.inScratch {
			a.reportf(lhs.Pos(),
				"stores arena-backed scratch (from %s) into long-lived memory; it is invalid after the owner's next reset", t.src)
		}
	case *ast.StarExpr:
		if t != nil && !a.inScratch {
			a.reportf(lhs.Pos(),
				"stores arena-backed scratch (from %s) through a pointer; it is invalid after the owner's next reset", t.src)
		}
	}
}

// goStmt flags tainted values crossing into a spawned goroutine,
// either as call arguments or as free variables of a func literal.
func (a *analysis) goStmt(n *ast.GoStmt, s state) {
	for _, arg := range n.Call.Args {
		a.checkStale(arg, s)
		if t := a.taintOf(arg, s); t != nil {
			a.reportf(arg.Pos(),
				"passes arena-backed scratch (from %s) to a goroutine; it may outlive the owner's next reset", t.src)
		}
	}
	if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
		var captured []*ast.Ident
		ast.Inspect(lit.Body, func(nd ast.Node) bool {
			if id, ok := nd.(*ast.Ident); ok {
				if obj := a.pass.TypesInfo.Uses[id]; obj != nil {
					if _, tainted := s[obj]; tainted {
						captured = append(captured, id)
					}
				}
			}
			return true
		})
		sort.Slice(captured, func(i, j int) bool { return captured[i].Pos() < captured[j].Pos() })
		for _, id := range captured {
			t := s[a.pass.TypesInfo.Uses[id]]
			a.reportf(id.Pos(),
				"goroutine captures arena-backed scratch %s (from %s); it may outlive the owner's next reset", id.Name, t.src)
			break // one report per go statement is enough
		}
	}
}

// taintOf evaluates whether an expression aliases scratch under the
// current state.
func (a *analysis) taintOf(e ast.Expr, s state) *taint {
	switch e := e.(type) {
	case *ast.Ident:
		obj := a.pass.TypesInfo.Uses[e]
		if obj == nil {
			return nil
		}
		if t, ok := s[obj]; ok {
			return &t
		}
	case *ast.ParenExpr:
		return a.taintOf(e.X, s)
	case *ast.SliceExpr:
		return a.taintOf(e.X, s)
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "append" {
			if a.pass.TypesInfo.Uses[id] == nil || isBuiltin(a.pass.TypesInfo.Uses[id]) {
				if len(e.Args) > 0 {
					// append aliases its first argument's backing array;
					// appended elements are copied in.
					return a.taintOf(e.Args[0], s)
				}
				return nil
			}
		}
		if key, ok := a.scratchCallee(e); ok {
			return &taint{src: key}
		}
	}
	return nil
}

// scratchCallee reports whether the call's static callee carries the
// scratch fact, returning its object key.
func (a *analysis) scratchCallee(call *ast.CallExpr) (string, bool) {
	obj := calleeOf(a.pass.TypesInfo, call)
	if obj == nil {
		return "", false
	}
	if _, ok := a.pass.FactOf(obj); ok {
		return lint.ObjectKey(obj), true
	}
	return "", false
}

// invalidate walks an expression for calls that kill live scratch: an
// owner Reset/Release/reinit staleness-marks everything; a repeat call
// to a scratch function staleness-marks that function's prior results.
// Func literals are separate analysis scopes and are not entered.
func (a *analysis) invalidate(e ast.Expr, s state) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(nd ast.Node) bool {
		if _, ok := nd.(*ast.FuncLit); ok {
			return false
		}
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeOf(a.pass.TypesInfo, call)
		if obj == nil {
			return true
		}
		if invalidators[obj.Name()] {
			for k, t := range s {
				t.stale = true
				s[k] = t
			}
			return true
		}
		if _, ok := a.pass.FactOf(obj); ok {
			key := lint.ObjectKey(obj)
			for k, t := range s {
				if t.src == key {
					t.stale = true
					s[k] = t
				}
			}
		}
		return true
	})
}

// checkStale reports reads of values whose backing scratch has been
// invalidated. Func literals are separate scopes and skipped.
func (a *analysis) checkStale(e ast.Expr, s state) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(nd ast.Node) bool {
		if _, ok := nd.(*ast.FuncLit); ok {
			return false
		}
		id, ok := nd.(*ast.Ident)
		if !ok {
			return true
		}
		obj := a.pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		if t, ok := s[obj]; ok && t.stale {
			a.reportf(id.Pos(),
				"uses %s after its owner's scratch was reset or reused (from %s); copy the value before the reset", id.Name, t.src)
		}
		return true
	})
}

func calleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

func pointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map:
		return true
	}
	return false
}

func isBuiltin(obj types.Object) bool {
	_, ok := obj.(*types.Builtin)
	return ok
}
