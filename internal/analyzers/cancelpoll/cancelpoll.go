// Package cancelpoll enforces the cooperative-cancellation contract:
// an exported function that accepts a cancellation capability — a
// context.Context, a cancel channel, or a config struct carrying a
// Cancel channel (router.Config's shape) — must actually consult it
// inside every statically unbounded loop. The service's graceful
// drain and per-job timeouts (PR 2/PR 4) rely on workers reaching a
// poll point; a loop that ignores the capability it was handed turns
// Shutdown into a hang that no race detector or vet check reports.
//
// "Statically unbounded" means `for {}` and condition-only
// `for cond {}` loops: range loops and three-clause counted loops
// have an iteration bound visible in the syntax. "Consults" is
// deliberately loose — any reference to the capability parameter
// inside the loop (polling the channel, calling ctx.Err, or passing
// the config to a callee that polls) satisfies the check; the point
// is to catch loops with no escape hatch at all.
package cancelpoll

import (
	"go/ast"
	"go/types"

	"repro/internal/analyzers/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "cancelpoll",
	Doc:  "exported functions with a Cancel/context capability must reference it in unbounded loops",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.NonTestFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			caps := cancelParams(pass, fd)
			if len(caps) == 0 {
				continue
			}
			checkLoops(pass, fd, caps)
		}
	}
	return nil
}

// cancelParams returns the parameter objects of fd that carry a
// cancellation capability.
func cancelParams(pass *lint.Pass, fd *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			v, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if isCancelCapable(v.Type()) {
				out = append(out, v)
			}
		}
	}
	return out
}

// isCancelCapable matches context.Context, channel-of-struct{}
// parameters, and structs (by value or pointer) with a channel field
// named Cancel.
func isCancelCapable(t types.Type) bool {
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context" {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return true
	case *types.Pointer:
		return isCancelCapable(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if f.Name() != "Cancel" {
				continue
			}
			if _, ok := f.Type().Underlying().(*types.Chan); ok {
				return true
			}
		}
	}
	return false
}

func checkLoops(pass *lint.Pass, fd *ast.FuncDecl, caps []*types.Var) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		// Bounded: three-clause counted loops carry their bound in the
		// syntax. (Range loops are a different node type entirely.)
		if loop.Cond != nil && (loop.Init != nil || loop.Post != nil) {
			return true
		}
		if referencesAny(pass, loop, caps) {
			return true
		}
		pass.Reportf(loop.Pos(), "unbounded loop in exported %s never consults its cancellation capability (%s): poll the cancel channel/ctx so shutdown and timeouts can reach this loop", fd.Name.Name, capNames(caps))
		return true
	})
}

func referencesAny(pass *lint.Pass, n ast.Node, caps []*types.Var) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok || found {
			return !found
		}
		obj := pass.TypesInfo.Uses[id]
		for _, c := range caps {
			if obj == c {
				found = true
			}
		}
		return !found
	})
	return found
}

func capNames(caps []*types.Var) string {
	s := ""
	for i, c := range caps {
		if i > 0 {
			s += ", "
		}
		s += c.Name()
	}
	return s
}
