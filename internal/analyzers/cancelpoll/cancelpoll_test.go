package cancelpoll_test

import (
	"testing"

	"repro/internal/analyzers/cancelpoll"
	"repro/internal/analyzers/lint/linttest"
)

func TestCancelpoll(t *testing.T) {
	linttest.Run(t, "testdata/poll", "example.org/pollfixture", cancelpoll.Analyzer)
}
