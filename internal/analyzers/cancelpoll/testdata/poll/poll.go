// Package pollfixture exercises cancelpoll. The analyzer matches
// capabilities structurally (context.Context, channel parameters,
// structs carrying a Cancel channel — router.Config's shape), so the
// fixture needs no repo imports.
package pollfixture

import "context"

// Config mirrors the router config shape: a struct with a Cancel
// channel.
type Config struct {
	Seed   int64
	Cancel <-chan struct{}
}

// Spin never consults the capability it was handed.
func Spin(cfg Config) int {
	n := 0
	for { // want "unbounded loop in exported Spin"
		n++
		if n > 1000 {
			return n
		}
	}
}

// Busy is a condition-only loop: statically unbounded too.
func Busy(done chan struct{}, ready func() bool) {
	for !ready() { // want "unbounded loop in exported Busy"
	}
}

// Poll consults the cancel channel each pass: accepted.
func Poll(cfg Config) int {
	n := 0
	for {
		select {
		case <-cfg.Cancel:
			return n
		default:
		}
		n++
	}
}

// Wait polls the context: accepted.
func Wait(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
}

// Handoff passes the capability to a callee inside the loop, which
// the deliberately loose "references it" rule accepts.
func Handoff(cfg Config, step func(Config) bool) {
	for {
		if step(cfg) {
			return
		}
	}
}

// Counted loops carry their bound in the syntax: accepted.
func Counted(cfg Config) int {
	n := 0
	for i := 0; i < 100; i++ {
		n += i
	}
	return n
}

// NoCapability has nothing to poll: out of scope.
func NoCapability(limit int) int {
	n := 0
	for {
		n++
		if n >= limit {
			return n
		}
	}
}

// unexported functions are not part of the exported contract.
func spin(cfg Config) {
	for {
	}
}

// Suppressed documents why its loop needs no poll point.
func Suppressed(cfg Config) int {
	n := 0
	//sadplint:ignore cancelpoll fixture exercising the suppression path
	for {
		n++
		if n > 10 {
			return n
		}
	}
}
