// Package lockfixture exercises lockcheck's `guarded by` contract.
package lockfixture

import "sync"

type store struct {
	mu    sync.Mutex
	name  string
	items map[string]int // guarded by mu
	hits  int            // guarded by mu
}

func newStore() *store {
	// Fresh locals from a constructor are not shared yet: exempt.
	s := &store{items: map[string]int{}}
	s.hits = 0
	return s
}

// Get holds the lock across both accesses: accepted.
func (s *store) Get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits++
	return s.items[k]
}

// Name is unannotated state: out of scope.
func (s *store) Name() string {
	return s.name
}

// Size reads a guarded field with no lock in sight.
func (s *store) Size() int {
	return len(s.items) // want "s.items is guarded by s.mu but accessed without holding it"
}

// Reset writes without the lock.
func (s *store) Reset() {
	s.items = map[string]int{} // want "s.items is guarded by s.mu but accessed without holding it"
}

// PutEarlyUnlock accesses a guarded field after closing the window.
func (s *store) PutEarlyUnlock(k string, v int) {
	s.mu.Lock()
	s.items[k] = v
	s.mu.Unlock()
	s.hits++ // want "s.hits is guarded by s.mu but accessed without holding it"
}

// branchUnlock models the unlock-and-return idiom: the terminating
// branch discards its unlock, so the fall-through access stays legal.
func (s *store) branchUnlock(k string) int {
	s.mu.Lock()
	if len(s.items) == 0 {
		s.mu.Unlock()
		return 0
	}
	v := s.items[k]
	s.mu.Unlock()
	return v
}

// sizeLocked asserts its caller holds the guard via the *Locked
// naming convention.
func (s *store) sizeLocked() int {
	return len(s.items)
}

// Escape documents an access the heuristics cannot see.
func (s *store) Escape() int {
	//sadplint:ignore lockcheck fixture: single-threaded caller owns the store exclusively
	return s.hits
}

type gauge struct {
	mu  sync.RWMutex
	val int // guarded by mu
}

// Read takes the read lock: reads accept either kind.
func (g *gauge) Read() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.val
}

// Bump writes under the read lock.
func (g *gauge) Bump() {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.val++ // want "g.val is written while g.mu is only read-locked"
}

type orphan struct {
	n int // guarded by lock // want "names no sibling field"
}

func (o *orphan) N() int { return o.n }
