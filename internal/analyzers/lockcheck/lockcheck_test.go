package lockcheck_test

import (
	"testing"

	"repro/internal/analyzers/lint/linttest"
	"repro/internal/analyzers/lockcheck"
)

func TestLockcheck(t *testing.T) {
	linttest.Run(t, "testdata/locks", "example.org/lockfixture", lockcheck.Analyzer)
}
