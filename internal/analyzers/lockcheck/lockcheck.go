// Package lockcheck mechanically enforces the `// guarded by <mu>`
// field annotations of the service layer. The race detector only
// catches a forgotten lock when a test happens to race the two
// accesses; lockcheck makes the discipline a compile-time property:
// every read or write of an annotated field must sit inside a window
// where the named sibling mutex of the same base expression is held.
//
// The analysis is intra-procedural and deliberately pragmatic:
//
//   - `x.mu.Lock()` / `x.mu.RLock()` open a window for base `x`;
//     `x.mu.Unlock()` / `x.mu.RUnlock()` close it. A deferred Unlock
//     keeps the window open to the end of the function.
//   - Writes require the write lock; reads accept either.
//   - A branch that unlocks leaks the unlock to the code after it
//     (conservative), but a lock taken inside a branch does not leak
//     out, and a branch ending in return/break/continue discards its
//     lock-state changes (the `if done { mu.Unlock(); return }`
//     idiom).
//   - Function literals are analyzed with an empty lock set: a
//     closure may run after the enclosing window closed.
//   - Methods whose name ends in "Locked" assert the caller holds
//     every guard.
//   - Fresh locals built by a new*/New* constructor in the same
//     function are exempt: the object is not shared yet.
//
// Escapes that the heuristics cannot see are annotated
// `//sadplint:ignore lockcheck <reason>` — with the reason mandatory.
package lockcheck

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analyzers/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "lockcheck",
	Doc:  "reads/writes of `// guarded by <mu>` fields must hold the named mutex",
	Run:  run,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

// lockKind distinguishes the write lock from the read lock.
type lockKind int

const (
	heldWrite lockKind = iota + 1
	heldRead
)

func run(pass *lint.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.NonTestFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &checker{
				pass:   pass,
				guards: guards,
				fresh:  freshLocals(pass, fd),
			}
			held := map[string]lockKind{}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				c.assumeHeld = true
			}
			c.walkStmts(fd.Body.List, held)
		}
	}
	return nil
}

// collectGuards maps annotated field objects to the name of their
// guarding sibling field. Annotations naming a non-existent sibling
// are themselves reported.
func collectGuards(pass *lint.Pass) map[types.Object]string {
	guards := make(map[types.Object]string)
	for _, f := range pass.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := make(map[string]bool)
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, fld := range st.Fields.List {
				guard := guardAnnotation(fld)
				if guard == "" {
					continue
				}
				if !fieldNames[guard] {
					pass.Reportf(fld.Pos(), "`guarded by %s` names no sibling field of this struct", guard)
					continue
				}
				for _, name := range fld.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = guard
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardAnnotation(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// freshLocals returns the objects of local variables initialized from
// a new*/New* constructor call or a composite literal inside fd: the
// value cannot be shared with another goroutine at that point, so
// pre-publication initialization may touch guarded fields lock-free.
func freshLocals(pass *lint.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || asg.Tok.String() != ":=" || len(asg.Lhs) == 0 || len(asg.Rhs) != 1 {
			return true
		}
		if !freshExpr(asg.Rhs[0]) {
			return true
		}
		for _, l := range asg.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					fresh[obj] = true
				}
			}
		}
		return true
	})
	return fresh
}

func freshExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := e.X.(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		name := ""
		switch fun := e.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		return strings.HasPrefix(name, "new") || strings.HasPrefix(name, "New")
	}
	return false
}

type checker struct {
	pass       *lint.Pass
	guards     map[types.Object]string
	fresh      map[types.Object]bool
	assumeHeld bool
}

// walkStmts visits statements in source order, threading the held-
// lock set through lock and unlock calls.
func (c *checker) walkStmts(list []ast.Stmt, held map[string]lockKind) {
	for _, s := range list {
		c.walkStmt(s, held)
	}
}

func (c *checker) walkStmt(s ast.Stmt, held map[string]lockKind) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.walkStmts(s.List, held)
	case *ast.ExprStmt:
		if key, kind, ok := lockOp(c.pass, s.X); ok {
			if kind == 0 {
				delete(held, key)
			} else {
				held[key] = kind
			}
			return
		}
		c.checkExpr(s.X, held, false)
	case *ast.DeferStmt:
		// A deferred Unlock leaves the window open for the rest of the
		// function; other deferred work is checked under the current
		// window (it usually runs while the lock is still held only in
		// the Lock();defer Unlock() idiom, which this models).
		if _, _, ok := lockOp(c.pass, s.Call); ok {
			return
		}
		c.checkExpr(s.Call, held, false)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			c.checkExpr(r, held, false)
		}
		for _, l := range s.Lhs {
			c.checkExpr(l, held, true)
		}
	case *ast.IncDecStmt:
		c.checkExpr(s.X, held, true)
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		c.checkExpr(s.Cond, held, false)
		c.walkBranch(s.Body, held)
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			c.walkBranch(e, held)
		case *ast.IfStmt:
			c.walkStmt(e, held)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond, held, false)
		}
		if s.Post != nil {
			c.walkStmt(s.Post, held)
		}
		c.walkBranch(s.Body, held)
	case *ast.RangeStmt:
		c.checkExpr(s.X, held, false)
		c.walkBranch(s.Body, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			c.checkExpr(s.Tag, held, false)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				for _, e := range cl.List {
					c.checkExpr(e, held, false)
				}
				c.walkCase(cl.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		c.walkStmt(s.Assign, held)
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.walkCase(cl.Body, held)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				if cl.Comm != nil {
					c.walkStmt(cl.Comm, held)
				}
				c.walkCase(cl.Body, held)
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.checkExpr(e, held, false)
		}
	case *ast.SendStmt:
		c.checkExpr(s.Chan, held, false)
		c.checkExpr(s.Value, held, false)
	case *ast.GoStmt:
		c.checkExpr(s.Call, held, false)
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				c.checkExpr(e, held, false)
				return false
			}
			return true
		})
	case *ast.LabeledStmt:
		c.walkStmt(s.Stmt, held)
	}
}

// walkBranch analyzes a nested block on a copy of the lock state:
// unlocks performed by a fall-through branch propagate to the code
// after it, locks do not, and a terminating branch (return/break/
// continue/panic last) leaks nothing.
func (c *checker) walkBranch(body *ast.BlockStmt, held map[string]lockKind) {
	c.walkCase(body.List, held)
}

func (c *checker) walkCase(list []ast.Stmt, held map[string]lockKind) {
	inner := make(map[string]lockKind, len(held))
	for k, v := range held {
		inner[k] = v
	}
	c.walkStmts(list, inner)
	if terminates(list) {
		return
	}
	for k := range held {
		if _, ok := inner[k]; !ok {
			delete(held, k)
		}
	}
}

func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// lockOp recognizes x.mu.Lock()/RLock()/Unlock()/RUnlock() calls on a
// sync.Mutex or sync.RWMutex and returns the held-set key ("x.mu")
// and the resulting kind (0 for unlocks).
func lockOp(pass *lint.Pass, e ast.Expr) (key string, kind lockKind, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", 0, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	fn, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false
	}
	switch fn.Name() {
	case "Lock", "TryLock":
		return types.ExprString(sel.X), heldWrite, true
	case "RLock", "TryRLock":
		return types.ExprString(sel.X), heldRead, true
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), 0, true
	}
	return "", 0, false
}

// checkExpr scans an expression for guarded-field selections. write
// applies to the top-level expression only; nested selections are
// reads.
func (c *checker) checkExpr(e ast.Expr, held map[string]lockKind, write bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure may outlive the current window: analyze with an
			// empty lock set.
			c.walkStmts(n.Body.List, map[string]lockKind{})
			return false
		case *ast.SelectorExpr:
			c.checkSelector(n, held, write && n == e)
		}
		return true
	})
}

func (c *checker) checkSelector(sel *ast.SelectorExpr, held map[string]lockKind, write bool) {
	selection, ok := c.pass.TypesInfo.Selections[sel]
	if !ok {
		return
	}
	guard, ok := c.guards[selection.Obj()]
	if !ok {
		return
	}
	if c.assumeHeld {
		return
	}
	if id, isIdent := sel.X.(*ast.Ident); isIdent {
		if obj := c.pass.TypesInfo.Uses[id]; obj != nil && c.fresh[obj] {
			return
		}
	}
	key := types.ExprString(sel.X) + "." + guard
	kind := held[key]
	switch {
	case kind == 0:
		c.pass.Reportf(sel.Pos(), "%s is guarded by %s.%s but accessed without holding it", types.ExprString(sel), types.ExprString(sel.X), guard)
	case write && kind == heldRead:
		c.pass.Reportf(sel.Pos(), "%s is written while %s.%s is only read-locked (RLock): writes need the write lock", types.ExprString(sel), types.ExprString(sel.X), guard)
	}
}
