package hotalloc_test

import (
	"testing"

	"repro/internal/analyzers/hotalloc"
	"repro/internal/analyzers/lint/linttest"
)

func TestHotalloc(t *testing.T) {
	linttest.Run(t, "testdata/hot", "example.org/hotfixture", hotalloc.Analyzer)
}
