// Package hotfixture exercises the hotalloc analyzer: each hotX
// function is marked //sadplint:hotpath and trips exactly one
// allocation pattern; coldPath repeats them unmarked and stays clean.
package hotfixture

import "fmt"

// S is a plain value struct; S{} literals do not allocate.
type S struct{ X, Y int }

func sink(v interface{})    {}
func sinkInts(s []int)      {}
func sinkStr(s string)      {}
func cleanup()              {}
func sinkPtr(p *S)          {}
func sinkMap(m map[int]int) {}

//sadplint:hotpath fixture: composite literals per iteration
func hotComposite(n int) {
	for i := 0; i < n; i++ {
		sinkInts([]int{i})     // want "composite literal allocates per iteration"
		sinkMap(map[int]int{}) // want "composite literal allocates per iteration"
		sinkPtr(&S{X: i})      // want "composite literal allocates per iteration"
		s := S{X: i}           // struct value: no heap allocation
		_ = s
	}
}

//sadplint:hotpath fixture: growing append
func hotAppend(n int) []int {
	var grow []int
	pre := make([]int, 0, n)
	for i := 0; i < n; i++ {
		grow = append(grow, i) // want "grows per iteration"
		pre = append(pre, i)   // preallocated: clean
	}
	_ = grow
	return pre
}

//sadplint:hotpath fixture: closure allocation
func hotClosure(n int) {
	f := func() int { return n } // want "closure allocates"
	_ = f()
}

//sadplint:hotpath fixture: interface boxing
func hotBox(n int) {
	sink(n) // want "boxes a concrete value into an interface"
	if n < 0 {
		panic("negative") // builtin: clean
	}
}

//sadplint:hotpath fixture: fmt in the hot loop
func hotFmt(n int) string {
	return fmt.Sprintf("%d", n) // want "fmt.Sprintf allocates"
}

//sadplint:hotpath fixture: string concatenation
func hotConcat(a, b string) string {
	const prefix = "id-"
	_ = prefix + "suffix" // constant folding: clean
	return a + b          // want "string concatenation allocates"
}

//sadplint:hotpath fixture: defer inside the loop
func hotDefer(n int) {
	for i := 0; i < n; i++ {
		defer cleanup() // want "defer"
	}
}

//sadplint:hotpath fixture: suppression must silence the finding
func hotSuppressed(n int) {
	//sadplint:ignore hotalloc fixture demonstrates a justified suppression
	sink(n)
}

// coldPath repeats every pattern above without the hotpath directive;
// none of it may be flagged.
func coldPath(n int, a, b string) {
	for i := 0; i < n; i++ {
		sinkInts([]int{i})
		sinkPtr(&S{X: i})
		defer cleanup()
	}
	var grow []int
	for i := 0; i < n; i++ {
		grow = append(grow, i)
	}
	_ = grow
	f := func() int { return n }
	_ = f()
	sink(n)
	sinkStr(fmt.Sprintf("%d", n))
	sinkStr(a + b)
}
