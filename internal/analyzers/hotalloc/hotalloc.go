// Package hotalloc bans allocation constructs inside functions marked
// //sadplint:hotpath <reason>. The router's search step, the Dial
// bucket queue and the incremental TPL recolor run millions of times
// per benchmark; the arena work (PR 4) got a routing job down to ~47
// allocations, and a single composite literal or closure re-introduced
// into one of these inner loops silently costs that win back. The
// regression tests in bench assert allocation ceilings after the fact;
// this analyzer points at the exact construct before the benchmark
// ever runs.
//
// Flagged inside a hotpath function:
//
//   - composite literals inside a loop that allocate — slice and map
//     literals and &T{...}; plain struct *value* literals are exempt
//     (they live in registers or on the stack);
//   - append inside a loop to a local declared without capacity
//     (fields and make'd locals are assumed preallocated);
//   - closure creation (func literals) anywhere;
//   - interface boxing: a concrete value passed where an interface is
//     expected (builtins like panic are exempt — a panic path is cold
//     by definition);
//   - fmt calls and non-constant string concatenation anywhere;
//   - defer inside a loop (one runtime defer record per iteration).
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analyzers/lint"
)

// Analyzer is the hotalloc pass.
var Analyzer = &lint.Analyzer{
	Name: "hotalloc",
	Doc: "forbid allocation constructs (composite literals and growing appends in loops, " +
		"closures, interface boxing, fmt, string concat, defer-in-loop) in //sadplint:hotpath functions",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.NonTestFiles() {
		dirs := lint.Directives(pass.Fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := lint.FuncDirective(pass.Fset, dirs, fd, "hotpath"); !ok {
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				pass.ExportFact(obj, "hotpath")
			}
			h := &hot{pass: pass, fn: fd.Name.Name}
			h.collectCapacities(fd.Body)
			h.walk(fd.Body, 0)
		}
	}
	return nil
}

type hot struct {
	pass *lint.Pass
	fn   string
	// noCap holds locals declared as growing slices: `var s []T` or
	// `s := []T{}` / `s := T(nil)`, with no make(..., cap) in sight.
	noCap map[types.Object]bool
}

// collectCapacities classifies every slice-typed local by its
// declaration form. A local that is ever assigned a make with
// capacity (or a slice of something else) is considered preallocated.
func (h *hot) collectCapacities(body *ast.BlockStmt) {
	h.noCap = map[types.Object]bool{}
	decide := func(name *ast.Ident, rhs ast.Expr) {
		obj := h.pass.TypesInfo.Defs[name]
		if obj == nil {
			return
		}
		if _, ok := obj.Type().Underlying().(*types.Slice); !ok {
			return
		}
		if rhs == nil {
			h.noCap[obj] = true // var s []T
			return
		}
		if call, ok := rhs.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" && len(call.Args) >= 3 {
				return // make([]T, n, cap): preallocated
			}
		}
		if cl, ok := rhs.(*ast.CompositeLit); ok && len(cl.Elts) == 0 {
			h.noCap[obj] = true // s := []T{}
			return
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && i < len(n.Rhs) {
					decide(id, n.Rhs[i])
				}
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					decide(name, rhs)
				}
			}
		}
		return true
	})
}

// walk visits statements tracking loop depth.
func (h *hot) walk(n ast.Node, loopDepth int) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.ForStmt:
		h.walkExprs(loopDepth, n.Cond)
		h.walk(n.Init, loopDepth)
		h.walk(n.Post, loopDepth+1)
		h.walk(n.Body, loopDepth+1)
		return
	case *ast.RangeStmt:
		h.walkExprs(loopDepth, n.X)
		h.walk(n.Body, loopDepth+1)
		return
	case *ast.DeferStmt:
		if loopDepth > 0 {
			h.pass.Reportf(n.Pos(),
				"defer inside a loop in hotpath function %s allocates a defer record per iteration; restructure", h.fn)
		}
		h.walkExprs(loopDepth, n.Call)
		return
	case *ast.BlockStmt:
		for _, s := range n.List {
			h.walk(s, loopDepth)
		}
		return
	case *ast.IfStmt:
		h.walk(n.Init, loopDepth)
		h.walkExprs(loopDepth, n.Cond)
		h.walk(n.Body, loopDepth)
		h.walk(n.Else, loopDepth)
		return
	case *ast.SwitchStmt:
		h.walk(n.Init, loopDepth)
		h.walkExprs(loopDepth, n.Tag)
		h.walk(n.Body, loopDepth)
		return
	case *ast.TypeSwitchStmt:
		h.walk(n.Init, loopDepth)
		h.walk(n.Assign, loopDepth)
		h.walk(n.Body, loopDepth)
		return
	case *ast.CaseClause:
		h.walkExprs(loopDepth, n.List...)
		for _, s := range n.Body {
			h.walk(s, loopDepth)
		}
		return
	case *ast.SelectStmt:
		h.walk(n.Body, loopDepth)
		return
	case *ast.CommClause:
		h.walk(n.Comm, loopDepth)
		for _, s := range n.Body {
			h.walk(s, loopDepth)
		}
		return
	case *ast.LabeledStmt:
		h.walk(n.Stmt, loopDepth)
		return
	case ast.Stmt:
		// Straight-line statements: check the expressions inside.
		ast.Inspect(n, func(nd ast.Node) bool {
			if e, ok := nd.(ast.Expr); ok {
				h.walkExprs(loopDepth, e)
				return false
			}
			return true
		})
		return
	}
}

// walkExprs checks expressions for allocating constructs.
func (h *hot) walkExprs(loopDepth int, exprs ...ast.Expr) {
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(nd ast.Node) bool {
			switch nd := nd.(type) {
			case *ast.FuncLit:
				h.pass.Reportf(nd.Pos(),
					"closure allocates in hotpath function %s; hoist the func value out of the hot path", h.fn)
				return false // its body is a different (non-hot) context
			case *ast.UnaryExpr:
				if nd.Op == token.AND {
					if cl, ok := nd.X.(*ast.CompositeLit); ok && loopDepth > 0 {
						h.pass.Reportf(cl.Pos(),
							"&composite literal allocates per iteration in hotpath function %s; reuse one instance", h.fn)
						return false
					}
				}
			case *ast.CompositeLit:
				if loopDepth > 0 && h.heapLiteral(nd) {
					h.pass.Reportf(nd.Pos(),
						"composite literal allocates per iteration in hotpath function %s; hoist or reuse a buffer", h.fn)
				}
			case *ast.BinaryExpr:
				if nd.Op == token.ADD && h.isString(nd) && !h.isConst(nd) {
					h.pass.Reportf(nd.Pos(),
						"string concatenation allocates in hotpath function %s; avoid or move off the hot path", h.fn)
				}
			case *ast.CallExpr:
				h.call(nd, loopDepth)
			}
			return true
		})
	}
}

func (h *hot) call(call *ast.CallExpr, loopDepth int) {
	// append in a loop to a growing local.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && loopDepth > 0 {
		if obj := h.pass.TypesInfo.Uses[id]; obj != nil {
			if _, builtin := obj.(*types.Builtin); builtin && len(call.Args) > 0 {
				if dst, ok := call.Args[0].(*ast.Ident); ok {
					if dobj := h.pass.TypesInfo.Uses[dst]; dobj != nil && h.noCap[dobj] {
						h.pass.Reportf(call.Pos(),
							"append to %s (declared without capacity) grows per iteration in hotpath function %s; preallocate or reuse an owner buffer", dst.Name, h.fn)
					}
				}
			}
		}
		return
	}
	// fmt calls.
	if callee := calleeOf(h.pass.TypesInfo, call); callee != nil && callee.Pkg() != nil &&
		callee.Pkg().Path() == "fmt" {
		h.pass.Reportf(call.Pos(),
			"fmt.%s allocates in hotpath function %s; format off the hot path", callee.Name(), h.fn)
		return
	}
	// Interface boxing at call boundaries. Builtins (panic, print)
	// have no signature and are exempt: a panic path is cold.
	tv, ok := h.pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i, call.Ellipsis.IsValid())
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := h.pass.TypesInfo.Types[arg]
		if at.Type == nil || types.IsInterface(at.Type) || at.IsNil() || at.Value != nil {
			continue
		}
		if basic, ok := at.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsUntyped != 0 {
			continue
		}
		h.pass.Reportf(arg.Pos(),
			"argument boxes a concrete value into an interface in hotpath function %s; avoid the conversion on the hot path", h.fn)
	}
}

// paramType resolves the parameter type matching argument i,
// unwrapping the variadic tail when the call has no `...`.
func paramType(sig *types.Signature, i int, hasEllipsis bool) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if !sig.Variadic() {
		if i < n {
			return sig.Params().At(i).Type()
		}
		return nil
	}
	if i < n-1 {
		return sig.Params().At(i).Type()
	}
	last := sig.Params().At(n - 1).Type()
	if hasEllipsis {
		return last // s... passes the slice as-is
	}
	if st, ok := last.(*types.Slice); ok {
		return st.Elem()
	}
	return nil
}

// heapLiteral reports whether a composite literal allocates: slice and
// map literals do; plain struct (and array) values do not.
func (h *hot) heapLiteral(cl *ast.CompositeLit) bool {
	tv, ok := h.pass.TypesInfo.Types[cl]
	if !ok || tv.Type == nil {
		return true // unknown: be conservative
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

func (h *hot) isString(e ast.Expr) bool {
	tv, ok := h.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

func (h *hot) isConst(e ast.Expr) bool {
	tv, ok := h.pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func calleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}
