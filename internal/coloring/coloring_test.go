package coloring

import (
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func allSchemes() []Scheme {
	return []Scheme{{Type: SIM}, {Type: SID}}
}

func TestCornerOf(t *testing.T) {
	cases := []struct {
		d1, d2 geom.Dir
		want   Corner
		ok     bool
	}{
		{geom.East, geom.North, NE, true},
		{geom.North, geom.East, NE, true},
		{geom.West, geom.North, NW, true},
		{geom.East, geom.South, SE, true},
		{geom.South, geom.West, SW, true},
		{geom.East, geom.West, 0, false},
		{geom.North, geom.South, 0, false},
		{geom.East, geom.East, 0, false},
		{geom.East, geom.Up, 0, false},
		{geom.None, geom.North, 0, false},
	}
	for _, c := range cases {
		got, ok := CornerOf(c.d1, c.d2)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("CornerOf(%v,%v) = %v,%v want %v,%v", c.d1, c.d2, got, ok, c.want, c.ok)
		}
	}
}

func TestCornerOpposite(t *testing.T) {
	for c := Corner(0); c < NumCorners; c++ {
		if c.Opposite().Opposite() != c {
			t.Errorf("Opposite not involution for %v", c)
		}
		if c.Opposite() == c {
			t.Errorf("Opposite(%v) == itself", c)
		}
	}
}

func TestCornerArmsConsistent(t *testing.T) {
	for c := Corner(0); c < NumCorners; c++ {
		v, h := c.Arms()
		if !v.Vertical() || !h.Horizontal() {
			t.Fatalf("Arms(%v) = %v,%v", c, v, h)
		}
		got, ok := CornerOf(v, h)
		if !ok || got != c {
			t.Errorf("CornerOf(Arms(%v)) = %v,%v", c, got, ok)
		}
	}
}

func TestClassOf(t *testing.T) {
	cases := []struct {
		p    geom.Pt
		want PointClass
	}{
		{geom.XY(0, 0), 0}, {geom.XY(1, 0), 1},
		{geom.XY(0, 1), 2}, {geom.XY(1, 1), 3},
		{geom.XY(2, 2), 0}, {geom.XY(3, 5), 3},
	}
	for _, c := range cases {
		if got := ClassOf(c.p); got != c.want {
			t.Errorf("ClassOf(%v) = %d want %d", c.p, got, c.want)
		}
	}
}

// Every grid point must have exactly one preferred, one non-preferred,
// and two forbidden corner orientations — the structure of Fig 4.
func TestTurnClassDistribution(t *testing.T) {
	for _, s := range allSchemes() {
		for x := 0; x < 4; x++ {
			for y := 0; y < 4; y++ {
				p := geom.XY(x, y)
				count := map[TurnClass]int{}
				for c := Corner(0); c < NumCorners; c++ {
					count[s.Turn(p, c)]++
				}
				if count[Preferred] != 1 || count[NonPreferred] != 1 || count[Forbidden] != 2 {
					t.Errorf("%v at %v: distribution %v", s.Type, p, count)
				}
			}
		}
	}
}

// The non-preferred corner is always diagonally opposite the preferred
// one.
func TestNonPreferredOppositePreferred(t *testing.T) {
	for _, s := range allSchemes() {
		for x := 0; x < 2; x++ {
			for y := 0; y < 2; y++ {
				p := geom.XY(x, y)
				var pref, nonpref Corner
				for c := Corner(0); c < NumCorners; c++ {
					switch s.Turn(p, c) {
					case Preferred:
						pref = c
					case NonPreferred:
						nonpref = c
					}
				}
				if pref.Opposite() != nonpref {
					t.Errorf("%v at %v: preferred %v, non-preferred %v", s.Type, p, pref, nonpref)
				}
			}
		}
	}
}

// Stepping one track in x swaps the east/west arm of the preferred
// corner; one track in y swaps north/south. This is the alternating
// mandrel-side structure the pre-colored grid encodes.
func TestTurnParityShift(t *testing.T) {
	flipEW := map[Corner]Corner{NE: NW, NW: NE, SE: SW, SW: SE}
	flipNS := map[Corner]Corner{NE: SE, SE: NE, NW: SW, SW: NW}
	for _, s := range allSchemes() {
		for x := 0; x < 3; x++ {
			for y := 0; y < 3; y++ {
				p := geom.XY(x, y)
				for c := Corner(0); c < NumCorners; c++ {
					if s.Turn(p, c) == Preferred {
						if s.Turn(p.Add(1, 0), flipEW[c]) != Preferred {
							t.Errorf("%v: x-shift does not flip E/W at %v corner %v", s.Type, p, c)
						}
						if s.Turn(p.Add(0, 1), flipNS[c]) != Preferred {
							t.Errorf("%v: y-shift does not flip N/S at %v corner %v", s.Type, p, c)
						}
					}
				}
			}
		}
	}
}

// SIM and SID must disagree: Fig 4 shows different turn behavior for
// the two processes at corresponding positions.
func TestSIMAndSIDDiffer(t *testing.T) {
	sim, sid := Scheme{Type: SIM}, Scheme{Type: SID}
	differ := false
	for x := 0; x < 2; x++ {
		for y := 0; y < 2; y++ {
			for c := Corner(0); c < NumCorners; c++ {
				if sim.Turn(geom.XY(x, y), c) != sid.Turn(geom.XY(x, y), c) {
					differ = true
				}
			}
		}
	}
	if !differ {
		t.Error("SIM and SID turn tables are identical")
	}
}

func TestTurnDirsNonCorner(t *testing.T) {
	s := Scheme{Type: SIM}
	p := geom.XY(1, 1)
	// Straight wires and via attachments carry no turn penalty.
	for _, pair := range [][2]geom.Dir{
		{geom.East, geom.West}, {geom.North, geom.South},
		{geom.East, geom.Up}, {geom.Up, geom.Down}, {geom.North, geom.None},
	} {
		if got := s.TurnDirs(p, pair[0], pair[1]); got != Preferred {
			t.Errorf("TurnDirs(%v,%v) = %v, want preferred (non-corner)", pair[0], pair[1], got)
		}
	}
}

func TestTurnDirsMatchesTurn(t *testing.T) {
	f := func(x, y int8, ci uint8) bool {
		c := Corner(ci % uint8(NumCorners))
		p := geom.XY(int(x), int(y))
		v, h := c.Arms()
		for _, s := range allSchemes() {
			if s.TurnDirs(p, v, h) != s.Turn(p, c) {
				return false
			}
			if s.TurnDirs(p, h, v) != s.Turn(p, c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Fig 6(a): in SIM, a forbidden turn formed by a one-unit vertical
// extension is decomposable, while a one-unit horizontal extension is
// not. SID is the mirror image.
func TestOneUnitExtensionException(t *testing.T) {
	for _, s := range allSchemes() {
		for x := 0; x < 2; x++ {
			for y := 0; y < 2; y++ {
				p := geom.XY(x, y)
				for c := Corner(0); c < NumCorners; c++ {
					if s.Turn(p, c) != Forbidden {
						// Exception is trivially true for legal turns.
						v, _ := c.Arms()
						if !s.OneUnitExtensionOK(p, c, v) {
							t.Errorf("%v: legal turn %v at %v rejected", s.Type, c, p)
						}
						continue
					}
					v, h := c.Arms()
					vertOK := s.OneUnitExtensionOK(p, c, v)
					horizOK := s.OneUnitExtensionOK(p, c, h)
					if s.Type == SIM && (!vertOK || horizOK) {
						t.Errorf("SIM at %v corner %v: vertOK=%v horizOK=%v", p, c, vertOK, horizOK)
					}
					if s.Type == SID && (vertOK || !horizOK) {
						t.Errorf("SID at %v corner %v: vertOK=%v horizOK=%v", p, c, vertOK, horizOK)
					}
				}
			}
		}
	}
}

func TestOneUnitExtensionNonArmStub(t *testing.T) {
	s := Scheme{Type: SIM}
	p := geom.XY(0, 0)
	for c := Corner(0); c < NumCorners; c++ {
		if s.Turn(p, c) == Forbidden {
			v, h := c.Arms()
			// A stub direction that is not an arm of the corner can
			// never trigger the exception.
			for _, d := range geom.PlanarDirs {
				if d != v && d != h && s.OneUnitExtensionOK(p, c, d) {
					t.Errorf("non-arm stub %v accepted for corner %v", d, c)
				}
			}
		}
	}
}

func TestPanelAndTrackColorsAlternate(t *testing.T) {
	for i := 0; i < 10; i++ {
		if PanelColor(i) == PanelColor(i+1) {
			t.Fatalf("panels %d and %d have same color", i, i+1)
		}
		if TrackColorBlack(i) == TrackColorBlack(i+1) {
			t.Fatalf("tracks %d and %d have same color", i, i+1)
		}
	}
}

func TestMandrelTrackAlternates(t *testing.T) {
	for _, s := range allSchemes() {
		for i := 0; i < 10; i++ {
			if s.MandrelTrack(i) == s.MandrelTrack(i+1) {
				t.Errorf("%v: mandrel tracks %d and %d identical", s.Type, i, i+1)
			}
		}
	}
}

func TestStringers(t *testing.T) {
	if SIM.String() != "SIM" || SID.String() != "SID" {
		t.Error("SADPType strings wrong")
	}
	if Preferred.String() != "preferred" || Forbidden.String() != "forbidden" {
		t.Error("TurnClass strings wrong")
	}
	if NE.String() != "NE" || SW.String() != "SW" {
		t.Error("Corner strings wrong")
	}
	if SADPType(9).String() == "" || TurnClass(9).String() == "" || Corner(9).String() == "" {
		t.Error("out-of-range stringers empty")
	}
}
