// Package coloring implements the color pre-assignment approach for
// SADP-aware detailed routing (paper §II-B, Fig 4).
//
// Before detailed routing the multi-layer routing grid is assigned
// colors. In SIM-type SADP, panels (the areas between adjacent grid
// lines) are colored grey and white alternately in both directions and
// mandrel patterns must be centered in grey panels. In SID-type SADP,
// routing tracks are colored black and grey alternately and mandrels
// run along black tracks. Because the colored grid fixes where mandrel
// and cut/trim mask patterns may be formed, the SADP layout
// decomposition of any routed pattern is known the moment the pattern
// is created, and every L-shaped metal pattern can be classified as a
// preferred, non-preferred, or forbidden turn in O(1).
//
// The published description of [20]'s turn tables is by example
// (Fig 4); this package encodes a parity-based classifier with the same
// structure — at every grid point exactly one corner orientation is
// preferred, the diagonally opposite one is non-preferred, and the
// remaining two are forbidden — together with the one-unit-extension
// exception of Fig 6(a) used by double via insertion feasibility. The
// classifier is the single source of truth for both the router (which
// never creates a forbidden turn) and DVI feasibility.
package coloring

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/geom"
)

// SADPType selects the SADP process flavor.
type SADPType uint8

const (
	// SIM is spacer-is-metal SADP with the cut approach.
	SIM SADPType = iota
	// SID is spacer-is-dielectric SADP with the trim approach.
	SID
)

func (t SADPType) String() string {
	switch t {
	case SIM:
		return "SIM"
	case SID:
		return "SID"
	}
	return fmt.Sprintf("SADPType(%d)", uint8(t))
}

// ParseSADPType reads a process name ("sim" or "sid", any case).
func ParseSADPType(s string) (SADPType, error) {
	switch strings.ToLower(s) {
	case "sim":
		return SIM, nil
	case "sid":
		return SID, nil
	}
	return SIM, fmt.Errorf("unknown SADP type %q (want sim or sid)", s)
}

// MarshalJSON encodes the type as its lowercase name so wire formats
// built on these values read naturally ("sim"/"sid").
func (t SADPType) MarshalJSON() ([]byte, error) {
	switch t {
	case SIM, SID:
		return json.Marshal(strings.ToLower(t.String()))
	}
	return nil, fmt.Errorf("cannot marshal %v", t)
}

// UnmarshalJSON accepts the lowercase/uppercase name or the numeric
// enum value (legacy encoding of the raw uint8).
func (t *SADPType) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := ParseSADPType(s)
		if err != nil {
			return err
		}
		*t = v
		return nil
	}
	var n uint8
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("SADP type: want \"sim\", \"sid\" or 0/1, got %s", b)
	}
	if n > uint8(SID) {
		return fmt.Errorf("SADP type: numeric value %d out of range", n)
	}
	*t = SADPType(n)
	return nil
}

// TurnClass is the SADP decomposability class of an L-shaped metal
// pattern (paper §II-B).
type TurnClass uint8

const (
	// Preferred turns decompose without any layout degradation.
	Preferred TurnClass = iota
	// NonPreferred turns decompose with a degradation (e.g. spacer
	// rounding) and are discouraged with a routing cost.
	NonPreferred
	// Forbidden turns are undecomposable and must never appear in a
	// routing solution.
	Forbidden
)

func (c TurnClass) String() string {
	switch c {
	case Preferred:
		return "preferred"
	case NonPreferred:
		return "non-preferred"
	case Forbidden:
		return "forbidden"
	}
	return fmt.Sprintf("TurnClass(%d)", uint8(c))
}

// Corner identifies the orientation of an L-shaped turn by the two
// directions its arms extend from the turning point.
type Corner uint8

const (
	// NE: arms extend north and east from the turning point.
	NE Corner = iota
	// NW: arms extend north and west.
	NW
	// SE: arms extend south and east.
	SE
	// SW: arms extend south and west.
	SW
	// NumCorners is the number of corner orientations.
	NumCorners
)

func (c Corner) String() string {
	switch c {
	case NE:
		return "NE"
	case NW:
		return "NW"
	case SE:
		return "SE"
	case SW:
		return "SW"
	}
	return fmt.Sprintf("Corner(%d)", uint8(c))
}

// Opposite returns the diagonally opposite corner orientation.
func (c Corner) Opposite() Corner {
	switch c {
	case NE:
		return SW
	case NW:
		return SE
	case SE:
		return NW
	case SW:
		return NE
	}
	return c
}

// Arms returns the vertical and horizontal arm directions of the
// corner.
func (c Corner) Arms() (vert, horiz geom.Dir) {
	switch c {
	case NE:
		return geom.North, geom.East
	case NW:
		return geom.North, geom.West
	case SE:
		return geom.South, geom.East
	case SW:
		return geom.South, geom.West
	}
	return geom.None, geom.None
}

// CornerOf returns the corner orientation of a turn whose arms extend
// in directions d1 and d2 from the turning point. It reports ok=false
// when the pair is not one horizontal and one vertical planar
// direction (a straight wire, a via attachment, or a U-turn is not a
// corner).
func CornerOf(d1, d2 geom.Dir) (Corner, bool) {
	if d1.Vertical() && d2.Horizontal() {
		d1, d2 = d2, d1
	}
	if !d1.Horizontal() || !d2.Vertical() {
		return 0, false
	}
	switch {
	case d2 == geom.North && d1 == geom.East:
		return NE, true
	case d2 == geom.North && d1 == geom.West:
		return NW, true
	case d2 == geom.South && d1 == geom.East:
		return SE, true
	case d2 == geom.South && d1 == geom.West:
		return SW, true
	}
	return 0, false
}

// PointClass is the color class of a grid point: the pair of
// coordinate parities (x mod 2, y mod 2), encoded as x&1 | (y&1)<<1.
// Two points of equal class see identical mandrel geometry in the
// pre-colored grid, so turn legality and DVI feasibility depend on a
// via's point class only (paper §II-C).
type PointClass uint8

// ClassOf returns the color class of grid point p.
func ClassOf(p geom.Pt) PointClass {
	return PointClass(p.X&1 | (p.Y&1)<<1)
}

// NumPointClasses is the number of distinct point classes.
const NumPointClasses = 4

// preferredCorner[type][class] is the unique preferred corner
// orientation at each point class. The tables implement the structure
// of Fig 4: stepping one track in x swaps the east/west arm of the
// preferred corner and stepping one track in y swaps north/south,
// because the mandrel side alternates with each track. SID is the SIM
// table shifted by one track diagonally (its mandrels align to tracks,
// not panels).
var preferredCorner = [2][NumPointClasses]Corner{
	SIM: {NE, NW, SE, SW}, // classes (0,0) (1,0) (0,1) (1,1)
	SID: {SW, SE, NW, NE},
}

// Scheme is a pre-assigned coloring of the routing grid for one SADP
// process type. The zero value is a SIM scheme.
type Scheme struct {
	Type SADPType
}

// Turn classifies the L-shaped turn with corner orientation c at grid
// point p.
func (s Scheme) Turn(p geom.Pt, c Corner) TurnClass {
	pref := preferredCorner[s.Type][ClassOf(p)]
	switch c {
	case pref:
		return Preferred
	case pref.Opposite():
		return NonPreferred
	}
	return Forbidden
}

// TurnDirs classifies the junction at p between two wire arms
// extending in directions d1 and d2. Non-corner junctions (straight
// wires, via attachments) are always Preferred: they carry no turn
// penalty.
func (s Scheme) TurnDirs(p geom.Pt, d1, d2 geom.Dir) TurnClass {
	c, ok := CornerOf(d1, d2)
	if !ok {
		return Preferred
	}
	return s.Turn(p, c)
}

// OneUnitExtensionOK reports whether a forbidden turn at p with corner
// orientation c is nevertheless decomposable when the arm extending in
// direction stub is exactly one grid unit long (Fig 6(a)). The
// exception applies when the one-unit stub runs in the non-preferred
// routing direction of its layer: vertical stubs for SIM, horizontal
// stubs for SID; the cut/trim mask can still resolve the short
// extension against the mandrel in that orientation. For preferred and
// non-preferred turns the method returns true trivially.
func (s Scheme) OneUnitExtensionOK(p geom.Pt, c Corner, stub geom.Dir) bool {
	if s.Turn(p, c) != Forbidden {
		return true
	}
	vert, horiz := c.Arms()
	if stub != vert && stub != horiz {
		return false
	}
	if s.Type == SIM {
		return stub.Vertical()
	}
	return stub.Horizontal()
}

// PanelColor reports whether the SIM panel with the given index along
// one axis is grey (mandrel-bearing). Panels are colored alternately;
// panel i is the area between grid lines i and i+1.
func PanelColor(index int) bool { return index&1 == 1 }

// TrackColorBlack reports whether the SID track with the given index
// is black (mandrel-bearing). Tracks are colored alternately starting
// with black at index 0.
func TrackColorBlack(index int) bool { return index&1 == 0 }

// MandrelTrack reports whether a wire running along the track with the
// given cross-axis index lies on (SID) or beside (SIM) a mandrel.
// Wires on mandrel tracks decompose onto the core mask; the others are
// defined by spacers. The distinction feeds the mask synthesis in
// internal/decompose.
func (s Scheme) MandrelTrack(index int) bool {
	if s.Type == SID {
		return TrackColorBlack(index)
	}
	// SIM: the spacer forms the metal; metal on track i is a mandrel
	// flank when the panel below it (index i-1) is grey.
	return PanelColor(index - 1)
}
