// Package stress drives the full routing pipeline with randomized
// netlists and checks every result with the independent
// internal/verify checker: routing geometry, SADP turn legality, via
// manufacturability, both DVI solvers on the same instance, and the
// heuristic-never-beats-ILP invariant. On a failure it shrinks the
// netlist to a locally minimal reproducer with a delta-debugging loop
// and can dump it in netlist text, JSON and go-fuzz corpus formats.
//
// The harness is deterministic for a given seed, so a CI failure
// reproduces locally with the same -seed.
package stress

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/bench"
	"repro/internal/coloring"
	"repro/internal/dvi"
	"repro/internal/netlist"
	"repro/internal/verify"
)

// Config parameterizes a stress run.
type Config struct {
	// Seed drives circuit generation; equal seeds replay the same
	// trial sequence.
	Seed int64
	// Budget bounds the run's wall clock. At least one trial always
	// runs. Zero means a single trial.
	Budget time.Duration
	// MaxTrials additionally caps the trial count (0 = no cap).
	MaxTrials int
	// ILPTimeLimit bounds each exact DVI solve (default 2s; the
	// warm-started incumbent is returned on expiry, which the checks
	// accept).
	ILPTimeLimit time.Duration
	// ShrinkBudget caps pipeline re-runs during reproducer
	// minimization (default 200).
	ShrinkBudget int
	// MaxPins, when positive, makes every trial a multi-pin circuit:
	// pin counts are drawn uniformly from [2, MaxPins], so Steiner
	// decomposition, trunk sharing and k-pin verification are all on
	// the hot path. Zero keeps the classic 2-pin-heavy mix.
	MaxPins int
	// Logf, when set, receives one line per trial.
	Logf func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.ILPTimeLimit <= 0 {
		c.ILPTimeLimit = 2 * time.Second
	}
	if c.ShrinkBudget <= 0 {
		c.ShrinkBudget = 200
	}
	return c
}

// Result summarizes a finished run.
type Result struct {
	// Trials is the number of random circuits exercised.
	Trials int
	// Checks counts individual verified pipeline results (two SADP
	// modes × two DVI solvers per trial).
	Checks int
}

// Failure describes one reproducible pipeline failure.
type Failure struct {
	// Trial is the 0-based index of the failing trial.
	Trial int
	// Seed replays the run that found it.
	Seed int64
	// MaxPins is the multi-pin knob the run used (0 = classic mix);
	// replaying needs the same value to regenerate the trial.
	MaxPins int
	// Netlist is the shrunken reproducer.
	Netlist *netlist.Netlist
	// Mode is the SADP mode the failure occurred under.
	Mode coloring.SADPType
	// Stage names the failing check (route, verify-routing,
	// metrics, verify-heur, verify-ilp, heur-vs-ilp).
	Stage string
	// Report holds the verifier's findings when the stage is a
	// verification (nil for pipeline errors).
	Report *verify.Report
	// Err is the pipeline or verdict error.
	Err error
}

func (f *Failure) Error() string {
	return fmt.Sprintf("stress: trial %d (seed %d, %v, stage %s, %d nets on %dx%d): %v",
		f.Trial, f.Seed, f.Mode, f.Stage, len(f.Netlist.Nets), f.Netlist.W, f.Netlist.H, f.Err)
}

// Run exercises random circuits until the budget or trial cap is
// exhausted, returning the first (shrunken) failure, if any.
func Run(cfg Config) (Result, *Failure) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	deadline := time.Now().Add(cfg.Budget)
	var res Result
	for {
		ckt := randomCircuit(rng, res.Trials, cfg.MaxPins)
		nl := bench.Generate(ckt)
		for _, mode := range []coloring.SADPType{coloring.SIM, coloring.SID} {
			if fail := checkPipeline(nl, mode, cfg.ILPTimeLimit); fail != nil {
				fail.Trial = res.Trials
				fail.Seed = cfg.Seed
				fail.MaxPins = cfg.MaxPins
				if cfg.Logf != nil {
					cfg.Logf("trial %d FAILED (%v, stage %s); shrinking %d nets",
						res.Trials, mode, fail.Stage, len(nl.Nets))
				}
				fail.Netlist = shrinkNetlist(nl, func(cand *netlist.Netlist) bool {
					return checkPipeline(cand, mode, cfg.ILPTimeLimit) != nil
				}, cfg.ShrinkBudget)
				// Re-derive the report on the shrunken netlist so the
				// dumped failure matches the dumped reproducer.
				if f2 := checkPipeline(fail.Netlist, mode, cfg.ILPTimeLimit); f2 != nil {
					fail.Stage, fail.Report, fail.Err = f2.Stage, f2.Report, f2.Err
				}
				return res, fail
			}
			res.Checks += 2 // heuristic and ILP results both verified
		}
		res.Trials++
		if cfg.Logf != nil {
			cfg.Logf("trial %d ok: %d nets on %dx%d", res.Trials-1, len(nl.Nets), nl.W, nl.H)
		}
		if cfg.MaxTrials > 0 && res.Trials >= cfg.MaxTrials {
			return res, nil
		}
		if !time.Now().Before(deadline) {
			return res, nil
		}
	}
}

// randomCircuit draws a small random circuit: large enough to exercise
// vias, turns and DVI interactions, small enough that the ILP solves
// quickly and a failure shrinks fast.
func randomCircuit(rng *rand.Rand, trial int, maxPins int) bench.Circuit {
	w := 24 + rng.Intn(40)
	h := 24 + rng.Intn(40)
	nets := 4 + rng.Intn(24)
	if maxPins > 0 {
		// Multi-pin nets spread further; keep density routable.
		nets = 4 + rng.Intn(16)
	}
	return bench.Circuit{
		Name:    "stress" + strconv.Itoa(trial),
		Nets:    nets,
		W:       w,
		H:       h,
		Seed:    rng.Int63(),
		MaxPins: maxPins,
	}
}

// checkPipeline runs the full flow on nl in one SADP mode and verifies
// every result, returning a Failure describing the first broken check.
func checkPipeline(nl *netlist.Netlist, mode coloring.SADPType, ilpLimit time.Duration) *Failure {
	fail := func(stage string, rep *verify.Report, err error) *Failure {
		return &Failure{Netlist: nl, Mode: mode, Stage: stage, Report: rep, Err: err}
	}
	spec := bench.RunSpec{
		Scheme: mode, ConsiderDVI: true, ConsiderTPL: true, Method: bench.NoDVI,
	}
	row, art, err := bench.Run(nl, spec)
	if err != nil {
		return fail("route", nil, err)
	}
	routes := art.Router.Routes()
	opt := verify.Options{SADP: mode, CheckTPL: true}
	if rep := verify.Routing(nl, routes, opt); !rep.Ok() {
		return fail("verify-routing", rep, rep.Err())
	}
	if wl, vias := verify.Metrics(routes); wl != row.WL || vias != row.Vias {
		return fail("metrics", nil, fmt.Errorf(
			"independent recount wl=%d vias=%d, reported wl=%d vias=%d", wl, vias, row.WL, row.Vias))
	}

	in := dvi.NewInstance(art.Router.Grid(), routes)
	heur := in.SolveHeuristic(dvi.DefaultHeurParams())
	if rep := verify.Solution(nl, routes, in, heur, opt); !rep.Ok() {
		return fail("verify-heur", rep, rep.Err())
	}
	ilp, err := in.SolveILP(dvi.ILPOptions{TimeLimit: ilpLimit})
	if err != nil {
		return fail("ilp", nil, err)
	}
	if rep := verify.Solution(nl, routes, in, ilp, opt); !rep.Ok() {
		return fail("verify-ilp", rep, rep.Err())
	}
	if ilp.InsertedCount < heur.InsertedCount {
		return fail("heur-vs-ilp", nil, fmt.Errorf(
			"ILP inserted %d < heuristic %d on the same instance", ilp.InsertedCount, heur.InsertedCount))
	}
	return nil
}

// WriteFiles dumps the reproducer into dir: the netlist in text format
// (repro.net), the failure description (repro.txt) and a go-fuzz
// corpus entry for netlist.FuzzRead (repro.corpus), creating dir if
// needed. Returns the netlist path.
func (f *Failure) WriteFiles(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	netPath := filepath.Join(dir, "repro.net")
	nf, err := os.Create(netPath)
	if err != nil {
		return "", err
	}
	werr := f.Netlist.Write(nf)
	if cerr := nf.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return "", werr
	}

	desc := f.Error() + "\n"
	if f.Report != nil {
		for _, v := range f.Report.Violations {
			desc += v.String() + "\n"
		}
	}
	replay := fmt.Sprintf("go run ./cmd/stress -seed %d", f.Seed)
	if f.MaxPins > 0 {
		replay += fmt.Sprintf(" -maxpins %d", f.MaxPins)
	}
	desc += "\nreplay: " + replay + "\n"
	if err := os.WriteFile(filepath.Join(dir, "repro.txt"), []byte(desc), 0o644); err != nil {
		return "", err
	}

	raw, err := os.ReadFile(netPath)
	if err != nil {
		return "", err
	}
	corpus := "go test fuzz v1\nstring(" + strconv.Quote(string(raw)) + ")\n"
	if err := os.WriteFile(filepath.Join(dir, "repro.corpus"), []byte(corpus), 0o644); err != nil {
		return "", err
	}
	return netPath, nil
}
