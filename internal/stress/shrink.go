package stress

import "repro/internal/netlist"

// shrinkNetlist reduces a failing netlist to a locally minimal one
// with the ddmin strategy over nets: repeatedly try dropping chunks of
// nets (halving the chunk size when stuck) while the failing predicate
// keeps holding. budget caps predicate invocations — each one re-runs
// the routing pipeline. The result still fails the predicate.
func shrinkNetlist(nl *netlist.Netlist, failing func(*netlist.Netlist) bool, budget int) *netlist.Netlist {
	cur := nl
	calls := 0
	try := func(cand *netlist.Netlist) bool {
		if calls >= budget {
			return false
		}
		calls++
		return failing(cand)
	}
	chunk := (len(cur.Nets) + 1) / 2
	for chunk >= 1 && calls < budget {
		reduced := false
		for start := 0; start < len(cur.Nets); {
			if len(cur.Nets) <= 1 {
				return cur
			}
			end := min(start+chunk, len(cur.Nets))
			if end-start >= len(cur.Nets) {
				break // dropping every net is never a reproducer; lower the granularity
			}
			cand := withoutNets(cur, start, end)
			if try(cand) {
				cur = cand // chunk was irrelevant; keep position, nets shifted down
				reduced = true
			} else {
				start += chunk
			}
		}
		if chunk == 1 && !reduced {
			break // 1-minimal: no single net can be dropped
		}
		if !reduced {
			chunk /= 2
		} else if chunk > len(cur.Nets) {
			chunk = (len(cur.Nets) + 1) / 2
		}
	}
	return cur
}

// withoutNets copies nl minus the net index range [from, to),
// renumbering IDs so the result validates.
func withoutNets(nl *netlist.Netlist, from, to int) *netlist.Netlist {
	out := &netlist.Netlist{Name: nl.Name, W: nl.W, H: nl.H, NumLayers: nl.NumLayers}
	for i, n := range nl.Nets {
		if i >= from && i < to {
			continue
		}
		c := &netlist.Net{ID: len(out.Nets), Name: n.Name, Pins: n.Pins}
		out.Nets = append(out.Nets, c)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
