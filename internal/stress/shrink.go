package stress

import (
	"repro/internal/geom"
	"repro/internal/netlist"
)

// shrinkNetlist reduces a failing netlist to a locally minimal one with
// the ddmin strategy, first over nets, then over the pins of each
// surviving net: repeatedly try dropping chunks (halving the chunk size
// when stuck) while the failing predicate keeps holding. budget caps
// predicate invocations across both phases — each one re-runs the
// routing pipeline. The result still fails the predicate.
func shrinkNetlist(nl *netlist.Netlist, failing func(*netlist.Netlist) bool, budget int) *netlist.Netlist {
	s := &shrinkState{failing: failing, budget: budget}
	return s.shrinkPins(s.shrinkNets(nl))
}

// shrinkState meters predicate calls across the shrink phases.
type shrinkState struct {
	failing func(*netlist.Netlist) bool
	budget  int
	calls   int
}

func (s *shrinkState) spent() bool { return s.calls >= s.budget }

func (s *shrinkState) try(cand *netlist.Netlist) bool {
	if s.spent() {
		return false
	}
	s.calls++
	return s.failing(cand)
}

// shrinkNets is the net-level ddmin pass.
func (s *shrinkState) shrinkNets(nl *netlist.Netlist) *netlist.Netlist {
	cur := nl
	chunk := (len(cur.Nets) + 1) / 2
	for chunk >= 1 && !s.spent() {
		reduced := false
		for start := 0; start < len(cur.Nets); {
			if len(cur.Nets) <= 1 {
				return cur
			}
			end := min(start+chunk, len(cur.Nets))
			if end-start >= len(cur.Nets) {
				break // dropping every net is never a reproducer; lower the granularity
			}
			cand := withoutNets(cur, start, end)
			if s.try(cand) {
				cur = cand // chunk was irrelevant; keep position, nets shifted down
				reduced = true
			} else {
				start += chunk
			}
		}
		if chunk == 1 && !reduced {
			break // 1-minimal: no single net can be dropped
		}
		if !reduced {
			chunk /= 2
		} else if chunk > len(cur.Nets) {
			chunk = (len(cur.Nets) + 1) / 2
		}
	}
	return cur
}

// shrinkPins is the pin-level ddmin pass: within each surviving net it
// drops chunks of pins, never going below the two pins a valid net
// needs. Multi-pin failures often hinge on one branch of the Steiner
// tree; removing the irrelevant pins shrinks a k-pin reproducer to the
// two or three that matter. Runs after net-level shrinking so pin work
// is spent only on nets that survived it.
func (s *shrinkState) shrinkPins(nl *netlist.Netlist) *netlist.Netlist {
	cur := nl
	for i := 0; i < len(cur.Nets) && !s.spent(); i++ {
		chunk := (len(cur.Nets[i].Pins) + 1) / 2
		for chunk >= 1 && !s.spent() {
			reduced := false
			for start := 0; start < len(cur.Nets[i].Pins); {
				pins := cur.Nets[i].Pins
				if len(pins) <= 2 {
					break
				}
				end := min(start+chunk, len(pins))
				if len(pins)-(end-start) < 2 {
					start += chunk // would leave fewer than two pins
					continue
				}
				cand := withoutPins(cur, i, start, end)
				if s.try(cand) {
					cur = cand
					reduced = true
				} else {
					start += chunk
				}
			}
			if chunk == 1 && !reduced {
				break // 1-minimal: no single pin of this net can go
			}
			if !reduced {
				chunk /= 2
			}
		}
	}
	return cur
}

// withoutNets copies nl minus the net index range [from, to),
// renumbering IDs so the result validates.
func withoutNets(nl *netlist.Netlist, from, to int) *netlist.Netlist {
	out := &netlist.Netlist{Name: nl.Name, W: nl.W, H: nl.H, NumLayers: nl.NumLayers}
	for i, n := range nl.Nets {
		if i >= from && i < to {
			continue
		}
		c := &netlist.Net{ID: len(out.Nets), Name: n.Name, Pins: n.Pins}
		out.Nets = append(out.Nets, c)
	}
	return out
}

// withoutPins copies nl with net's pin index range [from, to) removed.
func withoutPins(nl *netlist.Netlist, net, from, to int) *netlist.Netlist {
	out := &netlist.Netlist{Name: nl.Name, W: nl.W, H: nl.H, NumLayers: nl.NumLayers}
	for i, n := range nl.Nets {
		c := &netlist.Net{ID: i, Name: n.Name, Pins: n.Pins}
		if i == net {
			c.Pins = append(append([]geom.Pt{}, n.Pins[:from]...), n.Pins[to:]...)
		}
		out.Nets = append(out.Nets, c)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
