package stress

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/coloring"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/verify"
)

// TestStressFixedSeed is the go-test entry of the harness: a short
// deterministic sweep that must come back clean. CI runs the same
// harness longer via cmd/stress.
func TestStressFixedSeed(t *testing.T) {
	trials := 3
	if testing.Short() {
		trials = 1
	}
	res, fail := Run(Config{
		Seed:      1,
		Budget:    time.Minute, // the trial cap is the real bound
		MaxTrials: trials,
		Logf:      t.Logf,
	})
	if fail != nil {
		dir := t.TempDir()
		if path, err := fail.WriteFiles(dir); err == nil {
			t.Logf("reproducer written to %s", path)
		}
		t.Fatalf("stress failure: %v", fail)
	}
	if res.Trials != trials || res.Checks != trials*4 {
		t.Fatalf("ran %d trials / %d checks, want %d / %d", res.Trials, res.Checks, trials, trials*4)
	}
}

// TestStressFixedSeedMultiPin runs the same sweep with pin counts
// drawn from [2, 6], so every trial routes k-pin nets through the
// Steiner decomposition and the verifier checks them from the pin set
// alone.
func TestStressFixedSeedMultiPin(t *testing.T) {
	trials := 2
	if testing.Short() {
		trials = 1
	}
	res, fail := Run(Config{
		Seed:      7,
		Budget:    time.Minute, // the trial cap is the real bound
		MaxTrials: trials,
		MaxPins:   6,
		Logf:      t.Logf,
	})
	if fail != nil {
		dir := t.TempDir()
		if path, err := fail.WriteFiles(dir); err == nil {
			t.Logf("reproducer written to %s", path)
		}
		t.Fatalf("multi-pin stress failure: %v", fail)
	}
	if res.Trials != trials || res.Checks != trials*4 {
		t.Fatalf("ran %d trials / %d checks, want %d / %d", res.Trials, res.Checks, trials, trials*4)
	}
}

// TestCheckPipelineCatchesBadNetlist: an unroutable input must surface
// as a stage failure, not a panic or a silent pass.
func TestCheckPipelineCatchesBadNetlist(t *testing.T) {
	// Two nets forced through the same single column cannot both
	// route... but the router may still manage on two layers; instead
	// use a 1-wide grid where vertical layer-0 routing is impossible
	// for a horizontal-preferred layer. Keep it simple: pins of two
	// nets interleaved on one row of a 4x1 grid.
	nl := &netlist.Netlist{Name: "clash", W: 4, H: 1, NumLayers: 2}
	nl.Nets = []*netlist.Net{
		{ID: 0, Name: "a", Pins: []geom.Pt{geom.XY(0, 0), geom.XY(2, 0)}},
		{ID: 1, Name: "b", Pins: []geom.Pt{geom.XY(1, 0), geom.XY(3, 0)}},
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	fail := checkPipeline(nl, coloring.SIM, time.Second)
	if fail == nil {
		t.Skip("router found a legal crossing; nothing to assert")
	}
	if fail.Stage == "" || fail.Err == nil {
		t.Fatalf("failure lacks stage/error: %+v", fail)
	}
}

// TestShrinkNetlist checks the ddmin loop on a synthetic predicate:
// failure iff the netlist still contains the one "bad" net. The
// shrinker must isolate exactly that net (plus nothing else).
func TestShrinkNetlist(t *testing.T) {
	nl := &netlist.Netlist{Name: "s", W: 32, H: 32, NumLayers: 2}
	for i := 0; i < 16; i++ {
		name := fmt.Sprintf("n%d", i)
		if i == 11 {
			name = "bad"
		}
		nl.Nets = append(nl.Nets, &netlist.Net{
			ID: i, Name: name,
			Pins: []geom.Pt{geom.XY(i, i), geom.XY(i+2, i)},
		})
	}
	calls := 0
	hasBad := func(cand *netlist.Netlist) bool {
		calls++
		if err := cand.Validate(); err != nil {
			t.Fatalf("shrinker produced an invalid candidate: %v", err)
		}
		for _, n := range cand.Nets {
			if n.Name == "bad" {
				return true
			}
		}
		return false
	}
	out := shrinkNetlist(nl, hasBad, 1000)
	if len(out.Nets) != 1 || out.Nets[0].Name != "bad" {
		names := make([]string, len(out.Nets))
		for i, n := range out.Nets {
			names[i] = n.Name
		}
		t.Fatalf("shrunk to %d nets %v, want just [bad] (%d predicate calls)", len(out.Nets), names, calls)
	}
}

// TestShrinkRemovesPins: the pin-level ddmin pass must strip the pins
// that don't matter from a multi-pin net. The synthetic predicate
// fails iff the "bad" net still reaches pin (30, 30); the minimal
// reproducer keeps that pin plus exactly one more (a net needs two).
func TestShrinkRemovesPins(t *testing.T) {
	nl := &netlist.Netlist{Name: "p", W: 32, H: 32, NumLayers: 2}
	nl.Nets = []*netlist.Net{
		{ID: 0, Name: "ok", Pins: []geom.Pt{geom.XY(0, 0), geom.XY(4, 0)}},
		{ID: 1, Name: "bad", Pins: []geom.Pt{
			geom.XY(10, 10), geom.XY(20, 5), geom.XY(30, 30), geom.XY(5, 25), geom.XY(15, 18), geom.XY(28, 2),
		}},
	}
	marker := geom.XY(30, 30)
	hasMarker := func(cand *netlist.Netlist) bool {
		if err := cand.Validate(); err != nil {
			t.Fatalf("shrinker produced an invalid candidate: %v", err)
		}
		for _, n := range cand.Nets {
			if n.Name != "bad" {
				continue
			}
			for _, p := range n.Pins {
				if p == marker {
					return true
				}
			}
		}
		return false
	}
	out := shrinkNetlist(nl, hasMarker, 1000)
	if len(out.Nets) != 1 || out.Nets[0].Name != "bad" {
		t.Fatalf("net-level shrink kept %d nets, want just [bad]", len(out.Nets))
	}
	if got := len(out.Nets[0].Pins); got != 2 {
		t.Fatalf("pin-level shrink kept %d pins %v, want 2", got, out.Nets[0].Pins)
	}
	found := false
	for _, p := range out.Nets[0].Pins {
		if p == marker {
			found = true
		}
	}
	if !found {
		t.Fatalf("shrunk net lost the marker pin: %v", out.Nets[0].Pins)
	}
}

// TestShrinkRespectsBudget: the shrinker must stop re-running the
// predicate once the budget is spent and still return a failing input.
func TestShrinkRespectsBudget(t *testing.T) {
	nl := &netlist.Netlist{Name: "s", W: 32, H: 32, NumLayers: 2}
	for i := 0; i < 8; i++ {
		nl.Nets = append(nl.Nets, &netlist.Net{
			ID: i, Name: fmt.Sprintf("n%d", i),
			Pins: []geom.Pt{geom.XY(i, i), geom.XY(i+2, i)},
		})
	}
	calls := 0
	alwaysFails := func(*netlist.Netlist) bool { calls++; return true }
	out := shrinkNetlist(nl, alwaysFails, 3)
	if calls > 3 {
		t.Fatalf("predicate called %d times, budget 3", calls)
	}
	if len(out.Nets) == 0 {
		t.Fatal("shrunk to an empty netlist")
	}
}

// TestWriteFiles round-trips the reproducer artifacts: the netlist
// re-reads, and the corpus entry is in go-fuzz v1 format.
func TestWriteFiles(t *testing.T) {
	nl := &netlist.Netlist{Name: "r", W: 8, H: 8, NumLayers: 2}
	nl.Nets = []*netlist.Net{{ID: 0, Name: "a", Pins: []geom.Pt{geom.XY(1, 1), geom.XY(5, 1)}}}
	fail := &Failure{
		Netlist: nl, Mode: coloring.SIM, Stage: "verify-routing",
		Report: &verify.Report{},
		Err:    fmt.Errorf("synthetic"),
	}
	dir := t.TempDir()
	path, err := fail.WriteFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := netlist.Read(f)
	if err != nil {
		t.Fatalf("reproducer netlist does not re-read: %v", err)
	}
	if back.Name != "r" || len(back.Nets) != 1 {
		t.Fatalf("reproducer shape changed: %+v", back)
	}
	corpus, err := os.ReadFile(filepath.Join(dir, "repro.corpus"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(corpus), "go test fuzz v1\nstring(") {
		t.Fatalf("corpus entry not in go-fuzz v1 format: %q", corpus)
	}
}
