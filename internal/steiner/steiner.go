// Package steiner generates deterministic rectilinear Steiner tree
// topologies for multi-pin nets: the decomposition of a k-pin net into
// a tree of two-pin segments that the detailed router then realizes
// one connection at a time, reusing already-routed wires of the same
// net as free trunk (Mr.TPL-style multi-pin handling; see DESIGN.md
// §14).
//
// The construction is the classic two-stage heuristic:
//
//  1. A rectilinear minimum spanning tree over the pins (Prim's
//     algorithm with index-order tie-breaking, so the tree is a pure
//     function of the pin list).
//  2. Iterated 1-Steiner refinement: candidate Steiner points are drawn
//     from the Hanan grid of the current node set; the candidate whose
//     insertion shrinks the MST the most is committed, until no
//     candidate helps or the Steiner budget (k−2 points, the
//     rectilinear maximum) is exhausted. Candidates can be vetoed by
//     the caller (Options.Blocked) — the router uses this to keep
//     Steiner points off foreign pin terminals and off cells already
//     claimed as Steiner points by other nets.
//
// Degree-≤2 Steiner points are pruned (a degree-2 point only splices
// two segments and constrains the router for no length gain), and the
// surviving tree is emitted as segments in BFS order from the first
// pin, so segment i's A endpoint is always part of the already-routed
// component — exactly the order a sequential trunk-sharing router
// wants.
package steiner

import (
	"sort"

	"repro/internal/geom"
)

// Segment is one two-pin connection of the topology: B is the new node
// to attach, A the tree node it attaches to (already connected when
// segments are routed in order).
type Segment struct {
	A, B geom.Pt
}

// Len returns the segment's Manhattan length.
func (s Segment) Len() int { return s.A.ManhattanDist(s.B) }

// Tree is a net's Steiner topology.
type Tree struct {
	// Pins are the deduplicated input pins, in input order. Pins[0] is
	// the BFS root.
	Pins []geom.Pt
	// Steiner are the committed refinement points (possibly empty).
	Steiner []geom.Pt
	// Segs are the two-pin segments in routing order: Segs[i].A is
	// connected by some earlier segment (or is the root).
	Segs []Segment
	// Length is the total Manhattan length of the segments — the
	// topology's wirelength lower bound, never above the plain MST's.
	Length int
}

// Options tune the construction.
type Options struct {
	// Blocked vetoes candidate Steiner points (existing nodes are never
	// candidates). Nil blocks nothing.
	Blocked func(geom.Pt) bool
	// MaxPinsForRefinement skips the quadratic Hanan refinement for
	// nets with more pins (the MST alone is the topology then). Zero
	// means the default of 12; routing-quality work concentrates on the
	// small nets real standard-cell netlists are made of, and parser
	// input is untrusted.
	MaxPinsForRefinement int
}

// Builder constructs topologies while recycling all internal scratch
// (MST working arrays, Hanan enumeration buffers, adjacency lists)
// across Build calls. A long-lived router keeps one Builder per worker
// so steady-state topology generation allocates only the returned
// Tree. A Builder is single-owner state; it is not safe for concurrent
// use. The zero value is ready to use.
type Builder struct {
	seen     map[geom.Pt]bool
	nodes    []geom.Pt
	trial    []geom.Pt
	inTree   []bool
	dist     []int
	attach   []int
	coordBuf []int
	xs, ys   []int
	cands    []geom.Pt
	edges    []edge
	kept     []edge
	deg      []int
	adj      [][]int
	visited  []bool
	queue    []int
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Build constructs the topology for the given pins; see Builder.Build.
// It allocates fresh scratch every call — callers on a hot path keep a
// Builder instead.
func Build(pins []geom.Pt, opt Options) *Tree {
	return NewBuilder().Build(pins, opt)
}

// Build constructs the topology for the given pins. Duplicates are
// dropped; fewer than two distinct pins yield a tree with no segments.
// The result is a pure function of (pins, blocked verdicts): no maps
// are iterated, all ties break by index or coordinate order. The
// returned Tree shares no storage with the builder and stays valid
// across future Build calls.
func (b *Builder) Build(pins []geom.Pt, opt Options) *Tree {
	t := &Tree{}
	if b.seen == nil {
		b.seen = make(map[geom.Pt]bool, len(pins))
	} else {
		clear(b.seen)
	}
	for _, p := range pins {
		if !b.seen[p] {
			b.seen[p] = true
			t.Pins = append(t.Pins, p)
		}
	}
	if len(t.Pins) < 2 {
		return t
	}
	if len(t.Pins) == 2 {
		t.Segs = []Segment{{A: t.Pins[0], B: t.Pins[1]}}
		t.Length = t.Segs[0].Len()
		return t
	}

	maxRefine := opt.MaxPinsForRefinement
	if maxRefine == 0 {
		maxRefine = 12
	}

	b.nodes = append(b.nodes[:0], t.Pins...)
	if len(t.Pins) <= maxRefine {
		b.refine(len(t.Pins), opt.Blocked)
	}

	edges := b.mstEdges(b.nodes)
	edges = b.prune(edges, len(t.Pins))
	t.Steiner = append(t.Steiner, b.nodes[len(t.Pins):]...)

	t.Segs = b.orderSegments(edges, b.nodes)
	for _, s := range t.Segs {
		t.Length += s.Len()
	}
	return t
}

// edge connects node indices a < b.
type edge struct{ a, b int }

// grow returns s resized to length n, reallocating only on growth.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// mstEdges returns the rectilinear MST of nodes as index edges, via
// Prim from node 0. Ties break on the smaller frontier index, then the
// smaller attachment index, making the tree deterministic. The
// returned slice is builder scratch, valid until the next MST call.
func (b *Builder) mstEdges(nodes []geom.Pt) []edge {
	n := len(nodes)
	b.inTree = grow(b.inTree, n)
	b.dist = grow(b.dist, n)
	b.attach = grow(b.attach, n)
	inTree, dist, attach := b.inTree, b.dist, b.attach
	for i := range dist {
		inTree[i] = false
		dist[i] = nodes[i].ManhattanDist(nodes[0])
		attach[i] = 0
	}
	inTree[0] = true
	edges := b.edges[:0]
	for len(edges) < n-1 {
		best := -1
		for i := 0; i < n; i++ {
			if inTree[i] {
				continue
			}
			if best == -1 || dist[i] < dist[best] {
				best = i
			}
		}
		a, bi := attach[best], best
		if bi < a {
			a, bi = bi, a
		}
		edges = append(edges, edge{a, bi})
		inTree[best] = true
		for i := 0; i < n; i++ {
			if inTree[i] {
				continue
			}
			if d := nodes[i].ManhattanDist(nodes[best]); d < dist[i] {
				dist[i] = d
				attach[i] = best
			}
		}
	}
	b.edges = edges
	return edges
}

// mstLen is the MST's total length without materializing edges.
func (b *Builder) mstLen(nodes []geom.Pt) int {
	n := len(nodes)
	b.inTree = grow(b.inTree, n)
	b.dist = grow(b.dist, n)
	inTree, dist := b.inTree, b.dist
	for i := range dist {
		inTree[i] = false
		dist[i] = nodes[i].ManhattanDist(nodes[0])
	}
	inTree[0] = true
	total := 0
	for picked := 1; picked < n; picked++ {
		best := -1
		for i := 0; i < n; i++ {
			if inTree[i] {
				continue
			}
			if best == -1 || dist[i] < dist[best] {
				best = i
			}
		}
		total += dist[best]
		inTree[best] = true
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := nodes[i].ManhattanDist(nodes[best]); d < dist[i] {
					dist[i] = d
				}
			}
		}
	}
	return total
}

// refine runs iterated 1-Steiner on b.nodes: commit the Hanan
// candidate with the largest MST length reduction until none helps or
// numPins−2 points are placed. Candidates are scanned in (y, x) order
// so equal gains resolve identically everywhere.
func (b *Builder) refine(numPins int, blocked func(geom.Pt) bool) {
	for len(b.nodes)-numPins < numPins-2 {
		curLen := b.mstLen(b.nodes)
		cands := b.hananCandidates(blocked)
		bestGain := 0
		var bestPt geom.Pt
		for _, c := range cands {
			b.trial = append(append(b.trial[:0], b.nodes...), c)
			if gain := curLen - b.mstLen(b.trial); gain > bestGain {
				bestGain = gain
				bestPt = c
			}
		}
		if bestGain <= 0 {
			return
		}
		b.nodes = append(b.nodes, bestPt)
	}
}

// hananCandidates enumerates the Hanan grid of b.nodes (every (x, y)
// combination of node coordinates) minus existing nodes and blocked
// cells, in deterministic (y, x) order. The returned slice is builder
// scratch.
func (b *Builder) hananCandidates(blocked func(geom.Pt) bool) []geom.Pt {
	b.xs = b.uniqSorted(b.xs, func(p geom.Pt) int { return p.X })
	b.ys = b.uniqSorted(b.ys, func(p geom.Pt) int { return p.Y })
	clear(b.seen)
	for _, p := range b.nodes {
		b.seen[p] = true
	}
	out := b.cands[:0]
	for _, y := range b.ys {
		for _, x := range b.xs {
			p := geom.XY(x, y)
			if b.seen[p] || (blocked != nil && blocked(p)) {
				continue
			}
			out = append(out, p)
		}
	}
	b.cands = out
	return out
}

func (b *Builder) uniqSorted(dst []int, key func(geom.Pt) int) []int {
	vals := b.coordBuf[:0]
	for _, p := range b.nodes {
		vals = append(vals, key(p))
	}
	b.coordBuf = vals
	sort.Ints(vals)
	dst = dst[:0]
	for i, v := range vals {
		if i == 0 || v != dst[len(dst)-1] {
			dst = append(dst, v)
		}
	}
	return dst
}

// ensureAdj resets the reusable adjacency lists to n empty rows.
func (b *Builder) ensureAdj(n int) [][]int {
	if cap(b.adj) < n {
		b.adj = make([][]int, n)
	}
	b.adj = b.adj[:n]
	for i := range b.adj {
		b.adj[i] = b.adj[i][:0]
	}
	return b.adj
}

// prune drops Steiner nodes of degree ≤ 2 from b.nodes (splicing the
// two edges of a degree-2 node into one), repeating to a fixpoint, and
// compacts the node slice. Pins are never pruned.
func (b *Builder) prune(edges []edge, numPins int) []edge {
	for {
		n := len(b.nodes)
		b.deg = grow(b.deg, n)
		deg := b.deg
		for i := range deg {
			deg[i] = 0
		}
		adj := b.ensureAdj(n)
		for _, e := range edges {
			deg[e.a]++
			deg[e.b]++
			adj[e.a] = append(adj[e.a], e.b)
			adj[e.b] = append(adj[e.b], e.a)
		}
		victim := -1
		for i := numPins; i < n; i++ {
			if deg[i] <= 2 {
				victim = i
				break
			}
		}
		if victim == -1 {
			return edges
		}
		kept := b.kept[:0]
		for _, e := range edges {
			if e.a != victim && e.b != victim {
				kept = append(kept, e)
			}
		}
		if deg[victim] == 2 {
			x, y := adj[victim][0], adj[victim][1]
			if y < x {
				x, y = y, x
			}
			if x != y {
				kept = append(kept, edge{x, y})
			}
		}
		// Remove the node, renumbering indices above it.
		b.nodes = append(b.nodes[:victim], b.nodes[victim+1:]...)
		for i := range kept {
			if kept[i].a > victim {
				kept[i].a--
			}
			if kept[i].b > victim {
				kept[i].b--
			}
		}
		// Swap the edge buffers so the next round filters from kept.
		b.kept, b.edges = b.edges[:0], kept
		edges = kept
	}
}

// orderSegments emits the tree's edges in BFS order from node 0 (the
// first pin), orienting each so A is the already-visited endpoint.
// Neighbor expansion follows ascending node index.
func (b *Builder) orderSegments(edges []edge, nodes []geom.Pt) []Segment {
	adj := b.ensureAdj(len(nodes))
	for _, e := range edges {
		adj[e.a] = append(adj[e.a], e.b)
		adj[e.b] = append(adj[e.b], e.a)
	}
	for _, nb := range adj {
		sort.Ints(nb)
	}
	b.visited = grow(b.visited, len(nodes))
	visited := b.visited
	for i := range visited {
		visited[i] = false
	}
	visited[0] = true
	queue := append(b.queue[:0], 0)
	segs := make([]Segment, 0, len(edges))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if visited[v] {
				continue
			}
			visited[v] = true
			segs = append(segs, Segment{A: nodes[u], B: nodes[v]})
			queue = append(queue, v)
		}
	}
	b.queue = queue[:0]
	return segs
}
