package steiner

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
)

// spans checks that routing the segments in order keeps one connected
// component containing every pin and every segment endpoint: seg.A
// must already be connected when its segment is reached.
func spans(t *testing.T, tr *Tree) {
	t.Helper()
	if len(tr.Pins) < 2 {
		if len(tr.Segs) != 0 {
			t.Fatalf("degenerate pin set got %d segments", len(tr.Segs))
		}
		return
	}
	connected := map[geom.Pt]bool{tr.Pins[0]: true}
	for i, s := range tr.Segs {
		if !connected[s.A] {
			t.Fatalf("segment %d: A=%v not connected yet (segs %v)", i, s.A, tr.Segs)
		}
		connected[s.B] = true
	}
	for _, p := range tr.Pins {
		if !connected[p] {
			t.Fatalf("pin %v not covered by segments %v", p, tr.Segs)
		}
	}
	for _, s := range tr.Steiner {
		if !connected[s] {
			t.Fatalf("steiner point %v not covered by segments", s)
		}
	}
}

func TestTwoPinTrivial(t *testing.T) {
	tr := Build([]geom.Pt{geom.XY(1, 1), geom.XY(4, 5)}, Options{})
	if len(tr.Segs) != 1 || tr.Length != 7 {
		t.Fatalf("two-pin tree: %+v", tr)
	}
	spans(t, tr)
}

func TestDuplicateAndDegeneratePins(t *testing.T) {
	tr := Build([]geom.Pt{geom.XY(2, 2), geom.XY(2, 2)}, Options{})
	if len(tr.Pins) != 1 || len(tr.Segs) != 0 {
		t.Fatalf("duplicate-only pins: %+v", tr)
	}
	tr = Build([]geom.Pt{geom.XY(2, 2), geom.XY(2, 2), geom.XY(5, 2)}, Options{})
	if len(tr.Pins) != 2 || len(tr.Segs) != 1 {
		t.Fatalf("dedup failed: %+v", tr)
	}
	spans(t, tr)
}

// The canonical 1-Steiner win: three pins in an L. The MST costs two
// full legs; a Steiner point at the corner... saves nothing for 3 pins
// in an L (MST already optimal), but a 4-pin cross saves two legs.
func TestCrossGainsSteinerPoint(t *testing.T) {
	pins := []geom.Pt{geom.XY(5, 0), geom.XY(0, 5), geom.XY(10, 5), geom.XY(5, 10)}
	tr := Build(pins, Options{})
	spans(t, tr)
	if len(tr.Steiner) == 0 {
		t.Fatalf("cross pins gained no Steiner point: %+v", tr)
	}
	if want := (Segment{geom.XY(5, 5), geom.XY(5, 0)}).Len() * 4; tr.Length != want {
		t.Fatalf("cross length %d, want %d (star from center)", tr.Length, want)
	}
	// And never worse than the plain MST.
	if mst := NewBuilder().mstLen(pins); tr.Length > mst {
		t.Fatalf("refined length %d exceeds MST %d", tr.Length, mst)
	}
}

func TestBlockedVetoesSteinerPoint(t *testing.T) {
	pins := []geom.Pt{geom.XY(5, 0), geom.XY(0, 5), geom.XY(10, 5), geom.XY(5, 10)}
	center := geom.XY(5, 5)
	tr := Build(pins, Options{Blocked: func(p geom.Pt) bool { return p == center }})
	spans(t, tr)
	for _, s := range tr.Steiner {
		if s == center {
			t.Fatalf("blocked point %v used as Steiner point", center)
		}
	}
}

func TestDeterministicAndPure(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		k := 2 + rng.Intn(7)
		pins := make([]geom.Pt, 0, k)
		for i := 0; i < k; i++ {
			pins = append(pins, geom.XY(rng.Intn(30), rng.Intn(30)))
		}
		a := Build(pins, Options{})
		b := Build(append([]geom.Pt(nil), pins...), Options{})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: Build not deterministic:\n%+v\n%+v", trial, a, b)
		}
	}
}

func TestRandomTreesSpanAndNeverBeatMST(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		k := 3 + rng.Intn(6)
		seen := map[geom.Pt]bool{}
		var pins []geom.Pt
		for len(pins) < k {
			p := geom.XY(rng.Intn(40), rng.Intn(40))
			if !seen[p] {
				seen[p] = true
				pins = append(pins, p)
			}
		}
		tr := Build(pins, Options{})
		spans(t, tr)
		mst := NewBuilder().mstLen(pins)
		if tr.Length > mst {
			t.Fatalf("trial %d: refined length %d > MST %d (pins %v)", trial, tr.Length, mst, pins)
		}
		// Lower bound: half the HPWL of the pin bbox... the Steiner
		// minimal tree is at least the half-perimeter of the bounding
		// box of the pins.
		b := geom.BoundingRect(pins)
		if hp := (b.Width() - 1) + (b.Height() - 1); tr.Length < hp {
			t.Fatalf("trial %d: length %d below HPWL bound %d", trial, tr.Length, hp)
		}
		// Steiner points must lie inside the pin bounding box (they are
		// Hanan points of pins or earlier Steiner points).
		for _, s := range tr.Steiner {
			if !b.Contains(s) {
				t.Fatalf("trial %d: steiner point %v outside pin bbox %v", trial, s, b)
			}
		}
		if len(tr.Steiner) > k-2 {
			t.Fatalf("trial %d: %d Steiner points for %d pins", trial, len(tr.Steiner), k)
		}
	}
}

func TestSegmentCount(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		k := 3 + rng.Intn(5)
		seen := map[geom.Pt]bool{}
		var pins []geom.Pt
		for len(pins) < k {
			p := geom.XY(rng.Intn(25), rng.Intn(25))
			if !seen[p] {
				seen[p] = true
				pins = append(pins, p)
			}
		}
		tr := Build(pins, Options{})
		if want := len(tr.Pins) + len(tr.Steiner) - 1; len(tr.Segs) != want {
			t.Fatalf("trial %d: %d segments for %d nodes (want %d)", trial, len(tr.Segs), len(tr.Pins)+len(tr.Steiner), want)
		}
	}
}

func TestRefinementSkippedAboveCap(t *testing.T) {
	var pins []geom.Pt
	for i := 0; i < 20; i++ {
		pins = append(pins, geom.XY(i*3%17, i*7%19))
	}
	tr := Build(pins, Options{MaxPinsForRefinement: 8})
	if len(tr.Steiner) != 0 {
		t.Fatalf("refinement ran above the pin cap: %d Steiner points", len(tr.Steiner))
	}
	spans(t, tr)
}
