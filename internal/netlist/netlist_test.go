package netlist

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/geom"
)

func sample() *Netlist {
	return &Netlist{
		Name: "t", W: 10, H: 8, NumLayers: 2,
		Nets: []*Net{
			{ID: 0, Name: "n0", Pins: []geom.Pt{geom.XY(0, 0), geom.XY(5, 3)}},
			{ID: 1, Name: "n1", Pins: []geom.Pt{geom.XY(2, 2), geom.XY(2, 7), geom.XY(9, 7)}},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Netlist)
	}{
		{"zero width", func(nl *Netlist) { nl.W = 0 }},
		{"one layer", func(nl *Netlist) { nl.NumLayers = 1 }},
		{"pin out of grid", func(nl *Netlist) { nl.Nets[0].Pins[0] = geom.XY(10, 0) }},
		{"negative pin", func(nl *Netlist) { nl.Nets[0].Pins[0] = geom.XY(-1, 0) }},
		{"single pin", func(nl *Netlist) { nl.Nets[0].Pins = nl.Nets[0].Pins[:1] }},
		{"coincident pins", func(nl *Netlist) {
			nl.Nets[0].Pins = []geom.Pt{geom.XY(1, 1), geom.XY(1, 1)}
		}},
		{"bad ID", func(nl *Netlist) { nl.Nets[1].ID = 5 }},
	}
	for _, c := range cases {
		nl := sample()
		c.mutate(nl)
		if err := nl.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid netlist", c.name)
		}
	}
}

// TestValidateTypedErrors: degenerate nets are rejected with the typed
// sentinels, reachable through errors.Is even across Read's wrapping.
func TestValidateTypedErrors(t *testing.T) {
	nl := sample()
	nl.Nets[0].Pins = nl.Nets[0].Pins[:1]
	if err := nl.Validate(); !errors.Is(err, ErrTooFewPins) {
		t.Fatalf("single pin: got %v, want ErrTooFewPins", err)
	}

	nl = sample()
	nl.Nets[1].Pins = append(nl.Nets[1].Pins, nl.Nets[1].Pins[0])
	if err := nl.Validate(); !errors.Is(err, ErrDuplicatePin) {
		t.Fatalf("duplicate pin: got %v, want ErrDuplicatePin", err)
	}

	// Duplicates among k > 2 pins: still rejected, even though two
	// distinct pins remain.
	nl = sample()
	nl.Nets[1].Pins = []geom.Pt{geom.XY(2, 2), geom.XY(2, 7), geom.XY(2, 2)}
	if err := nl.Validate(); !errors.Is(err, ErrDuplicatePin) {
		t.Fatalf("duplicate among 3 pins: got %v, want ErrDuplicatePin", err)
	}

	// The same sentinels surface from the parser.
	if _, err := Read(strings.NewReader("netlist t 8 8 2\nnet a 1 1\n")); !errors.Is(err, ErrTooFewPins) {
		t.Fatalf("Read single pin: got %v, want ErrTooFewPins", err)
	}
	if _, err := Read(strings.NewReader("netlist t 8 8 2\nnet a 1 1 2 2 1 1\n")); !errors.Is(err, ErrDuplicatePin) {
		t.Fatalf("Read duplicate pin: got %v, want ErrDuplicatePin", err)
	}
}

func TestHPWL(t *testing.T) {
	n := &Net{Pins: []geom.Pt{geom.XY(1, 1), geom.XY(4, 3)}}
	if got := n.HPWL(); got != 5 {
		t.Errorf("HPWL = %d, want 5", got)
	}
	nl := sample()
	if nl.TotalHPWL() != nl.Nets[0].HPWL()+nl.Nets[1].HPWL() {
		t.Error("TotalHPWL does not sum per-net values")
	}
}

func TestNumPins(t *testing.T) {
	if got := sample().NumPins(); got != 5 {
		t.Errorf("NumPins = %d, want 5", got)
	}
}

func TestRoundTrip(t *testing.T) {
	nl := sample()
	var buf bytes.Buffer
	if err := nl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != nl.Name || got.W != nl.W || got.H != nl.H || got.NumLayers != nl.NumLayers {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Nets) != len(nl.Nets) {
		t.Fatalf("net count %d != %d", len(got.Nets), len(nl.Nets))
	}
	for i, n := range got.Nets {
		want := nl.Nets[i]
		if n.Name != want.Name || len(n.Pins) != len(want.Pins) {
			t.Errorf("net %d mismatch", i)
			continue
		}
		for j, p := range n.Pins {
			if p != want.Pins[j] {
				t.Errorf("net %d pin %d: %v != %v", i, j, p, want.Pins[j])
			}
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# comment\n\nnetlist x 4 4 2\n# another\nnet a 0 0 3 3\n"
	nl, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Nets) != 1 || nl.Nets[0].Name != "a" {
		t.Errorf("parsed %+v", nl)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"netlist x 4 4\nnet a 0 0 1 1\n",   // short header
		"netlist x 4 4 2\nnet a 0 0 1\n",   // odd coordinate count
		"netlist x 4 4 2\nbogus\n",         // unknown directive
		"netlist x 4 4 2\nnet a 0 0 9 9\n", // pin out of grid (validation)
		"netlist x 4 4 2\nnet a z 0 1 1\n", // non-numeric coordinate
		"netlist x 4 4 2\nnet a 0 0\n",     // single pin
	}
	for i, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: Read accepted malformed input", i)
		}
	}
}

func TestSortNetsByHPWL(t *testing.T) {
	nl := &Netlist{
		Name: "s", W: 20, H: 20, NumLayers: 2,
		Nets: []*Net{
			{ID: 0, Name: "long", Pins: []geom.Pt{geom.XY(0, 0), geom.XY(15, 15)}},
			{ID: 1, Name: "short", Pins: []geom.Pt{geom.XY(3, 3), geom.XY(4, 3)}},
			{ID: 2, Name: "mid", Pins: []geom.Pt{geom.XY(0, 0), geom.XY(5, 5)}},
		},
	}
	nl.SortNetsByHPWL()
	names := []string{nl.Nets[0].Name, nl.Nets[1].Name, nl.Nets[2].Name}
	if names[0] != "short" || names[1] != "mid" || names[2] != "long" {
		t.Errorf("order = %v", names)
	}
	for i, n := range nl.Nets {
		if n.ID != i {
			t.Errorf("net %q has stale ID %d", n.Name, n.ID)
		}
	}
	if err := nl.Validate(); err != nil {
		t.Errorf("sorted netlist invalid: %v", err)
	}
}
