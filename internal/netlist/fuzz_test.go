package netlist

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead hammers the parser with arbitrary bytes. The parser is a
// trust boundary — the sadprouted service feeds it user-supplied
// request bodies — so the contract is strict: it must never panic,
// every accepted netlist must satisfy Validate (the router relies on
// that), and accepted netlists must survive a Write/Read round trip
// unchanged in shape.
func FuzzRead(f *testing.F) {
	seeds := []string{
		"",
		"netlist t 8 8 2\nnet a 1 1 5 1\nnet b 2 3 2 6\n",
		"# comment\n\nnetlist t 4 4 2\nnet a 0 0 3 3\n",
		"netlist t 8 8 2\nnet a 1 1\n",                      // one pin: invalid
		"netlist t 8 8 2\nnet a 1 1 9 9\n",                  // pin out of grid
		"netlist t 0 0 2\nnet a 0 0 0 0\n",                  // zero grid
		"netlist t 8 8 1\nnet a 1 1 2 2\n",                  // too few layers
		"net a 1 1 2 2\n",                                   // net before header
		"netlist t 8 8 2\nnet a 1 1 2\n",                    // odd coordinate count
		"netlist t 8 8 2\nnet a x y 2 2\n",                  // non-numeric pins
		"netlist t -3 8 2\nnet a 1 1 2 2\n",                 // negative dims
		"bogus directive\n",                                 // unknown directive
		"netlist t 99999999999999999999 8 2\n",              // integer overflow
		"netlist t 8 8 2\nnet a 1 1 1 1\n",                  // duplicate pins only
		"netlist t 8 8 2\r\nnet a 1 1 5 1\r\n",              // CRLF
		"netlist t 8 8 2\nnet é 1 1 5 1\n",                  // non-ASCII name
		"netlist a 8 8 2\nnetlist b 6 6 2\nnet a 1 1 2 2\n", // repeated header
		// k-pin nets: the extended multi-pin format is the same line
		// grammar with more coordinate pairs.
		"netlist t 12 12 2\nnet a 1 1 5 1 3 4\n",                               // 3-pin
		"netlist t 12 12 2\nnet a 0 0 11 0 0 11 11 11 5 6\n",                   // 5-pin
		"netlist t 16 16 3\nnet a 1 1 9 2 4 7 12 12 2 9 14 3\nnet b 0 5 8 8\n", // 6-pin + 2-pin
		"netlist t 12 12 2\nnet a 1 1 5 1 1 1\n",                               // duplicate among k pins
		"netlist t 12 12 2\nnet a 1 1 5 1 5 12\n",                              // k-pin with one pin out of grid
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		nl, err := Read(strings.NewReader(s))
		if err != nil {
			return // rejecting malformed input is the correct outcome
		}
		if err := nl.Validate(); err != nil {
			t.Fatalf("Read accepted a netlist that fails Validate: %v\ninput: %q", err, s)
		}
		for _, n := range nl.Nets {
			if len(n.Pins) < 2 {
				t.Fatalf("accepted net %q with %d pins\ninput: %q", n.Name, len(n.Pins), s)
			}
			seen := map[[2]int]bool{}
			for _, p := range n.Pins {
				k := [2]int{p.X, p.Y}
				if seen[k] {
					t.Fatalf("accepted net %q with duplicate pin %v\ninput: %q", n.Name, p, s)
				}
				seen[k] = true
			}
		}
		var buf bytes.Buffer
		if err := nl.Write(&buf); err != nil {
			t.Fatalf("Write of accepted netlist: %v", err)
		}
		nl2, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v\nserialized: %q", err, buf.String())
		}
		if nl2.Name != nl.Name || nl2.W != nl.W || nl2.H != nl.H || nl2.NumLayers != nl.NumLayers || len(nl2.Nets) != len(nl.Nets) {
			t.Fatalf("round trip changed shape: %s %dx%dx%d/%d nets vs %s %dx%dx%d/%d nets",
				nl.Name, nl.W, nl.H, nl.NumLayers, len(nl.Nets),
				nl2.Name, nl2.W, nl2.H, nl2.NumLayers, len(nl2.Nets))
		}
		if nl.NumPins() != nl2.NumPins() || nl.TotalHPWL() != nl2.TotalHPWL() {
			t.Fatalf("round trip changed pins: %d/%d pins, HPWL %d/%d",
				nl.NumPins(), nl2.NumPins(), nl.TotalHPWL(), nl2.TotalHPWL())
		}
	})
}
