package netlist

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// Random valid netlists survive a Write/Read round trip unchanged.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 8+rng.Intn(40), 8+rng.Intn(40)
		nl := &Netlist{Name: "rt", W: w, H: h, NumLayers: 2 + rng.Intn(3)}
		used := map[geom.Pt]bool{}
		nets := 1 + rng.Intn(12)
		for i := 0; i < nets; i++ {
			n := &Net{ID: i, Name: "n" + string(rune('a'+i%26)) + "x"}
			for len(n.Pins) < 2+rng.Intn(3) {
				p := geom.XY(rng.Intn(w), rng.Intn(h))
				if !used[p] {
					used[p] = true
					n.Pins = append(n.Pins, p)
				}
			}
			nl.Nets = append(nl.Nets, n)
		}
		if nl.Validate() != nil {
			return false
		}
		var buf bytes.Buffer
		if nl.Write(&buf) != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.W != nl.W || got.H != nl.H || got.NumLayers != nl.NumLayers || len(got.Nets) != len(nl.Nets) {
			return false
		}
		for i, n := range got.Nets {
			if len(n.Pins) != len(nl.Nets[i].Pins) {
				return false
			}
			for j, p := range n.Pins {
				if p != nl.Nets[i].Pins[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// HPWL is invariant under pin order permutations and never exceeds the
// exact route length lower bound relationships.
func TestHPWLPermutationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := &Net{Pins: make([]geom.Pt, 2+rng.Intn(5))}
		for i := range n.Pins {
			n.Pins[i] = geom.XY(rng.Intn(50), rng.Intn(50))
		}
		want := n.HPWL()
		for k := 0; k < 5; k++ {
			rng.Shuffle(len(n.Pins), func(i, j int) {
				n.Pins[i], n.Pins[j] = n.Pins[j], n.Pins[i]
			})
			if n.HPWL() != want {
				return false
			}
		}
		// HPWL of a 2-pin net equals Manhattan distance.
		if len(n.Pins) == 2 && want != n.Pins[0].ManhattanDist(n.Pins[1]) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
