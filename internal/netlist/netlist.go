// Package netlist defines placed netlists on a multi-layer routing
// grid: the input of the detailed router (paper §II-A).
//
// The benchmark circuits of the paper (from PARR [18]) use three metal
// layers: metal 1 carries pins and is not allowed for routing, metal 2
// routes horizontally and metal 3 vertically. We model pins as grid
// locations on the lowest routing layer (metal 2), reached from metal 1
// through fixed pin vias that do not participate in routing or DVI.
package netlist

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/geom"
)

// Typed degenerate-net errors. Validate (and therefore Read) wraps
// them with the net's name, so callers can branch with errors.Is while
// messages stay self-describing.
var (
	// ErrTooFewPins reports a net with fewer than two pins: a 0- or
	// 1-pin net has nothing to route and would silently verify as
	// trivially connected.
	ErrTooFewPins = errors.New("net has fewer than two pins")
	// ErrDuplicatePin reports a net listing the same pin location more
	// than once. Duplicates are always authoring mistakes (a pin is a
	// placed terminal; two terminals cannot share a cell), and every
	// downstream dedup would mask the mistake, so the boundary rejects
	// them.
	ErrDuplicatePin = errors.New("net lists the same pin twice")
)

// Net is a single net: a set of pin locations to be connected.
type Net struct {
	// ID is the net's index within its netlist.
	ID int
	// Name is a human-readable identifier.
	Name string
	// Pins are the pin locations on the lowest routing layer. A legal
	// net has at least two pins, all distinct (any k ≥ 2 is allowed;
	// multi-pin nets are decomposed by the router's topology
	// generator).
	Pins []geom.Pt
}

// BBox returns the bounding box of the net's pins.
func (n *Net) BBox() geom.Rect { return geom.BoundingRect(n.Pins) }

// HPWL returns the half-perimeter wirelength lower bound of the net.
func (n *Net) HPWL() int {
	b := n.BBox()
	return (b.Width() - 1) + (b.Height() - 1)
}

// Netlist is a placed netlist on a W×H routing grid with NumLayers
// routing layers.
type Netlist struct {
	// Name identifies the circuit (e.g. "ecc").
	Name string
	// W, H are the routing grid dimensions in tracks.
	W, H int
	// NumLayers is the number of routing layers; layer 0 is metal 2
	// (horizontal preferred), layer 1 is metal 3 (vertical preferred),
	// and so on with alternating preferred directions.
	NumLayers int
	// Nets holds the nets; Nets[i].ID == i.
	Nets []*Net
}

// Validate checks structural sanity: positive dimensions, at least two
// routing layers, every pin in bounds, every net with at least two
// pins and no duplicate pins (ErrTooFewPins / ErrDuplicatePin), and
// consistent net IDs.
func (nl *Netlist) Validate() error {
	if nl.W <= 0 || nl.H <= 0 {
		return fmt.Errorf("netlist %s: invalid grid %dx%d", nl.Name, nl.W, nl.H)
	}
	if nl.NumLayers < 2 {
		return fmt.Errorf("netlist %s: need >=2 routing layers, have %d", nl.Name, nl.NumLayers)
	}
	for i, n := range nl.Nets {
		if n.ID != i {
			return fmt.Errorf("netlist %s: net %q has ID %d at index %d", nl.Name, n.Name, n.ID, i)
		}
		seen := map[geom.Pt]bool{}
		for _, p := range n.Pins {
			if p.X < 0 || p.X >= nl.W || p.Y < 0 || p.Y >= nl.H {
				return fmt.Errorf("netlist %s: net %q pin %v out of grid", nl.Name, n.Name, p)
			}
			if seen[p] {
				return fmt.Errorf("netlist %s: net %q pin %v: %w", nl.Name, n.Name, p, ErrDuplicatePin)
			}
			seen[p] = true
		}
		if len(n.Pins) < 2 {
			return fmt.Errorf("netlist %s: net %q has %d pins: %w", nl.Name, n.Name, len(n.Pins), ErrTooFewPins)
		}
	}
	return nil
}

// NumPins returns the total pin count over all nets.
func (nl *Netlist) NumPins() int {
	n := 0
	for _, net := range nl.Nets {
		n += len(net.Pins)
	}
	return n
}

// TotalHPWL returns the sum of per-net half-perimeter wirelength lower
// bounds.
func (nl *Netlist) TotalHPWL() int {
	n := 0
	for _, net := range nl.Nets {
		n += net.HPWL()
	}
	return n
}

// Write serializes the netlist in the package's plain-text format:
//
//	netlist <name> <W> <H> <layers>
//	net <name> <x1> <y1> <x2> <y2> ...
func (nl *Netlist) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "netlist %s %d %d %d\n", nl.Name, nl.W, nl.H, nl.NumLayers)
	for _, n := range nl.Nets {
		fmt.Fprintf(bw, "net %s", n.Name)
		for _, p := range n.Pins {
			fmt.Fprintf(bw, " %d %d", p.X, p.Y)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Read parses a netlist in the format produced by Write and validates
// it.
func Read(r io.Reader) (*Netlist, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	nl := &Netlist{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "netlist":
			if len(fields) != 5 {
				return nil, fmt.Errorf("line %d: netlist header needs 4 fields", lineNo)
			}
			nl.Name = fields[1]
			if _, err := fmt.Sscanf(strings.Join(fields[2:], " "), "%d %d %d", &nl.W, &nl.H, &nl.NumLayers); err != nil {
				return nil, fmt.Errorf("line %d: bad netlist header: %v", lineNo, err)
			}
		case "net":
			if len(fields) < 2 || len(fields)%2 != 0 {
				return nil, fmt.Errorf("line %d: net line needs name plus coordinate pairs", lineNo)
			}
			n := &Net{ID: len(nl.Nets), Name: fields[1]}
			for i := 2; i < len(fields); i += 2 {
				var p geom.Pt
				if _, err := fmt.Sscanf(fields[i]+" "+fields[i+1], "%d %d", &p.X, &p.Y); err != nil {
					return nil, fmt.Errorf("line %d: bad pin: %v", lineNo, err)
				}
				n.Pins = append(n.Pins, p)
			}
			nl.Nets = append(nl.Nets, n)
		default:
			return nil, fmt.Errorf("line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return nl, nil
}

// SortNetsByHPWL orders nets by ascending wirelength lower bound with
// net name as a deterministic tiebreak, renumbering IDs. Routing short
// nets first is the usual sequential-routing heuristic.
func (nl *Netlist) SortNetsByHPWL() {
	sort.SliceStable(nl.Nets, func(i, j int) bool {
		hi, hj := nl.Nets[i].HPWL(), nl.Nets[j].HPWL()
		if hi != hj {
			return hi < hj
		}
		return nl.Nets[i].Name < nl.Nets[j].Name
	})
	for i, n := range nl.Nets {
		n.ID = i
	}
}
