package ilp

import (
	"math/rand"
	"testing"
	"time"
)

func TestTrivialUnconstrained(t *testing.T) {
	m := NewModel()
	a := m.AddVar(3)
	b := m.AddVar(-2)
	r := Solve(m, Options{})
	if r.Status != Optimal {
		t.Fatalf("status %v", r.Status)
	}
	if r.Objective != 3 || r.X[a] != 1 || r.X[b] != 0 {
		t.Errorf("got obj %d x=%v", r.Objective, r.X)
	}
	if r.Components != 2 {
		t.Errorf("Components = %d, want 2", r.Components)
	}
}

func TestSimplePacking(t *testing.T) {
	// max x+y+z s.t. x+y <= 1, y+z <= 1 → optimum 2 (x=z=1).
	m := NewModel()
	x := m.AddVar(1)
	y := m.AddVar(1)
	z := m.AddVar(1)
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, Leq, 1)
	m.AddConstraint([]Term{{y, 1}, {z, 1}}, Leq, 1)
	r := Solve(m, Options{})
	if r.Status != Optimal || r.Objective != 2 {
		t.Fatalf("status %v obj %d", r.Status, r.Objective)
	}
	if r.X[x] != 1 || r.X[y] != 0 || r.X[z] != 1 {
		t.Errorf("x=%v", r.X)
	}
	if err := m.Verify(r.X); err != nil {
		t.Error(err)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// max -x-y-z s.t. x+y+z = 1 → exactly one var set, obj -1.
	m := NewModel()
	vars := []int{m.AddVar(-1), m.AddVar(-1), m.AddVar(-1)}
	terms := make([]Term, len(vars))
	for i, v := range vars {
		terms[i] = Term{v, 1}
	}
	m.AddConstraint(terms, Eq, 1)
	r := Solve(m, Options{})
	if r.Status != Optimal || r.Objective != -1 {
		t.Fatalf("status %v obj %d", r.Status, r.Objective)
	}
	sum := int8(0)
	for _, v := range vars {
		sum += r.X[v]
	}
	if sum != 1 {
		t.Errorf("equality violated: %v", r.X)
	}
}

func TestGeqConstraint(t *testing.T) {
	// max -x-y s.t. x+y >= 1 → obj -1.
	m := NewModel()
	x := m.AddVar(-1)
	y := m.AddVar(-1)
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, Geq, 1)
	r := Solve(m, Options{})
	if r.Status != Optimal || r.Objective != -1 {
		t.Fatalf("status %v obj %d x=%v", r.Status, r.Objective, r.X)
	}
}

func TestInfeasible(t *testing.T) {
	// x >= 1 and x <= 0.
	m := NewModel()
	x := m.AddVar(1)
	m.AddConstraint([]Term{{x, 1}}, Geq, 1)
	m.AddConstraint([]Term{{x, 1}}, Leq, 0)
	r := Solve(m, Options{})
	if r.Status != Infeasible {
		t.Fatalf("status %v", r.Status)
	}
}

func TestInfeasibleMultiVar(t *testing.T) {
	// x+y >= 2, x+y <= 1.
	m := NewModel()
	x := m.AddVar(0)
	y := m.AddVar(0)
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, Geq, 2)
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, Leq, 1)
	if r := Solve(m, Options{}); r.Status != Infeasible {
		t.Fatalf("status %v", r.Status)
	}
}

func TestBigMConditional(t *testing.T) {
	// The C4-style conditional of the paper: colors sum to 1 iff D=1.
	// max D; oD+gD+bD - B(D-1) >= 1 and oD+gD+bD + B(D-1) <= 1.
	const B = 1000
	m := NewModel()
	D := m.AddVar(1)
	oD := m.AddVar(0)
	gD := m.AddVar(0)
	bD := m.AddVar(0)
	m.AddConstraint([]Term{{oD, 1}, {gD, 1}, {bD, 1}, {D, -B}}, Geq, 1-B)
	m.AddConstraint([]Term{{oD, 1}, {gD, 1}, {bD, 1}, {D, B}}, Leq, 1+B)
	r := Solve(m, Options{})
	if r.Status != Optimal || r.Objective != 1 {
		t.Fatalf("status %v obj %d", r.Status, r.Objective)
	}
	if r.X[D] != 1 {
		t.Fatal("D not set")
	}
	if r.X[oD]+r.X[gD]+r.X[bD] != 1 {
		t.Errorf("conditional not enforced: %v", r.X)
	}
}

func TestNegativeCoefficients(t *testing.T) {
	// max x s.t. x - y <= 0 → x can be 1 only with y=1; y free.
	m := NewModel()
	x := m.AddVar(5)
	y := m.AddVar(-1)
	m.AddConstraint([]Term{{x, 1}, {y, -1}}, Leq, 0)
	r := Solve(m, Options{})
	if r.Status != Optimal || r.Objective != 4 {
		t.Fatalf("obj %d status %v x=%v", r.Objective, r.Status, r.X)
	}
}

func TestDuplicateTermsMerged(t *testing.T) {
	// x + x <= 1 means 2x <= 1 → x = 0.
	m := NewModel()
	x := m.AddVar(1)
	m.AddConstraint([]Term{{x, 1}, {x, 1}}, Leq, 1)
	r := Solve(m, Options{})
	if r.Status != Optimal || r.X[x] != 0 {
		t.Fatalf("merged duplicate terms handled wrong: %v %v", r.Status, r.X)
	}
}

func TestAddConstraintUnknownVarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown var accepted")
		}
	}()
	NewModel().AddConstraint([]Term{{0, 1}}, Leq, 1)
}

func TestVerify(t *testing.T) {
	m := NewModel()
	x := m.AddVar(1)
	y := m.AddVar(1)
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, Leq, 1)
	if err := m.Verify([]int8{1, 1}); err == nil {
		t.Error("violated assignment accepted")
	}
	if err := m.Verify([]int8{1}); err == nil {
		t.Error("short assignment accepted")
	}
	if err := m.Verify([]int8{2, 0}); err == nil {
		t.Error("non-binary value accepted")
	}
	if err := m.Verify([]int8{1, 0}); err != nil {
		t.Errorf("feasible assignment rejected: %v", err)
	}
	if m.ObjectiveOf([]int8{1, 0}) != 1 {
		t.Error("ObjectiveOf wrong")
	}
}

// bruteForce enumerates all 2^n assignments.
func bruteForce(m *Model) (bestObj int64, feasible bool) {
	n := m.NumVars()
	x := make([]int8, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			x[i] = int8(mask >> i & 1)
		}
		if m.Verify(x) != nil {
			continue
		}
		obj := m.ObjectiveOf(x)
		if !feasible || obj > bestObj {
			feasible = true
			bestObj = obj
		}
	}
	return bestObj, feasible
}

// Randomized cross-validation against exhaustive enumeration.
func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		m := NewModel()
		n := 2 + rng.Intn(9) // up to 10 vars
		for i := 0; i < n; i++ {
			m.AddVar(int64(rng.Intn(11) - 3))
		}
		nc := rng.Intn(8)
		for c := 0; c < nc; c++ {
			var terms []Term
			for v := 0; v < n; v++ {
				if rng.Intn(3) == 0 {
					terms = append(terms, Term{v, int64(rng.Intn(5) - 2)})
				}
			}
			if len(terms) == 0 {
				continue
			}
			sense := Sense(rng.Intn(3))
			rhs := int64(rng.Intn(5) - 1)
			m.AddConstraint(terms, sense, rhs)
		}
		want, feasible := bruteForce(m)
		r := Solve(m, Options{})
		if !feasible {
			if r.Status != Infeasible {
				t.Fatalf("trial %d: want infeasible, got %v obj %d", trial, r.Status, r.Objective)
			}
			continue
		}
		if r.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, r.Status)
		}
		if r.Objective != want {
			t.Fatalf("trial %d: objective %d, brute force %d", trial, r.Objective, want)
		}
		if err := m.Verify(r.X); err != nil {
			t.Fatalf("trial %d: infeasible optimum: %v", trial, err)
		}
		if m.ObjectiveOf(r.X) != r.Objective {
			t.Fatalf("trial %d: reported objective mismatch", trial)
		}
	}
}

// Maximum independent set on a path of k vertices has size ceil(k/2).
func TestIndependentSetPath(t *testing.T) {
	for k := 1; k <= 12; k++ {
		m := NewModel()
		vars := make([]int, k)
		for i := range vars {
			vars[i] = m.AddVar(1)
		}
		for i := 1; i < k; i++ {
			m.AddConstraint([]Term{{vars[i-1], 1}, {vars[i], 1}}, Leq, 1)
		}
		r := Solve(m, Options{})
		want := int64((k + 1) / 2)
		if r.Status != Optimal || r.Objective != want {
			t.Errorf("path %d: obj %d want %d (status %v)", k, r.Objective, want, r.Status)
		}
	}
}

func TestComponentDecomposition(t *testing.T) {
	// Two independent triangles; each contributes 1 to a max
	// independent set.
	m := NewModel()
	mk := func() {
		a, b, c := m.AddVar(1), m.AddVar(1), m.AddVar(1)
		m.AddConstraint([]Term{{a, 1}, {b, 1}}, Leq, 1)
		m.AddConstraint([]Term{{b, 1}, {c, 1}}, Leq, 1)
		m.AddConstraint([]Term{{a, 1}, {c, 1}}, Leq, 1)
	}
	mk()
	mk()
	r := Solve(m, Options{})
	if r.Status != Optimal || r.Objective != 2 {
		t.Fatalf("obj %d status %v", r.Objective, r.Status)
	}
	if r.Components != 2 {
		t.Errorf("Components = %d, want 2", r.Components)
	}
}

func TestNodeLimit(t *testing.T) {
	// A 3-coloring-like instance large enough to exceed one node.
	m := NewModel()
	n := 30
	vars := make([]int, n)
	for i := range vars {
		vars[i] = m.AddVar(1)
	}
	for i := 1; i < n; i++ {
		m.AddConstraint([]Term{{vars[i-1], 1}, {vars[i], 1}}, Leq, 1)
	}
	r := Solve(m, Options{NodeLimit: 3})
	if r.Status == Optimal {
		// Fine if it proved optimality within the limit, but with 3
		// nodes on 30 vars it must not claim an incumbent it lacks.
		if err := m.Verify(r.X); err != nil {
			t.Fatalf("claimed optimal with invalid X: %v", err)
		}
	}
	if r.Status == Feasible {
		if err := m.Verify(r.X); err != nil {
			t.Fatalf("feasible status with invalid X: %v", err)
		}
	}
}

func TestTimeLimitRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewModel()
	n := 60
	vars := make([]int, n)
	for i := range vars {
		vars[i] = m.AddVar(int64(1 + rng.Intn(3)))
	}
	for c := 0; c < 260; c++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			m.AddConstraint([]Term{{vars[a], 1}, {vars[b], 1}}, Leq, 1)
		}
	}
	start := time.Now()
	Solve(m, Options{TimeLimit: 50 * time.Millisecond})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("time limit ignored: took %v", elapsed)
	}
}

func TestStringers(t *testing.T) {
	if Leq.String() != "<=" || Geq.String() != ">=" || Eq.String() != "==" {
		t.Error("Sense strings wrong")
	}
	for _, s := range []Status{Optimal, Feasible, Infeasible, Unknown} {
		if s.String() == "" {
			t.Error("empty status string")
		}
	}
	if Sense(9).String() == "" || Status(9).String() == "" {
		t.Error("out-of-range stringers empty")
	}
}

func BenchmarkSolveIndependentSet(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	m := NewModel()
	n := 200
	vars := make([]int, n)
	for i := range vars {
		vars[i] = m.AddVar(1)
	}
	for c := 0; c < 300; c++ {
		x, y := rng.Intn(n), rng.Intn(n)
		if x != y {
			m.AddConstraint([]Term{{vars[x], 1}, {vars[y], 1}}, Leq, 1)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := Solve(m, Options{TimeLimit: 2 * time.Second})
		if r.Status == Unknown || r.Status == Infeasible {
			b.Fatalf("status %v", r.Status)
		}
	}
}
