package ilp

import (
	"sort"
	"time"
)

// Solve maximizes the model's objective by branch and bound over the
// connected components of the variable/constraint incidence graph.
func Solve(m *Model, opts Options) Result {
	n := len(m.obj)
	res := Result{Status: Optimal, X: make([]int8, n)}
	// Constraints whose terms cancelled to nothing are constant: they
	// are either trivially true or make the whole model infeasible, and
	// they belong to no component.
	for _, c := range m.cons {
		if len(c.terms) == 0 && c.rhs < 0 {
			return Result{Status: Infeasible}
		}
	}
	var deadline time.Time
	if opts.TimeLimit > 0 {
		deadline = time.Now().Add(opts.TimeLimit)
	}

	warm := opts.WarmStart
	if warm != nil && m.Verify(warm) != nil {
		warm = nil
	}
	comps := m.components()
	res.Components = len(comps)
	for _, comp := range comps {
		sub := newSubproblem(m, comp)
		if warm != nil {
			sub.seedIncumbent(m, comp, warm)
		}
		cr := sub.solve(opts.NodeLimit, deadline)
		res.Nodes += cr.nodes
		switch cr.status {
		case Infeasible:
			return Result{Status: Infeasible, Nodes: res.Nodes, Components: res.Components}
		case Unknown:
			return Result{Status: Unknown, Nodes: res.Nodes, Components: res.Components}
		case Feasible:
			res.Status = Feasible
		}
		for i, v := range comp.vars {
			res.X[v] = cr.best[i]
		}
		res.Objective += cr.objective
	}
	return res
}

// component is a set of variables and the constraints touching them.
type component struct {
	vars []int
	cons []int
}

// components partitions variables into connected components: two
// variables are connected when they share a constraint. Isolated
// variables form singleton components.
func (m *Model) components() []component {
	n := len(m.obj)
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, c := range m.cons {
		for i := 1; i < len(c.terms); i++ {
			union(int32(c.terms[0].Var), int32(c.terms[i].Var))
		}
	}
	byRoot := map[int32]*component{}
	var order []int32
	for v := 0; v < n; v++ {
		r := find(int32(v))
		cp := byRoot[r]
		if cp == nil {
			cp = &component{}
			byRoot[r] = cp
			order = append(order, r)
		}
		cp.vars = append(cp.vars, v)
	}
	for ci, c := range m.cons {
		if len(c.terms) == 0 {
			continue
		}
		r := find(int32(c.terms[0].Var))
		byRoot[r].cons = append(byRoot[r].cons, ci)
	}
	out := make([]component, 0, len(order))
	for _, r := range order {
		out = append(out, *byRoot[r])
	}
	return out
}

// subproblem is one component re-indexed to local variables.
type subproblem struct {
	obj  []int64
	cons []localCons
	// varCons[v] lists constraint indices containing local var v.
	varCons [][]int32
	// packOf[v] is the packing constraint used to bound var v's
	// objective contribution, or -1.
	packOf []int32

	// search state
	assign        []int8
	sum           []int64 // per-constraint Σ coef·val over assigned vars
	minRem        []int64 // per-constraint Σ min(0, coef) over unassigned vars
	unassignedPos []int64 // per-constraint count of unassigned vars (for packing bound)

	trail []trailEntry
	nodes int64

	best    []int8
	bestObj int64
	hasBest bool
}

type localCons struct {
	vars    []int32
	coefs   []int64
	rhs     int64
	packing bool // all coefs 1 and rhs >= 0
}

type trailEntry struct {
	v int32
}

func newSubproblem(m *Model, comp component) *subproblem {
	local := make(map[int]int32, len(comp.vars))
	for i, v := range comp.vars {
		local[v] = int32(i)
	}
	s := &subproblem{
		obj:     make([]int64, len(comp.vars)),
		varCons: make([][]int32, len(comp.vars)),
		packOf:  make([]int32, len(comp.vars)),
		assign:  make([]int8, len(comp.vars)),
	}
	for i, v := range comp.vars {
		s.obj[i] = m.obj[v]
		s.packOf[i] = -1
		s.assign[i] = -1
	}
	for _, ci := range comp.cons {
		c := m.cons[ci]
		lc := localCons{rhs: c.rhs, packing: c.rhs >= 0}
		for _, t := range c.terms {
			lv := local[t.Var]
			lc.vars = append(lc.vars, lv)
			lc.coefs = append(lc.coefs, t.Coef)
			if t.Coef != 1 {
				lc.packing = false
			}
		}
		idx := int32(len(s.cons))
		s.cons = append(s.cons, lc)
		for _, lv := range lc.vars {
			s.varCons[lv] = append(s.varCons[lv], idx)
		}
	}
	// Assign each positive-objective variable to one packing
	// constraint for the bound.
	for ci, c := range s.cons {
		if !c.packing {
			continue
		}
		for _, lv := range c.vars {
			if s.obj[lv] > 0 && s.packOf[lv] == -1 {
				s.packOf[lv] = int32(ci)
			}
		}
	}
	s.sum = make([]int64, len(s.cons))
	s.minRem = make([]int64, len(s.cons))
	for ci, c := range s.cons {
		for _, coef := range c.coefs {
			if coef < 0 {
				s.minRem[ci] += coef
			}
		}
	}
	return s
}

// seedIncumbent installs a verified global assignment as this
// component's starting incumbent.
func (s *subproblem) seedIncumbent(m *Model, comp component, warm []int8) {
	s.best = make([]int8, len(comp.vars))
	s.bestObj = 0
	for i, v := range comp.vars {
		s.best[i] = warm[v]
		s.bestObj += m.obj[v] * int64(warm[v])
	}
	s.hasBest = true
}

type componentResult struct {
	status    Status
	best      []int8
	objective int64
	nodes     int64
}

func (s *subproblem) solve(nodeLimit int64, deadline time.Time) componentResult {
	// Root propagation catches constraints that force variables
	// outright (e.g. x <= 0).
	if !s.propagateAll() {
		return componentResult{status: Infeasible, nodes: s.nodes}
	}
	limited := s.search(nodeLimit, deadline)
	switch {
	case !s.hasBest && limited:
		return componentResult{status: Unknown, nodes: s.nodes}
	case !s.hasBest:
		return componentResult{status: Infeasible, nodes: s.nodes}
	case limited:
		return componentResult{status: Feasible, best: s.best, objective: s.bestObj, nodes: s.nodes}
	}
	return componentResult{status: Optimal, best: s.best, objective: s.bestObj, nodes: s.nodes}
}

// set assigns var v to val, updating constraint sums. It returns false
// if some constraint becomes unsatisfiable.
func (s *subproblem) set(v int32, val int8) bool {
	s.assign[v] = val
	s.trail = append(s.trail, trailEntry{v: v})
	ok := true
	for _, ci := range s.varCons[v] {
		c := &s.cons[ci]
		coef := s.coefOf(ci, v)
		s.sum[ci] += coef * int64(val)
		if coef < 0 {
			s.minRem[ci] -= coef
		}
		if s.sum[ci]+s.minRem[ci] > c.rhs {
			ok = false
		}
	}
	return ok
}

func (s *subproblem) coefOf(ci int32, v int32) int64 {
	c := &s.cons[ci]
	for i, cv := range c.vars {
		if cv == v {
			return c.coefs[i]
		}
	}
	panic("ilp: coefOf on var not in constraint")
}

// undoTo rolls the trail back to length mark.
func (s *subproblem) undoTo(mark int) {
	for len(s.trail) > mark {
		e := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		val := s.assign[e.v]
		for _, ci := range s.varCons[e.v] {
			coef := s.coefOf(ci, e.v)
			s.sum[ci] -= coef * int64(val)
			if coef < 0 {
				s.minRem[ci] += coef
			}
		}
		s.assign[e.v] = -1
	}
}

// propagateAll runs unit propagation to a fixpoint over all
// constraints. Returns false on conflict; assignments stay on the
// trail for the caller to undo.
func (s *subproblem) propagateAll() bool {
	for changed := true; changed; {
		changed = false
		for ci := range s.cons {
			st := s.propagateCons(int32(ci))
			if st < 0 {
				return false
			}
			if st > 0 {
				changed = true
			}
		}
	}
	return true
}

// propagateCons forces variables in constraint ci whose value is
// implied. Returns -1 on conflict, 1 if something was assigned, else 0.
func (s *subproblem) propagateCons(ci int32) int {
	c := &s.cons[ci]
	if s.sum[ci]+s.minRem[ci] > c.rhs {
		return -1
	}
	assigned := 0
	for i, v := range c.vars {
		if s.assign[v] != -1 {
			continue
		}
		coef := c.coefs[i]
		// Minimum achievable total if v takes each value, with every
		// other unassigned var at its minimum contribution.
		base := s.sum[ci] + s.minRem[ci]
		if coef < 0 {
			base -= coef // remove v's min contribution
		}
		canZero := base <= c.rhs
		canOne := base+coef <= c.rhs
		switch {
		case !canZero && !canOne:
			return -1
		case !canOne:
			if !s.set(v, 0) {
				return -1
			}
			assigned = 1
		case !canZero:
			if !s.set(v, 1) {
				return -1
			}
			assigned = 1
		}
	}
	return assigned
}

// bound returns an upper bound on the objective achievable from the
// current partial assignment: the assigned contribution plus, for
// unassigned positive-objective variables, either their packing-
// constraint slack allowance or their raw coefficient.
func (s *subproblem) bound() int64 {
	var ub int64
	type packAgg struct {
		objs []int64
	}
	packs := map[int32]*packAgg{}
	for v := range s.obj {
		switch s.assign[v] {
		case 1:
			ub += s.obj[v]
		case -1:
			if s.obj[v] <= 0 {
				continue
			}
			if p := s.packOf[v]; p >= 0 {
				agg := packs[p]
				if agg == nil {
					agg = &packAgg{}
					packs[p] = agg
				}
				agg.objs = append(agg.objs, s.obj[v])
			} else {
				ub += s.obj[v]
			}
		}
	}
	for ci, agg := range packs {
		slack := s.cons[ci].rhs - s.sum[ci]
		if slack <= 0 {
			continue
		}
		if int64(len(agg.objs)) <= slack {
			for _, o := range agg.objs {
				ub += o
			}
			continue
		}
		sort.Slice(agg.objs, func(a, b int) bool { return agg.objs[a] > agg.objs[b] })
		for i := int64(0); i < slack; i++ {
			ub += agg.objs[i]
		}
	}
	return ub
}

// search runs DFS branch and bound. It returns true when a limit was
// hit (the incumbent may nevertheless be optimal, but unproven).
func (s *subproblem) search(nodeLimit int64, deadline time.Time) (limited bool) {
	var rec func() bool
	rec = func() bool {
		s.nodes++
		if nodeLimit > 0 && s.nodes > nodeLimit {
			return true
		}
		if !deadline.IsZero() && s.nodes%1024 == 0 && time.Now().After(deadline) {
			return true
		}
		v := s.pickVar()
		if v < 0 {
			// Complete assignment; constraints hold by construction.
			obj := int64(0)
			for i, val := range s.assign {
				obj += s.obj[i] * int64(val)
			}
			if !s.hasBest || obj > s.bestObj {
				s.hasBest = true
				s.bestObj = obj
				s.best = append(s.best[:0], s.assign...)
			}
			return false
		}
		if s.hasBest && s.bound() <= s.bestObj {
			return false // cannot improve
		}
		order := [2]int8{1, 0}
		if s.obj[v] < 0 {
			order = [2]int8{0, 1}
		}
		for _, val := range order {
			mark := len(s.trail)
			if s.set(v, val) && s.propagateAll() {
				if rec() {
					s.undoTo(mark)
					return true
				}
			}
			s.undoTo(mark)
		}
		return false
	}
	return rec()
}

// pickVar selects the next branching variable: the unassigned variable
// with the largest |objective|, tie-broken by constraint degree. -1
// when all variables are assigned.
func (s *subproblem) pickVar() int32 {
	best := int32(-1)
	var bestKey [2]int64
	for v := range s.obj {
		if s.assign[v] != -1 {
			continue
		}
		key := [2]int64{abs64(s.obj[v]), int64(len(s.varCons[v]))}
		if best == -1 || key[0] > bestKey[0] || (key[0] == bestKey[0] && key[1] > bestKey[1]) {
			best = int32(v)
			bestKey = key
		}
	}
	return best
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
