// Package ilp is a self-contained 0-1 integer linear program solver.
//
// It substitutes for the Gurobi 6.5 solver the paper calls to solve the
// TPL-aware double via insertion ILP (§III-E). The solver maximizes a
// linear objective over binary variables subject to linear constraints,
// by branch and bound with constraint propagation. Independent
// subproblems are found by connected-component decomposition of the
// variable/constraint incidence graph and solved separately — the DVI
// instances decompose into many small clusters of mutually-interacting
// vias, which is what makes exact solving tractable without an LP
// relaxation.
//
// The bound combines the trivial objective bound with packing
// constraints (sum of binaries ≤ k), which the DVI formulation is full
// of (C1, C2, C5–C7 after big-M substitution).
package ilp

import (
	"fmt"
	"time"
)

// Sense is the comparison sense of a constraint.
type Sense uint8

const (
	// Leq is Σ aᵢxᵢ ≤ b.
	Leq Sense = iota
	// Geq is Σ aᵢxᵢ ≥ b.
	Geq
	// Eq is Σ aᵢxᵢ = b.
	Eq
)

func (s Sense) String() string {
	switch s {
	case Leq:
		return "<="
	case Geq:
		return ">="
	case Eq:
		return "=="
	}
	return fmt.Sprintf("Sense(%d)", uint8(s))
}

// Term is one coefficient–variable product.
type Term struct {
	Var  int
	Coef int64
}

// Model is a 0-1 ILP: maximize Obj·x subject to the constraints, with
// every variable binary.
type Model struct {
	obj  []int64
	cons []constraint
}

type constraint struct {
	terms []Term
	rhs   int64 // normalized to Σ a x <= rhs
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// AddVar adds a binary variable with the given objective coefficient
// (maximization) and returns its index.
func (m *Model) AddVar(objCoef int64) int {
	m.obj = append(m.obj, objCoef)
	return len(m.obj) - 1
}

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.obj) }

// NumConstraints returns the number of normalized (≤) constraints.
func (m *Model) NumConstraints() int { return len(m.cons) }

// AddConstraint adds Σ terms sense rhs. Equality constraints are
// stored as a pair of inequalities. Terms referencing the same
// variable twice are merged. Out-of-range variable indices panic.
func (m *Model) AddConstraint(terms []Term, sense Sense, rhs int64) {
	merged := make(map[int]int64, len(terms))
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(m.obj) {
			panic(fmt.Sprintf("ilp: constraint references unknown var %d", t.Var))
		}
		merged[t.Var] += t.Coef
	}
	norm := make([]Term, 0, len(merged))
	for v, c := range merged {
		if c != 0 {
			norm = append(norm, Term{Var: v, Coef: c})
		}
	}
	switch sense {
	case Leq:
		m.cons = append(m.cons, constraint{terms: norm, rhs: rhs})
	case Geq:
		neg := make([]Term, len(norm))
		for i, t := range norm {
			neg[i] = Term{Var: t.Var, Coef: -t.Coef}
		}
		m.cons = append(m.cons, constraint{terms: neg, rhs: -rhs})
	case Eq:
		m.AddConstraint(terms, Leq, rhs)
		m.AddConstraint(terms, Geq, rhs)
	default:
		panic(fmt.Sprintf("ilp: bad sense %v", sense))
	}
}

// Status reports the outcome of Solve.
type Status uint8

const (
	// Optimal: the returned assignment is proven optimal.
	Optimal Status = iota
	// Feasible: a feasible assignment was found but optimality was not
	// proven within the limits.
	Feasible
	// Infeasible: the model has no feasible assignment.
	Infeasible
	// Unknown: limits were hit before any feasible assignment was
	// found.
	Unknown
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unknown:
		return "unknown"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Options bound the solve effort.
type Options struct {
	// TimeLimit caps wall-clock time; zero means no limit.
	TimeLimit time.Duration
	// NodeLimit caps branch-and-bound nodes per component; zero means
	// no limit.
	NodeLimit int64
	// WarmStart optionally seeds the search with a known feasible
	// assignment (e.g. from a heuristic): it becomes the initial
	// incumbent of every component, guaranteeing a Feasible result at
	// worst and pruning the search. An infeasible warm start is
	// ignored.
	WarmStart []int8
}

// Result is the outcome of Solve.
type Result struct {
	Status    Status
	Objective int64
	// X is the variable assignment (0/1); valid when Status is Optimal
	// or Feasible.
	X []int8
	// Nodes is the total number of branch-and-bound nodes explored.
	Nodes int64
	// Components is the number of independent subproblems solved.
	Components int
}

// Verify checks that x satisfies every constraint of the model.
func (m *Model) Verify(x []int8) error {
	if len(x) != len(m.obj) {
		return fmt.Errorf("ilp: assignment length %d != %d vars", len(x), len(m.obj))
	}
	for i, v := range x {
		if v != 0 && v != 1 {
			return fmt.Errorf("ilp: var %d non-binary value %d", i, v)
		}
	}
	for ci, c := range m.cons {
		var sum int64
		for _, t := range c.terms {
			sum += t.Coef * int64(x[t.Var])
		}
		if sum > c.rhs {
			return fmt.Errorf("ilp: constraint %d violated: %d > %d", ci, sum, c.rhs)
		}
	}
	return nil
}

// ObjectiveOf returns Obj·x.
func (m *Model) ObjectiveOf(x []int8) int64 {
	var sum int64
	for i, v := range x {
		sum += m.obj[i] * int64(v)
	}
	return sum
}
