// Package viz renders routing grids, routes, masks and via layers as
// ASCII art — the debugging view used while developing the router and
// by the examples. Rendering is deterministic and allocation-light so
// it can run inside tests.
package viz

import (
	"fmt"
	"strings"

	"repro/internal/decompose"
	"repro/internal/grid"
	"repro/internal/tpl"

	"repro/internal/geom"
)

// glyphs used by the layer renderer.
const (
	emptyGlyph    = '.'
	viaGlyph      = 'o'
	overflowGlyph = 'X'
	pinGlyph      = '#'
)

// netGlyph maps a net id to a stable printable rune.
func netGlyph(net int32) rune {
	const alphabet = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	return rune(alphabet[int(net)%len(alphabet)])
}

// Options configure rendering.
type Options struct {
	// Window clips the render; the zero value renders the whole grid.
	Window geom.Rect
	// Pins marks the given layer-0 points with '#'.
	Pins []geom.Pt
}

func (o Options) window(g *grid.Grid) geom.Rect {
	if o.Window == (geom.Rect{}) {
		return g.Bounds()
	}
	return o.Window.Intersect(g.Bounds())
}

// Layer renders one routing layer: each occupied point shows its
// owner's glyph, overflows show 'X', via bases/landings show 'o' when
// unoccupied by wire (rare), pins '#'. Row 0 is printed at the bottom,
// matching layout coordinates.
func Layer(g *grid.Grid, l int, opt Options) string {
	win := opt.window(g)
	pins := map[geom.Pt]bool{}
	if l == 0 {
		for _, p := range opt.Pins {
			pins[p] = true
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "metal %d (%s preferred)\n", l+2, prefName(g, l))
	for y := win.MaxY; y >= win.MinY; y-- {
		for x := win.MinX; x <= win.MaxX; x++ {
			p := geom.XY(x, y)
			var ch rune
			switch nets := g.Metal[l].Nets(p); {
			case g.Metal[l].Overflow(p):
				ch = overflowGlyph
			case len(nets) > 0:
				ch = netGlyph(nets[0])
			case pins[p]:
				ch = pinGlyph
			default:
				ch = emptyGlyph
			}
			b.WriteRune(ch)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func prefName(g *grid.Grid, l int) string {
	if g.PrefHorizontal(l) {
		return "horizontal"
	}
	return "vertical"
}

// ViaLayer renders the via sites of one via layer ('o' for occupied),
// with '*' marking sites that participate in an FVP window.
func ViaLayer(g *grid.Grid, vl int, opt Options) string {
	win := opt.window(g)
	lv := g.Vias[vl]
	inFVP := map[geom.Pt]bool{}
	for _, o := range lv.AllFVPs() {
		for dy := 0; dy < 3; dy++ {
			for dx := 0; dx < 3; dx++ {
				p := o.Add(dx, dy)
				if lv.Has(p) {
					inFVP[p] = true
				}
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "via layer %d (metal %d - metal %d)\n", vl, vl+2, vl+3)
	for y := win.MaxY; y >= win.MinY; y-- {
		for x := win.MinX; x <= win.MaxX; x++ {
			p := geom.XY(x, y)
			switch {
			case inFVP[p]:
				b.WriteByte('*')
			case lv.Has(p):
				b.WriteByte(byte(viaGlyph))
			default:
				b.WriteByte(byte(emptyGlyph))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Coloring renders a TPL coloring of via sites: digits 0..2 for
// colors, '!' for uncolorable, '.' empty.
func Coloring(g *grid.Grid, vl int, graph *tpl.Graph, colors []int8, opt Options) string {
	win := opt.window(g)
	colorAt := map[geom.Pt]int8{}
	for i, p := range graph.Pts {
		colorAt[p] = colors[i]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "via layer %d TPL coloring\n", vl)
	for y := win.MaxY; y >= win.MinY; y-- {
		for x := win.MinX; x <= win.MaxX; x++ {
			p := geom.XY(x, y)
			c, ok := colorAt[p]
			switch {
			case !ok:
				b.WriteByte(byte(emptyGlyph))
			case c == tpl.Uncolored:
				b.WriteByte('!')
			default:
				b.WriteByte(byte('0' + c))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Masks renders one layer's SADP decomposition: 'M' mandrel, 's'
// spacer wire, 'c' cut/trim shape, '.' empty. Overlaps prefer cut.
func Masks(g *grid.Grid, m decompose.Masks, opt Options) string {
	win := opt.window(g)
	kind := map[geom.Pt]byte{}
	mark := func(s decompose.Segment, glyph byte) {
		for a := s.Lo; a <= s.Hi; a++ {
			var p geom.Pt
			if m.Horizontal {
				p = geom.XY(a, s.Track)
			} else {
				p = geom.XY(s.Track, a)
			}
			kind[p] = glyph
		}
	}
	for _, s := range m.Mandrel {
		mark(s, 'M')
	}
	for _, s := range m.SpacerWires {
		mark(s, 's')
	}
	for _, c := range m.CutShapes {
		kind[c] = 'c'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "metal %d SADP masks (M=mandrel, s=spacer wire, c=cut/trim)\n", m.Layer+2)
	for y := win.MaxY; y >= win.MinY; y-- {
		for x := win.MinX; x <= win.MaxX; x++ {
			if g, ok := kind[geom.XY(x, y)]; ok {
				b.WriteByte(g)
			} else {
				b.WriteByte(byte(emptyGlyph))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
