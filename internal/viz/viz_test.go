package viz

import (
	"strings"
	"testing"

	"repro/internal/coloring"
	"repro/internal/decompose"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/tpl"
)

func demoGrid(t *testing.T) (*grid.Grid, []*grid.Route) {
	t.Helper()
	g := grid.New(10, 10, 2, coloring.Scheme{Type: coloring.SIM})
	r := grid.NewRoute(0)
	r.AddPath([]geom.Pt3{
		geom.XYL(1, 1, 0), geom.XYL(2, 1, 0), geom.XYL(3, 1, 0),
		geom.XYL(3, 1, 1), geom.XYL(3, 2, 1),
	})
	g.AddRoute(r)
	return g, []*grid.Route{r}
}

func TestLayerRender(t *testing.T) {
	g, _ := demoGrid(t)
	out := Layer(g, 0, Options{})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 10 rows.
	if len(lines) != 11 {
		t.Fatalf("got %d lines", len(lines))
	}
	// Row y=1 is the second line from the bottom; net 0 renders '0'.
	row := lines[len(lines)-2]
	if !strings.Contains(row, "000") {
		t.Errorf("wire not rendered: %q", row)
	}
	if !strings.Contains(lines[0], "metal 2") || !strings.Contains(lines[0], "horizontal") {
		t.Errorf("header wrong: %q", lines[0])
	}
}

func TestLayerRenderOverflowAndPins(t *testing.T) {
	g, _ := demoGrid(t)
	r2 := grid.NewRoute(1)
	r2.AddPath([]geom.Pt3{geom.XYL(2, 1, 0), geom.XYL(2, 2, 0)})
	g.AddRoute(r2)
	out := Layer(g, 0, Options{Pins: []geom.Pt{geom.XY(8, 8)}})
	if !strings.Contains(out, "X") {
		t.Error("overflow not rendered")
	}
	if !strings.Contains(out, "#") {
		t.Error("pin not rendered")
	}
}

func TestViaLayerRender(t *testing.T) {
	g, _ := demoGrid(t)
	out := ViaLayer(g, 0, Options{})
	if !strings.Contains(out, "o") {
		t.Error("via not rendered")
	}
	// Pack vias into an FVP and check the marker.
	for _, p := range []geom.Pt{geom.XY(6, 6), geom.XY(7, 6), geom.XY(6, 7), geom.XY(7, 7)} {
		g.Vias[0].Add(p)
	}
	out = ViaLayer(g, 0, Options{})
	if !strings.Contains(out, "*") {
		t.Error("FVP membership not rendered")
	}
}

func TestColoringRender(t *testing.T) {
	g, _ := demoGrid(t)
	graph := tpl.FromLayer(g.Vias[0])
	colors, _ := graph.WelshPowell(tpl.NumColors)
	out := Coloring(g, 0, graph, colors, Options{})
	if !strings.ContainsAny(out, "012") {
		t.Errorf("no colors rendered:\n%s", out)
	}
}

func TestMasksRender(t *testing.T) {
	g, routes := demoGrid(t)
	res := decompose.Decompose(g, routes)
	out := Masks(g, res.Layers[0], Options{})
	if !strings.ContainsAny(out, "Ms") {
		t.Errorf("no mask material rendered:\n%s", out)
	}
}

func TestWindowClipping(t *testing.T) {
	g, _ := demoGrid(t)
	out := Layer(g, 0, Options{Window: geom.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 2}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 3 rows
		t.Fatalf("clipped render has %d lines", len(lines))
	}
	if len(lines[1]) != 5 {
		t.Fatalf("clipped row width %d", len(lines[1]))
	}
}

func TestNetGlyphStable(t *testing.T) {
	if netGlyph(0) != '0' || netGlyph(10) != 'a' {
		t.Error("glyph mapping changed")
	}
	if netGlyph(500) == 0 {
		t.Error("large net id has no glyph")
	}
}
