package dvi

import (
	"container/heap"
	"sort"

	"repro/internal/geom"
	"repro/internal/tpl"
)

// HeurParams weight the DVI penalty of Algorithm 3 (Table II: δ = λ =
// μ = 1).
type HeurParams struct {
	Delta, Lambda, Mu int
}

// DefaultHeurParams returns the paper's Table II values.
func DefaultHeurParams() HeurParams { return HeurParams{Delta: 1, Lambda: 1, Mu: 1} }

// SolveHeuristic runs the fast TPL-aware DVI heuristic (Algorithm 3):
// TPL pre-coloring of existing vias, then redundant via insertion in
// ascending DVI-penalty order with lazy priority-queue re-evaluation
// and FVP-based validity checks, then coloring of the inserted vias
// with greedy assignment, un-inserting any uncolorable redundant via.
// Complexity is O(n log n) in the number of feasible DVICs.
func (in *Instance) SolveHeuristic(p HeurParams) *Solution {
	n := len(in.Vias)
	s := &Solution{
		Inserted:  make([]int, n),
		Colors:    make([]int8, n),
		RedColors: make([]int8, n),
	}
	for i := range s.Inserted {
		s.Inserted[i] = -1
		s.RedColors[i] = tpl.Uncolored
	}

	// TPL pre-coloring on existing vias (Welsh–Powell per via layer).
	in.precolor(s)

	h := &heurState{in: in, sol: s, p: p}
	h.build()
	h.run()

	// TPL coloring on inserted redundant vias; un-insert uncolorable
	// ones (final loop of Algorithm 3).
	h.colorInserted()

	s.InsertedCount = 0
	for _, j := range s.Inserted {
		if j >= 0 {
			s.InsertedCount++
		}
	}
	s.DeadVias = n - s.InsertedCount
	s.Uncolorable = 0
	for _, c := range s.Colors {
		if c == tpl.Uncolored {
			s.Uncolorable++
		}
	}
	return s
}

// precolor runs Welsh–Powell on each via layer's existing vias and
// stores the colors.
func (in *Instance) precolor(s *Solution) {
	byLayer := map[int][]int{}
	layers := []int{}
	for i, v := range in.Vias {
		if byLayer[v.Layer()] == nil {
			layers = append(layers, v.Layer())
		}
		byLayer[v.Layer()] = append(byLayer[v.Layer()], i)
	}
	sort.Ints(layers)
	for _, vl := range layers {
		idxs := byLayer[vl]
		pts := make([]geom.Pt, len(idxs))
		for k, i := range idxs {
			pts[k] = in.Vias[i].Pos()
		}
		g := tpl.NewGraph(pts)
		colors, _ := g.WelshPowell(tpl.NumColors)
		for k, i := range idxs {
			s.Colors[i] = colors[k]
		}
	}
}

// cand identifies one feasible DVIC.
type cand struct {
	via int // index into in.Vias
	j   int // index into in.Feas[via]
}

type heapItem struct {
	cand
	dp int // DVI penalty at push time (may be stale)
}

type candHeap []heapItem

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(a, b int) bool {
	if h[a].dp != h[b].dp {
		return h[a].dp < h[b].dp
	}
	if h[a].via != h[b].via {
		return h[a].via < h[b].via
	}
	return h[a].j < h[b].j
}
func (h candHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

type heurState struct {
	in  *Instance
	sol *Solution
	p   HeurParams

	pq candHeap
	// occ[vl] mirrors the via layer occupancy including inserted
	// redundant vias, for FVP checks.
	occ []*tpl.LayerVias
	// bySite[vl][pt] lists candidates at that site (conflicting DVICs
	// share a site).
	bySite []map[geom.Pt][]cand
	// protected[i]: via i already has a redundant via.
	protected []bool
	// candDead[via][j]: candidate invalidated (conflict taken, site
	// occupied, or FVP-blocked at insertion attempt).
	candDead [][]bool
}

func (h *heurState) build() {
	in := h.in
	h.protected = make([]bool, len(in.Vias))
	h.candDead = make([][]bool, len(in.Vias))
	nl := len(in.G.Vias)
	h.occ = make([]*tpl.LayerVias, nl)
	h.bySite = make([]map[geom.Pt][]cand, nl)
	for vl := 0; vl < nl; vl++ {
		w, hh := in.G.Vias[vl].Dims()
		h.occ[vl] = tpl.NewLayerVias(w, hh)
		h.bySite[vl] = map[geom.Pt][]cand{}
	}
	for _, v := range in.Vias {
		h.occ[v.Layer()].Add(v.Pos())
	}
	for i := range in.Vias {
		h.candDead[i] = make([]bool, len(in.Feas[i]))
		for j, c := range in.Feas[i] {
			h.bySite[in.Vias[i].Layer()][c] = append(h.bySite[in.Vias[i].Layer()][c], cand{i, j})
			heap.Push(&h.pq, heapItem{cand{i, j}, 0})
		}
	}
	// Initialize true DPs (setDP of Algorithm 3).
	for k := range h.pq {
		h.pq[k].dp = h.computeDP(h.pq[k].cand)
	}
	heap.Init(&h.pq)
}

// liveFeasCount counts via i's candidates that are still usable.
func (h *heurState) liveFeasCount(i int) int {
	n := 0
	for j := range h.in.Feas[i] {
		if h.candValid(cand{i, j}) {
			n++
		}
	}
	return n
}

// candValid is the validity check of Algorithm 3: the candidate's via
// is unprotected, no redundant via occupies the site (a conflicting
// DVIC taken), and inserting there would not create an FVP.
func (h *heurState) candValid(c cand) bool {
	if h.protected[c.via] || h.candDead[c.via][c.j] {
		return false
	}
	vl := h.in.Vias[c.via].Layer()
	pt := h.in.Feas[c.via][c.j]
	if h.occ[vl].Has(pt) {
		return false
	}
	return !h.occ[vl].WouldCreateFVP(pt)
}

// computeDP evaluates the DVI penalty of a candidate:
//
//	DP = δ·#feasibleDVICs(via) + λ·#conflictingDVICs + μ·#killedDVICs
func (h *heurState) computeDP(c cand) int {
	in := h.in
	vl := in.Vias[c.via].Layer()
	pt := in.Feas[c.via][c.j]
	feas := h.liveFeasCount(c.via)
	conflicts := 0
	for _, other := range h.bySite[vl][pt] {
		if other.via != c.via && h.candValid(other) {
			conflicts++
		}
	}
	kills := h.countKills(vl, pt, c.via)
	return h.p.Delta*feas + h.p.Lambda*conflicts + h.p.Mu*kills
}

// countKills counts how many other vias' valid candidates would become
// FVP-blocked by inserting a via at pt.
func (h *heurState) countKills(vl int, pt geom.Pt, self int) int {
	occ := h.occ[vl]
	kills := 0
	// Only candidates within Chebyshev distance 4 can share a 3×3
	// window with pt after insertion... window span is 2, and both
	// sites must fall in one window, so distance ≤ 2 in each axis.
	for dx := -2; dx <= 2; dx++ {
		for dy := -2; dy <= 2; dy++ {
			q := pt.Add(dx, dy)
			if q == pt {
				continue
			}
			for _, other := range h.bySite[vl][q] {
				if other.via == self || !h.candValid(other) {
					continue
				}
				if occ.WouldCreateFVP(q) {
					continue // already blocked
				}
				occ.Add(pt)
				blocked := occ.WouldCreateFVP(q)
				occ.Remove(pt)
				if blocked {
					kills++
				}
			}
		}
	}
	return kills
}

// run is the main PQ loop of Algorithm 3.
func (h *heurState) run() {
	for h.pq.Len() > 0 {
		top := h.pq[0]
		if !h.candValid(top.cand) {
			heap.Pop(&h.pq)
			continue
		}
		dp := h.computeDP(top.cand)
		if dp != top.dp {
			// Stale penalty: re-set and re-push (lines 11–14).
			h.pq[0].dp = dp
			heap.Fix(&h.pq, 0)
			continue
		}
		heap.Pop(&h.pq)
		// Insert a redundant via at the candidate.
		i := top.via
		vl := h.in.Vias[i].Layer()
		pt := h.in.Feas[i][top.j]
		h.occ[vl].Add(pt)
		h.sol.Inserted[i] = top.j
		h.protected[i] = true
	}
}

// colorInserted greedily colors the inserted redundant vias against
// the pre-colored existing vias and already-colored insertions;
// uncolorable insertions are removed (the final loop of Algorithm 3).
func (h *heurState) colorInserted() {
	in, s := h.in, h.sol
	// Color lookup per layer: site → color.
	colorAt := make([]map[geom.Pt]int8, len(h.occ))
	for vl := range colorAt {
		colorAt[vl] = map[geom.Pt]int8{}
	}
	for i, v := range in.Vias {
		colorAt[v.Layer()][v.Pos()] = s.Colors[i]
	}
	for i := range in.Vias {
		j := s.Inserted[i]
		if j < 0 {
			continue
		}
		vl := in.Vias[i].Layer()
		pt := in.Feas[i][j]
		var used [tpl.NumColors]bool
		for _, off := range tpl.ConflictOffsets {
			if c, ok := colorAt[vl][pt.Add(off.X, off.Y)]; ok && c >= 0 {
				used[c] = true
			}
		}
		assigned := tpl.Uncolored
		for c := int8(0); c < tpl.NumColors; c++ {
			if !used[c] {
				assigned = c
				break
			}
		}
		if assigned == tpl.Uncolored {
			// Un-insert the redundant via.
			h.occ[vl].Remove(pt)
			s.Inserted[i] = -1
			continue
		}
		s.RedColors[i] = assigned
		colorAt[vl][pt] = assigned
	}
}
