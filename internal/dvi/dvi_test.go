package dvi

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/coloring"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/tpl"
)

func newGrid(t *testing.T, typ coloring.SADPType) *grid.Grid {
	t.Helper()
	return grid.New(24, 24, 2, coloring.Scheme{Type: typ})
}

// viaRoute builds a route going east on m0 from (x,y) for eastLen
// steps, then up, then north on m1 for northLen steps.
func viaRoute(net int32, x, y, eastLen, northLen int) *grid.Route {
	r := grid.NewRoute(net)
	var path []geom.Pt3
	for i := 0; i <= eastLen; i++ {
		path = append(path, geom.XYL(x+i, y, 0))
	}
	path = append(path, geom.XYL(x+eastLen, y, 1))
	for i := 1; i <= northLen; i++ {
		path = append(path, geom.XYL(x+eastLen, y+i, 1))
	}
	return rAdd(r, path)
}

func rAdd(r *grid.Route, path []geom.Pt3) *grid.Route {
	r.AddPath(path)
	return r
}

func TestViaExtraction(t *testing.T) {
	r := viaRoute(0, 2, 2, 3, 3)
	vias := ViasOf(r)
	if len(vias) != 1 {
		t.Fatalf("vias = %v", vias)
	}
	v := vias[0]
	if v.Base != geom.XYL(5, 2, 0) || v.Upper() != geom.XYL(5, 2, 1) || v.Layer() != 0 {
		t.Errorf("via geometry wrong: %+v", v)
	}
}

func TestFeasibilityOpenField(t *testing.T) {
	// A single via in an open field: candidates limited only by turn
	// legality of the one-unit extensions.
	for _, typ := range []coloring.SADPType{coloring.SIM, coloring.SID} {
		g := newGrid(t, typ)
		r := viaRoute(0, 2, 2, 3, 3)
		g.AddRoute(r)
		f := Feasibility{G: g}
		v := ViasOf(r)[0]
		feas := f.FeasibleDVICs(r, v)
		if len(feas) == 0 {
			t.Errorf("%v: open-field via has no feasible DVICs", typ)
		}
		if len(feas) > 4 {
			t.Errorf("%v: more than 4 DVICs", typ)
		}
		// The along-wire candidates need no extension on that layer:
		// west candidate extends m1 (new), east candidate lies on the
		// existing m0 wire... verify each reported candidate truly
		// passes DVICFeasible and unreported ones fail.
		all := map[geom.Pt]bool{}
		for _, c := range feas {
			all[c] = true
		}
		for _, off := range DVICOffsets {
			c := v.Pos().Add(off.X, off.Y)
			if got := f.DVICFeasible(r, v, c); got != all[c] {
				t.Errorf("%v: DVICFeasible(%v) = %v, FeasibleDVICs says %v", typ, c, got, all[c])
			}
		}
	}
}

func TestFeasibilityBlockedByOtherNet(t *testing.T) {
	g := newGrid(t, coloring.SIM)
	r := viaRoute(0, 2, 2, 3, 3)
	g.AddRoute(r)
	f := Feasibility{G: g}
	v := ViasOf(r)[0]
	before := f.FeasibleDVICs(r, v)
	if len(before) == 0 {
		t.Fatal("need at least one feasible candidate")
	}
	// Drop a foreign wire across the first feasible candidate.
	target := before[0]
	blocker := grid.NewRoute(9)
	next := target.Add(0, 1)
	if next == v.Pos() {
		next = target.Add(0, -1)
	}
	blocker.AddPath([]geom.Pt3{
		geom.XYL(target.X, target.Y, 0),
		geom.XYL(next.X, next.Y, 0),
	})
	g.AddRoute(blocker)
	after := f.FeasibleDVICs(r, v)
	if len(after) >= len(before) {
		t.Errorf("foreign metal did not reduce DVICs: %d -> %d", len(before), len(after))
	}
	for _, c := range after {
		if c == target {
			t.Error("occupied candidate still reported feasible")
		}
	}
}

func TestFeasibilityBlockedByExistingVia(t *testing.T) {
	g := newGrid(t, coloring.SIM)
	r := viaRoute(0, 2, 2, 3, 3) // via at (5,2)
	g.AddRoute(r)
	// A second via of the same net at (6,2) blocks that candidate.
	r2 := grid.NewRoute(1)
	r2.AddPath([]geom.Pt3{geom.XYL(6, 1, 0), geom.XYL(6, 2, 0)})
	r2.AddPath([]geom.Pt3{geom.XYL(6, 2, 0), geom.XYL(6, 2, 1), geom.XYL(6, 3, 1)})
	g.AddRoute(r2)
	f := Feasibility{G: g}
	v := ViasOf(r)[0]
	for _, c := range f.FeasibleDVICs(r, v) {
		if c == geom.XY(6, 2) {
			t.Error("candidate with existing via reported feasible")
		}
	}
}

func TestFeasibilityOutOfGrid(t *testing.T) {
	g := newGrid(t, coloring.SIM)
	// Via at the grid corner: off-grid candidates infeasible.
	r := grid.NewRoute(0)
	r.AddPath([]geom.Pt3{geom.XYL(1, 0, 0), geom.XYL(0, 0, 0), geom.XYL(0, 0, 1), geom.XYL(0, 1, 1)})
	g.AddRoute(r)
	f := Feasibility{G: g}
	v := ViasOf(r)[0]
	for _, c := range f.FeasibleDVICs(r, v) {
		if !g.InPlane(c) {
			t.Errorf("off-grid candidate %v reported feasible", c)
		}
	}
}

// Fig 6 semantics: feasibility depends on the grid-point class and the
// orientation of the two connected metal patterns. Moving the same via
// geometry by one track must change the feasible set.
func TestFig6ClassDependence(t *testing.T) {
	for _, typ := range []coloring.SADPType{coloring.SIM, coloring.SID} {
		g1 := newGrid(t, typ)
		r1 := viaRoute(0, 2, 2, 3, 3) // via at (5,2), class (1,0)
		g1.AddRoute(r1)
		f1 := Feasibility{G: g1}
		set1 := map[geom.Pt]bool{}
		for _, c := range f1.FeasibleDVICs(r1, ViasOf(r1)[0]) {
			set1[c.Add(0, -0)] = true
		}

		g2 := newGrid(t, typ)
		r2 := viaRoute(0, 2, 3, 3, 3) // via at (5,3), class (1,1)
		g2.AddRoute(r2)
		f2 := Feasibility{G: g2}
		set2 := map[geom.Pt]bool{}
		for _, c := range f2.FeasibleDVICs(r2, ViasOf(r2)[0]) {
			set2[c.Add(0, -1)] = true // normalize to via-relative
		}
		// Compare via-relative offsets.
		rel := func(set map[geom.Pt]bool, vx int) map[geom.Pt]bool {
			out := map[geom.Pt]bool{}
			for c := range set {
				out[geom.XY(c.X-vx, c.Y-2)] = true
			}
			return out
		}
		o1, o2 := rel(set1, 5), rel(set2, 5)
		same := len(o1) == len(o2)
		if same {
			for k := range o1 {
				if !o2[k] {
					same = false
				}
			}
		}
		if same {
			t.Errorf("%v: feasibility identical across point classes; Fig 6 requires class dependence", typ)
		}
	}
}

// Build a small solved grid with several parallel routed nets, each
// with one via, and exercise both solvers.
func parallelInstance(t *testing.T, nets int) *Instance {
	t.Helper()
	g := grid.New(32, 32, 2, coloring.Scheme{Type: coloring.SIM})
	var routes []*grid.Route
	for i := 0; i < nets; i++ {
		r := viaRoute(int32(i), 2, 2+3*i, 4, 2)
		g.AddRoute(r)
		routes = append(routes, r)
	}
	return NewInstance(g, routes)
}

func TestHeuristicBasic(t *testing.T) {
	in := parallelInstance(t, 4)
	s := in.SolveHeuristic(DefaultHeurParams())
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
	if s.Uncolorable != 0 {
		t.Errorf("%d uncolorable vias on sparse instance", s.Uncolorable)
	}
	if s.InsertedCount == 0 {
		t.Error("no redundant vias inserted on sparse instance")
	}
	if s.InsertedCount+s.DeadVias != len(in.Vias) {
		t.Error("insertion accounting wrong")
	}
}

func TestILPBasic(t *testing.T) {
	in := parallelInstance(t, 4)
	s, err := in.SolveILP(ILPOptions{TimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
	if s.Uncolorable != 0 {
		t.Errorf("ILP reports %d uncolorable on sparse instance", s.Uncolorable)
	}
	// Sparse instance: every via must be protected.
	if s.DeadVias != 0 {
		t.Errorf("ILP left %d dead vias on sparse instance", s.DeadVias)
	}
}

func TestILPDominatesHeuristic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 6; trial++ {
		g := grid.New(26, 26, 2, coloring.Scheme{Type: coloring.SIM})
		var routes []*grid.Route
		placedVias := tpl.NewLayerVias(26, 26)
		id := int32(0)
		for tries := 0; tries < 60 && id < 10; tries++ {
			x, y := 1+rng.Intn(18), 1+rng.Intn(20)
			el, nl2 := 1+rng.Intn(3), 1+rng.Intn(3)
			vp := geom.XY(x+el, y)
			// Keep vias legal at routing time: no FVP among originals
			// and no metal overlap.
			r := viaRoute(id, x, y, el, nl2)
			ok := !placedVias.Has(vp) && !placedVias.WouldCreateFVP(vp)
			for _, p := range r.PointList() {
				if g.Metal[p.Layer].Occupied(p.Pt2()) {
					ok = false
				}
			}
			if !ok {
				continue
			}
			g.AddRoute(r)
			placedVias.Add(vp)
			routes = append(routes, r)
			id++
		}
		in := NewInstance(g, routes)
		h := in.SolveHeuristic(DefaultHeurParams())
		if err := h.Validate(in); err != nil {
			t.Fatalf("trial %d heuristic invalid: %v", trial, err)
		}
		s, err := in.SolveILP(ILPOptions{TimeLimit: 30 * time.Second})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := s.Validate(in); err != nil {
			t.Fatalf("trial %d ILP invalid: %v", trial, err)
		}
		if s.InsertedCount < h.InsertedCount {
			t.Errorf("trial %d: ILP inserted %d < heuristic %d", trial, s.InsertedCount, h.InsertedCount)
		}
		if s.Uncolorable > h.Uncolorable {
			t.Errorf("trial %d: ILP uncolorable %d > heuristic %d", trial, s.Uncolorable, h.Uncolorable)
		}
	}
}

// Fig 12: two adjacent single vias; inserting both redundant vias at
// mutually-packed locations would violate TPL; the solvers must pick a
// TPL-clean combination, still protecting both vias when possible.
func TestFig12TPLAwareChoice(t *testing.T) {
	g := grid.New(24, 24, 2, coloring.Scheme{Type: coloring.SIM})
	r1 := viaRoute(0, 2, 10, 3, 2) // via at (5,10)
	r2 := viaRoute(1, 2, 12, 3, 2) // via at (5,12)
	g.AddRoute(r1)
	g.AddRoute(r2)
	in := NewInstance(g, []*grid.Route{r1, r2})
	if len(in.Vias) != 2 {
		t.Fatalf("expected 2 vias, got %d", len(in.Vias))
	}
	h := in.SolveHeuristic(DefaultHeurParams())
	if err := h.Validate(in); err != nil {
		t.Fatal(err)
	}
	if h.Uncolorable != 0 {
		t.Fatal("heuristic left uncolorable vias in Fig 12 scenario")
	}
	s, err := in.SolveILP(ILPOptions{TimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if s.Uncolorable != 0 || s.DeadVias != 0 {
		t.Errorf("ILP: uncolorable=%d dead=%d; want 0/0", s.Uncolorable, s.DeadVias)
	}
}

// The heuristic must never insert a redundant via that creates an FVP
// (Fig 13).
func TestHeuristicAvoidsFVPs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		g := grid.New(30, 30, 2, coloring.Scheme{Type: coloring.SIM})
		var routes []*grid.Route
		placedVias := tpl.NewLayerVias(30, 30)
		id := int32(0)
		for tries := 0; tries < 150 && id < 16; tries++ {
			x, y := 1+rng.Intn(20), 1+rng.Intn(24)
			el, nl2 := 1+rng.Intn(3), 1+rng.Intn(3)
			vp := geom.XY(x+el, y)
			r := viaRoute(id, x, y, el, nl2)
			ok := !placedVias.Has(vp) && !placedVias.WouldCreateFVP(vp)
			for _, p := range r.PointList() {
				if g.Metal[p.Layer].Occupied(p.Pt2()) {
					ok = false
				}
			}
			if !ok {
				continue
			}
			g.AddRoute(r)
			placedVias.Add(vp)
			routes = append(routes, r)
			id++
		}
		in := NewInstance(g, routes)
		s := in.SolveHeuristic(DefaultHeurParams())
		if err := s.Validate(in); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Rebuild the via layer with insertions; no FVP may exist.
		lv := tpl.NewLayerVias(30, 30)
		for i, v := range in.Vias {
			lv.Add(v.Pos())
			if p, ok := s.redundantAt(in, i); ok {
				lv.Add(p)
			}
		}
		if lv.HasFVP() {
			t.Fatalf("trial %d: heuristic created an FVP", trial)
		}
	}
}

func TestSolutionValidateRejectsBadColoring(t *testing.T) {
	in := parallelInstance(t, 2)
	s := in.SolveHeuristic(DefaultHeurParams())
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
	// Force both vias to the same color; they are 3 tracks apart
	// (no conflict), so corrupt a redundant color instead if adjacent.
	bad := *s
	bad.Colors = append([]int8(nil), s.Colors...)
	bad.Colors[0] = 7
	if err := bad.Validate(in); err == nil {
		t.Error("invalid color accepted")
	}
	bad2 := *s
	bad2.Inserted = append([]int(nil), s.Inserted...)
	bad2.Inserted[0] = 99
	if err := bad2.Validate(in); err == nil {
		t.Error("out-of-range candidate accepted")
	}
}

func TestInstanceOnNilRoutes(t *testing.T) {
	g := newGrid(t, coloring.SIM)
	in := NewInstance(g, []*grid.Route{nil, grid.NewRoute(1)})
	if len(in.Vias) != 0 {
		t.Error("vias found in empty routes")
	}
	s := in.SolveHeuristic(DefaultHeurParams())
	if s.DeadVias != 0 || s.InsertedCount != 0 {
		t.Error("empty instance has nonzero stats")
	}
	if err := s.Validate(in); err != nil {
		t.Error(err)
	}
}

func TestILPModelVerifiesOwnSolution(t *testing.T) {
	in := parallelInstance(t, 3)
	m, _ := in.BuildILP()
	if m.NumVars() == 0 {
		t.Fatal("empty model")
	}
	s, err := in.SolveILP(ILPOptions{TimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	_ = s
}

func BenchmarkHeuristic(b *testing.B) {
	g := grid.New(64, 64, 2, coloring.Scheme{Type: coloring.SIM})
	var routes []*grid.Route
	id := int32(0)
	for y := 2; y < 60; y += 3 {
		r := viaRoute(id, 2, y, 5, 2)
		g.AddRoute(r)
		routes = append(routes, r)
		id++
	}
	in := NewInstance(g, routes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.SolveHeuristic(DefaultHeurParams())
	}
}

func BenchmarkILP(b *testing.B) {
	g := grid.New(64, 64, 2, coloring.Scheme{Type: coloring.SIM})
	var routes []*grid.Route
	id := int32(0)
	for y := 2; y < 60; y += 3 {
		r := viaRoute(id, 2, y, 5, 2)
		g.AddRoute(r)
		routes = append(routes, r)
		id++
	}
	in := NewInstance(g, routes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.SolveILP(ILPOptions{TimeLimit: time.Minute}); err != nil {
			b.Fatal(err)
		}
	}
}
