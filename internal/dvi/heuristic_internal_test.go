package dvi

import (
	"testing"

	"repro/internal/coloring"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/tpl"
)

// buildState constructs the heuristic state for an instance without
// running the insertion loop.
func buildState(in *Instance) *heurState {
	s := &Solution{
		Inserted:  make([]int, len(in.Vias)),
		Colors:    make([]int8, len(in.Vias)),
		RedColors: make([]int8, len(in.Vias)),
	}
	for i := range s.Inserted {
		s.Inserted[i] = -1
	}
	in.precolor(s)
	h := &heurState{in: in, sol: s, p: DefaultHeurParams()}
	h.build()
	return h
}

// A single isolated via: DP of each candidate is δ·#feasible with no
// conflicts and no kills.
func TestDPIsolatedVia(t *testing.T) {
	g := grid.New(24, 24, 2, coloring.Scheme{Type: coloring.SIM})
	r := viaRoute(0, 4, 8, 3, 3)
	g.AddRoute(r)
	in := NewInstance(g, []*grid.Route{r})
	if len(in.Vias) != 1 {
		t.Fatal("expected one via")
	}
	h := buildState(in)
	feas := len(in.Feas[0])
	for j := range in.Feas[0] {
		got := h.computeDP(cand{0, j})
		want := h.p.Delta * feas
		if got != want {
			t.Errorf("candidate %d: DP = %d, want %d (δ·feas only)", j, got, want)
		}
	}
}

// Two vias sharing a candidate site: that shared candidate carries a
// λ conflict on both sides.
func TestDPConflictTerm(t *testing.T) {
	g := grid.New(24, 24, 2, coloring.Scheme{Type: coloring.SIM})
	// Vias at (6,8) and (8,8): the site (7,8) is a DVIC of both.
	r1 := viaRoute(0, 3, 8, 3, 2) // via at (6,8)
	r2 := viaRoute(1, 8, 8, 0, 2) // via at (8,8)
	g.AddRoute(r1)
	g.AddRoute(r2)
	in := NewInstance(g, []*grid.Route{r1, r2})
	if len(in.Vias) != 2 {
		t.Fatalf("expected 2 vias, got %d", len(in.Vias))
	}
	shared := geom.XY(7, 8)
	h := buildState(in)
	for i := range in.Vias {
		for j, c := range in.Feas[i] {
			if c != shared {
				continue
			}
			dp := h.computeDP(cand{i, j})
			base := h.p.Delta * h.liveFeasCount(i)
			if dp < base+h.p.Lambda {
				t.Errorf("shared candidate of via %d: DP %d lacks conflict term (base %d)", i, dp, base)
			}
		}
	}
}

// Inserting at a candidate reduces the live feasible count of
// conflicting vias and invalidates the shared site.
func TestInsertionInvalidatesConflicts(t *testing.T) {
	g := grid.New(24, 24, 2, coloring.Scheme{Type: coloring.SIM})
	r1 := viaRoute(0, 3, 8, 3, 2)
	r2 := viaRoute(1, 8, 8, 0, 2)
	g.AddRoute(r1)
	g.AddRoute(r2)
	in := NewInstance(g, []*grid.Route{r1, r2})
	h := buildState(in)
	shared := geom.XY(7, 8)
	var c0 *cand
	for j, c := range in.Feas[0] {
		if c == shared {
			cc := cand{0, j}
			c0 = &cc
		}
	}
	if c0 == nil {
		t.Skip("shared site not feasible for via 0 under this scheme")
	}
	before := h.liveFeasCount(1)
	// Insert via 0's redundant via at the shared site.
	h.occ[0].Add(shared)
	h.sol.Inserted[0] = c0.j
	h.protected[0] = true
	after := h.liveFeasCount(1)
	if after >= before {
		t.Errorf("conflicting insertion did not reduce via 1 feasibility: %d -> %d", before, after)
	}
	// The shared candidate of via 1 must now be invalid.
	for j, c := range in.Feas[1] {
		if c == shared && h.candValid(cand{1, j}) {
			t.Error("occupied shared candidate still valid")
		}
	}
}

// The kill term: a candidate whose insertion would FVP-block another
// via's candidate carries μ per killed candidate.
func TestDPKillTerm(t *testing.T) {
	g := grid.New(24, 24, 2, coloring.Scheme{Type: coloring.SIM})
	var routes []*grid.Route
	// Three vias packed so candidate insertions interact through 3×3
	// windows: vias at (6,8), (8,8), (6,10).
	for i, pos := range []struct{ x, y, el int }{{3, 8, 3}, {8, 8, 0}, {3, 10, 3}} {
		r := viaRoute(int32(i), pos.x, pos.y, pos.el, 2)
		g.AddRoute(r)
		routes = append(routes, r)
	}
	in := NewInstance(g, []*grid.Route{routes[0], routes[1], routes[2]})
	h := buildState(in)
	// At least one candidate must carry a kill term; compare against a
	// manual recount.
	anyKill := false
	for i := range in.Vias {
		for j := range in.Feas[i] {
			c := cand{i, j}
			if !h.candValid(c) {
				continue
			}
			kills := h.countKills(in.Vias[i].Layer(), in.Feas[i][j], i)
			if kills > 0 {
				anyKill = true
			}
			dp := h.computeDP(c)
			base := h.p.Delta*h.liveFeasCount(i) + h.p.Mu*kills
			if dp < base {
				t.Errorf("via %d cand %d: DP %d below δ+μ floor %d", i, j, dp, base)
			}
		}
	}
	if !anyKill {
		t.Log("no kill interactions in this packing (acceptable, geometry dependent)")
	}
}

// Pre-coloring must yield a proper coloring when the via population is
// sparse.
func TestPrecolorProper(t *testing.T) {
	g := grid.New(32, 32, 2, coloring.Scheme{Type: coloring.SIM})
	var routes []*grid.Route
	for i := 0; i < 5; i++ {
		r := viaRoute(int32(i), 2, 3+5*i, 4, 2)
		g.AddRoute(r)
		routes = append(routes, r)
	}
	in := NewInstance(g, routes)
	s := &Solution{
		Inserted:  make([]int, len(in.Vias)),
		Colors:    make([]int8, len(in.Vias)),
		RedColors: make([]int8, len(in.Vias)),
	}
	in.precolor(s)
	for i, v := range in.Vias {
		if s.Colors[i] == tpl.Uncolored {
			t.Errorf("sparse via %v uncolored", v.Pos())
		}
		for k, u := range in.Vias {
			if i != k && v.Layer() == u.Layer() && tpl.Conflict(v.Pos(), u.Pos()) &&
				s.Colors[i] == s.Colors[k] && s.Colors[i] != tpl.Uncolored {
				t.Errorf("vias %v and %v share color %d within pitch", v.Pos(), u.Pos(), s.Colors[i])
			}
		}
	}
}
