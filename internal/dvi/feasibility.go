// Package dvi implements double via insertion: DVI-candidate
// feasibility under SADP constraints (paper §II-C), the post-routing
// TPL-aware DVI problem (§III-E) with both the exact ILP formulation
// (constraints C1–C8) and the fast priority-queue heuristic
// (Algorithm 3), and the dead-via accounting the paper's tables report.
package dvi

import (
	"repro/internal/coloring"
	"repro/internal/geom"
	"repro/internal/grid"
)

// A Via identifies a single via of a routing solution by the lower
// metal point of the pair it connects: Base.Layer is the via layer.
type Via struct {
	// Net is the owning net's ID.
	Net int32
	// Base is the via location; the via connects (X, Y) on routing
	// layers Base.Layer and Base.Layer+1.
	Base geom.Pt3
}

// Upper returns the upper metal point of the via.
func (v Via) Upper() geom.Pt3 { return geom.XYL(v.Base.X, v.Base.Y, v.Base.Layer+1) }

// Pos returns the in-plane via site.
func (v Via) Pos() geom.Pt { return geom.XY(v.Base.X, v.Base.Y) }

// Layer returns the via layer index.
func (v Via) Layer() int { return v.Base.Layer }

// Feasibility decides whether a DVI candidate location can host a
// redundant via for a given single via. It needs the grid (occupancy),
// the via's own route (metal arm orientations at the via), and the
// coloring scheme (turn legality of the L-extensions).
type Feasibility struct {
	G *grid.Grid
}

// DVICOffsets are the four candidate offsets of a redundant via around
// a single via (Fig 5(a)).
var DVICOffsets = [4]geom.Pt{
	geom.XY(1, 0), geom.XY(-1, 0), geom.XY(0, 1), geom.XY(0, -1),
}

// FeasibleDVICs returns the in-plane locations of the feasible DVI
// candidates of via v, whose owning route is r. The checks, per
// §II-C:
//
//  1. The candidate site must be inside the grid.
//  2. The candidate must not host a via already (any net, same via
//     layer), and the candidate's metal points on both connected
//     layers must not be occupied by another net.
//  3. Extending each connected metal layer from the via to the
//     candidate must not create a forbidden turn against the metal
//     arms the route already has at the via — except where the
//     one-unit-extension rule of Fig 6(a) applies. A layer whose metal
//     already extends toward the candidate needs no extension; a layer
//     with no planar arms at the via (a stacked-via landing) never
//     turns.
func (f Feasibility) FeasibleDVICs(r *grid.Route, v Via) []geom.Pt {
	return f.AppendFeasibleDVICs(make([]geom.Pt, 0, 4), r, v)
}

// AppendFeasibleDVICs is FeasibleDVICs appending into a caller-supplied
// buffer, for hot paths (the router's cost assignment runs it once per
// via of every routed net) that recycle their scratch.
func (f Feasibility) AppendFeasibleDVICs(out []geom.Pt, r *grid.Route, v Via) []geom.Pt {
	for _, off := range DVICOffsets {
		c := v.Pos().Add(off.X, off.Y)
		if f.DVICFeasible(r, v, c) {
			out = append(out, c)
		}
	}
	return out
}

// DVICFeasible reports whether the candidate site c (one grid step
// from the via) can host a redundant via for v.
func (f Feasibility) DVICFeasible(r *grid.Route, v Via, c geom.Pt) bool {
	if !f.G.InPlane(c) {
		return false
	}
	d := geom.Pt3{X: v.Base.X, Y: v.Base.Y}.DirTo(geom.Pt3{X: c.X, Y: c.Y})
	if d == geom.None || !d.Planar() {
		return false
	}
	// Occupancy: the candidate via site and both metal points.
	if f.G.Vias[v.Layer()].Has(c) {
		return false
	}
	for _, l := range [2]int{v.Base.Layer, v.Base.Layer + 1} {
		if f.G.Metal[l].OccupiedByOther(c, v.Net) {
			return false
		}
	}
	// Turn legality of the one-unit extensions on both layers.
	for _, l := range [2]int{v.Base.Layer, v.Base.Layer + 1} {
		if !f.extensionLegal(r, geom.XYL(v.Base.X, v.Base.Y, l), d) {
			return false
		}
	}
	return true
}

// extensionLegal checks that extending the metal at point p one unit in
// direction d does not create an undecomposable pattern with the
// route's existing arms at p.
func (f Feasibility) extensionLegal(r *grid.Route, p geom.Pt3, d geom.Dir) bool {
	if r.HasArm(p, d) {
		// Metal already runs toward the candidate; no new shape.
		return true
	}
	scheme := f.G.Scheme
	for _, a := range geom.PlanarDirs {
		if !r.HasArm(p, a) {
			continue
		}
		corner, isCorner := coloring.CornerOf(a, d)
		if !isCorner {
			continue // straight extension of an existing arm
		}
		if scheme.Turn(p.Pt2(), corner) == coloring.Forbidden &&
			!scheme.OneUnitExtensionOK(p.Pt2(), corner, d) {
			return false
		}
	}
	return true
}

// ViasOf extracts the single vias of a route in deterministic order.
func ViasOf(r *grid.Route) []Via {
	bases := r.ViaList()
	out := make([]Via, len(bases))
	for i, b := range bases {
		out[i] = Via{Net: r.Net, Base: b}
	}
	return out
}

// CollectVias gathers every via of a routing solution. Routes may be
// nil (unrouted nets are skipped).
func CollectVias(routes []*grid.Route) []Via {
	var out []Via
	for _, r := range routes {
		if r == nil || r.Empty() {
			continue
		}
		out = append(out, ViasOf(r)...)
	}
	return out
}
