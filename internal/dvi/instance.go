package dvi

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/tpl"
)

// Instance is one post-routing TPL-aware DVI problem (§III-E): a
// routing solution's single vias with their feasible DVI candidates.
// The objective is to insert a redundant via for as many single vias
// as possible without breaking via-layer TPL decomposability or metal
// layer SADP decomposability.
type Instance struct {
	G      *grid.Grid
	Routes []*grid.Route
	// Vias lists every single via of the solution.
	Vias []Via
	// Feas[i] lists the feasible DVIC locations of Vias[i] (0 to 4).
	Feas [][]geom.Pt
}

// NewInstance gathers the vias of a routing solution and computes DVIC
// feasibility for each (§II-C).
func NewInstance(g *grid.Grid, routes []*grid.Route) *Instance {
	in := &Instance{G: g, Routes: routes}
	f := Feasibility{G: g}
	for _, r := range routes {
		if r == nil || r.Empty() {
			continue
		}
		for _, v := range ViasOf(r) {
			in.Vias = append(in.Vias, v)
			in.Feas = append(in.Feas, f.FeasibleDVICs(r, v))
		}
	}
	return in
}

// Solution is a DVI result: which candidate each via uses (or -1) and
// the TPL coloring of all vias.
type Solution struct {
	// Inserted[i] is the index into Feas[i] of the inserted redundant
	// via, or -1 when via i stays single (a dead via).
	Inserted []int
	// Colors[i] is the TPL mask (0..2) of original via i, or
	// tpl.Uncolored.
	Colors []int8
	// RedColors[i] is the TPL mask of via i's redundant via; valid when
	// Inserted[i] >= 0.
	RedColors []int8
	// Stats
	InsertedCount int
	DeadVias      int
	Uncolorable   int
	// LimitHit is set by SolveILP when a time or node limit stopped
	// the search before optimality was proven: the solution is the
	// best incumbent found — never worse than the warm-starting
	// heuristic — but possibly suboptimal. Heuristic solutions leave
	// it false.
	LimitHit bool
}

// redundantAt returns the location of via i's redundant via, or false.
func (s *Solution) redundantAt(in *Instance, i int) (geom.Pt, bool) {
	j := s.Inserted[i]
	if j < 0 {
		return geom.Pt{}, false
	}
	return in.Feas[i][j], true
}

// Validate checks the solution against the problem's hard constraints:
// each via at most one redundant via at a feasible candidate, no two
// inserted vias on the same site of the same layer, a proper pairwise
// TPL coloring (no same-color pair within the same-color via pitch),
// and stats consistent with the assignment. Uncolorable original vias
// are permitted only if counted.
func (s *Solution) Validate(in *Instance) error {
	if len(s.Inserted) != len(in.Vias) || len(s.Colors) != len(in.Vias) || len(s.RedColors) != len(in.Vias) {
		return fmt.Errorf("dvi: solution arrays sized %d/%d/%d for %d vias",
			len(s.Inserted), len(s.Colors), len(s.RedColors), len(in.Vias))
	}
	type site struct {
		vl int
		p  geom.Pt
	}
	type colored struct {
		site
		color int8
	}
	var all []colored
	occupied := map[site]bool{}
	for _, v := range in.Vias {
		occupied[site{v.Layer(), v.Pos()}] = true
	}
	inserted, dead, unc := 0, 0, 0
	for i := range in.Vias {
		v := in.Vias[i]
		j := s.Inserted[i]
		if j >= len(in.Feas[i]) {
			return fmt.Errorf("dvi: via %d inserted at out-of-range candidate %d", i, j)
		}
		if s.Colors[i] == tpl.Uncolored {
			unc++
		} else if s.Colors[i] < 0 || s.Colors[i] >= tpl.NumColors {
			return fmt.Errorf("dvi: via %d has invalid color %d", i, s.Colors[i])
		}
		all = append(all, colored{site{v.Layer(), v.Pos()}, s.Colors[i]})
		if j < 0 {
			dead++
			continue
		}
		inserted++
		rp := in.Feas[i][j]
		st := site{v.Layer(), rp}
		if occupied[st] {
			return fmt.Errorf("dvi: redundant via of via %d at %v collides", i, rp)
		}
		occupied[st] = true
		rc := s.RedColors[i]
		if rc < 0 || rc >= tpl.NumColors {
			return fmt.Errorf("dvi: redundant via of via %d has invalid color %d", i, rc)
		}
		all = append(all, colored{st, rc})
	}
	// Pairwise coloring legality within each via layer, in ascending
	// layer order so a multi-violation solution always reports the
	// same error.
	byLayer := map[int][]colored{}
	vls := []int{}
	for _, c := range all {
		if byLayer[c.vl] == nil {
			vls = append(vls, c.vl)
		}
		byLayer[c.vl] = append(byLayer[c.vl], c)
	}
	sort.Ints(vls)
	for _, vl := range vls {
		cs := byLayer[vl]
		pos := map[geom.Pt]int8{}
		for _, c := range cs {
			pos[c.p] = c.color
		}
		for _, c := range cs {
			if c.color == tpl.Uncolored {
				continue
			}
			for _, off := range tpl.ConflictOffsets {
				q := c.p.Add(off.X, off.Y)
				if oc, ok := pos[q]; ok && oc == c.color {
					return fmt.Errorf("dvi: same-color vias within pitch at %v and %v (layer %d)", c.p, q, vl)
				}
			}
		}
	}
	if s.InsertedCount != inserted || s.DeadVias != dead || s.Uncolorable != unc {
		return fmt.Errorf("dvi: stats mismatch: reported %d/%d/%d, actual %d/%d/%d",
			s.InsertedCount, s.DeadVias, s.Uncolorable, inserted, dead, unc)
	}
	return nil
}
