package dvi

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/geom"
	"repro/internal/ilp"
	"repro/internal/tpl"
)

// The exact ILP formulation of the TPL-aware DVI problem (§III-E,
// constraints C1–C8), lowered onto the internal/ilp solver in place of
// Gurobi. Variables per via i: color indicators oV, gV, bV, an
// uncolorable indicator uV, and per feasible DVIC j: the insertion
// indicator D_ij plus its color indicators oD, gD, bD. The objective
// maximizes insertions minus a large penalty for uncolorable vias.

// ILPOptions bound the exact solve.
type ILPOptions struct {
	TimeLimit time.Duration
	NodeLimit int64
}

const (
	bigB      = 1 << 20 // objective penalty per uncolorable via
	bigBPrime = 8       // big-M for conditional color constraints (sums ≤ 4)
)

// ilpVars records the variable layout for decoding.
type ilpVars struct {
	colV [][3]int // per via: oV, gV, bV
	uV   []int
	d    [][]int    // per via, per candidate: D_ij
	colD [][][3]int // per via, per candidate: oD, gD, bD
}

// BuildILP constructs the paper's ILP for the instance. Exposed for
// tests and the benchmark harness (model size reporting).
func (in *Instance) BuildILP() (*ilp.Model, *ilpVars) {
	m := ilp.NewModel()
	n := len(in.Vias)
	v := &ilpVars{
		colV: make([][3]int, n),
		uV:   make([]int, n),
		d:    make([][]int, n),
		colD: make([][][3]int, n),
	}
	for i := 0; i < n; i++ {
		for c := 0; c < 3; c++ {
			v.colV[i][c] = m.AddVar(0)
		}
		v.uV[i] = m.AddVar(-bigB)
		v.d[i] = make([]int, len(in.Feas[i]))
		v.colD[i] = make([][3]int, len(in.Feas[i]))
		for j := range in.Feas[i] {
			v.d[i][j] = m.AddVar(1)
			for c := 0; c < 3; c++ {
				v.colD[i][j][c] = m.AddVar(0)
			}
		}
	}

	// C1: at most one redundant via per single via.
	for i := 0; i < n; i++ {
		if len(v.d[i]) == 0 {
			continue
		}
		terms := make([]ilp.Term, len(v.d[i]))
		for j, dv := range v.d[i] {
			terms[j] = ilp.Term{Var: dv, Coef: 1}
		}
		m.AddConstraint(terms, ilp.Leq, 1)
	}

	// C3: every via gets exactly one color or is uncolorable.
	for i := 0; i < n; i++ {
		m.AddConstraint([]ilp.Term{
			{Var: v.colV[i][0], Coef: 1}, {Var: v.colV[i][1], Coef: 1},
			{Var: v.colV[i][2], Coef: 1}, {Var: v.uV[i], Coef: 1},
		}, ilp.Eq, 1)
	}

	// C4: an inserted redundant via has exactly one color; an
	// uninserted one has none (the big-M pair collapses to equality
	// when D=1 and is vacuous when D=0 given color vars sum ≥ 0 —
	// forcing colors to zero when D=0 keeps the search space tight).
	for i := 0; i < n; i++ {
		for j := range v.d[i] {
			cd := v.colD[i][j]
			m.AddConstraint([]ilp.Term{
				{Var: cd[0], Coef: 1}, {Var: cd[1], Coef: 1}, {Var: cd[2], Coef: 1},
				{Var: v.d[i][j], Coef: -bigBPrime},
			}, ilp.Geq, 1-bigBPrime)
			m.AddConstraint([]ilp.Term{
				{Var: cd[0], Coef: 1}, {Var: cd[1], Coef: 1}, {Var: cd[2], Coef: 1},
				{Var: v.d[i][j], Coef: -1},
			}, ilp.Leq, 0)
		}
	}

	// Spatial constraint generation: index vias and candidates by via
	// layer and site.
	type siteRef struct {
		i, j int // j = -1 for an original via
	}
	byLayer := map[int]map[geom.Pt][]siteRef{}
	at := func(vl int, p geom.Pt) []siteRef { return byLayer[vl][p] }
	add := func(vl int, p geom.Pt, r siteRef) {
		if byLayer[vl] == nil {
			byLayer[vl] = map[geom.Pt][]siteRef{}
		}
		byLayer[vl][p] = append(byLayer[vl][p], r)
	}
	for i, via := range in.Vias {
		add(via.Layer(), via.Pos(), siteRef{i, -1})
		for j, c := range in.Feas[i] {
			add(via.Layer(), c, siteRef{i, j})
		}
	}
	// Constraint rows are emitted in (layer, row-major site) order so
	// the model — and with it the branch-and-bound path and node
	// counts — is identical run to run.
	layers := make([]int, 0, len(byLayer))
	for vl := range byLayer {
		layers = append(layers, vl)
	}
	sort.Ints(layers)
	sites := make(map[int][]geom.Pt, len(byLayer))
	for _, vl := range layers {
		ps := make([]geom.Pt, 0, len(byLayer[vl]))
		for p := range byLayer[vl] {
			ps = append(ps, p)
		}
		sort.Slice(ps, func(a, b int) bool {
			if ps[a].Y != ps[b].Y {
				return ps[a].Y < ps[b].Y
			}
			return ps[a].X < ps[b].X
		})
		sites[vl] = ps
	}

	// C2: conflicting DVICs (same site, same layer, different vias)
	// cannot both be inserted.
	for _, vl := range layers {
		for _, p := range sites[vl] {
			refs := byLayer[vl][p]
			for a := 0; a < len(refs); a++ {
				for b := a + 1; b < len(refs); b++ {
					ra, rb := refs[a], refs[b]
					if ra.j < 0 || rb.j < 0 || ra.i == rb.i {
						continue
					}
					m.AddConstraint([]ilp.Term{
						{Var: v.d[ra.i][ra.j], Coef: 1},
						{Var: v.d[rb.i][rb.j], Coef: 1},
					}, ilp.Leq, 1)
				}
			}
		}
	}

	// C5–C7: same-color-pitch pairs. For each pair of sites within
	// pitch on the same layer, per color: both cannot take that color
	// (conditioned on insertion for DVICs).
	seen := map[[2]int]bool{} // dedup by model var id pair (smaller first)
	pairKey := func(a, b int) [2]int {
		if a > b {
			a, b = b, a
		}
		return [2]int{a, b}
	}
	for _, vl := range layers {
		for _, p := range sites[vl] {
			refs := byLayer[vl][p]
			for _, off := range tpl.ConflictOffsets {
				q := p.Add(off.X, off.Y)
				for _, ra := range refs {
					for _, rb := range at(vl, q) {
						if ra.i == rb.i && ra.j == rb.j {
							continue
						}
						// Same via's original and its own candidate
						// still conflict (they are within pitch), so
						// no same-via exemption beyond identity.
						aOrig, bOrig := ra.j < 0, rb.j < 0
						var aCol, bCol [3]int
						if aOrig {
							aCol = v.colV[ra.i]
						} else {
							aCol = v.colD[ra.i][ra.j]
						}
						if bOrig {
							bCol = v.colV[rb.i]
						} else {
							bCol = v.colD[rb.i][rb.j]
						}
						if seen[pairKey(aCol[0], bCol[0])] {
							continue
						}
						seen[pairKey(aCol[0], bCol[0])] = true
						for c := 0; c < 3; c++ {
							terms := []ilp.Term{
								{Var: aCol[c], Coef: 1},
								{Var: bCol[c], Coef: 1},
							}
							// With C4 forcing colD to zero when D=0,
							// the pairwise bound needs no big-M: an
							// uninserted DVIC has no color.
							m.AddConstraint(terms, ilp.Leq, 1)
						}
					}
				}
			}
		}
	}
	return m, v
}

// warmStart encodes a heuristic solution as an ILP assignment, seeding
// the branch and bound with a feasible incumbent.
func (in *Instance) warmStart(m *ilp.Model, vars *ilpVars, h *Solution) []int8 {
	x := make([]int8, m.NumVars())
	for i := range in.Vias {
		if c := h.Colors[i]; c >= 0 {
			x[vars.colV[i][c]] = 1
		} else {
			x[vars.uV[i]] = 1
		}
		if j := h.Inserted[i]; j >= 0 {
			x[vars.d[i][j]] = 1
			if rc := h.RedColors[i]; rc >= 0 {
				x[vars.colD[i][j][rc]] = 1
			}
		}
	}
	return x
}

// SolveILP solves the TPL-aware DVI ILP exactly (or to the limits) and
// decodes the result. The search starts from the Algorithm 3 heuristic
// solution as incumbent, so the result is never worse than the
// heuristic even under tight limits.
func (in *Instance) SolveILP(opts ILPOptions) (*Solution, error) {
	m, vars := in.BuildILP()
	warm := in.warmStart(m, vars, in.SolveHeuristic(DefaultHeurParams()))
	res := ilp.Solve(m, ilp.Options{TimeLimit: opts.TimeLimit, NodeLimit: opts.NodeLimit, WarmStart: warm})
	switch res.Status {
	case ilp.Optimal, ilp.Feasible:
	default:
		return nil, fmt.Errorf("dvi: ILP solve failed with status %v", res.Status)
	}
	n := len(in.Vias)
	s := &Solution{
		Inserted:  make([]int, n),
		Colors:    make([]int8, n),
		RedColors: make([]int8, n),
		LimitHit:  res.Status == ilp.Feasible,
	}
	for i := 0; i < n; i++ {
		s.Inserted[i] = -1
		s.Colors[i] = tpl.Uncolored
		s.RedColors[i] = tpl.Uncolored
		for c := int8(0); c < 3; c++ {
			if res.X[vars.colV[i][c]] == 1 {
				s.Colors[i] = c
			}
		}
		if res.X[vars.uV[i]] == 1 {
			s.Uncolorable++
			s.Colors[i] = tpl.Uncolored
		}
		for j := range in.Feas[i] {
			if res.X[vars.d[i][j]] == 1 {
				s.Inserted[i] = j
				s.InsertedCount++
				for c := int8(0); c < 3; c++ {
					if res.X[vars.colD[i][j][c]] == 1 {
						s.RedColors[i] = c
					}
				}
			}
		}
	}
	s.DeadVias = n - s.InsertedCount
	return s, nil
}
