package tpl

// Allocation ceilings for the //sadplint:hotpath family in this
// package: the window probes and the site scan run per candidate via
// inside the router's TPL rip-up loop and must not allocate once their
// caller-owned buffers are warm.

import (
	"testing"

	"repro/internal/geom"
)

func TestViaProbesAllocFree(t *testing.T) {
	lv := NewLayerVias(32, 32)
	for y := 0; y < 32; y += 3 {
		for x := 0; x < 32; x += 2 {
			lv.Add(geom.XY(x, y))
		}
	}
	var fvps int
	avg := testing.AllocsPerRun(100, func() {
		for y := 1; y < 31; y++ {
			for x := 1; x < 31; x++ {
				p := geom.XY(x, y)
				if lv.WindowAt(p).IsFVP() {
					fvps++
				}
				if lv.WouldCreateFVP(p) {
					fvps++
				}
			}
		}
	})
	if avg != 0 {
		t.Errorf("WindowAt/IsFVP/WouldCreateFVP allocate %.1f per sweep, want 0 (fvps=%d)", avg, fvps)
	}
}

func TestAppendSitesAllocFreeWhenWarm(t *testing.T) {
	lv := NewLayerVias(32, 32)
	for y := 0; y < 32; y += 2 {
		for x := 0; x < 32; x += 2 {
			lv.Add(geom.XY(x, y))
		}
	}
	pts := lv.AppendSites(nil) // first call sizes the buffer
	avg := testing.AllocsPerRun(100, func() {
		pts = lv.AppendSites(pts[:0])
	})
	if avg != 0 {
		t.Errorf("AppendSites into a warm buffer allocates %.1f per call, want 0", avg)
	}
	if len(pts) != lv.Len() {
		t.Errorf("AppendSites returned %d sites, want %d", len(pts), lv.Len())
	}
}
