package tpl

import (
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestConflictModel(t *testing.T) {
	o := geom.XY(0, 0)
	cases := []struct {
		p    geom.Pt
		want bool
	}{
		{geom.XY(0, 0), false}, // same site never conflicts with itself
		{geom.XY(1, 0), true},  // d²=1
		{geom.XY(1, 1), true},  // d²=2
		{geom.XY(2, 0), true},  // d²=4, straight two tracks
		{geom.XY(2, 1), true},  // d²=5, knight move
		{geom.XY(2, 2), false}, // d²=8, diagonal corners of a window
		{geom.XY(3, 0), false}, // d²=9
		{geom.XY(-2, -1), true},
		{geom.XY(-2, 2), false},
	}
	for _, c := range cases {
		if got := Conflict(o, c.p); got != c.want {
			t.Errorf("Conflict(origin, %v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestConflictSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by int8) bool {
		a, b := geom.XY(int(ax), int(ay)), geom.XY(int(bx), int(by))
		return Conflict(a, b) == Conflict(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConflictOffsetsComplete(t *testing.T) {
	// 4 at d²=1, 4 at d²=2, 4 at d²=4, 8 at d²=5.
	if len(ConflictOffsets) != 20 {
		t.Fatalf("len(ConflictOffsets) = %d, want 20", len(ConflictOffsets))
	}
	seen := map[geom.Pt]bool{}
	for _, off := range ConflictOffsets {
		if seen[off] {
			t.Fatalf("duplicate offset %v", off)
		}
		seen[off] = true
		if !Conflict(geom.XY(0, 0), off) {
			t.Errorf("offset %v listed but not a conflict", off)
		}
	}
}

func TestWindowBitOps(t *testing.T) {
	var w Window
	w = w.Set(1, 2).Set(0, 0).Set(2, 1)
	if w.Count() != 3 {
		t.Fatalf("Count = %d", w.Count())
	}
	if !w.Has(1, 2) || !w.Has(0, 0) || !w.Has(2, 1) || w.Has(2, 2) {
		t.Error("Has wrong after Set")
	}
	w = w.Clear(0, 0)
	if w.Has(0, 0) || w.Count() != 2 {
		t.Error("Clear failed")
	}
	// Setting an already-set bit is idempotent.
	if w.Set(1, 2) != w {
		t.Error("Set not idempotent")
	}
}

// The heart of §II-D: the O(1) FVP rules agree with brute-force
// 3-coloring on all 512 possible window patterns.
func TestFVPRulesExhaustive(t *testing.T) {
	for w := Window(0); w <= windowMask; w++ {
		fast := w.IsFVP()
		exact := !w.Colorable3Exact()
		if fast != exact {
			t.Fatalf("window %09b (count %d): IsFVP=%v, brute-force uncolorable=%v",
				w, w.Count(), fast, exact)
		}
	}
}

func TestChromaticNumberExhaustive(t *testing.T) {
	for w := Window(0); w <= windowMask; w++ {
		chi := w.ChromaticNumber()
		if (chi > 3) != w.IsFVP() {
			t.Fatalf("window %09b: chi=%d but IsFVP=%v", w, chi, w.IsFVP())
		}
		if w.Count() == 0 && chi != 0 {
			t.Fatal("empty window has nonzero chromatic number")
		}
	}
}

// Paper Fig 7 examples, translated to window bit patterns.
func TestFig7Examples(t *testing.T) {
	// (a) 5 vias, 4 on corners + center: not an FVP.
	a := Window(0).Set(0, 0).Set(2, 0).Set(0, 2).Set(2, 2).Set(1, 1)
	if a.IsFVP() {
		t.Error("Fig 7(a): 4 corners + center must not be an FVP")
	}
	// (b) 5 vias not in the corner configuration: FVP.
	b := Window(0).Set(0, 0).Set(1, 0).Set(2, 0).Set(0, 2).Set(1, 2)
	if !b.IsFVP() {
		t.Error("Fig 7(b): 5-via non-corner pattern must be an FVP")
	}
	// (c) 4 vias with two on diagonally opposite corners: not an FVP.
	c := Window(0).Set(0, 0).Set(2, 2).Set(1, 0).Set(2, 1)
	if c.IsFVP() {
		t.Error("Fig 7(c): diagonal-corner 4-via pattern must not be an FVP")
	}
	// (d) 4 vias with no diagonally opposite corner pair: FVP.
	d := Window(0).Set(0, 0).Set(1, 0).Set(0, 1).Set(1, 1)
	if !d.IsFVP() {
		t.Error("Fig 7(d): packed 4-via pattern must be an FVP")
	}
}

func TestFVPRule1SixOrMore(t *testing.T) {
	// Any 6-via pattern is an FVP; check a few including the best case
	// (both diagonal pairs populated).
	w := Window(0).Set(0, 0).Set(2, 0).Set(0, 2).Set(2, 2).Set(1, 1).Set(1, 0)
	if !w.IsFVP() {
		t.Error("6-via pattern with both diagonal pairs must still be an FVP")
	}
	if !(windowMask).IsFVP() {
		t.Error("full window must be an FVP")
	}
}

func TestFVPRule4ThreeOrFewer(t *testing.T) {
	// Any pattern with <= 3 vias is 3-colorable by definition.
	for w := Window(0); w <= windowMask; w++ {
		if w.Count() <= 3 && w.IsFVP() {
			t.Fatalf("window %09b with %d vias classified FVP", w, w.Count())
		}
	}
}

func BenchmarkFVPClassify(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := Window(i) & windowMask
		_ = w.IsFVP()
	}
}

func BenchmarkFVPBruteForce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := Window(i) & windowMask
		_ = w.Colorable3Exact()
	}
}
