package tpl

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestLayerViasAddRemove(t *testing.T) {
	lv := NewLayerVias(10, 10)
	p := geom.XY(3, 4)
	if lv.Has(p) || lv.Len() != 0 {
		t.Fatal("new layer not empty")
	}
	lv.Add(p)
	if !lv.Has(p) || lv.Len() != 1 {
		t.Fatal("Add failed")
	}
	lv.Add(p) // stacked transient via
	if lv.Len() != 2 {
		t.Fatal("multiplicity not tracked")
	}
	lv.Remove(p)
	if !lv.Has(p) {
		t.Fatal("Remove dropped multiplicity too early")
	}
	lv.Remove(p)
	if lv.Has(p) || lv.Len() != 0 {
		t.Fatal("Remove failed")
	}
}

func TestLayerViasRemoveAbsentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Remove of absent via did not panic")
		}
	}()
	NewLayerVias(4, 4).Remove(geom.XY(1, 1))
}

func TestNewLayerViasInvalidDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid dims did not panic")
		}
	}()
	NewLayerVias(0, 5)
}

func TestLayerViasBounds(t *testing.T) {
	lv := NewLayerVias(5, 7)
	for _, p := range []geom.Pt{{X: -1, Y: 0}, {X: 0, Y: -1}, {X: 5, Y: 0}, {X: 0, Y: 7}} {
		if lv.InBounds(p) {
			t.Errorf("%v reported in bounds", p)
		}
		if lv.Has(p) {
			t.Errorf("Has(%v) true out of bounds", p)
		}
	}
	if !lv.InBounds(geom.XY(4, 6)) || !lv.InBounds(geom.XY(0, 0)) {
		t.Error("corner sites reported out of bounds")
	}
}

func TestWindowAtBorder(t *testing.T) {
	lv := NewLayerVias(4, 4)
	lv.Add(geom.XY(0, 0))
	// Window at (-2,-2) contains (0,0) at offset (2,2).
	w := lv.WindowAt(geom.XY(-2, -2))
	if !w.Has(2, 2) || w.Count() != 1 {
		t.Errorf("border window = %09b", w)
	}
	// Window fully outside is empty.
	if lv.WindowAt(geom.XY(-5, -5)) != 0 {
		t.Error("out-of-grid window not empty")
	}
}

func TestSitesAndSiteList(t *testing.T) {
	lv := NewLayerVias(6, 6)
	pts := []geom.Pt{geom.XY(1, 1), geom.XY(4, 2), geom.XY(0, 5)}
	for _, p := range pts {
		lv.Add(p)
	}
	lv.Add(pts[0]) // double occupancy listed once
	got := lv.SiteList()
	if len(got) != 3 {
		t.Fatalf("SiteList len = %d", len(got))
	}
	want := map[geom.Pt]bool{pts[0]: true, pts[1]: true, pts[2]: true}
	for _, p := range got {
		if !want[p] {
			t.Errorf("unexpected site %v", p)
		}
	}
}

// Build the Fig 7(d) FVP and confirm detection both globally and
// incrementally.
func TestFVPDetection(t *testing.T) {
	lv := NewLayerVias(10, 10)
	for _, p := range []geom.Pt{geom.XY(4, 4), geom.XY(5, 4), geom.XY(4, 5)} {
		lv.Add(p)
	}
	if lv.HasFVP() {
		t.Fatal("3 vias cannot form an FVP")
	}
	if !lv.WouldCreateFVP(geom.XY(5, 5)) {
		t.Fatal("adding the 4th packed via must create an FVP")
	}
	lv.Add(geom.XY(5, 5))
	if !lv.HasFVP() {
		t.Fatal("FVP not detected after insertion")
	}
	fvps := lv.AllFVPs()
	if len(fvps) == 0 {
		t.Fatal("AllFVPs empty")
	}
	touching := lv.FVPsTouching(geom.XY(5, 5))
	if len(touching) == 0 {
		t.Fatal("FVPsTouching empty for member via")
	}
	// Every touching FVP must also be found by the global scan.
	all := map[geom.Pt]bool{}
	for _, o := range fvps {
		all[o] = true
	}
	for _, o := range touching {
		if !all[o] {
			t.Errorf("incremental FVP %v missed by global scan", o)
		}
	}
	lv.Remove(geom.XY(5, 5))
	if lv.HasFVP() {
		t.Fatal("FVP persists after removal")
	}
}

func TestWouldCreateFVPNoFalsePositive(t *testing.T) {
	lv := NewLayerVias(10, 10)
	// Diagonal corners allow a 4th via.
	lv.Add(geom.XY(4, 4))
	lv.Add(geom.XY(6, 6))
	lv.Add(geom.XY(5, 4))
	if lv.WouldCreateFVP(geom.XY(6, 5)) {
		t.Error("diagonal-corner 4-via pattern wrongly predicted as FVP")
	}
	if lv.WouldCreateFVP(geom.XY(50, 50)) {
		t.Error("out-of-bounds site predicted to create FVP")
	}
}

func TestWouldCreateFVPOnOccupiedSiteIsStable(t *testing.T) {
	lv := NewLayerVias(10, 10)
	for _, p := range []geom.Pt{geom.XY(4, 4), geom.XY(5, 4), geom.XY(4, 5), geom.XY(5, 5)} {
		lv.Add(p)
	}
	// The FVP already exists; re-adding an existing via does not
	// *create* one (window unchanged).
	if lv.WouldCreateFVP(geom.XY(5, 5)) {
		t.Error("existing via site reported as creating a new FVP")
	}
}

func TestConflictsCount(t *testing.T) {
	lv := NewLayerVias(10, 10)
	center := geom.XY(5, 5)
	lv.Add(geom.XY(6, 5)) // d²=1
	lv.Add(geom.XY(7, 6)) // d²=5
	lv.Add(geom.XY(7, 7)) // d²=8, no conflict
	lv.Add(geom.XY(5, 5)) // own site, excluded
	if got := lv.Conflicts(center); got != 2 {
		t.Errorf("Conflicts = %d, want 2", got)
	}
	n := 0
	lv.ConflictSites(center, func(geom.Pt) { n++ })
	if n != 2 {
		t.Errorf("ConflictSites visited %d, want 2", n)
	}
}

// Randomized consistency: incremental WouldCreateFVP agrees with
// add-then-scan on random via soups.
func TestWouldCreateFVPMatchesRescan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		lv := NewLayerVias(12, 12)
		for i := 0; i < 18; i++ {
			p := geom.XY(rng.Intn(12), rng.Intn(12))
			if !lv.Has(p) && !lv.WouldCreateFVP(p) {
				lv.Add(p)
			}
		}
		if lv.HasFVP() {
			t.Fatal("blocking invariant violated: FVP appeared despite WouldCreateFVP guard")
		}
		p := geom.XY(rng.Intn(12), rng.Intn(12))
		if lv.Has(p) {
			continue
		}
		pred := lv.WouldCreateFVP(p)
		before := len(lv.AllFVPs())
		lv.Add(p)
		after := len(lv.AllFVPs())
		if pred != (after > before) {
			t.Fatalf("trial %d: WouldCreateFVP(%v)=%v but FVPs %d→%d", trial, p, pred, before, after)
		}
	}
}

func BenchmarkWouldCreateFVP(b *testing.B) {
	lv := NewLayerVias(64, 64)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 400; i++ {
		p := geom.XY(rng.Intn(64), rng.Intn(64))
		if !lv.Has(p) {
			lv.Add(p)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lv.WouldCreateFVP(geom.XY(i%64, (i/64)%64))
	}
}

func BenchmarkAllFVPs(b *testing.B) {
	lv := NewLayerVias(128, 128)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		p := geom.XY(rng.Intn(128), rng.Intn(128))
		if !lv.Has(p) {
			lv.Add(p)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = lv.AllFVPs()
	}
}
