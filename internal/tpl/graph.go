package tpl

import (
	"sort"

	"repro/internal/geom"
)

// NumColors is the number of TPL masks.
const NumColors = 3

// Uncolored marks a vertex the greedy coloring could not assign within
// NumColors colors.
const Uncolored int8 = -1

// Graph is a TPL decomposition graph: one vertex per via, an edge
// between every pair of vias within the same-color via pitch
// (§II-D). It is built once per via layer after routing and used for
// the global 3-colorability check (§III-D).
type Graph struct {
	Pts []geom.Pt
	Adj [][]int32
}

// NewGraph builds the decomposition graph of the given via locations.
// Edges are found through a uniform spatial hash, so construction is
// O(V) for bounded via density.
func NewGraph(pts []geom.Pt) *Graph {
	g := &Graph{Pts: pts, Adj: make([][]int32, len(pts))}
	byPos := make(map[geom.Pt]int32, len(pts))
	for i, p := range pts {
		byPos[p] = int32(i)
	}
	// Two passes over one flat backing array instead of a per-vertex
	// append: the graph is rebuilt after every routing pass, so the
	// O(V) small slices would dominate steady-state allocation.
	total := 0
	for _, p := range pts {
		for _, off := range ConflictOffsets {
			if _, ok := byPos[p.Add(off.X, off.Y)]; ok {
				total++
			}
		}
	}
	flat := make([]int32, 0, total)
	for i, p := range pts {
		start := len(flat)
		for _, off := range ConflictOffsets {
			if j, ok := byPos[p.Add(off.X, off.Y)]; ok {
				flat = append(flat, j)
			}
		}
		g.Adj[i] = flat[start:len(flat):len(flat)]
	}
	return g
}

// FromLayer builds the decomposition graph of all vias on a layer.
func FromLayer(lv *LayerVias) *Graph { return NewGraph(lv.SiteList()) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, a := range g.Adj {
		n += len(a)
	}
	return n / 2
}

// MaxDegree returns the maximum vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	d := 0
	for _, a := range g.Adj {
		if len(a) > d {
			d = len(a)
		}
	}
	return d
}

// WelshPowell greedily colors the graph with at most k colors using the
// Welsh–Powell ordering (vertices by non-increasing degree). It returns
// the color of each vertex (0..k-1, or Uncolored) and the indices of
// uncolorable vertices. A nil uncolored slice means the graph was fully
// colored, i.e. the via layer is TPL decomposable as far as the greedy
// check can tell.
func (g *Graph) WelshPowell(k int) (colors []int8, uncolored []int) {
	n := len(g.Pts)
	colors = make([]int8, n)
	for i := range colors {
		colors[i] = Uncolored
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(g.Adj[order[a]]) > len(g.Adj[order[b]])
	})
	var used [64]bool
	for _, v := range order {
		for c := 0; c < k; c++ {
			used[c] = false
		}
		for _, u := range g.Adj[v] {
			if c := colors[u]; c >= 0 {
				used[c] = true
			}
		}
		for c := int8(0); int(c) < k; c++ {
			if !used[c] {
				colors[v] = c
				break
			}
		}
		if colors[v] == Uncolored {
			uncolored = append(uncolored, v)
		}
	}
	return colors, uncolored
}

// Components returns the connected components of the graph as vertex
// index slices.
func (g *Graph) Components() [][]int {
	n := len(g.Pts)
	seen := make([]bool, n)
	var comps [][]int
	var stack []int
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack = append(stack[:0], s)
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, u := range g.Adj[v] {
				if !seen[u] {
					seen[u] = true
					stack = append(stack, int(u))
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// ColorableExact reports whether the graph is k-colorable, deciding
// each connected component independently by backtracking with a step
// budget per component. It returns ok=false with exact=false when a
// component exceeded the budget undecided. Intended for validation and
// tests; the production check is WelshPowell.
func (g *Graph) ColorableExact(k, budget int) (ok, exact bool) {
	colors := make([]int8, len(g.Pts))
	for _, comp := range g.Components() {
		steps := 0
		for _, v := range comp {
			colors[v] = Uncolored
		}
		var solve func(i int) (bool, bool)
		solve = func(i int) (bool, bool) {
			if i == len(comp) {
				return true, true
			}
			steps++
			if steps > budget {
				return false, false
			}
			v := comp[i]
			for c := int8(0); int(c) < k; c++ {
				good := true
				for _, u := range g.Adj[v] {
					if colors[u] == c {
						good = false
						break
					}
				}
				if good {
					colors[v] = c
					if done, ex := solve(i + 1); done {
						return true, true
					} else if !ex {
						colors[v] = Uncolored
						return false, false
					}
					colors[v] = Uncolored
				}
			}
			return false, true
		}
		done, ex := solve(0)
		if !ex {
			return false, false
		}
		if !done {
			return false, true
		}
	}
	return true, true
}

// ValidColoring reports whether colors is a proper coloring of g with
// every vertex assigned (no Uncolored entries).
func (g *Graph) ValidColoring(colors []int8) bool {
	if len(colors) != len(g.Pts) {
		return false
	}
	for v, c := range colors {
		if c < 0 {
			return false
		}
		for _, u := range g.Adj[v] {
			if colors[u] == c {
				return false
			}
		}
	}
	return true
}

// WheelPattern builds the via locations of a "wheel" pattern (Fig 11):
// a hub via surrounded by a cycle of rim vias at the given offsets.
// Rim offsets must be within conflict range of the hub and consecutive
// rim vias within conflict range of each other for the pattern to
// behave as a wheel. The canonical uncolorable wheel is
// WheelPattern(hub, WheelRim).
func WheelPattern(hub geom.Pt, rim []geom.Pt) []geom.Pt {
	pts := []geom.Pt{hub}
	for _, r := range rim {
		pts = append(pts, hub.Add(r.X, r.Y))
	}
	return pts
}

// WheelRim is a 5-via rim forming a chordless odd cycle (induced C5)
// around the hub in cyclic order: every rim via conflicts with the hub
// and with its two cycle neighbors only. Hub + C5 needs 4 colors, yet
// the 6-via pattern contains no FVP window — the Fig 11 failure mode
// the global Welsh–Powell check exists to catch. (Under our calibrated
// same-color pitch of §II-D the smallest FVP-free uncolorable pattern
// has 6 vias — exhaustive search over 5×5 neighborhoods finds none with
// 5 — whereas the paper's Fig 11(a) sketches one with 5; the paper's
// exact pitch is not published and the structural role of the pattern
// is identical.)
var WheelRim = []geom.Pt{
	geom.XY(-2, -1), geom.XY(-2, 0), geom.XY(0, 1), geom.XY(1, -1), geom.XY(0, -2),
}
