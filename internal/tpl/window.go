package tpl

import (
	"math/bits"

	"repro/internal/geom"
)

// SameColorSqPitch is the squared same-color via pitch in grid units.
// Two distinct vias whose squared center distance is at most this value
// cannot share a TPL mask color. See the package comment for why 5.
const SameColorSqPitch = 5

// Conflict reports whether two via locations are within the same-color
// via pitch of each other (and distinct).
func Conflict(a, b geom.Pt) bool {
	if a == b {
		return false
	}
	return a.SqDist(b) <= SameColorSqPitch
}

// ConflictOffsets lists every non-zero (dx, dy) offset within the
// same-color via pitch. Iterating it visits all potential conflict
// partners of a via.
var ConflictOffsets = buildConflictOffsets()

func buildConflictOffsets() []geom.Pt {
	var offs []geom.Pt
	for dx := -2; dx <= 2; dx++ {
		for dy := -2; dy <= 2; dy++ {
			if dx == 0 && dy == 0 {
				continue
			}
			if dx*dx+dy*dy <= SameColorSqPitch {
				offs = append(offs, geom.XY(dx, dy))
			}
		}
	}
	return offs
}

// Window is a 3×3 subregion of via sites encoded as a 9-bit set; bit
// x + 3*y is the site at offset (x, y) from the window origin (its
// lower-left corner).
type Window uint16

// windowMask keeps only the 9 meaningful bits.
const windowMask Window = 0x1ff

// Bit returns the bit index of offset (x, y); x and y must be in 0..2.
func bit(x, y int) uint { return uint(x + 3*y) }

// Has reports whether the site at offset (x, y) holds a via.
func (w Window) Has(x, y int) bool { return w&(1<<bit(x, y)) != 0 }

// Set returns w with a via at offset (x, y).
func (w Window) Set(x, y int) Window { return w | 1<<bit(x, y) }

// Clear returns w without a via at offset (x, y).
func (w Window) Clear(x, y int) Window { return w &^ (1 << bit(x, y)) }

// Count returns the number of vias in the window.
func (w Window) Count() int { return bits.OnesCount16(uint16(w & windowMask)) }

// The two diagonally opposite corner pairs of a 3×3 window.
const (
	cornerBL Window = 1 << (0 + 3*0) // (0,0)
	cornerBR Window = 1 << (2 + 3*0) // (2,0)
	cornerTL Window = 1 << (0 + 3*2) // (0,2)
	cornerTR Window = 1 << (2 + 3*2) // (2,2)
	corners         = cornerBL | cornerBR | cornerTL | cornerTR
)

// diagonalPairs returns how many of the window's two diagonally
// opposite corner pairs are fully populated.
func (w Window) diagonalPairs() int {
	n := 0
	if w&(cornerBL|cornerTR) == cornerBL|cornerTR {
		n++
	}
	if w&(cornerBR|cornerTL) == cornerBR|cornerTL {
		n++
	}
	return n
}

// IsFVP reports whether the window's via pattern is a forbidden via
// pattern — not 3-colorable under the same-color-pitch conflict model.
// It implements the paper's O(1) rules 1–4 (§II-D); equivalently the
// chromatic number of the window conflict graph is Count() minus
// diagonalPairs(), and the pattern is an FVP when that exceeds 3.
//
//sadplint:hotpath evaluated per 3×3 window in every FVP scan and probe
func (w Window) IsFVP() bool {
	n := w.Count()
	switch {
	case n <= 3:
		return false
	case n >= 6:
		return true
	case n == 4:
		// Non-FVP iff 2 of the 4 vias are on diagonally opposite
		// corners.
		return w.diagonalPairs() == 0
	default: // n == 5
		// Non-FVP iff 4 of the 5 vias occupy the four corners.
		return w&corners != corners
	}
}

// ChromaticNumber returns the chromatic number of the window's conflict
// graph: the number of vias minus the number of populated diagonally
// opposite corner pairs (0 for an empty window).
func (w Window) ChromaticNumber() int {
	n := w.Count()
	if n == 0 {
		return 0
	}
	return n - w.diagonalPairs()
}

// Colorable3Exact 3-colors the window's conflict graph by exhaustive
// backtracking. It exists to cross-validate IsFVP and is exported for
// the benchmark harness; production code uses IsFVP.
func (w Window) Colorable3Exact() bool {
	var pts []geom.Pt
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			if w.Has(x, y) {
				pts = append(pts, geom.XY(x, y))
			}
		}
	}
	colors := make([]int8, len(pts))
	var solve func(i int) bool
	solve = func(i int) bool {
		if i == len(pts) {
			return true
		}
		for c := int8(1); c <= 3; c++ {
			ok := true
			for j := 0; j < i; j++ {
				if colors[j] == c && Conflict(pts[i], pts[j]) {
					ok = false
					break
				}
			}
			if ok {
				colors[i] = c
				if solve(i + 1) {
					return true
				}
				colors[i] = 0
			}
		}
		return false
	}
	return solve(0)
}
