package tpl

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestGraphConstruction(t *testing.T) {
	pts := []geom.Pt{geom.XY(0, 0), geom.XY(1, 0), geom.XY(4, 4)}
	g := NewGraph(pts)
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if len(g.Adj[0]) != 1 || g.Adj[0][0] != 1 {
		t.Error("adjacency of vertex 0 wrong")
	}
	if len(g.Adj[2]) != 0 {
		t.Error("isolated vertex has edges")
	}
	if g.MaxDegree() != 1 {
		t.Errorf("MaxDegree = %d", g.MaxDegree())
	}
}

func TestGraphMatchesConflictPredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]geom.Pt, 0, 60)
	seen := map[geom.Pt]bool{}
	for len(pts) < 60 {
		p := geom.XY(rng.Intn(15), rng.Intn(15))
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	g := NewGraph(pts)
	adj := make(map[[2]int]bool)
	for v, ns := range g.Adj {
		for _, u := range ns {
			adj[[2]int{v, int(u)}] = true
		}
	}
	for i := range pts {
		for j := range pts {
			if i == j {
				continue
			}
			if Conflict(pts[i], pts[j]) != adj[[2]int{i, j}] {
				t.Fatalf("edge (%v,%v) mismatch", pts[i], pts[j])
			}
		}
	}
}

func TestWelshPowellOnColorableGraphs(t *testing.T) {
	// A spread-out via population is trivially 3-colorable.
	var pts []geom.Pt
	for x := 0; x < 12; x += 3 {
		for y := 0; y < 12; y += 3 {
			pts = append(pts, geom.XY(x, y))
		}
	}
	g := NewGraph(pts)
	colors, uncolored := g.WelshPowell(NumColors)
	if len(uncolored) != 0 {
		t.Fatalf("%d uncolored vertices in independent set", len(uncolored))
	}
	if !g.ValidColoring(colors) {
		t.Fatal("invalid coloring returned")
	}
}

func TestWelshPowellDetectsK4(t *testing.T) {
	// Four pairwise-conflicting vias need 4 colors.
	pts := []geom.Pt{geom.XY(0, 0), geom.XY(1, 0), geom.XY(0, 1), geom.XY(1, 1)}
	g := NewGraph(pts)
	_, uncolored := g.WelshPowell(NumColors)
	if len(uncolored) == 0 {
		t.Fatal("K4 reported 3-colorable by greedy")
	}
	if ok, exact := g.ColorableExact(NumColors, 1_000_000); ok || !exact {
		t.Fatalf("exact check on K4: ok=%v exact=%v", ok, exact)
	}
	if ok, _ := g.ColorableExact(4, 1_000_000); !ok {
		t.Fatal("K4 must be 4-colorable")
	}
}

// The wheel pattern of Fig 11: FVP-free yet not 3-colorable. This is
// exactly the case the global Welsh–Powell check exists for.
func TestWheelPatterns(t *testing.T) {
	hub := geom.XY(10, 10)
	pts := WheelPattern(hub, WheelRim)
	// 1. No FVP anywhere.
	lv := NewLayerVias(21, 21)
	for _, p := range pts {
		lv.Add(p)
	}
	if lv.HasFVP() {
		t.Fatal("wheel pattern contains an FVP window; it must not")
	}
	// 2. Structure: every rim via conflicts with the hub; rim forms an
	// induced C5 (each rim via has exactly 2 rim neighbors).
	for i := 1; i < len(pts); i++ {
		if !Conflict(pts[0], pts[i]) {
			t.Errorf("rim via %v does not conflict with hub", pts[i])
		}
		deg := 0
		for j := 1; j < len(pts); j++ {
			if i != j && Conflict(pts[i], pts[j]) {
				deg++
			}
		}
		if deg != 2 {
			t.Errorf("rim via %v has %d rim neighbors, want 2 (induced cycle)", pts[i], deg)
		}
	}
	// 3. Not 3-colorable (exactly), 4-colorable.
	g := NewGraph(pts)
	if ok, exact := g.ColorableExact(NumColors, 1_000_000); ok || !exact {
		t.Fatalf("wheel: 3-colorable=%v exact=%v, want false,true", ok, exact)
	}
	if ok, _ := g.ColorableExact(4, 1_000_000); !ok {
		t.Fatal("wheel must be 4-colorable")
	}
	// 4. Welsh–Powell flags at least one uncolorable via.
	if _, unc := g.WelshPowell(NumColors); len(unc) == 0 {
		t.Fatal("greedy coloring missed the wheel violation")
	}
}

func TestComponents(t *testing.T) {
	pts := []geom.Pt{
		geom.XY(0, 0), geom.XY(1, 0), // component 1
		geom.XY(10, 10), geom.XY(10, 11), geom.XY(11, 10), // component 2
		geom.XY(20, 20), // isolated
	}
	g := NewGraph(pts)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("Components = %d, want 3", len(comps))
	}
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	if sizes[2] != 1 || sizes[3] != 1 || sizes[1] != 1 {
		t.Errorf("component sizes wrong: %v", sizes)
	}
}

func TestColorableExactBudget(t *testing.T) {
	// A tiny budget must report exact=false rather than a wrong answer.
	var pts []geom.Pt
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			pts = append(pts, geom.XY(x, y))
		}
	}
	g := NewGraph(pts)
	if _, exact := g.ColorableExact(NumColors, 1); exact {
		t.Error("budget of 1 step claimed exactness on 64-vertex graph")
	}
}

func TestValidColoringRejects(t *testing.T) {
	pts := []geom.Pt{geom.XY(0, 0), geom.XY(1, 0)}
	g := NewGraph(pts)
	if g.ValidColoring([]int8{0, 0}) {
		t.Error("monochromatic edge accepted")
	}
	if g.ValidColoring([]int8{0}) {
		t.Error("short color slice accepted")
	}
	if g.ValidColoring([]int8{0, Uncolored}) {
		t.Error("uncolored vertex accepted")
	}
	if !g.ValidColoring([]int8{0, 1}) {
		t.Error("proper coloring rejected")
	}
}

// Greedy Welsh–Powell agrees with the exact decision on random small
// instances whenever it succeeds (greedy success implies colorable;
// greedy failure is checked against exact only as an upper bound on
// optimism).
func TestWelshPowellSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		var pts []geom.Pt
		seen := map[geom.Pt]bool{}
		for i := 0; i < 14; i++ {
			p := geom.XY(rng.Intn(8), rng.Intn(8))
			if !seen[p] {
				seen[p] = true
				pts = append(pts, p)
			}
		}
		g := NewGraph(pts)
		colors, unc := g.WelshPowell(NumColors)
		if len(unc) == 0 {
			if !g.ValidColoring(colors) {
				t.Fatal("greedy produced invalid coloring")
			}
			if ok, exact := g.ColorableExact(NumColors, 1_000_000); exact && !ok {
				t.Fatal("greedy colored a graph the exact solver proves uncolorable")
			}
		}
	}
}

func BenchmarkWelshPowell(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	var pts []geom.Pt
	seen := map[geom.Pt]bool{}
	for len(pts) < 3000 {
		p := geom.XY(rng.Intn(200), rng.Intn(200))
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	g := NewGraph(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.WelshPowell(NumColors)
	}
}

func BenchmarkGraphConstruction(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	var pts []geom.Pt
	seen := map[geom.Pt]bool{}
	for len(pts) < 3000 {
		p := geom.XY(rng.Intn(200), rng.Intn(200))
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewGraph(pts)
	}
}
