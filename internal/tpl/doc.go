// Package tpl models triple patterning lithography (TPL) decomposability
// of via layers (paper §II-D, §III-C, §III-D).
//
// # Conflict model
//
// Two vias on the same via layer conflict — cannot receive the same TPL
// mask color — when their center-to-center distance is within the
// same-color via pitch. The paper (citing Liebmann et al. [10]) states
// the pitch is "slightly larger than two times of routing track pitch".
// We pin it down to: conflict iff squared grid distance ≤ 5, i.e. a
// pitch in (√5, 2√2) track pitches. This is the unique grid conflict
// model consistent with the paper's forbidden-via-pattern (FVP)
// characterization:
//
//   - Corner pairs along a 3×3 window edge (d²=4) must conflict,
//     otherwise 5-via patterns with 4 corner vias would not need the
//     corner structure rule 2 demands.
//   - Diagonally opposite corners (d²=8) must NOT conflict, otherwise
//     every 4-via window would be a K4 and rule 3's exception could not
//     exist.
//   - Knight-move pairs (d²=5) must conflict, otherwise the 5-via
//     pattern {(0,0),(1,0),(2,0),(0,2),(1,2)} would be 3-colorable and
//     rule 2 ("unless 4 of the 5 vias are on the corners, FVP") false.
//
// Under this model, the conflict graph of any 3×3 window with n vias is
// the complete graph K_n minus a perfect non-edge for each diagonally
// opposite corner pair present, so its chromatic number is n minus the
// number of such pairs — which yields the paper's O(1) rules exactly:
//
//  1. n ≥ 6 ⇒ FVP.
//  2. n = 5 ⇒ FVP unless 4 of the 5 vias are on the four corners.
//  3. n = 4 ⇒ FVP unless 2 of the 4 vias are on diagonally opposite
//     corners.
//  4. n ≤ 3 ⇒ never an FVP.
//
// TestFVPRulesExhaustive validates the classifier against brute-force
// 3-coloring for all 512 window patterns.
//
// # Beyond windows
//
// FVP-freedom does not imply a 3-colorable decomposition graph: "wheel"
// via patterns (Fig 11) span more than a 3×3 window and are caught by
// the global Welsh–Powell check (§III-D) on the full decomposition
// graph, where an edge joins every via pair within same-color pitch.
package tpl
