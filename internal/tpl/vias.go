package tpl

import (
	"fmt"
	"sync"

	"repro/internal/geom"
)

// LayerVias tracks the via occupancy of one via layer of the routing
// grid and answers the window and conflict queries the router and the
// DVI engine need: FVP detection (global and incremental), would-
// this-via-create-an-FVP checks (used both for via-site blocking,
// Fig 10, and for DVI kill computation), and same-color-pitch conflict
// counting (used by the TPLC routing cost).
//
// During negotiated-congestion routing more than one net may transiently
// place a via on the same site, so each site holds a count rather than
// a bit.
type LayerVias struct {
	w, h  int
	count []uint16
	vias  int
}

// NewLayerVias returns an empty via layer over a w×h grid of via sites.
func NewLayerVias(w, h int) *LayerVias {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("tpl: invalid via layer dims %dx%d", w, h))
	}
	return &LayerVias{w: w, h: h, count: make([]uint16, w*h)}
}

// Dims returns the grid dimensions.
func (lv *LayerVias) Dims() (w, h int) { return lv.w, lv.h }

// Clear empties the layer in place, retaining its storage for reuse.
func (lv *LayerVias) Clear() {
	clear(lv.count)
	lv.vias = 0
}

// InBounds reports whether p is a valid via site.
func (lv *LayerVias) InBounds(p geom.Pt) bool {
	return p.X >= 0 && p.X < lv.w && p.Y >= 0 && p.Y < lv.h
}

func (lv *LayerVias) idx(p geom.Pt) int { return p.Y*lv.w + p.X }

// Add places one via at p.
func (lv *LayerVias) Add(p geom.Pt) {
	lv.count[lv.idx(p)]++
	lv.vias++
}

// Remove removes one via at p. It panics if the site is empty, which
// would indicate desynchronized bookkeeping in the caller.
func (lv *LayerVias) Remove(p geom.Pt) {
	i := lv.idx(p)
	if lv.count[i] == 0 {
		panic(fmt.Sprintf("tpl: Remove of absent via at %v", p))
	}
	lv.count[i]--
	lv.vias--
}

// Has reports whether at least one via occupies p.
func (lv *LayerVias) Has(p geom.Pt) bool {
	return lv.InBounds(p) && lv.count[lv.idx(p)] > 0
}

// Len returns the total via count (multiply-occupied sites counted with
// multiplicity).
func (lv *LayerVias) Len() int { return lv.vias }

// Sites calls fn for every occupied site (once per site, regardless of
// multiplicity), in row-major order.
func (lv *LayerVias) Sites(fn func(geom.Pt)) {
	for y := 0; y < lv.h; y++ {
		for x := 0; x < lv.w; x++ {
			if lv.count[y*lv.w+x] > 0 {
				fn(geom.XY(x, y))
			}
		}
	}
}

// SiteList returns all occupied sites in row-major order.
func (lv *LayerVias) SiteList() []geom.Pt {
	return lv.AppendSites(nil)
}

// AppendSites appends all occupied sites in row-major order to pts and
// returns the extended slice. Callers on hot paths pass a recycled
// buffer (pts[:0]) to avoid the per-call allocation of SiteList. The
// row scan is inlined rather than delegated to Sites: a func literal
// here would allocate a closure on every snapshot.
//
//sadplint:hotpath snapshots the via set once per TPL bookkeeping pass
func (lv *LayerVias) AppendSites(pts []geom.Pt) []geom.Pt {
	if cap(pts)-len(pts) < lv.vias {
		grown := make([]geom.Pt, len(pts), len(pts)+lv.vias)
		copy(grown, pts)
		pts = grown
	}
	for y := 0; y < lv.h; y++ {
		row := lv.count[y*lv.w : (y+1)*lv.w]
		for x := range row {
			if row[x] > 0 {
				pts = append(pts, geom.XY(x, y))
			}
		}
	}
	return pts
}

// WindowAt extracts the 3×3 window whose lower-left corner is origin.
// Sites outside the grid read as empty.
//
//sadplint:hotpath window extraction runs per candidate site in the recolor loop
func (lv *LayerVias) WindowAt(origin geom.Pt) Window {
	var w Window
	for dy := 0; dy < 3; dy++ {
		y := origin.Y + dy
		if y < 0 || y >= lv.h {
			continue
		}
		for dx := 0; dx < 3; dx++ {
			x := origin.X + dx
			if x < 0 || x >= lv.w {
				continue
			}
			if lv.count[y*lv.w+x] > 0 {
				w = w.Set(dx, dy)
			}
		}
	}
	return w
}

// windowOrigins calls fn with the origin of every 3×3 window that
// contains site p (up to 9, fewer at the grid border). Window origins
// range over the full grid so border windows are included.
func (lv *LayerVias) windowOrigins(p geom.Pt, fn func(geom.Pt)) {
	for dy := -2; dy <= 0; dy++ {
		for dx := -2; dx <= 0; dx++ {
			fn(geom.XY(p.X+dx, p.Y+dy))
		}
	}
}

// FVPsTouching returns the origins of every FVP window containing p.
func (lv *LayerVias) FVPsTouching(p geom.Pt) []geom.Pt {
	var out []geom.Pt
	lv.windowOrigins(p, func(o geom.Pt) {
		if lv.WindowAt(o).IsFVP() {
			out = append(out, o)
		}
	})
	return out
}

// AllFVPs scans the full grid (O(n) windows) and returns the origin of
// every FVP window in row-major order.
func (lv *LayerVias) AllFVPs() []geom.Pt {
	return lv.scanFVPRows(-2, lv.h)
}

// AllFVPsN is AllFVPs with the scan split into up to workers contiguous
// row bands examined concurrently. The layer must not be mutated during
// the call. Band results are concatenated in band order, so the output
// is identical to the serial scan for any worker count.
func (lv *LayerVias) AllFVPsN(workers int) []geom.Pt {
	rows := lv.h + 2 // window origins range over y ∈ [-2, h)
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		return lv.AllFVPs()
	}
	parts := make([][]geom.Pt, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		y0 := -2 + rows*w/workers
		y1 := -2 + rows*(w+1)/workers
		wg.Add(1)
		go func(w, y0, y1 int) {
			defer wg.Done()
			parts[w] = lv.scanFVPRows(y0, y1)
		}(w, y0, y1)
	}
	wg.Wait()
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([]geom.Pt, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

func (lv *LayerVias) scanFVPRows(y0, y1 int) []geom.Pt {
	var out []geom.Pt
	for y := y0; y < y1; y++ {
		for x := -2; x < lv.w; x++ {
			o := geom.XY(x, y)
			if lv.WindowAt(o).IsFVP() {
				out = append(out, o)
			}
		}
	}
	return out
}

// HasFVP reports whether any FVP window exists on the layer.
func (lv *LayerVias) HasFVP() bool {
	for y := -2; y < lv.h; y++ {
		for x := -2; x < lv.w; x++ {
			if lv.WindowAt(geom.XY(x, y)).IsFVP() {
				return true
			}
		}
	}
	return false
}

// WouldCreateFVP reports whether inserting one additional via at p
// would create at least one FVP window. Used for via-site blocking in
// the TPL violation removal R&R (Fig 10) and for the DVI kill rule.
// The window-origin scan is inlined rather than delegated to
// windowOrigins: a func literal here would allocate a closure on
// every feasibility probe.
//
//sadplint:hotpath probed per candidate via site in search and DVI cost loops
func (lv *LayerVias) WouldCreateFVP(p geom.Pt) bool {
	if !lv.InBounds(p) {
		return false
	}
	for dy := -2; dy <= 0; dy++ {
		for dx := -2; dx <= 0; dx++ {
			o := geom.XY(p.X+dx, p.Y+dy)
			w := lv.WindowAt(o)
			nw := w.Set(p.X-o.X, p.Y-o.Y)
			if nw != w && nw.IsFVP() {
				return true
			}
		}
	}
	return false
}

// Conflicts returns the number of occupied sites within the same-color
// via pitch of p (excluding p itself; multiply-occupied sites count
// once).
func (lv *LayerVias) Conflicts(p geom.Pt) int {
	n := 0
	for _, off := range ConflictOffsets {
		q := p.Add(off.X, off.Y)
		if lv.Has(q) {
			n++
		}
	}
	return n
}

// ConflictSites calls fn for each occupied site within the same-color
// via pitch of p.
func (lv *LayerVias) ConflictSites(p geom.Pt, fn func(geom.Pt)) {
	for _, off := range ConflictOffsets {
		q := p.Add(off.X, off.Y)
		if lv.Has(q) {
			fn(q)
		}
	}
}
