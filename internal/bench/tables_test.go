package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/coloring"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"xxx", "1"}, {"y", "22"}},
	}
	s := tbl.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines", len(lines))
	}
	// Columns align: all data lines have equal width.
	if len(lines[1]) != len(lines[2]) || len(lines[2]) != len(lines[3]) {
		t.Errorf("misaligned table:\n%s", s)
	}
}

func TestTableVRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the router and ILP")
	}
	tbl, err := TableV(TinySuite()[:1], 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.String()
	if !strings.Contains(s, "[36]") || !strings.Contains(s, "this") {
		t.Errorf("Table V missing parameter rows:\n%s", s)
	}
}

func TestTableVIVIIRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the router and ILP")
	}
	for _, typ := range []coloring.SADPType{coloring.SIM, coloring.SID} {
		tbl, err := TableVIVII(TinySuite()[:1], typ, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		s := tbl.String()
		if !strings.Contains(s, "ILP") || !strings.Contains(s, "Heur") {
			t.Errorf("Table VI/VII missing columns:\n%s", s)
		}
		// The heuristic must report zero uncolorable vias.
		for _, line := range strings.Split(s, "\n") {
			f := strings.Fields(line)
			if len(f) == 7 && f[0] == TinySuite()[0].Name {
				if f[5] != "0" {
					t.Errorf("heuristic #UV = %s, want 0", f[5])
				}
			}
		}
	}
}

func TestRunSpecUnknownMethod(t *testing.T) {
	nl := Generate(TinySuite()[0])
	if _, _, err := Run(nl, RunSpec{Scheme: coloring.SIM, Method: DVIMethod(99)}); err == nil {
		t.Fatal("unknown method accepted")
	}
}
