package bench

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/coloring"
)

var updateGolden = flag.Bool("update", false, "rewrite the testdata golden files from the current code")

// goldenEntry pins every machine-independent metric of one tiny-suite
// configuration. CPU timings are deliberately absent.
type goldenEntry struct {
	Circuit  string `json:"circuit"`
	Scheme   string `json:"scheme"`
	Method   string `json:"method"`
	WL       int    `json:"wl"`
	Vias     int    `json:"vias"`
	DV       int    `json:"dv"`
	UV       int    `json:"uv"`
	Inserted int    `json:"inserted"`
}

// goldenILPNodeLimit makes the exact solve deterministic across
// machines: branch-and-bound explores the same nodes in the same order
// everywhere, so capping nodes (never wall clock) fixes the incumbent.
const goldenILPNodeLimit = 50_000

// TestGoldenTinySuite compares Table-style metrics for the tiny suite
// across both SADP modes and both DVI methods against the checked-in
// golden file, exactly. A perf or refactoring PR that claims
// bit-identical results proves it by leaving this file untouched;
// an intentional behavior change reruns with -update and reviews the
// diff.
func TestGoldenTinySuite(t *testing.T) {
	type cfg struct {
		ckt    Circuit
		scheme coloring.SADPType
		method DVIMethod
	}
	var cfgs []cfg
	for _, ckt := range TinySuite() {
		for _, scheme := range []coloring.SADPType{coloring.SIM, coloring.SID} {
			for _, method := range []DVIMethod{HeurDVI, ILPDVI} {
				cfgs = append(cfgs, cfg{ckt, scheme, method})
			}
		}
	}
	got := make([]goldenEntry, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i, c := range cfgs {
		wg.Add(1)
		go func(i int, c cfg) {
			defer wg.Done()
			spec := RunSpec{
				Scheme: c.scheme, ConsiderDVI: true, ConsiderTPL: true,
				Method: c.method, ILPTimeLimit: 10 * time.Minute,
				ILPNodeLimit: goldenILPNodeLimit,
				Verify:       true,
			}
			row, art, err := Run(Generate(c.ckt), spec)
			if err != nil {
				errs[i] = fmt.Errorf("%s/%v/%v: %w", c.ckt.Name, c.scheme, c.method, err)
				return
			}
			if verr := art.Verify.Err(); verr != nil {
				errs[i] = fmt.Errorf("%s/%v/%v: verifier: %w", c.ckt.Name, c.scheme, c.method, verr)
				return
			}
			got[i] = goldenEntry{
				Circuit: c.ckt.Name, Scheme: c.scheme.String(), Method: c.method.String(),
				WL: row.WL, Vias: row.Vias, DV: row.DV, UV: row.UV,
				Inserted: art.Solution.InsertedCount,
			}
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	compareGolden(t, "golden_tiny.json", got)
}

// TestGoldenMultiPinSuite pins the multi-pin tiny suite (pin counts
// uniform in [2, 6], Steiner decomposition) the same way: both SADP
// modes, both DVI methods, independent verification, exact metric
// match against testdata/golden_multipin.json.
func TestGoldenMultiPinSuite(t *testing.T) {
	type cfg struct {
		ckt    Circuit
		scheme coloring.SADPType
		method DVIMethod
	}
	var cfgs []cfg
	for _, ckt := range TinyMultiPinSuite() {
		for _, scheme := range []coloring.SADPType{coloring.SIM, coloring.SID} {
			for _, method := range []DVIMethod{HeurDVI, ILPDVI} {
				cfgs = append(cfgs, cfg{ckt, scheme, method})
			}
		}
	}
	got := make([]goldenEntry, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i, c := range cfgs {
		wg.Add(1)
		go func(i int, c cfg) {
			defer wg.Done()
			spec := RunSpec{
				Scheme: c.scheme, ConsiderDVI: true, ConsiderTPL: true,
				Method: c.method, ILPTimeLimit: 10 * time.Minute,
				ILPNodeLimit: goldenILPNodeLimit,
				Verify:       true,
			}
			row, art, err := Run(Generate(c.ckt), spec)
			if err != nil {
				errs[i] = fmt.Errorf("%s/%v/%v: %w", c.ckt.Name, c.scheme, c.method, err)
				return
			}
			if verr := art.Verify.Err(); verr != nil {
				errs[i] = fmt.Errorf("%s/%v/%v: verifier: %w", c.ckt.Name, c.scheme, c.method, verr)
				return
			}
			if art.Router.Stats().SteinerNets == 0 {
				errs[i] = fmt.Errorf("%s/%v/%v: no net used the Steiner topology", c.ckt.Name, c.scheme, c.method)
				return
			}
			got[i] = goldenEntry{
				Circuit: c.ckt.Name, Scheme: c.scheme.String(), Method: c.method.String(),
				WL: row.WL, Vias: row.Vias, DV: row.DV, UV: row.UV,
				Inserted: art.Solution.InsertedCount,
			}
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	compareGolden(t, "golden_multipin.json", got)
}

// compareGolden matches the computed entries against the named golden
// file in testdata, or rewrites the file under -update.
func compareGolden(t *testing.T, file string, got []goldenEntry) {
	t.Helper()
	path := filepath.Join("testdata", file)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d entries", path, len(got))
		return
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (rerun this test with -update): %v", err)
	}
	var want []goldenEntry
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden file has %d entries, current run %d (rerun with -update after reviewing)", len(want), len(got))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("metrics drifted for %s/%s/%s:\n  golden:  %+v\n  current: %+v",
				got[i].Circuit, got[i].Scheme, got[i].Method, want[i], got[i])
		}
	}
}
