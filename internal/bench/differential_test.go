package bench

// Differential proof that the Dial bucket queue and the legacy binary
// heap are interchangeable at suite scale: the scaled Table I circuits
// are routed once per backend and the full marshaled solutions — every
// net's polylines, not just the summary metrics — must be
// byte-identical. The micro-level equivalence tests live next to the
// queue in internal/router; this one covers the macro behavior the
// paper's tables depend on.

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/coloring"
	"repro/internal/router"
)

func TestBucketHeapIdenticalScaledSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("routes the scaled suite twice, skipped in -short")
	}
	for _, c := range ScaledSuite(6) {
		spec := RunSpec{
			Scheme:      coloring.SIM,
			ConsiderDVI: true,
			ConsiderTPL: true,
			Method:      NoDVI,
		}

		spec.Queue = router.BucketQueue
		rowB, artB, err := Run(Generate(c), spec)
		if err != nil {
			t.Fatalf("%s (bucket): %v", c.Name, err)
		}
		spec.Queue = router.HeapQueue
		rowH, artH, err := Run(Generate(c), spec)
		if err != nil {
			t.Fatalf("%s (heap): %v", c.Name, err)
		}

		// Timing fields differ run to run by construction; the solution
		// metrics must not.
		if rowB.WL != rowH.WL || rowB.Vias != rowH.Vias || rowB.Routability != rowH.Routability {
			t.Fatalf("%s: metrics differ: bucket wl=%d vias=%d r=%v, heap wl=%d vias=%d r=%v",
				c.Name, rowB.WL, rowB.Vias, rowB.Routability, rowH.WL, rowH.Vias, rowH.Routability)
		}
		solB, err := json.Marshal(artB.Router.Routes())
		if err != nil {
			t.Fatalf("%s: marshal bucket solution: %v", c.Name, err)
		}
		solH, err := json.Marshal(artH.Router.Routes())
		if err != nil {
			t.Fatalf("%s: marshal heap solution: %v", c.Name, err)
		}
		if !bytes.Equal(solB, solH) {
			t.Fatalf("%s: marshaled solutions differ between queue backends (%d vs %d bytes)",
				c.Name, len(solB), len(solH))
		}
		t.Logf("%s: %d nets byte-identical across backends (wl=%d vias=%d)",
			c.Name, len(artB.Router.Routes()), rowB.WL, rowB.Vias)
	}
}
