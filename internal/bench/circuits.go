// Package bench defines the benchmark suite and the experiment harness
// that regenerates every table of the paper's evaluation (§IV).
//
// The paper evaluates on six circuits from PARR [18] (Table I), which
// were never released. This package generates synthetic placed
// netlists with the same net counts and grid sizes, pin-count and
// net-span distributions chosen so that routed wirelength per net and
// via density land in the range the paper reports (≈21 tracks and
// ≈1.0–1.2 vias per two-pin connection). Circuits are deterministic
// given the seed, so results are reproducible run to run.
package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// Circuit describes one benchmark's shape (Table I row).
type Circuit struct {
	Name string
	Nets int
	W, H int
	Seed int64
	// MaxPins, when positive, replaces the default 2-heavy pin-count
	// distribution with a uniform draw over [2, MaxPins] — the
	// multi-pin stress shape. Zero keeps the standard-cell-like
	// distribution (2: 60%, 3: 25%, 4: 10%, 5: 5%) and leaves every
	// pre-existing suite bit-identical.
	MaxPins int
}

// Suite returns the six circuits of Table I at full size.
func Suite() []Circuit {
	return []Circuit{
		{Name: "ecc", Nets: 1671, W: 436, H: 446, Seed: 101},
		{Name: "efc", Nets: 2219, W: 406, H: 421, Seed: 102},
		{Name: "ctl", Nets: 2706, W: 496, H: 503, Seed: 103},
		{Name: "alu", Nets: 3108, W: 406, H: 408, Seed: 104},
		{Name: "div", Nets: 5813, W: 636, H: 646, Seed: 105},
		{Name: "top", Nets: 22201, W: 1176, H: 1179, Seed: 106},
	}
}

// ScaledSuite shrinks every circuit's dimensions and net count by the
// factor (area scales quadratically, nets with area so density is
// preserved). Used for quick runs and CI; factor 1 returns the full
// suite.
func ScaledSuite(factor int) []Circuit {
	if factor <= 1 {
		return Suite()
	}
	full := Suite()
	out := make([]Circuit, len(full))
	for i, c := range full {
		out[i] = Circuit{
			Name: c.Name + "-s",
			Nets: max(4, c.Nets/(factor*factor)),
			W:    max(24, c.W/factor),
			H:    max(24, c.H/factor),
			Seed: c.Seed,
		}
	}
	return out
}

// TinySuite is a three-circuit miniature used by unit tests and the
// Go benchmarks; small enough for the ILP DVI to finish in seconds.
func TinySuite() []Circuit {
	return []Circuit{
		{Name: "ecc-t", Nets: 26, W: 56, H: 56, Seed: 101},
		{Name: "efc-t", Nets: 34, W: 52, H: 52, Seed: 102},
		{Name: "ctl-t", Nets: 42, W: 62, H: 62, Seed: 103},
	}
}

// TinyMultiPinSuite is the multi-pin counterpart of TinySuite: the
// same three miniatures with pin counts drawn uniformly from [2, 6],
// so Steiner decomposition, trunk sharing and k-pin verification all
// exercise on every circuit. Grids are slightly larger than TinySuite
// to keep the denser pin population routable.
func TinyMultiPinSuite() []Circuit {
	return []Circuit{
		{Name: "ecc-mp", Nets: 22, W: 58, H: 58, Seed: 201, MaxPins: 6},
		{Name: "efc-mp", Nets: 28, W: 56, H: 56, Seed: 202, MaxPins: 6},
		{Name: "ctl-mp", Nets: 36, W: 64, H: 64, Seed: 203, MaxPins: 6},
	}
}

// Generate builds the synthetic placed netlist for a circuit.
//
// Placement model: each net gets a cluster center; pins scatter in a
// span window around it. 80% of nets are short/local, 20% span
// several cluster diameters (the global wiring tail every real design
// has). Pins are globally distinct, as in a legalized placement.
func Generate(c Circuit) *netlist.Netlist {
	rng := rand.New(rand.NewSource(c.Seed))
	nl := &netlist.Netlist{Name: c.Name, W: c.W, H: c.H, NumLayers: 2}
	used := map[geom.Pt]bool{}
	for i := 0; i < c.Nets; i++ {
		n := &netlist.Net{ID: i, Name: fmt.Sprintf("%s_n%d", c.Name, i)}
		cx, cy := rng.Intn(c.W), rng.Intn(c.H)
		var span int
		if rng.Float64() < 0.8 {
			span = 3 + rng.Intn(10)
		} else {
			span = 12 + rng.Intn(28)
		}
		pins := pickPinCount(rng, c.MaxPins)
		for tries := 0; len(n.Pins) < pins && tries < 4000; tries++ {
			p := geom.XY(
				clampInt(cx+rng.Intn(2*span+1)-span, 0, c.W-1),
				clampInt(cy+rng.Intn(2*span+1)-span, 0, c.H-1),
			)
			if !used[p] {
				used[p] = true
				n.Pins = append(n.Pins, p)
			}
		}
		if len(n.Pins) < 2 {
			// Pathologically crowded cluster: fall back to anywhere.
			for len(n.Pins) < 2 {
				p := geom.XY(rng.Intn(c.W), rng.Intn(c.H))
				if !used[p] {
					used[p] = true
					n.Pins = append(n.Pins, p)
				}
			}
		}
		nl.Nets = append(nl.Nets, n)
	}
	if err := nl.Validate(); err != nil {
		panic(fmt.Sprintf("bench: generated invalid netlist: %v", err))
	}
	return nl
}

// pickPinCount draws the net's pin count. With maxPins > 0 it draws
// uniformly from [2, maxPins]; otherwise from the 2-heavy distribution
// (2: 60%, 3: 25%, 4: 10%, 5: 5%) matching typical standard-cell
// netlists.
func pickPinCount(rng *rand.Rand, maxPins int) int {
	if maxPins > 0 {
		if maxPins < 2 {
			maxPins = 2
		}
		return 2 + rng.Intn(maxPins-1)
	}
	switch r := rng.Float64(); {
	case r < 0.60:
		return 2
	case r < 0.85:
		return 3
	case r < 0.95:
		return 4
	default:
		return 5
	}
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
