package bench

// Steady-state allocation accounting for the arena path: a worker
// routing the same-shaped jobs back to back must allocate at least an
// order of magnitude less per job than the allocate-everything-fresh
// path. The companion identity tests live in internal/router; this one
// pins the memory claim of DESIGN.md §12 at the flow level.

import (
	"context"
	"testing"

	"repro/internal/coloring"
	"repro/internal/router"
)

func TestArenaAllocReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting, skipped in -short")
	}
	nl := Generate(TinySuite()[0])
	spec := RunSpec{
		Scheme:      coloring.SIM,
		ConsiderDVI: true,
		ConsiderTPL: true,
		Method:      NoDVI, // routing-only: the claim is about the router's arena
	}
	ctx := context.Background()

	cold := testing.AllocsPerRun(3, func() {
		if _, _, err := RunContext(ctx, nl, spec); err != nil {
			t.Fatal(err)
		}
	})

	arena := router.NewArena()
	warmup, art, err := RunContextArena(ctx, nl, spec, arena)
	if err != nil {
		t.Fatal(err)
	}
	arena.Release(art.Router)
	warm := testing.AllocsPerRun(3, func() {
		row, art, err := RunContextArena(ctx, nl, spec, arena)
		if err != nil {
			t.Fatal(err)
		}
		if row.WL != warmup.WL || row.Vias != warmup.Vias {
			t.Fatalf("recycled run changed the solution: wl %d→%d vias %d→%d",
				warmup.WL, row.WL, warmup.Vias, row.Vias)
		}
		arena.Release(art.Router)
	})

	t.Logf("allocs per routed job: fresh %.0f, arena %.0f (%.1fx reduction)", cold, warm, cold/warm)
	if warm*10 > cold {
		t.Fatalf("arena path allocates %.0f per job vs %.0f fresh — less than the promised 10x reduction", warm, cold)
	}
}
