package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/coloring"
	"repro/internal/dvi"
	"repro/internal/netlist"
	"repro/internal/router"
)

// DVIMethod selects the post-routing TPL-aware DVI solver.
type DVIMethod uint8

const (
	// ILPDVI solves the exact formulation C1–C8 (§III-E).
	ILPDVI DVIMethod = iota
	// HeurDVI runs the fast Algorithm 3 heuristic.
	HeurDVI
	// NoDVI skips post-routing DVI (routing-only measurements).
	NoDVI
)

// RunSpec is one experiment configuration: a routing setup plus a
// post-routing DVI method.
type RunSpec struct {
	Scheme      coloring.SADPType
	ConsiderDVI bool
	ConsiderTPL bool
	// Params defaults to router.DefaultParams when zero.
	Params router.Params
	Method DVIMethod
	// ILPTimeLimit bounds the exact solve (0 = 10 minutes).
	ILPTimeLimit time.Duration
	// Workers bounds the intra-router parallelism (router.Config
	// Workers); routing output is identical for any value.
	Workers int
}

// Row is one table line: the metrics the paper reports per circuit.
type Row struct {
	CKT  string
	WL   int
	Vias int
	// RouteCPU is the detailed routing time ("CPU" in Tables III–V).
	RouteCPU time.Duration
	// DVICPU is the post-routing DVI time ("CPU" in Tables VI/VII).
	DVICPU time.Duration
	// DV is the dead via count after post-routing DVI.
	DV int
	// UV is the uncolorable via count in the DVI solution.
	UV int
	// Routability is 1.0 on success (the paper reports 100%
	// everywhere and so do we; kept for honesty).
	Routability float64
}

// Artifacts exposes the solver state for further analysis (examples,
// extra validation in tests).
type Artifacts struct {
	Router   *router.Router
	Instance *dvi.Instance
	Solution *dvi.Solution
}

// Run routes the netlist under the spec and solves post-routing DVI.
func Run(nl *netlist.Netlist, spec RunSpec) (Row, *Artifacts, error) {
	cfg := router.Config{
		Scheme:      coloring.Scheme{Type: spec.Scheme},
		ConsiderDVI: spec.ConsiderDVI,
		ConsiderTPL: spec.ConsiderTPL,
		Params:      spec.Params,
		Workers:     spec.Workers,
	}
	rt, err := router.New(nl, cfg)
	if err != nil {
		return Row{}, nil, err
	}
	start := time.Now()
	if err := rt.Run(); err != nil {
		return Row{}, nil, fmt.Errorf("bench: routing %s: %w", nl.Name, err)
	}
	routeCPU := time.Since(start)
	st := rt.Stats()
	row := Row{
		CKT:         nl.Name,
		WL:          st.Wirelength,
		Vias:        st.Vias,
		RouteCPU:    routeCPU,
		Routability: st.Routability,
	}
	art := &Artifacts{Router: rt}
	if spec.Method == NoDVI {
		return row, art, nil
	}

	in := dvi.NewInstance(rt.Grid(), rt.Routes())
	art.Instance = in
	dviStart := time.Now()
	var sol *dvi.Solution
	switch spec.Method {
	case ILPDVI:
		limit := spec.ILPTimeLimit
		if limit == 0 {
			limit = 10 * time.Minute
		}
		sol, err = in.SolveILP(dvi.ILPOptions{TimeLimit: limit})
		if err != nil {
			return Row{}, nil, fmt.Errorf("bench: ILP DVI on %s: %w", nl.Name, err)
		}
	case HeurDVI:
		sol = in.SolveHeuristic(dvi.DefaultHeurParams())
	default:
		return Row{}, nil, fmt.Errorf("bench: unknown DVI method %d", spec.Method)
	}
	row.DVICPU = time.Since(dviStart)
	if err := sol.Validate(in); err != nil {
		return Row{}, nil, fmt.Errorf("bench: invalid DVI solution on %s: %w", nl.Name, err)
	}
	art.Solution = sol
	row.DV = sol.DeadVias
	row.UV = sol.Uncolorable
	return row, art, nil
}

// RunAll generates and runs every circuit under the spec, routing up
// to workers circuits concurrently (each circuit's flow is itself
// deterministic, and rows are returned in circuit order regardless of
// completion order, so the result is identical for any worker count).
// The first error in circuit order wins.
func RunAll(circuits []Circuit, spec RunSpec, workers int) ([]Row, error) {
	if workers <= 0 {
		workers = 1
	}
	rows := make([]Row, len(circuits))
	errs := make([]error, len(circuits))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, c := range circuits {
		wg.Add(1)
		go func(i int, c Circuit) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rows[i], _, errs[i] = Run(Generate(c), spec)
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}
