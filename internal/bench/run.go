package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/coloring"
	"repro/internal/dvi"
	"repro/internal/netlist"
	"repro/internal/router"
	"repro/internal/verify"
)

// DVIMethod selects the post-routing TPL-aware DVI solver.
type DVIMethod uint8

const (
	// ILPDVI solves the exact formulation C1–C8 (§III-E).
	ILPDVI DVIMethod = iota
	// HeurDVI runs the fast Algorithm 3 heuristic.
	HeurDVI
	// NoDVI skips post-routing DVI (routing-only measurements).
	NoDVI
)

func (m DVIMethod) String() string {
	switch m {
	case ILPDVI:
		return "ilp"
	case HeurDVI:
		return "heur"
	case NoDVI:
		return "none"
	}
	return fmt.Sprintf("DVIMethod(%d)", uint8(m))
}

// ParseDVIMethod reads a solver name: "ilp", "heur" or "none".
func ParseDVIMethod(s string) (DVIMethod, error) {
	switch strings.ToLower(s) {
	case "ilp":
		return ILPDVI, nil
	case "heur":
		return HeurDVI, nil
	case "none":
		return NoDVI, nil
	}
	return NoDVI, fmt.Errorf("unknown DVI method %q (want ilp, heur or none)", s)
}

// MarshalJSON encodes the method by name so RunSpec doubles as a
// human-readable wire format.
func (m DVIMethod) MarshalJSON() ([]byte, error) {
	switch m {
	case ILPDVI, HeurDVI, NoDVI:
		return json.Marshal(m.String())
	}
	return nil, fmt.Errorf("cannot marshal %v", m)
}

// UnmarshalJSON accepts the method name or the raw numeric value.
func (m *DVIMethod) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := ParseDVIMethod(s)
		if err != nil {
			return err
		}
		*m = v
		return nil
	}
	var n uint8
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("DVI method: want \"ilp\", \"heur\", \"none\" or 0-2, got %s", b)
	}
	if n > uint8(NoDVI) {
		return fmt.Errorf("DVI method: numeric value %d out of range", n)
	}
	*m = DVIMethod(n)
	return nil
}

// RunSpec is one experiment configuration: a routing setup plus a
// post-routing DVI method. It is also the service/CLI wire format
// (internal/service/api), hence the JSON tags; durations travel as
// nanosecond integers.
type RunSpec struct {
	Scheme      coloring.SADPType `json:"scheme"`
	ConsiderDVI bool              `json:"consider_dvi"`
	ConsiderTPL bool              `json:"consider_tpl"`
	// Params defaults to router.DefaultParams when zero.
	Params router.Params `json:"params"`
	Method DVIMethod     `json:"method"`
	// ILPTimeLimit bounds the exact solve (0 = 10 minutes).
	ILPTimeLimit time.Duration `json:"ilp_time_limit,omitempty"`
	// ILPNodeLimit caps branch-and-bound nodes per component (0 = no
	// cap). Unlike the wall-clock limit it is deterministic: the same
	// instance and limit yield the same solution on any machine, which
	// is what the golden regression test pins down.
	ILPNodeLimit int64 `json:"ilp_node_limit,omitempty"`
	// TPLBudget bounds the wall-clock time of the TPL violation-removal
	// phase. It only takes effect with Degrade set: on expiry the phase
	// returns its congestion-free best-so-far solution and reports the
	// remaining FVPs instead of failing. Zero means no phase budget.
	TPLBudget time.Duration `json:"tpl_budget,omitempty"`
	// Degrade enables graceful degradation on budget expiry: the TPL
	// phase degrades per TPLBudget above, and an ILP DVI solve that
	// hits its time limit (or has no time left) falls back to the
	// warm-start heuristic solution instead of the run failing. Each
	// degradation step taken is recorded in Artifacts.Degraded. The
	// paper itself frames the Algorithm 3 heuristic as the fast
	// alternative to the exact ILP (~500–670× faster at a small DV/UV
	// cost), so the fallback is semantically principled.
	Degrade bool `json:"degrade,omitempty"`
	// Queue selects the search's priority-queue backend
	// (router.Config.Queue). Output is bit-identical between backends;
	// the knob exists for differential testing. Zero/absent = the
	// default Dial bucket queue.
	Queue router.QueueKind `json:"queue,omitempty"`
	// Topology selects the multi-pin net decomposition
	// (router.Config.Topology). Zero/absent = the Steiner tree
	// generator; "star" restores the legacy greedy order. Unlike Queue
	// this changes routed geometry on nets with three or more pins.
	Topology router.TopologyKind `json:"topology,omitempty"`
	// Workers bounds the intra-router parallelism (router.Config
	// Workers); routing output is identical for any value.
	Workers int `json:"workers,omitempty"`
	// Seed drives deterministic tie-breaking; unlike Workers it
	// changes routing output.
	Seed int64 `json:"seed,omitempty"`
	// Verify re-checks the finished flow with the independent
	// internal/verify checker; the report lands in Artifacts.Verify.
	// Verification never alters Row, only the verdict.
	Verify bool `json:"verify,omitempty"`
	// IncludeSolution embeds the marshaled routed solution (every net's
	// polylines) in the service result. The solution bytes are a pure
	// function of the input and spec — unlike the CPU-time fields of Row
	// they are bit-identical run to run, which is what the distributed
	// differential e2e byte-compares across cluster topologies.
	IncludeSolution bool `json:"include_solution,omitempty"`
}

// Row is one table line: the metrics the paper reports per circuit.
// Shared with the serving wire format, like RunSpec.
type Row struct {
	CKT  string `json:"ckt"`
	WL   int    `json:"wl"`
	Vias int    `json:"vias"`
	// RouteCPU is the detailed routing time ("CPU" in Tables III–V).
	RouteCPU time.Duration `json:"route_cpu_ns"`
	// DVICPU is the post-routing DVI time ("CPU" in Tables VI/VII).
	DVICPU time.Duration `json:"dvi_cpu_ns"`
	// DV is the dead via count after post-routing DVI.
	DV int `json:"dv"`
	// UV is the uncolorable via count in the DVI solution.
	UV int `json:"uv"`
	// Routability is 1.0 on success (the paper reports 100%
	// everywhere and so do we; kept for honesty).
	Routability float64 `json:"routability"`
}

// Artifacts exposes the solver state for further analysis (examples,
// extra validation in tests).
type Artifacts struct {
	Router   *router.Router
	Instance *dvi.Instance
	Solution *dvi.Solution
	// Degraded lists the graceful-degradation steps taken under
	// RunSpec.Degrade ("tpl-rr-timeout", "dvi-ilp-timeout"); empty on
	// a full-fidelity run.
	Degraded []string
	// RemainingFVPs counts FVP windows left by a degraded TPL phase.
	RemainingFVPs int
	// Verify is the independent checker's report when RunSpec.Verify
	// was set (nil otherwise).
	Verify *verify.Report
}

// Run routes the netlist under the spec and solves post-routing DVI.
func Run(nl *netlist.Netlist, spec RunSpec) (Row, *Artifacts, error) {
	return RunContext(context.Background(), nl, spec)
}

// RunContext is Run bounded by a context: cancellation aborts the
// router cooperatively at its next iteration boundary, and a deadline
// additionally caps the DVI ILP's time limit. The returned error wraps
// ctx.Err() when the context caused the abort.
func RunContext(ctx context.Context, nl *netlist.Netlist, spec RunSpec) (Row, *Artifacts, error) {
	return RunContextArena(ctx, nl, spec, nil)
}

// RunContextArena is RunContext with a router memory arena (may be
// nil): the router reuses the arena's recycled allocations when grid
// shapes match. The caller decides when the returned artifacts are no
// longer referenced and releases them with arena.Release(art.Router);
// this function never releases on its own. Output is bit-identical
// with or without an arena.
func RunContextArena(ctx context.Context, nl *netlist.Netlist, spec RunSpec, arena *router.Arena) (Row, *Artifacts, error) {
	cfg := router.Config{
		Scheme:      coloring.Scheme{Type: spec.Scheme},
		ConsiderDVI: spec.ConsiderDVI,
		ConsiderTPL: spec.ConsiderTPL,
		Params:      spec.Params,
		Queue:       spec.Queue,
		Topology:    spec.Topology,
		Workers:     spec.Workers,
		Seed:        spec.Seed,
		Arena:       arena,
		Cancel:      ctx.Done(),
	}
	if spec.Degrade {
		cfg.TPLBudget = spec.TPLBudget
	}
	rt, err := router.New(nl, cfg)
	if err != nil {
		return Row{}, nil, err
	}
	start := time.Now() //sadplint:ignore detclock CPU-time metric for the report table, not an algorithm input
	if err := rt.Run(); err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return Row{}, nil, fmt.Errorf("bench: routing %s: %w", nl.Name, ctxErr)
		}
		return Row{}, nil, fmt.Errorf("bench: routing %s: %w", nl.Name, err)
	}
	routeCPU := time.Since(start) //sadplint:ignore detclock CPU-time metric for the report table, not an algorithm input
	st := rt.Stats()
	row := Row{
		CKT:         nl.Name,
		WL:          st.Wirelength,
		Vias:        st.Vias,
		RouteCPU:    routeCPU,
		Routability: st.Routability,
	}
	art := &Artifacts{Router: rt}
	if st.TPLDegraded {
		art.Degraded = append(art.Degraded, "tpl-rr-timeout")
		art.RemainingFVPs = st.RemainingFVPs
	}
	if spec.Method == NoDVI {
		runVerify(nl, spec, art)
		return row, art, nil
	}

	if err := ctx.Err(); err != nil {
		return Row{}, nil, fmt.Errorf("bench: DVI on %s: %w", nl.Name, err)
	}
	in := dvi.NewInstance(rt.Grid(), rt.Routes())
	art.Instance = in
	dviStart := time.Now() //sadplint:ignore detclock CPU-time metric for the report table, not an algorithm input
	var sol *dvi.Solution
	switch spec.Method {
	case ILPDVI:
		limit := spec.ILPTimeLimit
		if limit == 0 {
			limit = 10 * time.Minute
		}
		// A context deadline caps the ILP budget so a per-job timeout
		// reaches the only unbounded solver in the flow.
		if dl, ok := ctx.Deadline(); ok {
			//sadplint:ignore detclock converts the caller's explicit ctx deadline into the ILP budget; no deadline, no clock read
			if rem := time.Until(dl); rem < limit {
				limit = rem
			}
			if limit <= 0 {
				limit = time.Millisecond // expired between checks: fail fast, not unbounded
			}
		}
		switch {
		case spec.Degrade && limit <= time.Millisecond:
			// No time left for the exact solve (not even to build the
			// model): degrade straight to the paper's fast heuristic.
			sol = in.SolveHeuristic(dvi.DefaultHeurParams())
			art.Degraded = append(art.Degraded, "dvi-ilp-timeout")
		default:
			sol, err = in.SolveILP(dvi.ILPOptions{TimeLimit: limit, NodeLimit: spec.ILPNodeLimit})
			switch {
			case err != nil && spec.Degrade:
				// The exact solve failed to produce any usable solution
				// within its limits; the heuristic is the degraded answer.
				sol = in.SolveHeuristic(dvi.DefaultHeurParams())
				art.Degraded = append(art.Degraded, "dvi-ilp-timeout")
			case err != nil:
				return Row{}, nil, fmt.Errorf("bench: ILP DVI on %s: %w", nl.Name, err)
			case sol.LimitHit && spec.Degrade:
				// The time limit expired mid-proof: the incumbent (never
				// worse than the warm-start heuristic) stands, flagged.
				art.Degraded = append(art.Degraded, "dvi-ilp-timeout")
			}
		}
	case HeurDVI:
		sol = in.SolveHeuristic(dvi.DefaultHeurParams())
	default:
		return Row{}, nil, fmt.Errorf("bench: unknown DVI method %d", spec.Method)
	}
	row.DVICPU = time.Since(dviStart) //sadplint:ignore detclock CPU-time metric for the report table, not an algorithm input
	if err := sol.Validate(in); err != nil {
		return Row{}, nil, fmt.Errorf("bench: invalid DVI solution on %s: %w", nl.Name, err)
	}
	art.Solution = sol
	row.DV = sol.DeadVias
	row.UV = sol.Uncolorable
	runVerify(nl, spec, art)
	return row, art, nil
}

// runVerify attaches the independent checker's report to the
// artifacts when the spec requests verification. Violations do not
// fail the run: callers decide whether a bad verdict is fatal (the
// CLI exits non-zero, the service reports it in the job result, the
// tests assert a clean report). On a degraded TPL phase the checker's
// via-manufacturability rules are relaxed — remaining FVPs are the
// declared, counted cost of the degradation — while geometry,
// connectivity, shorts and DVI constraints stay fully enforced.
func runVerify(nl *netlist.Netlist, spec RunSpec, art *Artifacts) {
	if !spec.Verify {
		return
	}
	tplDegraded := art.Router.Stats().TPLDegraded
	art.Verify = verify.Solution(nl, art.Router.Routes(), art.Instance, art.Solution, verify.Options{
		SADP:     spec.Scheme,
		CheckTPL: spec.ConsiderTPL && !tplDegraded,
	})
}

// RunAll generates and runs every circuit under the spec, routing up
// to workers circuits concurrently (each circuit's flow is itself
// deterministic, and rows are returned in circuit order regardless of
// completion order, so the result is identical for any worker count).
// The first error in circuit order wins.
func RunAll(circuits []Circuit, spec RunSpec, workers int) ([]Row, error) {
	if workers <= 0 {
		workers = 1
	}
	rows := make([]Row, len(circuits))
	errs := make([]error, len(circuits))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, c := range circuits {
		wg.Add(1)
		go func(i int, c Circuit) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rows[i], _, errs[i] = Run(Generate(c), spec)
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}
