package bench

import (
	"testing"
	"time"

	"repro/internal/coloring"
)

func hasStep(steps []string, want string) bool {
	for _, s := range steps {
		if s == want {
			return true
		}
	}
	return false
}

// An already-expired TPL budget degrades the violation-removal phase:
// the run still succeeds, is congestion-free (the verifier's geometry
// and short checks stay fully enforced), reports the remaining FVPs
// honestly, and is deterministic across runs.
func TestDegradeTPLBudget(t *testing.T) {
	nl := Generate(TinySuite()[0])
	spec := RunSpec{
		Scheme: coloring.SIM, ConsiderDVI: true, ConsiderTPL: true,
		Method: HeurDVI, Degrade: true, TPLBudget: time.Nanosecond, Verify: true,
	}
	row, art, err := Run(nl, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !hasStep(art.Degraded, "tpl-rr-timeout") {
		t.Fatalf("Degraded = %v, want tpl-rr-timeout", art.Degraded)
	}
	if art.Verify == nil {
		t.Fatal("Verify requested but no report attached")
	}
	if err := art.Verify.Err(); err != nil {
		t.Fatalf("verifier rejects the degraded solution: %v", err)
	}
	if row.Routability != 1 {
		t.Fatalf("routability %v in degraded run", row.Routability)
	}
	if st := art.Router.Stats(); !st.TPLDegraded || st.RemainingFVPs != art.RemainingFVPs {
		t.Fatalf("stats %+v inconsistent with artifacts (remaining %d)", st, art.RemainingFVPs)
	}

	// Determinism: the degraded path takes no timing-dependent branch
	// beyond the (always-expired) deadline, so a second run is
	// identical.
	row2, art2, err := Run(nl, spec)
	if err != nil {
		t.Fatal(err)
	}
	row.RouteCPU, row.DVICPU, row2.RouteCPU, row2.DVICPU = 0, 0, 0, 0
	if row != row2 || art.RemainingFVPs != art2.RemainingFVPs {
		t.Fatalf("degraded runs differ:\n%+v (rem %d)\n%+v (rem %d)",
			row, art.RemainingFVPs, row2, art2.RemainingFVPs)
	}
}

// An exhausted ILP budget under Degrade falls back to the paper's
// heuristic instead of failing, flags the result, and matches a plain
// heuristic run exactly.
func TestDegradeILPTimeLimit(t *testing.T) {
	nl := Generate(TinySuite()[0])
	spec := RunSpec{
		Scheme: coloring.SIM, ConsiderDVI: true, ConsiderTPL: true,
		Method: ILPDVI, ILPTimeLimit: time.Nanosecond, Degrade: true, Verify: true,
	}
	row, art, err := Run(nl, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !hasStep(art.Degraded, "dvi-ilp-timeout") {
		t.Fatalf("Degraded = %v, want dvi-ilp-timeout", art.Degraded)
	}
	if err := art.Verify.Err(); err != nil {
		t.Fatalf("verifier rejects the degraded solution: %v", err)
	}

	heur := spec
	heur.Method = HeurDVI
	heur.Degrade = false
	heur.ILPTimeLimit = 0
	hrow, _, err := Run(nl, heur)
	if err != nil {
		t.Fatal(err)
	}
	if row.DV != hrow.DV || row.UV != hrow.UV {
		t.Fatalf("degraded ILP row DV/UV %d/%d differs from heuristic %d/%d",
			row.DV, row.UV, hrow.DV, hrow.UV)
	}
}

// Without the Degrade flag the budgets are inert: the run must behave
// exactly like an unbudgeted one and report no degradation.
func TestBudgetsInertWithoutDegrade(t *testing.T) {
	nl := Generate(TinySuite()[0])
	spec := RunSpec{
		Scheme: coloring.SIM, ConsiderDVI: true, ConsiderTPL: true,
		Method: HeurDVI, TPLBudget: time.Nanosecond, Verify: true,
	}
	_, art, err := Run(nl, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Degraded) != 0 {
		t.Fatalf("Degraded = %v without the Degrade flag", art.Degraded)
	}
	if art.Router.Stats().TPLDegraded {
		t.Fatal("TPL phase degraded without the Degrade flag")
	}
	if err := art.Verify.Err(); err != nil {
		t.Fatal(err)
	}
}
