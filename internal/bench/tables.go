package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/coloring"
	"repro/internal/dvi"
	"repro/internal/router"
)

// Table is a formatted experiment table mirroring one of the paper's.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func secs(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }

// Table1 reports benchmark statistics (paper Table I).
func Table1(circuits []Circuit) *Table {
	t := &Table{
		Title:  "Table I: Statistics of benchmarks",
		Header: []string{"Benchmark", "#Nets", "Grid size", "#Pins"},
	}
	for _, c := range circuits {
		nl := Generate(c)
		t.Rows = append(t.Rows, []string{
			c.Name,
			fmt.Sprint(len(nl.Nets)),
			fmt.Sprintf("%dx%d", nl.W, nl.H),
			fmt.Sprint(nl.NumPins()),
		})
	}
	return t
}

// Table2 reports the parameter values (paper Table II).
func Table2() *Table {
	p := router.DefaultParams()
	h := dvi.DefaultHeurParams()
	return &Table{
		Title:  "Table II: Parameter values in the experiments",
		Header: []string{"parameter", "alpha", "AMC", "beta", "gamma", "delta", "lambda", "mu"},
		Rows: [][]string{{
			"value",
			fmt.Sprint(p.Alpha), fmt.Sprint(p.AMC), fmt.Sprint(p.Beta), fmt.Sprint(p.Gamma),
			fmt.Sprint(h.Delta), fmt.Sprint(h.Lambda), fmt.Sprint(h.Mu),
		}},
	}
}

// configColumns are the four experiment groups of Tables III/IV.
var configColumns = []struct {
	label    string
	dvi, tpl bool
}{
	{"baseline", false, false},
	{"+DVI", true, false},
	{"+TPL", false, true},
	{"+DVI+TPL", true, true},
}

// TableIIIIV runs the four-configuration comparison for one SADP type
// (paper Tables III and IV). Post-routing DVI uses the ILP for a fair
// dead-via comparison, as in the paper.
func TableIIIIV(circuits []Circuit, scheme coloring.SADPType, ilpLimit time.Duration) (*Table, error) {
	num := "III (SIM)"
	if scheme == coloring.SID {
		num = "IV (SID)"
	}
	t := &Table{
		Title:  fmt.Sprintf("Table %s: SADP-aware detailed routing considering DVI and via layer TPL", num),
		Header: []string{"CKT", "config", "WL", "#Vias", "CPU(s)", "#DV", "#UV"},
	}
	sums := make([]struct {
		wl, vias, dv, uv int
		cpu              time.Duration
	}, len(configColumns))
	for _, c := range circuits {
		nl := Generate(c)
		for ci, cc := range configColumns {
			row, _, err := Run(nl, RunSpec{
				Scheme:       scheme,
				ConsiderDVI:  cc.dvi,
				ConsiderTPL:  cc.tpl,
				Method:       ILPDVI,
				ILPTimeLimit: ilpLimit,
			})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				c.Name, cc.label,
				fmt.Sprint(row.WL), fmt.Sprint(row.Vias), secs(row.RouteCPU),
				fmt.Sprint(row.DV), fmt.Sprint(row.UV),
			})
			sums[ci].wl += row.WL
			sums[ci].vias += row.Vias
			sums[ci].dv += row.DV
			sums[ci].uv += row.UV
			sums[ci].cpu += row.RouteCPU
		}
	}
	n := float64(len(circuits))
	base := sums[0]
	for ci, cc := range configColumns {
		s := sums[ci]
		t.Rows = append(t.Rows, []string{
			"Ave.", cc.label,
			fmt.Sprintf("%.1f", float64(s.wl)/n), fmt.Sprintf("%.1f", float64(s.vias)/n),
			fmt.Sprintf("%.2f", s.cpu.Seconds()/n),
			fmt.Sprintf("%.1f", float64(s.dv)/n), fmt.Sprintf("%.1f", float64(s.uv)/n),
		})
	}
	for ci, cc := range configColumns {
		s := sums[ci]
		nor := func(v, b int) string {
			if b == 0 {
				return "-"
			}
			return fmt.Sprintf("%.2f", float64(v)/float64(b))
		}
		t.Rows = append(t.Rows, []string{
			"Nor.", cc.label,
			nor(s.wl, base.wl), nor(s.vias, base.vias),
			nor(int(s.cpu), int(base.cpu)),
			nor(s.dv, base.dv), nor(s.uv, base.uv),
		})
	}
	return t, nil
}

// TableV compares the conference-version parameters against the
// enlarged journal parameters (paper Table V), both with DVI and via
// layer TPL consideration under SIM.
func TableV(circuits []Circuit, ilpLimit time.Duration) (*Table, error) {
	t := &Table{
		Title:  "Table V: enlarged cost-assignment parameters vs conference version [36] (SIM, DVI+TPL)",
		Header: []string{"CKT", "params", "WL", "#Vias", "CPU(s)", "#DV", "#UV"},
	}
	specs := []struct {
		label  string
		params router.Params
	}{
		{"[36]", router.ConferenceParams()},
		{"this", router.DefaultParams()},
	}
	var sums [2]struct {
		wl, dv int
		cpu    time.Duration
	}
	for _, c := range circuits {
		nl := Generate(c)
		for si, sp := range specs {
			row, _, err := Run(nl, RunSpec{
				Scheme: coloring.SIM, ConsiderDVI: true, ConsiderTPL: true,
				Params: sp.params, Method: ILPDVI, ILPTimeLimit: ilpLimit,
			})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				c.Name, sp.label,
				fmt.Sprint(row.WL), fmt.Sprint(row.Vias), secs(row.RouteCPU),
				fmt.Sprint(row.DV), fmt.Sprint(row.UV),
			})
			sums[si].wl += row.WL
			sums[si].dv += row.DV
			sums[si].cpu += row.RouteCPU
		}
	}
	if sums[0].dv > 0 {
		t.Rows = append(t.Rows, []string{
			"Nor.", "this/[36]",
			fmt.Sprintf("%.2f", float64(sums[1].wl)/float64(sums[0].wl)), "-",
			fmt.Sprintf("%.2f", float64(sums[1].cpu)/float64(sums[0].cpu)),
			fmt.Sprintf("%.2f", float64(sums[1].dv)/float64(sums[0].dv)), "-",
		})
	}
	return t, nil
}

// TableVIVII compares the ILP and heuristic TPL-aware DVI solvers on
// routing solutions produced with full consideration (paper Tables VI
// and VII).
func TableVIVII(circuits []Circuit, scheme coloring.SADPType, ilpLimit time.Duration) (*Table, error) {
	num := "VI (SIM)"
	if scheme == coloring.SID {
		num = "VII (SID)"
	}
	t := &Table{
		Title:  fmt.Sprintf("Table %s: TPL-aware DVI, ILP vs heuristic", num),
		Header: []string{"CKT", "ILP #DV", "ILP #UV", "ILP CPU(s)", "Heur #DV", "Heur #UV", "Heur CPU(s)"},
	}
	var ilpDV, heurDV int
	var ilpCPU, heurCPU time.Duration
	for _, c := range circuits {
		nl := Generate(c)
		ilpRow, _, err := Run(nl, RunSpec{
			Scheme: scheme, ConsiderDVI: true, ConsiderTPL: true,
			Method: ILPDVI, ILPTimeLimit: ilpLimit,
		})
		if err != nil {
			return nil, err
		}
		heurRow, _, err := Run(nl, RunSpec{
			Scheme: scheme, ConsiderDVI: true, ConsiderTPL: true,
			Method: HeurDVI,
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			c.Name,
			fmt.Sprint(ilpRow.DV), fmt.Sprint(ilpRow.UV), secs(ilpRow.DVICPU),
			fmt.Sprint(heurRow.DV), fmt.Sprint(heurRow.UV), secs(heurRow.DVICPU),
		})
		ilpDV += ilpRow.DV
		heurDV += heurRow.DV
		ilpCPU += ilpRow.DVICPU
		heurCPU += heurRow.DVICPU
	}
	n := float64(len(circuits))
	t.Rows = append(t.Rows, []string{
		"Ave.",
		fmt.Sprintf("%.1f", float64(ilpDV)/n), "", fmt.Sprintf("%.2f", ilpCPU.Seconds()/n),
		fmt.Sprintf("%.1f", float64(heurDV)/n), "", fmt.Sprintf("%.2f", heurCPU.Seconds()/n),
	})
	if heurDV > 0 && heurCPU > 0 {
		t.Rows = append(t.Rows, []string{
			"Nor.",
			fmt.Sprintf("%.2f", float64(ilpDV)/float64(heurDV)), "",
			fmt.Sprintf("%.2fx", float64(ilpCPU)/float64(heurCPU)),
			"1.00", "", "1.00",
		})
	}
	return t, nil
}
