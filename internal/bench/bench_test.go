package bench

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/coloring"
)

func TestSuiteMatchesTable1(t *testing.T) {
	want := []struct {
		name string
		nets int
		w, h int
	}{
		{"ecc", 1671, 436, 446},
		{"efc", 2219, 406, 421},
		{"ctl", 2706, 496, 503},
		{"alu", 3108, 406, 408},
		{"div", 5813, 636, 646},
		{"top", 22201, 1176, 1179},
	}
	suite := Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d circuits", len(suite))
	}
	for i, w := range want {
		c := suite[i]
		if c.Name != w.name || c.Nets != w.nets || c.W != w.w || c.H != w.h {
			t.Errorf("circuit %d = %+v, want %+v", i, c, w)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c := TinySuite()[0]
	a, b := Generate(c), Generate(c)
	if len(a.Nets) != len(b.Nets) {
		t.Fatal("net counts differ across generations")
	}
	for i := range a.Nets {
		if len(a.Nets[i].Pins) != len(b.Nets[i].Pins) {
			t.Fatalf("net %d pin count differs", i)
		}
		for j := range a.Nets[i].Pins {
			if a.Nets[i].Pins[j] != b.Nets[i].Pins[j] {
				t.Fatalf("net %d pin %d differs", i, j)
			}
		}
	}
}

func TestGeneratePinsDistinct(t *testing.T) {
	nl := Generate(ScaledSuite(8)[0])
	seen := map[[2]int]bool{}
	for _, n := range nl.Nets {
		for _, p := range n.Pins {
			k := [2]int{p.X, p.Y}
			if seen[k] {
				t.Fatalf("duplicate pin at %v", p)
			}
			seen[k] = true
		}
	}
}

func TestScaledSuitePreservesDensity(t *testing.T) {
	full := Suite()[0]
	scaled := ScaledSuite(4)[0]
	fd := float64(full.Nets) / float64(full.W*full.H)
	sd := float64(scaled.Nets) / float64(scaled.W*scaled.H)
	if sd < fd*0.5 || sd > fd*2.0 {
		t.Errorf("density drifted: full %.5f scaled %.5f", fd, sd)
	}
	if ScaledSuite(1)[0].Name != "ecc" {
		t.Error("factor 1 must return the full suite")
	}
}

func TestRunAllMethods(t *testing.T) {
	nl := Generate(TinySuite()[0])
	for _, m := range []DVIMethod{NoDVI, HeurDVI, ILPDVI} {
		row, art, err := Run(nl, RunSpec{
			Scheme: coloring.SIM, ConsiderDVI: true, ConsiderTPL: true,
			Method: m, ILPTimeLimit: time.Minute, Verify: true,
		})
		if err != nil {
			t.Fatalf("method %d: %v", m, err)
		}
		if art.Verify == nil {
			t.Fatalf("method %d: Verify set but no report attached", m)
		}
		if err := art.Verify.Err(); err != nil {
			t.Errorf("method %d: independent verifier rejects the solution: %v", m, err)
		}
		if row.Routability != 1 {
			t.Fatalf("method %d: routability %v", m, row.Routability)
		}
		if m == NoDVI {
			if art.Solution != nil {
				t.Error("NoDVI produced a DVI solution")
			}
			continue
		}
		if art.Solution == nil || row.DV+art.Solution.InsertedCount != len(art.Instance.Vias) {
			t.Errorf("method %d: inconsistent DVI accounting", m)
		}
		if row.UV != 0 {
			t.Errorf("method %d: %d uncolorable vias with TPL consideration", m, row.UV)
		}
	}
}

func TestTable1And2Render(t *testing.T) {
	t1 := Table1(TinySuite())
	if !strings.Contains(t1.String(), "ecc-t") {
		t.Error("Table 1 missing circuit")
	}
	t2 := Table2()
	s := t2.String()
	for _, tok := range []string{"alpha", "8", "4", "1"} {
		if !strings.Contains(s, tok) {
			t.Errorf("Table 2 missing %q", tok)
		}
	}
}

// The headline shapes of the evaluation, on the tiny suite:
// baseline leaves TPL violations, +TPL removes them, +DVI reduces dead
// vias, and the heuristic is close to the ILP with far lower runtime.
func TestEvaluationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full shape check is slow")
	}
	circuits := TinySuite()
	tbl, err := TableIIIIV(circuits, coloring.SIM, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.String()
	if !strings.Contains(s, "baseline") || !strings.Contains(s, "+DVI+TPL") {
		t.Fatalf("table missing config rows:\n%s", s)
	}
	// Parse the Nor. rows: dead vias with +DVI+TPL must improve over
	// baseline, and UV must be 0 for +TPL configs.
	var lines []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, "Nor.") {
			lines = append(lines, l)
		}
	}
	if len(lines) != 4 {
		t.Fatalf("want 4 Nor. rows, got %d:\n%s", len(lines), s)
	}
	// Row order matches configColumns; last column is #UV, second to
	// last #DV.
	full := strings.Fields(lines[3])
	dvRatio := full[len(full)-2]
	if dvRatio == "-" {
		t.Skip("baseline produced no dead vias at this scale")
	}
	ratio, err := strconv.ParseFloat(dvRatio, 64)
	if err != nil {
		t.Fatalf("cannot parse DV ratio %q", dvRatio)
	}
	if ratio >= 1.0 {
		t.Errorf("DVI+TPL dead via ratio %.2f, want < 1.0 (paper: ~0.38)", ratio)
	}
}

// TestRunAllWorkerIndependence: RunAll must return the same rows (up to
// CPU timings) in the same order for any worker count, both for the
// outer per-circuit parallelism and the intra-router Workers knob.
func TestRunAllWorkerIndependence(t *testing.T) {
	circuits := TinySuite()[:2]
	spec := RunSpec{
		Scheme: coloring.SIM, ConsiderDVI: true, ConsiderTPL: true,
		Method: HeurDVI, Verify: true,
	}
	serial, err := RunAll(circuits, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec.Workers = 4
	parallel, err := RunAll(circuits, spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range circuits {
		a, b := serial[i], parallel[i]
		a.RouteCPU, a.DVICPU, b.RouteCPU, b.DVICPU = 0, 0, 0, 0
		if a != b {
			t.Fatalf("circuit %s rows differ:\n%+v\n%+v", circuits[i].Name, a, b)
		}
	}
}
