// Package geom provides the basic geometric vocabulary of the router:
// grid points, rectangles, routing directions, and layers.
//
// The routing grid is a uniform Manhattan grid. Coordinates are integer
// track indices; one grid unit equals one routing track pitch. All
// distances used by the TPL conflict model and by wirelength accounting
// are expressed in these units.
package geom

import "fmt"

// Dir is one of the six routing directions in the 3-D routing grid.
type Dir uint8

// The six routing directions. None marks the absence of a direction
// (for example the incoming direction of a search source).
const (
	None Dir = iota
	East
	West
	North
	South
	Up   // via towards a higher metal layer
	Down // via towards a lower metal layer
)

// NumDirs is the number of distinct Dir values including None.
const NumDirs = 7

var dirNames = [NumDirs]string{"none", "east", "west", "north", "south", "up", "down"}

func (d Dir) String() string {
	if int(d) < len(dirNames) {
		return dirNames[d]
	}
	return fmt.Sprintf("dir(%d)", uint8(d))
}

// Opposite returns the reverse of d. The opposite of None is None.
func (d Dir) Opposite() Dir {
	switch d {
	case East:
		return West
	case West:
		return East
	case North:
		return South
	case South:
		return North
	case Up:
		return Down
	case Down:
		return Up
	}
	return None
}

// Horizontal reports whether d is East or West.
func (d Dir) Horizontal() bool { return d == East || d == West }

// Vertical reports whether d is North or South.
func (d Dir) Vertical() bool { return d == North || d == South }

// Planar reports whether d is one of the four in-plane directions.
func (d Dir) Planar() bool { return d.Horizontal() || d.Vertical() }

// Via reports whether d is Up or Down.
func (d Dir) Via() bool { return d == Up || d == Down }

// Delta returns the (dx, dy, dz) step of the direction.
func (d Dir) Delta() (dx, dy, dz int) {
	switch d {
	case East:
		return 1, 0, 0
	case West:
		return -1, 0, 0
	case North:
		return 0, 1, 0
	case South:
		return 0, -1, 0
	case Up:
		return 0, 0, 1
	case Down:
		return 0, 0, -1
	}
	return 0, 0, 0
}

// PlanarDirs lists the four in-plane directions in a fixed order.
var PlanarDirs = [4]Dir{East, West, North, South}

// Pt is a 2-D grid point on a single layer.
type Pt struct {
	X, Y int
}

// XY is a convenience constructor for Pt.
func XY(x, y int) Pt { return Pt{X: x, Y: y} }

func (p Pt) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Add returns p translated by (dx, dy).
func (p Pt) Add(dx, dy int) Pt { return Pt{p.X + dx, p.Y + dy} }

// Step returns p moved one grid unit in direction d. Via directions
// leave the point unchanged.
func (p Pt) Step(d Dir) Pt {
	dx, dy, _ := d.Delta()
	return Pt{p.X + dx, p.Y + dy}
}

// ManhattanDist returns the L1 distance between p and q.
func (p Pt) ManhattanDist(q Pt) int {
	return abs(p.X-q.X) + abs(p.Y-q.Y)
}

// SqDist returns the squared Euclidean distance between p and q in grid
// units. The TPL same-color via pitch test is SqDist <= 5.
func (p Pt) SqDist(q Pt) int {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// ChebyshevDist returns the L∞ distance between p and q.
func (p Pt) ChebyshevDist(q Pt) int {
	return max(abs(p.X-q.X), abs(p.Y-q.Y))
}

// Pt3 is a 3-D grid point: a 2-D point on a metal layer.
type Pt3 struct {
	X, Y  int
	Layer int
}

// XYL is a convenience constructor for Pt3.
func XYL(x, y, layer int) Pt3 { return Pt3{X: x, Y: y, Layer: layer} }

func (p Pt3) String() string { return fmt.Sprintf("(%d,%d,m%d)", p.X, p.Y, p.Layer) }

// Pt2 returns the in-plane projection of p.
func (p Pt3) Pt2() Pt { return Pt{p.X, p.Y} }

// Step returns p moved one grid unit in direction d, including via
// directions which change the layer.
func (p Pt3) Step(d Dir) Pt3 {
	dx, dy, dz := d.Delta()
	return Pt3{p.X + dx, p.Y + dy, p.Layer + dz}
}

// DirTo returns the direction of the unit step from p to q, or None if
// q is not one grid unit away from p.
func (p Pt3) DirTo(q Pt3) Dir {
	dx, dy, dz := q.X-p.X, q.Y-p.Y, q.Layer-p.Layer
	switch {
	case dx == 1 && dy == 0 && dz == 0:
		return East
	case dx == -1 && dy == 0 && dz == 0:
		return West
	case dx == 0 && dy == 1 && dz == 0:
		return North
	case dx == 0 && dy == -1 && dz == 0:
		return South
	case dx == 0 && dy == 0 && dz == 1:
		return Up
	case dx == 0 && dy == 0 && dz == -1:
		return Down
	}
	return None
}

// Rect is a half-open axis-aligned rectangle of grid points:
// X in [MinX, MaxX], Y in [MinY, MaxY], inclusive on both ends.
type Rect struct {
	MinX, MinY, MaxX, MaxY int
}

// NewRect returns the rectangle spanning the two corner points in any
// order.
func NewRect(a, b Pt) Rect {
	return Rect{
		MinX: min(a.X, b.X), MinY: min(a.Y, b.Y),
		MaxX: max(a.X, b.X), MaxY: max(a.Y, b.Y),
	}
}

func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d..%d,%d]", r.MinX, r.MinY, r.MaxX, r.MaxY)
}

// Contains reports whether p lies inside r (inclusive).
func (r Rect) Contains(p Pt) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Width returns the number of grid columns covered by r.
func (r Rect) Width() int { return r.MaxX - r.MinX + 1 }

// Height returns the number of grid rows covered by r.
func (r Rect) Height() int { return r.MaxY - r.MinY + 1 }

// Area returns the number of grid points covered by r.
func (r Rect) Area() int { return r.Width() * r.Height() }

// Expand grows r by margin grid units on every side and clips the
// result to the bounding rectangle clip.
func (r Rect) Expand(margin int, clip Rect) Rect {
	out := Rect{r.MinX - margin, r.MinY - margin, r.MaxX + margin, r.MaxY + margin}
	return out.Intersect(clip)
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		MinX: min(r.MinX, s.MinX), MinY: min(r.MinY, s.MinY),
		MaxX: max(r.MaxX, s.MaxX), MaxY: max(r.MaxY, s.MaxY),
	}
}

// Intersect returns the overlap of r and s. The result may be empty;
// use Empty to test.
func (r Rect) Intersect(s Rect) Rect {
	return Rect{
		MinX: max(r.MinX, s.MinX), MinY: max(r.MinY, s.MinY),
		MaxX: min(r.MaxX, s.MaxX), MaxY: min(r.MaxY, s.MaxY),
	}
}

// Empty reports whether r contains no grid points.
func (r Rect) Empty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// AddPt returns the smallest rectangle containing r and p.
func (r Rect) AddPt(p Pt) Rect {
	return Rect{
		MinX: min(r.MinX, p.X), MinY: min(r.MinY, p.Y),
		MaxX: max(r.MaxX, p.X), MaxY: max(r.MaxY, p.Y),
	}
}

// BoundingRect returns the bounding box of a non-empty point set.
// It panics on an empty slice.
func BoundingRect(pts []Pt) Rect {
	if len(pts) == 0 {
		panic("geom: BoundingRect of empty point set")
	}
	r := Rect{pts[0].X, pts[0].Y, pts[0].X, pts[0].Y}
	for _, p := range pts[1:] {
		r = r.AddPt(p)
	}
	return r
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
