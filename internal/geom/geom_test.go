package geom

import (
	"testing"
	"testing/quick"
)

func TestDirOpposite(t *testing.T) {
	cases := []struct{ d, want Dir }{
		{East, West}, {West, East}, {North, South}, {South, North},
		{Up, Down}, {Down, Up}, {None, None},
	}
	for _, c := range cases {
		if got := c.d.Opposite(); got != c.want {
			t.Errorf("%v.Opposite() = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestDirOppositeInvolution(t *testing.T) {
	for d := Dir(0); d < NumDirs; d++ {
		if d.Opposite().Opposite() != d {
			t.Errorf("Opposite not an involution for %v", d)
		}
	}
}

func TestDirClassification(t *testing.T) {
	for d := Dir(0); d < NumDirs; d++ {
		h, v, via := d.Horizontal(), d.Vertical(), d.Via()
		n := 0
		for _, b := range []bool{h, v, via} {
			if b {
				n++
			}
		}
		if d == None {
			if n != 0 {
				t.Errorf("None classified as %v/%v/%v", h, v, via)
			}
			continue
		}
		if n != 1 {
			t.Errorf("%v in %d classes, want exactly 1", d, n)
		}
		if d.Planar() != (h || v) {
			t.Errorf("%v Planar() inconsistent", d)
		}
	}
}

func TestDirDeltaRoundTrip(t *testing.T) {
	p := Pt3{5, 7, 2}
	for _, d := range []Dir{East, West, North, South, Up, Down} {
		q := p.Step(d)
		if got := p.DirTo(q); got != d {
			t.Errorf("DirTo(Step(%v)) = %v", d, got)
		}
		if got := q.DirTo(p); got != d.Opposite() {
			t.Errorf("reverse DirTo for %v = %v", d, got)
		}
	}
}

func TestDirToNonAdjacent(t *testing.T) {
	p := Pt3{0, 0, 1}
	for _, q := range []Pt3{{2, 0, 1}, {1, 1, 1}, {0, 0, 3}, {1, 0, 2}, {0, 0, 1}} {
		if d := p.DirTo(q); d != None {
			t.Errorf("DirTo(%v) = %v, want None", q, d)
		}
	}
}

func TestDirString(t *testing.T) {
	if East.String() != "east" || None.String() != "none" {
		t.Errorf("unexpected Dir strings: %q %q", East, None)
	}
	if Dir(99).String() == "" {
		t.Error("out-of-range Dir has empty String")
	}
}

func TestPtDistances(t *testing.T) {
	a, b := Pt{0, 0}, Pt{1, 2}
	if d := a.ManhattanDist(b); d != 3 {
		t.Errorf("ManhattanDist = %d, want 3", d)
	}
	if d := a.SqDist(b); d != 5 {
		t.Errorf("SqDist = %d, want 5", d)
	}
	if d := a.ChebyshevDist(b); d != 2 {
		t.Errorf("ChebyshevDist = %d, want 2", d)
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by int16) bool {
		a, b := Pt{int(ax), int(ay)}, Pt{int(bx), int(by)}
		return a.ManhattanDist(b) == b.ManhattanDist(a) &&
			a.SqDist(b) == b.SqDist(a) &&
			a.ChebyshevDist(b) == b.ChebyshevDist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceInequalities(t *testing.T) {
	// Chebyshev <= Manhattan and Chebyshev^2 <= SqDist <= Manhattan^2.
	f := func(ax, ay, bx, by int8) bool {
		a, b := Pt{int(ax), int(ay)}, Pt{int(bx), int(by)}
		ch, mh, sq := a.ChebyshevDist(b), a.ManhattanDist(b), a.SqDist(b)
		return ch <= mh && ch*ch <= sq && sq <= mh*mh
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(Pt{3, 5}, Pt{1, 2})
	if r != (Rect{1, 2, 3, 5}) {
		t.Fatalf("NewRect = %v", r)
	}
	if r.Width() != 3 || r.Height() != 4 || r.Area() != 12 {
		t.Errorf("dims = %d x %d (%d)", r.Width(), r.Height(), r.Area())
	}
	if !r.Contains(Pt{1, 2}) || !r.Contains(Pt{3, 5}) || r.Contains(Pt{0, 2}) || r.Contains(Pt{2, 6}) {
		t.Error("Contains boundary behavior wrong")
	}
}

func TestRectExpandClips(t *testing.T) {
	clip := Rect{0, 0, 10, 10}
	r := Rect{1, 1, 2, 2}.Expand(3, clip)
	if r != (Rect{0, 0, 5, 5}) {
		t.Errorf("Expand = %v", r)
	}
	r = Rect{8, 8, 9, 9}.Expand(5, clip)
	if r != (Rect{3, 3, 10, 10}) {
		t.Errorf("Expand = %v", r)
	}
}

func TestRectIntersectEmpty(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{5, 5, 7, 7}
	if got := a.Intersect(b); !got.Empty() {
		t.Errorf("disjoint Intersect = %v not empty", got)
	}
	if a.Empty() {
		t.Error("non-empty rect reported empty")
	}
}

func TestRectUnionContainsBoth(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy int8) bool {
		r := NewRect(Pt{int(ax), int(ay)}, Pt{int(bx), int(by)})
		s := NewRect(Pt{int(cx), int(cy)}, Pt{int(dx), int(dy)})
		u := r.Union(s)
		return u.Contains(Pt{r.MinX, r.MinY}) && u.Contains(Pt{r.MaxX, r.MaxY}) &&
			u.Contains(Pt{s.MinX, s.MinY}) && u.Contains(Pt{s.MaxX, s.MaxY})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoundingRect(t *testing.T) {
	pts := []Pt{{3, 1}, {0, 4}, {2, 2}}
	r := BoundingRect(pts)
	if r != (Rect{0, 1, 3, 4}) {
		t.Errorf("BoundingRect = %v", r)
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Errorf("bounding rect misses %v", p)
		}
	}
}

func TestBoundingRectPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BoundingRect(nil) did not panic")
		}
	}()
	BoundingRect(nil)
}

func TestPtStep(t *testing.T) {
	p := Pt{4, 4}
	if p.Step(East) != (Pt{5, 4}) || p.Step(North) != (Pt{4, 5}) {
		t.Error("Pt.Step planar moves wrong")
	}
	if p.Step(Up) != p {
		t.Error("Pt.Step(Up) must not move a 2-D point")
	}
}

func TestPt3Step(t *testing.T) {
	p := Pt3{4, 4, 2}
	if p.Step(Up) != (Pt3{4, 4, 3}) || p.Step(Down) != (Pt3{4, 4, 1}) {
		t.Error("Pt3.Step via moves wrong")
	}
	if p.Step(West) != (Pt3{3, 4, 2}) {
		t.Error("Pt3.Step planar move wrong")
	}
}
