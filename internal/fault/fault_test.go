package fault

import (
	"errors"
	"sync"
	"testing"
)

func TestNilInjectorNeverTrips(t *testing.T) {
	var in *Injector
	if err := in.Inject("anything"); err != nil {
		t.Fatalf("nil injector tripped: %v", err)
	}
	in.Configure("anything", SiteConfig{})
	if in.Hits("anything") != 0 || in.Trips("anything") != 0 || in.Snapshot() != "" {
		t.Fatal("nil injector recorded state")
	}
}

func TestUnconfiguredSiteNeverTrips(t *testing.T) {
	in := New(1)
	for i := 0; i < 100; i++ {
		if err := in.Inject("unscripted"); err != nil {
			t.Fatalf("unscripted site tripped: %v", err)
		}
	}
	if in.Hits("unscripted") != 0 {
		t.Fatal("unconfigured sites are not counted")
	}
}

func TestAfterAndTimes(t *testing.T) {
	in := New(1)
	in.Configure("s", SiteConfig{After: 2, Times: 3})
	var got []bool
	for i := 0; i < 8; i++ {
		got = append(got, in.Inject("s") != nil)
	}
	want := []bool{false, false, true, true, true, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d: tripped=%v, want %v (all: %v)", i+1, got[i], want[i], got)
		}
	}
	if in.Hits("s") != 8 || in.Trips("s") != 3 {
		t.Fatalf("hits/trips = %d/%d, want 8/3", in.Hits("s"), in.Trips("s"))
	}
}

func TestTimesZeroMeansOnce(t *testing.T) {
	in := New(1)
	in.Configure("s", SiteConfig{})
	if err := in.Inject("s"); !errors.Is(err, ErrInjected) {
		t.Fatalf("first hit: %v", err)
	}
	if err := in.Inject("s"); err != nil {
		t.Fatalf("second hit tripped: %v", err)
	}
}

func TestUnlimitedTimes(t *testing.T) {
	in := New(1)
	in.Configure("s", SiteConfig{Times: -1})
	for i := 0; i < 50; i++ {
		if err := in.Inject("s"); err == nil {
			t.Fatalf("hit %d did not trip", i+1)
		}
	}
}

func TestPanicMode(t *testing.T) {
	in := New(1)
	in.Configure("boom", SiteConfig{Panic: true})
	defer func() {
		r := recover()
		p, ok := r.(*Panic)
		if !ok || p.Site != "boom" {
			t.Fatalf("recovered %v, want *Panic{boom}", r)
		}
	}()
	in.Inject("boom")
	t.Fatal("site did not panic")
}

// The probabilistic schedule is a pure function of (seed, site, hit
// number): two injectors with the same seed agree hit by hit, a
// different seed produces a different schedule.
func TestProbDeterministicPerSeed(t *testing.T) {
	trace := func(seed int64) []bool {
		in := New(seed)
		in.Configure("p", SiteConfig{Times: -1, Prob: 0.5})
		var tr []bool
		for i := 0; i < 64; i++ {
			tr = append(tr, in.Inject("p") != nil)
		}
		return tr
	}
	a, b := trace(42), trace(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i+1)
		}
	}
	c := trace(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical 64-hit schedule")
	}
}

// Per-site RNG streams are independent: interleaving hits of another
// site does not shift a site's decisions.
func TestSitesIndependent(t *testing.T) {
	solo := New(7)
	solo.Configure("a", SiteConfig{Times: -1, Prob: 0.5})
	var want []bool
	for i := 0; i < 32; i++ {
		want = append(want, solo.Inject("a") != nil)
	}

	mixed := New(7)
	mixed.Configure("a", SiteConfig{Times: -1, Prob: 0.5})
	mixed.Configure("b", SiteConfig{Times: -1, Prob: 0.5})
	for i := 0; i < 32; i++ {
		mixed.Inject("b")
		if got := mixed.Inject("a") != nil; got != want[i] {
			t.Fatalf("hit %d of site a shifted by interleaved site b", i+1)
		}
	}
}

func TestSnapshot(t *testing.T) {
	in := New(1)
	in.Configure("b", SiteConfig{Times: -1})
	in.Configure("a", SiteConfig{After: 1})
	in.Inject("b")
	in.Inject("a")
	if got, want := in.Snapshot(), "a 1/0\nb 1/1\n"; got != want {
		t.Fatalf("snapshot %q, want %q", got, want)
	}
}

func TestConcurrentHitsRaceClean(t *testing.T) {
	in := New(1)
	in.Configure("c", SiteConfig{Times: 10})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				in.Inject("c")
			}
		}()
	}
	wg.Wait()
	if in.Hits("c") != 800 || in.Trips("c") != 10 {
		t.Fatalf("hits/trips = %d/%d, want 800/10", in.Hits("c"), in.Trips("c"))
	}
}
