// Package fault is a deterministic fault-injection harness for the
// serving stack. Production code threads named injection sites through
// its failure-prone operations — journal appends, worker execution,
// cache reads and writes — and the chaos tests script which hits of
// which sites trip, so every recovery path can be exercised on demand
// and reproduced exactly from a seed.
//
// A nil *Injector is the production configuration: every method is
// nil-safe and Inject on a nil (or empty) injector is a single atomic
// load away from returning nil, so instrumented call sites cost
// effectively nothing when chaos is off.
//
// Determinism: a site trips based only on (a) its scripted hit numbers
// or (b) a per-site RNG derived from the injector seed and the site
// name, consumed once per hit of that site. Concurrent hits of
// *different* sites therefore cannot perturb each other's decisions;
// two runs that hit each site the same number of times in the same
// per-site order observe identical faults.
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
)

// ErrInjected is the error returned by a tripped (non-panicking)
// injection site. Callers treat it like any other I/O failure;
// errors.Is lets tests confirm a failure was injected rather than
// organic.
var ErrInjected = errors.New("fault: injected failure")

// SiteConfig scripts one injection site.
type SiteConfig struct {
	// After skips the first After hits of the site before any trip is
	// considered.
	After int
	// Times bounds the number of trips (0 means 1; negative means
	// unlimited).
	Times int
	// Prob, when in (0,1), trips each eligible hit with this
	// probability, drawn from the site's seeded RNG. Zero means every
	// eligible hit trips (up to Times).
	Prob float64
	// Panic makes the site panic with a *Panic value instead of
	// returning ErrInjected — the knob for exercising recover() paths.
	Panic bool
}

// Panic is the value thrown by a panicking site, so recovery code and
// tests can tell an injected panic from an organic one.
type Panic struct{ Site string }

func (p *Panic) Error() string { return fmt.Sprintf("fault: injected panic at %q", p.Site) }

type siteState struct {
	cfg   SiteConfig
	rng   *rand.Rand
	hits  int
	trips int
}

// Injector decides, per named site, whether a hit fails.
type Injector struct {
	mu    sync.Mutex
	seed  int64
	sites map[string]*siteState
}

// New builds an injector whose probabilistic decisions derive from
// seed. Sites must be registered with Configure before they trip.
func New(seed int64) *Injector {
	return &Injector{seed: seed, sites: make(map[string]*siteState)}
}

// Configure scripts a site. Reconfiguring a site resets its counters
// and re-derives its RNG from the injector seed.
func (in *Injector) Configure(site string, cfg SiteConfig) {
	if in == nil {
		return
	}
	if cfg.Times == 0 {
		cfg.Times = 1
	}
	h := fnv.New64a()
	h.Write([]byte(site))
	in.mu.Lock()
	in.sites[site] = &siteState{
		cfg: cfg,
		rng: rand.New(rand.NewSource(in.seed ^ int64(h.Sum64()))),
	}
	in.mu.Unlock()
}

// Inject records a hit of the site and returns ErrInjected (or panics,
// when the site is configured to) if the hit trips. Unconfigured sites
// and nil injectors never trip.
func (in *Injector) Inject(site string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	st, ok := in.sites[site]
	if !ok {
		in.mu.Unlock()
		return nil
	}
	st.hits++
	trip := st.hits > st.cfg.After &&
		(st.cfg.Times < 0 || st.trips < st.cfg.Times)
	if trip && st.cfg.Prob > 0 && st.cfg.Prob < 1 {
		trip = st.rng.Float64() < st.cfg.Prob
	}
	if trip {
		st.trips++
	}
	panics := st.cfg.Panic
	in.mu.Unlock()
	if !trip {
		return nil
	}
	if panics {
		panic(&Panic{Site: site})
	}
	return ErrInjected
}

// Hits reports how many times the site was reached.
func (in *Injector) Hits(site string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if st, ok := in.sites[site]; ok {
		return st.hits
	}
	return 0
}

// Trips reports how many hits of the site actually failed.
func (in *Injector) Trips(site string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if st, ok := in.sites[site]; ok {
		return st.trips
	}
	return 0
}

// Snapshot renders "site hits/trips" lines in site order — a compact
// fingerprint the determinism tests compare across runs.
func (in *Injector) Snapshot() string {
	if in == nil {
		return ""
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	names := make([]string, 0, len(in.sites))
	for name := range in.sites {
		names = append(names, name)
	}
	sort.Strings(names)
	out := ""
	for _, name := range names {
		st := in.sites[name]
		out += fmt.Sprintf("%s %d/%d\n", name, st.hits, st.trips)
	}
	return out
}
