package fault

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Transport is an http.RoundTripper that threads cluster RPC traffic
// through the injector, giving the chaos suite network-level faults
// the in-process sites can't express:
//
//	"rpc.drop:<path>"    — fail the request with ErrInjected before it
//	is sent (a dropped/partitioned connection from the caller's view).
//	"rpc.dup:<path>"     — deliver the request twice: a cloned copy is
//	sent (and its response discarded) before the original, modeling an
//	at-least-once retry layer duplicating a delivered request. This is
//	the harness behind the idempotent-result-upload tests.
//	"rpc.latency:<path>" — delay the request by Latency before sending
//	it (a slow or congested link). The sleep honors the request
//	context, so a canceled caller is not held hostage.
//	"rpc.corrupt:<path>" — flip one deterministically-chosen bit of
//	the request body before sending it, modeling in-flight corruption
//	that survives TCP's weak checksum. This is the harness behind the
//	coordinator's verified-upload tests: the mangled body must be
//	rejected, never stored.
//
// Site names are keyed by URL path so a test can duplicate result
// uploads without touching heartbeats. A nil injector (or Transport)
// passes every request through untouched.
type Transport struct {
	// Base handles the actual round trips (http.DefaultTransport when
	// nil).
	Base http.RoundTripper
	// Injector supplies the fault decisions; nil means no faults.
	Injector *Injector
	// Latency is the delay applied when an "rpc.latency:<path>" site
	// trips (default 50ms).
	Latency time.Duration
}

func (t *Transport) base() http.RoundTripper {
	if t == nil || t.Base == nil {
		return http.DefaultTransport
	}
	return t.Base
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	var in *Injector
	if t != nil {
		in = t.Injector
	}
	if err := in.Inject("rpc.drop:" + req.URL.Path); err != nil {
		return nil, fmt.Errorf("rpc %s: %w", req.URL.Path, err)
	}
	if err := in.Inject("rpc.latency:" + req.URL.Path); err != nil {
		d := 50 * time.Millisecond
		if t != nil && t.Latency > 0 {
			d = t.Latency
		}
		timer := time.NewTimer(d)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	if err := in.Inject("rpc.corrupt:" + req.URL.Path); err != nil {
		// In-flight corruption: flip one bit in the middle of the body.
		// The receiver must catch it — either as a decode failure or,
		// when the flip lands inside a JSON value, as a validation
		// reject. GetBody is set for the byte-slice bodies the cluster
		// RPCs use; a request without one passes through unmangled.
		if req.GetBody != nil {
			if body, berr := req.GetBody(); berr == nil {
				raw, rerr := io.ReadAll(body)
				body.Close()
				if rerr == nil && len(raw) > 0 {
					raw[len(raw)/2] ^= 0x01
					req = req.Clone(req.Context())
					req.Body = io.NopCloser(bytes.NewReader(raw))
					req.ContentLength = int64(len(raw))
					// The corrupted request is what goes on the wire; a
					// retry layer re-reading GetBody gets the original
					// bytes, like a real one-off wire flip.
				}
			}
		}
	}
	if err := in.Inject("rpc.dup:" + req.URL.Path); err != nil {
		// Duplicate delivery: send a clone first and discard its
		// response, then fall through to the original. GetBody is set by
		// http.NewRequest for the byte-slice bodies the cluster RPCs
		// use; a request without one can't be duplicated, so it is
		// passed through singly.
		if req.GetBody != nil {
			dup := req.Clone(req.Context())
			body, berr := req.GetBody()
			if berr == nil {
				dup.Body = body
				if resp, derr := t.base().RoundTrip(dup); derr == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}
	}
	return t.base().RoundTrip(req)
}
