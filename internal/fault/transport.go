package fault

import (
	"fmt"
	"io"
	"net/http"
)

// Transport is an http.RoundTripper that threads cluster RPC traffic
// through the injector, giving the chaos suite network-level faults
// the in-process sites can't express:
//
//	"rpc.drop:<path>" — fail the request with ErrInjected before it is
//	sent (a dropped/partitioned connection from the caller's view).
//	"rpc.dup:<path>"  — deliver the request twice: a cloned copy is
//	sent (and its response discarded) before the original, modeling an
//	at-least-once retry layer duplicating a delivered request. This is
//	the harness behind the idempotent-result-upload tests.
//
// Site names are keyed by URL path so a test can duplicate result
// uploads without touching heartbeats. A nil injector (or Transport)
// passes every request through untouched.
type Transport struct {
	// Base handles the actual round trips (http.DefaultTransport when
	// nil).
	Base http.RoundTripper
	// Injector supplies the fault decisions; nil means no faults.
	Injector *Injector
}

func (t *Transport) base() http.RoundTripper {
	if t == nil || t.Base == nil {
		return http.DefaultTransport
	}
	return t.Base
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	var in *Injector
	if t != nil {
		in = t.Injector
	}
	if err := in.Inject("rpc.drop:" + req.URL.Path); err != nil {
		return nil, fmt.Errorf("rpc %s: %w", req.URL.Path, err)
	}
	if err := in.Inject("rpc.dup:" + req.URL.Path); err != nil {
		// Duplicate delivery: send a clone first and discard its
		// response, then fall through to the original. GetBody is set by
		// http.NewRequest for the byte-slice bodies the cluster RPCs
		// use; a request without one can't be duplicated, so it is
		// passed through singly.
		if req.GetBody != nil {
			dup := req.Clone(req.Context())
			body, berr := req.GetBody()
			if berr == nil {
				dup.Body = body
				if resp, derr := t.base().RoundTrip(dup); derr == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}
	}
	return t.base().RoundTrip(req)
}
