package fault

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func postVia(t *testing.T, tr *Transport, url, path, body string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+path, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	return (&http.Client{Transport: tr}).Do(req)
}

func TestTransportPassthrough(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body)
	}))
	defer ts.Close()

	// Nil injector and nil transport both pass through untouched.
	resp, err := postVia(t, &Transport{}, ts.URL, "/x", "hello")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hits.Load() != 1 {
		t.Fatalf("hits %d, want 1", hits.Load())
	}
}

func TestTransportDrop(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer ts.Close()

	inj := New(1)
	inj.Configure("rpc.drop:/a", SiteConfig{Times: 1})
	tr := &Transport{Injector: inj}

	if _, err := postVia(t, tr, ts.URL, "/a", "x"); !errors.Is(err, ErrInjected) {
		t.Fatalf("err %v, want ErrInjected", err)
	}
	if hits.Load() != 0 {
		t.Fatalf("dropped request reached the server (%d hits)", hits.Load())
	}
	// Other paths are unaffected; the site only trips once.
	for _, path := range []string{"/b", "/a"} {
		resp, err := postVia(t, tr, ts.URL, path, "x")
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
	}
	if hits.Load() != 2 {
		t.Fatalf("hits %d, want 2", hits.Load())
	}
}

func TestTransportDuplicate(t *testing.T) {
	var bodies [][]byte
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		bodies = append(bodies, b)
	}))
	defer ts.Close()

	inj := New(1)
	inj.Configure("rpc.dup:/up", SiteConfig{Times: 1})
	tr := &Transport{Injector: inj}

	resp, err := postVia(t, tr, ts.URL, "/up", "payload")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(bodies) != 2 {
		t.Fatalf("server saw %d deliveries, want 2", len(bodies))
	}
	if !bytes.Equal(bodies[0], bodies[1]) || string(bodies[0]) != "payload" {
		t.Fatalf("deliveries differ: %q vs %q", bodies[0], bodies[1])
	}
	// Site exhausted: the next post delivers once.
	resp, err = postVia(t, tr, ts.URL, "/up", "again")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(bodies) != 3 {
		t.Fatalf("server saw %d deliveries, want 3", len(bodies))
	}
}

func TestTransportLatency(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()

	inj := New(1)
	inj.Configure("rpc.latency:/slow", SiteConfig{Times: 1})
	tr := &Transport{Injector: inj, Latency: 80 * time.Millisecond}

	start := time.Now()
	resp, err := postVia(t, tr, ts.URL, "/slow", "x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Fatalf("request completed in %v, want >= 80ms injected latency", d)
	}
	// Site exhausted: the next request is fast.
	start = time.Now()
	resp, err = postVia(t, tr, ts.URL, "/slow", "x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d > 60*time.Millisecond {
		t.Fatalf("untripped request took %v", d)
	}
}

func TestTransportLatencyHonorsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("delayed request reached the server despite cancellation")
	}))
	defer ts.Close()

	inj := New(1)
	inj.Configure("rpc.latency:/slow", SiteConfig{Times: 1})
	tr := &Transport{Injector: inj, Latency: 10 * time.Second}

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/slow", bytes.NewReader([]byte("x")))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	client := &http.Client{Transport: tr, Timeout: 50 * time.Millisecond}
	go func() {
		_, derr := client.Do(req)
		done <- derr
	}()
	select {
	case derr := <-done:
		if derr == nil {
			t.Fatal("want timeout error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("latency sleep ignored the request context")
	}
}

func TestTransportCorrupt(t *testing.T) {
	var bodies [][]byte
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		bodies = append(bodies, b)
	}))
	defer ts.Close()

	inj := New(1)
	inj.Configure("rpc.corrupt:/up", SiteConfig{Times: 1})
	tr := &Transport{Injector: inj}

	orig := `{"k":"0123456789"}`
	resp, err := postVia(t, tr, ts.URL, "/up", orig)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(bodies) != 1 {
		t.Fatalf("server saw %d deliveries, want 1", len(bodies))
	}
	if string(bodies[0]) == orig {
		t.Fatal("body arrived unmangled despite tripped corrupt site")
	}
	if len(bodies[0]) != len(orig) {
		t.Fatalf("corruption changed length: %d vs %d", len(bodies[0]), len(orig))
	}
	diff := 0
	for i := range orig {
		if bodies[0][i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption touched %d bytes, want exactly 1", diff)
	}
	// Site exhausted: the next delivery is clean.
	resp, err = postVia(t, tr, ts.URL, "/up", orig)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if string(bodies[1]) != orig {
		t.Fatal("untripped request was mangled")
	}
}
