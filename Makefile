# Developer entry points. `make lint` runs the same static-analysis
# stack as CI; the pinned-install tools (staticcheck, govulncheck) run
# only when present locally, since the dev container may be offline.

GO ?= go

.PHONY: all build test race lint sadplint fmt

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -w .

# sadplint is the repo's own analyzer suite (internal/analyzers),
# driven through the stock `go vet -vettool` protocol so suppressions,
# build tags and test variants behave exactly as in CI, then once more
# standalone against the committed baseline (empty at merge; findings
# accepted during a migration go there via `make sadplint-baseline`).
sadplint:
	@mkdir -p bin
	$(GO) build -o bin/sadplint ./cmd/sadplint
	$(GO) vet -vettool=bin/sadplint ./...
	bin/sadplint -baseline .sadplint-baseline.json ./...

# Machine-readable findings, e.g. for editor integration:
#   make sadplint-json > findings.json
.PHONY: sadplint-json sadplint-baseline
sadplint-json:
	@mkdir -p bin
	@$(GO) build -o bin/sadplint ./cmd/sadplint
	@bin/sadplint -json ./...

# Re-record the accepted-debt baseline. The merge bar is an empty
# baseline: only use this mid-migration, and burn it back down.
sadplint-baseline:
	@mkdir -p bin
	$(GO) build -o bin/sadplint ./cmd/sadplint
	bin/sadplint -baseline .sadplint-baseline.json -update-baseline ./...

lint: sadplint
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "staticcheck not installed; skipped (CI runs it pinned)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
		else echo "govulncheck not installed; skipped (CI runs it pinned)"; fi

# Cluster differential e2e: real processes, real kill -9. Proves the
# distributed invariant (byte-identical results across standalone,
# worker-killed and coordinator-crashed topologies). Same script as CI.
# Scenario selection via SCENARIOS ("kill crash chaos"); the chaos
# scenario drives the -chaos fault presets (latency corrupt slow
# spool) with verified uploads on — narrow with CHAOS_PRESETS.
.PHONY: cluster-e2e cluster-chaos

cluster-e2e:
	bash scripts/cluster_e2e.sh

cluster-chaos:
	SCENARIOS=chaos bash scripts/cluster_e2e.sh

# Benchmark entry points. bench-smoke is the CI regression gate: it
# routes the tiny suite and compares against the committed baseline in
# BENCH_1.json (identical metrics required, 3x time tolerance).
# bench-full routes the six Table I circuits at full size — expect
# minutes, not seconds — and appends the run to BENCH_2.json.
.PHONY: bench-smoke bench-full

bench-smoke:
	$(GO) run ./cmd/benchjson -suite tiny -iters 1 -baseline BENCH_1.json -tolerance 3 -out /tmp/bench-smoke.json

bench-full:
	$(GO) run ./cmd/benchjson -suite full -iters 1 -label full -out BENCH_2.json
	$(GO) run ./cmd/benchjson -suite full -iters 1 -workers $$(nproc) -label full-parallel -out BENCH_2.json
