// Command sadproute runs the full SADP-aware detailed routing flow on
// a netlist file, optionally followed by post-routing TPL-aware DVI.
//
// Usage:
//
//	sadproute -in circuit.net [-sadp sim|sid] [-dvi] [-tpl]
//	          [-method heur|ilp|none] [-ilptime 60s] [-check] [-verify]
//	          [-json] [-workers N] [-cpuprofile f] [-memprofile f]
//
// It prints the metrics the paper's tables report: wirelength, via
// count, routing CPU, dead via count (#DV) and uncolorable via count
// (#UV). With -json it emits the exact result schema the sadprouted
// service returns (internal/service/api.Result), so CLI and service
// output are interchangeable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/bench"
	"repro/internal/coloring"
	"repro/internal/decompose"
	"repro/internal/netlist"
	"repro/internal/router"
	"repro/internal/service/api"
)

func main() {
	// All work happens in run so deferred profile writers execute
	// before the process exits.
	os.Exit(run())
}

func run() (code int) {
	in := flag.String("in", "", "input netlist file (required)")
	sadp := flag.String("sadp", "sim", "SADP type: sim or sid")
	considerDVI := flag.Bool("dvi", false, "consider DVI during routing (BDC/AMC/CDC)")
	considerTPL := flag.Bool("tpl", false, "consider via-layer TPL during routing")
	method := flag.String("method", "heur", "post-routing DVI: heur, ilp, or none")
	topology := flag.String("topology", "steiner", "multi-pin decomposition: steiner or star")
	ilpTime := flag.Duration("ilptime", time.Minute, "ILP time limit")
	check := flag.Bool("check", false, "run the SADP mask decomposition DRC on the result")
	doVerify := flag.Bool("verify", false, "re-check the result with the independent internal/verify checker; exit 1 on violations")
	jsonOut := flag.Bool("json", false, "emit the service result schema (api.Result) as JSON instead of text")
	seed := flag.Int64("seed", 0, "tie-breaking seed")
	workers := flag.Int("workers", 1, "parallelism of independent router phases (identical output for any value)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		return 2
	}
	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		// The named return lets the deferred writer turn a failed
		// profile write into a non-zero exit code instead of silently
		// discarding the error.
		defer func() {
			mf, err := os.Create(*memprofile)
			if err != nil {
				code = failKeep(code, err)
				return
			}
			runtime.GC() // report live allocations, not garbage
			werr := pprof.WriteHeapProfile(mf)
			cerr := mf.Close()
			if werr != nil {
				code = failKeep(code, werr)
			} else if cerr != nil {
				code = failKeep(code, cerr)
			}
		}()
	}
	f, err := os.Open(*in)
	if err != nil {
		return fail(err)
	}
	nl, err := netlist.Read(f)
	f.Close()
	if err != nil {
		return fail(err)
	}

	typ, err := coloring.ParseSADPType(*sadp)
	if err != nil {
		return fail(fmt.Errorf("-sadp: %w", err))
	}
	meth, err := bench.ParseDVIMethod(*method)
	if err != nil {
		return fail(fmt.Errorf("-method: %w", err))
	}
	topo, err := router.ParseTopologyKind(*topology)
	if err != nil {
		return fail(fmt.Errorf("-topology: %w", err))
	}
	spec := bench.RunSpec{
		Scheme:       typ,
		ConsiderDVI:  *considerDVI,
		ConsiderTPL:  *considerTPL,
		Method:       meth,
		ILPTimeLimit: *ilpTime,
		Topology:     topo,
		Workers:      *workers,
		Seed:         *seed,
		Verify:       *doVerify,
	}

	row, art, err := bench.Run(nl, spec)
	if err != nil {
		return fail(err)
	}
	res := api.ResultFrom(spec, row, art)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return fail(err)
		}
	} else {
		st := art.Router.Stats()
		fmt.Printf("circuit %s: %d nets, %dx%d grid, %s SADP\n", nl.Name, len(nl.Nets), nl.W, nl.H, typ)
		fmt.Printf("routability %.0f%%  WL %d  #Vias %d  CPU %.2fs  (R&R %d, TPL-R&R %d, FVPs resolved %d)\n",
			row.Routability*100, row.WL, row.Vias, row.RouteCPU.Seconds(),
			st.RRIterations, st.TPLRRIterations, st.FVPsResolved)
		if art.Solution != nil {
			fmt.Printf("DVI (%s): inserted %d  #DV %d  #UV %d\n", meth, res.InsertedVias, row.DV, row.UV)
		}
		if art.Verify != nil {
			if art.Verify.Ok() {
				fmt.Println("verify: ok")
			} else {
				fmt.Printf("verify: %d violation(s)\n", len(art.Verify.Violations))
				for i, v := range art.Verify.Violations {
					if i >= 10 {
						fmt.Println("  ...")
						break
					}
					fmt.Printf("  %v\n", v)
				}
			}
		}
	}

	if *check {
		dec := decompose.Decompose(art.Router.Grid(), art.Router.Routes())
		hard := dec.HardViolations()
		if !*jsonOut {
			fmt.Printf("decomposition check: %d hard violations, %d findings total\n", len(hard), len(dec.Violations))
			for i, v := range hard {
				if i >= 10 {
					fmt.Println("  ...")
					break
				}
				fmt.Printf("  %v\n", v)
			}
		}
		if len(hard) > 0 {
			fmt.Fprintf(os.Stderr, "sadproute: decomposition check: %d hard violations\n", len(hard))
			return 1
		}
	}
	if art.Verify != nil && !art.Verify.Ok() {
		fmt.Fprintf(os.Stderr, "sadproute: verify: %d violation(s)\n", len(art.Verify.Violations))
		return 1
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "sadproute: %v\n", err)
	return 1
}

// failKeep reports err but preserves an existing non-zero exit code.
func failKeep(code int, err error) int {
	fmt.Fprintf(os.Stderr, "sadproute: %v\n", err)
	if code != 0 {
		return code
	}
	return 1
}
