// Command sadproute runs the full SADP-aware detailed routing flow on
// a netlist file, optionally followed by post-routing TPL-aware DVI.
//
// Usage:
//
//	sadproute -in circuit.net [-sadp sim|sid] [-dvi] [-tpl]
//	          [-method heur|ilp|none] [-ilptime 60s] [-check]
//
// It prints the metrics the paper's tables report: wirelength, via
// count, routing CPU, dead via count (#DV) and uncolorable via count
// (#UV).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/coloring"
	"repro/internal/dvi"
	"repro/internal/netlist"

	sadproute "repro"
)

func main() {
	in := flag.String("in", "", "input netlist file (required)")
	sadp := flag.String("sadp", "sim", "SADP type: sim or sid")
	considerDVI := flag.Bool("dvi", false, "consider DVI during routing (BDC/AMC/CDC)")
	considerTPL := flag.Bool("tpl", false, "consider via-layer TPL during routing")
	method := flag.String("method", "heur", "post-routing DVI: heur, ilp, or none")
	ilpTime := flag.Duration("ilptime", time.Minute, "ILP time limit")
	check := flag.Bool("check", false, "run the SADP mask decomposition DRC on the result")
	seed := flag.Int64("seed", 0, "tie-breaking seed")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	nl, err := netlist.Read(f)
	f.Close()
	if err != nil {
		fail(err)
	}

	typ := coloring.SIM
	switch *sadp {
	case "sim":
	case "sid":
		typ = coloring.SID
	default:
		fail(fmt.Errorf("unknown -sadp %q", *sadp))
	}

	start := time.Now()
	res, err := sadproute.Route(nl, sadproute.Config{
		SADP:        typ,
		ConsiderDVI: *considerDVI,
		ConsiderTPL: *considerTPL,
		Seed:        *seed,
	})
	if err != nil {
		fail(err)
	}
	routeCPU := time.Since(start)
	st := res.Stats
	fmt.Printf("circuit %s: %d nets, %dx%d grid, %s SADP\n", nl.Name, len(nl.Nets), nl.W, nl.H, typ)
	fmt.Printf("routability %.0f%%  WL %d  #Vias %d  CPU %.2fs  (R&R %d, TPL-R&R %d, FVPs resolved %d)\n",
		st.Routability*100, st.Wirelength, st.Vias, routeCPU.Seconds(),
		st.RRIterations, st.TPLRRIterations, st.FVPsResolved)

	var sol *dvi.Solution
	switch *method {
	case "none":
	case "heur":
		sol, err = res.InsertDoubleVias(sadproute.Heuristic, 0)
	case "ilp":
		sol, err = res.InsertDoubleVias(sadproute.ILP, *ilpTime)
	default:
		fail(fmt.Errorf("unknown -method %q", *method))
	}
	if err != nil {
		fail(err)
	}
	if sol != nil {
		fmt.Printf("DVI (%s): inserted %d  #DV %d  #UV %d\n", *method, sol.InsertedCount, sol.DeadVias, sol.Uncolorable)
	}

	if *check {
		dec := res.CheckDecomposition()
		hard := dec.HardViolations()
		fmt.Printf("decomposition check: %d hard violations, %d findings total\n", len(hard), len(dec.Violations))
		for i, v := range hard {
			if i >= 10 {
				fmt.Println("  ...")
				break
			}
			fmt.Printf("  %v\n", v)
		}
		if len(hard) > 0 {
			os.Exit(1)
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "sadproute: %v\n", err)
	os.Exit(1)
}
