// Command sadproute runs the full SADP-aware detailed routing flow on
// a netlist file, optionally followed by post-routing TPL-aware DVI.
//
// Usage:
//
//	sadproute -in circuit.net [-sadp sim|sid] [-dvi] [-tpl]
//	          [-method heur|ilp|none] [-ilptime 60s] [-check]
//	          [-workers N] [-cpuprofile f] [-memprofile f]
//
// It prints the metrics the paper's tables report: wirelength, via
// count, routing CPU, dead via count (#DV) and uncolorable via count
// (#UV).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/coloring"
	"repro/internal/dvi"
	"repro/internal/netlist"

	sadproute "repro"
)

func main() {
	// All work happens in run so deferred profile writers execute
	// before the process exits.
	os.Exit(run())
}

func run() int {
	in := flag.String("in", "", "input netlist file (required)")
	sadp := flag.String("sadp", "sim", "SADP type: sim or sid")
	considerDVI := flag.Bool("dvi", false, "consider DVI during routing (BDC/AMC/CDC)")
	considerTPL := flag.Bool("tpl", false, "consider via-layer TPL during routing")
	method := flag.String("method", "heur", "post-routing DVI: heur, ilp, or none")
	ilpTime := flag.Duration("ilptime", time.Minute, "ILP time limit")
	check := flag.Bool("check", false, "run the SADP mask decomposition DRC on the result")
	seed := flag.Int64("seed", 0, "tie-breaking seed")
	workers := flag.Int("workers", 1, "parallelism of independent router phases (identical output for any value)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		return 2
	}
	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			mf, err := os.Create(*memprofile)
			if err != nil {
				fail(err)
				return
			}
			defer mf.Close()
			runtime.GC() // report live allocations, not garbage
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fail(err)
			}
		}()
	}
	f, err := os.Open(*in)
	if err != nil {
		return fail(err)
	}
	nl, err := netlist.Read(f)
	f.Close()
	if err != nil {
		return fail(err)
	}

	typ := coloring.SIM
	switch *sadp {
	case "sim":
	case "sid":
		typ = coloring.SID
	default:
		return fail(fmt.Errorf("unknown -sadp %q", *sadp))
	}

	start := time.Now()
	res, err := sadproute.Route(nl, sadproute.Config{
		SADP:        typ,
		ConsiderDVI: *considerDVI,
		ConsiderTPL: *considerTPL,
		Seed:        *seed,
		Workers:     *workers,
	})
	if err != nil {
		return fail(err)
	}
	routeCPU := time.Since(start)
	st := res.Stats
	fmt.Printf("circuit %s: %d nets, %dx%d grid, %s SADP\n", nl.Name, len(nl.Nets), nl.W, nl.H, typ)
	fmt.Printf("routability %.0f%%  WL %d  #Vias %d  CPU %.2fs  (R&R %d, TPL-R&R %d, FVPs resolved %d)\n",
		st.Routability*100, st.Wirelength, st.Vias, routeCPU.Seconds(),
		st.RRIterations, st.TPLRRIterations, st.FVPsResolved)

	var sol *dvi.Solution
	switch *method {
	case "none":
	case "heur":
		sol, err = res.InsertDoubleVias(sadproute.Heuristic, 0)
	case "ilp":
		sol, err = res.InsertDoubleVias(sadproute.ILP, *ilpTime)
	default:
		return fail(fmt.Errorf("unknown -method %q", *method))
	}
	if err != nil {
		return fail(err)
	}
	if sol != nil {
		fmt.Printf("DVI (%s): inserted %d  #DV %d  #UV %d\n", *method, sol.InsertedCount, sol.DeadVias, sol.Uncolorable)
	}

	if *check {
		dec := res.CheckDecomposition()
		hard := dec.HardViolations()
		fmt.Printf("decomposition check: %d hard violations, %d findings total\n", len(hard), len(dec.Violations))
		for i, v := range hard {
			if i >= 10 {
				fmt.Println("  ...")
				break
			}
			fmt.Printf("  %v\n", v)
		}
		if len(hard) > 0 {
			return 1
		}
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "sadproute: %v\n", err)
	return 1
}
